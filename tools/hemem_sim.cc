// hemem_sim: command-line driver for ad-hoc tiered-memory experiments.
//
// Runs one workload against one tiering system on a scaled machine and
// prints throughput plus the full metrics snapshot. Examples:
//
//   hemem_sim --workload=gups --system=HeMem --ws-gb=512 --hot-gb=16
//   hemem_sim --workload=kvs --system=MM --ws-gb=700
//   hemem_sim --workload=tpcc --system=Nimble --warehouses=864
//   hemem_sim --workload=bc --system=HeMem --graph-scale=18
//   hemem_sim --workload=pagerank --system=MM --graph-scale=18
//   hemem_sim --workload=gups --record=/tmp/t.bin --updates=200000
//   hemem_sim --workload=replay --trace=/tmp/t.bin --system=MM
//
// Observability (any workload): --trace-out=t.json writes a Chrome
// trace-event file (load it in Perfetto / chrome://tracing),
// --metrics-out=m.json writes the machine-readable run report, and
// --sample-ms=N adds per-interval metric time series to that report.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "apps/bc.h"
#include "tier/trace.h"
#include "apps/flexkvs.h"
#include "apps/gups.h"
#include "apps/pagerank.h"
#include "apps/silo.h"
#include "bench_common.h"
#include "gups_bench.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/trace.h"

using namespace hemem;
using namespace hemem::bench;

namespace {

struct FlagSpec {
  const char* name;
  const char* help;
};

constexpr FlagSpec kFlagSpecs[] = {
    {"workload", "gups|kvs|tpcc|bc|pagerank|replay (default gups)"},
    {"system", "tiering system: DRAM|NVM|MM|Nimble|X-Mem|Thermostat|HeMem|..."},
    {"policy", "migration policy: default|perceptron|scheme[:spec]"},
    {"policy-spec", "policy spec, e.g. \"hot:tier=1,min_acc=2;cold:max_acc=0\""},
    {"migration", "HeMem migration mode: exclusive|nomad (default exclusive)"},
    {"scale", "machine divisor (bc, pagerank)"},
    {"threads", "worker threads"},
    {"ws-gb", "working set, paper-equivalent GiB (gups, kvs)"},
    {"hot-gb", "hot set, paper-equivalent GiB (gups)"},
    {"warehouses", "TPC-C warehouses (tpcc)"},
    {"graph-scale", "Kronecker graph scale (bc, pagerank)"},
    {"iterations", "graph iterations (bc, pagerank)"},
    {"seed", "deterministic run seed"},
    {"updates", "updates per thread when recording (gups --record)"},
    {"warmup-ms", "virtual warmup before the measured window (gups)"},
    {"window-ms", "virtual measured window (gups)"},
    {"record", "write the access trace to this file (gups)"},
    {"trace", "access-trace file to replay (replay)"},
    {"preserve-gaps", "replay with the recorded inter-access gaps (replay)"},
    {"metrics-out", "write the JSON run report (metrics + series) here"},
    {"trace-out", "write a Chrome/Perfetto trace-event JSON file here"},
    {"sample-ms", "metric sampling interval in virtual ms (needs --metrics-out)"},
    {"observe", "enable access observation (latency.*/audit.* metrics)"},
    {"heatmap-out", "write the address-space heat timeline JSON here"},
    {"audit-out", "write the migration-causality audit JSON here"},
    {"fault-spec", "fault plan, e.g. \"seed=7;dma.fail:p=0.2;nvm.degrade:mult=3\""},
};

void PrintFlagHelp(std::FILE* out) {
  std::fprintf(out, "valid flags:\n");
  for (const FlagSpec& spec : kFlagSpecs) {
    std::fprintf(out, "  --%-14s %s\n", spec.name, spec.help);
  }
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg);
      PrintFlagHelp(stderr);
      std::exit(2);
    }
    const char* eq = std::strchr(arg, '=');
    const std::string key =
        eq != nullptr ? std::string(arg + 2, eq) : std::string(arg + 2);
    bool known = false;
    for (const FlagSpec& spec : kFlagSpecs) {
      if (key == spec.name) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      PrintFlagHelp(stderr);
      std::exit(2);
    }
    flags[key] = eq != nullptr ? std::string(eq + 1) : "1";
  }
  return flags;
}

double FlagD(const std::map<std::string, std::string>& flags, const std::string& key,
             double fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::atof(it->second.c_str());
}

std::string FlagS(const std::map<std::string, std::string>& flags, const std::string& key,
                  const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

// Resolves --policy / --policy-spec. Like --fault-spec, a bad value is a
// usage error: an unknown policy name or malformed spec prints the policy
// library's message (which lists the registered names) and exits 2.
policy::PolicyChoice PolicyFromFlags(const std::map<std::string, std::string>& flags) {
  policy::PolicyChoice choice = policy::ParsePolicyFlag(FlagS(flags, "policy", "default"));
  const std::string spec = FlagS(flags, "policy-spec", "");
  if (!spec.empty()) {
    choice.spec = spec;
  }
  std::string error;
  if (policy::MakePolicy(choice, policy::PolicyConfig{}, &error) == nullptr) {
    std::fprintf(stderr, "bad --policy: %s\n", error.c_str());
    std::exit(2);
  }
  return choice;
}

// Resolves --migration. Only "exclusive" and "nomad" exist; anything else is
// a usage error. The mode reaches MakeSystem, where non-HeMem systems
// ignore it.
std::string MigrationFromFlags(const std::map<std::string, std::string>& flags) {
  const std::string mode = FlagS(flags, "migration", "exclusive");
  if (mode != "exclusive" && mode != "nomad") {
    std::fprintf(stderr, "bad --migration: unknown mode '%s' (exclusive|nomad)\n",
                 mode.c_str());
    std::exit(2);
  }
  return mode;
}

// Folds --fault-spec into the machine config. A malformed spec is a usage
// error: print the parser's message and exit like an unknown flag would.
MachineConfig WithFaultPlan(MachineConfig config,
                            const std::map<std::string, std::string>& flags) {
  const std::string spec = FlagS(flags, "fault-spec", "");
  if (!spec.empty()) {
    std::string error;
    if (!FaultPlan::Parse(spec, &config.fault_plan, &error)) {
      std::fprintf(stderr, "bad --fault-spec: %s\n", error.c_str());
      std::exit(2);
    }
  }
  return config;
}

// Per-run observability wiring. Construct right after the Machine and BEFORE
// the manager (tracing has to be on while managers register their tracks);
// call Finish once the workload is done.
class ObsSession {
 public:
  ObsSession(Machine& machine, const std::map<std::string, std::string>& flags)
      : machine_(machine),
        metrics_out_(FlagS(flags, "metrics-out", "")),
        trace_out_(FlagS(flags, "trace-out", "")),
        heatmap_out_(FlagS(flags, "heatmap-out", "")),
        audit_out_(FlagS(flags, "audit-out", "")) {
    if (!trace_out_.empty()) {
      machine.EnableTracing();
    }
    if (flags.count("observe") > 0 || !heatmap_out_.empty() || !audit_out_.empty()) {
      machine.EnableAccessObservation();
    }
    const double sample_ms = FlagD(flags, "sample-ms", 0.0);
    if (sample_ms > 0.0) {
      sampler_ = std::make_unique<obs::MetricsSampler>(
          machine.metrics(),
          static_cast<SimTime>(sample_ms * static_cast<double>(kMillisecond)));
      machine.engine().AddObserverThread(sampler_.get());
    }
  }

  // Prints the shared stats block and writes any requested report files.
  // Returns nonzero (suitable as an exit code) if a file cannot be written.
  int Finish(obs::ReportMeta meta) {
    const obs::MetricsSnapshot snapshot = machine_.metrics().Snapshot();
    obs::PrintSnapshot(stdout, snapshot);
    int status = 0;
    if (!metrics_out_.empty() &&
        !obs::WriteRunReport(metrics_out_, snapshot, sampler_.get(), meta)) {
      std::fprintf(stderr, "failed to write %s\n", metrics_out_.c_str());
      status = 1;
    }
    obs::AccessObservation* observation = machine_.observation();
    if (!heatmap_out_.empty() && observation != nullptr &&
        !observation->heat().WriteJson(heatmap_out_)) {
      std::fprintf(stderr, "failed to write %s\n", heatmap_out_.c_str());
      status = 1;
    }
    if (!audit_out_.empty() && observation != nullptr &&
        !observation->audit().WriteJson(audit_out_)) {
      std::fprintf(stderr, "failed to write %s\n", audit_out_.c_str());
      status = 1;
    }
    if (!trace_out_.empty()) {
      // Heat counter tracks ride along in the Perfetto trace when both the
      // tracer and access observation are on.
      if (observation != nullptr) {
        observation->heat().EmitCounters(machine_.tracer());
      }
      if (!machine_.tracer().WriteJson(trace_out_)) {
        std::fprintf(stderr, "failed to write %s\n", trace_out_.c_str());
        status = 1;
      }
    }
    return status;
  }

 private:
  Machine& machine_;
  std::string metrics_out_;
  std::string trace_out_;
  std::string heatmap_out_;
  std::string audit_out_;
  std::unique_ptr<obs::MetricsSampler> sampler_;
};

int RunGupsCli(const std::map<std::string, std::string>& flags) {
  const std::string system = FlagS(flags, "system", "HeMem");
  const policy::PolicyChoice policy = PolicyFromFlags(flags);
  GupsConfig config = StandardHotGups(static_cast<int>(FlagD(flags, "threads", 16)));
  config.working_set = PaperGiB(FlagD(flags, "ws-gb", 512));
  config.hot_set = PaperGiB(FlagD(flags, "hot-gb", 16));
  config.seed = static_cast<uint64_t>(FlagD(flags, "seed", 42));

  const std::string record_path = FlagS(flags, "record", "");
  if (!record_path.empty()) {
    // Capture the access trace while running (use a modest op count: traces
    // hold every access).
    Machine machine(WithFaultPlan(GupsMachine(), flags));
    auto manager = MakeSystem(system, machine, policy, MigrationFromFlags(flags));
    TraceRecorder recorder(*manager);
    recorder.Start();
    config.updates_per_thread = static_cast<uint64_t>(FlagD(flags, "updates", 100'000));
    config.prefill = false;
    GupsBenchmark gups(recorder, config);
    gups.Prepare();
    const GupsResult result = gups.Run();
    if (!recorder.trace().SaveTo(record_path)) {
      std::fprintf(stderr, "failed to write %s\n", record_path.c_str());
      return 1;
    }
    std::printf("recorded %zu accesses (%lu updates) to %s\n",
                recorder.trace().accesses.size(), result.total_updates,
                record_path.c_str());
    return 0;
  }

  const SimTime warmup = static_cast<SimTime>(
      FlagD(flags, "warmup-ms", static_cast<double>(kGupsWarmup / kMillisecond)) *
      static_cast<double>(kMillisecond));
  const SimTime window = static_cast<SimTime>(
      FlagD(flags, "window-ms", static_cast<double>(kGupsWindow / kMillisecond)) *
      static_cast<double>(kMillisecond));

  Machine machine(WithFaultPlan(GupsMachine(), flags));
  ObsSession obs_session(machine, flags);
  auto manager = MakeSystem(system, machine, policy, MigrationFromFlags(flags));
  manager->Start();

  config.updates_per_thread = ~0ull >> 2;  // deadline-bounded
  config.measure_after = warmup;
  GupsBenchmark gups(*manager, config);
  gups.Prepare();
  const GupsResult result = gups.Run(warmup + window);

  std::printf("gups=%.4f updates=%lu elapsed_ms=%.1f\n", result.gups,
              result.total_updates, static_cast<double>(result.elapsed) / 1e6);
  return obs_session.Finish({{"workload", "gups"}, {"system", system}, {"policy", policy.name}});
}

int RunReplayCli(const std::map<std::string, std::string>& flags) {
  const std::string system = FlagS(flags, "system", "HeMem");
  const policy::PolicyChoice policy = PolicyFromFlags(flags);
  const std::string path = FlagS(flags, "trace", "");
  Trace trace;
  if (path.empty() || !Trace::LoadFrom(path, &trace)) {
    std::fprintf(stderr, "cannot load trace '%s'\n", path.c_str());
    return 1;
  }
  Machine machine(WithFaultPlan(GupsMachine(), flags));
  ObsSession obs_session(machine, flags);
  auto manager = MakeSystem(system, machine, policy, MigrationFromFlags(flags));
  manager->Start();
  TraceReplayer replayer(*manager, trace, flags.count("preserve-gaps") > 0);
  const TraceReplayer::Result result = replayer.Run();
  std::printf("replayed %lu accesses in %.1f ms under %s\n", result.accesses,
              static_cast<double>(result.elapsed) / 1e6, manager->name());
  return obs_session.Finish({{"workload", "replay"}, {"system", system}, {"policy", policy.name}});
}

int RunKvsCli(const std::map<std::string, std::string>& flags) {
  const std::string system = FlagS(flags, "system", "HeMem");
  const policy::PolicyChoice policy = PolicyFromFlags(flags);
  Machine machine(WithFaultPlan(GupsMachine(), flags));
  ObsSession obs_session(machine, flags);
  auto manager = MakeSystem(system, machine, policy, MigrationFromFlags(flags));
  manager->Start();
  KvsConfig config;
  config.value_bytes = 4096;
  config.server_threads = static_cast<int>(FlagD(flags, "threads", 8));
  config.num_keys = PaperGiB(FlagD(flags, "ws-gb", 128)) / 4224;
  config.requests_per_thread = 40'000;
  config.warmup_requests_per_thread = 100'000;
  config.bulk_load = true;
  config.seed = static_cast<uint64_t>(FlagD(flags, "seed", 7));
  FlexKvs kvs(*manager, config);
  kvs.Prepare();
  const KvsResult result = kvs.Run();
  std::printf("mops=%.3f p50_us=%lu p99_us=%lu p999_us=%lu\n", result.mops,
              result.latency.Percentile(0.5), result.latency.Percentile(0.99),
              result.latency.Percentile(0.999));
  return obs_session.Finish({{"workload", "kvs"}, {"system", system}, {"policy", policy.name}});
}

int RunTpccCli(const std::map<std::string, std::string>& flags) {
  const std::string system = FlagS(flags, "system", "HeMem");
  const policy::PolicyChoice policy = PolicyFromFlags(flags);
  MachineConfig mc = MachineConfig::Scaled(115.0);
  mc.page_bytes = KiB(64);
  mc.pebs.SetAllPeriods(ScaledPebsPeriod(kPaperPebsPeriod, 40.0));
  Machine machine(WithFaultPlan(mc, flags));
  ObsSession obs_session(machine, flags);
  auto manager = MakeSystem(system, machine, policy, MigrationFromFlags(flags));
  manager->Start();
  SiloConfig sconfig;
  sconfig.warehouses = static_cast<int>(FlagD(flags, "warehouses", 432));
  sconfig.items = 1024;
  sconfig.customers_per_district = 64;
  sconfig.order_capacity_per_district = 128;
  SiloDb db(*manager, sconfig);
  TpccConfig tconfig;
  tconfig.threads = static_cast<int>(FlagD(flags, "threads", 16));
  tconfig.transactions_per_thread = 1500;
  tconfig.warmup_transactions_per_thread = 500;
  tconfig.seed = static_cast<uint64_t>(FlagD(flags, "seed", 5));
  TpccBenchmark tpcc(db, tconfig);
  tpcc.Prepare();
  const TpccResult result = tpcc.Run();
  std::printf("txn_per_sec=%.0f transactions=%lu\n", result.txn_per_sec,
              result.total_transactions);
  return obs_session.Finish({{"workload", "tpcc"}, {"system", system}, {"policy", policy.name}});
}

int RunPageRankCli(const std::map<std::string, std::string>& flags) {
  const std::string system = FlagS(flags, "system", "HeMem");
  const policy::PolicyChoice policy = PolicyFromFlags(flags);
  KroneckerConfig kconfig;
  kconfig.scale = static_cast<int>(FlagD(flags, "graph-scale", 18));
  kconfig.seed = static_cast<uint64_t>(FlagD(flags, "seed", 12));
  const CsrGraph graph = GenerateKronecker(kconfig);
  MachineConfig mc = MachineConfig::Scaled(FlagD(flags, "scale", 8192.0));
  mc.page_bytes = KiB(64);
  mc.pebs.SetAllPeriods(ScaledPebsPeriod(kPaperPebsPeriod, 64.0));
  Machine machine(WithFaultPlan(mc, flags));
  ObsSession obs_session(machine, flags);
  auto manager = MakeSystem(system, machine, policy, MigrationFromFlags(flags));
  manager->Start();
  SimGraph sim_graph(*manager, graph);
  PageRankConfig pconfig;
  pconfig.iterations = static_cast<int>(FlagD(flags, "iterations", 8));
  PageRankBenchmark pr(sim_graph, pconfig);
  pr.Prepare();
  const PageRankResult result = pr.Run();
  std::printf("graph: %lu vertices, %lu edges\n", graph.num_vertices, graph.num_edges);
  for (size_t i = 0; i < result.iteration_time.size(); ++i) {
    std::printf("iteration %zu: %.1f ms\n", i + 1,
                static_cast<double>(result.iteration_time[i]) / 1e6);
  }
  return obs_session.Finish({{"workload", "pagerank"}, {"system", system}, {"policy", policy.name}});
}

int RunBcCli(const std::map<std::string, std::string>& flags) {
  const std::string system = FlagS(flags, "system", "HeMem");
  const policy::PolicyChoice policy = PolicyFromFlags(flags);
  KroneckerConfig kconfig;
  kconfig.scale = static_cast<int>(FlagD(flags, "graph-scale", 18));
  kconfig.seed = static_cast<uint64_t>(FlagD(flags, "seed", 12));
  const CsrGraph graph = GenerateKronecker(kconfig);
  MachineConfig mc = MachineConfig::Scaled(FlagD(flags, "scale", 8192.0));
  mc.page_bytes = KiB(64);
  mc.pebs.SetAllPeriods(ScaledPebsPeriod(kPaperPebsPeriod, 64.0));
  Machine machine(WithFaultPlan(mc, flags));
  ObsSession obs_session(machine, flags);
  auto manager = MakeSystem(system, machine, policy, MigrationFromFlags(flags));
  manager->Start();
  SimGraph sim_graph(*manager, graph);
  BcConfig bconfig;
  bconfig.iterations = static_cast<int>(FlagD(flags, "iterations", 5));
  BcBenchmark bc(sim_graph, bconfig);
  bc.Prepare();
  const BcResult result = bc.Run();
  std::printf("graph: %lu vertices, %lu edges\n", graph.num_vertices, graph.num_edges);
  for (size_t i = 0; i < result.iteration_time.size(); ++i) {
    std::printf("iteration %zu: %.1f ms, nvm writes %.1f MB\n", i + 1,
                static_cast<double>(result.iteration_time[i]) / 1e6,
                static_cast<double>(result.iteration_nvm_writes[i]) / 1048576.0);
  }
  return obs_session.Finish({{"workload", "bc"}, {"system", system}, {"policy", policy.name}});
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv);
  const std::string workload = FlagS(flags, "workload", "gups");
  if (workload == "gups") {
    return RunGupsCli(flags);
  }
  if (workload == "kvs") {
    return RunKvsCli(flags);
  }
  if (workload == "tpcc") {
    return RunTpccCli(flags);
  }
  if (workload == "bc") {
    return RunBcCli(flags);
  }
  if (workload == "pagerank") {
    return RunPageRankCli(flags);
  }
  if (workload == "replay") {
    return RunReplayCli(flags);
  }
  std::fprintf(stderr, "unknown workload '%s' (gups|kvs|tpcc|bc|pagerank|replay)\n", workload.c_str());
  return 2;
}
