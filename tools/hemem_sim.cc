// hemem_sim: command-line driver for ad-hoc tiered-memory experiments.
//
// Runs one workload against one tiering system on a scaled machine and
// prints throughput plus manager/device statistics. Examples:
//
//   hemem_sim --workload=gups --system=HeMem --ws-gb=512 --hot-gb=16
//   hemem_sim --workload=kvs --system=MM --ws-gb=700
//   hemem_sim --workload=tpcc --system=Nimble --warehouses=864
//   hemem_sim --workload=bc --system=HeMem --graph-scale=18
//   hemem_sim --workload=pagerank --system=MM --graph-scale=18
//   hemem_sim --workload=gups --record=/tmp/t.bin --updates=200000
//   hemem_sim --workload=replay --trace=/tmp/t.bin --system=MM
//
// Flags (all optional):
//   --workload=gups|kvs|tpcc|bc   --system=<MakeSystem name>
//   --scale=<machine divisor>     --threads=<n>
//   --ws-gb --hot-gb              (gups, kvs)
//   --warehouses                  (tpcc)
//   --graph-scale --iterations    (bc)
//   --seed                        deterministic run seed

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "apps/bc.h"
#include "tier/trace.h"
#include "apps/flexkvs.h"
#include "apps/gups.h"
#include "apps/pagerank.h"
#include "apps/silo.h"
#include "bench_common.h"
#include "gups_bench.h"

using namespace hemem;
using namespace hemem::bench;

namespace {

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg);
      std::exit(2);
    }
    const char* eq = std::strchr(arg, '=');
    if (eq != nullptr) {
      flags[std::string(arg + 2, eq)] = std::string(eq + 1);
    } else {
      flags[std::string(arg + 2)] = "1";
    }
  }
  return flags;
}

double FlagD(const std::map<std::string, std::string>& flags, const std::string& key,
             double fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::atof(it->second.c_str());
}

std::string FlagS(const std::map<std::string, std::string>& flags, const std::string& key,
                  const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

void PrintCommonStats(Machine& machine, TieredMemoryManager& manager) {
  const auto& stats = manager.stats();
  std::printf("faults=%lu promoted=%lu demoted=%lu migrated_MB=%.1f wp_faults=%lu\n",
              stats.missing_faults, stats.pages_promoted, stats.pages_demoted,
              static_cast<double>(stats.bytes_migrated) / 1048576.0, stats.wp_faults);
  const auto& dram = machine.dram().stats();
  const auto& nvm = machine.nvm().stats();
  std::printf("dram: loads=%lu stores=%lu | nvm: loads=%lu stores=%lu wear_MB=%.1f\n",
              dram.loads, dram.stores, nvm.loads, nvm.stores,
              static_cast<double>(nvm.media_bytes_written) / 1048576.0);
}

int RunGupsCli(const std::map<std::string, std::string>& flags) {
  const std::string system = FlagS(flags, "system", "HeMem");
  GupsConfig config = StandardHotGups(static_cast<int>(FlagD(flags, "threads", 16)));
  config.working_set = PaperGiB(FlagD(flags, "ws-gb", 512));
  config.hot_set = PaperGiB(FlagD(flags, "hot-gb", 16));
  config.seed = static_cast<uint64_t>(FlagD(flags, "seed", 42));

  const std::string record_path = FlagS(flags, "record", "");
  if (!record_path.empty()) {
    // Capture the access trace while running (use a modest op count: traces
    // hold every access).
    Machine machine(GupsMachine());
    auto manager = MakeSystem(system, machine);
    TraceRecorder recorder(*manager);
    recorder.Start();
    config.updates_per_thread = static_cast<uint64_t>(FlagD(flags, "updates", 100'000));
    config.prefill = false;
    GupsBenchmark gups(recorder, config);
    gups.Prepare();
    const GupsResult result = gups.Run();
    if (!recorder.trace().SaveTo(record_path)) {
      std::fprintf(stderr, "failed to write %s\n", record_path.c_str());
      return 1;
    }
    std::printf("recorded %zu accesses (%lu updates) to %s\n",
                recorder.trace().accesses.size(), result.total_updates,
                record_path.c_str());
    return 0;
  }

  const GupsRunOutput out = RunGupsSystem(system, config);
  std::printf("gups=%.4f updates=%lu elapsed_ms=%.1f\n", out.result.gups,
              out.result.total_updates, static_cast<double>(out.result.elapsed) / 1e6);
  std::printf("promoted=%lu demoted=%lu nvm_wear_MB=%.1f pebs_drop=%.4f\n",
              out.pages_promoted, out.pages_demoted,
              static_cast<double>(out.nvm_media_writes) / 1048576.0, out.pebs_drop_rate);
  return 0;
}

int RunReplayCli(const std::map<std::string, std::string>& flags) {
  const std::string path = FlagS(flags, "trace", "");
  Trace trace;
  if (path.empty() || !Trace::LoadFrom(path, &trace)) {
    std::fprintf(stderr, "cannot load trace '%s'\n", path.c_str());
    return 1;
  }
  Machine machine(GupsMachine());
  auto manager = MakeSystem(FlagS(flags, "system", "HeMem"), machine);
  manager->Start();
  TraceReplayer replayer(*manager, trace, flags.count("preserve-gaps") > 0);
  const TraceReplayer::Result result = replayer.Run();
  std::printf("replayed %lu accesses in %.1f ms under %s\n", result.accesses,
              static_cast<double>(result.elapsed) / 1e6, manager->name());
  PrintCommonStats(machine, *manager);
  return 0;
}

int RunKvsCli(const std::map<std::string, std::string>& flags) {
  Machine machine(GupsMachine());
  auto manager = MakeSystem(FlagS(flags, "system", "HeMem"), machine);
  manager->Start();
  KvsConfig config;
  config.value_bytes = 4096;
  config.server_threads = static_cast<int>(FlagD(flags, "threads", 8));
  config.num_keys = PaperGiB(FlagD(flags, "ws-gb", 128)) / 4224;
  config.requests_per_thread = 40'000;
  config.warmup_requests_per_thread = 100'000;
  config.bulk_load = true;
  config.seed = static_cast<uint64_t>(FlagD(flags, "seed", 7));
  FlexKvs kvs(*manager, config);
  kvs.Prepare();
  const KvsResult result = kvs.Run();
  std::printf("mops=%.3f p50_us=%lu p99_us=%lu p999_us=%lu\n", result.mops,
              result.latency.Percentile(0.5), result.latency.Percentile(0.99),
              result.latency.Percentile(0.999));
  PrintCommonStats(machine, *manager);
  return 0;
}

int RunTpccCli(const std::map<std::string, std::string>& flags) {
  MachineConfig mc = MachineConfig::Scaled(115.0);
  mc.page_bytes = KiB(64);
  mc.pebs.SetAllPeriods(ScaledPebsPeriod(kPaperPebsPeriod, 40.0));
  Machine machine(mc);
  auto manager = MakeSystem(FlagS(flags, "system", "HeMem"), machine);
  manager->Start();
  SiloConfig sconfig;
  sconfig.warehouses = static_cast<int>(FlagD(flags, "warehouses", 432));
  sconfig.items = 1024;
  sconfig.customers_per_district = 64;
  sconfig.order_capacity_per_district = 128;
  SiloDb db(*manager, sconfig);
  TpccConfig tconfig;
  tconfig.threads = static_cast<int>(FlagD(flags, "threads", 16));
  tconfig.transactions_per_thread = 1500;
  tconfig.warmup_transactions_per_thread = 500;
  tconfig.seed = static_cast<uint64_t>(FlagD(flags, "seed", 5));
  TpccBenchmark tpcc(db, tconfig);
  tpcc.Prepare();
  const TpccResult result = tpcc.Run();
  std::printf("txn_per_sec=%.0f transactions=%lu\n", result.txn_per_sec,
              result.total_transactions);
  PrintCommonStats(machine, *manager);
  return 0;
}

int RunPageRankCli(const std::map<std::string, std::string>& flags) {
  KroneckerConfig kconfig;
  kconfig.scale = static_cast<int>(FlagD(flags, "graph-scale", 18));
  kconfig.seed = static_cast<uint64_t>(FlagD(flags, "seed", 12));
  const CsrGraph graph = GenerateKronecker(kconfig);
  MachineConfig mc = MachineConfig::Scaled(FlagD(flags, "scale", 8192.0));
  mc.page_bytes = KiB(64);
  mc.pebs.SetAllPeriods(ScaledPebsPeriod(kPaperPebsPeriod, 64.0));
  Machine machine(mc);
  auto manager = MakeSystem(FlagS(flags, "system", "HeMem"), machine);
  manager->Start();
  SimGraph sim_graph(*manager, graph);
  PageRankConfig pconfig;
  pconfig.iterations = static_cast<int>(FlagD(flags, "iterations", 8));
  PageRankBenchmark pr(sim_graph, pconfig);
  pr.Prepare();
  const PageRankResult result = pr.Run();
  std::printf("graph: %lu vertices, %lu edges\n", graph.num_vertices, graph.num_edges);
  for (size_t i = 0; i < result.iteration_time.size(); ++i) {
    std::printf("iteration %zu: %.1f ms\n", i + 1,
                static_cast<double>(result.iteration_time[i]) / 1e6);
  }
  PrintCommonStats(machine, *manager);
  return 0;
}

int RunBcCli(const std::map<std::string, std::string>& flags) {
  KroneckerConfig kconfig;
  kconfig.scale = static_cast<int>(FlagD(flags, "graph-scale", 18));
  kconfig.seed = static_cast<uint64_t>(FlagD(flags, "seed", 12));
  const CsrGraph graph = GenerateKronecker(kconfig);
  MachineConfig mc = MachineConfig::Scaled(FlagD(flags, "scale", 8192.0));
  mc.page_bytes = KiB(64);
  mc.pebs.SetAllPeriods(ScaledPebsPeriod(kPaperPebsPeriod, 64.0));
  Machine machine(mc);
  auto manager = MakeSystem(FlagS(flags, "system", "HeMem"), machine);
  manager->Start();
  SimGraph sim_graph(*manager, graph);
  BcConfig bconfig;
  bconfig.iterations = static_cast<int>(FlagD(flags, "iterations", 5));
  BcBenchmark bc(sim_graph, bconfig);
  bc.Prepare();
  const BcResult result = bc.Run();
  std::printf("graph: %lu vertices, %lu edges\n", graph.num_vertices, graph.num_edges);
  for (size_t i = 0; i < result.iteration_time.size(); ++i) {
    std::printf("iteration %zu: %.1f ms, nvm writes %.1f MB\n", i + 1,
                static_cast<double>(result.iteration_time[i]) / 1e6,
                static_cast<double>(result.iteration_nvm_writes[i]) / 1048576.0);
  }
  PrintCommonStats(machine, *manager);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv);
  const std::string workload = FlagS(flags, "workload", "gups");
  if (workload == "gups") {
    return RunGupsCli(flags);
  }
  if (workload == "kvs") {
    return RunKvsCli(flags);
  }
  if (workload == "tpcc") {
    return RunTpccCli(flags);
  }
  if (workload == "bc") {
    return RunBcCli(flags);
  }
  if (workload == "pagerank") {
    return RunPageRankCli(flags);
  }
  if (workload == "replay") {
    return RunReplayCli(flags);
  }
  std::fprintf(stderr, "unknown workload '%s' (gups|kvs|tpcc|bc|pagerank|replay)\n", workload.c_str());
  return 2;
}
