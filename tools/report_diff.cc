// report_diff: compare two JSON metric files with per-metric threshold gates.
//
// Diffs every numeric leaf of two obs run reports (obs::WriteRunReport) or
// BENCH_*.json files, flattened to dotted paths. Each metric passes when its
// relative difference is within the tolerance that applies to it; the most
// specific matching rule wins (last rule given on the command line, among
// those that match). CI uses this as the perf-regression sentinel: a
// committed baseline report vs a freshly-generated one, with host-time
// metrics (engine.worker.*, wall-clock) ignored — every virtual-time metric
// in the simulator is deterministic, so those gate at zero tolerance.
//
// Usage:
//   report_diff [options] BASELINE.json CURRENT.json
//     --rel-tol=R        default relative tolerance (default 0: exact)
//     --abs-tol=A        absolute slack applied before the relative check
//                        (default 0)
//     --tol=GLOB=R       per-metric override: paths matching GLOB ('*'
//                        matches any run, '?' one character) tolerate R;
//                        repeatable, later flags win over earlier ones
//     --ignore=GLOB      never compare paths matching GLOB; repeatable
//     --allow-missing    a baseline metric absent from CURRENT is a note,
//                        not a failure
//     --max-print=N      cap the printed offender list (default 40)
//
// Exit status: 0 all gates pass, 1 at least one gate failed, 2 usage or
// parse error.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace {

struct TolRule {
  std::string pattern;
  double rel_tol = 0.0;
  bool ignore = false;
};

// Classic glob match: '*' any run, '?' one char, everything else literal.
bool GlobMatch(const char* pattern, const char* text) {
  if (*pattern == '\0') {
    return *text == '\0';
  }
  if (*pattern == '*') {
    for (const char* t = text;; ++t) {
      if (GlobMatch(pattern + 1, t)) {
        return true;
      }
      if (*t == '\0') {
        return false;
      }
    }
  }
  if (*text == '\0') {
    return false;
  }
  if (*pattern == '?' || *pattern == *text) {
    return GlobMatch(pattern + 1, text + 1);
  }
  return false;
}

std::string ReadFile(const std::string& path, bool* ok) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *ok = false;
    return {};
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  *ok = std::ferror(f) == 0;
  std::fclose(f);
  return out;
}

bool LoadFlattened(const std::string& path, std::map<std::string, double>* out) {
  bool ok = false;
  const std::string text = ReadFile(path, &ok);
  if (!ok) {
    std::fprintf(stderr, "report_diff: cannot read %s\n", path.c_str());
    return false;
  }
  hemem::json::Value root;
  std::string error;
  if (!hemem::json::Parse(text, &root, &error)) {
    std::fprintf(stderr, "report_diff: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  *out = hemem::json::FlattenNumbers(root);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double rel_tol = 0.0;
  double abs_tol = 0.0;
  bool allow_missing = false;
  int max_print = 40;
  std::vector<TolRule> rules;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rel-tol=", 0) == 0) {
      rel_tol = std::atof(arg.c_str() + 10);
    } else if (arg.rfind("--abs-tol=", 0) == 0) {
      abs_tol = std::atof(arg.c_str() + 10);
    } else if (arg.rfind("--max-print=", 0) == 0) {
      max_print = std::atoi(arg.c_str() + 12);
    } else if (arg == "--allow-missing") {
      allow_missing = true;
    } else if (arg.rfind("--ignore=", 0) == 0) {
      rules.push_back(TolRule{arg.substr(9), 0.0, /*ignore=*/true});
    } else if (arg.rfind("--tol=", 0) == 0) {
      const std::string body = arg.substr(6);
      const size_t eq = body.rfind('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "report_diff: --tol wants GLOB=R, got %s\n", arg.c_str());
        return 2;
      }
      rules.push_back(
          TolRule{body.substr(0, eq), std::atof(body.c_str() + eq + 1), false});
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "report_diff: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr, "usage: report_diff [options] BASELINE.json CURRENT.json\n");
    return 2;
  }

  std::map<std::string, double> base;
  std::map<std::string, double> cur;
  if (!LoadFlattened(paths[0], &base) || !LoadFlattened(paths[1], &cur)) {
    return 2;
  }

  // Resolves the rule applying to `name`: later command-line rules win.
  const auto rule_for = [&rules, rel_tol](const std::string& name) {
    TolRule r{"", rel_tol, false};
    for (const TolRule& candidate : rules) {
      if (GlobMatch(candidate.pattern.c_str(), name.c_str())) {
        r = candidate;
      }
    }
    return r;
  };

  uint64_t compared = 0;
  uint64_t ignored = 0;
  uint64_t added = 0;
  uint64_t missing = 0;
  uint64_t failed = 0;
  int printed = 0;
  const auto offend = [&](const char* fmt, const std::string& name, double b,
                          double c, double rel) {
    if (printed < max_print) {
      std::fprintf(stderr, fmt, name.c_str(), b, c, rel);
    } else if (printed == max_print) {
      std::fprintf(stderr, "  ... (further offenders suppressed)\n");
    }
    printed++;
  };

  for (const auto& [name, value] : base) {
    const TolRule rule = rule_for(name);
    if (rule.ignore) {
      ignored++;
      continue;
    }
    const auto it = cur.find(name);
    if (it == cur.end()) {
      missing++;
      if (!allow_missing) {
        failed++;
        if (printed < max_print) {
          std::fprintf(stderr, "  MISSING %s (baseline %.17g)\n", name.c_str(), value);
        }
        printed++;
      }
      continue;
    }
    compared++;
    const double diff = std::fabs(it->second - value);
    if (diff <= abs_tol) {
      continue;
    }
    const double denom = std::fabs(value) > 0.0 ? std::fabs(value) : 1.0;
    const double rel = diff / denom;
    if (rel > rule.rel_tol) {
      failed++;
      offend("  FAIL %s: baseline %.17g, current %.17g (rel %.4g)\n", name,
             value, it->second, rel);
    }
  }
  for (const auto& [name, value] : cur) {
    (void)value;
    if (base.find(name) == base.end() && !rule_for(name).ignore) {
      added++;
    }
  }

  std::fprintf(stderr,
               "report_diff: %" PRIu64 " compared, %" PRIu64 " ignored, %" PRIu64
               " missing, %" PRIu64 " new, %" PRIu64 " failed (%s vs %s)\n",
               compared, ignored, missing, added, failed, paths[0].c_str(),
               paths[1].c_str());
  return failed == 0 ? 0 : 1;
}
