# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/pebs_test[1]_include.cmake")
include("/root/repo/build/tests/tier_test[1]_include.cmake")
include("/root/repo/build/tests/hemem_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
