file(REMOVE_RECURSE
  "CMakeFiles/pebs_test.dir/pebs_test.cc.o"
  "CMakeFiles/pebs_test.dir/pebs_test.cc.o.d"
  "pebs_test"
  "pebs_test.pdb"
  "pebs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pebs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
