file(REMOVE_RECURSE
  "CMakeFiles/hemem_test.dir/hemem_test.cc.o"
  "CMakeFiles/hemem_test.dir/hemem_test.cc.o.d"
  "hemem_test"
  "hemem_test.pdb"
  "hemem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
