# Empty compiler generated dependencies file for hemem_test.
# This may be replaced when dependencies are built.
