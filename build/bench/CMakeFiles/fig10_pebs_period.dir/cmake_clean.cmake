file(REMOVE_RECURSE
  "CMakeFiles/fig10_pebs_period.dir/fig10_pebs_period.cc.o"
  "CMakeFiles/fig10_pebs_period.dir/fig10_pebs_period.cc.o.d"
  "fig10_pebs_period"
  "fig10_pebs_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pebs_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
