# Empty dependencies file for fig10_pebs_period.
# This may be replaced when dependencies are built.
