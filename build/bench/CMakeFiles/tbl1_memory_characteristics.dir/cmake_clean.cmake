file(REMOVE_RECURSE
  "CMakeFiles/tbl1_memory_characteristics.dir/tbl1_memory_characteristics.cc.o"
  "CMakeFiles/tbl1_memory_characteristics.dir/tbl1_memory_characteristics.cc.o.d"
  "tbl1_memory_characteristics"
  "tbl1_memory_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl1_memory_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
