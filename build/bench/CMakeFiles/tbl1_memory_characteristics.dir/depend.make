# Empty dependencies file for tbl1_memory_characteristics.
# This may be replaced when dependencies are built.
