file(REMOVE_RECURSE
  "CMakeFiles/abl_daemon.dir/abl_daemon.cc.o"
  "CMakeFiles/abl_daemon.dir/abl_daemon.cc.o.d"
  "abl_daemon"
  "abl_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
