# Empty dependencies file for abl_daemon.
# This may be replaced when dependencies are built.
