file(REMOVE_RECURSE
  "CMakeFiles/abl_thermostat.dir/abl_thermostat.cc.o"
  "CMakeFiles/abl_thermostat.dir/abl_thermostat.cc.o.d"
  "abl_thermostat"
  "abl_thermostat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_thermostat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
