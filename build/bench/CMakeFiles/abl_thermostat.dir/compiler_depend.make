# Empty compiler generated dependencies file for abl_thermostat.
# This may be replaced when dependencies are built.
