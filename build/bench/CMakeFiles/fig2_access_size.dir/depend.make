# Empty dependencies file for fig2_access_size.
# This may be replaced when dependencies are built.
