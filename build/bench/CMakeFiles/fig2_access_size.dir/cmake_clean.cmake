file(REMOVE_RECURSE
  "CMakeFiles/fig2_access_size.dir/fig2_access_size.cc.o"
  "CMakeFiles/fig2_access_size.dir/fig2_access_size.cc.o.d"
  "fig2_access_size"
  "fig2_access_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_access_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
