file(REMOVE_RECURSE
  "CMakeFiles/abl_dma_config.dir/abl_dma_config.cc.o"
  "CMakeFiles/abl_dma_config.dir/abl_dma_config.cc.o.d"
  "abl_dma_config"
  "abl_dma_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dma_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
