# Empty dependencies file for abl_dma_config.
# This may be replaced when dependencies are built.
