file(REMOVE_RECURSE
  "CMakeFiles/fig16_nvm_wear.dir/fig16_nvm_wear.cc.o"
  "CMakeFiles/fig16_nvm_wear.dir/fig16_nvm_wear.cc.o.d"
  "fig16_nvm_wear"
  "fig16_nvm_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_nvm_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
