# Empty compiler generated dependencies file for fig16_nvm_wear.
# This may be replaced when dependencies are built.
