file(REMOVE_RECURSE
  "CMakeFiles/abl_swap_tier.dir/abl_swap_tier.cc.o"
  "CMakeFiles/abl_swap_tier.dir/abl_swap_tier.cc.o.d"
  "abl_swap_tier"
  "abl_swap_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_swap_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
