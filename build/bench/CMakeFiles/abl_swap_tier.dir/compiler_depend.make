# Empty compiler generated dependencies file for abl_swap_tier.
# This may be replaced when dependencies are built.
