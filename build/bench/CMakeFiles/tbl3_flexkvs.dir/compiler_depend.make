# Empty compiler generated dependencies file for tbl3_flexkvs.
# This may be replaced when dependencies are built.
