file(REMOVE_RECURSE
  "CMakeFiles/tbl3_flexkvs.dir/tbl3_flexkvs.cc.o"
  "CMakeFiles/tbl3_flexkvs.dir/tbl3_flexkvs.cc.o.d"
  "tbl3_flexkvs"
  "tbl3_flexkvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl3_flexkvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
