# Empty dependencies file for fig11_hot_threshold.
# This may be replaced when dependencies are built.
