file(REMOVE_RECURSE
  "CMakeFiles/fig3_pt_scan.dir/fig3_pt_scan.cc.o"
  "CMakeFiles/fig3_pt_scan.dir/fig3_pt_scan.cc.o.d"
  "fig3_pt_scan"
  "fig3_pt_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_pt_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
