# Empty dependencies file for fig3_pt_scan.
# This may be replaced when dependencies are built.
