file(REMOVE_RECURSE
  "CMakeFiles/micro_devicemodel.dir/micro_devicemodel.cc.o"
  "CMakeFiles/micro_devicemodel.dir/micro_devicemodel.cc.o.d"
  "micro_devicemodel"
  "micro_devicemodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_devicemodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
