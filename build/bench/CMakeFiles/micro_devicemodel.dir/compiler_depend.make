# Empty compiler generated dependencies file for micro_devicemodel.
# This may be replaced when dependencies are built.
