# Empty dependencies file for fig13_silo_tpcc.
# This may be replaced when dependencies are built.
