file(REMOVE_RECURSE
  "CMakeFiles/fig13_silo_tpcc.dir/fig13_silo_tpcc.cc.o"
  "CMakeFiles/fig13_silo_tpcc.dir/fig13_silo_tpcc.cc.o.d"
  "fig13_silo_tpcc"
  "fig13_silo_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_silo_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
