# Empty compiler generated dependencies file for fig5_gups_uniform.
# This may be replaced when dependencies are built.
