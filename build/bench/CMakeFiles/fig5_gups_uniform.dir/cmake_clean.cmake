file(REMOVE_RECURSE
  "CMakeFiles/fig5_gups_uniform.dir/fig5_gups_uniform.cc.o"
  "CMakeFiles/fig5_gups_uniform.dir/fig5_gups_uniform.cc.o.d"
  "fig5_gups_uniform"
  "fig5_gups_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gups_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
