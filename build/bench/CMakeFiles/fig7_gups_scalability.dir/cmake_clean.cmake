file(REMOVE_RECURSE
  "CMakeFiles/fig7_gups_scalability.dir/fig7_gups_scalability.cc.o"
  "CMakeFiles/fig7_gups_scalability.dir/fig7_gups_scalability.cc.o.d"
  "fig7_gups_scalability"
  "fig7_gups_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_gups_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
