# Empty dependencies file for fig7_gups_scalability.
# This may be replaced when dependencies are built.
