file(REMOVE_RECURSE
  "CMakeFiles/tbl4_flexkvs_priority.dir/tbl4_flexkvs_priority.cc.o"
  "CMakeFiles/tbl4_flexkvs_priority.dir/tbl4_flexkvs_priority.cc.o.d"
  "tbl4_flexkvs_priority"
  "tbl4_flexkvs_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl4_flexkvs_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
