# Empty dependencies file for tbl4_flexkvs_priority.
# This may be replaced when dependencies are built.
