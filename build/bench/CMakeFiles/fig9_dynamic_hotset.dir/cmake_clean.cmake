file(REMOVE_RECURSE
  "CMakeFiles/fig9_dynamic_hotset.dir/fig9_dynamic_hotset.cc.o"
  "CMakeFiles/fig9_dynamic_hotset.dir/fig9_dynamic_hotset.cc.o.d"
  "fig9_dynamic_hotset"
  "fig9_dynamic_hotset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dynamic_hotset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
