
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_gups_hotset.cc" "bench/CMakeFiles/fig6_gups_hotset.dir/fig6_gups_hotset.cc.o" "gcc" "bench/CMakeFiles/fig6_gups_hotset.dir/fig6_gups_hotset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hemem_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_tier.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_pebs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
