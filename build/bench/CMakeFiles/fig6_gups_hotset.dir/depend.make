# Empty dependencies file for fig6_gups_hotset.
# This may be replaced when dependencies are built.
