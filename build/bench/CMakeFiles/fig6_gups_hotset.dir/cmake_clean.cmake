file(REMOVE_RECURSE
  "CMakeFiles/fig6_gups_hotset.dir/fig6_gups_hotset.cc.o"
  "CMakeFiles/fig6_gups_hotset.dir/fig6_gups_hotset.cc.o.d"
  "fig6_gups_hotset"
  "fig6_gups_hotset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gups_hotset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
