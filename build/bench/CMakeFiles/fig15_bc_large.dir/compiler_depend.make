# Empty compiler generated dependencies file for fig15_bc_large.
# This may be replaced when dependencies are built.
