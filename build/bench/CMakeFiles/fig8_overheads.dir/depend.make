# Empty dependencies file for fig8_overheads.
# This may be replaced when dependencies are built.
