file(REMOVE_RECURSE
  "CMakeFiles/fig8_overheads.dir/fig8_overheads.cc.o"
  "CMakeFiles/fig8_overheads.dir/fig8_overheads.cc.o.d"
  "fig8_overheads"
  "fig8_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
