# Empty dependencies file for fig14_bc_small.
# This may be replaced when dependencies are built.
