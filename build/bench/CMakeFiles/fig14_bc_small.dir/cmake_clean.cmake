file(REMOVE_RECURSE
  "CMakeFiles/fig14_bc_small.dir/fig14_bc_small.cc.o"
  "CMakeFiles/fig14_bc_small.dir/fig14_bc_small.cc.o.d"
  "fig14_bc_small"
  "fig14_bc_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_bc_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
