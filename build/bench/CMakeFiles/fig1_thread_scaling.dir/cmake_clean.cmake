file(REMOVE_RECURSE
  "CMakeFiles/fig1_thread_scaling.dir/fig1_thread_scaling.cc.o"
  "CMakeFiles/fig1_thread_scaling.dir/fig1_thread_scaling.cc.o.d"
  "fig1_thread_scaling"
  "fig1_thread_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_thread_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
