file(REMOVE_RECURSE
  "CMakeFiles/fig12_cooling.dir/fig12_cooling.cc.o"
  "CMakeFiles/fig12_cooling.dir/fig12_cooling.cc.o.d"
  "fig12_cooling"
  "fig12_cooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
