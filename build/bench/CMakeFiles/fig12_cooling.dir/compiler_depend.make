# Empty compiler generated dependencies file for fig12_cooling.
# This may be replaced when dependencies are built.
