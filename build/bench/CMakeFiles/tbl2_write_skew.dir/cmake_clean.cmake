file(REMOVE_RECURSE
  "CMakeFiles/tbl2_write_skew.dir/tbl2_write_skew.cc.o"
  "CMakeFiles/tbl2_write_skew.dir/tbl2_write_skew.cc.o.d"
  "tbl2_write_skew"
  "tbl2_write_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl2_write_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
