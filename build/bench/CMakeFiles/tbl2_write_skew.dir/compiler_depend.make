# Empty compiler generated dependencies file for tbl2_write_skew.
# This may be replaced when dependencies are built.
