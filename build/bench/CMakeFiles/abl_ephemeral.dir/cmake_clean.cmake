file(REMOVE_RECURSE
  "CMakeFiles/abl_ephemeral.dir/abl_ephemeral.cc.o"
  "CMakeFiles/abl_ephemeral.dir/abl_ephemeral.cc.o.d"
  "abl_ephemeral"
  "abl_ephemeral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ephemeral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
