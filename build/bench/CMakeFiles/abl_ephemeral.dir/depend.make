# Empty dependencies file for abl_ephemeral.
# This may be replaced when dependencies are built.
