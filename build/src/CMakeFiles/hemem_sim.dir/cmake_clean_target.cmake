file(REMOVE_RECURSE
  "libhemem_sim.a"
)
