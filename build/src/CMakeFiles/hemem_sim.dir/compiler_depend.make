# Empty compiler generated dependencies file for hemem_sim.
# This may be replaced when dependencies are built.
