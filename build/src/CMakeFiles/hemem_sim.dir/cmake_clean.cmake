file(REMOVE_RECURSE
  "CMakeFiles/hemem_sim.dir/sim/engine.cc.o"
  "CMakeFiles/hemem_sim.dir/sim/engine.cc.o.d"
  "libhemem_sim.a"
  "libhemem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
