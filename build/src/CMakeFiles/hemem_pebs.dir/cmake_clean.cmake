file(REMOVE_RECURSE
  "CMakeFiles/hemem_pebs.dir/pebs/pebs.cc.o"
  "CMakeFiles/hemem_pebs.dir/pebs/pebs.cc.o.d"
  "libhemem_pebs.a"
  "libhemem_pebs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemem_pebs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
