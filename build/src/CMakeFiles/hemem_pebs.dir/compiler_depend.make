# Empty compiler generated dependencies file for hemem_pebs.
# This may be replaced when dependencies are built.
