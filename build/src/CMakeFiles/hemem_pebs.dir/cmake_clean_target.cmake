file(REMOVE_RECURSE
  "libhemem_pebs.a"
)
