file(REMOVE_RECURSE
  "CMakeFiles/hemem_tier.dir/tier/machine.cc.o"
  "CMakeFiles/hemem_tier.dir/tier/machine.cc.o.d"
  "CMakeFiles/hemem_tier.dir/tier/manager.cc.o"
  "CMakeFiles/hemem_tier.dir/tier/manager.cc.o.d"
  "CMakeFiles/hemem_tier.dir/tier/memory_mode.cc.o"
  "CMakeFiles/hemem_tier.dir/tier/memory_mode.cc.o.d"
  "CMakeFiles/hemem_tier.dir/tier/nimble.cc.o"
  "CMakeFiles/hemem_tier.dir/tier/nimble.cc.o.d"
  "CMakeFiles/hemem_tier.dir/tier/plain.cc.o"
  "CMakeFiles/hemem_tier.dir/tier/plain.cc.o.d"
  "CMakeFiles/hemem_tier.dir/tier/thermostat.cc.o"
  "CMakeFiles/hemem_tier.dir/tier/thermostat.cc.o.d"
  "CMakeFiles/hemem_tier.dir/tier/trace.cc.o"
  "CMakeFiles/hemem_tier.dir/tier/trace.cc.o.d"
  "CMakeFiles/hemem_tier.dir/tier/xmem.cc.o"
  "CMakeFiles/hemem_tier.dir/tier/xmem.cc.o.d"
  "libhemem_tier.a"
  "libhemem_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemem_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
