# Empty compiler generated dependencies file for hemem_tier.
# This may be replaced when dependencies are built.
