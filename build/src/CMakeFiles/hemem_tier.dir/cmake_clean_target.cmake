file(REMOVE_RECURSE
  "libhemem_tier.a"
)
