
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tier/machine.cc" "src/CMakeFiles/hemem_tier.dir/tier/machine.cc.o" "gcc" "src/CMakeFiles/hemem_tier.dir/tier/machine.cc.o.d"
  "/root/repo/src/tier/manager.cc" "src/CMakeFiles/hemem_tier.dir/tier/manager.cc.o" "gcc" "src/CMakeFiles/hemem_tier.dir/tier/manager.cc.o.d"
  "/root/repo/src/tier/memory_mode.cc" "src/CMakeFiles/hemem_tier.dir/tier/memory_mode.cc.o" "gcc" "src/CMakeFiles/hemem_tier.dir/tier/memory_mode.cc.o.d"
  "/root/repo/src/tier/nimble.cc" "src/CMakeFiles/hemem_tier.dir/tier/nimble.cc.o" "gcc" "src/CMakeFiles/hemem_tier.dir/tier/nimble.cc.o.d"
  "/root/repo/src/tier/plain.cc" "src/CMakeFiles/hemem_tier.dir/tier/plain.cc.o" "gcc" "src/CMakeFiles/hemem_tier.dir/tier/plain.cc.o.d"
  "/root/repo/src/tier/thermostat.cc" "src/CMakeFiles/hemem_tier.dir/tier/thermostat.cc.o" "gcc" "src/CMakeFiles/hemem_tier.dir/tier/thermostat.cc.o.d"
  "/root/repo/src/tier/trace.cc" "src/CMakeFiles/hemem_tier.dir/tier/trace.cc.o" "gcc" "src/CMakeFiles/hemem_tier.dir/tier/trace.cc.o.d"
  "/root/repo/src/tier/xmem.cc" "src/CMakeFiles/hemem_tier.dir/tier/xmem.cc.o" "gcc" "src/CMakeFiles/hemem_tier.dir/tier/xmem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hemem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_pebs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
