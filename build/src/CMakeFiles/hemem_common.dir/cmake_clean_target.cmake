file(REMOVE_RECURSE
  "libhemem_common.a"
)
