# Empty dependencies file for hemem_common.
# This may be replaced when dependencies are built.
