file(REMOVE_RECURSE
  "CMakeFiles/hemem_common.dir/common/histogram.cc.o"
  "CMakeFiles/hemem_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/hemem_common.dir/common/rng.cc.o"
  "CMakeFiles/hemem_common.dir/common/rng.cc.o.d"
  "libhemem_common.a"
  "libhemem_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemem_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
