file(REMOVE_RECURSE
  "CMakeFiles/hemem_vm.dir/vm/page_table.cc.o"
  "CMakeFiles/hemem_vm.dir/vm/page_table.cc.o.d"
  "CMakeFiles/hemem_vm.dir/vm/tlb.cc.o"
  "CMakeFiles/hemem_vm.dir/vm/tlb.cc.o.d"
  "libhemem_vm.a"
  "libhemem_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemem_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
