file(REMOVE_RECURSE
  "libhemem_vm.a"
)
