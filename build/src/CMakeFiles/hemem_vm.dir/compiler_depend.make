# Empty compiler generated dependencies file for hemem_vm.
# This may be replaced when dependencies are built.
