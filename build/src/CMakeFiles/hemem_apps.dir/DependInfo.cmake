
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bc.cc" "src/CMakeFiles/hemem_apps.dir/apps/bc.cc.o" "gcc" "src/CMakeFiles/hemem_apps.dir/apps/bc.cc.o.d"
  "/root/repo/src/apps/flexkvs.cc" "src/CMakeFiles/hemem_apps.dir/apps/flexkvs.cc.o" "gcc" "src/CMakeFiles/hemem_apps.dir/apps/flexkvs.cc.o.d"
  "/root/repo/src/apps/graph.cc" "src/CMakeFiles/hemem_apps.dir/apps/graph.cc.o" "gcc" "src/CMakeFiles/hemem_apps.dir/apps/graph.cc.o.d"
  "/root/repo/src/apps/gups.cc" "src/CMakeFiles/hemem_apps.dir/apps/gups.cc.o" "gcc" "src/CMakeFiles/hemem_apps.dir/apps/gups.cc.o.d"
  "/root/repo/src/apps/pagerank.cc" "src/CMakeFiles/hemem_apps.dir/apps/pagerank.cc.o" "gcc" "src/CMakeFiles/hemem_apps.dir/apps/pagerank.cc.o.d"
  "/root/repo/src/apps/silo.cc" "src/CMakeFiles/hemem_apps.dir/apps/silo.cc.o" "gcc" "src/CMakeFiles/hemem_apps.dir/apps/silo.cc.o.d"
  "/root/repo/src/apps/tpcc.cc" "src/CMakeFiles/hemem_apps.dir/apps/tpcc.cc.o" "gcc" "src/CMakeFiles/hemem_apps.dir/apps/tpcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hemem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_tier.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_pebs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
