# Empty compiler generated dependencies file for hemem_apps.
# This may be replaced when dependencies are built.
