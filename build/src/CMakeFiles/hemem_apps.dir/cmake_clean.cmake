file(REMOVE_RECURSE
  "CMakeFiles/hemem_apps.dir/apps/bc.cc.o"
  "CMakeFiles/hemem_apps.dir/apps/bc.cc.o.d"
  "CMakeFiles/hemem_apps.dir/apps/flexkvs.cc.o"
  "CMakeFiles/hemem_apps.dir/apps/flexkvs.cc.o.d"
  "CMakeFiles/hemem_apps.dir/apps/graph.cc.o"
  "CMakeFiles/hemem_apps.dir/apps/graph.cc.o.d"
  "CMakeFiles/hemem_apps.dir/apps/gups.cc.o"
  "CMakeFiles/hemem_apps.dir/apps/gups.cc.o.d"
  "CMakeFiles/hemem_apps.dir/apps/pagerank.cc.o"
  "CMakeFiles/hemem_apps.dir/apps/pagerank.cc.o.d"
  "CMakeFiles/hemem_apps.dir/apps/silo.cc.o"
  "CMakeFiles/hemem_apps.dir/apps/silo.cc.o.d"
  "CMakeFiles/hemem_apps.dir/apps/tpcc.cc.o"
  "CMakeFiles/hemem_apps.dir/apps/tpcc.cc.o.d"
  "libhemem_apps.a"
  "libhemem_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemem_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
