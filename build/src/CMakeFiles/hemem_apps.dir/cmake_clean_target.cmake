file(REMOVE_RECURSE
  "libhemem_apps.a"
)
