file(REMOVE_RECURSE
  "libhemem_mem.a"
)
