
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/block_device.cc" "src/CMakeFiles/hemem_mem.dir/mem/block_device.cc.o" "gcc" "src/CMakeFiles/hemem_mem.dir/mem/block_device.cc.o.d"
  "/root/repo/src/mem/device.cc" "src/CMakeFiles/hemem_mem.dir/mem/device.cc.o" "gcc" "src/CMakeFiles/hemem_mem.dir/mem/device.cc.o.d"
  "/root/repo/src/mem/dma.cc" "src/CMakeFiles/hemem_mem.dir/mem/dma.cc.o" "gcc" "src/CMakeFiles/hemem_mem.dir/mem/dma.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hemem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hemem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
