file(REMOVE_RECURSE
  "CMakeFiles/hemem_mem.dir/mem/block_device.cc.o"
  "CMakeFiles/hemem_mem.dir/mem/block_device.cc.o.d"
  "CMakeFiles/hemem_mem.dir/mem/device.cc.o"
  "CMakeFiles/hemem_mem.dir/mem/device.cc.o.d"
  "CMakeFiles/hemem_mem.dir/mem/dma.cc.o"
  "CMakeFiles/hemem_mem.dir/mem/dma.cc.o.d"
  "libhemem_mem.a"
  "libhemem_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemem_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
