# Empty dependencies file for hemem_mem.
# This may be replaced when dependencies are built.
