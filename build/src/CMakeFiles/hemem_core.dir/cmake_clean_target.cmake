file(REMOVE_RECURSE
  "libhemem_core.a"
)
