# Empty dependencies file for hemem_core.
# This may be replaced when dependencies are built.
