file(REMOVE_RECURSE
  "CMakeFiles/hemem_core.dir/core/daemon.cc.o"
  "CMakeFiles/hemem_core.dir/core/daemon.cc.o.d"
  "CMakeFiles/hemem_core.dir/core/hemem.cc.o"
  "CMakeFiles/hemem_core.dir/core/hemem.cc.o.d"
  "CMakeFiles/hemem_core.dir/core/page_lists.cc.o"
  "CMakeFiles/hemem_core.dir/core/page_lists.cc.o.d"
  "CMakeFiles/hemem_core.dir/core/scanner.cc.o"
  "CMakeFiles/hemem_core.dir/core/scanner.cc.o.d"
  "libhemem_core.a"
  "libhemem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
