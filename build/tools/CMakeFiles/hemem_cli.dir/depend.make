# Empty dependencies file for hemem_cli.
# This may be replaced when dependencies are built.
