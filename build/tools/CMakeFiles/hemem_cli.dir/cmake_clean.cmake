file(REMOVE_RECURSE
  "CMakeFiles/hemem_cli.dir/hemem_sim.cc.o"
  "CMakeFiles/hemem_cli.dir/hemem_sim.cc.o.d"
  "hemem_sim"
  "hemem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemem_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
