// Size and time unit helpers used throughout the simulator.
//
// All simulated time is kept in nanoseconds as int64_t (SimTime); all sizes
// are bytes as uint64_t. The helpers below exist so that configuration code
// reads like the paper ("192 GB DRAM", "10 ms policy period") rather than as
// raw magic numbers.

#ifndef HEMEM_COMMON_UNITS_H_
#define HEMEM_COMMON_UNITS_H_

#include <cstdint>

namespace hemem {

// Simulated time, in nanoseconds.
using SimTime = int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

constexpr uint64_t KiB(uint64_t n) { return n << 10; }
constexpr uint64_t MiB(uint64_t n) { return n << 20; }
constexpr uint64_t GiB(uint64_t n) { return n << 30; }
constexpr uint64_t TiB(uint64_t n) { return n << 40; }

// Gigabytes-per-second expressed as bytes-per-nanosecond times 2^30 / 10^9;
// we keep bandwidth as double bytes/ns for precision.
constexpr double GiBps(double gib_per_s) {
  return gib_per_s * (1024.0 * 1024.0 * 1024.0) / 1e9;  // bytes per ns
}

// Converts a byte count to seconds at the given bandwidth (bytes/ns).
constexpr double TransferNs(uint64_t bytes, double bytes_per_ns) {
  return static_cast<double>(bytes) / bytes_per_ns;
}

// Integer ceiling division.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

// Rounds `v` up to a multiple of `align` (align need not be a power of two).
constexpr uint64_t RoundUp(uint64_t v, uint64_t align) { return CeilDiv(v, align) * align; }

// Rounds `v` down to a multiple of `align`.
constexpr uint64_t RoundDown(uint64_t v, uint64_t align) { return v / align * align; }

}  // namespace hemem

#endif  // HEMEM_COMMON_UNITS_H_
