// Deterministic pseudo-random number generation for simulation.
//
// Everything in this repository must be reproducible run-to-run, so all
// randomness flows through explicitly seeded generators. We use
// xoshiro256** (Blackman & Vigna) — fast, high quality, and trivially
// embeddable — plus distribution helpers (uniform ranges, Zipf) that the
// workload generators need.

#ifndef HEMEM_COMMON_RNG_H_
#define HEMEM_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace hemem {

// xoshiro256** 1.0. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  uint64_t operator()() { return Next(); }
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

// Zipf-distributed generator over [0, n). Produces ranks where rank 0 is the
// most popular. Uses the rejection-inversion method of Hörmann & Derflinger,
// which needs no O(n) setup table and is exact for any n.
class ZipfGenerator {
 public:
  // theta is the Zipf exponent (0 = uniform-ish as theta->0; ~0.99 typical for
  // key-value store workloads).
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

// Fisher-Yates shuffle of an index permutation [0, n); used to build
// non-consecutive hot sets (the paper's hot pages are a random subset).
std::vector<uint64_t> RandomPermutation(uint64_t n, Rng& rng);

// SplitMix64 hash; used to derive per-thread seeds and synthetic contents
// deterministically from addresses.
uint64_t Mix64(uint64_t x);

}  // namespace hemem

#endif  // HEMEM_COMMON_RNG_H_
