// Fixed-width time-bucketed accumulator for "instantaneous" metrics
// (e.g. the paper's Figure 9 instantaneous-GUPS and Figure 16 per-iteration
// NVM-write plots). Header-only.

#ifndef HEMEM_COMMON_TIME_SERIES_H_
#define HEMEM_COMMON_TIME_SERIES_H_

#include <cstddef>
#include <vector>

#include "common/units.h"

namespace hemem {

class TimeSeries {
 public:
  explicit TimeSeries(SimTime bucket_width) : bucket_width_(bucket_width) {}

  void Record(SimTime t, double value = 1.0) {
    if (t < 0) {
      return;
    }
    const size_t idx = static_cast<size_t>(t / bucket_width_);
    if (idx >= buckets_.size()) {
      buckets_.resize(idx + 1, 0.0);
    }
    buckets_[idx] += value;
  }

  // Value per bucket divided by the bucket width in seconds (a rate).
  std::vector<double> RatePerSecond() const {
    std::vector<double> out(buckets_.size());
    const double seconds = static_cast<double>(bucket_width_) / static_cast<double>(kSecond);
    for (size_t i = 0; i < buckets_.size(); ++i) {
      out[i] = buckets_[i] / seconds;
    }
    return out;
  }

  const std::vector<double>& buckets() const { return buckets_; }
  SimTime bucket_width() const { return bucket_width_; }

 private:
  SimTime bucket_width_;
  std::vector<double> buckets_;
};

}  // namespace hemem

#endif  // HEMEM_COMMON_TIME_SERIES_H_
