// Fixed-width time-bucketed accumulator for "instantaneous" metrics
// (e.g. the paper's Figure 9 instantaneous-GUPS and Figure 16 per-iteration
// NVM-write plots). Header-only.

#ifndef HEMEM_COMMON_TIME_SERIES_H_
#define HEMEM_COMMON_TIME_SERIES_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/units.h"

namespace hemem {

class TimeSeries {
 public:
  explicit TimeSeries(SimTime bucket_width) : bucket_width_(bucket_width) {}

  void Record(SimTime t, double value = 1.0) {
    if (t < 0) {
      return;
    }
    const size_t idx = static_cast<size_t>(t / bucket_width_);
    if (idx >= buckets_.size()) {
      buckets_.resize(idx + 1, 0.0);
    }
    buckets_[idx] += value;
    last_time_ = std::max(last_time_, t);
  }

  // Value per bucket divided by that bucket's observed width in seconds (a
  // rate). Interior buckets span the full bucket width; the final bucket is
  // clamped to `end` — or, when no `end` is given, to the last recorded
  // time — so a run that stops mid-bucket is not understated. An `end`
  // at or before the final bucket's start degrades to a 1 ns width rather
  // than dividing by zero.
  std::vector<double> RatePerSecond(SimTime end = -1) const {
    std::vector<double> out(buckets_.size());
    if (buckets_.empty()) {
      return out;
    }
    const double seconds = static_cast<double>(bucket_width_) / static_cast<double>(kSecond);
    for (size_t i = 0; i + 1 < buckets_.size(); ++i) {
      out[i] = buckets_[i] / seconds;
    }
    const size_t last = buckets_.size() - 1;
    const SimTime bucket_start = static_cast<SimTime>(last) * bucket_width_;
    const SimTime observed_end = end >= 0 ? end : last_time_;
    const SimTime width =
        std::clamp<SimTime>(observed_end - bucket_start, 1, bucket_width_);
    out[last] = buckets_[last] / (static_cast<double>(width) / static_cast<double>(kSecond));
    return out;
  }

  // Folds another series (same bucket width) into this one, bucket-wise.
  // For count-valued series (Record with the default 1.0) the result is
  // bit-identical to recording everything into one series in any order:
  // per-bucket sums are exact small integers.
  void Merge(const TimeSeries& other) {
    if (other.buckets_.size() > buckets_.size()) {
      buckets_.resize(other.buckets_.size(), 0.0);
    }
    for (size_t i = 0; i < other.buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
    last_time_ = std::max(last_time_, other.last_time_);
  }

  const std::vector<double>& buckets() const { return buckets_; }
  SimTime bucket_width() const { return bucket_width_; }
  // Largest time seen by Record (0 when nothing has been recorded).
  SimTime last_time() const { return last_time_; }

 private:
  SimTime bucket_width_;
  SimTime last_time_ = 0;
  std::vector<double> buckets_;
};

}  // namespace hemem

#endif  // HEMEM_COMMON_TIME_SERIES_H_
