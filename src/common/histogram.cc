#include "common/histogram.h"

#include <bit>

namespace hemem {

Histogram::Histogram() : buckets_(static_cast<size_t>(kGroups) * kSubBuckets, 0) {}

int Histogram::BucketIndex(uint64_t value) {
  // Group = position of the highest bit above the sub-bucket range; sub-bucket
  // = the kSubBucketBits bits below it. Values < kSubBuckets land in group 0
  // with exact (width-1) buckets.
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  const int high = 63 - std::countl_zero(value);
  const int group = high - kSubBucketBits + 1;
  const int sub = static_cast<int>(value >> (high - kSubBucketBits)) & (kSubBuckets - 1);
  return group * kSubBuckets + sub;
}

uint64_t Histogram::BucketMidpoint(int index) {
  const int group = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (group == 0) {
    return static_cast<uint64_t>(sub);
  }
  const int shift = group - 1;
  const uint64_t base = (static_cast<uint64_t>(kSubBuckets) | static_cast<uint64_t>(sub))
                        << shift;
  const uint64_t width = 1ull << shift;
  return base + width / 2;
}

void Histogram::Record(uint64_t value) {
  buckets_[static_cast<size_t>(BucketIndex(value))]++;
  count_++;
  sum_ += value;
  if (value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q < 0) {
    q = 0;
  }
  if (q > 1) {
    q = 1;
  }
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return BucketMidpoint(static_cast<int>(i));
    }
  }
  return max_;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

}  // namespace hemem
