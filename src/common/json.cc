#include "common/json.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace hemem::json {

const Value* Value::Get(const std::string& key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : s_(text), error_(error) {}

  bool Run(Value* out) {
    SkipWs();
    if (!ParseValue(out, 0)) {
      return false;
    }
    SkipWs();
    if (pos_ != s_.size()) {
      return Fail("trailing characters after top-level value");
    }
    return true;
  }

 private:
  // Reports in the files this parses nest ~6 deep; 200 guards against a
  // pathological input blowing the host stack, not against real data.
  static constexpr int kMaxDepth = 200;

  bool ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = Value::Kind::kString;
        return ParseString(&out->text);
      case 't':
        out->kind = Value::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = Value::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = Value::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Value* out, int depth) {
    out->kind = Value::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return Fail("expected ':' in object");
      }
      ++pos_;
      SkipWs();
      Value member;
      if (!ParseValue(&member, depth + 1)) {
        return false;
      }
      out->members.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(Value* out, int depth) {
    out->kind = Value::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      Value item;
      if (!ParseValue(&item, depth + 1)) {
        return false;
      }
      out->items.push_back(std::move(item));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    if (Peek() != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= s_.size()) {
        return Fail("truncated escape");
      }
      const char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!Hex4(&cp)) {
            return false;
          }
          // Combine a surrogate pair when one follows; a lone surrogate
          // decodes to U+FFFD rather than invalid UTF-8.
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < s_.size() &&
              s_[pos_] == '\\' && s_[pos_ + 1] == 'u') {
            pos_ += 2;
            unsigned low = 0;
            if (!Hex4(&low)) {
              return false;
            }
            if (low >= 0xDC00 && low <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              cp = 0xFFFD;
            }
          } else if (cp >= 0xD800 && cp <= 0xDFFF) {
            cp = 0xFFFD;
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
    return Fail("unterminated string");
  }

  bool Hex4(unsigned* out) {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
        return Fail("invalid \\u escape");
      }
      const char c = s_[pos_++];
      v = v * 16 + static_cast<unsigned>(
                       c <= '9' ? c - '0' : (c | 0x20) - 'a' + 10);
    }
    *out = v;
    return true;
  }

  static void AppendUtf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseNumber(Value* out) {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    // Integer part: "0" alone or a nonzero-led digit run (RFC 8259 rejects
    // leading zeros).
    if (Peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(Peek()))) {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    } else {
      return Fail("expected value");
    }
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digits required after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digits required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    out->kind = Value::Kind::kNumber;
    out->text = s_.substr(start, pos_ - start);
    out->number = std::strtod(out->text.c_str(), nullptr);
    return true;
  }

  bool Literal(const char* lit) {
    const size_t len = std::strlen(lit);
    if (s_.compare(pos_, len, lit) != 0) {
      return Fail("expected value");
    }
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Fail(const char* what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(what) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  const std::string& s_;
  std::string* error_;
  size_t pos_ = 0;
};

void FlattenInto(const Value& v, const std::string& prefix,
                 std::map<std::string, double>* out) {
  switch (v.kind) {
    case Value::Kind::kNumber:
      (*out)[prefix] = v.number;
      break;
    case Value::Kind::kObject:
      for (const auto& [key, member] : v.members) {
        FlattenInto(member, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case Value::Kind::kArray:
      for (size_t i = 0; i < v.items.size(); ++i) {
        const std::string key = std::to_string(i);
        FlattenInto(v.items[i], prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    default:
      break;  // strings / bools / nulls carry no diffable number
  }
}

}  // namespace

bool Parse(const std::string& text, Value* out, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  *out = Value{};
  Parser parser(text, error);
  return parser.Run(out);
}

std::map<std::string, double> FlattenNumbers(const Value& v) {
  std::map<std::string, double> out;
  FlattenInto(v, "", &out);
  return out;
}

}  // namespace hemem::json
