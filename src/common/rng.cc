#include "common/rng.h"

#include <cmath>

namespace hemem {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(state);
}

Rng::Rng(uint64_t seed) {
  // Seed the four lanes from SplitMix64 per the xoshiro authors'
  // recommendation; a raw user seed (even 0) yields a full-period state.
  uint64_t sm = seed;
  for (auto& lane : s_) {
    lane = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBounded(hi - lo + 1); }

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta_));
}

double ZipfGenerator::H(double x) const {
  // Integral of x^-theta; special-cased near theta == 1.
  const double one_minus = 1.0 - theta_;
  if (std::abs(one_minus) < 1e-12) {
    return std::log(x);
  }
  return std::pow(x, one_minus) / one_minus;
}

double ZipfGenerator::HInverse(double x) const {
  const double one_minus = 1.0 - theta_;
  if (std::abs(one_minus) < 1e-12) {
    return std::exp(x);
  }
  return std::pow(x * one_minus, 1.0 / one_minus);
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  while (true) {
    const double u = h_x1_ + rng.NextDouble() * (h_n_ - h_x1_);
    const double x = HInverse(u);
    const uint64_t k = static_cast<uint64_t>(x + 0.5);
    const double kd = static_cast<double>(k);
    if (kd - x <= s_) {
      return (k == 0 ? 1 : k) - 1;
    }
    if (u >= H(kd + 0.5) - std::pow(kd, -theta_)) {
      return (k == 0 ? 1 : k) - 1;
    }
  }
}

std::vector<uint64_t> RandomPermutation(uint64_t n, Rng& rng) {
  std::vector<uint64_t> perm(n);
  for (uint64_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  for (uint64_t i = n; i > 1; --i) {
    const uint64_t j = rng.NextBounded(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace hemem
