// Latency histogram with percentile queries.
//
// HDR-style log-linear bucketing: values are grouped into buckets whose width
// grows with magnitude, giving ~1% relative precision across nine decades
// with a few KB of memory. Used by the key-value store benches to report the
// paper's 50p/90p/99p/99.9p latency rows (Tables 3 and 4).

#ifndef HEMEM_COMMON_HISTOGRAM_H_
#define HEMEM_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hemem {

class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  // Value at quantile q in [0, 1]; returns 0 on an empty histogram.
  uint64_t Percentile(double q) const;

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

 private:
  static constexpr int kSubBucketBits = 6;  // 64 linear sub-buckets per decade-ish group
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kGroups = 64 - kSubBucketBits;

  static int BucketIndex(uint64_t value);
  static uint64_t BucketMidpoint(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
};

}  // namespace hemem

#endif  // HEMEM_COMMON_HISTOGRAM_H_
