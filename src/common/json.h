// Minimal strict JSON (RFC 8259) parser.
//
// The obs layer *writes* several JSON artifacts (run reports, traces, heat
// timelines, audit trails, BENCH_*.json); tools/report_diff has to *read*
// them back without growing a third-party dependency. This parser accepts
// exactly the RFC 8259 grammar — no comments, no trailing commas, no NaN —
// mirroring the checker tests/obs_test.cc uses to validate the writers, so
// "report_diff can load it" and "the CI validator accepts it" stay the same
// predicate.
//
// Not a hot-path component: parse cost is irrelevant next to running the
// simulations that produce the files.

#ifndef HEMEM_COMMON_JSON_H_
#define HEMEM_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace hemem::json {

struct Value {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;                                    // original token for numbers
  std::vector<Value> items;                            // kArray
  std::vector<std::pair<std::string, Value>> members;  // kObject, file order

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Member lookup on objects; nullptr when absent or not an object.
  const Value* Get(const std::string& key) const;
};

// Parses `text` into `*out`. On failure returns false and, when `error` is
// non-null, stores a one-line message with the byte offset of the problem.
bool Parse(const std::string& text, Value* out, std::string* error = nullptr);

// Flattens every numeric leaf under `v` into dotted-path form: object
// members join with '.', array elements with their index
// ("workloads.0.policies.1.gups"). Strings/bools/nulls are skipped —
// report_diff's thresholds only make sense on numbers.
std::map<std::string, double> FlattenNumbers(const Value& v);

}  // namespace hemem::json

#endif  // HEMEM_COMMON_JSON_H_
