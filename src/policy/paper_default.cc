#include "policy/paper_default.h"

namespace hemem::policy {

// The three phases below are the pre-refactor Hemem::PolicyPass moved onto
// the PolicyEnv executor, line for line: the same pop order, the same
// alloc-failure handling, the same budget arithmetic, the same flush
// points. Do not "clean up" control flow here without re-recording the
// AccessGolden fingerprints — the goldens are the spec.
MigrationPlan PaperDefaultPolicy::Decide(PolicyInput& in) {
  PolicyEnv& env = *in.env;
  const uint64_t page_bytes = env.PageBytes();
  const int dram = kTierDram;
  const int nvm = kTierNvm;
  SimTime t = in.now;
  uint64_t budget = in.budget_bytes;

  // Phase 0: an externally assigned DRAM quota (HememDaemon) caps this
  // instance; demote cold pages down to it.
  if (env.DramQuota() > 0) {
    while (env.DramUsage() > env.DramQuota() && budget >= page_bytes) {
      void* victim = env.PopColdFront(dram);
      if (victim == nullptr) {
        victim = env.PopHotBack(dram);
      }
      if (victim == nullptr) {
        break;
      }
      OnDemotionCandidate(env, victim);
      if (env.TryFlipDemote(victim, t)) {
        continue;  // zero-copy shadow flip: no frame, no bytes, no queue slot
      }
      uint32_t frame = 0;
      if (!env.TryAllocFrame(nvm, t, &frame)) {
        env.Requeue(victim);
        break;
      }
      env.QueueMigration(victim, nvm, frame);
      budget -= page_bytes;
      if (env.QueuedMigrations() >= static_cast<size_t>(env.DmaBatch())) {
        t = env.FlushMigrations(t);
      }
    }
    t = env.FlushMigrations(t);
  }

  // Phase 1: keep the DRAM free watermark so allocations land in DRAM.
  // Demote cold pages first; if none are cold, demote "random" data (the
  // oldest hot page — deterministic and FIFO-fair).
  while (env.FreeBytes(dram) + env.QueuedMigrations() * page_bytes <
             env.WatermarkBytes() &&
         budget >= page_bytes) {
    void* victim = env.PopColdFront(dram);
    if (victim == nullptr) {
      victim = env.PopHotBack(dram);
    }
    if (victim == nullptr) {
      break;
    }
    OnDemotionCandidate(env, victim);
    if (env.TryFlipDemote(victim, t)) {
      continue;  // zero-copy shadow flip raised FreeBytes(dram) directly
    }
    uint32_t frame = 0;
    if (!env.TryAllocFrame(nvm, t, &frame)) {
      env.Requeue(victim);  // put it back; NVM is full (or the alloc deferred)
      break;
    }
    env.QueueMigration(victim, nvm, frame);
    budget -= page_bytes;
    if (env.QueuedMigrations() >= static_cast<size_t>(env.DmaBatch())) {
      t = env.FlushMigrations(t);
    }
  }
  t = env.FlushMigrations(t);

  // Phase 2: promote the NVM hot list (write-heavy pages sit at its front).
  bool stalled = false;
  while (!stalled && budget >= page_bytes && !env.HotEmpty(nvm)) {
    while (env.QueuedMigrations() < static_cast<size_t>(env.DmaBatch()) &&
           budget >= page_bytes) {
      void* hot_page = env.PopHotFront(nvm);
      if (hot_page == nullptr) {
        break;
      }
      // Above the quota no promotion happens (the daemon gave the DRAM to
      // someone else); otherwise a DRAM frame comes from free memory above
      // the watermark, else by demoting a cold DRAM page. No cold DRAM page
      // and no free memory means the hot set exceeds DRAM: stop migrating.
      if (env.DramQuota() > 0 && env.DramUsage() >= env.DramQuota()) {
        env.Requeue(hot_page);
        stalled = true;
        break;
      }
      uint32_t frame = 0;
      bool have_frame = false;
      if (env.FreeBytes(dram) > env.WatermarkBytes()) {
        have_frame = env.TryAllocFrame(dram, t, &frame);
      }
      if (!have_frame) {
        void* victim = env.PopColdFront(dram);
        if (victim == nullptr) {
          env.Requeue(hot_page);  // back onto the NVM hot list
          stalled = true;
          env.NotePromotionStall();
          break;
        }
        OnDemotionCandidate(env, victim);
        if (!env.TryFlipDemote(victim, t)) {
          uint32_t nvm_frame = 0;
          if (!env.TryAllocFrame(nvm, t, &nvm_frame)) {
            env.Requeue(hot_page);
            env.Requeue(victim);
            stalled = true;
            break;
          }
          budget = budget >= page_bytes ? budget - page_bytes : 0;
          t = env.MigrateOne(victim, nvm, nvm_frame, t);
        }
        have_frame = env.TryAllocFrame(dram, t, &frame);
        if (!have_frame) {
          env.Requeue(hot_page);
          stalled = true;
          break;
        }
      }
      env.QueueMigration(hot_page, dram, frame);
      budget -= page_bytes;
    }
    t = env.FlushMigrations(t);
  }

  return MigrationPlan{t, budget, stalled};
}

}  // namespace hemem::policy
