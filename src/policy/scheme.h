// SchemePolicy: DAMON-style declarative classification rules.
//
// DAMON's operation schemes express policy as predicates over region
// history ("pages of regions larger than X accessed less than Y for Z
// intervals: demote"). Here a scheme is an ordered rule list matched
// against each page's PolicyFeatures; the first matching rule decides
// hot/cold, and pages no rule matches fall back to the paper thresholds.
// Migration mechanics are inherited from the paper default — rules move
// only the classification boundary, which is what drives the migration
// phases' pop order.
//
// Grammar (mirrors --fault-spec's name:key=value,... shape):
//   spec  := rule (';' rule)* [';']
//   rule  := ('hot' | 'cold') [':' cond (',' cond)*]
//   cond  := key '=' uint
//   key   := min_acc | max_acc   surviving sampled accesses (reads+writes)
//          | min_writes | max_writes
//          | min_age | max_age   recency bucket (cooling epochs since
//                                last sample, log2-bucketed, 0..7)
//          | min_pages | max_pages   containing region size, in pages
//          | tier                0 = DRAM, 1 = NVM
//          | shadow              0 = no clean shadow, 1 = clean NVM shadow
//                                (non-exclusive migration mode; a rule like
//                                "cold:shadow=1,max_acc=0" demotes idle
//                                shadowed pages first — those demotions are
//                                free)
//
// Example: "hot:tier=1,min_acc=2;cold:max_acc=0,min_age=2" promotes NVM
// pages after two surviving samples and declares pages unseen for two
// epochs cold.

#ifndef HEMEM_POLICY_SCHEME_H_
#define HEMEM_POLICY_SCHEME_H_

#include <string>
#include <vector>

#include "policy/paper_default.h"

namespace hemem::policy {

struct SchemeRule {
  bool hot = false;  // the action when the rule matches
  uint64_t min_acc = 0;
  uint64_t max_acc = UINT64_MAX;
  uint32_t min_writes = 0;
  uint32_t max_writes = UINT32_MAX;
  uint32_t min_age = 0;
  uint32_t max_age = UINT32_MAX;
  uint64_t min_pages = 0;
  uint64_t max_pages = UINT64_MAX;
  int tier = -1;    // -1 = any
  int shadow = -1;  // -1 = any, 0/1 = match pages without/with a clean shadow

  bool Matches(const PolicyFeatures& f) const;
};

// Parses a scheme spec. Returns false and sets *error (with the offending
// token) on malformed input; an empty spec parses to an empty rule list.
bool ParseSchemeSpec(const std::string& spec, std::vector<SchemeRule>* out,
                     std::string* error);

class SchemePolicy : public PaperDefaultPolicy {
 public:
  SchemePolicy(PolicyConfig config, std::vector<SchemeRule> rules)
      : PaperDefaultPolicy(config),
        rules_(std::move(rules)),
        rule_hits_(rules_.size(), 0) {}

  const char* name() const override { return "scheme"; }

  PolicyVerdict Classify(const PolicyFeatures& features) const override;
  void EmitMetrics(obs::MetricsEmitter& e) const override;

  const std::vector<SchemeRule>& rules() const { return rules_; }

 private:
  std::vector<SchemeRule> rules_;
  // First-match counters, one per rule plus a fallback slot; mutable so the
  // pure-verdict Classify can account matches without changing behavior.
  mutable std::vector<uint64_t> rule_hits_;
  mutable uint64_t fallback_hits_ = 0;
};

}  // namespace hemem::policy

#endif  // HEMEM_POLICY_SCHEME_H_
