// PerceptronPolicy: an online-learned hot/cold scorer over PolicyFeatures.
//
// Shape borrowed from hashed-perceptron branch/reuse predictors (and the
// LDOS swappable-policy thread): a small integer weight vector scores the
// feature vector; the page is hot when the score clears zero. Training is
// mistake-driven with a margin, from two label sources the sampling and
// policy paths provide for free:
//
//   * a page being *sampled* is being touched right now -> train hot,
//   * a page popped as a *demotion victim* sat at the cold-list front
//     (or the hot-list tail under quota pressure) -> train cold.
//
// All state is int32; updates are clamped, order-deterministic (driven by
// the deterministic sample/pass streams) and wall-clock-free, so two
// identical runs replay bit-identically (tests/policy_test.cc asserts
// this). Migration mechanics are inherited unchanged from the paper
// default; only the classification boundary moves.

#ifndef HEMEM_POLICY_PERCEPTRON_H_
#define HEMEM_POLICY_PERCEPTRON_H_

#include "policy/paper_default.h"

namespace hemem::policy {

class PerceptronPolicy : public PaperDefaultPolicy {
 public:
  explicit PerceptronPolicy(PolicyConfig config);

  const char* name() const override { return "perceptron"; }
  bool wants_observations() const override { return true; }

  PolicyVerdict Classify(const PolicyFeatures& features) const override;
  void ObserveSample(const PolicyFeatures& features, bool is_store, SimTime t) override;
  void ObserveScan(const PolicyFeatures& features, bool dirty, SimTime t) override;
  void EmitMetrics(obs::MetricsEmitter& e) const override;

  // Deterministic digest of the weight vector, for replay tests.
  uint64_t WeightChecksum() const;
  uint64_t updates() const { return updates_; }

 protected:
  void OnDemotionCandidate(PolicyEnv& env, void* page) override;

 private:
  static constexpr int kNumWeights = 8;  // [0] is the bias
  static constexpr int32_t kWeightMin = -64;
  static constexpr int32_t kWeightMax = 63;
  static constexpr int32_t kMargin = 8;

  void Features(const PolicyFeatures& f, int32_t (&x)[kNumWeights]) const;
  int32_t Score(const int32_t (&x)[kNumWeights]) const;
  void Train(const PolicyFeatures& f, bool hot_label);

  int32_t weights_[kNumWeights];
  uint64_t updates_ = 0;       // weight vector changes
  uint64_t hot_trains_ = 0;    // hot-label training events
  uint64_t cold_trains_ = 0;   // cold-label training events
};

}  // namespace hemem::policy

#endif  // HEMEM_POLICY_PERCEPTRON_H_
