// PaperDefaultPolicy: HeMem's policy exactly as the paper describes it,
// extracted verbatim from the pre-refactor Hemem::Classify/PolicyPass.
//
// Classification: a page is hot once its surviving read count reaches the
// read threshold or its write count the write threshold; write-heavy pages
// jump the hot queue. Migration: demote to an external quota, then to the
// DRAM free watermark (cold first, then oldest hot), then promote the NVM
// hot list — taking DRAM frames from free memory above the watermark, else
// by demoting a cold DRAM page inline, stalling when neither exists.
//
// This class is the refactor's equivalence oracle: under it, every
// AccessGolden fingerprint must stay bit-identical to the pre-extraction
// recordings (tests/policy_test.cc asserts this).

#ifndef HEMEM_POLICY_PAPER_DEFAULT_H_
#define HEMEM_POLICY_PAPER_DEFAULT_H_

#include "policy/policy.h"

namespace hemem::policy {

class PaperDefaultPolicy : public MigrationPolicy {
 public:
  explicit PaperDefaultPolicy(PolicyConfig config) : MigrationPolicy(config) {}

  const char* name() const override { return "default"; }

  PolicyVerdict Classify(const PolicyFeatures& features) const override {
    return PolicyVerdict{features.reads >= config_.hot_read_threshold ||
                             features.writes >= config_.hot_write_threshold,
                         features.write_heavy};
  }

  MigrationPlan Decide(PolicyInput& in) override;

 protected:
  // Learning hook for subclasses: called with every page popped as a
  // demotion victim (it sat at the cold-list front, or the hot-list back
  // under quota pressure) before it is queued for demotion. The default
  // does nothing, so the base Decide stays bit-exact.
  virtual void OnDemotionCandidate(PolicyEnv& env, void* page) {
    (void)env;
    (void)page;
  }
};

}  // namespace hemem::policy

#endif  // HEMEM_POLICY_PAPER_DEFAULT_H_
