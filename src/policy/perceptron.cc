#include "policy/perceptron.h"

#include <algorithm>
#include <bit>

namespace hemem::policy {

namespace {

inline int32_t Clamp4Bit(uint32_t v) { return static_cast<int32_t>(std::min<uint32_t>(v, 15)); }

}  // namespace

PerceptronPolicy::PerceptronPolicy(PolicyConfig config) : PaperDefaultPolicy(config) {
  // Initialize so the untrained scorer approximates the paper thresholds:
  // with x[1] = min(reads,15), x[2] = min(writes,15) and a -16 bias,
  // 2*reads or 4*writes clearing 16 reproduces reads >= 8 || writes >= 4
  // (mixed read/write traffic additionally qualifies — the first thing the
  // learner generalizes).
  for (int32_t& w : weights_) {
    w = 0;
  }
  weights_[0] = -16;  // bias
  weights_[1] = 2;    // reads
  weights_[2] = 4;    // writes
}

void PerceptronPolicy::Features(const PolicyFeatures& f, int32_t (&x)[kNumWeights]) const {
  x[0] = 1;  // bias
  x[1] = Clamp4Bit(f.reads);
  x[2] = Clamp4Bit(f.writes);
  x[3] = f.write_heavy ? 1 : 0;
  // Recency inverted: recently sampled pages score higher.
  x[4] = static_cast<int32_t>(kMaxRecencyBucket - std::min(f.recency_bucket, kMaxRecencyBucket));
  x[5] = static_cast<int32_t>(f.rw_ratio_q8 >> 5);  // write share, 0..8
  x[6] = static_cast<int32_t>(std::min<int>(std::bit_width(f.region_pages), 15));
  x[7] = f.tier == kTierNvm ? 1 : 0;
}

int32_t PerceptronPolicy::Score(const int32_t (&x)[kNumWeights]) const {
  int32_t score = 0;
  for (int i = 0; i < kNumWeights; ++i) {
    score += weights_[i] * x[i];
  }
  return score;
}

PolicyVerdict PerceptronPolicy::Classify(const PolicyFeatures& f) const {
  int32_t x[kNumWeights];
  Features(f, x);
  // Queue-order heuristic stays the paper's: write-heavy pages go first.
  return PolicyVerdict{Score(x) >= 0, f.write_heavy};
}

void PerceptronPolicy::Train(const PolicyFeatures& f, bool hot_label) {
  int32_t x[kNumWeights];
  Features(f, x);
  const int32_t score = Score(x);
  // Mistake-driven with a margin: only update when the score is on the
  // wrong side or inside the confidence band.
  if (hot_label ? score >= kMargin : score <= -kMargin) {
    return;
  }
  const int32_t dir = hot_label ? 1 : -1;
  for (int i = 0; i < kNumWeights; ++i) {
    weights_[i] = std::clamp(weights_[i] + dir * x[i], kWeightMin, kWeightMax);
  }
  updates_++;
  if (hot_label) {
    hot_trains_++;
  } else {
    cold_trains_++;
  }
}

void PerceptronPolicy::ObserveSample(const PolicyFeatures& f, bool /*is_store*/, SimTime) {
  // Being sampled is the hot signal itself; only reinforce pages with some
  // history so a single stray sample cannot drag the boundary.
  if (f.accesses_since_cool >= 2) {
    Train(f, /*hot_label=*/true);
  }
}

void PerceptronPolicy::ObserveScan(const PolicyFeatures& f, bool /*dirty*/, SimTime) {
  if (f.accesses_since_cool >= 2) {
    Train(f, /*hot_label=*/true);
  }
}

void PerceptronPolicy::OnDemotionCandidate(PolicyEnv& env, void* page) {
  Train(env.FeaturesOf(page), /*hot_label=*/false);
}

uint64_t PerceptronPolicy::WeightChecksum() const {
  uint64_t sum = 0;
  for (int i = 0; i < kNumWeights; ++i) {
    sum = sum * 1000003ull + static_cast<uint64_t>(static_cast<uint32_t>(weights_[i]));
  }
  return sum;
}

void PerceptronPolicy::EmitMetrics(obs::MetricsEmitter& e) const {
  e.Emit("policy.perceptron.updates", updates_);
  e.Emit("policy.perceptron.hot_trains", hot_trains_);
  e.Emit("policy.perceptron.cold_trains", cold_trains_);
  e.Emit("policy.perceptron.weight_checksum", WeightChecksum());
}

}  // namespace hemem::policy
