#include "policy/scheme.h"

#include <cstdlib>

namespace hemem::policy {

namespace {

// Splits `s` on `sep`, dropping empty pieces (so trailing separators are
// legal, as in --fault-spec).
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      end = s.size();
    }
    if (end > start) {
      out.push_back(s.substr(start, end - start));
    }
    start = end + 1;
  }
  return out;
}

bool ParseUint(const std::string& s, uint64_t* out) {
  if (s.empty() || s[0] == '-' || s[0] == '+') {
    return false;  // strtoull would silently wrap negatives
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

}  // namespace

bool SchemeRule::Matches(const PolicyFeatures& f) const {
  if (tier >= 0 && f.tier != tier) {
    return false;
  }
  if (shadow >= 0 && static_cast<int>(f.shadow_clean) != shadow) {
    return false;
  }
  if (f.accesses_since_cool < min_acc || f.accesses_since_cool > max_acc) {
    return false;
  }
  if (f.writes < min_writes || f.writes > max_writes) {
    return false;
  }
  if (f.recency_bucket < min_age || f.recency_bucket > max_age) {
    return false;
  }
  if (f.region_pages < min_pages || f.region_pages > max_pages) {
    return false;
  }
  return true;
}

bool ParseSchemeSpec(const std::string& spec, std::vector<SchemeRule>* out,
                     std::string* error) {
  std::vector<SchemeRule> rules;
  for (const std::string& rule_str : Split(spec, ';')) {
    const size_t colon = rule_str.find(':');
    const std::string action = rule_str.substr(0, colon);
    SchemeRule rule;
    if (action == "hot") {
      rule.hot = true;
    } else if (action == "cold") {
      rule.hot = false;
    } else {
      return Fail(error, "unknown scheme action '" + action + "' (hot|cold)");
    }
    if (colon != std::string::npos) {
      for (const std::string& cond : Split(rule_str.substr(colon + 1), ',')) {
        const size_t eq = cond.find('=');
        if (eq == std::string::npos) {
          return Fail(error, "scheme condition '" + cond + "' is not key=value");
        }
        const std::string key = cond.substr(0, eq);
        uint64_t value = 0;
        if (!ParseUint(cond.substr(eq + 1), &value)) {
          return Fail(error, "scheme condition '" + cond + "' needs an unsigned value");
        }
        if (key == "min_acc") {
          rule.min_acc = value;
        } else if (key == "max_acc") {
          rule.max_acc = value;
        } else if (key == "min_writes") {
          rule.min_writes = static_cast<uint32_t>(value);
        } else if (key == "max_writes") {
          rule.max_writes = static_cast<uint32_t>(value);
        } else if (key == "min_age") {
          rule.min_age = static_cast<uint32_t>(value);
        } else if (key == "max_age") {
          rule.max_age = static_cast<uint32_t>(value);
        } else if (key == "min_pages") {
          rule.min_pages = value;
        } else if (key == "max_pages") {
          rule.max_pages = value;
        } else if (key == "tier") {
          if (value > 1) {
            return Fail(error, "scheme tier must be 0 (DRAM) or 1 (NVM)");
          }
          rule.tier = static_cast<int>(value);
        } else if (key == "shadow") {
          if (value > 1) {
            return Fail(error, "scheme shadow must be 0 (none) or 1 (clean shadow)");
          }
          rule.shadow = static_cast<int>(value);
        } else {
          return Fail(error, "unknown scheme key '" + key + "'");
        }
      }
    }
    rules.push_back(rule);
  }
  *out = std::move(rules);
  return true;
}

PolicyVerdict SchemePolicy::Classify(const PolicyFeatures& f) const {
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].Matches(f)) {
      rule_hits_[i]++;
      return PolicyVerdict{rules_[i].hot, f.write_heavy};
    }
  }
  fallback_hits_++;
  // No rule matched: the paper thresholds decide.
  return PaperDefaultPolicy::Classify(f);
}

void SchemePolicy::EmitMetrics(obs::MetricsEmitter& e) const {
  e.Emit("policy.scheme.rules", static_cast<uint64_t>(rules_.size()));
  e.Emit("policy.scheme.fallback_hits", fallback_hits_);
  uint64_t matched = 0;
  for (const uint64_t h : rule_hits_) {
    matched += h;
  }
  e.Emit("policy.scheme.rule_hits", matched);
}

}  // namespace hemem::policy
