// MigrationPolicy: the pluggable hot/cold classification + migration layer.
//
// HeMem's contribution is asynchronous *sampling* feeding a *policy*; this
// interface is the seam between the two. A manager owns the mechanism —
// lists, frames, DMA batches, fault handling, cooling bookkeeping — and a
// MigrationPolicy owns the decisions:
//
//   * Classify(features)    -> hot/cold verdict on every sampling event,
//   * ObserveSample/Scan    -> optional learning hooks on the sampling path,
//   * Decide(PolicyInput)   -> one migration pass, driven through a
//                              PolicyEnv the manager implements,
//   * Apportion(...)        -> the daemon's cross-instance DRAM split.
//
// Contract (see DESIGN.md "Policy layer"):
//   * Sampling-path hooks (Classify, ObserveSample, ObserveScan) run once
//     per PEBS record / scanned PTE on the manager's tracking thread. They
//     must be allocation-free and must not touch the PolicyEnv.
//   * Decide may interleave list pops, frame allocations and migrations
//     through its PolicyEnv — pages it migrates are re-classified onto the
//     destination tier's lists immediately, so a page demoted early in a
//     pass can legitimately be promoted later in the same pass (the paper
//     default depends on this).
//   * Determinism: policies run inside a deterministic simulation. State
//     updates may depend only on the features/times handed in (integer or
//     fixed-point arithmetic for learned state; no wall clock, no
//     unseeded randomness), so identical runs replay bit-identically.
//
// This library links below the page table and the managers, so the
// interface is plain data: pages travel as opaque handles, tiers as small
// ints (policy::kTierDram / kTierNvm).

#ifndef HEMEM_POLICY_POLICY_H_
#define HEMEM_POLICY_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "policy/features.h"

namespace hemem::policy {

// Classification thresholds, derived by each manager from its own params at
// construction (so existing threshold sweeps keep working).
struct PolicyConfig {
  uint32_t hot_read_threshold = 8;
  uint32_t hot_write_threshold = 4;
  uint32_t cooling_threshold = 18;
};

// Sampling-path verdict: hot/cold, plus whether the page should jump to the
// front of the hot queue (the paper sends write-heavy pages first because
// NVM write bandwidth is the scarce resource).
struct PolicyVerdict {
  bool hot = false;
  bool front = false;
};

// The executor a manager hands to Decide: list access, accounting, frame
// allocation and migration, all by opaque page handle. Implemented by
// Hemem's policy-pass adapter; migrations queue into DMA batches and flush
// either explicitly or when the batch fills.
class PolicyEnv {
 public:
  virtual ~PolicyEnv() = default;

  // List access. Pops detach the page (it is on no list until Requeue or a
  // migration re-classifies it); nullptr when the list is empty.
  virtual void* PopColdFront(int tier) = 0;
  virtual void* PopHotFront(int tier) = 0;
  virtual void* PopHotBack(int tier) = 0;
  virtual bool HotEmpty(int tier) const = 0;
  // Re-classifies a popped page back onto the list its counters demand.
  virtual void Requeue(void* page) = 0;
  // Feature snapshot for a popped page (for policies that learn from
  // migration candidates; the paper default never calls this).
  virtual PolicyFeatures FeaturesOf(void* page) const = 0;

  // Accounting.
  virtual uint64_t PageBytes() const = 0;
  virtual uint64_t FreeBytes(int tier) const = 0;
  virtual uint64_t WatermarkBytes() const = 0;
  virtual uint64_t DramUsage() const = 0;
  virtual uint64_t DramQuota() const = 0;  // 0 = uncapped
  virtual int DmaBatch() const = 0;

  // Frame allocation with the manager's fault-injection draws; false means
  // "defer to a later pass" (pool empty or a transient alloc fault fired).
  virtual bool TryAllocFrame(int tier, SimTime now, uint32_t* frame) = 0;

  // Migration. QueueMigration adds to the pending DMA batch;
  // FlushMigrations copies the batch (returns the new time cursor) and
  // re-classifies the moved pages. MigrateOne copies a single page
  // immediately *without* disturbing the pending batch (the paper's inline
  // victim demotion during promotion). NotePromotionStall records that the
  // hot set exceeded DRAM.
  virtual void QueueMigration(void* page, int dst_tier, uint32_t frame) = 0;
  virtual size_t QueuedMigrations() const = 0;
  virtual SimTime FlushMigrations(SimTime t) = 0;
  virtual SimTime MigrateOne(void* page, int dst_tier, uint32_t frame, SimTime t) = 0;
  virtual void NotePromotionStall() = 0;

  // Zero-copy demotion (non-exclusive migration mode): when the popped page
  // still holds a clean NVM shadow of itself, the manager flips the mapping
  // back onto it — the DRAM frame frees immediately, no bytes move, no
  // destination frame is needed — and returns true; the caller skips the
  // copy path for this victim. The default (and every exclusive-mode
  // manager) returns false, leaving the copy-demotion flow bit-identical.
  virtual bool TryFlipDemote(void* page, SimTime now) {
    (void)page;
    (void)now;
    return false;
  }
};

// One policy pass: the time cursor (base cost already applied), the
// migration byte budget for this pass, and the executor.
struct PolicyInput {
  SimTime now = 0;
  uint64_t budget_bytes = 0;
  PolicyEnv* env = nullptr;
  // Audit pass id (obs::MigrationAudit::BeginDecisionPass); 0 when access
  // observation is off. The manager stamps it; policies never touch it.
  uint64_t decision_id = 0;
};

// What the pass did: final time cursor, unspent budget, and whether
// promotion stalled (hot set exceeded DRAM).
struct MigrationPlan {
  SimTime end = 0;
  uint64_t budget_left = 0;
  bool stalled = false;
};

// Input to the daemon's cross-instance DRAM apportionment.
struct ApportionInput {
  uint64_t dram_bytes = 0;   // the global pool being divided
  uint64_t floor_bytes = 0;  // per-instance minimum share (page-rounded)
  uint64_t page_bytes = 0;
};

class MigrationPolicy {
 public:
  explicit MigrationPolicy(PolicyConfig config) : config_(config) {}
  virtual ~MigrationPolicy() = default;

  virtual const char* name() const = 0;

  // True when the policy wants ObserveSample/ObserveScan calls. Managers
  // gate feature extraction on this so the default policy's sampling path
  // stays as lean as the pre-extraction code.
  virtual bool wants_observations() const { return false; }

  // Sampling-path hooks (allocation-free; see the contract above). The
  // features are the page's post-decay, post-increment counters.
  virtual void ObserveSample(const PolicyFeatures& features, bool is_store, SimTime t) {
    (void)features;
    (void)is_store;
    (void)t;
  }
  virtual void ObserveScan(const PolicyFeatures& features, bool dirty, SimTime t) {
    (void)features;
    (void)dirty;
    (void)t;
  }

  // Hot/cold verdict for one page. Pure: called on every sampling event and
  // from Requeue/migration re-classification.
  virtual PolicyVerdict Classify(const PolicyFeatures& features) const = 0;

  // One migration pass over the PolicyEnv.
  virtual MigrationPlan Decide(PolicyInput& in) = 0;

  // Cross-instance DRAM split (HememDaemon). The default implements the
  // demand-proportional share with a per-instance floor; `demand` is one
  // hot-bytes signal per instance, `quotas` is pre-sized to match.
  virtual void Apportion(const ApportionInput& in, const std::vector<double>& demand,
                         std::vector<uint64_t>* quotas) const;

  // Policy-owned metrics, merged into the owning manager's provider.
  virtual void EmitMetrics(obs::MetricsEmitter& e) const { (void)e; }

  const PolicyConfig& config() const { return config_; }

 protected:
  PolicyConfig config_;
};

// ---------------------------------------------------------------------------
// Registry: --policy=default|perceptron|scheme[:spec] plumbing.

struct PolicyChoice {
  std::string name = "default";
  std::string spec;  // scheme rules (or future policy-specific config)
};

// Splits a --policy flag value at the first ':' into name and inline spec
// ("scheme:hot:min_acc=2" -> {scheme, "hot:min_acc=2"}). Never fails; name
// validation happens in MakePolicy.
PolicyChoice ParsePolicyFlag(const std::string& value);

// Constructs the named policy, or returns nullptr with *error set (unknown
// name, malformed scheme spec). The error message lists the registered
// names so CLI callers can surface it verbatim.
std::unique_ptr<MigrationPolicy> MakePolicy(const PolicyChoice& choice,
                                            const PolicyConfig& config,
                                            std::string* error);

// Registered policy names, for help text and error messages.
const std::vector<std::string>& RegisteredPolicyNames();

}  // namespace hemem::policy

#endif  // HEMEM_POLICY_POLICY_H_
