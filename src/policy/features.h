// PolicyFeatures: the one per-page feature vector every migration policy
// consumes, plus the shared cooling/decay arithmetic that used to be
// duplicated between Hemem (lazy epoch clock) and Thermostat (interval
// resets).
//
// The policy library sits between hemem_obs and hemem_mem in the link order,
// below the page table and the tiered managers, so nothing here may mention
// Region, PageEntry or Tier. Managers extract a PolicyFeatures snapshot from
// their own metadata (one indexed load per field, no hashing, no allocation)
// and hand it across the interface; tiers travel as small ints.

#ifndef HEMEM_POLICY_FEATURES_H_
#define HEMEM_POLICY_FEATURES_H_

#include <algorithm>
#include <bit>
#include <cstdint>

namespace hemem::policy {

// Tier indices as the policy layer sees them (matching Tier's underlying
// values; the managers static_cast at the boundary).
inline constexpr int kTierDram = 0;
inline constexpr int kTierNvm = 1;

// Per-page snapshot handed to Classify / Observe hooks. Extracted once per
// event by the owning manager; every field is plain data so sampling-path
// hooks stay allocation-free.
struct PolicyFeatures {
  uint32_t reads = 0;   // sampled loads since the last cooling decay
  uint32_t writes = 0;  // sampled stores since the last cooling decay
  bool write_heavy = false;
  bool second_chance = false;
  // reads + writes, widened: total sampled accesses surviving cooling.
  uint64_t accesses_since_cool = 0;
  // log2-bucketed cooling epochs since the page was last sampled; 0 = seen
  // this epoch, kMaxRecencyBucket = not seen for >= 2^(max-1) epochs (or
  // never sampled at all).
  uint32_t recency_bucket = 0;
  // Write share of the surviving counters in Q8 fixed point: 0 = all reads,
  // 256 = all writes. 0 when no accesses survived.
  uint32_t rw_ratio_q8 = 0;
  uint64_t region_pages = 0;       // size of the containing region
  uint64_t region_age_epochs = 0;  // cooling epochs since the region mapped
  int tier = kTierDram;            // current residency
  // Non-exclusive migration mode: the page holds an NVM shadow copy that is
  // still exact (no store since its promotion committed), so demoting it is
  // free. Always false in exclusive mode.
  bool shadow_clean = false;
};

inline constexpr uint32_t kMaxRecencyBucket = 7;

// The halving decay both managers share: one >>1 per missed epoch, clamped
// at 31 shifts (beyond which any uint32 count is a constant). This is the
// exact arithmetic Hemem::CoolPage always applied; Thermostat's end-of-
// interval reset is the same operation with kFullDecayEpochs missed.
inline constexpr uint64_t kFullDecayEpochs = 32;

inline void DecayCounter(uint32_t* count, uint64_t missed_epochs) {
  const int shifts = static_cast<int>(std::min<uint64_t>(missed_epochs, 31));
  *count >>= shifts;
}

inline void DecayCounters(uint32_t* reads, uint32_t* writes, uint64_t missed_epochs) {
  DecayCounter(reads, missed_epochs);
  DecayCounter(writes, missed_epochs);
}

// The paper's lazy cooling clock, hoisted out of Hemem so the trigger
// arithmetic has one home. The clock advances once the aggregate sample
// count reaches threshold x (distinct pages sampled this epoch) — the
// paper's "any page accumulates the threshold" rule generalized to stay
// stable under per-page skew (see DESIGN.md "Policy layer").
struct CoolingClock {
  uint64_t clock = 0;
  uint64_t samples_since_cool = 0;
  uint64_t distinct_sampled = 0;  // distinct pages sampled this epoch
  uint32_t threshold = 18;

  // Accounts one sample against the page's epoch stamp; returns true when
  // this sample advances the epoch (the caller then decays the page and
  // bumps its own epoch counters/trace).
  bool NoteSample(uint64_t* sample_stamp) {
    if (*sample_stamp != clock) {
      *sample_stamp = clock;
      distinct_sampled++;
    }
    samples_since_cool++;
    if (samples_since_cool >=
        static_cast<uint64_t>(threshold) * std::max<uint64_t>(1, distinct_sampled)) {
      clock++;
      samples_since_cool = 0;
      distinct_sampled = 0;
      return true;
    }
    return false;
  }
};

// Recency bucket from the cooling clock and the page's last-sampled epoch
// stamp. A stamp ahead of the clock means "never sampled" (pages initialize
// the stamp to ~0ull), which lands in the coldest bucket.
inline uint32_t RecencyBucket(uint64_t clock, uint64_t sample_stamp) {
  if (sample_stamp > clock) {
    return kMaxRecencyBucket;
  }
  const uint64_t missed = clock - sample_stamp;
  if (missed == 0) {
    return 0;
  }
  return std::min<uint32_t>(static_cast<uint32_t>(std::bit_width(missed)),
                            kMaxRecencyBucket);
}

inline uint32_t RwRatioQ8(uint32_t reads, uint32_t writes) {
  const uint64_t total = static_cast<uint64_t>(reads) + writes;
  if (total == 0) {
    return 0;
  }
  return static_cast<uint32_t>((static_cast<uint64_t>(writes) << 8) / total);
}

// Exponentially weighted moving average; the rate estimator MemoryMode uses
// for its sampled-set hit/writeback rates. Kept here so every tier shares
// one implementation (and one arithmetic: v += alpha * (x - v), the exact
// expression the inline versions used).
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void Observe(double x) { value_ += alpha_ * (x - value_); }
  double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
};

}  // namespace hemem::policy

#endif  // HEMEM_POLICY_FEATURES_H_
