#include "policy/policy.h"

#include <algorithm>

#include "policy/paper_default.h"
#include "policy/perceptron.h"
#include "policy/scheme.h"

namespace hemem::policy {

// Demand-proportional DRAM split with a per-instance floor — the
// HememDaemon::Rebalance arithmetic, verbatim (doubles and all, so daemon
// ablations keep their recorded quotas).
void MigrationPolicy::Apportion(const ApportionInput& in, const std::vector<double>& demand,
                                std::vector<uint64_t>* quotas) const {
  double total_demand = 0.0;
  for (const double d : demand) {
    total_demand += d;
  }
  const uint64_t distributable =
      in.dram_bytes - std::min(in.dram_bytes, in.floor_bytes * demand.size());
  for (size_t i = 0; i < demand.size(); ++i) {
    const auto share = static_cast<uint64_t>(
        static_cast<double>(distributable) * demand[i] / total_demand);
    (*quotas)[i] = RoundUp(in.floor_bytes + share, in.page_bytes);
  }
}

PolicyChoice ParsePolicyFlag(const std::string& value) {
  PolicyChoice choice;
  const size_t colon = value.find(':');
  choice.name = value.substr(0, colon);
  if (colon != std::string::npos) {
    choice.spec = value.substr(colon + 1);
  }
  if (choice.name.empty()) {
    choice.name = "default";
  }
  return choice;
}

const std::vector<std::string>& RegisteredPolicyNames() {
  static const std::vector<std::string> kNames = {"default", "perceptron", "scheme"};
  return kNames;
}

std::unique_ptr<MigrationPolicy> MakePolicy(const PolicyChoice& choice,
                                            const PolicyConfig& config,
                                            std::string* error) {
  if (choice.name == "default") {
    return std::make_unique<PaperDefaultPolicy>(config);
  }
  if (choice.name == "perceptron") {
    return std::make_unique<PerceptronPolicy>(config);
  }
  if (choice.name == "scheme") {
    std::vector<SchemeRule> rules;
    std::string parse_error;
    if (!ParseSchemeSpec(choice.spec, &rules, &parse_error)) {
      if (error != nullptr) {
        *error = "bad scheme spec: " + parse_error;
      }
      return nullptr;
    }
    return std::make_unique<SchemePolicy>(config, std::move(rules));
  }
  if (error != nullptr) {
    std::string names;
    for (const std::string& name : RegisteredPolicyNames()) {
      if (!names.empty()) {
        names += "|";
      }
      names += name;
    }
    *error = "unknown policy '" + choice.name + "' (registered: " + names + ")";
  }
  return nullptr;
}

}  // namespace hemem::policy
