// Silo: an in-memory transactional database (Tu et al., SOSP '13), as the
// TPC-C substrate for the paper's Section 5.2.1 experiment.
//
// This is a working in-memory database over the simulated address space: all
// nine TPC-C tables are laid out in tiered-memory regions, row reads/writes
// are charged through the tiering manager, and the *contents* that the
// transactions depend on (stock quantities, YTD balances, order books) are
// maintained in host-side mirrors so the workload's control flow and
// read/write footprint are real — a New-Order really picks untouched items,
// really appends order lines, and consistency is checkable in tests
// (sum of district YTDs == warehouse YTD, etc.).
//
// Simplifications vs. real Silo, documented here deliberately:
//  * Concurrency control: the simulator interleaves logical threads at
//    operation granularity, so transactions serialize trivially; Silo's OCC
//    commit protocol is represented by its memory traffic (re-reading the
//    read set's TID words at commit), not by aborts.
//  * Index: Silo's Masstree is modeled as a 3-level index whose node reads
//    are charged per lookup against a per-table index region.

#ifndef HEMEM_APPS_SILO_H_
#define HEMEM_APPS_SILO_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tier/manager.h"

namespace hemem {

struct SiloConfig {
  int warehouses = 16;
  int districts_per_warehouse = 10;
  int customers_per_district = 96;   // scaled from TPC-C's 3,000
  int items = 4096;                  // scaled from TPC-C's 100,000
  int order_capacity_per_district = 256;  // order-book ring capacity
  uint64_t seed = 99;
};

// Row sizes approximating the TPC-C schema footprints (bytes).
struct SiloSchema {
  static constexpr uint32_t kWarehouseRow = 96;
  static constexpr uint32_t kDistrictRow = 96;
  static constexpr uint32_t kCustomerRow = 656;
  static constexpr uint32_t kItemRow = 88;
  static constexpr uint32_t kStockRow = 320;
  static constexpr uint32_t kOrderRow = 48;
  static constexpr uint32_t kOrderLineRow = 56;
  static constexpr uint32_t kHistoryRow = 64;
  static constexpr uint32_t kIndexNode = 64;
  static constexpr int kMaxOrderLines = 15;
};

class SiloDb {
 public:
  SiloDb(TieredMemoryManager& manager, SiloConfig config);

  // Allocates all table regions and populates initial state; charged to
  // `loader`.
  void Load(SimThread& loader);

  // TPC-C transactions. Each returns true on commit (all commit here; the
  // return value reports logical success, e.g. Delivery with empty queues).
  bool NewOrder(SimThread& thread, Rng& rng, int warehouse);
  bool Payment(SimThread& thread, Rng& rng, int warehouse);
  bool OrderStatus(SimThread& thread, Rng& rng, int warehouse);
  bool Delivery(SimThread& thread, Rng& rng, int warehouse);
  bool StockLevel(SimThread& thread, Rng& rng, int warehouse);

  const SiloConfig& config() const { return config_; }
  TieredMemoryManager& manager() { return manager_; }

  // Consistency probes for tests.
  double warehouse_ytd(int warehouse) const { return warehouse_ytd_[warehouse]; }
  double district_ytd_sum(int warehouse) const;
  uint64_t orders_created() const { return orders_created_; }
  uint64_t orders_delivered() const { return orders_delivered_; }
  int stock_quantity(int warehouse, int item) const {
    return stock_qty_[StockIdx(warehouse, item)];
  }

 private:
  struct Order {
    int customer = 0;
    int line_count = 0;
    uint64_t line_base = 0;  // first order-line slot
    bool delivered = false;
  };

  struct District {
    uint64_t next_order = 0;      // next order id to create
    uint64_t next_delivery = 0;   // oldest undelivered order id
    std::vector<Order> orders;    // ring of order_capacity entries
  };

  // Charged accessors -----------------------------------------------------
  void ReadRow(SimThread& thread, uint64_t region, uint64_t row, uint32_t row_bytes);
  void WriteRow(SimThread& thread, uint64_t region, uint64_t row, uint32_t row_bytes);
  // Streaming prefill of a whole table region.
  void BulkFill(SimThread& thread, uint64_t region, uint64_t bytes);
  // Masstree-style lookup: three node reads within the table's index region.
  void IndexLookup(SimThread& thread, uint64_t index_region, uint64_t key);
  // Silo OCC commit: re-read `read_set` TID words, then write the commit TID.
  void ChargeCommit(SimThread& thread, int read_set, int write_set);

  size_t DistIdx(int warehouse, int district) const {
    return static_cast<size_t>(warehouse) *
               static_cast<size_t>(config_.districts_per_warehouse) +
           static_cast<size_t>(district);
  }
  size_t CustIdx(int warehouse, int district, int customer) const {
    return DistIdx(warehouse, district) * static_cast<size_t>(config_.customers_per_district) +
           static_cast<size_t>(customer);
  }
  size_t StockIdx(int warehouse, int item) const {
    return static_cast<size_t>(warehouse) * static_cast<size_t>(config_.items) +
           static_cast<size_t>(item);
  }

  TieredMemoryManager& manager_;
  SiloConfig config_;

  // Table regions (simulated VAs).
  uint64_t warehouse_region_ = 0;
  uint64_t district_region_ = 0;
  uint64_t customer_region_ = 0;
  uint64_t item_region_ = 0;
  uint64_t stock_region_ = 0;
  uint64_t order_region_ = 0;
  uint64_t orderline_region_ = 0;
  uint64_t history_region_ = 0;
  uint64_t index_region_ = 0;

  // Host-side mirrors for transaction logic and consistency checks.
  std::vector<double> warehouse_ytd_;
  std::vector<double> district_ytd_;
  std::vector<int> stock_qty_;
  std::vector<double> customer_balance_;
  std::vector<District> districts_;
  uint64_t history_next_ = 0;
  uint64_t orders_created_ = 0;
  uint64_t orders_delivered_ = 0;
  Rng data_rng_;
};

// The TPC-C driver: worker threads running the standard transaction mix
// against their home warehouses (with the standard ~1%/15% remote touches).
struct TpccConfig {
  int threads = 16;
  uint64_t transactions_per_thread = 10'000;
  uint64_t warmup_transactions_per_thread = 0;
  uint64_t seed = 5;
};

struct TpccResult {
  double txn_per_sec = 0.0;
  uint64_t total_transactions = 0;
  SimTime elapsed = 0;
};

class TpccBenchmark {
 public:
  TpccBenchmark(SiloDb& db, TpccConfig config);
  ~TpccBenchmark();

  void Prepare();  // registers worker threads (db must already be Loaded)
  TpccResult Run(SimTime deadline = std::numeric_limits<SimTime>::max());

 private:
  class Worker;

  SiloDb& db_;
  TpccConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool loaded_ = false;
};

}  // namespace hemem

#endif  // HEMEM_APPS_SILO_H_
