// TPC-C driver for the Silo database: the standard transaction mix
// (New-Order 45%, Payment 43%, Order-Status 4%, Delivery 4%, Stock-Level 4%)
// issued by worker threads against their home warehouses. Matches the
// paper's Section 5.2.1 setup: 16 threads, warehouses striped over threads.

#include <algorithm>
#include <cassert>

#include "apps/silo.h"

namespace hemem {

namespace {
constexpr uint64_t kTxnsPerSlice = 1;
}  // namespace

class TpccBenchmark::Worker : public SimThread {
 public:
  Worker(TpccBenchmark& bench, int index)
      : SimThread("tpcc-" + std::to_string(index)),
        bench_(bench),
        index_(index),
        rng_(Mix64(bench.config_.seed) + static_cast<uint64_t>(index) * 77) {
    remaining_warmup_ = bench_.config_.warmup_transactions_per_thread;
    remaining_ = bench_.config_.transactions_per_thread;
  }

  bool RunSlice() override {
    // Worker 0 populates the database before anyone runs transactions.
    if (!bench_.loaded_) {
      if (index_ == 0) {
        bench_.db_.Load(*this);
        bench_.loaded_ = true;
      } else {
        AdvanceTo(now() + kMillisecond);
        return true;
      }
    }
    for (uint64_t i = 0; i < kTxnsPerSlice; ++i) {
      if (remaining_warmup_ == 0 && !measuring_) {
        measuring_ = true;
        measure_start_ = now();
      }
      if (remaining_warmup_ == 0 && remaining_ == 0) {
        measure_end_ = now();
        return false;
      }
      DoTransaction();
      if (remaining_warmup_ > 0) {
        remaining_warmup_--;
      } else {
        remaining_--;
        completed_++;
      }
    }
    return true;
  }

  uint64_t completed() const { return completed_; }
  SimTime measure_start() const { return measure_start_; }
  SimTime measure_end() const { return measure_end_ == 0 ? now() : measure_end_; }

 private:
  void DoTransaction() {
    SiloDb& db = bench_.db_;
    // Home warehouse per transaction: terminals rotate over all warehouses
    // (the paper scales the warehouse count at a fixed 16 threads, so the
    // working set must grow with it).
    const int warehouses = db.config().warehouses;
    const int home = static_cast<int>(rng_.NextBounded(static_cast<uint64_t>(warehouses)));
    const uint64_t dice = rng_.NextBounded(100);
    if (dice < 45) {
      db.NewOrder(*this, rng_, home);
    } else if (dice < 88) {
      db.Payment(*this, rng_, home);
    } else if (dice < 92) {
      db.OrderStatus(*this, rng_, home);
    } else if (dice < 96) {
      db.Delivery(*this, rng_, home);
    } else {
      db.StockLevel(*this, rng_, home);
    }
  }

  TpccBenchmark& bench_;
  int index_;
  Rng rng_;
  uint64_t remaining_warmup_ = 0;
  uint64_t remaining_ = 0;
  uint64_t completed_ = 0;
  bool measuring_ = false;
  SimTime measure_start_ = 0;
  SimTime measure_end_ = 0;
};

TpccBenchmark::TpccBenchmark(SiloDb& db, TpccConfig config) : db_(db), config_(config) {}

TpccBenchmark::~TpccBenchmark() = default;

void TpccBenchmark::Prepare() {
  Engine& engine = db_.manager().machine().engine();
  for (int i = 0; i < config_.threads; ++i) {
    workers_.push_back(std::make_unique<Worker>(*this, i));
    engine.AddThread(workers_.back().get());
  }
}

TpccResult TpccBenchmark::Run(SimTime deadline) {
  Engine& engine = db_.manager().machine().engine();
  engine.Run(deadline);

  TpccResult result;
  SimTime start = std::numeric_limits<SimTime>::max();
  SimTime end = 0;
  for (const auto& worker : workers_) {
    result.total_transactions += worker->completed();
    start = std::min(start, worker->measure_start());
    end = std::max(end, worker->measure_end());
  }
  result.elapsed = std::max<SimTime>(end - start, 1);
  result.txn_per_sec = static_cast<double>(result.total_transactions) /
                       (static_cast<double>(result.elapsed) / static_cast<double>(kSecond));
  return result;
}

}  // namespace hemem
