// GUPS (Giga Updates Per Second) microbenchmark.
//
// The paper's primary microbenchmark (Section 5.1): N threads perform
// read-modify-write updates to fixed-size objects within per-thread
// partitions of a shared working set. Variants exercised here:
//
//   * uniform random over the whole partition (Figure 5),
//   * hot/cold: a random, non-consecutive hot subset receives
//     `hot_fraction` (90%) of operations (Figure 6),
//   * dynamic hot set: at `shift_at`, part of the hot set goes cold and an
//     equal amount of cold data becomes hot (Figures 9 and 12),
//   * asymmetric read/write skew: part of the hot set is write-only and the
//     rest of the working set read-only (Table 2).
//
// The working set is synthetic — accesses are charged through the tiering
// manager but no payload bytes are materialized — which is what lets the
// benchmark address hundreds of simulated gigabytes.

#ifndef HEMEM_APPS_GUPS_H_
#define HEMEM_APPS_GUPS_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/time_series.h"
#include "tier/manager.h"

namespace hemem {

struct GupsConfig {
  int threads = 16;
  uint64_t working_set = 0;  // bytes (already machine-scale)
  uint64_t object_bytes = 8;
  uint64_t updates_per_thread = 1'000'000;
  uint64_t warmup_updates_per_thread = 0;
  // Time-based warmup: counting starts once the simulated clock passes this
  // (combined with the count-based warmup; both must be satisfied). Used by
  // the benches together with a Run() deadline for fixed-window measurement.
  SimTime measure_after = 0;

  // Touch every page of the partition once before issuing updates (the
  // paper's workloads allocate large ranges at start and prefill them from
  // disk). Keeps demand faults out of the measured phase.
  bool prefill = true;

  // Hot-set variant: 0 disables (uniform access).
  uint64_t hot_set = 0;       // aggregate bytes
  double hot_fraction = 0.9;  // probability an op targets the hot set
  // Granularity of the random hot subset (0 = the machine's page size).
  uint64_t hot_chunk_bytes = 0;

  // Dynamic variant: at shift_at, shift_bytes of hot becomes cold & vice versa.
  SimTime shift_at = 0;
  uint64_t shift_bytes = 0;
  // Adversarial churn (bench/thrash): repeat the shift every shift_period
  // after shift_at, rotating through the cold chunks so each shift exposes
  // data the tiering system has demoted. 0 keeps the one-shot behavior.
  SimTime shift_period = 0;

  // Asymmetric variant (Table 2): leading fraction of the hot set is
  // write-only; every other access is a pure load. Disabled when 0.
  double write_only_hot_fraction = 0.0;

  // Figure 8 "Opt" layout: the hot set lives in its own region, with
  // optional fault-placement hints for both regions (manual placement).
  // Incompatible with shift_at.
  bool split_hot_region = false;
  std::optional<Tier> hot_region_hint;
  std::optional<Tier> cold_region_hint;

  SimTime compute_per_update = 15;  // ns of index arithmetic per update
  uint64_t seed = 42;
  SimTime series_bucket = kSecond;

  // Data-integrity verification (tests): every store additionally updates a
  // frame-keyed shadow copy of the payload, and VerifyData() re-reads every
  // written word through the page table after the run. Catches lost or
  // misdirected copies across migration, rollback, and fallback paths.
  // Incompatible with a swap tier (the shadow does not follow pages to the
  // block device). Off by default — the working set stays synthetic.
  bool verify = false;
};

struct GupsResult {
  double gups = 0.0;          // billions of updates per simulated second
  SimTime elapsed = 0;        // measured window (excludes warmup)
  uint64_t total_updates = 0;
};

class GupsBenchmark {
 public:
  GupsBenchmark(TieredMemoryManager& manager, GupsConfig config);
  ~GupsBenchmark();

  // Allocates the working set and registers worker threads. Call exactly
  // once, after manager.Start().
  void Prepare();

  // Runs to completion (or the deadline) and reports aggregate GUPS.
  GupsResult Run(SimTime deadline = std::numeric_limits<SimTime>::max());

  // Updates completed per wall-clock-second bucket (instantaneous GUPS).
  const TimeSeries& series() const { return series_; }

  // Verify mode: re-reads every word the benchmark wrote through the page
  // table and compares against the expected running sums. Returns the number
  // of mismatched words (0 = no update lost or corrupted). Only meaningful
  // after Run() with config.verify set.
  uint64_t VerifyData();
  uint64_t verified_words() const { return verified_words_; }

 private:
  class Worker;

  // Applies one verified store at `addr`: bumps the shadow word and the
  // expected value by the same address-derived odd delta.
  void ApplyVerifiedUpdate(uint64_t addr);

  TieredMemoryManager& manager_;
  GupsConfig config_;
  uint64_t base_va_ = 0;
  uint64_t hot_base_ = 0;  // split layout only
  std::vector<std::unique_ptr<Worker>> workers_;
  TimeSeries series_;
  std::unordered_map<uint64_t, uint64_t> expected_;  // va -> expected word
  uint64_t verified_words_ = 0;
};

}  // namespace hemem

#endif  // HEMEM_APPS_GUPS_H_
