// FlexKVS: a Memcached-compatible in-memory key-value store (Section 5.2.2).
//
// Faithful to the design the paper describes: items live in a *segmented
// log* (log-structured allocation reduces synchronization: each server
// thread appends to its own active segment) and are indexed by a *block
// chain hash table* (buckets are cache-line blocks holding several entries;
// overflow extends the chain by another block — MICA-style, minimizing
// coherence traffic per lookup).
//
// The store is a real key-value store over the simulated address space:
// every GET walks the bucket chain and reads the item; every SET appends a
// new item version, updates the index, and marks the old version dead; a
// segment cleaner relocates live items out of the dirtiest segments when
// free segments run low. Values are synthetic (content derived
// deterministically from key and version) so that hundreds of simulated GB
// cost no host memory, but the index, log discipline, and GC are fully
// materialized and verified: a GET checks that the item it addressed in the
// log is the version the index promised.
//
// Workload: the paper's client mix — GET/SET 90/10, 20% of keys hot and
// taking 90% of accesses, per-request latency including a network RTT, and
// an open-loop `load` knob for the 30%-load latency experiment.

#ifndef HEMEM_APPS_FLEXKVS_H_
#define HEMEM_APPS_FLEXKVS_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "tier/manager.h"

namespace hemem {

struct KvsConfig {
  uint64_t num_keys = 100'000;
  uint32_t value_bytes = 4096;
  int server_threads = 8;
  uint64_t requests_per_thread = 100'000;
  uint64_t warmup_requests_per_thread = 0;

  double get_fraction = 0.9;
  double del_fraction = 0.0;  // of the non-GET share, fraction that DELETEs
  // Hot subset: `hot_key_fraction` of keys receive `hot_access_fraction` of
  // requests. Set hot_key_fraction to 0 for uniform access.
  double hot_key_fraction = 0.2;
  double hot_access_fraction = 0.9;
  // Alternative key popularity: a Zipf(theta) distribution over the key
  // space (YCSB-style). When > 0, replaces the two-level hot/cold model.
  double zipf_theta = 0.0;

  uint64_t segment_bytes = MiB(1);
  double log_overprovision = 1.6;  // log capacity / live dataset
  std::optional<Tier> pin_tier;    // priority instance pins its memory

  SimTime net_rtt = 10 * kMicrosecond;  // client network round trip
  double load = 1.0;  // open-loop offered load (1.0 = closed loop)
  SimTime compute_per_request = 300;  // request parsing / hashing / response

  uint64_t seed = 7;
  std::string label = "kvs";
  // Bulk load: the initial dataset streams into the log as large sequential
  // writes (prefill-from-disk) instead of item-by-item Sets. Identical final
  // layout; much cheaper to simulate. Tests use the slow path.
  bool bulk_load = false;
};

struct KvsStats {
  uint64_t gets = 0;
  uint64_t sets = 0;
  uint64_t dels = 0;
  uint64_t get_misses = 0;
  uint64_t chain_blocks_walked = 0;
  uint64_t segments_cleaned = 0;
  uint64_t items_relocated = 0;
};

struct KvsResult {
  double mops = 0.0;  // million operations per simulated second
  SimTime elapsed = 0;
  uint64_t total_requests = 0;
  Histogram latency;  // microseconds, includes net_rtt
};

class FlexKvs {
 public:
  FlexKvs(TieredMemoryManager& manager, KvsConfig config);
  ~FlexKvs();

  // Allocates log + index regions and registers loader/worker threads.
  void Prepare();

  // Runs load phase + workload; returns throughput and latency.
  KvsResult Run(SimTime deadline = std::numeric_limits<SimTime>::max());

  const KvsStats& kvs_stats() const { return stats_; }

  // Core operations (public for tests and for multi-instance benches).
  // Returns false on a missing key (Get/Del) / failed allocation (Set).
  bool Get(SimThread& thread, uint64_t key, uint64_t* version_out = nullptr);
  bool Set(SimThread& thread, int server_thread, uint64_t key);
  bool Del(SimThread& thread, uint64_t key);

  uint64_t item_bytes() const { return item_bytes_; }
  const KvsConfig& config() const { return config_; }

  // Allocates regions and bulk-loads every key via `loader` (charged).
  void LoadAll(SimThread& loader);

 private:
  class Worker;

  static constexpr uint64_t kBlockBytes = 64;    // one cache line per chain block
  static constexpr uint32_t kEntriesPerBlock = 7;  // MICA-style block chain

  struct ItemLoc {
    uint64_t va = 0;
    uint64_t version = 0;
    uint32_t chain_pos = 0;  // slot within the bucket chain
    bool present = false;
  };

  struct Segment {
    uint64_t base = 0;
    uint64_t used = 0;
    uint64_t dead = 0;
    std::vector<uint64_t> resident_keys;  // lazily maintained
  };

  uint64_t BucketOf(uint64_t key) const;
  // Charges the bucket-chain walk for reaching `chain_pos`.
  void ChargeChainWalk(SimThread& thread, uint64_t bucket, uint32_t chain_pos,
                       AccessKind kind);
  // Appends a new item for `key`; returns its va or nullopt when the log is
  // full even after cleaning.
  std::optional<uint64_t> AppendItem(SimThread& thread, int server_thread, uint64_t key);
  void CleanSegments(SimThread& thread, int server_thread);
  uint32_t SegmentIndexOf(uint64_t va) const;

  TieredMemoryManager& manager_;
  KvsConfig config_;
  uint64_t item_bytes_;
  uint64_t num_buckets_;
  uint64_t hash_region_ = 0;
  uint64_t log_region_ = 0;
  uint64_t log_bytes_ = 0;

  std::vector<ItemLoc> items_;           // per key
  std::vector<uint32_t> bucket_count_;   // entries per bucket chain
  std::vector<Segment> segments_;
  std::vector<uint32_t> free_segments_;
  std::vector<uint32_t> active_segment_;  // per server thread
  // Ground truth for verification: log offset -> (key, version).
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> log_truth_;

  std::vector<std::unique_ptr<Worker>> workers_;
  KvsStats stats_;
  bool loaded_ = false;
  bool cleaning_ = false;
};

}  // namespace hemem

#endif  // HEMEM_APPS_FLEXKVS_H_
