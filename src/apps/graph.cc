#include "apps/graph.h"

#include <algorithm>
#include <cassert>

namespace hemem {

CsrGraph GenerateKronecker(const KroneckerConfig& config) {
  const uint64_t n = 1ull << config.scale;
  const uint64_t m = n * static_cast<uint64_t>(config.average_degree);
  Rng rng(Mix64(config.seed));

  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(m);
  for (uint64_t e = 0; e < m; ++e) {
    uint64_t src = 0;
    uint64_t dst = 0;
    for (int bit = 0; bit < config.scale; ++bit) {
      const double r = rng.NextDouble();
      // Quadrant selection per RMAT: (0,0)=a, (0,1)=b, (1,0)=c, (1,1)=rest.
      uint64_t sbit = 0;
      uint64_t dbit = 0;
      if (r < config.a) {
        // top-left
      } else if (r < config.a + config.b) {
        dbit = 1;
      } else if (r < config.a + config.b + config.c) {
        sbit = 1;
      } else {
        sbit = 1;
        dbit = 1;
      }
      src = (src << 1) | sbit;
      dst = (dst << 1) | dbit;
    }
    if (src == dst) {
      continue;  // drop self-loops
    }
    edges.emplace_back(static_cast<uint32_t>(src), static_cast<uint32_t>(dst));
  }

  // Build CSR via counting sort on source vertex.
  CsrGraph graph;
  graph.num_vertices = n;
  graph.num_edges = edges.size();
  graph.offsets.assign(n + 1, 0);
  for (const auto& [src, dst] : edges) {
    graph.offsets[src + 1]++;
  }
  for (uint64_t v = 0; v < n; ++v) {
    graph.offsets[v + 1] += graph.offsets[v];
  }
  graph.neighbors.resize(edges.size());
  std::vector<uint64_t> cursor(graph.offsets.begin(), graph.offsets.end() - 1);
  for (const auto& [src, dst] : edges) {
    graph.neighbors[cursor[src]++] = dst;
  }
  return graph;
}

SimGraph::SimGraph(TieredMemoryManager& manager, const CsrGraph& graph)
    : manager_(manager), graph_(graph) {
  offsets_region_ =
      manager_.Mmap((graph.num_vertices + 1) * sizeof(uint64_t), {.label = "gap-offsets"});
  neighbors_region_ =
      manager_.Mmap(std::max<uint64_t>(graph.num_edges, 1) * sizeof(uint32_t),
                    {.label = "gap-neighbors"});
}

void SimGraph::Prefill(SimThread& thread) {
  const auto stream = [&](uint64_t base, uint64_t bytes) {
    uint64_t offset = 0;
    while (offset < bytes) {
      const auto chunk = static_cast<uint32_t>(std::min<uint64_t>(bytes - offset, MiB(1)));
      manager_.Access(thread, base + offset, chunk, AccessKind::kStore);
      offset += chunk;
    }
  };
  stream(offsets_region_, (graph_.num_vertices + 1) * sizeof(uint64_t));
  stream(neighbors_region_, std::max<uint64_t>(graph_.num_edges, 1) * sizeof(uint32_t));
}

const uint32_t* SimGraph::Neighbors(SimThread& thread, uint64_t v, uint64_t* degree_out) {
  const uint64_t degree = graph_.Degree(v);
  *degree_out = degree;
  manager_.Access(thread, offsets_region_ + v * sizeof(uint64_t), sizeof(uint64_t),
                  AccessKind::kLoad);
  if (degree > 0) {
    manager_.Access(thread, neighbors_region_ + graph_.offsets[v] * sizeof(uint32_t),
                    static_cast<uint32_t>(degree * sizeof(uint32_t)), AccessKind::kLoad);
  }
  return graph_.neighbors.data() + graph_.offsets[v];
}

SimGraph::VertexArray::VertexArray(SimGraph& graph, uint32_t element_bytes, const char* label)
    : manager_(&graph.manager()),
      base_(graph.manager().Mmap(graph.num_vertices() * element_bytes, {.label = label})),
      element_bytes_(element_bytes) {}

void SimGraph::VertexArray::Read(SimThread& thread, uint64_t v) {
  manager_->Access(thread, base_ + v * element_bytes_, element_bytes_, AccessKind::kLoad);
}

void SimGraph::VertexArray::Write(SimThread& thread, uint64_t v) {
  manager_->Access(thread, base_ + v * element_bytes_, element_bytes_, AccessKind::kStore);
}

void SimGraph::VertexArray::WriteRange(SimThread& thread, uint64_t v, uint64_t count) {
  uint64_t offset = v * element_bytes_;
  uint64_t remaining = count * element_bytes_;
  // Chunked so one call cannot exceed the 32-bit access-size interface.
  while (remaining > 0) {
    const auto chunk = static_cast<uint32_t>(std::min<uint64_t>(remaining, MiB(1)));
    manager_->Access(thread, base_ + offset, chunk, AccessKind::kStore);
    offset += chunk;
    remaining -= chunk;
  }
}

}  // namespace hemem
