#include "apps/bc.h"

#include <algorithm>
#include <cassert>

namespace hemem {

namespace {
// Vertices processed per engine slice. BC must yield frequently: the
// management threads (PEBS drain, policy migration) interleave with the
// traversal, exactly as concurrent threads would on real hardware.
constexpr size_t kVerticesPerSlice = 64;
}  // namespace

// Resumable executor: one bounded quantum of the current phase per slice.
class BcBenchmark::Driver : public SimThread {
 public:
  explicit Driver(BcBenchmark& bench) : SimThread("bc-driver"), bench_(bench) {}

  bool RunSlice() override { return bench_.Step(*this); }

 private:
  BcBenchmark& bench_;
};

BcBenchmark::BcBenchmark(SimGraph& graph, BcConfig config) : graph_(graph), config_(config) {
  Rng rng(Mix64(config.seed));
  for (int i = 0; i < config.iterations; ++i) {
    // Sample sources with outgoing edges (GAP skips degree-0 sources).
    uint32_t v;
    do {
      v = static_cast<uint32_t>(rng.NextBounded(graph.num_vertices()));
    } while (graph.csr().Degree(v) == 0);
    sources_.push_back(v);
  }
}

BcBenchmark::~BcBenchmark() = default;

void BcBenchmark::Prepare() {
  const uint64_t n = graph_.num_vertices();
  depth_.assign(n, -1);
  sigma_.assign(n, 0);
  delta_.assign(n, 0.0);
  centrality_.assign(n, 0.0);
  bfs_order_.reserve(n);
  depth_array_ = SimGraph::VertexArray(graph_, 4, "bc-depth");
  sigma_array_ = SimGraph::VertexArray(graph_, 8, "bc-sigma");
  delta_array_ = SimGraph::VertexArray(graph_, 8, "bc-delta");
  centrality_array_ = SimGraph::VertexArray(graph_, 8, "bc-scores");
  driver_ = std::make_unique<Driver>(*this);
  graph_.manager().machine().engine().AddThread(driver_.get());
}

void BcBenchmark::StartIteration(SimThread& thread) {
  const uint64_t n = graph_.num_vertices();
  std::fill(depth_.begin(), depth_.end(), -1);
  std::fill(sigma_.begin(), sigma_.end(), 0);
  std::fill(delta_.begin(), delta_.end(), 0.0);
  bfs_order_.clear();
  // Charged as bulk sequential stores over the three state arrays.
  depth_array_.WriteRange(thread, 0, n);
  sigma_array_.WriteRange(thread, 0, n);
  delta_array_.WriteRange(thread, 0, n);

  const uint32_t source = sources_[iteration_];
  depth_[source] = 0;
  sigma_[source] = 1;
  depth_array_.Write(thread, source);
  sigma_array_.Write(thread, source);
  bfs_order_.push_back(source);
  forward_head_ = 0;
}

void BcBenchmark::ForwardQuantum(SimThread& thread) {
  for (size_t q = 0; q < kVerticesPerSlice && forward_head_ < bfs_order_.size(); ++q) {
    const uint32_t v = bfs_order_[forward_head_++];
    uint64_t degree = 0;
    const uint32_t* adj = graph_.Neighbors(thread, v, &degree);
    const uint64_t sigma_v = sigma_[v];
    const int32_t next_depth = depth_[v] + 1;
    for (uint64_t i = 0; i < degree; ++i) {
      const uint32_t w = adj[i];
      depth_array_.Read(thread, w);
      if (depth_[w] < 0) {
        depth_[w] = next_depth;
        depth_array_.Write(thread, w);
        bfs_order_.push_back(w);
      }
      if (depth_[w] == next_depth) {
        sigma_[w] += sigma_v;
        sigma_array_.Write(thread, w);
      }
    }
  }
}

void BcBenchmark::BackwardQuantum(SimThread& thread) {
  const uint32_t source = sources_[iteration_];
  for (size_t q = 0; q < kVerticesPerSlice && backward_pos_ > 1; ++q) {
    const uint32_t w = bfs_order_[--backward_pos_];
    uint64_t degree = 0;
    const uint32_t* adj = graph_.Neighbors(thread, w, &degree);
    // Brandes on a directed graph: pull contributions from BFS-tree
    // successors while walking the order backwards.
    double delta_w = delta_[w];
    for (uint64_t j = 0; j < degree; ++j) {
      const uint32_t x = adj[j];
      depth_array_.Read(thread, x);
      if (depth_[x] == depth_[w] + 1 && sigma_[x] > 0) {
        delta_array_.Read(thread, x);
        delta_w += static_cast<double>(sigma_[w]) / static_cast<double>(sigma_[x]) *
                   (1.0 + delta_[x]);
      }
    }
    delta_[w] = delta_w;
    delta_array_.Write(thread, w);
    if (w != source) {
      centrality_[w] += delta_w;
      centrality_array_.Write(thread, w);
    }
  }
}

bool BcBenchmark::Step(SimThread& thread) {
  MemoryDevice& nvm = graph_.manager().machine().nvm();
  switch (phase_) {
    case Phase::kPrefill:
      // The graph build/load happens before any kernel runs (as in GAP), so
      // its pages claim physical memory first.
      graph_.Prefill(thread);
      phase_ = Phase::kStartIteration;
      return true;
    case Phase::kStartIteration:
      iteration_start_ = thread.now();
      iteration_wear_start_ = nvm.stats().media_bytes_written;
      StartIteration(thread);
      phase_ = Phase::kForward;
      return true;
    case Phase::kForward:
      ForwardQuantum(thread);
      if (forward_head_ >= bfs_order_.size()) {
        backward_pos_ = bfs_order_.size();
        phase_ = Phase::kBackward;
      }
      return true;
    case Phase::kBackward:
      BackwardQuantum(thread);
      if (backward_pos_ <= 1) {
        result_.iteration_time.push_back(thread.now() - iteration_start_);
        result_.iteration_nvm_writes.push_back(nvm.stats().media_bytes_written -
                                               iteration_wear_start_);
        iteration_++;
        if (iteration_ >= sources_.size()) {
          return false;
        }
        phase_ = Phase::kStartIteration;
      }
      return true;
  }
  return false;
}

BcResult BcBenchmark::Run() {
  graph_.manager().machine().engine().Run();
  result_.total_time = 0;
  for (const SimTime t : result_.iteration_time) {
    result_.total_time += t;
  }
  result_.centrality = centrality_;
  return result_;
}

std::vector<double> BcBenchmark::Reference(const CsrGraph& graph,
                                           const std::vector<uint32_t>& sources) {
  const uint64_t n = graph.num_vertices;
  std::vector<double> centrality(n, 0.0);
  std::vector<int32_t> depth(n);
  std::vector<uint64_t> sigma(n);
  std::vector<double> delta(n);
  std::vector<uint32_t> order;
  order.reserve(n);

  for (const uint32_t source : sources) {
    std::fill(depth.begin(), depth.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();
    depth[source] = 0;
    sigma[source] = 1;
    order.push_back(source);
    for (size_t head = 0; head < order.size(); ++head) {
      const uint32_t v = order[head];
      for (uint64_t i = graph.offsets[v]; i < graph.offsets[v + 1]; ++i) {
        const uint32_t w = graph.neighbors[i];
        if (depth[w] < 0) {
          depth[w] = depth[v] + 1;
          order.push_back(w);
        }
        if (depth[w] == depth[v] + 1) {
          sigma[w] += sigma[v];
        }
      }
    }
    for (size_t i = order.size(); i > 1; --i) {
      const uint32_t w = order[i - 1];
      double delta_w = delta[w];
      for (uint64_t j = graph.offsets[w]; j < graph.offsets[w + 1]; ++j) {
        const uint32_t x = graph.neighbors[j];
        if (depth[x] == depth[w] + 1 && sigma[x] > 0) {
          delta_w += static_cast<double>(sigma[w]) / static_cast<double>(sigma[x]) *
                     (1.0 + delta[x]);
        }
      }
      delta[w] = delta_w;
      if (w != source) {
        centrality[w] += delta_w;
      }
    }
  }
  return centrality;
}

}  // namespace hemem
