#include "apps/flexkvs.h"

#include <algorithm>
#include <cassert>

namespace hemem {

namespace {
constexpr uint64_t kItemHeaderBytes = 48;  // key, version, size, checksum, next
constexpr uint64_t kKeyBytes = 16;
constexpr uint64_t kRequestsPerSlice = 1;
// Cleaning hysteresis, in segments per server thread.
constexpr uint32_t kCleanLowWater = 2;
constexpr uint32_t kCleanHighWater = 4;
}  // namespace

// A server thread processing its share of the client request stream.
class FlexKvs::Worker : public SimThread {
 public:
  Worker(FlexKvs& kvs, int index)
      : SimThread(kvs.config_.label + "-srv-" + std::to_string(index)),
        kvs_(kvs),
        index_(index),
        rng_(Mix64(kvs.config_.seed ^ 0xbeef) + static_cast<uint64_t>(index)) {
    remaining_warmup_ = kvs_.config_.warmup_requests_per_thread;
    remaining_ = kvs_.config_.requests_per_thread;
    if (kvs_.config_.zipf_theta > 0.0) {
      zipf_.emplace(kvs_.config_.num_keys, kvs_.config_.zipf_theta);
    }
  }

  bool RunSlice() override {
    // Thread 0 performs the (untimed for latency, but fully charged) bulk
    // load before any worker serves traffic.
    if (!kvs_.loaded_) {
      if (index_ == 0) {
        kvs_.LoadAll(*this);
      } else {
        AdvanceTo(now() + kMillisecond);  // wait for the loader
        return true;
      }
    }
    for (uint64_t i = 0; i < kRequestsPerSlice; ++i) {
      if (remaining_warmup_ == 0 && !measuring_) {
        measuring_ = true;
        measure_start_ = now();
      }
      if (remaining_warmup_ == 0 && remaining_ == 0) {
        measure_end_ = now();
        return false;
      }
      DoRequest();
      if (remaining_warmup_ > 0) {
        remaining_warmup_--;
      } else {
        remaining_--;
        completed_++;
      }
    }
    return true;
  }

  uint64_t completed() const { return completed_; }
  SimTime measure_start() const { return measure_start_; }
  SimTime measure_end() const { return measure_end_ == 0 ? now() : measure_end_; }
  const Histogram& latency() const { return latency_; }

 private:
  uint64_t PickKey() {
    const KvsConfig& config = kvs_.config_;
    if (zipf_) {
      return zipf_->Next(rng_);
    }
    const uint64_t hot_keys = static_cast<uint64_t>(
        config.hot_key_fraction * static_cast<double>(config.num_keys));
    if (hot_keys > 0 && rng_.NextBool(config.hot_access_fraction)) {
      return rng_.NextBounded(hot_keys);
    }
    return rng_.NextBounded(config.num_keys);
  }

  void DoRequest() {
    const KvsConfig& config = kvs_.config_;
    const SimTime t0 = now();
    const uint64_t key = PickKey();
    ChargeCompute(config.compute_per_request);
    if (rng_.NextBool(config.get_fraction)) {
      uint64_t version = 0;
      const bool ok = kvs_.Get(*this, key, &version);
      (void)ok;
    } else if (config.del_fraction > 0.0 && rng_.NextBool(config.del_fraction)) {
      kvs_.Del(*this, key);
    } else {
      kvs_.Set(*this, index_, key);
    }
    const SimTime service = now() - t0;
    if (remaining_warmup_ == 0) {
      latency_.Record(static_cast<uint64_t>((service + config.net_rtt) / kMicrosecond));
    }
    if (config.load < 1.0) {
      // Open loop: idle so the thread's utilization approximates `load`.
      const double idle = static_cast<double>(service) * (1.0 / config.load - 1.0);
      Advance(static_cast<SimTime>(idle));
    }
  }

  FlexKvs& kvs_;
  int index_;
  Rng rng_;
  std::optional<ZipfGenerator> zipf_;
  uint64_t remaining_warmup_ = 0;
  uint64_t remaining_ = 0;
  uint64_t completed_ = 0;
  bool measuring_ = false;
  SimTime measure_start_ = 0;
  SimTime measure_end_ = 0;
  Histogram latency_;
};

FlexKvs::FlexKvs(TieredMemoryManager& manager, KvsConfig config)
    : manager_(manager),
      config_(config),
      item_bytes_(RoundUp(kItemHeaderBytes + kKeyBytes + config.value_bytes, 64)),
      num_buckets_(std::max<uint64_t>(1, config.num_keys / 4)) {}

FlexKvs::~FlexKvs() = default;

void FlexKvs::Prepare() {
  const uint64_t dataset = config_.num_keys * item_bytes_;
  // Keep a healthy segment count: with too few segments the cleaner's free
  // reserve would eat the whole over-provisioned space and the log would
  // thrash relocating live data.
  const uint64_t max_segment =
      std::max<uint64_t>(RoundUp(static_cast<uint64_t>(static_cast<double>(dataset) *
                                                       config_.log_overprovision) /
                                     512,
                                 item_bytes_),
                         4 * item_bytes_);
  config_.segment_bytes = std::min(config_.segment_bytes, max_segment);
  log_bytes_ = RoundUp(static_cast<uint64_t>(static_cast<double>(dataset) *
                                             config_.log_overprovision),
                       config_.segment_bytes);
  AllocOptions log_opts{.label = config_.label + "-log", .pin_tier = config_.pin_tier};
  log_region_ = manager_.Mmap(log_bytes_, log_opts);
  AllocOptions hash_opts{.label = config_.label + "-hash", .pin_tier = config_.pin_tier};
  hash_region_ = manager_.Mmap(num_buckets_ * kBlockBytes, hash_opts);

  items_.assign(config_.num_keys, ItemLoc{});
  bucket_count_.assign(num_buckets_, 0);

  const uint32_t num_segments = static_cast<uint32_t>(log_bytes_ / config_.segment_bytes);
  segments_.resize(num_segments);
  for (uint32_t i = 0; i < num_segments; ++i) {
    segments_[i].base = log_region_ + static_cast<uint64_t>(i) * config_.segment_bytes;
  }
  // Hand the highest-numbered segments out last so the load phase appends
  // forward through the log.
  free_segments_.reserve(num_segments);
  for (uint32_t i = num_segments; i > 0; --i) {
    free_segments_.push_back(i - 1);
  }
  active_segment_.assign(static_cast<size_t>(config_.server_threads), UINT32_MAX);

  // Register server threads only when there is a request stream to serve;
  // tests and multi-instance setups may drive the store directly.
  if (config_.requests_per_thread + config_.warmup_requests_per_thread > 0) {
    Engine& engine = manager_.machine().engine();
    for (int i = 0; i < config_.server_threads; ++i) {
      workers_.push_back(std::make_unique<Worker>(*this, i));
      engine.AddThread(workers_.back().get());
    }
  }
}

uint64_t FlexKvs::BucketOf(uint64_t key) const { return Mix64(key * 31 + 11) % num_buckets_; }

uint32_t FlexKvs::SegmentIndexOf(uint64_t va) const {
  return static_cast<uint32_t>((va - log_region_) / config_.segment_bytes);
}

void FlexKvs::ChargeChainWalk(SimThread& thread, uint64_t bucket, uint32_t chain_pos,
                              AccessKind kind) {
  // Reaching slot `chain_pos` touches 1 + chain_pos / kEntriesPerBlock chain
  // blocks. Chain overflow blocks live adjacent in the hash region (modeled
  // at deterministic offsets past the bucket array).
  const uint32_t blocks = 1 + chain_pos / kEntriesPerBlock;
  stats_.chain_blocks_walked += blocks;
  for (uint32_t b = 0; b < blocks; ++b) {
    // Overflow blocks live at deterministic slots elsewhere in the hash
    // region; only the final block is written on updates.
    const uint64_t slot = b == 0 ? bucket : Mix64(bucket + b * 0x10001) % num_buckets_;
    const AccessKind k = (b + 1 == blocks) ? kind : AccessKind::kLoad;
    manager_.Access(thread, hash_region_ + slot * kBlockBytes, kBlockBytes, k);
  }
}

std::optional<uint64_t> FlexKvs::AppendItem(SimThread& thread, int server_thread,
                                            uint64_t key) {
  uint32_t& active = active_segment_[static_cast<size_t>(server_thread)];
  if (active == UINT32_MAX ||
      segments_[active].used + item_bytes_ > config_.segment_bytes) {
    if (free_segments_.size() <=
        kCleanLowWater * static_cast<uint32_t>(config_.server_threads)) {
      CleanSegments(thread, server_thread);
    }
    if (free_segments_.empty()) {
      return std::nullopt;
    }
    active = free_segments_.back();
    free_segments_.pop_back();
    segments_[active].used = 0;
    segments_[active].dead = 0;
    segments_[active].resident_keys.clear();
  }
  Segment& segment = segments_[active];
  const uint64_t va = segment.base + segment.used;
  segment.used += item_bytes_;
  segment.resident_keys.push_back(key);
  return va;
}

void FlexKvs::CleanSegments(SimThread& thread, int server_thread) {
  if (cleaning_) {
    return;  // relocation appends must not recurse into the cleaner
  }
  cleaning_ = true;
  const uint32_t target = kCleanHighWater * static_cast<uint32_t>(config_.server_threads);
  while (free_segments_.size() < target) {
    // Pick the fullest-of-dead sealed segment.
    uint32_t best = UINT32_MAX;
    uint64_t best_dead = 0;
    for (uint32_t i = 0; i < segments_.size(); ++i) {
      const bool active_now =
          std::find(active_segment_.begin(), active_segment_.end(), i) !=
          active_segment_.end();
      const bool free_now =
          std::find(free_segments_.begin(), free_segments_.end(), i) != free_segments_.end();
      if (active_now || free_now || segments_[i].used == 0) {
        continue;
      }
      if (segments_[i].dead >= best_dead) {
        best_dead = segments_[i].dead;
        best = i;
      }
    }
    if (best == UINT32_MAX || best_dead == 0) {
      break;  // nothing reclaimable
    }
    Segment& victim = segments_[best];
    // Relocate live items: read them out, append elsewhere, fix the index.
    for (const uint64_t key : victim.resident_keys) {
      ItemLoc& loc = items_[key];
      if (!loc.present || SegmentIndexOf(loc.va) != best) {
        continue;  // dead or already superseded
      }
      manager_.Access(thread, loc.va, static_cast<uint32_t>(item_bytes_), AccessKind::kLoad);
      const std::optional<uint64_t> dst = AppendItem(thread, server_thread, key);
      if (!dst.has_value()) {
        cleaning_ = false;
        return;  // log completely full; give up
      }
      manager_.Access(thread, *dst, static_cast<uint32_t>(item_bytes_), AccessKind::kStore);
      log_truth_.erase(loc.va);
      log_truth_[*dst] = {key, loc.version};
      loc.va = *dst;
      const uint64_t bucket = BucketOf(key);
      ChargeChainWalk(thread, bucket, loc.chain_pos, AccessKind::kStore);
      stats_.items_relocated++;
    }
    victim.used = 0;
    victim.dead = 0;
    victim.resident_keys.clear();
    free_segments_.push_back(best);
    stats_.segments_cleaned++;
  }
  cleaning_ = false;
}

bool FlexKvs::Get(SimThread& thread, uint64_t key, uint64_t* version_out) {
  stats_.gets++;
  ItemLoc& loc = items_[key];
  const uint64_t bucket = BucketOf(key);
  if (!loc.present) {
    // Full chain walk required to conclude a miss.
    ChargeChainWalk(thread, bucket, bucket_count_[bucket], AccessKind::kLoad);
    stats_.get_misses++;
    return false;
  }
  ChargeChainWalk(thread, bucket, loc.chain_pos, AccessKind::kLoad);
  manager_.Access(thread, loc.va, static_cast<uint32_t>(item_bytes_), AccessKind::kLoad);
  // Verify the log address resolves to the promised item (catches index or
  // cleaner bugs immediately).
  const auto truth = log_truth_.find(loc.va);
  assert(truth != log_truth_.end() && truth->second.first == key &&
         truth->second.second == loc.version);
  (void)truth;
  if (version_out != nullptr) {
    *version_out = loc.version;
  }
  return true;
}

bool FlexKvs::Del(SimThread& thread, uint64_t key) {
  stats_.dels++;
  ItemLoc& loc = items_[key];
  const uint64_t bucket = BucketOf(key);
  if (!loc.present) {
    ChargeChainWalk(thread, bucket, bucket_count_[bucket], AccessKind::kLoad);
    return false;
  }
  // Unlink from the chain (write the owning block) and tombstone the item.
  ChargeChainWalk(thread, bucket, loc.chain_pos, AccessKind::kStore);
  manager_.Access(thread, loc.va, 64, AccessKind::kStore);  // header tombstone
  segments_[SegmentIndexOf(loc.va)].dead += item_bytes_;
  log_truth_.erase(loc.va);
  loc.present = false;
  loc.version = 0;
  return true;
}

bool FlexKvs::Set(SimThread& thread, int server_thread, uint64_t key) {
  stats_.sets++;
  const std::optional<uint64_t> va = AppendItem(thread, server_thread, key);
  if (!va.has_value()) {
    return false;
  }
  // Item body streams into the log (header + key + value, sequential).
  manager_.Access(thread, *va, static_cast<uint32_t>(item_bytes_), AccessKind::kStore);

  ItemLoc& loc = items_[key];
  const uint64_t bucket = BucketOf(key);
  if (loc.present) {
    // Supersede: old location becomes garbage.
    Segment& old_seg = segments_[SegmentIndexOf(loc.va)];
    old_seg.dead += item_bytes_;
    log_truth_.erase(loc.va);
  } else {
    loc.chain_pos = bucket_count_[bucket]++;
  }
  loc.va = *va;
  loc.version++;
  loc.present = true;
  log_truth_[loc.va] = {key, loc.version};
  ChargeChainWalk(thread, bucket, loc.chain_pos, AccessKind::kStore);
  return true;
}

void FlexKvs::LoadAll(SimThread& loader) {
  if (!config_.bulk_load) {
    for (uint64_t key = 0; key < config_.num_keys; ++key) {
      const bool ok = Set(loader, 0, key);
      assert(ok && "log sized too small for the dataset");
      (void)ok;
    }
    loaded_ = true;
    return;
  }
  // Bulk path: lay items out exactly as the Set path would, but charge the
  // log as streaming segment-sized writes and the index as one bulk fill.
  uint64_t pending_segment_bytes = 0;
  uint64_t segment_charge_base = 0;
  for (uint64_t key = 0; key < config_.num_keys; ++key) {
    const std::optional<uint64_t> va = AppendItem(loader, /*server_thread=*/0, key);
    assert(va.has_value() && "log sized too small for the dataset");
    if (pending_segment_bytes == 0) {
      segment_charge_base = *va;
    }
    pending_segment_bytes += item_bytes_;
    if (pending_segment_bytes + item_bytes_ > config_.segment_bytes ||
        key + 1 == config_.num_keys) {
      manager_.Access(loader, segment_charge_base,
                      static_cast<uint32_t>(pending_segment_bytes), AccessKind::kStore);
      pending_segment_bytes = 0;
    }
    ItemLoc& loc = items_[key];
    const uint64_t bucket = BucketOf(key);
    loc.chain_pos = bucket_count_[bucket]++;
    loc.va = *va;
    loc.version = 1;
    loc.present = true;
    log_truth_[loc.va] = {key, 1};
    stats_.sets++;
  }
  // Index bulk fill.
  uint64_t offset = 0;
  const uint64_t hash_bytes = num_buckets_ * kBlockBytes;
  while (offset < hash_bytes) {
    const auto chunk = static_cast<uint32_t>(std::min<uint64_t>(hash_bytes - offset, MiB(1)));
    manager_.Access(loader, hash_region_ + offset, chunk, AccessKind::kStore);
    offset += chunk;
  }
  loaded_ = true;
}

KvsResult FlexKvs::Run(SimTime deadline) {
  Engine& engine = manager_.machine().engine();
  engine.Run(deadline);

  KvsResult result;
  SimTime start = std::numeric_limits<SimTime>::max();
  SimTime end = 0;
  for (const auto& worker : workers_) {
    result.total_requests += worker->completed();
    result.latency.Merge(worker->latency());
    start = std::min(start, worker->measure_start());
    end = std::max(end, worker->measure_end());
  }
  result.elapsed = std::max<SimTime>(end - start, 1);
  result.mops = static_cast<double>(result.total_requests) * 1e3 /
                static_cast<double>(result.elapsed);
  return result;
}

}  // namespace hemem
