// GAP benchmark substrate: Kronecker (RMAT) graph generation and CSR layout
// in tiered memory.
//
// GAP's synthetic input is a Kronecker power-law graph with average degree
// 16 (Graph500 parameters A=0.57, B=0.19, C=0.19). Power-law graphs have
// locality — high-degree vertices are traversed disproportionately often —
// which is precisely the property that lets page-granularity tiering win on
// graph workloads (paper Section 5.2.3).
//
// The graph is built for real on the host (CSR arrays with genuine
// topology), then laid out in simulated regions; traversals charge
// per-element accesses through the tiering manager: offset reads are random
// 8 B loads, neighbor-list scans are sequential block reads, and per-vertex
// algorithm state (depths, path counts, dependencies) is randomly
// read/written — write-heavy, exactly the pattern the paper calls costly
// on NVM.

#ifndef HEMEM_APPS_GRAPH_H_
#define HEMEM_APPS_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tier/manager.h"

namespace hemem {

struct KroneckerConfig {
  int scale = 16;           // 2^scale vertices
  int average_degree = 16;  // edges = vertices * average_degree
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  uint64_t seed = 12;
};

// Host-side CSR graph (directed edges stored once; traversal treats the
// graph as directed, as GAP's generator emits).
struct CsrGraph {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  std::vector<uint64_t> offsets;    // num_vertices + 1
  std::vector<uint32_t> neighbors;  // num_edges

  uint64_t Degree(uint64_t v) const { return offsets[v + 1] - offsets[v]; }
};

// Generates a Kronecker graph (RMAT edge sampling, self-loops dropped,
// duplicates kept as in Graph500).
CsrGraph GenerateKronecker(const KroneckerConfig& config);

// A CSR graph mapped into tiered memory, with charged accessors.
class SimGraph {
 public:
  SimGraph(TieredMemoryManager& manager, const CsrGraph& graph);

  // Streams the CSR arrays into memory (the graph build/load phase). GAP
  // constructs the graph before any kernel runs, so its pages fault in first
  // and the per-iteration algorithm state must be placed later.
  void Prefill(SimThread& thread);

  // Charged reads: one 8 B offsets access + one sequential block read of the
  // neighbor list. Returns the host-side adjacency span.
  const uint32_t* Neighbors(SimThread& thread, uint64_t v, uint64_t* degree_out);

  uint64_t num_vertices() const { return graph_.num_vertices; }
  uint64_t num_edges() const { return graph_.num_edges; }
  const CsrGraph& csr() const { return graph_; }
  TieredMemoryManager& manager() { return manager_; }

  // Auxiliary per-vertex array carved from a dedicated region; element
  // accesses are charged at `element_bytes` granularity.
  class VertexArray {
   public:
    VertexArray() = default;
    VertexArray(SimGraph& graph, uint32_t element_bytes, const char* label);

    void Read(SimThread& thread, uint64_t v);
    void Write(SimThread& thread, uint64_t v);
    // Bulk sequential write of `count` elements starting at `v` (resets).
    void WriteRange(SimThread& thread, uint64_t v, uint64_t count);

   private:
    TieredMemoryManager* manager_ = nullptr;
    uint64_t base_ = 0;
    uint32_t element_bytes_ = 0;
  };

 private:
  TieredMemoryManager& manager_;
  const CsrGraph& graph_;
  uint64_t offsets_region_ = 0;
  uint64_t neighbors_region_ = 0;
};

}  // namespace hemem

#endif  // HEMEM_APPS_GRAPH_H_
