#include "apps/gups.h"

#include <algorithm>
#include <cassert>

namespace hemem {

namespace {
// One update per engine slice: threads must interleave at operation
// granularity or their channel reservations serialize behind each other.
constexpr uint64_t kOpsPerSlice = 1;
}  // namespace

class GupsBenchmark::Worker : public SimThread {
 public:
  Worker(GupsBenchmark& bench, int index, uint64_t part_base, uint64_t part_bytes)
      : SimThread("gups-" + std::to_string(index)),
        bench_(bench),
        rng_(Mix64(bench.config_.seed) ^ static_cast<uint64_t>(index) * 0xabcd1234ull),
        part_base_(part_base),
        part_bytes_(part_bytes),
        series_(bench.config_.series_bucket) {
    // Verify mode funnels every store through the shared shadow map; plain
    // mode keeps all mutable state thread-private (rng, hot/cold layout, the
    // per-worker series merged after the run), so the thread qualifies for
    // sharded epoch execution under --host-workers.
    set_parallel_pure(!bench.config_.verify);
    const GupsConfig& config = bench_.config_;
    if (config.split_hot_region) {
      // Split layout: this thread's hot slice lives in the dedicated hot
      // region; part_base_/part_bytes_ describe its cold slice.
      const uint64_t hot_part = config.hot_set / static_cast<uint64_t>(config.threads);
      hot_part_base_ = bench_.hot_base_ + static_cast<uint64_t>(index) * hot_part;
      hot_part_bytes_ = hot_part;
      write_only_bytes_ = static_cast<uint64_t>(config.write_only_hot_fraction *
                                                static_cast<double>(hot_part));
      remaining_warmup_ = config.warmup_updates_per_thread;
      remaining_ = config.updates_per_thread;
      return;
    }
    if (config.hot_set > 0) {
      const uint64_t page = bench_.manager_.machine().page_bytes();
      if (config.hot_chunk_bytes != 0) {
        chunk_bytes_ = config.hot_chunk_bytes;
      } else if (config.hot_set / static_cast<uint64_t>(config.threads) >= 4 * page) {
        // Enough chunks per thread at page granularity: no dilution.
        chunk_bytes_ = page;
      } else {
        // Small hot sets: sub-page chunks so each thread still holds several
        // (one or two page-sized chunks per thread makes a thread's initial
        // DRAM/NVM placement binary — a miniaturization artifact). The page
        // footprint dilates by at most 4x, which small hot sets afford.
        chunk_bytes_ = std::max<uint64_t>(page / 4, config.object_bytes);
      }
      const uint64_t chunks = part_bytes_ / chunk_bytes_;
      uint64_t hot_chunks =
          config.hot_set / static_cast<uint64_t>(config.threads) / chunk_bytes_;
      hot_chunks = std::clamp<uint64_t>(hot_chunks, 1, chunks);
      // A random, non-consecutive subset of the partition's chunks is hot.
      Rng layout_rng(Mix64(config.seed ^ 0x777) + static_cast<uint64_t>(index));
      std::vector<uint64_t> perm = RandomPermutation(chunks, layout_rng);
      hot_.assign(perm.begin(), perm.begin() + static_cast<long>(hot_chunks));
      cold_.assign(perm.begin() + static_cast<long>(hot_chunks), perm.end());
      write_only_chunks_ = static_cast<uint64_t>(config.write_only_hot_fraction *
                                                 static_cast<double>(hot_chunks));
    }
    next_shift_ = config.shift_at;
    remaining_warmup_ = config.warmup_updates_per_thread;
    remaining_ = config.updates_per_thread;
    if (config.prefill) {
      const uint64_t page = bench_.manager_.machine().page_bytes();
      prefill_total_ = (hot_part_bytes_ + part_bytes_) / page;
      prefill_remaining_ = prefill_total_;
    }
  }

  bool RunSlice() override {
    if (prefill_remaining_ > 0) {
      DoPrefillTouch();
      return true;
    }
    for (uint64_t i = 0; i < kOpsPerSlice; ++i) {
      const bool warm = remaining_warmup_ == 0 && now() >= bench_.config_.measure_after;
      if (warm && !measuring_) {
        measuring_ = true;
        measure_start_ = now();
      }
      if (measuring_ && remaining_ == 0) {
        measure_end_ = now();
        return false;
      }
      DoUpdate();
      if (remaining_warmup_ > 0) {
        remaining_warmup_--;
      } else if (measuring_) {
        remaining_--;
        completed_++;
      }
      series_.Record(now());
    }
    return true;
  }

  uint64_t completed() const { return completed_; }
  SimTime measure_start() const { return measure_start_; }
  SimTime measure_end() const { return measure_end_ == 0 ? now() : measure_end_; }
  const TimeSeries& series() const { return series_; }

 private:
  void DoPrefillTouch() {
    // One store per page, hot slice first, then the cold slice.
    const uint64_t page = bench_.manager_.machine().page_bytes();
    const uint64_t hot_pages = hot_part_bytes_ / page;
    const uint64_t offset = prefill_total_ - prefill_remaining_;
    const uint64_t addr = offset < hot_pages
                              ? hot_part_base_ + offset * page
                              : part_base_ + (offset - hot_pages) * page;
    bench_.manager_.Access(*this, addr, 8, AccessKind::kStore);
    if (bench_.config_.verify) {
      bench_.ApplyVerifiedUpdate(addr);
    }
    prefill_remaining_--;
  }

  void DoUpdate() {
    const GupsConfig& config = bench_.config_;
    if (config.split_hot_region) {
      DoSplitUpdate();
      return;
    }
    if (next_shift_ > 0 && now() >= next_shift_) {
      ShiftHotSet();
      next_shift_ = config.shift_period > 0 ? next_shift_ + config.shift_period : 0;
    }

    const uint64_t obj = config.object_bytes;
    bool to_hot = false;
    uint64_t chunk = 0;
    uint64_t addr;
    if (!hot_.empty() && rng_.NextBool(config.hot_fraction)) {
      to_hot = true;
      const uint64_t pick = rng_.NextBounded(hot_.size());
      chunk = pick;
      const uint64_t off = rng_.NextBounded(chunk_bytes_ / obj) * obj;
      addr = part_base_ + hot_[pick] * chunk_bytes_ + off;
    } else {
      addr = part_base_ + rng_.NextBounded(part_bytes_ / obj) * obj;
    }

    TieredMemoryManager& manager = bench_.manager_;
    const auto size = static_cast<uint32_t>(obj);
    if (config.write_only_hot_fraction > 0.0) {
      // Asymmetric variant: write-only hot chunks take pure stores, all
      // other locations pure loads.
      if (to_hot && chunk < write_only_chunks_) {
        manager.Access(*this, addr, size, AccessKind::kStore);
        if (config.verify) {
          bench_.ApplyVerifiedUpdate(addr);
        }
      } else {
        manager.Access(*this, addr, size, AccessKind::kLoad);
      }
    } else {
      manager.Update(*this, addr, size);
      if (config.verify) {
        bench_.ApplyVerifiedUpdate(addr);
      }
    }
    ChargeCompute(config.compute_per_update);
  }

  void DoSplitUpdate() {
    const GupsConfig& config = bench_.config_;
    const uint64_t obj = config.object_bytes;
    TieredMemoryManager& manager = bench_.manager_;
    const auto size = static_cast<uint32_t>(obj);

    bool in_hot = false;
    uint64_t hot_off = 0;
    uint64_t addr;
    if (hot_part_bytes_ > 0 && rng_.NextBool(config.hot_fraction)) {
      in_hot = true;
      hot_off = rng_.NextBounded(hot_part_bytes_ / obj) * obj;
      addr = hot_part_base_ + hot_off;
    } else {
      // Uniform over the whole per-thread slice (hot + cold).
      const uint64_t off = rng_.NextBounded((hot_part_bytes_ + part_bytes_) / obj) * obj;
      if (off < hot_part_bytes_) {
        in_hot = true;
        hot_off = off;
        addr = hot_part_base_ + off;
      } else {
        addr = part_base_ + (off - hot_part_bytes_);
      }
    }
    if (config.write_only_hot_fraction > 0.0) {
      const AccessKind kind = in_hot && hot_off < write_only_bytes_ ? AccessKind::kStore
                                                                    : AccessKind::kLoad;
      manager.Access(*this, addr, size, kind);
      if (config.verify && kind == AccessKind::kStore) {
        bench_.ApplyVerifiedUpdate(addr);
      }
    } else {
      manager.Update(*this, addr, size);
      if (config.verify) {
        bench_.ApplyVerifiedUpdate(addr);
      }
    }
    ChargeCompute(config.compute_per_update);
  }

  void ShiftHotSet() {
    const GupsConfig& config = bench_.config_;
    uint64_t n = config.shift_bytes / static_cast<uint64_t>(config.threads) / chunk_bytes_;
    n = std::min<uint64_t>({n, hot_.size(), cold_.size()});
    // Periodic shifts rotate through the cold chunks so every round swaps in
    // data the tiering system has had time to demote (round 0 matches the
    // one-shot figure-9 shift exactly).
    const uint64_t base = shift_round_ * n;
    for (uint64_t i = 0; i < n; ++i) {
      std::swap(hot_[i], cold_[(base + i) % cold_.size()]);
    }
    shift_round_++;
  }

  GupsBenchmark& bench_;
  Rng rng_;
  uint64_t part_base_;
  uint64_t part_bytes_;
  uint64_t chunk_bytes_ = 0;
  std::vector<uint64_t> hot_;
  std::vector<uint64_t> cold_;
  uint64_t write_only_chunks_ = 0;
  // Split-layout state.
  uint64_t hot_part_base_ = 0;
  uint64_t hot_part_bytes_ = 0;
  uint64_t write_only_bytes_ = 0;

  TimeSeries series_;  // merged into the bench series after the run
  uint64_t prefill_total_ = 0;
  uint64_t prefill_remaining_ = 0;
  uint64_t remaining_warmup_ = 0;
  uint64_t remaining_ = 0;
  uint64_t completed_ = 0;
  bool measuring_ = false;
  SimTime next_shift_ = 0;  // 0 = shifting disabled (or one-shot consumed)
  uint64_t shift_round_ = 0;
  SimTime measure_start_ = 0;
  SimTime measure_end_ = 0;
};

GupsBenchmark::GupsBenchmark(TieredMemoryManager& manager, GupsConfig config)
    : manager_(manager), config_(config), series_(config.series_bucket) {
  assert(config_.threads > 0 && config_.working_set > 0);
}

GupsBenchmark::~GupsBenchmark() = default;

void GupsBenchmark::Prepare() {
  if (config_.verify) {
    manager_.machine().EnableShadow();
  }
  uint64_t cold_bytes = config_.working_set;
  if (config_.split_hot_region) {
    assert(config_.shift_at == 0 && "split layout does not support shifting");
    cold_bytes -= config_.hot_set;
    hot_base_ = manager_.Mmap(config_.hot_set, AllocOptions{.label = "gups-hot",
                                                            .prefer_tier =
                                                                config_.hot_region_hint});
    base_va_ = manager_.Mmap(cold_bytes, AllocOptions{.label = "gups-cold",
                                                      .prefer_tier =
                                                          config_.cold_region_hint});
  } else {
    base_va_ = manager_.Mmap(config_.working_set, AllocOptions{.label = "gups-ws"});
  }
  const uint64_t part = cold_bytes / static_cast<uint64_t>(config_.threads);
  Engine& engine = manager_.machine().engine();
  for (int i = 0; i < config_.threads; ++i) {
    workers_.push_back(std::make_unique<Worker>(
        *this, i, base_va_ + static_cast<uint64_t>(i) * part, part));
    engine.AddThread(workers_.back().get());
  }
}

GupsResult GupsBenchmark::Run(SimTime deadline) {
  Engine& engine = manager_.machine().engine();
  engine.Run(deadline);

  GupsResult result;
  SimTime start = std::numeric_limits<SimTime>::max();
  SimTime end = 0;
  for (const auto& worker : workers_) {
    result.total_updates += worker->completed();
    start = std::min(start, worker->measure_start());
    end = std::max(end, worker->measure_end());
    series_.Merge(worker->series());
  }
  result.elapsed = std::max<SimTime>(end - start, 1);
  result.gups = static_cast<double>(result.total_updates) /
                static_cast<double>(result.elapsed);  // updates/ns == G updates/s
  return result;
}

void GupsBenchmark::ApplyVerifiedUpdate(uint64_t addr) {
  ShadowMemory* shadow = manager_.machine().shadow();
  PageTable& pt = manager_.machine().page_table();
  // Odd, address-derived delta: a word holding the wrong multiset of deltas
  // cannot cancel out to the expected sum.
  const uint64_t delta = Mix64(addr) | 1;
  shadow->Store(pt, addr, shadow->Load(pt, addr) + delta);
  expected_[addr] += delta;
}

uint64_t GupsBenchmark::VerifyData() {
  ShadowMemory* shadow = manager_.machine().shadow();
  if (shadow == nullptr) {
    return 0;
  }
  PageTable& pt = manager_.machine().page_table();
  uint64_t mismatches = 0;
  verified_words_ = 0;
  for (const auto& [addr, want] : expected_) {
    verified_words_++;
    if (shadow->Load(pt, addr) != want) {
      mismatches++;
    }
  }
  return mismatches;
}

}  // namespace hemem
