// PageRank over tiered memory — a second GAP kernel beyond the paper's BC.
//
// Push-based power iteration: each pass streams every vertex's neighbor
// list (sequential reads of the CSR) and scatters rank contributions into
// the next-scores array (random 8 B writes). Compared to BC the access mix
// is heavier on sequential graph reads and lighter on random state, which
// makes it a useful contrast workload for tiering policies (the hot state is
// just 2 x 8 B per vertex).
//
// The computation is real: scores converge to the true PageRank (verified
// against a reference implementation in tests).

#ifndef HEMEM_APPS_PAGERANK_H_
#define HEMEM_APPS_PAGERANK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/graph.h"

namespace hemem {

struct PageRankConfig {
  int iterations = 10;
  double damping = 0.85;
};

struct PageRankResult {
  std::vector<SimTime> iteration_time;
  SimTime total_time = 0;
  std::vector<double> scores;
};

class PageRankBenchmark {
 public:
  PageRankBenchmark(SimGraph& graph, PageRankConfig config);
  ~PageRankBenchmark();

  void Prepare();  // allocates score arrays, registers the driver thread
  PageRankResult Run();

  // Reference (uncharged) implementation for correctness tests.
  static std::vector<double> Reference(const CsrGraph& graph, const PageRankConfig& config);

 private:
  class Driver;

  // Executes one bounded quantum; returns false when all iterations done.
  bool Step(SimThread& thread);

  SimGraph& graph_;
  PageRankConfig config_;

  std::vector<double> scores_;
  std::vector<double> next_;
  SimGraph::VertexArray scores_array_;
  SimGraph::VertexArray next_array_;

  std::unique_ptr<Driver> driver_;
  PageRankResult result_;

  bool prefilled_ = false;
  int iteration_ = 0;
  uint64_t cursor_ = 0;  // next vertex to process this iteration
  SimTime iteration_start_ = 0;
};

}  // namespace hemem

#endif  // HEMEM_APPS_PAGERANK_H_
