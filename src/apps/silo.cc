#include "apps/silo.h"

#include <algorithm>
#include <cassert>

namespace hemem {

SiloDb::SiloDb(TieredMemoryManager& manager, SiloConfig config)
    : manager_(manager), config_(config), data_rng_(Mix64(config.seed)) {}

void SiloDb::Load(SimThread& loader) {
  const auto w = static_cast<uint64_t>(config_.warehouses);
  const auto d = static_cast<uint64_t>(config_.districts_per_warehouse);
  const auto c = static_cast<uint64_t>(config_.customers_per_district);
  const auto items = static_cast<uint64_t>(config_.items);
  const auto cap = static_cast<uint64_t>(config_.order_capacity_per_district);

  warehouse_region_ = manager_.Mmap(w * SiloSchema::kWarehouseRow, {.label = "silo-warehouse"});
  district_region_ = manager_.Mmap(w * d * SiloSchema::kDistrictRow, {.label = "silo-district"});
  customer_region_ =
      manager_.Mmap(w * d * c * SiloSchema::kCustomerRow, {.label = "silo-customer"});
  item_region_ = manager_.Mmap(items * SiloSchema::kItemRow, {.label = "silo-item"});
  stock_region_ = manager_.Mmap(w * items * SiloSchema::kStockRow, {.label = "silo-stock"});
  order_region_ = manager_.Mmap(w * d * cap * SiloSchema::kOrderRow, {.label = "silo-order"});
  orderline_region_ =
      manager_.Mmap(w * d * cap * SiloSchema::kMaxOrderLines * SiloSchema::kOrderLineRow,
                    {.label = "silo-orderline"});
  history_region_ =
      manager_.Mmap(w * d * c * SiloSchema::kHistoryRow, {.label = "silo-history"});
  index_region_ = manager_.Mmap((w * items + w * d * c) * SiloSchema::kIndexNode / 4 + MiB(1),
                                {.label = "silo-index"});

  warehouse_ytd_.assign(w, 0.0);
  district_ytd_.assign(w * d, 0.0);
  stock_qty_.assign(w * items, 0);
  customer_balance_.assign(w * d * c, 0.0);
  districts_.resize(w * d);
  for (District& district : districts_) {
    district.orders.resize(cap);
  }

  // Populate: tables stream in once (the paper's prefill-from-disk), charged
  // as bulk sequential stores; row-level host state is set alongside.
  BulkFill(loader, warehouse_region_, w * SiloSchema::kWarehouseRow);
  BulkFill(loader, district_region_, w * d * SiloSchema::kDistrictRow);
  BulkFill(loader, customer_region_, w * d * c * SiloSchema::kCustomerRow);
  BulkFill(loader, item_region_, items * SiloSchema::kItemRow);
  BulkFill(loader, stock_region_, w * items * SiloSchema::kStockRow);
  BulkFill(loader, order_region_, w * d * cap * SiloSchema::kOrderRow);
  BulkFill(loader, orderline_region_,
           w * d * cap * SiloSchema::kMaxOrderLines * SiloSchema::kOrderLineRow);
  for (uint64_t i = 0; i < w * items; ++i) {
    stock_qty_[i] = 50 + static_cast<int>(data_rng_.NextBounded(51));
  }
  // TPC-C ships with populated order books (3,000 initial orders per
  // district); fill half of each district's (scaled) ring so Order-Status,
  // Delivery and Stock-Level see comparable books at every warehouse count.
  for (size_t didx = 0; didx < districts_.size(); ++didx) {
    District& dist = districts_[didx];
    const uint64_t initial = dist.orders.size() / 2;
    for (uint64_t o = 0; o < initial; ++o) {
      Order& order = dist.orders[o];
      order.customer = static_cast<int>(data_rng_.NextBounded(c));
      order.line_count = 5 + static_cast<int>(data_rng_.NextBounded(11));
      order.line_base = (didx * cap + o) * SiloSchema::kMaxOrderLines;
      order.delivered = false;
      orders_created_++;
    }
    dist.next_order = initial;
  }
}

void SiloDb::BulkFill(SimThread& thread, uint64_t region, uint64_t bytes) {
  uint64_t offset = 0;
  while (offset < bytes) {
    const auto chunk = static_cast<uint32_t>(std::min<uint64_t>(bytes - offset, MiB(1)));
    manager_.Access(thread, region + offset, chunk, AccessKind::kStore);
    offset += chunk;
  }
}

void SiloDb::ReadRow(SimThread& thread, uint64_t region, uint64_t row, uint32_t row_bytes) {
  manager_.Access(thread, region + row * row_bytes, row_bytes, AccessKind::kLoad);
}

void SiloDb::WriteRow(SimThread& thread, uint64_t region, uint64_t row, uint32_t row_bytes) {
  manager_.Access(thread, region + row * row_bytes, row_bytes, AccessKind::kStore);
}

void SiloDb::IndexLookup(SimThread& thread, uint64_t index_region, uint64_t key) {
  // Three-level tree descent: root and interior nodes cluster near the front
  // of the index region (hot), leaves spread across it.
  Region* region = manager_.machine().page_table().Find(index_region);
  const uint64_t index_bytes = region != nullptr ? region->bytes : MiB(1);
  const uint64_t leaf_slots = index_bytes / SiloSchema::kIndexNode;
  const uint64_t root = index_region;
  const uint64_t interior =
      index_region + (Mix64(key) % 64) * SiloSchema::kIndexNode;
  const uint64_t leaf =
      index_region + (Mix64(key * 2654435761) % leaf_slots) * SiloSchema::kIndexNode;
  manager_.Access(thread, root, SiloSchema::kIndexNode, AccessKind::kLoad);
  manager_.Access(thread, interior, SiloSchema::kIndexNode, AccessKind::kLoad);
  manager_.Access(thread, leaf, SiloSchema::kIndexNode, AccessKind::kLoad);
}

void SiloDb::ChargeCommit(SimThread& thread, int read_set, int write_set) {
  // OCC validation re-reads each read-set record's TID word; the commit then
  // stamps each write-set record's TID. 8-byte touches at the row heads are
  // approximated by cache-line accesses into the index region.
  for (int i = 0; i < read_set; ++i) {
    manager_.Access(thread, index_region_ + (Mix64(thread.now() + i) % 4096) * 64, 8,
                    AccessKind::kLoad);
  }
  for (int i = 0; i < write_set; ++i) {
    manager_.Access(thread, index_region_ + (Mix64(thread.now() * 31 + i) % 4096) * 64, 8,
                    AccessKind::kStore);
  }
  thread.ChargeCompute(500);  // serialization-point bookkeeping
}

bool SiloDb::NewOrder(SimThread& thread, Rng& rng, int warehouse) {
  const int district = static_cast<int>(rng.NextBounded(config_.districts_per_warehouse));
  const int customer = static_cast<int>(rng.NextBounded(config_.customers_per_district));
  const size_t didx = DistIdx(warehouse, district);
  District& dist = districts_[didx];

  IndexLookup(thread, index_region_, didx);
  ReadRow(thread, warehouse_region_, warehouse, SiloSchema::kWarehouseRow);
  ReadRow(thread, district_region_, didx, SiloSchema::kDistrictRow);
  WriteRow(thread, district_region_, didx, SiloSchema::kDistrictRow);  // next_o_id++
  ReadRow(thread, customer_region_, CustIdx(warehouse, district, customer),
          SiloSchema::kCustomerRow);

  const int lines = 5 + static_cast<int>(rng.NextBounded(11));  // 5..15
  const uint64_t cap = dist.orders.size();
  const uint64_t order_id = dist.next_order++;
  if (order_id - dist.next_delivery >= cap) {
    // Order book full: auto-deliver the oldest to keep the ring bounded.
    dist.next_delivery++;
    orders_delivered_++;
  }
  Order& order = dist.orders[order_id % cap];
  order.customer = customer;
  order.line_count = lines;
  order.line_base = (didx * cap + order_id % cap) * SiloSchema::kMaxOrderLines;
  order.delivered = false;

  for (int l = 0; l < lines; ++l) {
    int supply_warehouse = warehouse;
    // TPC-C: ~1% of order lines are supplied by a remote warehouse.
    if (config_.warehouses > 1 && rng.NextBool(0.01)) {
      supply_warehouse = static_cast<int>(rng.NextBounded(config_.warehouses));
    }
    const int item = static_cast<int>(rng.NextBounded(config_.items));
    IndexLookup(thread, index_region_, static_cast<uint64_t>(item));
    ReadRow(thread, item_region_, item, SiloSchema::kItemRow);
    const size_t sidx = StockIdx(supply_warehouse, item);
    ReadRow(thread, stock_region_, sidx, SiloSchema::kStockRow);
    int& qty = stock_qty_[sidx];
    const int ordered = 1 + static_cast<int>(rng.NextBounded(10));
    qty = qty - ordered >= 10 ? qty - ordered : qty - ordered + 91;
    WriteRow(thread, stock_region_, sidx, SiloSchema::kStockRow);
    WriteRow(thread, orderline_region_, order.line_base + static_cast<uint64_t>(l),
             SiloSchema::kOrderLineRow);
  }
  WriteRow(thread, order_region_, didx * cap + order_id % cap, SiloSchema::kOrderRow);
  orders_created_++;
  ChargeCommit(thread, 3 + 2 * lines, 2 + 2 * lines);
  return true;
}

bool SiloDb::Payment(SimThread& thread, Rng& rng, int warehouse) {
  int customer_warehouse = warehouse;
  // TPC-C: 15% of payments are for a customer of a remote warehouse.
  if (config_.warehouses > 1 && rng.NextBool(0.15)) {
    customer_warehouse = static_cast<int>(rng.NextBounded(config_.warehouses));
  }
  const int district = static_cast<int>(rng.NextBounded(config_.districts_per_warehouse));
  const int customer = static_cast<int>(rng.NextBounded(config_.customers_per_district));
  const double amount = 1.0 + rng.NextDouble() * 4999.0;

  const size_t didx = DistIdx(warehouse, district);
  const size_t cidx = CustIdx(customer_warehouse, district, customer);

  IndexLookup(thread, index_region_, cidx);
  ReadRow(thread, warehouse_region_, warehouse, SiloSchema::kWarehouseRow);
  WriteRow(thread, warehouse_region_, warehouse, SiloSchema::kWarehouseRow);
  warehouse_ytd_[warehouse] += amount;
  ReadRow(thread, district_region_, didx, SiloSchema::kDistrictRow);
  WriteRow(thread, district_region_, didx, SiloSchema::kDistrictRow);
  district_ytd_[didx] += amount;
  if (rng.NextBool(0.6)) {
    // Lookup by last name: scan a handful of leaf entries.
    IndexLookup(thread, index_region_, cidx ^ 0x5a5a);
  }
  ReadRow(thread, customer_region_, cidx, SiloSchema::kCustomerRow);
  WriteRow(thread, customer_region_, cidx, SiloSchema::kCustomerRow);
  customer_balance_[cidx] -= amount;
  const uint64_t history_rows =
      warehouse_ytd_.size() * static_cast<uint64_t>(config_.districts_per_warehouse) *
      static_cast<uint64_t>(config_.customers_per_district);
  WriteRow(thread, history_region_, history_next_++ % history_rows, SiloSchema::kHistoryRow);
  ChargeCommit(thread, 3, 4);
  return true;
}

bool SiloDb::OrderStatus(SimThread& thread, Rng& rng, int warehouse) {
  const int district = static_cast<int>(rng.NextBounded(config_.districts_per_warehouse));
  const int customer = static_cast<int>(rng.NextBounded(config_.customers_per_district));
  const size_t didx = DistIdx(warehouse, district);
  District& dist = districts_[didx];

  IndexLookup(thread, index_region_, CustIdx(warehouse, district, customer));
  ReadRow(thread, customer_region_, CustIdx(warehouse, district, customer),
          SiloSchema::kCustomerRow);
  if (dist.next_order == 0) {
    return false;
  }
  const uint64_t cap = dist.orders.size();
  const uint64_t order_id = dist.next_order - 1;
  const Order& order = dist.orders[order_id % cap];
  ReadRow(thread, order_region_, didx * cap + order_id % cap, SiloSchema::kOrderRow);
  for (int l = 0; l < order.line_count; ++l) {
    ReadRow(thread, orderline_region_, order.line_base + static_cast<uint64_t>(l),
            SiloSchema::kOrderLineRow);
  }
  ChargeCommit(thread, 2 + order.line_count, 0);
  return true;
}

bool SiloDb::Delivery(SimThread& thread, Rng& rng, int warehouse) {
  (void)rng;
  bool any = false;
  for (int district = 0; district < config_.districts_per_warehouse; ++district) {
    const size_t didx = DistIdx(warehouse, district);
    District& dist = districts_[didx];
    if (dist.next_delivery >= dist.next_order) {
      continue;  // no undelivered orders in this district
    }
    const uint64_t cap = dist.orders.size();
    const uint64_t order_id = dist.next_delivery++;
    Order& order = dist.orders[order_id % cap];
    if (order.delivered) {
      continue;
    }
    order.delivered = true;
    orders_delivered_++;
    any = true;

    IndexLookup(thread, index_region_, didx * cap + order_id);
    ReadRow(thread, order_region_, didx * cap + order_id % cap, SiloSchema::kOrderRow);
    WriteRow(thread, order_region_, didx * cap + order_id % cap, SiloSchema::kOrderRow);
    for (int l = 0; l < order.line_count; ++l) {
      ReadRow(thread, orderline_region_, order.line_base + static_cast<uint64_t>(l),
              SiloSchema::kOrderLineRow);
      WriteRow(thread, orderline_region_, order.line_base + static_cast<uint64_t>(l),
               SiloSchema::kOrderLineRow);  // delivery date
    }
    const size_t cidx = CustIdx(warehouse, district, order.customer);
    ReadRow(thread, customer_region_, cidx, SiloSchema::kCustomerRow);
    WriteRow(thread, customer_region_, cidx, SiloSchema::kCustomerRow);
    ChargeCommit(thread, 2 + 2 * order.line_count, 2 + order.line_count);
  }
  return any;
}

bool SiloDb::StockLevel(SimThread& thread, Rng& rng, int warehouse) {
  const int district = static_cast<int>(rng.NextBounded(config_.districts_per_warehouse));
  const size_t didx = DistIdx(warehouse, district);
  District& dist = districts_[didx];

  ReadRow(thread, district_region_, didx, SiloSchema::kDistrictRow);
  // Examine order lines of the last up-to-20 orders, checking stock levels.
  const uint64_t cap = dist.orders.size();
  const uint64_t newest = dist.next_order;
  const uint64_t oldest = newest >= 20 ? newest - 20 : 0;
  int low_stock = 0;
  for (uint64_t order_id = oldest; order_id < newest; ++order_id) {
    const Order& order = dist.orders[order_id % cap];
    for (int l = 0; l < order.line_count; ++l) {
      ReadRow(thread, orderline_region_, order.line_base + static_cast<uint64_t>(l),
              SiloSchema::kOrderLineRow);
      const int item = static_cast<int>(rng.NextBounded(config_.items));
      const size_t sidx = StockIdx(warehouse, item);
      ReadRow(thread, stock_region_, sidx, SiloSchema::kStockRow);
      if (stock_qty_[sidx] < 15) {
        low_stock++;
      }
    }
  }
  (void)low_stock;
  ChargeCommit(thread, 8, 0);
  return true;
}

double SiloDb::district_ytd_sum(int warehouse) const {
  double sum = 0.0;
  for (int d = 0; d < config_.districts_per_warehouse; ++d) {
    sum += district_ytd_[DistIdx(warehouse, d)];
  }
  return sum;
}

}  // namespace hemem
