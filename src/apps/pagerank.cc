#include "apps/pagerank.h"

#include <algorithm>

namespace hemem {

namespace {
constexpr uint64_t kVerticesPerSlice = 64;
}  // namespace

class PageRankBenchmark::Driver : public SimThread {
 public:
  explicit Driver(PageRankBenchmark& bench) : SimThread("pagerank-driver"), bench_(bench) {}

  bool RunSlice() override { return bench_.Step(*this); }

 private:
  PageRankBenchmark& bench_;
};

PageRankBenchmark::PageRankBenchmark(SimGraph& graph, PageRankConfig config)
    : graph_(graph), config_(config) {}

PageRankBenchmark::~PageRankBenchmark() = default;

void PageRankBenchmark::Prepare() {
  const uint64_t n = graph_.num_vertices();
  scores_.assign(n, 1.0 / static_cast<double>(n));
  next_.assign(n, 0.0);
  scores_array_ = SimGraph::VertexArray(graph_, 8, "pr-scores");
  next_array_ = SimGraph::VertexArray(graph_, 8, "pr-next");
  driver_ = std::make_unique<Driver>(*this);
  graph_.manager().machine().engine().AddThread(driver_.get());
}

bool PageRankBenchmark::Step(SimThread& thread) {
  const uint64_t n = graph_.num_vertices();
  if (!prefilled_) {
    graph_.Prefill(thread);
    prefilled_ = true;
    iteration_start_ = thread.now();
    return true;
  }
  if (iteration_ >= config_.iterations) {
    return false;
  }
  if (cursor_ == 0) {
    iteration_start_ = thread.now();
    // Base rank for dangling mass and the (1-d)/N term, streamed.
    const double base = (1.0 - config_.damping) / static_cast<double>(n);
    std::fill(next_.begin(), next_.end(), base);
    next_array_.WriteRange(thread, 0, n);
  }

  const uint64_t end = std::min(n, cursor_ + kVerticesPerSlice);
  for (uint64_t v = cursor_; v < end; ++v) {
    scores_array_.Read(thread, v);
    uint64_t degree = 0;
    const uint32_t* adj = graph_.Neighbors(thread, v, &degree);
    if (degree == 0) {
      continue;
    }
    const double share = config_.damping * scores_[v] / static_cast<double>(degree);
    for (uint64_t i = 0; i < degree; ++i) {
      next_[adj[i]] += share;
      next_array_.Write(thread, adj[i]);
    }
  }
  cursor_ = end;

  if (cursor_ >= n) {
    std::swap(scores_, next_);
    // Swapping the host arrays swaps which region holds "current" scores;
    // charge the pointer-swap metadata only (no copy in a real PR).
    std::swap(scores_array_, next_array_);
    result_.iteration_time.push_back(thread.now() - iteration_start_);
    cursor_ = 0;
    iteration_++;
  }
  return true;
}

PageRankResult PageRankBenchmark::Run() {
  graph_.manager().machine().engine().Run();
  result_.total_time = 0;
  for (const SimTime t : result_.iteration_time) {
    result_.total_time += t;
  }
  result_.scores = scores_;
  return result_;
}

std::vector<double> PageRankBenchmark::Reference(const CsrGraph& graph,
                                                 const PageRankConfig& config) {
  const uint64_t n = graph.num_vertices;
  std::vector<double> scores(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (int iter = 0; iter < config.iterations; ++iter) {
    std::fill(next.begin(), next.end(), (1.0 - config.damping) / static_cast<double>(n));
    for (uint64_t v = 0; v < n; ++v) {
      const uint64_t degree = graph.Degree(v);
      if (degree == 0) {
        continue;
      }
      const double share = config.damping * scores[v] / static_cast<double>(degree);
      for (uint64_t i = graph.offsets[v]; i < graph.offsets[v + 1]; ++i) {
        next[graph.neighbors[i]] += share;
      }
    }
    std::swap(scores, next);
  }
  return scores;
}

}  // namespace hemem
