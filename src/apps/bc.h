// Betweenness centrality (Brandes' algorithm, source-sampled) — the GAP
// kernel the paper evaluates (Figures 14-16).
//
// Each iteration picks a random source vertex and runs: (1) a forward BFS
// computing depths and shortest-path counts (sigma), then (2) a backward
// sweep over the BFS order accumulating dependencies (delta) into the
// centrality scores. The computation is real — scores are verifiable
// against a reference implementation — and every array touch is charged to
// the tiering manager: graph structure reads stream, per-vertex state is
// random-access and write-intensive (sigma/delta/depth writes), matching the
// paper's observation that BC's small, write-heavy accesses make NVM
// residency very costly.

#ifndef HEMEM_APPS_BC_H_
#define HEMEM_APPS_BC_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "apps/graph.h"

namespace hemem {

struct BcConfig {
  int iterations = 15;  // one sampled source per iteration
  uint64_t seed = 3;
};

struct BcResult {
  std::vector<SimTime> iteration_time;        // per-iteration runtime
  std::vector<uint64_t> iteration_nvm_writes;  // NVM media bytes written per iteration
  SimTime total_time = 0;
  std::vector<double> centrality;  // final scores (host-verifiable)
};

class BcBenchmark {
 public:
  BcBenchmark(SimGraph& graph, BcConfig config);
  ~BcBenchmark();

  void Prepare();  // allocates per-vertex state regions, registers the thread
  BcResult Run();

  // Reference (uncharged) implementation for correctness tests.
  static std::vector<double> Reference(const CsrGraph& graph,
                                       const std::vector<uint32_t>& sources);
  const std::vector<uint32_t>& sources() const { return sources_; }

 private:
  class Driver;

  enum class Phase { kPrefill, kStartIteration, kForward, kBackward };

  // Executes one bounded quantum of the current phase; returns false once
  // every iteration has completed.
  bool Step(SimThread& thread);
  void StartIteration(SimThread& thread);
  void ForwardQuantum(SimThread& thread);
  void BackwardQuantum(SimThread& thread);

  SimGraph& graph_;
  BcConfig config_;
  std::vector<uint32_t> sources_;

  // Host-side algorithm state (contents), sim-side charge arrays (traffic).
  std::vector<int32_t> depth_;
  std::vector<uint64_t> sigma_;
  std::vector<double> delta_;
  std::vector<double> centrality_;
  std::vector<uint32_t> bfs_order_;
  SimGraph::VertexArray depth_array_;
  SimGraph::VertexArray sigma_array_;
  SimGraph::VertexArray delta_array_;
  SimGraph::VertexArray centrality_array_;

  std::unique_ptr<Driver> driver_;
  BcResult result_;

  // Stepping state.
  Phase phase_ = Phase::kPrefill;
  size_t iteration_ = 0;
  size_t forward_head_ = 0;
  size_t backward_pos_ = 0;
  SimTime iteration_start_ = 0;
  uint64_t iteration_wear_start_ = 0;
};

}  // namespace hemem

#endif  // HEMEM_APPS_BC_H_
