// A foreground thread driven by a callable: invokes `step(self)` once per
// slice until it returns false. The quickest way to put an ad-hoc access
// script on the engine (tests, ablation benches, examples).

#ifndef HEMEM_SIM_SCRIPT_THREAD_H_
#define HEMEM_SIM_SCRIPT_THREAD_H_

#include <functional>
#include <utility>

#include "sim/engine.h"

namespace hemem {

class ScriptThread : public SimThread {
 public:
  // step(self) -> keep_running
  explicit ScriptThread(std::function<bool(ScriptThread&)> step,
                        const char* name = "script")
      : SimThread(name), step_(std::move(step)) {}

  bool RunSlice() override { return step_(*this); }

 private:
  std::function<bool(ScriptThread&)> step_;
};

}  // namespace hemem

#endif  // HEMEM_SIM_SCRIPT_THREAD_H_
