// Deterministic virtual-time fault injection.
//
// A FaultPlan is a parsed list of fault rules ("during [start,end), each DMA
// batch fails with probability p, at most max times"); a FaultInjector owned
// by the Machine evaluates those rules at well-defined *opportunity points*
// in the consumers (a DMA batch submission, a PEBS record append, a policy
// allocation, a migration commit). Consumers harden against the injected
// faults — retry with backoff, fall back to CPU copies, roll a migration
// back, defer an allocation — and the tests assert that every recovery path
// preserves the simulator's invariants.
//
// Determinism is the whole point: a fire/no-fire decision is a pure function
// of (plan seed, fault kind, per-kind opportunity ordinal), via a SplitMix64
// counter hash. The schedule therefore depends only on the seed and on how
// many opportunities of that kind came before — never on wall clock, caller
// identity, or what *other* fault kinds drew in between — so the same seed
// replays the same schedule and adding a new draw site for one kind cannot
// reshuffle another's.
//
// Inertness: an empty plan arms nothing. The Machine attaches the injector
// to a component only when the plan carries rules of a kind that component
// consumes (mirroring EnableTracing), so with no --fault-spec the hot paths
// run the exact pre-fault instruction streams and the golden fingerprints
// stay bit-identical.

#ifndef HEMEM_SIM_FAULT_H_
#define HEMEM_SIM_FAULT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace hemem {

enum class FaultKind : uint8_t {
  kDmaFail = 0,     // DMA batch submission errors out (bad descriptor / ioctl)
  kDmaTimeout,      // DMA batch stalls for a while, then errors out
  kDeviceDegrade,   // device latency/bandwidth multiplier, wear-accelerated
  kPebsDrop,        // one PEBS record is lost
  kPebsBurst,       // buffer-overflow burst: the next `len` records are lost
  kMigrationAbort,  // migration batch aborts before its commit point
  kAllocFail,       // transient frame-allocation failure on policy paths
};
inline constexpr int kNumFaultKinds = 7;

const char* FaultKindName(FaultKind kind);

struct FaultRule {
  FaultKind kind = FaultKind::kDmaFail;
  // Restricts the rule to one target: device name for kDeviceDegrade,
  // tier name for kAllocFail. Empty matches any target.
  std::string target;
  double probability = 1.0;  // chance one opportunity fires, in (0, 1]
  SimTime start = 0;         // active virtual-time window [start, end)
  SimTime end = std::numeric_limits<SimTime>::max();
  uint64_t max_count = std::numeric_limits<uint64_t>::max();  // cap on fires
  // kDeviceDegrade: latency/busy multiplier. kDmaTimeout: stall length as a
  // multiple of the batch's nominal engine time.
  double magnitude = 2.0;
  // kDeviceDegrade: wear acceleration — the effective multiplier grows by
  // magnitude * wear * (media bytes written / capacity).
  double wear = 0.0;
  uint64_t burst_len = 64;  // kPebsBurst: records lost per burst
};

struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  // Parses a spec like
  //   "seed=42;dma.fail:p=0.1,start=1ms,end=50ms,max=100;nvm.degrade:mult=4,
  //    wear=0.5;pebs.drop:p=0.05;pebs.burst:p=0.001,len=256;
  //    migrate.abort:p=0.02;alloc.fail:p=0.1,tier=nvm"
  // Rules are ';'-separated `name:key=value,...` items; `seed=N` may appear
  // as an item. Time values take an ns/us/ms/s suffix (default ns). Returns
  // false and sets *error on malformed input; *out is then unspecified.
  static bool Parse(const std::string& spec, FaultPlan* out, std::string* error);
};

// Degradation parameters a MemoryDevice applies when armed; derived from the
// device's kDeviceDegrade rule at attach time so the per-access path never
// matches rule lists or compares target strings.
struct DeviceDegrade {
  bool active = false;
  double multiplier = 1.0;
  double wear_factor = 0.0;
  SimTime start = 0;
  SimTime end = std::numeric_limits<SimTime>::max();
};

class FaultInjector {
 public:
  FaultInjector() = default;  // inert: nothing armed, Fire never fires
  explicit FaultInjector(FaultPlan plan);

  bool armed(FaultKind kind) const {
    return (armed_mask_ & (1u << static_cast<int>(kind))) != 0;
  }
  bool any_armed() const { return armed_mask_ != 0; }

  // One fault opportunity of `kind` at virtual time `now` against `target`.
  // Returns the rule that fired (at most one per opportunity, in plan order)
  // or nullptr. Every call consumes one per-kind ordinal whether or not a
  // rule matches, so schedules replay exactly under the same call sequence.
  const FaultRule* Fire(FaultKind kind, SimTime now, std::string_view target = {});
  bool ShouldFail(FaultKind kind, SimTime now, std::string_view target = {}) {
    return Fire(kind, now, target) != nullptr;
  }

  // Degradation state for the device named `device` ("dram"/"nvm"): the
  // first kDeviceDegrade rule targeting it, or an inactive default.
  DeviceDegrade DegradeFor(std::string_view device) const;

  // True when no rule of any kind can fire anywhere in virtual time
  // [t0, t1): nothing is armed, or every rule's fire cap is exhausted or its
  // window misses the span. Batched access execution uses this as a
  // lookahead guard — proving a run quantum cannot intersect a fault window
  // before taking time-invariant fast paths. It must never be used to skip
  // Fire() calls a non-batched execution would make: skipping a call shifts
  // that kind's opportunity ordinals and reshuffles its schedule.
  bool QuiescentIn(SimTime t0, SimTime t1) const;

  uint64_t opportunities(FaultKind kind) const {
    return opportunities_[static_cast<int>(kind)];
  }
  uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<int>(kind)];
  }
  uint64_t total_injected() const;

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  uint32_t armed_mask_ = 0;
  // Rule indices by kind, preserving plan order.
  std::vector<uint32_t> rules_by_kind_[kNumFaultKinds];
  std::vector<uint64_t> rule_fired_;  // per-rule fire count (max_count cap)
  uint64_t opportunities_[kNumFaultKinds] = {};
  uint64_t injected_[kNumFaultKinds] = {};
};

}  // namespace hemem

#endif  // HEMEM_SIM_FAULT_H_
