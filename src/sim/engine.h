// Virtual-time simulation engine.
//
// The entire reproduction runs on simulated time: application workloads,
// HeMem's background threads, baselines' kernel threads, and the memory
// devices all observe one coherent virtual clock. The engine models each
// logical thread with its own clock and always executes the thread with the
// smallest clock next ("min-time-first"). Because a thread's slice only
// consumes shared resources (memory-device channels, DMA channels) at times
// >= its own clock, and the globally-minimal thread runs first, resource
// causality is preserved without a general event queue.
//
// Threads come in two flavors:
//  * foreground threads (application workers) — the engine runs until all of
//    them finish (or a deadline passes);
//  * background threads (PEBS readers, policy threads, kernel scanners) —
//    periodic actors that stop when the run ends.
//
// CPU core contention: each thread declares a cpu_share in [0,1] (how much of
// a core it occupies while runnable). When the sum of shares exceeds the core
// count, compute time (not memory-device time) is stretched proportionally.
// This reproduces the paper's Figure 7 effect where HeMem's helper threads
// steal cycles from GUPS at >= 21 application threads on a 24-core socket.

#ifndef HEMEM_SIM_ENGINE_H_
#define HEMEM_SIM_ENGINE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"

namespace hemem {

class Engine;
class SimThread;

// Policy hook for sharded epoch execution (DESIGN.md "Parallel engine &
// epoch barriers"). The engine knows nothing about devices or page tables;
// the tier layer implements this interface to answer "may the threads in
// `shard_threads` run concurrently up to some horizon, and how is shared
// device state split and re-merged?". All methods are called from the
// engine's scheduling thread except BindShard/UnbindShard, which each worker
// calls on its own host thread.
class EpochGate {
 public:
  virtual ~EpochGate() = default;

  // Largest safe epoch horizon in (frontier, want], or 0 to reject the
  // epoch. `shard_threads` is the candidate set, sorted by stream id; the
  // gate may inspect but not mutate the threads.
  virtual SimTime EpochHorizon(SimTime frontier, SimTime want,
                               const std::vector<SimThread*>& shard_threads) = 0;
  // Snapshots shared state into one view per epoch thread (`views` =
  // candidate count). Views are per *thread*, not per worker: each thread
  // must execute against the epoch-start device state, never against a
  // shard-sibling's completed reservations.
  virtual void BeginEpoch(int views) = 0;
  // Routes the calling host thread's device accesses to the view of epoch
  // thread `view` (its candidate index). Workers re-bind per owned thread.
  virtual void BindShard(int view) = 0;
  virtual void UnbindShard() = 0;
  // Folds the per-thread views back into shared state, in fixed candidate
  // order, normalized at `horizon`. Runs after every worker has joined.
  virtual void MergeEpoch(SimTime horizon, int views) = 0;
};

// Passive engine lifecycle hook. The obs layer's trace glue implements it
// (the sim layer must not depend on obs); callbacks fire only on cold paths
// (thread registration, thread completion, end of Run), never per slice.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void OnThreadAdded(const SimThread& /*thread*/) {}
  virtual void OnThreadFinished(const SimThread& /*thread*/, SimTime /*now*/) {}
  virtual void OnRunFinished(SimTime /*end*/) {}
};

// A logical thread driven by the engine. Subclasses implement RunSlice() to
// perform one small unit of work (typically one application operation or one
// background-thread wakeup), advancing their own clock via Advance*().
class SimThread {
 public:
  explicit SimThread(std::string name, bool foreground = true, double cpu_share = 1.0);
  virtual ~SimThread();

  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  // Performs one slice of work. Returns false when the thread is finished and
  // should be removed from the run queue.
  virtual bool RunSlice() = 0;

  SimTime now() const { return now_; }
  const std::string& name() const { return name_; }
  // Stable per-engine identity; memory devices use it for stream detection.
  uint32_t stream_id() const { return stream_id_; }
  bool foreground() const { return foreground_; }
  double cpu_share() const { return cpu_share_; }
  void set_cpu_share(double share);

  // Advances this thread's clock by `ns` of wall (device/wait) time. Inline:
  // called once per access from the batched quantum loop, where an
  // out-of-line call would spill the loop's register state.
  void Advance(SimTime ns) {
    assert(ns >= 0);
    now_ += ns;
  }
  // Moves the clock to `t` if `t` is in the future. Inline for the same
  // reason as Advance.
  void AdvanceTo(SimTime t) {
    if (t > now_) {
      now_ = t;
    }
  }
  // Publishes a batched quantum's register-held clock. The quantum loop
  // advances a local copy of the clock (keeping the per-access dependency
  // chain out of memory) and stores it back here at every point where other
  // code can observe thread time: before the generator, around skeleton
  // fallbacks and hooks, and at quantum end. `t` must be monotone.
  void SyncTime(SimTime t) {
    assert(t >= now_);
    now_ = t;
  }
  // Advances by `ns` of CPU time, stretched by the engine's contention factor.
  void ChargeCompute(SimTime ns);

  // Queues a penalty (e.g. a TLB-shootdown IPI) that is applied to this
  // thread's clock at the start of its next slice. Safe to call from any
  // other thread's slice.
  void AddPenalty(SimTime ns) { pending_penalty_ += ns; }
  SimTime pending_penalty() const { return pending_penalty_; }

  // True while this thread's slice may keep executing accesses back-to-back:
  // no penalty is queued and the clock is still strictly below the horizon
  // published by whichever scheduler dispatched this slice (the serial run
  // loop, or an epoch worker). Identical to the serial direct-run
  // continuation test, so a slice that runs K accesses while this holds is
  // indistinguishable from K single-access slices.
  bool InRunQuantum() const { return pending_penalty_ == 0 && now_ < dispatch_horizon_; }

  // Exclusive clock bound for the slice currently executing on this thread,
  // written by the dispatching scheduler immediately before RunSlice(). Zero
  // outside the engine (so InRunQuantum() is false there).
  SimTime dispatch_horizon() const { return dispatch_horizon_; }

  // Declares that this thread's slices touch no cross-thread state other
  // than the tiering access path itself (self-contained generator, no shared
  // counters, no engine mutation), making it eligible for sharded epoch
  // execution (DESIGN.md "Parallel engine & epoch barriers"). Purity is the
  // caller's contract — the engine cannot verify it. Must be set before
  // AddThread; defaults off, so existing threads never run in epochs.
  void set_parallel_pure(bool pure) {
    assert(engine_ == nullptr && "set_parallel_pure must precede AddThread");
    parallel_pure_ = pure;
  }
  bool parallel_pure() const { return parallel_pure_; }

  // Per-thread software TLB: the tier layer's access skeleton caches its
  // last translation here so repeat accesses skip the page-table walk even
  // when threads with disjoint working sets interleave (a shared last-region
  // cache thrashes in that case). `region` and `pages` are opaque pointers
  // (Region* / PageEntry*) — the sim layer sits below the vm layer and never
  // dereferences them; `pages` plus `page_shift` (the region's own page
  // granularity) let the batched quantum loop index a page entry without
  // touching the Region at all. `epoch` is the PageTable unmap epoch at fill
  // time; a stale epoch invalidates the slot, since only unmaps can move or
  // free a Region.
  struct TranslationCache {
    uint64_t base = 0;
    uint64_t bytes = 0;
    void* region = nullptr;
    void* pages = nullptr;
    uint64_t epoch = ~0ull;
    uint32_t page_shift = 0;
  };
  TranslationCache& translation_cache() { return tcache_; }

  // Scratch slot for the tier layer: the start time of the access op
  // currently executing on this thread, written by the access entry points
  // before any sampling hook can run. Sampling under epochs keys its
  // deterministic barrier merge on it (DESIGN.md "Sampling under epochs").
  // Like the translation cache, the sim layer stores but never interprets it.
  void set_access_op_start(SimTime t) { access_op_start_ = t; }
  SimTime access_op_start() const { return access_op_start_; }

  Engine* engine() const { return engine_; }

 private:
  friend class Engine;

  std::string name_;
  bool foreground_;
  double cpu_share_;
  SimTime now_ = 0;
  SimTime pending_penalty_ = 0;
  TranslationCache tcache_;
  SimTime access_op_start_ = 0;
  Engine* engine_ = nullptr;
  bool finished_ = false;
  bool parallel_pure_ = false;
  bool in_epoch_ = false;  // engine scratch: member of the current epoch set
  uint32_t stream_id_ = 0;
  SimTime dispatch_horizon_ = 0;
};

// Convenience base for periodic background actors (policy thread, PEBS
// thread, kernel scanner). Tick() returns how many nanoseconds of work the
// wakeup performed; the next wakeup happens period() after the previous
// wakeup *started*, unless the work ran longer (natural backpressure).
class PeriodicThread : public SimThread {
 public:
  PeriodicThread(std::string name, SimTime period, double cpu_share = 1.0);

  bool RunSlice() final;

  // Returns the simulated duration of the work done in this wakeup.
  virtual SimTime Tick() = 0;

  SimTime period() const { return period_; }
  void set_period(SimTime period) { period_ = period; }

  // Fraction of recent wall time this actor spent working; used to attribute
  // core occupancy of mostly-idle helpers honestly.
  double duty_cycle() const { return duty_cycle_; }

 private:
  SimTime period_;
  double duty_cycle_ = 0.0;
};

class Engine {
 public:
  explicit Engine(int cores = 24);
  ~Engine();

  // Registers a thread (non-owning; callers keep threads alive for the run).
  void AddThread(SimThread* thread);

  // Registers a passive background actor (e.g. the obs metrics sampler).
  // Unlike AddThread it does not consume a stream id — stream ids feed the
  // memory devices' sequential-stream detector and PEBS's per-context
  // counters, so observer threads must not shift them or determinism would
  // depend on whether observability is on. The actor must be background and
  // must only read simulation state.
  void AddObserverThread(SimThread* thread);

  // Stream id given to observer threads (never used for device accesses).
  static constexpr uint32_t kObserverStreamId = ~0u;

  // Lifecycle hook for the obs layer; pass nullptr to detach. Not owned.
  void set_observer(EngineObserver* observer) { observer_ = observer; }

  // Runs until every foreground thread finished or `deadline` passed.
  // Returns the final virtual time.
  SimTime Run(SimTime deadline = std::numeric_limits<SimTime>::max());

  // Smallest clock among live threads (the global frontier).
  SimTime now() const;

  int cores() const { return cores_; }

  // Compute-time stretch factor given current cpu_share demand.
  double ContentionFactor() const;

  // Applies `ns` of penalty to every live foreground thread except `except`.
  // Used for TLB shootdowns.
  void PenalizeForeground(SimTime ns, const SimThread* except = nullptr);

  int live_foreground() const { return live_foreground_; }

  // ---- Batched slice execution (DESIGN.md "Engine fast path & batching") ---

  // Exclusive upper bound on clock values at which the currently-running
  // thread is still provably the unique earliest runnable thread and inside
  // the Run deadline: min(smallest remaining heap key, deadline + 1).
  // Maintained by Run() immediately before every slice; meaningful only while
  // a slice is executing. A slice whose clock stays strictly below this bound
  // would be re-dispatched immediately by the scheduler anyway, so it may run
  // its next access in place without returning to the heap.
  SimTime run_horizon() const { return run_horizon_; }

  // Global batching knobs. Batching is purely an execution strategy — results
  // are bit-identical either way (tests/batch_equivalence_test.cc) — so it
  // defaults on; tests and benches force it off to cross-check and measure.
  void set_batching(bool on) { batching_ = on; }
  bool batching() const { return batching_; }
  // Cap on the accesses one granted quantum executes before returning to the
  // scheduler. Correctness never depends on it (the horizon check is exact);
  // it only bounds how long a slice runs between scheduling points.
  void set_quantum_ops(uint32_t k) { quantum_ops_ = k == 0 ? 1 : k; }
  uint32_t quantum_ops() const { return quantum_ops_; }

  // ---- Sharded epochs (DESIGN.md "Parallel engine & epoch barriers") ------

  // Number of host worker threads epochs may use. 1 (the default) disables
  // epochs entirely — Run() is the serial scheduler, byte for byte. N >= 2
  // lazily spins up a persistent pool of N-1 host threads (the scheduling
  // thread is worker 0) that is torn down in the destructor or on resize.
  void set_host_workers(int n);
  int host_workers() const { return host_workers_; }

  // The tier layer's eligibility/merge policy; epochs also require this.
  // Not owned; pass nullptr to detach.
  void set_epoch_gate(EpochGate* gate) { gate_ = gate; }

  // Optional cap on an epoch's virtual-time span (0 = unbounded). The
  // horizon is always additionally bounded by the deadline and by every
  // non-shardable live thread's next wakeup, so epochs terminate regardless
  // of per-worker quantum caps — quantum_ops_ only splits an epoch's work
  // into more RunSlice calls, it never extends the horizon (worker slices
  // re-dispatch until the horizon, exactly like the serial direct-run loop).
  void set_epoch_span(SimTime span) { epoch_span_ = span; }
  SimTime epoch_span() const { return epoch_span_; }

  struct EpochStats {
    uint64_t epochs = 0;         // epochs executed
    uint64_t rejected = 0;       // attempts rejected by the gate or filters
    uint64_t epoch_threads = 0;  // cumulative thread participations
    uint64_t virtual_ns = 0;     // cumulative virtual time covered by epochs
    uint64_t barrier_ns = 0;     // host ns spent merging + rebuilding
  };
  const EpochStats& epoch_stats() const { return epoch_stats_; }

  struct WorkerStats {
    uint64_t busy_ns = 0;      // host ns executing shard slices
    uint64_t stall_ns = 0;     // host ns waiting at epoch barriers
    uint64_t slices = 0;       // RunSlice calls issued
    uint64_t threads_run = 0;  // thread-epoch assignments
  };
  const std::vector<WorkerStats>& worker_stats() const { return worker_stats_; }

 private:
  friend class SimThread;

  // Dispatch order is the strict total order (clock, stream id): clock ties
  // between distinct threads always resolve to the lower stream id, making
  // the schedule a pure function of current thread states rather than of
  // push history. That history-independence is what lets the epoch barrier
  // rebuild the heap from merged clocks alone and land on exactly the serial
  // schedule (DESIGN.md "Parallel engine & epoch barriers"). The seq is a
  // final FIFO tiebreak reachable only by observer threads, which share one
  // sentinel stream id and never touch simulation state.
  struct HeapEntry {
    SimTime time;
    uint32_t stream;
    uint64_t seq;
    SimThread* thread;
    bool operator>(const HeapEntry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return stream != other.stream ? stream > other.stream : seq > other.seq;
    }
  };

  void Push(SimThread* thread);
  void Finish(SimThread* thread);

  // One epoch attempt: computes the horizon, runs shard workers, merges at
  // the barrier. Returns true if an epoch executed (the caller re-enters the
  // scheduling loop); false means fall through to the serial dispatcher.
  bool TryParallelEpoch(SimTime deadline, SimTime& last);
  void EnsurePool();
  void StopPool();
  void PoolMain(int worker);

  struct Pool;  // defined in engine.cc

  int cores_;
  uint64_t next_seq_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<SimThread*> threads_;
  int live_foreground_ = 0;
  double cpu_demand_ = 0.0;  // sum of live threads' cpu_share, kept incrementally
  uint32_t next_stream_id_ = 0;
  EngineObserver* observer_ = nullptr;
  SimTime run_horizon_ = 0;
  bool batching_ = true;
  uint32_t quantum_ops_ = 1024;

  // Sharded-epoch state. live_pure_ counts live foreground parallel-pure
  // threads so the per-dispatch epoch attempt is a two-compare no-op for
  // every machine that never opts in.
  int host_workers_ = 1;
  int live_pure_ = 0;
  EpochGate* gate_ = nullptr;
  SimTime epoch_span_ = 0;
  EpochStats epoch_stats_;
  std::vector<WorkerStats> worker_stats_;
  std::vector<SimThread*> epoch_threads_;   // scratch: current epoch set
  std::vector<uint8_t> epoch_alive_;        // scratch: RunSlice outcomes
  std::vector<uint64_t> worker_finish_ns_;  // scratch: per-worker join times
  std::vector<SimThread*> epoch_order_;     // scratch: finish/rebuild ordering
  std::unique_ptr<Pool> pool_;
};

}  // namespace hemem

#endif  // HEMEM_SIM_ENGINE_H_
