#include "sim/engine.h"

#include <algorithm>
#include <cassert>

namespace hemem {

SimThread::SimThread(std::string name, bool foreground, double cpu_share)
    : name_(std::move(name)), foreground_(foreground), cpu_share_(cpu_share) {}

SimThread::~SimThread() = default;

void SimThread::set_cpu_share(double share) {
  if (engine_ != nullptr && !finished_) {
    engine_->cpu_demand_ += share - cpu_share_;
  }
  cpu_share_ = share;
}

void SimThread::ChargeCompute(SimTime ns) {
  const double factor = engine_ != nullptr ? engine_->ContentionFactor() : 1.0;
  now_ += static_cast<SimTime>(static_cast<double>(ns) * factor);
}

PeriodicThread::PeriodicThread(std::string name, SimTime period, double cpu_share)
    : SimThread(std::move(name), /*foreground=*/false, cpu_share), period_(period) {}

bool PeriodicThread::RunSlice() {
  const SimTime start = now();
  const SimTime work = Tick();
  Advance(work);
  const SimTime next = std::max(now(), start + period_);
  // Exponentially-averaged busy fraction over recent periods.
  const double busy =
      static_cast<double>(work) / static_cast<double>(std::max<SimTime>(next - start, 1));
  duty_cycle_ = 0.8 * duty_cycle_ + 0.2 * busy;
  AdvanceTo(next);
  return true;
}

Engine::Engine(int cores) : cores_(cores) {}

void Engine::AddThread(SimThread* thread) {
  thread->engine_ = this;
  thread->stream_id_ = next_stream_id_++;
  threads_.push_back(thread);
  if (thread->foreground()) {
    live_foreground_++;
  }
  cpu_demand_ += thread->cpu_share_;
  Push(thread);
  if (observer_ != nullptr) {
    observer_->OnThreadAdded(*thread);
  }
}

void Engine::AddObserverThread(SimThread* thread) {
  assert(!thread->foreground());
  thread->engine_ = this;
  thread->stream_id_ = kObserverStreamId;
  threads_.push_back(thread);
  cpu_demand_ += thread->cpu_share_;
  Push(thread);
}

void Engine::Push(SimThread* thread) {
  heap_.push_back({thread->now(), next_seq_++, thread});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

SimTime Engine::now() const { return heap_.empty() ? 0 : heap_.front().time; }

double Engine::ContentionFactor() const {
  const double factor = cpu_demand_ / static_cast<double>(cores_);
  return factor > 1.0 ? factor : 1.0;
}

void Engine::PenalizeForeground(SimTime ns, const SimThread* except) {
  for (SimThread* t : threads_) {
    if (t->foreground() && !t->finished_ && t != except) {
      t->AddPenalty(ns);
    }
  }
}

void Engine::Finish(SimThread* thread) {
  thread->finished_ = true;
  if (thread->foreground()) {
    live_foreground_--;
  }
  cpu_demand_ -= thread->cpu_share_;
  if (observer_ != nullptr) {
    observer_->OnThreadFinished(*thread, thread->now_);
  }
}

SimTime Engine::Run(SimTime deadline) {
  SimTime last = 0;
  // Horizon contribution of the deadline: a slice may keep running while
  // now <= deadline, i.e. now < deadline + 1 (guarding signed overflow at
  // the "no deadline" sentinel).
  const SimTime deadline_bound = deadline == std::numeric_limits<SimTime>::max()
                                     ? deadline
                                     : deadline + 1;
  while (live_foreground_ > 0 && !heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const HeapEntry entry = heap_.back();
    heap_.pop_back();
    SimThread* thread = entry.thread;
    if (thread->finished_) {
      continue;
    }
    // The stored key can be stale if the thread accrued penalties since it was
    // pushed; the penalty is applied now, before the slice runs.
    if (thread->pending_penalty_ > 0) {
      thread->Advance(thread->pending_penalty_);
      thread->pending_penalty_ = 0;
      // Re-queue at its corrected time so ordering stays honest.
      Push(thread);
      continue;
    }
    if (thread->now() > deadline) {
      // Past the deadline: park the thread (it stays live but stops running).
      Finish(thread);
      last = deadline;
      continue;
    }
    for (;;) {
      // Publish the lookahead window for batched slices: the thread stays the
      // unique earliest runnable thread while its clock is strictly below the
      // second-smallest key (now the heap front — this thread is popped) and
      // within the deadline. Access paths never add threads mid-slice, so the
      // bound cannot shrink while the slice runs; penalties can arrive, which
      // is why InRunQuantum() also checks pending_penalty_.
      run_horizon_ = heap_.empty() ? deadline_bound
                                   : std::min(heap_.front().time, deadline_bound);
      const bool alive = thread->RunSlice();
      last = thread->now();
      if (!alive) {
        Finish(thread);
        break;
      }
      // While the thread stays strictly earliest and penalty-free, a heap
      // round trip would pop it right back; run the next slice directly.
      // (>= falls through to the heap so time ties keep seq order.)
      if (thread->pending_penalty_ != 0 ||
          (!heap_.empty() && thread->now() >= heap_.front().time)) {
        Push(thread);
        break;
      }
      if (thread->now() > deadline) {
        Finish(thread);
        last = deadline;
        break;
      }
    }
  }
  if (observer_ != nullptr) {
    observer_->OnRunFinished(last);
  }
  return last;
}

}  // namespace hemem
