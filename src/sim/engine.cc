#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace hemem {

namespace {
uint64_t ElapsedNs(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}
}  // namespace

// Persistent host-worker pool. Workers park on work_cv between epochs; the
// scheduling thread publishes one job per epoch (epoch counter bumps, every
// worker runs job(w) exactly once) and waits on done_cv until remaining hits
// zero. All cross-thread state hand-off — thread clocks, per-worker stats,
// shard views — is ordered by mu: workers finish their job before taking mu
// to decrement remaining, and the scheduler only reads results after
// observing remaining == 0 under mu.
struct Engine::Pool {
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::function<void(int)> job;
  uint64_t epoch = 0;
  int remaining = 0;
  bool stop = false;
  std::vector<std::thread> threads;
};

SimThread::SimThread(std::string name, bool foreground, double cpu_share)
    : name_(std::move(name)), foreground_(foreground), cpu_share_(cpu_share) {}

SimThread::~SimThread() = default;

void SimThread::set_cpu_share(double share) {
  if (engine_ != nullptr && !finished_) {
    engine_->cpu_demand_ += share - cpu_share_;
  }
  cpu_share_ = share;
}

void SimThread::ChargeCompute(SimTime ns) {
  const double factor = engine_ != nullptr ? engine_->ContentionFactor() : 1.0;
  now_ += static_cast<SimTime>(static_cast<double>(ns) * factor);
}

PeriodicThread::PeriodicThread(std::string name, SimTime period, double cpu_share)
    : SimThread(std::move(name), /*foreground=*/false, cpu_share), period_(period) {}

bool PeriodicThread::RunSlice() {
  const SimTime start = now();
  const SimTime work = Tick();
  Advance(work);
  const SimTime next = std::max(now(), start + period_);
  // Exponentially-averaged busy fraction over recent periods.
  const double busy =
      static_cast<double>(work) / static_cast<double>(std::max<SimTime>(next - start, 1));
  duty_cycle_ = 0.8 * duty_cycle_ + 0.2 * busy;
  AdvanceTo(next);
  return true;
}

Engine::Engine(int cores) : cores_(cores) { worker_stats_.resize(1); }

Engine::~Engine() { StopPool(); }

void Engine::set_host_workers(int n) {
  if (n < 1) {
    n = 1;
  }
  if (pool_ != nullptr && static_cast<int>(pool_->threads.size()) + 1 != n) {
    StopPool();
  }
  host_workers_ = n;
  worker_stats_.assign(static_cast<size_t>(n), WorkerStats{});
}

void Engine::EnsurePool() {
  if (pool_ != nullptr || host_workers_ < 2) {
    return;
  }
  pool_ = std::make_unique<Pool>();
  pool_->threads.reserve(static_cast<size_t>(host_workers_ - 1));
  for (int w = 1; w < host_workers_; ++w) {
    pool_->threads.emplace_back([this, w] { PoolMain(w); });
  }
}

void Engine::StopPool() {
  if (pool_ == nullptr) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(pool_->mu);
    pool_->stop = true;
  }
  pool_->work_cv.notify_all();
  for (std::thread& t : pool_->threads) {
    t.join();
  }
  pool_.reset();
}

void Engine::PoolMain(int worker) {
  uint64_t seen = 0;
  for (;;) {
    std::function<void(int)> job;
    {
      std::unique_lock<std::mutex> lock(pool_->mu);
      pool_->work_cv.wait(lock,
                          [this, seen] { return pool_->stop || pool_->epoch != seen; });
      if (pool_->stop) {
        return;
      }
      seen = pool_->epoch;
      job = pool_->job;
    }
    job(worker);
    {
      std::lock_guard<std::mutex> lock(pool_->mu);
      if (--pool_->remaining == 0) {
        pool_->done_cv.notify_all();
      }
    }
  }
}

void Engine::AddThread(SimThread* thread) {
  thread->engine_ = this;
  thread->stream_id_ = next_stream_id_++;
  threads_.push_back(thread);
  if (thread->foreground()) {
    live_foreground_++;
    if (thread->parallel_pure_) {
      live_pure_++;
    }
  }
  cpu_demand_ += thread->cpu_share_;
  Push(thread);
  if (observer_ != nullptr) {
    observer_->OnThreadAdded(*thread);
  }
}

void Engine::AddObserverThread(SimThread* thread) {
  assert(!thread->foreground());
  thread->engine_ = this;
  thread->stream_id_ = kObserverStreamId;
  threads_.push_back(thread);
  cpu_demand_ += thread->cpu_share_;
  Push(thread);
}

void Engine::Push(SimThread* thread) {
  heap_.push_back({thread->now(), thread->stream_id_, next_seq_++, thread});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

SimTime Engine::now() const { return heap_.empty() ? 0 : heap_.front().time; }

double Engine::ContentionFactor() const {
  const double factor = cpu_demand_ / static_cast<double>(cores_);
  return factor > 1.0 ? factor : 1.0;
}

void Engine::PenalizeForeground(SimTime ns, const SimThread* except) {
  for (SimThread* t : threads_) {
    if (t->foreground() && !t->finished_ && t != except) {
      t->AddPenalty(ns);
    }
  }
}

void Engine::Finish(SimThread* thread) {
  thread->finished_ = true;
  if (thread->foreground()) {
    live_foreground_--;
    if (thread->parallel_pure_) {
      live_pure_--;
    }
  }
  cpu_demand_ -= thread->cpu_share_;
  if (observer_ != nullptr) {
    observer_->OnThreadFinished(*thread, thread->now_);
  }
}

SimTime Engine::Run(SimTime deadline) {
  SimTime last = 0;
  // Horizon contribution of the deadline: a slice may keep running while
  // now <= deadline, i.e. now < deadline + 1 (guarding signed overflow at
  // the "no deadline" sentinel).
  const SimTime deadline_bound = deadline == std::numeric_limits<SimTime>::max()
                                     ? deadline
                                     : deadline + 1;
  while (live_foreground_ > 0 && !heap_.empty()) {
    // Sharded epoch attempt (two compares on machines that never opt in):
    // when several parallel-pure threads are runnable, execute them
    // concurrently up to a safe horizon and merge at a barrier instead of
    // dispatching them one by one.
    if (TryParallelEpoch(deadline, last)) {
      continue;
    }
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const HeapEntry entry = heap_.back();
    heap_.pop_back();
    SimThread* thread = entry.thread;
    if (thread->finished_) {
      continue;
    }
    // The stored key can be stale if the thread accrued penalties since it was
    // pushed; the penalty is applied now, before the slice runs.
    if (thread->pending_penalty_ > 0) {
      thread->Advance(thread->pending_penalty_);
      thread->pending_penalty_ = 0;
      // Re-queue at its corrected time so ordering stays honest.
      Push(thread);
      continue;
    }
    if (thread->now() > deadline) {
      // Past the deadline: park the thread (it stays live but stops running).
      Finish(thread);
      last = deadline;
      continue;
    }
    for (;;) {
      // Publish the lookahead window for batched slices: the thread stays the
      // unique earliest runnable thread while its clock is strictly below the
      // second-smallest key (now the heap front — this thread is popped) and
      // within the deadline. Access paths never add threads mid-slice, so the
      // bound cannot shrink while the slice runs; penalties can arrive, which
      // is why InRunQuantum() also checks pending_penalty_.
      run_horizon_ = heap_.empty() ? deadline_bound
                                   : std::min(heap_.front().time, deadline_bound);
      thread->dispatch_horizon_ = run_horizon_;
      const bool alive = thread->RunSlice();
      last = thread->now();
      if (!alive) {
        Finish(thread);
        break;
      }
      // While the thread stays strictly earliest and penalty-free, a heap
      // round trip would pop it right back; run the next slice directly.
      // (>= falls through to the heap so time ties resolve by the global
      // (clock, stream id) order — the push is a round trip, not a demotion,
      // when this thread's stream id still wins the tie.)
      if (thread->pending_penalty_ != 0 ||
          (!heap_.empty() && thread->now() >= heap_.front().time)) {
        Push(thread);
        break;
      }
      if (thread->now() > deadline) {
        Finish(thread);
        last = deadline;
        break;
      }
    }
  }
  if (observer_ != nullptr) {
    observer_->OnRunFinished(last);
  }
  return last;
}

bool Engine::TryParallelEpoch(SimTime deadline, SimTime& last) {
  if (live_pure_ < 2 || host_workers_ < 2 || gate_ == nullptr) {
    return false;
  }
  // A mid-epoch finish must not change the compute stretch other threads
  // observe: with demand <= cores the factor is pinned at 1.0 before and
  // after any finish (demand only shrinks), so it is order-independent.
  if (cpu_demand_ > static_cast<double>(cores_)) {
    return false;
  }

  // Horizon candidate: the epoch may run while every shardable thread stays
  // strictly earlier than (a) the deadline — deadline parking is owned by
  // the serial loop — (b) every non-shardable live thread's next wakeup
  // (clock plus pending penalty), and (c) the optional span cap.
  epoch_threads_.clear();
  SimTime frontier = std::numeric_limits<SimTime>::max();
  SimTime bound = deadline;
  for (SimThread* t : threads_) {
    if (t->finished_) {
      continue;
    }
    const SimTime eff = t->now_ + t->pending_penalty_;
    frontier = std::min(frontier, eff);
    if (t->foreground_ && t->parallel_pure_ && t->pending_penalty_ == 0) {
      epoch_threads_.push_back(t);
    } else {
      bound = std::min(bound, eff);
    }
  }
  if (frontier >= bound) {
    return false;
  }
  if (epoch_span_ > 0 && bound - frontier > epoch_span_) {
    bound = frontier + epoch_span_;
  }
  // Candidates at/past the bound sit the epoch out; their heap entries stay
  // untouched, preserving their tie-break order.
  epoch_threads_.erase(std::remove_if(epoch_threads_.begin(), epoch_threads_.end(),
                                      [bound](const SimThread* t) {
                                        return t->now_ >= bound;
                                      }),
                       epoch_threads_.end());
  if (epoch_threads_.size() < 2) {
    return false;
  }
  // Fixed candidate order for the gate and for shard assignment: stream id
  // (registration order), never host-execution order.
  std::sort(epoch_threads_.begin(), epoch_threads_.end(),
            [](const SimThread* a, const SimThread* b) {
              return a->stream_id_ < b->stream_id_;
            });

  const SimTime horizon = gate_->EpochHorizon(frontier, bound, epoch_threads_);
  if (horizon <= frontier) {
    epoch_stats_.rejected++;
    return false;
  }
  assert(horizon <= bound);
  if (horizon < bound) {
    epoch_threads_.erase(std::remove_if(epoch_threads_.begin(), epoch_threads_.end(),
                                        [horizon](const SimThread* t) {
                                          return t->now_ >= horizon;
                                        }),
                         epoch_threads_.end());
    if (epoch_threads_.size() < 2) {
      epoch_stats_.rejected++;
      return false;
    }
  }

  const int shards =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(host_workers_),
                                        epoch_threads_.size()));
  const int views = static_cast<int>(epoch_threads_.size());
  EnsurePool();
  const auto wall0 = std::chrono::steady_clock::now();
  // One view per epoch *thread*, not per worker: every thread must execute
  // against the epoch-start device state. A worker-shared view would leak
  // its first thread's channel reservations into its second thread's
  // accesses — queue delay the serial schedule never sees.
  gate_->BeginEpoch(views);
  epoch_alive_.assign(epoch_threads_.size(), 1);
  worker_finish_ns_.assign(static_cast<size_t>(host_workers_), 0);

  // Worker w owns epoch threads round-robin by candidate index. Each owned
  // thread re-dispatches until the shared horizon — exactly the serial
  // direct-run loop, so per-worker quantum caps (quantum_ops_) only split
  // the work into more slices and can never stall the barrier.
  auto job = [this, shards, horizon, wall0](int w) {
    if (w >= shards) {
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    WorkerStats& ws = worker_stats_[static_cast<size_t>(w)];
    for (size_t i = static_cast<size_t>(w); i < epoch_threads_.size();
         i += static_cast<size_t>(shards)) {
      SimThread* t = epoch_threads_[i];
      gate_->BindShard(static_cast<int>(i));
      ws.threads_run++;
      while (t->pending_penalty_ == 0 && t->now_ < horizon) {
        t->dispatch_horizon_ = horizon;
        const SimTime before = t->now_;
        const bool alive = t->RunSlice();
        ws.slices++;
        if (!alive) {
          epoch_alive_[i] = 0;
          break;
        }
        if (t->now_ == before) {
          break;  // no progress: hand the thread back to the serial loop
        }
      }
    }
    gate_->UnbindShard();
    const auto t1 = std::chrono::steady_clock::now();
    ws.busy_ns += ElapsedNs(t0, t1);
    worker_finish_ns_[static_cast<size_t>(w)] = ElapsedNs(wall0, t1);
  };

  if (pool_ != nullptr) {
    {
      std::lock_guard<std::mutex> lock(pool_->mu);
      pool_->job = job;
      pool_->remaining = static_cast<int>(pool_->threads.size());
      pool_->epoch++;
    }
    pool_->work_cv.notify_all();
    job(0);
    {
      std::unique_lock<std::mutex> lock(pool_->mu);
      pool_->done_cv.wait(lock, [this] { return pool_->remaining == 0; });
    }
  } else {
    for (int w = 0; w < shards; ++w) {
      job(w);
    }
  }
  const auto wall1 = std::chrono::steady_clock::now();
  const uint64_t epoch_wall_ns = ElapsedNs(wall0, wall1);
  for (int w = 0; w < shards; ++w) {
    worker_stats_[static_cast<size_t>(w)].stall_ns +=
        epoch_wall_ns - worker_finish_ns_[static_cast<size_t>(w)];
  }

  // ---- Barrier: merge shared state, retire finishers, rebuild the heap ----
  gate_->MergeEpoch(horizon, views);

  // Finished threads retire in (finish time, stream id) order — the serial
  // finish order: when a thread finishes in the serial schedule, the horizon
  // at that instant exceeds its finish time, so every other live thread
  // finishes strictly later (finish times are increasing along the serial
  // schedule; ties cannot occur across the one-runnable-thread window, and
  // stream id breaks any residual tie deterministically).
  epoch_order_.clear();
  for (size_t i = 0; i < epoch_threads_.size(); ++i) {
    if (epoch_alive_[i] == 0) {
      epoch_order_.push_back(epoch_threads_[i]);
    }
  }
  std::sort(epoch_order_.begin(), epoch_order_.end(),
            [](const SimThread* a, const SimThread* b) {
              return a->now_ != b->now_ ? a->now_ < b->now_
                                        : a->stream_id_ < b->stream_id_;
            });
  for (SimThread* t : epoch_order_) {
    Finish(t);
    last = t->now_;
  }

  // Heap rebuild. Entries of non-participants are untouched; survivors
  // re-enter keyed by (clock, stream id) — the engine's dispatch order is
  // that strict total order (HeapEntry), so rebuilding from merged clocks
  // alone reproduces the serial schedule exactly, clock ties included.
  for (SimThread* t : epoch_threads_) {
    t->in_epoch_ = true;
  }
  size_t kept = 0;
  for (size_t i = 0; i < heap_.size(); ++i) {
    if (!heap_[i].thread->in_epoch_) {
      heap_[kept++] = heap_[i];
    }
  }
  heap_.resize(kept);
  epoch_order_.clear();
  for (size_t i = 0; i < epoch_threads_.size(); ++i) {
    epoch_threads_[i]->in_epoch_ = false;
    if (epoch_alive_[i] != 0) {
      epoch_order_.push_back(epoch_threads_[i]);
    }
  }
  std::sort(epoch_order_.begin(), epoch_order_.end(),
            [](const SimThread* a, const SimThread* b) {
              return a->now_ != b->now_ ? a->now_ < b->now_
                                        : a->stream_id_ < b->stream_id_;
            });
  for (SimThread* t : epoch_order_) {
    heap_.push_back({t->now_, t->stream_id_, next_seq_++, t});
  }
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>());

  const auto wall2 = std::chrono::steady_clock::now();
  epoch_stats_.epochs++;
  epoch_stats_.epoch_threads += epoch_threads_.size();
  // Virtual coverage is the span the epoch actually advanced, not the granted
  // horizon — an unbounded run's final epoch is granted deadline+1.
  SimTime covered = frontier;
  for (const SimThread* t : epoch_threads_) {
    covered = std::max(covered, t->now_);
  }
  epoch_stats_.virtual_ns += static_cast<uint64_t>(std::min(covered, horizon) - frontier);
  epoch_stats_.barrier_ns += ElapsedNs(wall1, wall2);
  return true;
}

}  // namespace hemem
