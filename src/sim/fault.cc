#include "sim/fault.h"

#include <cctype>
#include <cstdlib>

#include "common/rng.h"

namespace hemem {

namespace {

struct KindSpec {
  const char* name;
  FaultKind kind;
  const char* target;  // implied rule target, or nullptr
};

// Rule names as written in a spec. The two degrade rules share a kind and
// differ only in the implied device target.
constexpr KindSpec kKindSpecs[] = {
    {"dma.fail", FaultKind::kDmaFail, nullptr},
    {"dma.timeout", FaultKind::kDmaTimeout, nullptr},
    {"dram.degrade", FaultKind::kDeviceDegrade, "dram"},
    {"nvm.degrade", FaultKind::kDeviceDegrade, "nvm"},
    {"pebs.drop", FaultKind::kPebsDrop, nullptr},
    {"pebs.burst", FaultKind::kPebsBurst, nullptr},
    {"migrate.abort", FaultKind::kMigrationAbort, nullptr},
    {"alloc.fail", FaultKind::kAllocFail, nullptr},
};

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseDouble(std::string_view value, double* out) {
  const std::string buf(value);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end != buf.c_str() && *end == '\0';
}

bool ParseU64(std::string_view value, uint64_t* out) {
  const std::string buf(value);
  char* end = nullptr;
  *out = std::strtoull(buf.c_str(), &end, 10);
  return end != buf.c_str() && *end == '\0';
}

// "250", "250ns", "3us", "1.5ms", "2s".
bool ParseTime(std::string_view value, SimTime* out) {
  double scale = 1.0;
  if (value.size() >= 2 && value.substr(value.size() - 2) == "ns") {
    value.remove_suffix(2);
  } else if (value.size() >= 2 && value.substr(value.size() - 2) == "us") {
    scale = static_cast<double>(kMicrosecond);
    value.remove_suffix(2);
  } else if (value.size() >= 2 && value.substr(value.size() - 2) == "ms") {
    scale = static_cast<double>(kMillisecond);
    value.remove_suffix(2);
  } else if (!value.empty() && value.back() == 's') {
    scale = static_cast<double>(kSecond);
    value.remove_suffix(1);
  }
  double raw = 0.0;
  if (!ParseDouble(value, &raw) || raw < 0.0) {
    return false;
  }
  *out = static_cast<SimTime>(raw * scale);
  return true;
}

bool ParseRule(std::string_view item, FaultRule* rule, std::string* error) {
  const size_t colon = item.find(':');
  const std::string_view name = Trim(colon == std::string_view::npos ? item : item.substr(0, colon));
  const KindSpec* spec = nullptr;
  for (const KindSpec& candidate : kKindSpecs) {
    if (name == candidate.name) {
      spec = &candidate;
      break;
    }
  }
  if (spec == nullptr) {
    *error = "unknown fault rule '" + std::string(name) + "'";
    return false;
  }
  rule->kind = spec->kind;
  if (spec->target != nullptr) {
    rule->target = spec->target;
  }
  if (rule->kind == FaultKind::kDmaTimeout) {
    rule->magnitude = 4.0;  // default stall: 4x the batch's nominal time
  }

  std::string_view rest = colon == std::string_view::npos ? std::string_view{} : item.substr(colon + 1);
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string_view kv = Trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    if (kv.empty()) {
      *error = std::string(name) + ": empty key=value entry";
      return false;
    }
    const size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      *error = std::string(name) + ": expected key=value, got '" + std::string(kv) + "'";
      return false;
    }
    const std::string_view key = Trim(kv.substr(0, eq));
    const std::string_view value = Trim(kv.substr(eq + 1));
    if (key == "p") {
      if (!ParseDouble(value, &rule->probability) || rule->probability <= 0.0 ||
          rule->probability > 1.0) {
        *error = std::string(name) + ": p must be in (0, 1], got '" + std::string(value) + "'";
        return false;
      }
    } else if (key == "start") {
      if (!ParseTime(value, &rule->start)) {
        *error = std::string(name) + ": bad start time '" + std::string(value) + "'";
        return false;
      }
    } else if (key == "end") {
      if (!ParseTime(value, &rule->end)) {
        *error = std::string(name) + ": bad end time '" + std::string(value) + "'";
        return false;
      }
    } else if (key == "max") {
      if (!ParseU64(value, &rule->max_count) || rule->max_count == 0) {
        *error = std::string(name) + ": max must be a positive count";
        return false;
      }
    } else if (key == "mult") {
      if (!ParseDouble(value, &rule->magnitude) || rule->magnitude <= 0.0) {
        *error = std::string(name) + ": mult must be > 0";
        return false;
      }
    } else if (key == "wear") {
      if (rule->kind != FaultKind::kDeviceDegrade) {
        *error = std::string(name) + ": wear only applies to degrade rules";
        return false;
      }
      if (!ParseDouble(value, &rule->wear) || rule->wear < 0.0) {
        *error = std::string(name) + ": wear must be >= 0";
        return false;
      }
    } else if (key == "len") {
      if (rule->kind != FaultKind::kPebsBurst) {
        *error = std::string(name) + ": len only applies to pebs.burst";
        return false;
      }
      if (!ParseU64(value, &rule->burst_len) || rule->burst_len == 0) {
        *error = std::string(name) + ": len must be a positive count";
        return false;
      }
    } else if (key == "tier") {
      if (rule->kind != FaultKind::kAllocFail) {
        *error = std::string(name) + ": tier only applies to alloc.fail";
        return false;
      }
      if (value != "dram" && value != "nvm") {
        *error = std::string(name) + ": tier must be dram or nvm";
        return false;
      }
      rule->target = std::string(value);
    } else {
      *error = std::string(name) + ": unknown key '" + std::string(key) + "'";
      return false;
    }
  }
  if (rule->end <= rule->start) {
    *error = std::string(name) + ": window end must be after start";
    return false;
  }
  return true;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDmaFail:
      return "dma_fail";
    case FaultKind::kDmaTimeout:
      return "dma_timeout";
    case FaultKind::kDeviceDegrade:
      return "device_degrade";
    case FaultKind::kPebsDrop:
      return "pebs_drop";
    case FaultKind::kPebsBurst:
      return "pebs_burst";
    case FaultKind::kMigrationAbort:
      return "migration_abort";
    case FaultKind::kAllocFail:
      return "alloc_fail";
  }
  return "unknown";
}

bool FaultPlan::Parse(const std::string& spec, FaultPlan* out, std::string* error) {
  *out = FaultPlan{};
  std::string_view rest = spec;
  while (!rest.empty()) {
    const size_t semi = rest.find(';');
    const std::string_view item = Trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{} : rest.substr(semi + 1);
    if (item.empty()) {
      continue;  // tolerate empty items ("a;;b", trailing ';')
    }
    if (item.substr(0, 5) == "seed=") {
      if (!ParseU64(Trim(item.substr(5)), &out->seed)) {
        *error = "bad seed '" + std::string(item.substr(5)) + "'";
        return false;
      }
      continue;
    }
    FaultRule rule;
    if (!ParseRule(item, &rule, error)) {
      return false;
    }
    out->rules.push_back(std::move(rule));
  }
  return true;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  rule_fired_.assign(plan_.rules.size(), 0);
  for (uint32_t i = 0; i < plan_.rules.size(); ++i) {
    const int kind = static_cast<int>(plan_.rules[i].kind);
    rules_by_kind_[kind].push_back(i);
    armed_mask_ |= 1u << kind;
  }
}

bool FaultInjector::QuiescentIn(SimTime t0, SimTime t1) const {
  if (armed_mask_ == 0) {
    return true;
  }
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule_fired_[i] >= rule.max_count) {
      continue;  // cap exhausted: this rule can never fire again
    }
    if (rule.end <= t0 || rule.start >= t1) {
      continue;  // active window disjoint from [t0, t1)
    }
    return false;
  }
  return true;
}

const FaultRule* FaultInjector::Fire(FaultKind kind, SimTime now, std::string_view target) {
  const int k = static_cast<int>(kind);
  const uint64_t ordinal = opportunities_[k]++;
  if (rules_by_kind_[k].empty()) {
    return nullptr;
  }
  // One uniform draw per opportunity, shared by this kind's rules: a pure
  // counter hash of (seed, kind, ordinal). Per-kind salt keeps kinds'
  // streams independent; Mix64 is a full-avalanche finalizer, so the draw is
  // uniform in [0, 1).
  const uint64_t h = Mix64(plan_.seed ^ (0x9e3779b97f4a7c15ull * static_cast<uint64_t>(k + 1)) ^
                           Mix64(ordinal));
  const double draw = static_cast<double>(h >> 11) * 0x1.0p-53;
  for (const uint32_t idx : rules_by_kind_[k]) {
    const FaultRule& rule = plan_.rules[idx];
    if (now < rule.start || now >= rule.end) {
      continue;
    }
    if (rule_fired_[idx] >= rule.max_count) {
      continue;
    }
    if (!rule.target.empty() && !target.empty() && rule.target != target) {
      continue;
    }
    if (draw >= rule.probability) {
      continue;
    }
    rule_fired_[idx]++;
    injected_[k]++;
    return &rule;
  }
  return nullptr;
}

DeviceDegrade FaultInjector::DegradeFor(std::string_view device) const {
  for (const FaultRule& rule : plan_.rules) {
    if (rule.kind != FaultKind::kDeviceDegrade) {
      continue;
    }
    if (!rule.target.empty() && rule.target != device) {
      continue;
    }
    DeviceDegrade degrade;
    degrade.active = true;
    degrade.multiplier = rule.magnitude;
    degrade.wear_factor = rule.wear;
    degrade.start = rule.start;
    degrade.end = rule.end;
    return degrade;
  }
  return DeviceDegrade{};
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (const uint64_t n : injected_) {
    total += n;
  }
  return total;
}

}  // namespace hemem
