// Single-tier baselines.
//
// PlainMemory places every allocation on one fixed device. Two uses:
//   * "DRAM" — the idealized upper bound the paper plots (all data in DRAM,
//     capacity ignored via overcommit);
//   * "NVM"  — everything in NVM, the paper's lower bound (and the timing
//     floor X-Mem converges to for its large objects).
// Pages are mapped eagerly at Mmap (the paper's baselines prefill), so no
// faults occur during measurement.

#ifndef HEMEM_TIER_PLAIN_H_
#define HEMEM_TIER_PLAIN_H_

#include "tier/machine.h"
#include "tier/manager.h"

namespace hemem {

class PlainMemory : public TieredMemoryManager {
 public:
  // `overcommit` lets the device pretend to be big enough (ideal baseline).
  PlainMemory(Machine& machine, Tier tier, bool overcommit);

  const char* name() const override { return tier_ == Tier::kDram ? "DRAM" : "NVM"; }

  uint64_t Mmap(uint64_t bytes, AllocOptions opts = {}) override;

 protected:
  // Pages come from (and return to) the private allocator regardless of the
  // nominal tier, so overcommit stays local to this baseline.
  FrameAllocator& FramePool(Tier) override { return frames_; }

 private:
  Tier tier_;
  FrameAllocator frames_;  // private allocator so overcommit stays local
};

}  // namespace hemem

#endif  // HEMEM_TIER_PLAIN_H_
