#include "tier/manager.h"

namespace hemem {

TieredMemoryManager::~TieredMemoryManager() {
  machine_.UnregisterManager(this);
  machine_.metrics().RemoveOwner(this);
}

void TieredMemoryManager::RegisterBaseMetrics() {
  machine_.metrics().AddProvider(this, [this](obs::MetricsEmitter& e) {
    const std::string p = std::string("manager.") + name() + ".";
    e.Emit(p + "missing_faults", stats_.missing_faults);
    e.Emit(p + "wp_faults", stats_.wp_faults);
    e.Emit(p + "wp_wait_ns", static_cast<uint64_t>(stats_.wp_wait_ns));
    e.Emit(p + "pages_promoted", stats_.pages_promoted);
    e.Emit(p + "pages_demoted", stats_.pages_demoted);
    e.Emit(p + "bytes_migrated", stats_.bytes_migrated);
    e.Emit(p + "small_allocs", stats_.small_allocs);
    e.Emit(p + "managed_allocs", stats_.managed_allocs);
  });
}

void TieredMemoryManager::AccessPage(SimThread& thread, uint64_t va, uint32_t size,
                                     AccessKind kind) {
  if (observation_ == nullptr) [[likely]] {
    AccessPageImpl<false>(thread, va, size, kind);
  } else {
    AccessPageImpl<true>(thread, va, size, kind);
  }
}

template <bool kObserve>
void TieredMemoryManager::AccessPageImpl(SimThread& thread, uint64_t va, uint32_t size,
                                         AccessKind kind) {
  // Latency attribution (kObserve only): every step below is bracketed by
  // thread-clock reads, so the components sum to the end-to-end time by
  // construction — LatencyRecorder::Record asserts it per access. Reading
  // the clock never advances it, which is what keeps the observed twin
  // bit-identical to the plain one (AccessGolden pins this down).
  [[maybe_unused]] obs::LatencyRecorder::Sample sample;
  [[maybe_unused]] SimTime mark = 0;
  if constexpr (kObserve) {
    mark = thread.now();
  }
  const SimTime entry_time = mark;

  const PageTable::Resolution r = ResolveForAccess(thread, va);
  assert(r.region != nullptr && "access to unmapped address");
  PageEntry& entry = *r.entry;
  if constexpr (kObserve) {
    sample.translation = thread.now() - mark;
    mark = thread.now();
  }

  if (!entry.present) [[unlikely]] {
    const SimTime fault_start = thread.now();
    OnMissingPage(thread, *r.region, r.index);
    assert(entry.present && "OnMissingPage must map the page");
    if (machine_.tracer().enabled()) {
      machine_.tracer().Duration(
          thread.stream_id(), "page_fault", "vm", fault_start, thread.now(),
          {{"tier", static_cast<double>(static_cast<int>(entry.tier))}});
    }
    if constexpr (kObserve) {
      sample.fault = thread.now() - mark;
      mark = thread.now();
    }
  }

  // Stores against a page whose migration is still in flight wait for the
  // copy (reads proceed; the paper measures such pauses at < 0.00013%).
  // Nimble's kernel gates the stall on the PTE write-protect flag — cleared
  // by the first store even after the copy finished — while HeMem and
  // Thermostat stall on in-flight copies directly.
  if (kind == AccessKind::kStore &&
      (wp_requires_flag_ ? entry.write_protected : entry.wp_until > thread.now()))
      [[unlikely]] {
    if (entry.wp_until > thread.now()) {
      const SimTime stall_start = thread.now();
      stats_.wp_faults++;
      if (wp_txn_abort_) {
        // Transactional mode (Nomad): the store conflicts with an in-flight
        // copy. It pays one fault round-trip, aborts the transaction, and
        // proceeds against the still-authoritative source mapping — no wait
        // for the copy, no wp_wait_ns.
        if (wp_stall_cost_ > 0) {
          thread.Advance(wp_stall_cost_);
        }
        OnWpConflict(thread, *r.region, r.index, entry);
        assert(entry.wp_until <= thread.now() &&
               "OnWpConflict must release the page");
        if (machine_.tracer().enabled()) {
          machine_.tracer().Duration(thread.stream_id(), "wp_conflict", "vm",
                                     stall_start, thread.now());
        }
      } else {
        stats_.wp_wait_ns += entry.wp_until - thread.now();
        if (wp_stall_cost_ > 0) {
          thread.Advance(wp_stall_cost_);
        }
        thread.AdvanceTo(entry.wp_until);
        if (machine_.tracer().enabled()) {
          machine_.tracer().Duration(thread.stream_id(), "wp_stall", "vm",
                                     stall_start, thread.now());
        }
      }
    }
    entry.write_protected = false;
    if constexpr (kObserve) {
      sample.wp_stall = thread.now() - mark;
      mark = thread.now();
    }
  }

  // Hardware A/D bits (used by the PT-scan variants).
  MarkPageFlag(entry.accessed);
  if (kind == AccessKind::kStore) {
    MarkPageFlag(entry.dirty);
  }

  if (tracked_hook_) [[unlikely]] {
    OnTrackedAccess(thread, *r.region, r.index, entry, kind);
    if constexpr (kObserve) {
      sample.other += thread.now() - mark;
      mark = thread.now();
    }
  }

  if (custom_charge_) [[unlikely]] {
    ChargeDevice(thread, *r.region, va, entry, size, kind);
    if constexpr (kObserve) {
      // Custom charges (MemoryMode's cache-probing model) have no
      // queue-vs-media split; the whole charge counts as media time.
      sample.media = thread.now() - mark;
      mark = thread.now();
    }
  } else if constexpr (kObserve) {
    MemoryDevice::AccessBreakdown split;
    const SimTime done = machine_.device(entry.tier).AccessAttributed(
        thread.now(), PhysicalAddress(entry, va), size, kind, thread.stream_id(),
        &split);
    thread.AdvanceTo(done);
    sample.queue = split.queue;
    sample.media = split.media;
    mark = thread.now();
  } else {
    const SimTime done = machine_.device(entry.tier).Access(
        thread.now(), PhysicalAddress(entry, va), size, kind, thread.stream_id());
    thread.AdvanceTo(done);
  }

  if (post_charge_hook_) [[unlikely]] {
    OnAccessCharged(thread, va, entry, kind);
    if constexpr (kObserve) {
      sample.other += thread.now() - mark;
      mark = thread.now();
    }
  }

  if constexpr (kObserve) {
    if (latency_slot_ < 0) {
      latency_slot_ = observation_->latency().RegisterManager(name());
    }
    const int tier = static_cast<int>(entry.tier);
    const SimTime now = thread.now();
    observation_->latency().Record(latency_slot_, tier, sample, now - entry_time);
    observation_->heat().Record(va, kind == AccessKind::kStore, tier, now);
    observation_->audit().OnPageAccess(va & ~page_mask_, now);
  }
}

void TieredMemoryManager::OnMissingPage(SimThread& thread, Region& region, uint64_t index) {
  KernelFirstTouch(thread, region, region.pages[index]);
}

void TieredMemoryManager::OnTrackedAccess(SimThread&, Region&, uint64_t, PageEntry&,
                                          AccessKind) {}

void TieredMemoryManager::OnWpConflict(SimThread&, Region&, uint64_t, PageEntry& entry) {
  entry.wp_until = 0;
}

void TieredMemoryManager::OnAccessCharged(SimThread&, uint64_t, PageEntry&, AccessKind) {}

void TieredMemoryManager::ChargeDevice(SimThread& thread, Region&, uint64_t va,
                                       PageEntry& entry, uint32_t size, AccessKind kind) {
  const SimTime done = machine_.device(entry.tier).Access(
      thread.now(), PhysicalAddress(entry, va), size, kind, thread.stream_id());
  thread.AdvanceTo(done);
}

void TieredMemoryManager::OnQuantumBegin(SimThread&) {}

void TieredMemoryManager::OnQuantumEnd(SimThread&) {}

void TieredMemoryManager::QuantumSlowAccess(SimThread& thread, const AccessOp& op,
                                            MemoryDevice::BatchRun& dram_run,
                                            MemoryDevice::BatchRun& nvm_run) {
  // Flush deferred device state first: the skeleton (faults, WP handling,
  // custom charges) must observe fully-settled devices. The runs re-open
  // lazily if the quantum continues.
  dram_run.Close();
  nvm_run.Close();
  Access(thread, op.va, op.size, op.kind);
}

void TieredMemoryManager::OnUnmapRegion(Region&) {}

FrameAllocator& TieredMemoryManager::FramePool(Tier tier) { return machine_.frames(tier); }

Tier TieredMemoryManager::KernelFirstTouch(SimThread& thread, Region& region,
                                           PageEntry& entry) {
  // Kernel anonymous fault: local (DRAM) allocation first, NVM when full.
  Tier tier = Tier::kDram;
  std::optional<uint32_t> frame = machine_.frames(tier).Alloc();
  if (!frame.has_value()) {
    tier = Tier::kNvm;
    frame = machine_.frames(tier).Alloc();
  }
  assert(frame.has_value() && "machine out of physical memory");
  entry.frame = *frame;
  entry.tier = tier;
  machine_.page_table().SetPresent(entry);
  thread.Advance(fault_costs_.kernel_fault);
  // Zero-fill the fresh page.
  thread.AdvanceTo(
      machine_.device(tier).BulkTransfer(thread.now(), region.page_bytes, AccessKind::kStore));
  stats_.missing_faults++;
  return tier;
}

void TieredMemoryManager::Munmap(uint64_t va) {
  Region* region = machine_.page_table().Find(va);
  if (region == nullptr) {
    return;
  }
  OnUnmapRegion(*region);
  DetachRegionMeta(*region);
  ReleaseRegionFrames(*region);
  machine_.page_table().UnmapRegion(region->base);
}

void TieredMemoryManager::ReleaseRegionFrames(Region& region) {
  for (PageEntry& entry : region.pages) {
    if (entry.present) {
      FramePool(entry.tier).Free(entry.frame);
      machine_.page_table().ClearPresent(entry);
      entry.frame = kInvalidFrame;
    }
  }
}

}  // namespace hemem
