#include "tier/manager.h"

namespace hemem {

void TieredMemoryManager::Munmap(uint64_t va) {
  Region* region = machine_.page_table().Find(va);
  if (region == nullptr) {
    return;
  }
  ReleaseRegionFrames(*region);
  machine_.page_table().UnmapRegion(region->base);
}

void TieredMemoryManager::ReleaseRegionFrames(Region& region) {
  for (PageEntry& entry : region.pages) {
    if (entry.present) {
      machine_.frames(entry.tier).Free(entry.frame);
      entry.present = false;
      entry.frame = kInvalidFrame;
    }
  }
}

}  // namespace hemem
