#include "tier/machine.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "tier/parallel.h"

namespace hemem {

namespace internal {
thread_local ShardDeviceBinding tls_shard_devices;
}  // namespace internal

MachineConfig MachineConfig::Scaled(double s) {
  MachineConfig config;
  config.dram_bytes = static_cast<uint64_t>(static_cast<double>(GiB(192)) / s);
  config.nvm_bytes = static_cast<uint64_t>(static_cast<double>(GiB(768)) / s);
  config.label_scale = s;
  return config;
}

FrameAllocator::FrameAllocator(uint64_t capacity_bytes, uint64_t frame_bytes,
                               uint64_t shuffle_seed, bool allow_overcommit,
                               uint64_t shuffle_chunk_frames)
    : total_frames_(capacity_bytes / frame_bytes),
      frame_bytes_(frame_bytes),
      allow_overcommit_(allow_overcommit) {
  if (shuffle_seed != 0 && shuffle_chunk_frames > 0) {
    Rng rng(shuffle_seed);
    const uint64_t chunks = CeilDiv(total_frames_, shuffle_chunk_frames);
    const std::vector<uint64_t> perm = RandomPermutation(chunks, rng);
    shuffled_.reserve(total_frames_);
    for (const uint64_t chunk : perm) {
      const uint64_t begin = chunk * shuffle_chunk_frames;
      const uint64_t end = std::min(begin + shuffle_chunk_frames, total_frames_);
      for (uint64_t f = begin; f < end; ++f) {
        shuffled_.push_back(static_cast<uint32_t>(f));
      }
    }
  }
}

std::optional<uint32_t> FrameAllocator::Alloc() {
  if (!free_list_.empty()) {
    const uint32_t frame = free_list_.back();
    free_list_.pop_back();
    used_++;
    return frame;
  }
  if (next_fresh_ < total_frames_) {
    const uint64_t idx = next_fresh_++;
    used_++;
    return shuffled_.empty() ? static_cast<uint32_t>(idx) : shuffled_[idx];
  }
  if (allow_overcommit_) {
    // Idealized device: pretend capacity is unbounded (frames beyond the
    // device range still time like in-range ones).
    used_++;
    return static_cast<uint32_t>(next_fresh_++);
  }
  return std::nullopt;
}

void FrameAllocator::Free(uint32_t frame) {
  assert(used_ > 0);
  used_--;
  free_list_.push_back(frame);
}

Machine::Machine(MachineConfig config)
    : config_(config),
      engine_(config.cores),
      dram_(config.dram_override.value_or(DeviceParams::Dram(config.dram_bytes))),
      nvm_(config.nvm_override.value_or(DeviceParams::OptaneNvm(config.nvm_bytes))),
      dram_frames_(config.dram_bytes, config.page_bytes, /*shuffle_seed=*/0,
                   /*allow_overcommit=*/false),
      nvm_frames_(config.nvm_bytes, config.page_bytes, config.frame_shuffle_seed,
                  /*allow_overcommit=*/false),
      dma_(config.dma),
      tlb_(config.tlb),
      pebs_(config.pebs),
      faults_(config.fault_plan) {
  if (config_.swap_bytes > 0) {
    swap_.emplace(config_.swap_override.value_or(
        BlockDeviceParams::NvmeSsd(config_.swap_bytes)));
  }

  // Arm only the components whose fault kinds the plan carries (mirrors
  // EnableTracing): an empty or irrelevant plan leaves a component's hot
  // path exactly as built, which is what keeps the golden fingerprints
  // bit-identical with no --fault-spec.
  if (faults_.armed(FaultKind::kDmaFail) || faults_.armed(FaultKind::kDmaTimeout)) {
    dma_.SetFaultInjector(&faults_);
  }
  if (faults_.armed(FaultKind::kPebsDrop) || faults_.armed(FaultKind::kPebsBurst)) {
    pebs_.SetFaultInjector(&faults_);
  }
  if (faults_.armed(FaultKind::kDeviceDegrade)) {
    const DeviceDegrade dram_degrade = faults_.DegradeFor("dram");
    if (dram_degrade.active) {
      dram_.SetDegrade(dram_degrade);
    }
    const DeviceDegrade nvm_degrade = faults_.DegradeFor("nvm");
    if (nvm_degrade.active) {
      nvm_.SetDegrade(nvm_degrade);
    }
  }

  metrics_.AddProvider(this, [this](obs::MetricsEmitter& e) {
    const auto device = [&e](const char* prefix, const MemoryDevice& d) {
      const std::string p = prefix;
      const DeviceStats& s = d.stats();
      e.Emit(p + "loads", s.loads);
      e.Emit(p + "stores", s.stores);
      e.Emit(p + "bytes_requested_read", s.bytes_requested_read);
      e.Emit(p + "bytes_requested_written", s.bytes_requested_written);
      e.Emit(p + "media_bytes_read", s.media_bytes_read);
      e.Emit(p + "media_bytes_written", s.media_bytes_written);
      e.Emit(p + "sequential_hits", s.sequential_hits);
      e.Emit(p + "queue_delay_total_ns", s.queue_delay_total_ns);
      e.Emit(p + "queue_delay_max_ns", s.queue_delay_max_ns);
      e.Emit(p + "degraded_accesses", s.degraded_accesses);
    };
    device("device.dram.", dram_);
    device("device.nvm.", nvm_);

    e.Emit("dma.batches", dma_.stats().batches);
    e.Emit("dma.copies", dma_.stats().copies);
    e.Emit("dma.bytes_copied", dma_.stats().bytes_copied);
    e.Emit("dma.failed_attempts", dma_.stats().failed_attempts);
    e.Emit("dma.timeouts", dma_.stats().timeouts);
    e.Emit("dma.retries", dma_.stats().retries);
    e.Emit("dma.exhausted_batches", dma_.stats().exhausted_batches);
    e.Emit("dma.fallback_copies", dma_.stats().fallback_copies);

    e.Emit("pebs.accesses_counted", pebs_.stats().accesses_counted);
    e.Emit("pebs.samples_written", pebs_.stats().samples_written);
    e.Emit("pebs.samples_dropped", pebs_.stats().samples_dropped);
    e.Emit("pebs.samples_drained", pebs_.stats().samples_drained);
    e.Emit("pebs.injected_drops", pebs_.stats().injected_drops);
    e.Emit("pebs.drop_rate", pebs_.stats().DropRate());
    e.Emit("pebs.pending", static_cast<uint64_t>(pebs_.pending()));

    e.Emit("tlb.shootdowns", tlb_.stats().shootdowns);
    e.Emit("tlb.victim_interrupts", tlb_.stats().victim_interrupts);

    e.Emit("frames.dram.used", dram_frames_.used_frames());
    e.Emit("frames.dram.total", dram_frames_.total_frames());
    e.Emit("frames.nvm.used", nvm_frames_.used_frames());
    e.Emit("frames.nvm.total", nvm_frames_.total_frames());

    if (swap_) {
      const BlockDeviceStats& s = swap_->stats();
      e.Emit("swap_device.reads", s.reads);
      e.Emit("swap_device.writes", s.writes);
      e.Emit("swap_device.bytes_read", s.bytes_read);
      e.Emit("swap_device.bytes_written", s.bytes_written);
    }

    if (faults_.any_armed()) {
      e.Emit("faults.injected.total", faults_.total_injected());
      for (int k = 0; k < kNumFaultKinds; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        if (!faults_.armed(kind)) {
          continue;
        }
        const std::string name = FaultKindName(kind);
        e.Emit("faults.injected." + name, faults_.injected(kind));
        e.Emit("faults.opportunities." + name, faults_.opportunities(kind));
      }
    }
  });
}

Machine::~Machine() = default;  // here so ~ParallelCoordinator is complete

void Machine::UnregisterManager(TieredMemoryManager* manager) {
  managers_.erase(std::remove(managers_.begin(), managers_.end(), manager),
                  managers_.end());
}

void Machine::EnableHostWorkers(int workers) {
  if (workers < 2) {
    engine_.set_epoch_gate(nullptr);
    engine_.set_host_workers(1);
    return;
  }
  if (parallel_ == nullptr) {
    parallel_ = std::make_unique<ParallelCoordinator>(*this);
    // Host-side execution metrics (wall-clock, nondeterministic across runs
    // by nature) exist only on sharded machines, so default machines' metric
    // trees — and every golden fingerprint — are unchanged.
    metrics_.AddProvider(parallel_.get(), [this](obs::MetricsEmitter& e) {
      const Engine::EpochStats& es = engine_.epoch_stats();
      e.Emit("engine.epoch.count", es.epochs);
      e.Emit("engine.epoch.rejected", es.rejected);
      e.Emit("engine.epoch.threads", es.epoch_threads);
      e.Emit("engine.epoch.virtual_ns", es.virtual_ns);
      e.Emit("engine.epoch.barrier_ns", es.barrier_ns);
      const std::vector<Engine::WorkerStats>& ws = engine_.worker_stats();
      for (size_t w = 0; w < ws.size(); ++w) {
        const std::string p = "engine.worker.#" + std::to_string(w) + ".";
        e.Emit(p + "busy_ns", ws[w].busy_ns);
        e.Emit(p + "stall_ns", ws[w].stall_ns);
        e.Emit(p + "slices", ws[w].slices);
        e.Emit(p + "threads_run", ws[w].threads_run);
      }
    });
  }
  engine_.set_epoch_gate(parallel_.get());
  engine_.set_host_workers(workers);
}

void Machine::EnableShadow() {
  if (!shadow_) {
    shadow_.emplace(config_.page_bytes);
  }
}

void Machine::EnableAccessObservation(const obs::ObservationOptions& options) {
  if (observation_ == nullptr) {
    observation_ = std::make_unique<obs::AccessObservation>(metrics_, options);
  }
}

void Machine::EnableTracing() {
  if (tracer_.enabled()) {
    return;
  }
  tracer_.set_enabled(true);
  tracer_.set_process_name("hemem-sim");
  engine_trace_.emplace(tracer_);
  engine_.set_observer(&*engine_trace_);
  dram_.SetTracer(&tracer_, tracer_.RegisterTrack("device.dram"));
  nvm_.SetTracer(&tracer_, tracer_.RegisterTrack("device.nvm"));
  dma_.SetTracer(&tracer_, tracer_.RegisterTrack("dma"));
  tlb_.SetTracer(&tracer_, tracer_.RegisterTrack("tlb"));
  pebs_.SetTracer(&tracer_, tracer_.RegisterTrack("pebs"));
}

}  // namespace hemem
