#include "tier/nimble.h"

#include <algorithm>
#include <cassert>

namespace hemem {

// The single kernel daemon: scan, clear, migrate — strictly in sequence.
class Nimble::KernelThread : public PeriodicThread {
 public:
  KernelThread(Nimble& owner, SimTime period)
      : PeriodicThread("nimble-kernel", period, /*cpu_share=*/1.0), owner_(owner) {}

  SimTime Tick() override { return owner_.KernelPass(now()); }

 private:
  Nimble& owner_;
};

Nimble::Nimble(Machine& machine, NimbleParams params)
    : TieredMemoryManager(machine),
      params_(params),
      scaled_exchange_budget_(std::max<uint64_t>(
          static_cast<uint64_t>(static_cast<double>(params.exchange_budget_per_pass) /
                                machine.config().label_scale),
          8 * machine.page_bytes())),
      copier_(params.migration_threads) {
  // The kernel clears the PTE write-protect flag on the first store, even
  // after the exchange copy has completed; stalls carry no extra fault cost.
  wp_requires_flag_ = true;
  // Skeleton + flag-gated WP stalls only; the batched fast path defers any
  // store against a write-protected page to the full skeleton.
  batch_quantum_safe_ = true;
}

Nimble::~Nimble() = default;

void Nimble::Start() {
  // Management cadence scales with the platform: capacities (and therefore
  // scan costs and workload phase lengths) shrink by label_scale, so the
  // scan period must shrink alike to preserve the paper's scan-to-migration
  // duty cycle.
  const SimTime period = std::max<SimTime>(
      static_cast<SimTime>(static_cast<double>(params_.scan_period) /
                           machine_.config().label_scale),
      50 * kMicrosecond);
  kernel_thread_ = std::make_unique<KernelThread>(*this, period);
  machine_.engine().AddThread(kernel_thread_.get());
}

uint64_t Nimble::Mmap(uint64_t bytes, AllocOptions opts) {
  PageTable& pt = machine_.page_table();
  const uint64_t page = machine_.page_bytes();
  const uint64_t base = pt.ReserveVa(bytes, page);
  Region* region = pt.MapRegion(base, bytes, page, /*managed=*/true, opts.label);
  pages_.reserve(pages_.size() + region->num_pages());
  for (uint64_t i = 0; i < region->num_pages(); ++i) {
    pages_.push_back(PageInfo{region, i, 0});
  }
  auto meta = std::make_unique<SpanMeta>();
  meta->first_id = pages_.size() - region->num_pages();
  AttachRegionMeta(*region, std::move(meta));
  stats_.managed_allocs++;
  return base;
}

void Nimble::OnMissingPage(SimThread& thread, Region& region, uint64_t index) {
  const Tier tier = KernelFirstTouch(thread, region, region.pages[index]);
  if (tier == Tier::kDram) {
    dram_fifo_.push_back(RegionMetaAs<SpanMeta>(region)->first_id + index);
  }
}

void Nimble::OnUnmapRegion(Region& region) {
  // Disconnect the flat page array from the dying region so the kernel pass
  // (and stale dram_fifo_ ids) never chase a freed Region.
  const SpanMeta* meta = RegionMetaAs<SpanMeta>(region);
  if (meta == nullptr) {
    return;
  }
  for (uint64_t i = 0; i < region.num_pages(); ++i) {
    pages_[meta->first_id + i].region = nullptr;
  }
}

SimTime Nimble::MovePage(SimTime t, PageInfo& info, Tier dst_tier, uint32_t frame) {
  PageEntry& entry = EntryOf(info);
  const uint64_t page = machine_.page_bytes();
  entry.write_protected = true;
  const SimTime done = copier_.Copy(t, machine_.device(entry.tier),
                                    machine_.device(dst_tier), page);
  entry.wp_until = done;
  machine_.frames(entry.tier).Free(entry.frame);
  entry.tier = dst_tier;
  entry.frame = frame;
  if (dst_tier == Tier::kDram) {
    stats_.pages_promoted++;
  } else {
    stats_.pages_demoted++;
  }
  stats_.bytes_migrated += page;
  return done;
}

SimTime Nimble::KernelPass(SimTime start) {
  const uint64_t page = machine_.page_bytes();
  const uint64_t managed_bytes = machine_.page_table().total_mapped_bytes();
  SimTime t = start;

  // Phase 1: sequential PTE scan at base-page granularity (kernel LRU).
  t += machine_.config().radix.ScanTime(managed_bytes, KiB(4));

  std::vector<size_t> promote;
  uint64_t cleared = 0;
  for (size_t id = 0; id < pages_.size(); ++id) {
    PageInfo& info = pages_[id];
    if (info.region == nullptr) {
      continue;
    }
    PageEntry& entry = EntryOf(info);
    if (!entry.present) {
      continue;
    }
    if (entry.accessed) {
      cleared++;
      info.idle_scans = 0;
      if (entry.tier == Tier::kNvm) {
        promote.push_back(id);
      }
      entry.accessed = false;
      entry.dirty = false;
    } else if (info.idle_scans < 255) {
      info.idle_scans++;
    }
  }

  // Phase 2: clearing A/D bits requires flushing stale TLB entries.
  const uint64_t base_pages_cleared = cleared * (page / KiB(4));
  t += machine_.config().radix.ClearCost(base_pages_cleared, machine_.engine().cores() - 1);
  machine_.tlb().ShootdownBatch(machine_.engine(), nullptr, CeilDiv(base_pages_cleared, 512));

  // Phase 3: exchange-based migration on this same thread. Candidates are
  // taken from a rotating cursor so every accessed NVM page is eventually
  // promoted (scan order would starve high-address pages once the per-pass
  // budget is smaller than the candidate list).
  uint64_t budget = scaled_exchange_budget_;
  uint64_t moved_since_shootdown = 0;
  // Copies are timed along their own cursor from the start of the pass:
  // device reservations issued at the post-scan cursor (milliseconds ahead
  // of the application frontier) would otherwise block the channels for the
  // whole gap. The kernel thread still pays scan + copy time in sequence.
  SimTime copy_cursor = start;
  const auto cursor_pos =
      std::lower_bound(promote.begin(), promote.end(), promote_cursor_) - promote.begin();
  for (size_t i = 0; i < promote.size(); ++i) {
    const size_t id = promote[(static_cast<size_t>(cursor_pos) + i) % promote.size()];
    if (budget < page) {
      break;
    }
    promote_cursor_ = id + 1;
    PageInfo& info = pages_[id];
    if (info.region == nullptr || !EntryOf(info).present || EntryOf(info).tier != Tier::kNvm) {
      continue;
    }
    // Find a DRAM frame: free memory first, otherwise demote the oldest
    // DRAM page (second chance: prefer idle pages, but under pressure even
    // recently used ones go — Nimble's exchange does not check again).
    std::optional<uint32_t> dram_frame = machine_.frames(Tier::kDram).Alloc();
    if (!dram_frame.has_value()) {
      // Demote the oldest DRAM page that has been idle long enough; rotate
      // recently used pages to the back (second chance). If nothing is
      // idle, promotion stops — exchanging active pages would only thrash.
      size_t victim_id = SIZE_MAX;
      size_t inspected = 0;
      const size_t fifo_size = dram_fifo_.size();
      while (!dram_fifo_.empty() && inspected < fifo_size) {
        const size_t cand = dram_fifo_.front();
        dram_fifo_.pop_front();
        inspected++;
        PageInfo& ci = pages_[cand];
        if (ci.region == nullptr || !EntryOf(ci).present ||
            EntryOf(ci).tier != Tier::kDram) {
          continue;  // stale entry
        }
        if (ci.idle_scans >= params_.demote_after_scans) {
          victim_id = cand;
          break;
        }
        dram_fifo_.push_back(cand);
      }
      if (victim_id == SIZE_MAX) {
        break;  // nothing idle in DRAM
      }
      PageInfo& victim = pages_[victim_id];
      const std::optional<uint32_t> nvm_frame = machine_.frames(Tier::kNvm).Alloc();
      if (!nvm_frame.has_value()) {
        break;  // NVM exhausted; nothing to exchange with
      }
      copy_cursor = MovePage(copy_cursor, victim, Tier::kNvm, *nvm_frame);
      budget -= page;
      dram_frame = machine_.frames(Tier::kDram).Alloc();
      if (!dram_frame.has_value()) {
        break;
      }
    }
    copy_cursor = MovePage(copy_cursor, info, Tier::kDram, *dram_frame);
    dram_fifo_.push_back(id);
    budget -= page;
    if (++moved_since_shootdown >= 64) {
      machine_.tlb().ShootdownBatch(machine_.engine(), nullptr, 1);
      t += machine_.tlb().params().initiator_cost;
      moved_since_shootdown = 0;
    }
  }
  if (moved_since_shootdown > 0) {
    machine_.tlb().ShootdownBatch(machine_.engine(), nullptr, 1);
    t += machine_.tlb().params().initiator_cost;
  }
  // The sequential kernel thread finishes when both the scan/clear work and
  // the (pipelined-in-device-time) copies are done.
  t = std::max(t, copy_cursor);
  return t - start;
}

}  // namespace hemem
