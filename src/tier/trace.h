// Access-trace capture and replay.
//
// TraceRecorder is a transparent decorator over any TieredMemoryManager: it
// forwards every call while appending (time, thread, va, size, kind) records
// and the allocation events needed to rebuild the address space. A captured
// trace can then be replayed against a *different* manager or machine
// configuration with TraceReplayer — the workhorse for "what would this
// workload have done under X" experiments without re-running the
// application, and for regression-testing policy changes against frozen
// workloads.
//
// Traces are in-memory (vectors of packed records) with save/load to a
// simple binary format.

#ifndef HEMEM_TIER_TRACE_H_
#define HEMEM_TIER_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tier/manager.h"

namespace hemem {

struct TraceAccess {
  SimTime time = 0;
  uint64_t va = 0;
  uint32_t size = 0;
  uint16_t thread = 0;
  AccessKind kind = AccessKind::kLoad;
};

struct TraceAlloc {
  uint64_t va = 0;       // base returned by the recorded Mmap
  uint64_t bytes = 0;
  std::string label;
};

struct Trace {
  std::vector<TraceAlloc> allocs;
  std::vector<TraceAccess> accesses;

  // Binary round trip (little-endian, versioned header).
  bool SaveTo(const std::string& path) const;
  static bool LoadFrom(const std::string& path, Trace* out);
};

class TraceRecorder : public TieredMemoryManager {
 public:
  explicit TraceRecorder(TieredMemoryManager& inner);

  const char* name() const override { return inner_.name(); }
  uint64_t Mmap(uint64_t bytes, AllocOptions opts = {}) override;
  void Munmap(uint64_t va) override;
  void Start() override { inner_.Start(); }

  const Trace& trace() const { return trace_; }
  Trace TakeTrace() { return std::move(trace_); }

 protected:
  // Overrides the skeleton itself, so this decorator must never opt into the
  // batched quantum fast path (batch_quantum_safe_ stays false): a batched
  // access would bypass this override and go unrecorded.
  void AccessPage(SimThread& thread, uint64_t va, uint32_t size, AccessKind kind) override;

 private:
  TieredMemoryManager& inner_;
  Trace trace_;
};

// Replays a trace against a manager as a single logical thread, preserving
// the recorded inter-access gaps (think-time-accurate) or back-to-back.
class TraceReplayer {
 public:
  struct Result {
    SimTime elapsed = 0;
    uint64_t accesses = 0;
  };

  TraceReplayer(TieredMemoryManager& manager, const Trace& trace,
                bool preserve_gaps = false);
  ~TraceReplayer();

  // Performs allocations (remapping recorded va ranges onto fresh ones),
  // registers the replay thread, runs the engine, and reports timing.
  Result Run();

 private:
  class Thread;

  // Recorded va -> replayed va translation.
  uint64_t Translate(uint64_t va) const;

  TieredMemoryManager& manager_;
  const Trace& trace_;
  bool preserve_gaps_;
  // Parallel to trace_.allocs: base addresses in the replay address space.
  std::vector<uint64_t> replay_bases_;
  std::unique_ptr<Thread> thread_;
};

}  // namespace hemem

#endif  // HEMEM_TIER_TRACE_H_
