// X-Mem emulation (Dulloor et al., EuroSys '16), as the paper emulates it.
//
// X-Mem is a language/runtime-based data-tiering system: a profiling step
// decides per data structure whether it lives in DRAM or NVM, and placement
// is static afterwards — no migration, no online tracking. The paper
// emulates it by mapping large, randomly-accessed heap structures from the
// NVM DAX file and keeping small structures in DRAM; this class reproduces
// exactly that placement rule:
//
//   * allocations below the large-object threshold go to DRAM (falling back
//     to NVM only when DRAM is exhausted),
//   * allocations at or above the threshold go to NVM,
//   * AllocOptions::pin_tier overrides the rule (the "profiling step" that
//     real X-Mem would run is expressed as an explicit hint).

#ifndef HEMEM_TIER_XMEM_H_
#define HEMEM_TIER_XMEM_H_

#include "tier/machine.h"
#include "tier/manager.h"

namespace hemem {

class XMem : public TieredMemoryManager {
 public:
  explicit XMem(Machine& machine, uint64_t large_threshold = GiB(1));

  const char* name() const override { return "X-Mem"; }

  uint64_t Mmap(uint64_t bytes, AllocOptions opts = {}) override;

 private:
  uint64_t large_threshold_;
};

}  // namespace hemem

#endif  // HEMEM_TIER_XMEM_H_
