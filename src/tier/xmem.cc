#include "tier/xmem.h"

#include <cassert>

namespace hemem {

XMem::XMem(Machine& machine, uint64_t large_threshold)
    : TieredMemoryManager(machine),
      large_threshold_(static_cast<uint64_t>(static_cast<double>(large_threshold) /
                                             machine.config().label_scale)) {
  // Placement happens at Mmap time; accesses are pure base skeleton.
  batch_quantum_safe_ = true;
  // Static placement, eagerly mapped: sharded epochs may run the access
  // path. Placement may land pages on either device.
  parallel_quantum_safe_ = true;
  parallel_tier_mask_ =
      (1u << static_cast<int>(Tier::kDram)) | (1u << static_cast<int>(Tier::kNvm));
}

uint64_t XMem::Mmap(uint64_t bytes, AllocOptions opts) {
  PageTable& pt = machine_.page_table();
  const uint64_t page = machine_.page_bytes();
  const uint64_t base = pt.ReserveVa(bytes, page);
  Region* region = pt.MapRegion(base, bytes, page, /*managed=*/true, opts.label);

  Tier want = bytes >= large_threshold_ ? Tier::kNvm : Tier::kDram;
  if (opts.pin_tier.has_value()) {
    want = *opts.pin_tier;
  }
  if (want == Tier::kNvm) {
    stats_.managed_allocs++;
  } else {
    stats_.small_allocs++;
  }

  for (PageEntry& entry : region->pages) {
    Tier tier = want;
    std::optional<uint32_t> frame = machine_.frames(tier).Alloc();
    if (!frame.has_value()) {
      tier = tier == Tier::kDram ? Tier::kNvm : Tier::kDram;
      frame = machine_.frames(tier).Alloc();
    }
    assert(frame.has_value() && "machine out of physical memory");
    entry.frame = *frame;
    entry.tier = tier;
    pt.SetPresent(entry);
  }
  return base;
}

}  // namespace hemem
