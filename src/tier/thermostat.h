// Thermostat-style baseline (Agarwal & Wenisch, ASPLOS '17).
//
// Thermostat is the related-work point the paper contrasts against for
// page-table *sampling* (vs HeMem's CPU-event sampling): each interval it
// samples a small random subset of huge pages, "poisons" their base-page
// mappings so every access faults and can be counted exactly, then
// extrapolates per-page access rates, demotes pages whose estimated rate is
// below the cold threshold, and promotes sampled-hot slow-memory pages.
//
// The model keeps the essential trade-offs: sampled pages pay a per-access
// poison-fault cost during their sampling interval; unsampled pages are
// invisible until sampled, so classification latency scales with
// (pages / sample size) x interval; migration shares the CPU-copy machinery.

#ifndef HEMEM_TIER_THERMOSTAT_H_
#define HEMEM_TIER_THERMOSTAT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "mem/dma.h"
#include "policy/policy.h"
#include "tier/machine.h"
#include "tier/manager.h"

namespace hemem {

struct ThermostatParams {
  SimTime sample_interval = 100 * kMillisecond;  // paper-scale; scaled internally
  // Fraction of managed pages poisoned per interval (Thermostat uses ~0.5%
  // of huge pages; we default a little higher for the scaled page counts).
  double sample_fraction = 0.05;
  // Estimated accesses/interval below which a page is considered cold.
  uint64_t cold_access_threshold = 16;
  SimTime poison_fault_cost = 300;  // per access to a poisoned page
  uint64_t migrate_budget_per_pass = MiB(128);  // paper-scale bytes
  int copy_threads = 4;
  // Hot/cold verdicts route through policy::MakePolicy; "default" reproduces
  // the threshold test above exactly (reads = interval accesses).
  std::string policy = "default";
  std::string policy_spec;
};

struct ThermostatStats {
  uint64_t intervals = 0;
  uint64_t pages_sampled = 0;
  uint64_t poison_faults = 0;
};

class Thermostat : public TieredMemoryManager {
 public:
  Thermostat(Machine& machine, ThermostatParams params = ThermostatParams{});
  ~Thermostat() override;

  const char* name() const override { return "Thermostat"; }

  uint64_t Mmap(uint64_t bytes, AllocOptions opts = {}) override;
  void Start() override;

  const ThermostatStats& tstats() const { return tstats_; }

 protected:
  void OnTrackedAccess(SimThread& thread, Region& region, uint64_t index, PageEntry& entry,
                       AccessKind kind) override;
  void OnUnmapRegion(Region& region) override;

 private:
  class SamplerThread;

  struct PageInfo {
    Region* region = nullptr;
    uint64_t index = 0;
    bool sampled = false;
    uint32_t interval_accesses = 0;
  };

  // Region slot: position of the region's pages in the flat pages_ array.
  struct SpanMeta : RegionMetaBase {
    size_t first_id = 0;
  };

  // End-of-interval classification + migration + re-sampling; returns work.
  SimTime SamplePass(SimTime start);

  PageEntry& EntryOf(PageInfo& info) { return info.region->pages[info.index]; }

  ThermostatParams params_;
  uint64_t scaled_budget_;
  std::unique_ptr<policy::MigrationPolicy> policy_;
  CpuCopier copier_;
  Rng rng_;
  std::vector<PageInfo> pages_;
  std::vector<size_t> sampled_ids_;
  std::unique_ptr<SamplerThread> thread_;
  ThermostatStats tstats_;
};

}  // namespace hemem

#endif  // HEMEM_TIER_THERMOSTAT_H_
