// The simulated evaluation platform.
//
// A Machine bundles what one socket of the paper's testbed provides: a DRAM
// device, an Optane NVM device, an I/OAT DMA engine, PEBS, a TLB, a page
// table, frame allocators for both devices, and the virtual-time engine with
// a core count. Tiering managers and applications are constructed against a
// Machine; benches construct one Machine per experimental run.
//
// MachineConfig::Scaled(s) produces a platform whose capacities are the
// paper's 192 GB DRAM / 768 GB NVM socket divided by s, preserving every
// capacity *ratio* (watermarks, thresholds, hot-set fractions) so that
// crossover shapes survive scaling; label_scale lets benches print
// paper-equivalent sizes.

#ifndef HEMEM_TIER_MACHINE_H_
#define HEMEM_TIER_MACHINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "mem/block_device.h"
#include "mem/device.h"
#include "mem/dma.h"
#include "obs/access_obs.h"
#include "obs/engine_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pebs/pebs.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "vm/page_table.h"
#include "vm/shadow.h"
#include "vm/tlb.h"

namespace hemem {

class ParallelCoordinator;
class TieredMemoryManager;

namespace internal {
// Per-host-thread device redirection for sharded epochs: while an epoch
// worker is bound to a shard, Machine::device() resolves to the shard's
// private device views instead of the shared devices. Keyed by machine so
// nested/unrelated machines on one host thread cannot cross wires.
struct ShardDeviceBinding {
  const void* machine = nullptr;
  MemoryDevice* dram = nullptr;
  MemoryDevice* nvm = nullptr;
  // Shard-local PEBS sampling state (null when no manager samples); see
  // PebsBuffer::ShardState.
  PebsBuffer::ShardState* pebs = nullptr;
};
extern thread_local ShardDeviceBinding tls_shard_devices;
}  // namespace internal

struct MachineConfig {
  uint64_t dram_bytes = GiB(192);
  uint64_t nvm_bytes = GiB(768);
  int cores = 24;
  uint64_t page_bytes = MiB(2);  // tracking and migration granularity

  std::optional<DeviceParams> dram_override;
  std::optional<DeviceParams> nvm_override;
  // Optional swap tier (paper Section 3.4): 0 disables the block device.
  uint64_t swap_bytes = 0;
  std::optional<BlockDeviceParams> swap_override;
  DmaParams dma;
  PebsParams pebs;
  TlbParams tlb;
  RadixCostModel radix;

  // Deterministic fault schedule (see sim/fault.h). The default empty plan
  // arms nothing and is provably inert — the golden fingerprint tests pin
  // that down bit-for-bit.
  FaultPlan fault_plan;

  // Scatter physical frame allocation over the device (true for the NVM pool
  // under memory mode, where fragmentation causes cache conflicts).
  uint64_t frame_shuffle_seed = 0;  // 0 = sequential allocation

  double label_scale = 1.0;  // multiply sizes by this when printing

  // The paper's testbed divided by `s`.
  static MachineConfig Scaled(double s);
};

// Allocates fixed-size frames from a device. Frames are handed out either in
// address order or in a seeded shuffled order (physical fragmentation).
// Overcommit (for the idealized all-DRAM baseline) grows past capacity.
class FrameAllocator {
 public:
  // `shuffle_chunk_frames` sets the granularity of scattering: frames are
  // handed out sequentially within chunks of that many frames, with the
  // chunks themselves in seeded-shuffled order (physical memory is
  // fragmented at a coarse granularity, not per page).
  FrameAllocator(uint64_t capacity_bytes, uint64_t frame_bytes, uint64_t shuffle_seed,
                 bool allow_overcommit, uint64_t shuffle_chunk_frames = 1);

  std::optional<uint32_t> Alloc();
  void Free(uint32_t frame);

  uint64_t total_frames() const { return total_frames_; }
  uint64_t used_frames() const { return used_; }
  uint64_t free_frames() const {
    return allow_overcommit_ ? ~0ull : total_frames_ - used_;
  }
  uint64_t free_bytes() const { return (total_frames_ - used_) * frame_bytes_; }
  uint64_t frame_bytes() const { return frame_bytes_; }

 private:
  uint64_t total_frames_;
  uint64_t frame_bytes_;
  bool allow_overcommit_;
  uint64_t used_ = 0;
  uint64_t next_fresh_ = 0;  // frames never yet handed out
  std::vector<uint32_t> free_list_;
  std::vector<uint32_t> shuffled_;  // non-empty when shuffled allocation is on
};

class Machine {
 public:
  explicit Machine(MachineConfig config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  Engine& engine() { return engine_; }
  // Resolves a tier to its device. During a sharded epoch, each worker sees
  // its own shard's device views through the thread-local binding; outside
  // epochs (the binding check is one predictable compare) this is the shared
  // device, as always.
  MemoryDevice& device(Tier tier) {
    const internal::ShardDeviceBinding& b = internal::tls_shard_devices;
    if (b.machine == this) [[unlikely]] {
      return tier == Tier::kDram ? *b.dram : *b.nvm;
    }
    return tier == Tier::kDram ? dram_ : nvm_;
  }
  MemoryDevice& dram() { return device(Tier::kDram); }
  MemoryDevice& nvm() { return device(Tier::kNvm); }
  FrameAllocator& frames(Tier tier) {
    return tier == Tier::kDram ? dram_frames_ : nvm_frames_;
  }
  DmaEngine& dma() { return dma_; }
  PageTable& page_table() { return page_table_; }
  Tlb& tlb() { return tlb_; }
  PebsBuffer& pebs() { return pebs_; }
  // The calling worker's shard-local PEBS state during an epoch, else null.
  // Sampling managers route CountAccess through this so epoch shards count
  // privately and merge at the barrier.
  PebsBuffer::ShardState* pebs_shard() const {
    const internal::ShardDeviceBinding& b = internal::tls_shard_devices;
    return b.machine == this ? b.pebs : nullptr;
  }
  // The swap block device, or nullptr when the machine has none.
  BlockDevice* swap() { return swap_ ? &*swap_ : nullptr; }
  const MachineConfig& config() const { return config_; }

  uint64_t page_bytes() const { return config_.page_bytes; }

  // Observability. The registry always exists (providers for the machine's
  // own stats structs are registered at construction; managers add theirs
  // when built against this machine) and snapshotting it is free until
  // someone asks. The tracer is off until EnableTracing(), which attaches it
  // to the devices, DMA engine, TLB, PEBS buffer, and the engine's lifecycle
  // hook. Call it before constructing managers so their trace tracks exist.
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::EventTracer& tracer() { return tracer_; }
  void EnableTracing();

  // Access observation (DESIGN.md "Latency attribution & audit"): latency
  // component histograms, the address-space heat timeline, and the
  // migration-causality audit. Off by default; call before constructing
  // managers so they can register their latency slots. When off, the tier
  // layer pays exactly one null-pointer compare per access skeleton entry
  // and the batched quantum fast path is untouched — the access goldens pin
  // both directions down bit-for-bit.
  void EnableAccessObservation(const obs::ObservationOptions& options = {});
  obs::AccessObservation* observation() { return observation_.get(); }

  // Fault injection. The injector always exists (inert for an empty plan);
  // at construction it is attached only to the components whose fault kinds
  // the plan actually arms, so a fault-free machine runs the exact pre-fault
  // code paths.
  FaultInjector& faults() { return faults_; }

  // Data-integrity shadow (tests): off by default; call before the workload
  // issues writes. Migration paths move shadow contents at commit time.
  void EnableShadow();
  ShadowMemory* shadow() { return shadow_ ? &*shadow_ : nullptr; }

  // Sharded epochs (DESIGN.md "Parallel engine & epoch barriers"): lets the
  // engine execute eligible thread sets on `workers` host threads between
  // deterministic barriers. Results are bit-identical at every worker count;
  // workers < 2 restores the serial engine. Also registers the per-worker /
  // per-epoch metrics providers (engine.worker.#n.*, engine.epoch.*) — only
  // then, so default machines' metric trees are unchanged.
  void EnableHostWorkers(int workers);
  int host_workers() const { return engine_.host_workers(); }

  // Manager registry: every TieredMemoryManager built against this machine
  // registers itself so the epoch gate can check that all of them opted into
  // parallel execution.
  void RegisterManager(TieredMemoryManager* manager) { managers_.push_back(manager); }
  void UnregisterManager(TieredMemoryManager* manager);
  const std::vector<TieredMemoryManager*>& managers() const { return managers_; }

 private:
  MachineConfig config_;
  obs::MetricsRegistry metrics_;
  obs::EventTracer tracer_;
  Engine engine_;
  MemoryDevice dram_;
  MemoryDevice nvm_;
  FrameAllocator dram_frames_;
  FrameAllocator nvm_frames_;
  DmaEngine dma_;
  PageTable page_table_;
  Tlb tlb_;
  PebsBuffer pebs_;
  std::optional<BlockDevice> swap_;
  FaultInjector faults_;
  std::optional<ShadowMemory> shadow_;
  std::optional<obs::TraceEngineObserver> engine_trace_;
  std::unique_ptr<obs::AccessObservation> observation_;
  std::vector<TieredMemoryManager*> managers_;
  std::unique_ptr<ParallelCoordinator> parallel_;  // built by EnableHostWorkers
};

}  // namespace hemem

#endif  // HEMEM_TIER_MACHINE_H_
