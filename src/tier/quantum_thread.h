// Foreground thread driving a generator-based workload through the batched
// access entry point.
//
// The generator fills one AccessOp per call and returns false when the
// workload is done; the manager executes as many ops per slice as the
// engine's run quantum allows (exactly one per slice when batching is off —
// the historical ScriptThread shape). Because Gen is a template parameter,
// the generator inlines into the quantum loop: benches get the full batched
// throughput with no per-op indirect call, and tests can cross-check batched
// against unbatched execution with the same generator code.

#ifndef HEMEM_TIER_QUANTUM_THREAD_H_
#define HEMEM_TIER_QUANTUM_THREAD_H_

#include <string>
#include <utility>

#include "tier/manager.h"

namespace hemem {

template <typename Gen>
class QuantumAccessThread : public SimThread {
 public:
  QuantumAccessThread(TieredMemoryManager& manager, Gen gen, SimTime compute_ns,
                      bool charge_compute = false, std::string name = "quantum")
      : SimThread(std::move(name)),
        manager_(manager),
        gen_(std::move(gen)),
        compute_ns_(compute_ns),
        charge_compute_(charge_compute) {}

  bool RunSlice() override {
    return manager_.RunAccessQuantum(*this, gen_, compute_ns_, charge_compute_);
  }

 private:
  TieredMemoryManager& manager_;
  Gen gen_;
  SimTime compute_ns_;
  bool charge_compute_;
};

}  // namespace hemem

#endif  // HEMEM_TIER_QUANTUM_THREAD_H_
