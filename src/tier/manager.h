// Tiered-memory-manager interface and the shared per-access skeleton.
//
// Every tiering system in the repository — HeMem itself, hardware memory
// mode, Nimble, X-Mem, and the plain single-tier baselines — implements this
// interface. Applications allocate through Mmap (HeMem's interception of
// mmap/malloc) and perform every data access through Access, which resolves
// placement, charges device time onto the calling logical thread, and feeds
// whatever tracking machinery the manager uses (PEBS counters, page-table
// A/D bits, cache tags).
//
// The per-access work is a template method: AccessPage's base implementation
// performs translation (via a per-thread translation cache), missing-page
// dispatch, write-protect stall accounting, A/D-bit updates, and the device
// charge once, in a fixed order. Managers customize behaviour only through
// the narrow hooks below (OnMissingPage, OnTrackedAccess, OnAccessCharged,
// ChargeDevice, OnUnmapRegion) and must never re-implement the skeleton —
// the hooks cannot bypass fault or WP accounting, which is what keeps every
// manager's stats comparable and the golden equivalence tests meaningful.

#ifndef HEMEM_TIER_MANAGER_H_
#define HEMEM_TIER_MANAGER_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "mem/device.h"
#include "sim/engine.h"
#include "tier/machine.h"
#include "vm/page_table.h"

namespace hemem {

struct AllocOptions {
  std::string label = "anon";
  // Forces placement (FlexKVS's priority instance pins its pairs to DRAM).
  // Pinned regions are mapped eagerly and excluded from tracking/migration.
  std::optional<Tier> pin_tier;
  // Softer hint: prefer this tier at fault time but keep the region fully
  // tracked and migratable (the Figure 8 "Opt" manual-placement bound).
  std::optional<Tier> prefer_tier;
};

struct ManagerStats {
  uint64_t missing_faults = 0;   // first-touch page faults handled
  uint64_t wp_faults = 0;        // stores that hit a page under migration
  SimTime wp_wait_ns = 0;        // total time stores stalled on migrations
  uint64_t pages_promoted = 0;   // NVM -> DRAM
  uint64_t pages_demoted = 0;    // DRAM -> NVM
  uint64_t bytes_migrated = 0;
  uint64_t small_allocs = 0;     // left to the kernel (stay in DRAM)
  uint64_t managed_allocs = 0;
};

// Cost constants shared by library-level managers (HeMem, and the baselines
// where analogous kernel paths exist).
struct FaultCosts {
  // userfaultfd round trip: fault -> kernel -> handler thread -> wake.
  SimTime userfaultfd_roundtrip = 8 * kMicrosecond;
  // kernel anonymous-page fault (no userspace round trip).
  SimTime kernel_fault = 2 * kMicrosecond;
};

class TieredMemoryManager {
 public:
  explicit TieredMemoryManager(Machine& machine)
      : machine_(machine), page_mask_(machine.page_bytes() - 1) {
    uint64_t bytes = machine.page_bytes();
    while (bytes > 1) {
      bytes >>= 1;
      page_shift_++;
    }
    RegisterBaseMetrics();
  }
  // Unregisters this manager's metrics providers from the machine.
  virtual ~TieredMemoryManager();

  TieredMemoryManager(const TieredMemoryManager&) = delete;
  TieredMemoryManager& operator=(const TieredMemoryManager&) = delete;

  virtual const char* name() const = 0;

  // Allocates a virtual range of `bytes`; returns its base address.
  virtual uint64_t Mmap(uint64_t bytes, AllocOptions opts = {}) = 0;

  // Releases the region at `va` (must be a Mmap return value). Invokes
  // OnUnmapRegion, destroys region-attached metadata exactly once, frees the
  // region's frames, then unmaps.
  virtual void Munmap(uint64_t va);

  // Performs one data access on behalf of `thread`, advancing its clock.
  // Accesses may span page boundaries; they are split here so managers only
  // ever see page-contained accesses.
  void Access(SimThread& thread, uint64_t va, uint32_t size, AccessKind kind) {
    if ((va & page_mask_) + size <= page_mask_ + 1) [[likely]] {
      AccessPage(thread, va, size, kind);
      return;
    }
    while (size > 0) {
      const uint64_t room = page_mask_ + 1 - (va & page_mask_);
      const auto chunk = static_cast<uint32_t>(std::min<uint64_t>(size, room));
      AccessPage(thread, va, chunk, kind);
      va += chunk;
      size -= chunk;
    }
  }

  // Registers background threads (policy/scan/PEBS actors) with the engine.
  // Managers without background work keep the default no-op.
  virtual void Start() {}

  const ManagerStats& stats() const { return stats_; }
  Machine& machine() { return machine_; }

  // Convenience: RMW (load + dependent store) at one address.
  void Update(SimThread& thread, uint64_t va, uint32_t size) {
    Access(thread, va, size, AccessKind::kLoad);
    Access(thread, va, size, AccessKind::kStore);
  }

 protected:
  // Single-page access (va+size never crosses a page). The base
  // implementation is the shared skeleton; managers customize it through the
  // hooks below. Only decorators (TraceRecorder) override the method itself.
  virtual void AccessPage(SimThread& thread, uint64_t va, uint32_t size, AccessKind kind);

  // ---- Hooks into the skeleton (all optional) ------------------------------

  // A not-present page was touched. Must leave the entry present (or the
  // skeleton asserts). Default: kernel anonymous first-touch, DRAM first.
  virtual void OnMissingPage(SimThread& thread, Region& region, uint64_t index);

  // Called after fault/WP/A-D handling and before the device charge, for
  // tracking costs that gate the access itself (Thermostat's poison faults).
  // Only invoked when `tracked_hook_` is set.
  virtual void OnTrackedAccess(SimThread& thread, Region& region, uint64_t index,
                               PageEntry& entry, AccessKind kind);

  // Called after the device charge, for asynchronous observation of the
  // access (HeMem's PEBS counting — the sample carries the post-access
  // timestamp). Only invoked when `post_charge_hook_` is set.
  virtual void OnAccessCharged(SimThread& thread, uint64_t va, PageEntry& entry,
                               AccessKind kind);

  // Replaces the default device charge (frame-translated access on the
  // entry's tier). Only invoked when `custom_charge_` is set; MemoryMode uses
  // it for its cache-line probing model.
  virtual void ChargeDevice(SimThread& thread, Region& region, uint64_t va, PageEntry& entry,
                            uint32_t size, AccessKind kind);

  // Region teardown: detach any tracking state referring into the region
  // (FIFO lists, flat page arrays). Runs before metadata destruction and
  // frame release; the Region is still fully valid.
  virtual void OnUnmapRegion(Region& region);

  // Frame pool pages of `tier` are freed to at unmap. Default: the machine's
  // shared allocators; managers with private pools (PlainMemory, MemoryMode)
  // override.
  virtual FrameAllocator& FramePool(Tier tier);

  // ---- Region-attached metadata -------------------------------------------

  // Managers hang per-region metadata off Region::manager_data through this
  // base so ownership is singular: Attach stores it (keyed by region) and
  // publishes the raw pointer in the slot; Munmap (or manager destruction)
  // destroys it exactly once. `owner` makes the slot safe when several
  // manager instances share one PageTable (HememDaemon): a foreign
  // instance's metadata reads as absent, exactly like the old side-map miss.
  struct RegionMetaBase {
    virtual ~RegionMetaBase() = default;
    TieredMemoryManager* owner = nullptr;
  };

  void AttachRegionMeta(Region& region, std::unique_ptr<RegionMetaBase> meta) {
    meta->owner = this;
    region.manager_data = meta.get();
    region_meta_[&region] = std::move(meta);
  }

  void DetachRegionMeta(Region& region) {
    auto* base = static_cast<RegionMetaBase*>(region.manager_data);
    if (base != nullptr && base->owner == this) {
      region.manager_data = nullptr;
      region_meta_.erase(&region);
    }
  }

  // This manager's metadata for `region`, or nullptr when the region carries
  // none (unmanaged) or it belongs to another manager instance.
  template <typename T>
  T* RegionMetaAs(const Region& region) const {
    auto* base = static_cast<RegionMetaBase*>(region.manager_data);
    return (base != nullptr && base->owner == this) ? static_cast<T*>(base) : nullptr;
  }

  // ---- Shared helpers ------------------------------------------------------

  // Translation with the per-thread software TLB: repeat accesses to the
  // same region skip even the page table's own last-region check. Region
  // pointers are stable until unmap, so the cached slot revalidates against
  // the table's unmap epoch.
  PageTable::Resolution ResolveForAccess(SimThread& thread, uint64_t va) {
    PageTable& pt = machine_.page_table();
    SimThread::TranslationCache& tc = thread.translation_cache();
    Region* region;
    if (tc.epoch == pt.unmap_epoch() && va - tc.base < tc.bytes) [[likely]] {
      region = static_cast<Region*>(tc.region);
    } else {
      region = pt.Find(va);
      if (region == nullptr) {
        return {};
      }
      tc.base = region->base;
      tc.bytes = region->bytes;
      tc.region = region;
      tc.epoch = pt.unmap_epoch();
    }
    const uint64_t index = region->PageIndexOf(va);
    return {region, &region->pages[index], index};
  }

  // Kernel anonymous first-touch fault: DRAM-first frame, kernel-fault cost,
  // zero-fill, missing_faults accounting. Returns the tier the page landed
  // on so callers can do tier-specific bookkeeping.
  Tier KernelFirstTouch(SimThread& thread, Region& region, PageEntry& entry);

  // Frees every present page of a region back to FramePool(tier).
  void ReleaseRegionFrames(Region& region);

  uint64_t PhysicalAddress(const PageEntry& entry, uint64_t va) const {
    return (static_cast<uint64_t>(entry.frame) << page_shift_) | (va & page_mask_);
  }

  Machine& machine_;
  ManagerStats stats_;
  FaultCosts fault_costs_;

  // Skeleton configuration, set once at construction by subclasses.
  SimTime wp_stall_cost_ = 0;      // charged per WP stall (HeMem: userfaultfd)
  bool wp_requires_flag_ = false;  // stall gated on write_protected (Nimble)
  bool tracked_hook_ = false;      // invoke OnTrackedAccess pre-charge
  bool post_charge_hook_ = false;  // invoke OnAccessCharged post-charge
  bool custom_charge_ = false;     // invoke ChargeDevice instead of default

 private:
  // Publishes ManagerStats under "manager.<name()>."; name() is virtual, so
  // the provider resolves it lazily at snapshot time, never during
  // construction.
  void RegisterBaseMetrics();

  uint64_t page_mask_;
  uint32_t page_shift_ = 0;
  std::unordered_map<Region*, std::unique_ptr<RegionMetaBase>> region_meta_;
};

}  // namespace hemem

#endif  // HEMEM_TIER_MANAGER_H_
