// Tiered-memory-manager interface.
//
// Every tiering system in the repository — HeMem itself, hardware memory
// mode, Nimble, X-Mem, and the plain single-tier baselines — implements this
// interface. Applications allocate through Mmap (HeMem's interception of
// mmap/malloc) and perform every data access through Access, which resolves
// placement, charges device time onto the calling logical thread, and feeds
// whatever tracking machinery the manager uses (PEBS counters, page-table
// A/D bits, cache tags).

#ifndef HEMEM_TIER_MANAGER_H_
#define HEMEM_TIER_MANAGER_H_

#include <cstdint>
#include <optional>
#include <string>

#include "mem/device.h"
#include "sim/engine.h"
#include "tier/machine.h"
#include "vm/page_table.h"

namespace hemem {

struct AllocOptions {
  std::string label = "anon";
  // Forces placement (FlexKVS's priority instance pins its pairs to DRAM).
  // Pinned regions are mapped eagerly and excluded from tracking/migration.
  std::optional<Tier> pin_tier;
  // Softer hint: prefer this tier at fault time but keep the region fully
  // tracked and migratable (the Figure 8 "Opt" manual-placement bound).
  std::optional<Tier> prefer_tier;
};

struct ManagerStats {
  uint64_t missing_faults = 0;   // first-touch page faults handled
  uint64_t wp_faults = 0;        // stores that hit a page under migration
  SimTime wp_wait_ns = 0;        // total time stores stalled on migrations
  uint64_t pages_promoted = 0;   // NVM -> DRAM
  uint64_t pages_demoted = 0;    // DRAM -> NVM
  uint64_t bytes_migrated = 0;
  uint64_t small_allocs = 0;     // left to the kernel (stay in DRAM)
  uint64_t managed_allocs = 0;
};

class TieredMemoryManager {
 public:
  explicit TieredMemoryManager(Machine& machine) : machine_(machine) {}
  virtual ~TieredMemoryManager() = default;

  TieredMemoryManager(const TieredMemoryManager&) = delete;
  TieredMemoryManager& operator=(const TieredMemoryManager&) = delete;

  virtual const char* name() const = 0;

  // Allocates a virtual range of `bytes`; returns its base address.
  virtual uint64_t Mmap(uint64_t bytes, AllocOptions opts = {}) = 0;

  // Releases the region at `va` (must be a Mmap return value).
  virtual void Munmap(uint64_t va);

  // Performs one data access on behalf of `thread`, advancing its clock.
  // Accesses may span page boundaries; they are split here so managers only
  // ever see page-contained accesses.
  void Access(SimThread& thread, uint64_t va, uint32_t size, AccessKind kind) {
    const uint64_t page = machine_.page_bytes();
    while (size > 0) {
      const uint64_t room = page - va % page;
      const auto chunk = static_cast<uint32_t>(std::min<uint64_t>(size, room));
      AccessPage(thread, va, chunk, kind);
      va += chunk;
      size -= chunk;
    }
  }

  // Registers background threads (policy/scan/PEBS actors) with the engine.
  // Managers without background work keep the default no-op.
  virtual void Start() {}

  const ManagerStats& stats() const { return stats_; }
  Machine& machine() { return machine_; }

  // Convenience: RMW (load + dependent store) at one address.
  void Update(SimThread& thread, uint64_t va, uint32_t size) {
    Access(thread, va, size, AccessKind::kLoad);
    Access(thread, va, size, AccessKind::kStore);
  }

 protected:
  // Single-page access implementation (va+size never crosses a page).
  virtual void AccessPage(SimThread& thread, uint64_t va, uint32_t size, AccessKind kind) = 0;

  // Shared helper: frees every present page of a region back to its tier.
  void ReleaseRegionFrames(Region& region);

  Machine& machine_;
  ManagerStats stats_;
};

// Cost constants shared by library-level managers (HeMem, and the baselines
// where analogous kernel paths exist).
struct FaultCosts {
  // userfaultfd round trip: fault -> kernel -> handler thread -> wake.
  SimTime userfaultfd_roundtrip = 8 * kMicrosecond;
  // kernel anonymous-page fault (no userspace round trip).
  SimTime kernel_fault = 2 * kMicrosecond;
};

}  // namespace hemem

#endif  // HEMEM_TIER_MANAGER_H_
