// Tiered-memory-manager interface and the shared per-access skeleton.
//
// Every tiering system in the repository — HeMem itself, hardware memory
// mode, Nimble, X-Mem, and the plain single-tier baselines — implements this
// interface. Applications allocate through Mmap (HeMem's interception of
// mmap/malloc) and perform every data access through Access, which resolves
// placement, charges device time onto the calling logical thread, and feeds
// whatever tracking machinery the manager uses (PEBS counters, page-table
// A/D bits, cache tags).
//
// The per-access work is a template method: AccessPage's base implementation
// performs translation (via a per-thread translation cache), missing-page
// dispatch, write-protect stall accounting, A/D-bit updates, and the device
// charge once, in a fixed order. Managers customize behaviour only through
// the narrow hooks below (OnMissingPage, OnTrackedAccess, OnAccessCharged,
// ChargeDevice, OnUnmapRegion) and must never re-implement the skeleton —
// the hooks cannot bypass fault or WP accounting, which is what keeps every
// manager's stats comparable and the golden equivalence tests meaningful.

#ifndef HEMEM_TIER_MANAGER_H_
#define HEMEM_TIER_MANAGER_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>

#include "mem/device.h"
#include "sim/engine.h"
#include "tier/machine.h"
#include "vm/page_table.h"

namespace hemem {

struct AllocOptions {
  std::string label = "anon";
  // Forces placement (FlexKVS's priority instance pins its pairs to DRAM).
  // Pinned regions are mapped eagerly and excluded from tracking/migration.
  std::optional<Tier> pin_tier;
  // Softer hint: prefer this tier at fault time but keep the region fully
  // tracked and migratable (the Figure 8 "Opt" manual-placement bound).
  std::optional<Tier> prefer_tier;
};

struct ManagerStats {
  uint64_t missing_faults = 0;   // first-touch page faults handled
  uint64_t wp_faults = 0;        // stores that hit a page under migration
  SimTime wp_wait_ns = 0;        // total time stores stalled on migrations
  uint64_t pages_promoted = 0;   // NVM -> DRAM
  uint64_t pages_demoted = 0;    // DRAM -> NVM
  uint64_t bytes_migrated = 0;
  uint64_t small_allocs = 0;     // left to the kernel (stay in DRAM)
  uint64_t managed_allocs = 0;
};

// Cost constants shared by library-level managers (HeMem, and the baselines
// where analogous kernel paths exist).
struct FaultCosts {
  // userfaultfd round trip: fault -> kernel -> handler thread -> wake.
  SimTime userfaultfd_roundtrip = 8 * kMicrosecond;
  // kernel anonymous-page fault (no userspace round trip).
  SimTime kernel_fault = 2 * kMicrosecond;
};

class TieredMemoryManager {
 public:
  explicit TieredMemoryManager(Machine& machine)
      : machine_(machine),
        observation_(machine.observation()),
        page_mask_(machine.page_bytes() - 1) {
    uint64_t bytes = machine.page_bytes();
    while (bytes > 1) {
      bytes >>= 1;
      page_shift_++;
    }
    RegisterBaseMetrics();
    machine.RegisterManager(this);
  }
  // Unregisters this manager's metrics providers from the machine.
  virtual ~TieredMemoryManager();

  TieredMemoryManager(const TieredMemoryManager&) = delete;
  TieredMemoryManager& operator=(const TieredMemoryManager&) = delete;

  virtual const char* name() const = 0;

  // Allocates a virtual range of `bytes`; returns its base address.
  virtual uint64_t Mmap(uint64_t bytes, AllocOptions opts = {}) = 0;

  // Releases the region at `va` (must be a Mmap return value). Invokes
  // OnUnmapRegion, destroys region-attached metadata exactly once, frees the
  // region's frames, then unmaps.
  virtual void Munmap(uint64_t va);

  // Performs one data access on behalf of `thread`, advancing its clock.
  // Accesses may span page boundaries; they are split here so managers only
  // ever see page-contained accesses.
  void Access(SimThread& thread, uint64_t va, uint32_t size, AccessKind kind) {
    // Op start time, before any fault/WP/device work (and shared by every
    // chunk of a page-crossing op — chunks execute without preemption).
    // Sampling hooks read it as the deterministic epoch-merge key.
    thread.set_access_op_start(thread.now());
    if ((va & page_mask_) + size <= page_mask_ + 1) [[likely]] {
      AccessPage(thread, va, size, kind);
      return;
    }
    while (size > 0) {
      const uint64_t room = page_mask_ + 1 - (va & page_mask_);
      const auto chunk = static_cast<uint32_t>(std::min<uint64_t>(size, room));
      AccessPage(thread, va, chunk, kind);
      va += chunk;
      size -= chunk;
    }
  }

  // Registers background threads (policy/scan/PEBS actors) with the engine.
  // Managers without background work keep the default no-op.
  virtual void Start() {}

  const ManagerStats& stats() const { return stats_; }
  Machine& machine() { return machine_; }

  // Convenience: RMW (load + dependent store) at one address.
  void Update(SimThread& thread, uint64_t va, uint32_t size) {
    Access(thread, va, size, AccessKind::kLoad);
    Access(thread, va, size, AccessKind::kStore);
  }

  // One operation of a generator-driven access sequence (RunAccessQuantum).
  struct AccessOp {
    uint64_t va = 0;
    uint32_t size = 0;
    AccessKind kind = AccessKind::kLoad;
  };

  // Batched slice execution (DESIGN.md "Engine fast path & batching").
  //
  // Runs up to Engine::quantum_ops() accesses of a generator-driven workload
  // inside the calling thread's current slice, charging `compute_ns` after
  // each access (via ChargeCompute when `charge_compute`, else Advance).
  // `gen(op)` fills the next operation and returns false when the workload is
  // done; it is called once per executed access and may read `thread.now()`,
  // which reflects the previous access's completion. It must not advance the
  // thread clock — per-op compute time belongs to `compute_ns` (the quantum
  // loop carries the clock in a register between gen calls) — and must not
  // map or unmap regions (the loop validates the translation cache once per
  // quantum). Returns gen's last verdict (false = workload finished).
  //
  // Execution is bit-identical to issuing the same operations one per slice:
  // the loop continues only while SimThread::InRunQuantum() holds — the exact
  // condition under which the engine would re-dispatch this thread
  // immediately — and every access either takes the inline fast path (whose
  // arithmetic mirrors AccessPage step for step) or falls back to the full
  // skeleton after flushing all deferred device state. When batching is off,
  // the manager opted out (batch_quantum_safe_), access observation is
  // enabled on the machine, or the thread runs outside an engine, exactly
  // one access executes per call through the historical Access() path.
  template <typename Gen>
  bool RunAccessQuantum(SimThread& thread, Gen&& gen, SimTime compute_ns,
                        bool charge_compute = false);

  // Sharded-epoch eligibility (set by subclasses; read by the epoch gate).
  bool parallel_quantum_safe() const { return parallel_quantum_safe_; }
  uint32_t parallel_tier_mask() const { return parallel_tier_mask_; }
  // True when the manager samples accesses into the machine's PEBS buffer
  // and supports doing so inside epochs via shard-local views (HeMem in PEBS
  // mode). The epoch gate then additionally requires the shard threads'
  // stream ids to be distinct modulo the PEBS context count, so no two
  // shards alias one counter row.
  bool epoch_sampling() const { return epoch_sampling_; }

  // Dynamic epoch eligibility, queried by the epoch gate per proposed epoch.
  // `frontier` is the epoch's start time. The static parallel_quantum_safe_
  // flag is the default answer; managers whose access path is pure only in
  // certain states (HeMem between migrations) override this to grant epochs
  // exactly when the path is momentarily side-effect-free. Must be
  // conservative: returning true promises that every access the manager
  // serves inside the epoch mutates nothing beyond per-page A/D flags and
  // sharded device views.
  virtual bool EpochEligible(SimTime frontier) {
    (void)frontier;
    return parallel_quantum_safe_;
  }

 protected:
  // Single-page access (va+size never crosses a page). The base
  // implementation is the shared skeleton; managers customize it through the
  // hooks below. Only decorators (TraceRecorder) override the method itself.
  // With access observation enabled the skeleton runs an instrumented twin
  // that times every step (AccessPageImpl<true>); the plain twin is the
  // historical body, unchanged.
  virtual void AccessPage(SimThread& thread, uint64_t va, uint32_t size, AccessKind kind);

  // ---- Hooks into the skeleton (all optional) ------------------------------

  // A not-present page was touched. Must leave the entry present (or the
  // skeleton asserts). Default: kernel anonymous first-touch, DRAM first.
  virtual void OnMissingPage(SimThread& thread, Region& region, uint64_t index);

  // A store hit a page whose wp_until is still in the future while the
  // manager runs in transactional-migration mode (`wp_txn_abort_`). The
  // store does not wait for the copy: the handler must abort the in-flight
  // transaction and release the page (wp_until <= now on return); the store
  // then proceeds against the still-authoritative source mapping. Only
  // invoked when `wp_txn_abort_` is set.
  virtual void OnWpConflict(SimThread& thread, Region& region, uint64_t index,
                            PageEntry& entry);

  // Called after fault/WP/A-D handling and before the device charge, for
  // tracking costs that gate the access itself (Thermostat's poison faults).
  // Only invoked when `tracked_hook_` is set.
  virtual void OnTrackedAccess(SimThread& thread, Region& region, uint64_t index,
                               PageEntry& entry, AccessKind kind);

  // Called after the device charge, for asynchronous observation of the
  // access (HeMem's PEBS counting — the sample carries the post-access
  // timestamp). Only invoked when `post_charge_hook_` is set.
  virtual void OnAccessCharged(SimThread& thread, uint64_t va, PageEntry& entry,
                               AccessKind kind);

  // Replaces the default device charge (frame-translated access on the
  // entry's tier). Only invoked when `custom_charge_` is set; MemoryMode uses
  // it for its cache-line probing model.
  virtual void ChargeDevice(SimThread& thread, Region& region, uint64_t va, PageEntry& entry,
                            uint32_t size, AccessKind kind);

  // Region teardown: detach any tracking state referring into the region
  // (FIFO lists, flat page arrays). Runs before metadata destruction and
  // frame release; the Region is still fully valid.
  virtual void OnUnmapRegion(Region& region);

  // Frame pool pages of `tier` are freed to at unmap. Default: the machine's
  // shared allocators; managers with private pools (PlainMemory, MemoryMode)
  // override.
  virtual FrameAllocator& FramePool(Tier tier);

  // Batched-quantum boundaries: invoked once per RunAccessQuantum call on the
  // batched path, before the first and after the last access. Hemem uses
  // them to precompute PEBS sampling decisions for the quantum.
  virtual void OnQuantumBegin(SimThread& thread);
  virtual void OnQuantumEnd(SimThread& thread);

  // ---- Region-attached metadata -------------------------------------------

  // Managers hang per-region metadata off Region::manager_data through this
  // base so ownership is singular: Attach stores it (keyed by region) and
  // publishes the raw pointer in the slot; Munmap (or manager destruction)
  // destroys it exactly once. `owner` makes the slot safe when several
  // manager instances share one PageTable (HememDaemon): a foreign
  // instance's metadata reads as absent, exactly like the old side-map miss.
  struct RegionMetaBase {
    virtual ~RegionMetaBase() = default;
    TieredMemoryManager* owner = nullptr;
  };

  void AttachRegionMeta(Region& region, std::unique_ptr<RegionMetaBase> meta) {
    meta->owner = this;
    region.manager_data = meta.get();
    region_meta_[&region] = std::move(meta);
  }

  void DetachRegionMeta(Region& region) {
    auto* base = static_cast<RegionMetaBase*>(region.manager_data);
    if (base != nullptr && base->owner == this) {
      region.manager_data = nullptr;
      region_meta_.erase(&region);
    }
  }

  // This manager's metadata for `region`, or nullptr when the region carries
  // none (unmanaged) or it belongs to another manager instance.
  template <typename T>
  T* RegionMetaAs(const Region& region) const {
    auto* base = static_cast<RegionMetaBase*>(region.manager_data);
    return (base != nullptr && base->owner == this) ? static_cast<T*>(base) : nullptr;
  }

  // ---- Shared helpers ------------------------------------------------------

  // Translation with the per-thread software TLB: repeat accesses to the
  // same region skip even the page table's own last-region check. Region
  // pointers are stable until unmap, so the cached slot revalidates against
  // the table's unmap epoch.
  PageTable::Resolution ResolveForAccess(SimThread& thread, uint64_t va) {
    PageTable& pt = machine_.page_table();
    SimThread::TranslationCache& tc = thread.translation_cache();
    Region* region;
    if (tc.epoch == pt.unmap_epoch() && va - tc.base < tc.bytes) [[likely]] {
      region = static_cast<Region*>(tc.region);
    } else {
      region = pt.Find(va);
      if (region == nullptr) {
        return {};
      }
      tc.base = region->base;
      tc.bytes = region->bytes;
      tc.region = region;
      tc.pages = region->pages.data();
      tc.epoch = pt.unmap_epoch();
      tc.page_shift = region->page_shift;
    }
    const uint64_t index = region->PageIndexOf(va);
    return {region, &region->pages[index], index};
  }

  // Kernel anonymous first-touch fault: DRAM-first frame, kernel-fault cost,
  // zero-fill, missing_faults accounting. Returns the tier the page landed
  // on so callers can do tier-specific bookkeeping.
  Tier KernelFirstTouch(SimThread& thread, Region& region, PageEntry& entry);

  // Frees every present page of a region back to FramePool(tier).
  void ReleaseRegionFrames(Region& region);

  uint64_t PhysicalAddress(const PageEntry& entry, uint64_t va) const {
    return (static_cast<uint64_t>(entry.frame) << page_shift_) | (va & page_mask_);
  }

  Machine& machine_;
  ManagerStats stats_;
  FaultCosts fault_costs_;

  // Skeleton configuration, set once at construction by subclasses.
  SimTime wp_stall_cost_ = 0;      // charged per WP stall (HeMem: userfaultfd)
  bool wp_requires_flag_ = false;  // stall gated on write_protected (Nimble)
  // Transactional (non-exclusive) migration: a store against an in-flight
  // copy pays one fault round-trip and aborts the transaction via
  // OnWpConflict instead of stalling until wp_until.
  bool wp_txn_abort_ = false;
  bool tracked_hook_ = false;      // invoke OnTrackedAccess pre-charge
  bool post_charge_hook_ = false;  // invoke OnAccessCharged post-charge
  bool custom_charge_ = false;     // invoke ChargeDevice instead of default
  // Opt-in to the batched quantum fast path. A manager may set this only if
  // its AccessPage behavior is exactly the base skeleton plus hooks; it must
  // stay false for decorators that override AccessPage itself
  // (TraceRecorder), which would be bypassed by the inline fast path.
  bool batch_quantum_safe_ = false;
  // Opt-in to sharded epoch execution (DESIGN.md "Parallel engine & epoch
  // barriers"). A manager may set this only when its whole access path is
  // free of cross-thread side effects once every page is mapped: plain
  // profile (no hooks, no custom charge), eager mapping, no migrations, no
  // background actors that mutate page state. parallel_tier_mask_ declares
  // which devices (1 << Tier) accesses can reach, so the epoch gate checks
  // channel continuity only where it matters.
  bool parallel_quantum_safe_ = false;
  uint32_t parallel_tier_mask_ = 0;
  // Sampling managers set this alongside their epoch support; see
  // epoch_sampling().
  bool epoch_sampling_ = false;

  // Access observation (Machine::EnableAccessObservation), cached at
  // construction: one null compare on the skeleton entry is the whole cost
  // when the layer is off. The latency slot registers lazily on the first
  // observed access (name() is virtual and unavailable in this constructor).
  obs::AccessObservation* observation_ = nullptr;
  int latency_slot_ = -1;

 private:
  // Publishes ManagerStats under "manager.<name()>."; name() is virtual, so
  // the provider resolves it lazily at snapshot time, never during
  // construction.
  void RegisterBaseMetrics();

  // Quantum-invariant skeleton configuration, snapshotted into a by-value
  // struct before the batched loop. Nothing mutates these fields mid-quantum,
  // but the compiler cannot prove that across the stores AccessFast performs
  // through entry/thread/device pointers — reading them from locals keeps
  // them in registers instead of re-loading `this` members every access.
  struct QuantumCtx {
    uint64_t page_mask;
    uint32_t page_shift;
    bool wp_requires_flag;
    bool tracked_hook;
    bool post_charge_hook;
    bool custom_charge;
    bool device_runs;
  };

  // Batched-quantum fast path for one page-contained access that needs no
  // fault, WP, or page-split work: mirrors the AccessPage skeleton step for
  // step (translate, A/D bits, tracked hook, device charge, post-charge
  // hook). Returns false — without having mutated anything — when the op
  // needs the full skeleton, which the caller runs after flushing the
  // deferred device runs.
  // `now` is the quantum's register-held copy of thread.now(): the
  // per-access clock dependency chain (WP check -> device charge ->
  // advance -> loop test) runs through it instead of store/load-forwarding
  // through the thread object every op. The caller keeps it in sync with
  // thread time at observation points; this function syncs around the
  // (rare) hook calls itself.
  // Forced inline into RunAccessQuantum's loop (it is just over gcc's -O2
  // size threshold, and an out-of-line call would spill the batch runs'
  // register state every op).
  //
  // kPlain compiles the common manager profile — no tracking hooks, no
  // custom charge, time-based WP, devices quiescent — with the other arms
  // removed entirely: the flag tests cost a spilled load and a branch each
  // per access, and dropping them also shrinks the loop's live state. The
  // caller asserts the profile from the QuantumCtx before choosing the
  // instantiation, so both compile to the same arithmetic.
  template <bool kPlain>
  [[gnu::always_inline]] inline bool AccessFast(SimThread& thread, SimTime& now,
                                                const AccessOp& op, const QuantumCtx& ctx,
                                                MemoryDevice::BatchRun& dram_run,
                                                MemoryDevice::BatchRun& nvm_run) {
    // Op start for the post-charge hook (dead and compiled out on the plain
    // profile): the hook may sample, and the sampling merge keys on it.
    [[maybe_unused]] SimTime op_start = 0;
    if constexpr (!kPlain) {
      op_start = now;
    }
    if ((op.va & ctx.page_mask) + op.size > ctx.page_mask + 1) [[unlikely]] {
      return false;  // page-crossing: Access() owns the split loop
    }
    // Translation straight off the per-thread TLB slot, reduced to the
    // region-bounds compare: the caller emptied a stale slot at quantum
    // start, mid-quantum unmaps are impossible (no access path unmaps and
    // gen must not mutate mappings), and any refill inside the quantum
    // stamps the live epoch. A miss — emptied slot or a different region —
    // falls back to the full skeleton, whose ResolveForAccess refills the
    // slot with identical arithmetic.
    const SimThread::TranslationCache& tc = thread.translation_cache();
    if (op.va - tc.base >= tc.bytes) [[unlikely]] {
      return false;  // TLB miss (or unmapped: AccessPage owns the assert)
    }
    const uint64_t index = (op.va - tc.base) >> tc.page_shift;
    PageEntry& entry = static_cast<PageEntry*>(tc.pages)[index];
    // Pinned before any hook runs: a hook that touches memory could refill
    // the TLB slot, and the hooks below must see the region this op resolved
    // against. Dead (and compiled out) on the plain profile.
    Region* region = nullptr;
    if constexpr (!kPlain) {
      region = static_cast<Region*>(tc.region);
    }
    if (!entry.present) [[unlikely]] {
      return false;  // missing-page fault path
    }
    if (op.kind == AccessKind::kStore &&
        (!kPlain && ctx.wp_requires_flag ? entry.write_protected : entry.wp_until > now))
        [[unlikely]] {
      return false;  // WP stall (or Nimble's flag clear) path
    }
    MarkPageFlag(entry.accessed);
    if (op.kind == AccessKind::kStore) {
      MarkPageFlag(entry.dirty);
    }
    if constexpr (!kPlain) {
      if (ctx.tracked_hook) [[unlikely]] {
        thread.SyncTime(now);
        OnTrackedAccess(thread, *region, index, entry, op.kind);
        now = thread.now();
      }
    }
    const uint64_t pa =
        (static_cast<uint64_t>(entry.frame) << ctx.page_shift) | (op.va & ctx.page_mask);
    if (!kPlain && ctx.custom_charge) [[unlikely]] {
      // ChargeDevice implementations touch the devices directly (MemoryMode
      // probes ChannelPressure), so they must see fully-flushed state.
      dram_run.Close();
      nvm_run.Close();
      thread.SyncTime(now);
      ChargeDevice(thread, *region, op.va, entry, op.size, op.kind);
      now = thread.now();
    } else if (kPlain || ctx.device_runs) [[likely]] {
      // A branch, not a select: a cmov'd run pointer would turn every field
      // access inside the inlined Access body into an indirect, may-alias
      // load, while distinct arms address each run's own locals statically.
      // The branch itself predicts perfectly whenever a thread's accesses
      // cluster on one tier, which is the case batching exists for.
      SimTime done;
      if (entry.tier == Tier::kDram) {
        done = dram_run.Access(now, pa, op.size, op.kind);
      } else {
        done = nvm_run.Access(now, pa, op.size, op.kind);
      }
      now = done > now ? done : now;
    } else {
      const SimTime done =
          machine_.device(entry.tier).Access(now, pa, op.size, op.kind, thread.stream_id());
      now = done > now ? done : now;
    }
    if constexpr (!kPlain) {
      if (ctx.post_charge_hook) [[unlikely]] {
        thread.set_access_op_start(op_start);
        thread.SyncTime(now);
        OnAccessCharged(thread, op.va, entry, op.kind);
        now = thread.now();
      }
    }
    return true;
  }

  // Cold half of the quantum loop: flush the deferred runs, then take the
  // full skeleton for an op a fast-path guard rejected (page crossing,
  // missing page, WP stall, unmapped). Out of line — and never inlined — so
  // the hot loop's register allocation is not constrained by the skeleton's
  // call tree. Defined in manager.cc.
  [[gnu::noinline]] void QuantumSlowAccess(SimThread& thread, const AccessOp& op,
                                           MemoryDevice::BatchRun& dram_run,
                                           MemoryDevice::BatchRun& nvm_run);

  // The skeleton body, compiled twice: kObserve = false is the historical
  // access path bit for bit; kObserve = true brackets every step with
  // thread-clock reads and records the decomposition (latency histograms,
  // heat timeline, audit access attribution). Defined in manager.cc.
  template <bool kObserve>
  void AccessPageImpl(SimThread& thread, uint64_t va, uint32_t size, AccessKind kind);

  uint64_t page_mask_;
  uint32_t page_shift_ = 0;
  std::unordered_map<Region*, std::unique_ptr<RegionMetaBase>> region_meta_;
};

template <typename Gen>
bool TieredMemoryManager::RunAccessQuantum(SimThread& thread, Gen&& gen,
                                           SimTime compute_ns, bool charge_compute) {
  Engine* engine = thread.engine();
  AccessOp op;
  if (engine == nullptr || !engine->batching() || !batch_quantum_safe_ ||
      observation_ != nullptr) {
    // Reference path: exactly one access per slice through the historical
    // entry point — the pre-batching execution shape. Observed runs always
    // take it: the observation hooks live in the full skeleton, so AccessFast
    // never grows an instrumentation branch and the disabled-case fast path
    // stays byte-identical.
    if (!gen(op)) {
      return false;
    }
    Access(thread, op.va, op.size, op.kind);
    if (charge_compute) {
      thread.ChargeCompute(compute_ns);
    } else {
      thread.Advance(compute_ns);
    }
    return true;
  }

  // Lookahead guards fixed for the whole quantum. The window is
  // [now, horizon); the first access may start exactly at the horizon when
  // the dispatch was a time tie, hence the max. Deferred device runs are
  // only used when no fault rule can fire inside the window — a degrade rule
  // going live mid-run would make per-access arithmetic time-dependent.
  // (BatchRun enforces the same bound itself; the predicate makes the common
  //  no-fault case branch-free and is the documented contract.)
  const SimTime window_end = std::max(thread.dispatch_horizon(), thread.now() + 1);
  const QuantumCtx ctx{page_mask_,
                       page_shift_,
                       wp_requires_flag_,
                       tracked_hook_,
                       post_charge_hook_,
                       custom_charge_,
                       machine_.faults().QuiescentIn(thread.now(), window_end)};
  MemoryDevice::BatchRun dram_run(machine_.device(Tier::kDram), thread.stream_id());
  MemoryDevice::BatchRun nvm_run(machine_.device(Tier::kNvm), thread.stream_id());
  OnQuantumBegin(thread);
  // The dispatch horizon is slice-invariant (the dispatching scheduler —
  // serial loop or epoch worker — publishes it before RunSlice and access
  // paths never add threads mid-slice), so the continuation test can hold it
  // in a register instead of re-loading it from the thread every access. The
  // loop condition below is exactly InRunQuantum().
  const SimTime horizon = thread.dispatch_horizon();
  uint32_t left = engine->quantum_ops();
  // The thread clock is carried in `now` and published via SyncTime only
  // where code outside the loop can read thread time: before each gen call
  // (the documented contract), around skeleton fallbacks / compute charges,
  // and once at quantum end. All clock arithmetic is identical either way;
  // the register copy just keeps the per-access dependency chain out of
  // memory. The loop is instantiated once per charge mode (gcc at -O2 does
  // not unswitch loops, and the mode is fixed for the quantum).
  SimTime now = thread.now();
  // Validate the thread's TLB slot once for the whole quantum: emptying a
  // stale slot here is what lets AccessFast's per-access check collapse to
  // the bounds compare alone. Unmaps cannot happen mid-quantum, and a
  // fallback refill stamps the live epoch, so the slot can only go from
  // empty to valid while the loop runs.
  {
    SimThread::TranslationCache& tc = thread.translation_cache();
    if (tc.epoch != machine_.page_table().unmap_epoch()) {
      tc.bytes = 0;
    }
  }
  const auto run_loop = [&](auto charge, auto plain) {
    bool more;
    do {
      AccessOp next;
      thread.SyncTime(now);
      more = gen(next);
      if (!more) {
        break;
      }
      if (!AccessFast<decltype(plain)::value>(thread, now, next, ctx, dram_run, nvm_run))
          [[unlikely]] {
        QuantumSlowAccess(thread, next, dram_run, nvm_run);
        now = thread.now();
      }
      if constexpr (decltype(charge)::value) {
        thread.SyncTime(now);
        thread.ChargeCompute(compute_ns);
        now = thread.now();
      } else {
        now += compute_ns;
      }
    } while (--left != 0 && thread.pending_penalty() == 0 && now < horizon);
    thread.SyncTime(now);
    return more;
  };
  const bool plain_profile = !ctx.wp_requires_flag && !ctx.tracked_hook &&
                             !ctx.post_charge_hook && !ctx.custom_charge && ctx.device_runs;
  const bool more =
      plain_profile
          ? (charge_compute ? run_loop(std::true_type{}, std::true_type{})
                            : run_loop(std::false_type{}, std::true_type{}))
          : (charge_compute ? run_loop(std::true_type{}, std::false_type{})
                            : run_loop(std::false_type{}, std::false_type{}));
  OnQuantumEnd(thread);
  // The runs' destructors flush here, before the slice returns to the
  // engine — no deferred device state ever escapes the quantum.
  return more;
}

}  // namespace hemem

#endif  // HEMEM_TIER_MANAGER_H_
