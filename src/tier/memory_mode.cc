#include "tier/memory_mode.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/rng.h"

namespace hemem {

namespace {

// Sampled-set budget: exact tags for at most ~2^20 sets keeps memory use
// bounded regardless of simulated DRAM size.
constexpr uint64_t kMaxSampledSets = 1ull << 20;

uint64_t ChooseSampleMask(uint64_t num_sets) {
  uint64_t mask = 0;
  while ((num_sets >> std::popcount(mask)) > kMaxSampledSets) {
    mask = (mask << 1) | 1;
  }
  return mask;
}

// EWMA smoothing for the rates applied to unsampled sets.
constexpr double kRateAlpha = 1.0 / 4096.0;

}  // namespace

MemoryMode::MemoryMode(Machine& machine)
    : TieredMemoryManager(machine),
      num_sets_(machine.config().dram_bytes / kLineBytes),
      sample_mask_(ChooseSampleMask(num_sets_)),
      sample_shift_(std::popcount(sample_mask_)),
      set_shift_(std::has_single_bit(num_sets_)
                     ? std::countr_zero(num_sets_)
                     : -1),
      sampled_sets_(num_sets_ >> sample_shift_),
      hit_rate_(kRateAlpha),
      writeback_rate_(kRateAlpha),
      pool_(machine.config().nvm_bytes, machine.page_bytes(),
            /*shuffle_seed=*/0x5eed5eed5eed5eedull, /*allow_overcommit=*/false,
            // Physical fragmentation at ~1/12th-of-DRAM granularity: small
            // working sets stay mostly conflict-free; conflicts grow as
            // occupancy approaches DRAM capacity (the paper's Figure 5/6
            // degradation curve).
            /*shuffle_chunk_frames=*/
            std::max<uint64_t>(1, machine.config().dram_bytes / 12 /
                                      machine.page_bytes())) {
  assert(num_sets_ > 0);
  custom_charge_ = true;
  // Batched quanta are safe: the fast path flushes deferred device runs
  // before every ChargeDevice call, so the cache-probing model always sees
  // exact channel state.
  batch_quantum_safe_ = true;
  machine.metrics().AddProvider(this, [this](obs::MetricsEmitter& e) {
    e.Emit("mm.line_probes", mm_stats_.line_probes);
    e.Emit("mm.hits", mm_stats_.hits);
    e.Emit("mm.misses", mm_stats_.misses);
    e.Emit("mm.writebacks", mm_stats_.writebacks);
    e.Emit("mm.hit_rate", mm_stats_.HitRate());
  });
}

uint64_t MemoryMode::Mmap(uint64_t bytes, AllocOptions opts) {
  PageTable& pt = machine_.page_table();
  const uint64_t page = machine_.page_bytes();
  const uint64_t base = pt.ReserveVa(bytes, page);
  Region* region = pt.MapRegion(base, bytes, page, /*managed=*/true, opts.label);
  for (PageEntry& entry : region->pages) {
    const std::optional<uint32_t> frame = pool_.Alloc();
    assert(frame.has_value() && "memory-mode pool exhausted");
    entry.frame = *frame;
    entry.tier = Tier::kNvm;  // home location; DRAM is invisible cache
    pt.SetPresent(entry);
  }
  stats_.managed_allocs++;
  return base;
}

MemoryMode::LineOutcome MemoryMode::ProbeLine(uint64_t line_addr, bool is_store) {
  access_seq_++;
  mm_stats_.line_probes++;
  const uint64_t set =
      set_shift_ >= 0 ? line_addr & (num_sets_ - 1) : line_addr % num_sets_;
  const uint64_t tag =
      set_shift_ >= 0 ? line_addr >> set_shift_ : line_addr / num_sets_;

  LineOutcome out;
  if (SetIsSampled(set)) {
    SetState& state = sampled_sets_[set >> sample_shift_];
    out.hit = state.valid && state.tag == tag;
    out.writeback = !out.hit && state.valid && state.dirty;
    state.valid = true;
    state.tag = tag;
    state.dirty = out.hit ? (state.dirty || is_store) : is_store;
    hit_rate_.Observe(out.hit ? 1.0 : 0.0);
    writeback_rate_.Observe(out.writeback ? 1.0 : 0.0);
  } else {
    // Deterministic extrapolation from the sampled rates: the hash varies
    // per access, so a line hits with the measured steady-state probability.
    const uint64_t h = Mix64(line_addr ^ (access_seq_ * 0x9e3779b97f4a7c15ull));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    out.hit = u < hit_rate_.value();
    if (!out.hit) {
      const uint64_t h2 = Mix64(h);
      const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
      out.writeback = u2 < writeback_rate_.value();
    }
  }
  if (out.hit) {
    mm_stats_.hits++;
  } else {
    mm_stats_.misses++;
  }
  if (out.writeback) {
    mm_stats_.writebacks++;
  }
  return out;
}

void MemoryMode::ChargeDevice(SimThread& thread, Region& region, uint64_t va,
                              PageEntry& entry, uint32_t size, AccessKind kind) {
  (void)region;
  const uint64_t pa = PhysicalAddress(entry, va);

  // Walk the lines the access covers, classifying each against the cache.
  const uint64_t first_line = pa / kLineBytes;
  const uint64_t last_line = (pa + size - 1) / kLineBytes;
  uint32_t hit_lines = 0;
  uint32_t miss_lines = 0;
  uint32_t writeback_lines = 0;
  const bool is_store = kind == AccessKind::kStore;
  for (uint64_t line = first_line; line <= last_line; ++line) {
    const LineOutcome out = ProbeLine(line, is_store);
    if (out.hit) {
      hit_lines++;
    } else {
      miss_lines++;
    }
    if (out.writeback) {
      writeback_lines++;
    }
  }

  MemoryDevice& dram = machine_.dram();
  MemoryDevice& nvm = machine_.nvm();
  SimTime done = thread.now();
  if (hit_lines > 0) {
    done = std::max(done, dram.Access(thread.now(), pa, hit_lines * kLineBytes, kind,
                                      thread.stream_id()));
  }
  if (miss_lines > 0) {
    // Demand fill from NVM gates the thread...
    const SimTime fill = nvm.Access(thread.now(), pa, miss_lines * kLineBytes,
                                    AccessKind::kLoad, thread.stream_id());
    done = std::max(done, fill);
    // ...the DRAM-side fill write happens off the critical path.
    dram.Access(thread.now(), pa, miss_lines * kLineBytes, AccessKind::kStore,
                thread.stream_id());
    if (is_store) {
      // Write-allocate: the store itself retires into the freshly filled line.
      dram.Access(fill, pa, miss_lines * kLineBytes, AccessKind::kStore, thread.stream_id());
    }
  }
  if (writeback_lines > 0) {
    // Victim writeback: asynchronous, but it burns scarce NVM write bandwidth
    // and wears the media (random 64 B lines occupy 256 B media blocks each).
    // When the write-pending queue is saturated, demand misses stall behind
    // the backlog (real Optane couples reads and writes on the media).
    SimTime wb_done = thread.now();
    for (uint32_t i = 0; i < writeback_lines; ++i) {
      wb_done = nvm.Access(thread.now(), Mix64(pa + i) % machine_.config().nvm_bytes,
                           kLineBytes, AccessKind::kStore, ~0u);
    }
    if (nvm.ChannelPressure(thread.now(), AccessKind::kStore) >= 1.0) {
      done = std::max(done, wb_done - nvm.params().write_latency);
    }
  }
  thread.AdvanceTo(done);
}

}  // namespace hemem
