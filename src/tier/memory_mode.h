// Intel Optane DC "memory mode" (MM): hardware tiering baseline.
//
// In memory mode the OS sees one large physical pool (the NVM capacity) and
// DRAM becomes a direct-mapped, write-back, write-allocate cache in front of
// it with a cache-line (64 B) effective block size. Software has no control:
// every accessed line is pulled into DRAM, evicting whatever direct-mapped
// line it conflicts with; a dirty eviction writes the victim line back to
// NVM. Conflict misses — two physical lines mapping to the same DRAM set —
// are what degrade MM as occupancy grows (Figures 5/6) and dirty writebacks
// are what wear the NVM media (Figure 16).
//
// Implementation notes:
//  * Physical frames are allocated in a seeded-shuffled order. Real machines
//    scatter a process's pages across the physical pool, which is exactly
//    why conflicts appear well before the working set reaches DRAM size.
//  * Tag state is simulated exactly for a sampled subset of cache sets (set
//    sampling, the standard cache-simulation technique) because full tag
//    arrays for terabyte pools don't fit. Unsampled sets consume the
//    hit/writeback rates measured on the sampled sets via a deterministic
//    per-access hash, so behaviour is reproducible run to run.

#ifndef HEMEM_TIER_MEMORY_MODE_H_
#define HEMEM_TIER_MEMORY_MODE_H_

#include <cstdint>
#include <vector>

#include "policy/features.h"
#include "tier/machine.h"
#include "tier/manager.h"

namespace hemem {

struct MemoryModeStats {
  uint64_t line_probes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t writebacks = 0;

  double HitRate() const {
    return line_probes == 0 ? 0.0
                            : static_cast<double>(hits) / static_cast<double>(line_probes);
  }
};

class MemoryMode : public TieredMemoryManager {
 public:
  explicit MemoryMode(Machine& machine);

  const char* name() const override { return "MM"; }

  uint64_t Mmap(uint64_t bytes, AllocOptions opts = {}) override;

  const MemoryModeStats& mm_stats() const { return mm_stats_; }

 protected:
  // The DRAM cache replaces the flat device charge: the access is timed line
  // by line against the direct-mapped tags instead of the home tier.
  void ChargeDevice(SimThread& thread, Region& region, uint64_t va, PageEntry& entry,
                    uint32_t size, AccessKind kind) override;
  FrameAllocator& FramePool(Tier) override { return pool_; }

 private:
  static constexpr uint64_t kLineBytes = 64;

  struct SetState {
    uint64_t tag = ~0ull;
    bool valid = false;
    bool dirty = false;
  };

  struct LineOutcome {
    bool hit = false;
    bool writeback = false;
  };

  // Probes one line (exact on sampled sets, rate-extrapolated elsewhere).
  LineOutcome ProbeLine(uint64_t line_addr, bool is_store);

  bool SetIsSampled(uint64_t set) const { return (set & sample_mask_) == 0; }

  uint64_t num_sets_;
  uint64_t sample_mask_;  // set sampled iff (set & mask) == 0
  int sample_shift_;      // popcount(sample_mask_): dense index of a sampled set
  int set_shift_;         // log2(num_sets_) when a power of two, else -1
  // Tag state for the sampled sets, indexed densely by set >> sample_shift_
  // (the mask is contiguous low bits, so sampled sets are exactly the
  // multiples of 2^sample_shift_). Bounded by kMaxSampledSets entries.
  std::vector<SetState> sampled_sets_;
  // EWMA rates measured on sampled sets, applied to the rest (the shared
  // policy-layer estimator; identical arithmetic to the old inline update).
  policy::Ewma hit_rate_;
  policy::Ewma writeback_rate_;
  uint64_t access_seq_ = 0;
  FrameAllocator pool_;  // shuffled physical allocation over the NVM pool
  MemoryModeStats mm_stats_;
};

}  // namespace hemem

#endif  // HEMEM_TIER_MEMORY_MODE_H_
