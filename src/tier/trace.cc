#include "tier/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace hemem {

namespace {
constexpr uint32_t kTraceMagic = 0x48544d54;  // "TMTH"
constexpr uint32_t kTraceVersion = 1;
}  // namespace

bool Trace::SaveTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  bool ok = true;
  auto put = [&](const void* p, size_t n) { ok = ok && std::fwrite(p, 1, n, f) == n; };
  const uint32_t header[2] = {kTraceMagic, kTraceVersion};
  put(header, sizeof(header));
  const uint64_t counts[2] = {allocs.size(), accesses.size()};
  put(counts, sizeof(counts));
  for (const TraceAlloc& a : allocs) {
    put(&a.va, sizeof(a.va));
    put(&a.bytes, sizeof(a.bytes));
    const uint32_t len = static_cast<uint32_t>(a.label.size());
    put(&len, sizeof(len));
    put(a.label.data(), len);
  }
  for (const TraceAccess& a : accesses) {
    put(&a.time, sizeof(a.time));
    put(&a.va, sizeof(a.va));
    put(&a.size, sizeof(a.size));
    put(&a.thread, sizeof(a.thread));
    const uint8_t kind = static_cast<uint8_t>(a.kind);
    put(&kind, sizeof(kind));
  }
  std::fclose(f);
  return ok;
}

bool Trace::LoadFrom(const std::string& path, Trace* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  bool ok = true;
  auto get = [&](void* p, size_t n) { ok = ok && std::fread(p, 1, n, f) == n; };
  uint32_t header[2] = {};
  get(header, sizeof(header));
  if (!ok || header[0] != kTraceMagic || header[1] != kTraceVersion) {
    std::fclose(f);
    return false;
  }
  uint64_t counts[2] = {};
  get(counts, sizeof(counts));
  out->allocs.resize(counts[0]);
  for (TraceAlloc& a : out->allocs) {
    get(&a.va, sizeof(a.va));
    get(&a.bytes, sizeof(a.bytes));
    uint32_t len = 0;
    get(&len, sizeof(len));
    a.label.resize(len);
    get(a.label.data(), len);
  }
  out->accesses.resize(counts[1]);
  for (TraceAccess& a : out->accesses) {
    get(&a.time, sizeof(a.time));
    get(&a.va, sizeof(a.va));
    get(&a.size, sizeof(a.size));
    get(&a.thread, sizeof(a.thread));
    uint8_t kind = 0;
    get(&kind, sizeof(kind));
    a.kind = static_cast<AccessKind>(kind);
  }
  std::fclose(f);
  return ok;
}

TraceRecorder::TraceRecorder(TieredMemoryManager& inner)
    : TieredMemoryManager(inner.machine()), inner_(inner) {}

uint64_t TraceRecorder::Mmap(uint64_t bytes, AllocOptions opts) {
  const uint64_t va = inner_.Mmap(bytes, opts);
  trace_.allocs.push_back(TraceAlloc{va, bytes, opts.label});
  return va;
}

void TraceRecorder::Munmap(uint64_t va) { inner_.Munmap(va); }

void TraceRecorder::AccessPage(SimThread& thread, uint64_t va, uint32_t size,
                               AccessKind kind) {
  trace_.accesses.push_back(TraceAccess{thread.now(), va, size,
                                        static_cast<uint16_t>(thread.stream_id()), kind});
  inner_.Access(thread, va, size, kind);
}

class TraceReplayer::Thread : public SimThread {
 public:
  Thread(TraceReplayer& owner) : SimThread("trace-replay"), owner_(owner) {}

  bool RunSlice() override {
    const Trace& trace = owner_.trace_;
    if (next_ >= trace.accesses.size()) {
      return false;
    }
    const TraceAccess& access = trace.accesses[next_];
    if (owner_.preserve_gaps_ && next_ > 0) {
      const SimTime gap = access.time - trace.accesses[next_ - 1].time;
      if (gap > 0) {
        Advance(gap);
      }
    }
    owner_.manager_.Access(*this, owner_.Translate(access.va), access.size, access.kind);
    next_++;
    return true;
  }

  uint64_t replayed() const { return next_; }

 private:
  TraceReplayer& owner_;
  uint64_t next_ = 0;
};

TraceReplayer::TraceReplayer(TieredMemoryManager& manager, const Trace& trace,
                             bool preserve_gaps)
    : manager_(manager), trace_(trace), preserve_gaps_(preserve_gaps) {}

TraceReplayer::~TraceReplayer() = default;

uint64_t TraceReplayer::Translate(uint64_t va) const {
  for (size_t i = 0; i < trace_.allocs.size(); ++i) {
    const TraceAlloc& alloc = trace_.allocs[i];
    if (va >= alloc.va && va < alloc.va + alloc.bytes) {
      return replay_bases_[i] + (va - alloc.va);
    }
  }
  return va;  // untracked range: replay verbatim
}

TraceReplayer::Result TraceReplayer::Run() {
  replay_bases_.clear();
  for (const TraceAlloc& alloc : trace_.allocs) {
    replay_bases_.push_back(manager_.Mmap(alloc.bytes, AllocOptions{.label = alloc.label}));
  }
  thread_ = std::make_unique<Thread>(*this);
  Engine& engine = manager_.machine().engine();
  const SimTime start = engine.now();
  engine.AddThread(thread_.get());
  const SimTime end = engine.Run();
  Result result;
  result.elapsed = end - start;
  result.accesses = thread_->replayed();
  return result;
}

}  // namespace hemem
