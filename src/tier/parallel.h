// Epoch gate for sharded parallel execution (DESIGN.md "Parallel engine &
// epoch barriers").
//
// The engine asks, per scheduling round, whether the runnable parallel-pure
// threads may execute concurrently up to a horizon. The coordinator answers
// from tier-layer state the engine cannot see:
//
//  * every manager built against the machine opted in (parallel_quantum_safe:
//    plain access profile, eager mapping, no migrations/hooks/daemons);
//  * every page of every region is present, so no access can take a fault
//    path (first-touch allocation orders threads through the frame pools);
//  * per masked device direction, inherited channel backlog plus one
//    in-flight reservation per epoch thread fits in the channel count, so
//    begin == start holds for every epoch access — each thread's timing then
//    depends only on its own access sequence, never on interleaving;
//  * no degrade window overlaps the epoch (wear-coupled multipliers make
//    timing order-dependent inside a window); a window ahead of the frontier
//    just caps the horizon at its start edge.
//
// When an epoch runs, each epoch *thread* gets its own ShardView — a full
// copy of the DRAM/NVM devices with stats zeroed, so view stats are epoch
// deltas — and the worker executing it binds that view through a
// thread-local that Machine::device() consults (re-binding per owned
// thread, so no thread ever sees a sibling's reservations). At the barrier
// the views merge back in fixed candidate order
// (MemoryDevice::MergeShardViews), which the determinism argument reduces
// to sums, maxes, disjoint slot copies, and a channel multiset union.
//
// When a registered manager samples (HeMem in PEBS mode), each view also
// carries a PebsBuffer::ShardState: the shard counts accesses privately and
// defers record emission; the barrier replays the deferred overflows in
// (op start time, view order) order, reproducing the serial ring, counters,
// and stats bit for bit (DESIGN.md "Sampling under epochs"). The gate then
// also requires shard stream ids distinct modulo the PEBS context count.

#ifndef HEMEM_TIER_PARALLEL_H_
#define HEMEM_TIER_PARALLEL_H_

#include <memory>
#include <vector>

#include "mem/device.h"
#include "pebs/pebs.h"
#include "sim/engine.h"

namespace hemem {

class Machine;

class ParallelCoordinator : public EpochGate {
 public:
  explicit ParallelCoordinator(Machine& machine);
  ~ParallelCoordinator() override;

  SimTime EpochHorizon(SimTime frontier, SimTime want,
                       const std::vector<SimThread*>& shard_threads) override;
  void BeginEpoch(int shards) override;
  void BindShard(int shard) override;
  void UnbindShard() override;
  void MergeEpoch(SimTime horizon, int shards) override;

 private:
  struct ShardView {
    MemoryDevice dram;
    MemoryDevice nvm;
    // Shard-local PEBS sampling state (bound only when a sampling manager's
    // hook fires inside the epoch; merged at the barrier in view order).
    PebsBuffer::ShardState pebs;
    ShardView(const MemoryDevice& d, const MemoryDevice& n) : dram(d), nvm(n) {}
  };

  bool FullyMapped() const;
  // Degrade-window and channel-continuity check for one device; may shrink
  // `want` to a window edge. `streams` is the epoch thread count.
  bool DeviceEligible(MemoryDevice& dev, SimTime frontier, SimTime& want,
                      int streams) const;

  Machine& machine_;
  std::vector<std::unique_ptr<ShardView>> views_;
  std::vector<const MemoryDevice*> merge_scratch_;
  std::vector<PebsBuffer::ShardState*> pebs_scratch_;
};

}  // namespace hemem

#endif  // HEMEM_TIER_PARALLEL_H_
