// Nimble page management (Yan et al., ASPLOS '19) — kernel tiering baseline.
//
// Nimble treats NVM as a far NUMA node and extends Linux's NUMA migration
// with fast (multi-threaded, exchange-based) huge-page migration. Its
// defining structural property, which the paper's Figure 4b highlights and
// its evaluation repeatedly exercises, is that *one* kernel thread does
// everything sequentially: scan page tables for accessed/dirty bits, clear
// them (TLB shootdowns), decide, then migrate. Long migrations therefore
// delay the next scan, so access statistics go stale and the hot set is
// chronically over-estimated.
//
// Model summary:
//  * first-touch allocation prefers DRAM, falls back to NVM (kernel local
//    allocation), with a kernel-fault cost, matching anonymous memory;
//  * the kernel pass charges a 4 KiB-granularity radix scan (kernel LRU
//    walks base-page PTEs even though migration moves 2 MiB pages), clears
//    A bits with batched shootdowns, then exchanges pages: accessed NVM
//    pages are promoted, DRAM pages idle for `demote_after_scans` scans are
//    demoted; if nothing is idle but promotion candidates exist, Nimble
//    second-chances the oldest DRAM pages anyway (the thrash the paper
//    observes under uniform access);
//  * migration uses `migration_threads` CPU copy threads (the paper
//    configures 4) and runs inside the same kernel pass.

#ifndef HEMEM_TIER_NIMBLE_H_
#define HEMEM_TIER_NIMBLE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mem/dma.h"
#include "tier/machine.h"
#include "tier/manager.h"

namespace hemem {

struct NimbleParams {
  SimTime scan_period = 100 * kMillisecond;
  int migration_threads = 4;
  // Exchange budget per kernel pass; paper-scale bytes (divided by the
  // machine's label_scale internally).
  uint64_t exchange_budget_per_pass = MiB(256);
  int demote_after_scans = 2;  // idle scans before a DRAM page is demoted
};

class Nimble : public TieredMemoryManager {
 public:
  Nimble(Machine& machine, NimbleParams params = NimbleParams{});
  ~Nimble() override;

  const char* name() const override { return "Nimble"; }

  uint64_t Mmap(uint64_t bytes, AllocOptions opts = {}) override;
  void Start() override;

 protected:
  void OnMissingPage(SimThread& thread, Region& region, uint64_t index) override;
  void OnUnmapRegion(Region& region) override;

 private:
  class KernelThread;

  struct PageInfo {
    Region* region = nullptr;
    uint64_t index = 0;
    uint8_t idle_scans = 0;
  };

  // Region slot: position of the region's pages in the flat pages_ array.
  struct SpanMeta : RegionMetaBase {
    size_t first_id = 0;
  };

  // One sequential scan + migrate pass; returns its simulated duration.
  SimTime KernelPass(SimTime start);

  // Moves the page at `info` to `dst_tier` onto `frame`; returns copy
  // completion given the pass cursor `t`.
  SimTime MovePage(SimTime t, PageInfo& info, Tier dst_tier, uint32_t frame);

  PageEntry& EntryOf(PageInfo& info) { return info.region->pages[info.index]; }

  NimbleParams params_;
  uint64_t scaled_exchange_budget_;
  CpuCopier copier_;
  std::unique_ptr<KernelThread> kernel_thread_;
  std::vector<PageInfo> pages_;  // flat index over all managed pages
  size_t promote_cursor_ = 0;  // round-robin fairness over candidates
  // FIFO of DRAM-resident page ids, oldest first (second-chance demotion).
  std::deque<size_t> dram_fifo_;
};

}  // namespace hemem

#endif  // HEMEM_TIER_NIMBLE_H_
