#include "tier/plain.h"

#include <cassert>

namespace hemem {

PlainMemory::PlainMemory(Machine& machine, Tier tier, bool overcommit)
    : TieredMemoryManager(machine),
      tier_(tier),
      frames_(tier == Tier::kDram ? machine.config().dram_bytes : machine.config().nvm_bytes,
              machine.page_bytes(), /*shuffle_seed=*/0, overcommit) {}

uint64_t PlainMemory::Mmap(uint64_t bytes, AllocOptions opts) {
  PageTable& pt = machine_.page_table();
  const uint64_t page = machine_.page_bytes();
  const uint64_t base = pt.ReserveVa(bytes, page);
  Region* region = pt.MapRegion(base, bytes, page, /*managed=*/true, opts.label);
  for (PageEntry& entry : region->pages) {
    const std::optional<uint32_t> frame = frames_.Alloc();
    assert(frame.has_value() && "PlainMemory device out of capacity");
    entry.frame = *frame;
    entry.tier = tier_;
    entry.present = true;
  }
  stats_.managed_allocs++;
  return base;
}

void PlainMemory::Munmap(uint64_t va) {
  Region* region = machine_.page_table().Find(va);
  if (region == nullptr) {
    return;
  }
  for (PageEntry& entry : region->pages) {
    if (entry.present) {
      frames_.Free(entry.frame);
      entry.present = false;
    }
  }
  machine_.page_table().UnmapRegion(region->base);
}

void PlainMemory::AccessPage(SimThread& thread, uint64_t va, uint32_t size, AccessKind kind) {
  Region* region = machine_.page_table().Find(va);
  assert(region != nullptr && "access to unmapped address");
  PageEntry& entry = region->pages[region->PageIndexOf(va)];
  const uint64_t pa =
      static_cast<uint64_t>(entry.frame) * machine_.page_bytes() + va % machine_.page_bytes();
  const SimTime done =
      machine_.device(tier_).Access(thread.now(), pa, size, kind, thread.stream_id());
  thread.AdvanceTo(done);
}

}  // namespace hemem
