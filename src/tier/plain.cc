#include "tier/plain.h"

#include <cassert>

namespace hemem {

PlainMemory::PlainMemory(Machine& machine, Tier tier, bool overcommit)
    : TieredMemoryManager(machine),
      tier_(tier),
      frames_(tier == Tier::kDram ? machine.config().dram_bytes : machine.config().nvm_bytes,
              machine.page_bytes(), /*shuffle_seed=*/0, overcommit) {
  // Pure base skeleton, no hooks: eligible for batched quantum execution.
  batch_quantum_safe_ = true;
  // Eagerly mapped, no migrations, no background actors: once every page is
  // present the access path is side-effect-free across threads, so sharded
  // epochs may run it. Accesses only ever reach the fixed tier's device.
  parallel_quantum_safe_ = true;
  parallel_tier_mask_ = 1u << static_cast<int>(tier);
}

uint64_t PlainMemory::Mmap(uint64_t bytes, AllocOptions opts) {
  PageTable& pt = machine_.page_table();
  const uint64_t page = machine_.page_bytes();
  const uint64_t base = pt.ReserveVa(bytes, page);
  Region* region = pt.MapRegion(base, bytes, page, /*managed=*/true, opts.label);
  for (PageEntry& entry : region->pages) {
    const std::optional<uint32_t> frame = frames_.Alloc();
    assert(frame.has_value() && "PlainMemory device out of capacity");
    entry.frame = *frame;
    entry.tier = tier_;
    pt.SetPresent(entry);
  }
  stats_.managed_allocs++;
  return base;
}

}  // namespace hemem
