#include "tier/parallel.h"

#include <cassert>

#include "tier/machine.h"
#include "tier/manager.h"
#include "vm/page_table.h"

namespace hemem {

ParallelCoordinator::ParallelCoordinator(Machine& machine) : machine_(machine) {}

ParallelCoordinator::~ParallelCoordinator() = default;

bool ParallelCoordinator::FullyMapped() const {
  // The page table maintains the not-present count incrementally at
  // map/unmap and every present-bit flip, so the gate's precondition is one
  // counter read per scheduling round — no region scan, no result cache.
  return machine_.page_table().missing_pages() == 0;
}

bool ParallelCoordinator::DeviceEligible(MemoryDevice& dev, SimTime frontier,
                                         SimTime& want, int streams) const {
  if (dev.degrade_active()) {
    const DeviceDegrade& w = dev.degrade_window();
    if (frontier >= w.start && frontier < w.end) {
      return false;  // inside the window: wear-coupled timing is order-dependent
    }
    if (frontier < w.start && want > w.start) {
      want = w.start;  // stop at the window edge; the serial loop crosses it
      if (want <= frontier) {
        return false;
      }
    }
  }
  // Channel continuity (see device.h BusyChannelsAfter): inherited backlog
  // plus one in-flight reservation per epoch thread must fit per direction.
  const int read_channels = dev.params().read_channels;
  const int write_channels = dev.params().write_channels;
  if (dev.BusyChannelsAfter(frontier, AccessKind::kLoad) + streams > read_channels) {
    return false;
  }
  if (dev.BusyChannelsAfter(frontier, AccessKind::kStore) + streams > write_channels) {
    return false;
  }
  return true;
}

SimTime ParallelCoordinator::EpochHorizon(SimTime frontier, SimTime want,
                                          const std::vector<SimThread*>& shard_threads) {
  // The shadow checker records every write centrally — inherently serial.
  if (machine_.shadow() != nullptr) {
    return 0;
  }
  // So do the access-observation recorders (latency histograms, heat cells,
  // audit counters): epochs stay rejected while observation is on, every
  // access runs on the serial loop in global time order, and the observed
  // run is bit-identical at any --host-workers count.
  if (machine_.observation() != nullptr) {
    return 0;
  }
  const std::vector<TieredMemoryManager*>& managers = machine_.managers();
  if (managers.empty()) {
    return 0;
  }
  uint32_t tier_mask = 0;
  bool sampling = false;
  for (TieredMemoryManager* manager : managers) {
    // Dynamic eligibility: statically-safe managers (PlainMemory, X-Mem)
    // always grant; stateful ones (HeMem) grant exactly when their access
    // path is momentarily pure — fully mapped, no in-flight copies, no WP
    // windows pending. Clean shadow-flip demotions queue no data movement,
    // so a Nomad-mode HeMem between passes still grants epochs.
    if (!manager->EpochEligible(frontier)) {
      return 0;
    }
    tier_mask |= manager->parallel_tier_mask();
    sampling |= manager->epoch_sampling();
  }
  if (tier_mask == 0) {
    return 0;
  }
  // Distinct stream ids below the slot bound keep per-shard detector slots
  // disjoint (ids are engine-unique, so only the bound needs checking).
  // Sampling managers additionally need the ids distinct modulo the PEBS
  // context count: each shard privatizes its stream's counter row for the
  // epoch, which is only exact when no two shards alias one row.
  uint64_t pebs_rows_seen = 0;
  static_assert(PebsBuffer::kMaxContexts <= 64, "seen mask is one word");
  for (const SimThread* thread : shard_threads) {
    if (thread->stream_id() >= MemoryDevice::kStreamSlots) {
      return 0;
    }
    if (sampling) {
      const uint64_t row_bit = 1ull << (thread->stream_id() % PebsBuffer::kMaxContexts);
      if ((pebs_rows_seen & row_bit) != 0) {
        return 0;
      }
      pebs_rows_seen |= row_bit;
    }
  }
  if (!FullyMapped()) {
    return 0;
  }
  const int streams = static_cast<int>(shard_threads.size());
  if ((tier_mask & (1u << static_cast<int>(Tier::kDram))) != 0 &&
      !DeviceEligible(machine_.dram(), frontier, want, streams)) {
    return 0;
  }
  if ((tier_mask & (1u << static_cast<int>(Tier::kNvm))) != 0 &&
      !DeviceEligible(machine_.nvm(), frontier, want, streams)) {
    return 0;
  }
  return want > frontier ? want : 0;
}

void ParallelCoordinator::BeginEpoch(int shards) {
  for (int s = static_cast<int>(views_.size()); s < shards; ++s) {
    views_.push_back(std::make_unique<ShardView>(machine_.dram(), machine_.nvm()));
  }
  for (int s = 0; s < shards; ++s) {
    ShardView& view = *views_[static_cast<size_t>(s)];
    view.dram = machine_.dram();
    view.nvm = machine_.nvm();
    // View stats are epoch deltas; the merge adds them back. Device tracers
    // only fire on bulk transfers, which cannot happen inside an epoch
    // (fully mapped, no migrations) — detach anyway so a view can never
    // write to the shared tracer.
    view.dram.ResetStats();
    view.nvm.ResetStats();
    view.dram.SetTracer(nullptr, 0);
    view.nvm.SetTracer(nullptr, 0);
    view.pebs.Reset();
  }
}

void ParallelCoordinator::BindShard(int shard) {
  ShardView& view = *views_[static_cast<size_t>(shard)];
  internal::tls_shard_devices = {&machine_, &view.dram, &view.nvm, &view.pebs};
}

void ParallelCoordinator::UnbindShard() { internal::tls_shard_devices = {}; }

void ParallelCoordinator::MergeEpoch(SimTime horizon, int shards) {
  merge_scratch_.clear();
  for (int s = 0; s < shards; ++s) {
    merge_scratch_.push_back(&views_[static_cast<size_t>(s)]->dram);
  }
  machine_.dram().MergeShardViews(merge_scratch_, horizon);
  merge_scratch_.clear();
  for (int s = 0; s < shards; ++s) {
    merge_scratch_.push_back(&views_[static_cast<size_t>(s)]->nvm);
  }
  machine_.nvm().MergeShardViews(merge_scratch_, horizon);
  // Sampling: replay the shards' deferred PEBS overflows through the shared
  // buffer in (op start, view order) order — the serial execution order.
  // View order is candidate order (ascending stream id), the same tiebreak
  // the engine's heap rebuild uses.
  pebs_scratch_.clear();
  for (int s = 0; s < shards; ++s) {
    pebs_scratch_.push_back(&views_[static_cast<size_t>(s)]->pebs);
  }
  machine_.pebs().MergeShardSamples(pebs_scratch_.data(), pebs_scratch_.size());
}

}  // namespace hemem
