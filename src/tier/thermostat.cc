#include "tier/thermostat.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace hemem {

class Thermostat::SamplerThread : public PeriodicThread {
 public:
  SamplerThread(Thermostat& owner, SimTime period)
      : PeriodicThread("thermostat", period, /*cpu_share=*/0.5), owner_(owner) {}

  SimTime Tick() override { return owner_.SamplePass(now()); }

 private:
  Thermostat& owner_;
};

Thermostat::Thermostat(Machine& machine, ThermostatParams params)
    : TieredMemoryManager(machine),
      params_(params),
      scaled_budget_(std::max<uint64_t>(
          static_cast<uint64_t>(static_cast<double>(params.migrate_budget_per_pass) /
                                machine.config().label_scale),
          8 * machine.page_bytes())),
      copier_(params.copy_threads),
      rng_(0x7e57a7) {
  // Thermostat has no write counts, so only the read threshold is live: a
  // sampled page is hot when interval accesses reach cold_access_threshold.
  policy::PolicyConfig config;
  config.hot_read_threshold = static_cast<uint32_t>(
      std::min<uint64_t>(params_.cold_access_threshold,
                         std::numeric_limits<uint32_t>::max()));
  config.hot_write_threshold = std::numeric_limits<uint32_t>::max();
  std::string error;
  policy_ = policy::MakePolicy({params_.policy, params_.policy_spec}, config, &error);
  if (policy_ == nullptr) {
    std::fprintf(stderr, "thermostat: %s\n", error.c_str());
    std::abort();
  }
  // Poison-sampled pages need the per-access counting hook; stores stalling
  // on an in-flight migration wait without any extra fault cost.
  tracked_hook_ = true;
  // OnTrackedAccess only advances the calling thread's clock and bumps
  // counters — quantum-safe without flushing device runs.
  batch_quantum_safe_ = true;
  machine.metrics().AddProvider(this, [this](obs::MetricsEmitter& e) {
    e.Emit("thermostat.intervals", tstats_.intervals);
    e.Emit("thermostat.pages_sampled", tstats_.pages_sampled);
    e.Emit("thermostat.poison_faults", tstats_.poison_faults);
  });
}

Thermostat::~Thermostat() = default;

void Thermostat::Start() {
  const SimTime period = std::max<SimTime>(
      static_cast<SimTime>(static_cast<double>(params_.sample_interval) /
                           machine_.config().label_scale),
      100 * kMicrosecond);
  thread_ = std::make_unique<SamplerThread>(*this, period);
  machine_.engine().AddThread(thread_.get());
}

uint64_t Thermostat::Mmap(uint64_t bytes, AllocOptions opts) {
  PageTable& pt = machine_.page_table();
  const uint64_t page = machine_.page_bytes();
  const uint64_t base = pt.ReserveVa(bytes, page);
  Region* region = pt.MapRegion(base, bytes, page, /*managed=*/true, opts.label);
  pages_.reserve(pages_.size() + region->num_pages());
  for (uint64_t i = 0; i < region->num_pages(); ++i) {
    pages_.push_back(PageInfo{region, i, false, 0});
  }
  auto meta = std::make_unique<SpanMeta>();
  meta->first_id = pages_.size() - region->num_pages();
  AttachRegionMeta(*region, std::move(meta));
  stats_.managed_allocs++;
  return base;
}

void Thermostat::OnTrackedAccess(SimThread& thread, Region& region, uint64_t index,
                                 PageEntry&, AccessKind) {
  PageInfo& info = pages_[RegionMetaAs<SpanMeta>(region)->first_id + index];
  if (info.sampled) {
    // Poisoned base pages: every access takes a counting fault.
    info.interval_accesses++;
    tstats_.poison_faults++;
    thread.Advance(params_.poison_fault_cost);
  }
}

void Thermostat::OnUnmapRegion(Region& region) {
  // Disconnect the flat page array (and any sampled ids) from the region.
  const SpanMeta* meta = RegionMetaAs<SpanMeta>(region);
  if (meta == nullptr) {
    return;
  }
  for (uint64_t i = 0; i < region.num_pages(); ++i) {
    pages_[meta->first_id + i].region = nullptr;
  }
}

SimTime Thermostat::SamplePass(SimTime start) {
  tstats_.intervals++;
  const uint64_t page = machine_.page_bytes();
  SimTime t = start;

  // Phase 1: classify the pages sampled in the just-finished interval and
  // migrate accordingly, within the budget.
  uint64_t budget = scaled_budget_;
  for (const size_t id : sampled_ids_) {
    PageInfo& info = pages_[id];
    info.sampled = false;
    if (info.region == nullptr || !EntryOf(info).present) {
      continue;
    }
    PageEntry& entry = EntryOf(info);
    policy::PolicyFeatures features;
    features.reads = info.interval_accesses;
    features.accesses_since_cool = info.interval_accesses;
    features.region_pages = info.region->num_pages();
    features.tier = static_cast<int>(entry.tier);
    const bool hot = policy_->Classify(features).hot;
    // Full decay = interval reset (a 31-bit shift zeroes any realistic count).
    policy::DecayCounter(&info.interval_accesses, policy::kFullDecayEpochs);
    if (budget < page) {
      continue;
    }
    if (hot && entry.tier == Tier::kNvm) {
      const std::optional<uint32_t> frame = machine_.frames(Tier::kDram).Alloc();
      if (!frame.has_value()) {
        continue;  // Thermostat only uses free fast memory for promotion
      }
      entry.wp_until = copier_.Copy(t, machine_.nvm(), machine_.dram(), page);
      t = entry.wp_until;
      machine_.frames(Tier::kNvm).Free(entry.frame);
      entry.frame = *frame;
      entry.tier = Tier::kDram;
      stats_.pages_promoted++;
      stats_.bytes_migrated += page;
      budget -= page;
    } else if (!hot && entry.tier == Tier::kDram) {
      const std::optional<uint32_t> frame = machine_.frames(Tier::kNvm).Alloc();
      if (!frame.has_value()) {
        continue;
      }
      entry.wp_until = copier_.Copy(t, machine_.dram(), machine_.nvm(), page);
      t = entry.wp_until;
      machine_.frames(Tier::kDram).Free(entry.frame);
      entry.frame = *frame;
      entry.tier = Tier::kNvm;
      stats_.pages_demoted++;
      stats_.bytes_migrated += page;
      budget -= page;
    }
  }
  if (!sampled_ids_.empty()) {
    machine_.tlb().ShootdownBatch(machine_.engine(), nullptr, 1);
    t += machine_.tlb().params().initiator_cost;
  }

  // Phase 2: poison a fresh random sample. Splintering a huge page into
  // poisoned base pages costs a shootdown per batch.
  sampled_ids_.clear();
  const auto want = static_cast<size_t>(params_.sample_fraction *
                                        static_cast<double>(pages_.size()));
  for (size_t i = 0; i < want; ++i) {
    const size_t id = rng_.NextBounded(pages_.size());
    PageInfo& info = pages_[id];
    if (info.region == nullptr || info.sampled || !EntryOf(info).present) {
      continue;
    }
    info.sampled = true;
    policy::DecayCounter(&info.interval_accesses, policy::kFullDecayEpochs);
    sampled_ids_.push_back(id);
  }
  tstats_.pages_sampled += sampled_ids_.size();
  if (!sampled_ids_.empty()) {
    machine_.tlb().ShootdownBatch(machine_.engine(), nullptr,
                                  CeilDiv(sampled_ids_.size(), 64));
    t += machine_.tlb().params().initiator_cost;
  }
  return t - start;
}

}  // namespace hemem
