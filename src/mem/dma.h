// I/OAT-style DMA copy engine.
//
// Models the kernel ioctl interface HeMem adds to the Linux ioatdma driver:
// copy requests carry (source device, destination device, bytes) and are
// submitted in batches of up to kMaxBatch (32). The engine owns a set of DMA
// channels; a request occupies one engine channel plus read bandwidth on the
// source device and write bandwidth on the destination device. HeMem's
// measured-best configuration (batch of 4 over 2 concurrent channels) is the
// library default.
//
// The CPU-copy fallback (Nimble-style migration threads) is modeled by
// CpuCopier below: same device bandwidth consumption, but a per-thread copy
// rate cap and CPU occupancy on the migration threads.

#ifndef HEMEM_MEM_DMA_H_
#define HEMEM_MEM_DMA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"
#include "mem/device.h"

namespace hemem {

struct DmaParams {
  int channels = 8;
  double channel_bw = GiBps(5.0);  // per-channel engine throughput
  SimTime submit_overhead = 2 * kMicrosecond;  // ioctl + descriptor setup per batch
  int max_batch = 32;
};

struct CopyRequest {
  MemoryDevice* src = nullptr;
  MemoryDevice* dst = nullptr;
  uint64_t bytes = 0;
};

struct DmaStats {
  uint64_t batches = 0;
  uint64_t copies = 0;
  uint64_t bytes_copied = 0;
};

class DmaEngine {
 public:
  explicit DmaEngine(DmaParams params = DmaParams{});

  // Submits a batch (<= max_batch requests) spread over `channels_to_use`
  // engine channels starting no earlier than `start`. Returns the completion
  // time of the whole batch; if `per_request_done` is non-null it receives
  // each request's own completion time (requests finish as their channel
  // drains, not at the batch barrier).
  SimTime CopyBatch(SimTime start, std::span<const CopyRequest> batch, int channels_to_use,
                    std::vector<SimTime>* per_request_done = nullptr);

  // Single copy convenience.
  SimTime Copy(SimTime start, MemoryDevice& src, MemoryDevice& dst, uint64_t bytes,
               int channels_to_use = 2);

  const DmaParams& params() const { return params_; }
  const DmaStats& stats() const { return stats_; }

  // Observability: with a tracer attached, each batch emits one duration
  // event (submit to last-request-done) onto `track`.
  void SetTracer(obs::EventTracer* tracer, uint32_t track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

 private:
  DmaParams params_;
  std::vector<SimTime> channel_free_;
  DmaStats stats_;
  obs::EventTracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
};

// CPU-thread page copier: `threads` parallel memcpy workers, each moving at
// most `per_thread_bw`. Occupies device bandwidth like DMA but returns the
// CPU time consumed so callers can charge core occupancy.
class CpuCopier {
 public:
  CpuCopier(int threads, double per_thread_bw = GiBps(3.0));

  // Copies `bytes`, splitting across the worker threads. Returns completion.
  SimTime Copy(SimTime start, MemoryDevice& src, MemoryDevice& dst, uint64_t bytes);

  int threads() const { return threads_; }

 private:
  int threads_;
  double per_thread_bw_;
  std::vector<SimTime> worker_free_;
};

}  // namespace hemem

#endif  // HEMEM_MEM_DMA_H_
