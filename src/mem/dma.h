// I/OAT-style DMA copy engine.
//
// Models the kernel ioctl interface HeMem adds to the Linux ioatdma driver:
// copy requests carry (source device, destination device, bytes) and are
// submitted in batches of up to kMaxBatch (32). The engine owns a set of DMA
// channels; a request occupies one engine channel plus read bandwidth on the
// source device and write bandwidth on the destination device. HeMem's
// measured-best configuration (batch of 4 over 2 concurrent channels) is the
// library default.
//
// The CPU-copy fallback (Nimble-style migration threads) is modeled by
// CpuCopier below: same device bandwidth consumption, but a per-thread copy
// rate cap and CPU occupancy on the migration threads.

#ifndef HEMEM_MEM_DMA_H_
#define HEMEM_MEM_DMA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"
#include "mem/device.h"
#include "sim/fault.h"

namespace hemem {

struct DmaParams {
  int channels = 8;
  double channel_bw = GiBps(5.0);  // per-channel engine throughput
  SimTime submit_overhead = 2 * kMicrosecond;  // ioctl + descriptor setup per batch
  int max_batch = 32;

  // Recovery policy for failed batch submissions (see DESIGN.md, "Fault
  // model & recovery"): a batch is attempted at most `max_attempts` times,
  // with an exponentially doubling virtual-time backoff between attempts.
  // Defaults bound the worst-case retry tail (2 failed submits + 20us +
  // 40us of backoff ~= 70us) well inside one 10 ms policy period, so a
  // flaky engine delays a migration pass rather than wedging it.
  int max_attempts = 3;
  SimTime retry_backoff = 20 * kMicrosecond;  // first backoff; doubles per retry
};

struct CopyRequest {
  MemoryDevice* src = nullptr;
  MemoryDevice* dst = nullptr;
  uint64_t bytes = 0;
};

struct DmaStats {
  uint64_t batches = 0;
  uint64_t copies = 0;
  uint64_t bytes_copied = 0;
  uint64_t failed_attempts = 0;    // submissions that errored (injected)
  uint64_t timeouts = 0;           // failed submissions that stalled first
  uint64_t retries = 0;            // re-submissions after a failed attempt
  uint64_t exhausted_batches = 0;  // all attempts failed; caller must fall back
  uint64_t fallback_copies = 0;    // requests completed by the CPU fallback
};

// Outcome of one TryCopyBatch call. On failure (`ok` false) no data moved:
// `done` is when the engine gave up and the caller is expected to fall back
// to a synchronous CPU copy from that time.
struct DmaBatchResult {
  bool ok = true;
  SimTime done = 0;
  int attempts = 1;
};

class DmaEngine {
 public:
  explicit DmaEngine(DmaParams params = DmaParams{});

  // Submits a batch (<= max_batch requests) spread over `channels_to_use`
  // engine channels starting no earlier than `start`; retries failed
  // submissions per the params' backoff policy. Returns the completion time
  // of the whole batch; if `per_request_done` is non-null it receives each
  // request's own completion time (requests finish as their channel drains,
  // not at the batch barrier). On exhausted retries `per_request_done` is
  // left empty.
  DmaBatchResult TryCopyBatch(SimTime start, std::span<const CopyRequest> batch,
                              int channels_to_use,
                              std::vector<SimTime>* per_request_done = nullptr);

  // Legacy fire-and-forget form: returns the batch completion time. Only
  // valid for engines without a fault injector (submission cannot fail).
  SimTime CopyBatch(SimTime start, std::span<const CopyRequest> batch, int channels_to_use,
                    std::vector<SimTime>* per_request_done = nullptr);

  // Single copy convenience.
  SimTime Copy(SimTime start, MemoryDevice& src, MemoryDevice& dst, uint64_t bytes,
               int channels_to_use = 2);

  // Called by a caller that recovered from an exhausted batch with a CPU
  // copy, so the recovery is visible in this engine's metrics.
  void NoteFallback(uint64_t copies) { stats_.fallback_copies += copies; }

  // Fault injection (kDmaFail / kDmaTimeout opportunities, one per batch
  // submission attempt). Attached by the Machine only when the plan carries
  // DMA rules; unattached engines run the exact pre-fault path.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  const DmaParams& params() const { return params_; }
  const DmaStats& stats() const { return stats_; }

  // Observability: with a tracer attached, each batch emits one duration
  // event (submit to last-request-done) onto `track`.
  void SetTracer(obs::EventTracer* tracer, uint32_t track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

 private:
  // One successful batch submission (the pre-fault CopyBatch body).
  SimTime DoCopyBatch(SimTime start, std::span<const CopyRequest> batch, int channels_to_use,
                      std::vector<SimTime>* per_request_done);
  // Engine-side time a batch would nominally occupy; the unit the timeout
  // stall multiplier applies to.
  SimTime NominalBatchTime(std::span<const CopyRequest> batch, int channels_to_use) const;

  DmaParams params_;
  std::vector<SimTime> channel_free_;
  DmaStats stats_;
  FaultInjector* injector_ = nullptr;
  obs::EventTracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
};

// CPU-thread page copier: `threads` parallel memcpy workers, each moving at
// most `per_thread_bw`. Occupies device bandwidth like DMA but returns the
// CPU time consumed so callers can charge core occupancy.
class CpuCopier {
 public:
  CpuCopier(int threads, double per_thread_bw = GiBps(3.0));

  // Copies `bytes`, splitting across the worker threads. Returns completion.
  SimTime Copy(SimTime start, MemoryDevice& src, MemoryDevice& dst, uint64_t bytes);

  int threads() const { return threads_; }

 private:
  int threads_;
  double per_thread_bw_;
  std::vector<SimTime> worker_free_;
};

}  // namespace hemem

#endif  // HEMEM_MEM_DMA_H_
