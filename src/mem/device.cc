#include "mem/device.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <iterator>

#include "obs/trace.h"

namespace hemem {

DeviceParams DeviceParams::Dram(uint64_t capacity) {
  DeviceParams p;
  p.name = "dram";
  p.capacity = capacity;
  p.read_latency = 82;
  p.write_latency = 82;
  // 107 GB/s read / 80 GB/s write aggregate (Table 1), spread over 16
  // logical channels so per-thread streaming gets ~6.7 GB/s and aggregate
  // keeps scaling to 24 threads as in Figure 1.
  p.read_channels = 16;
  p.write_channels = 16;
  p.read_channel_bw = GiBps(107.0 / 16.0);
  p.write_channel_bw = GiBps(80.0 / 16.0);
  p.media_granularity = 64;
  p.random_read_penalty = 18;   // row-buffer miss / lost prefetch
  p.random_write_penalty = 12;  // write combining hides part of it
  p.mlp = 8.0;
  return p;
}

DeviceParams DeviceParams::OptaneNvm(uint64_t capacity) {
  DeviceParams p;
  p.name = "nvm";
  p.capacity = capacity;
  p.read_latency = 175;
  p.write_latency = 94;  // stores complete into the write-pending queue
  // 32 GB/s read over 8 channels (random reads keep scaling with threads,
  // Fig. 1); 11.2 GB/s write over 4 channels (saturates at 4 threads).
  p.read_channels = 8;
  p.write_channels = 4;
  p.read_channel_bw = GiBps(32.0 / 8.0);
  p.write_channel_bw = GiBps(11.2 / 4.0);
  p.media_granularity = 256;
  p.random_read_penalty = 40;  // XPLine fetch without buffer reuse
  p.random_write_penalty = 60;
  p.mlp = 4.0;  // fewer useful outstanding misses on Optane
  return p;
}

MemoryDevice::MemoryDevice(DeviceParams params)
    : params_(std::move(params)), stream_last_end_(kMaxStreams, ~0ull) {
  // ReserveChannel packs (free_time, index) into one key with 5 index bits.
  assert(params_.read_channels >= 1 && params_.read_channels <= 32);
  assert(params_.write_channels >= 1 && params_.write_channels <= 32);
  read_.channel_free.assign(static_cast<size_t>(params_.read_channels), 0);
  write_.channel_free.assign(static_cast<size_t>(params_.write_channels), 0);
  read_.channel_bw = params_.read_channel_bw;
  read_.latency = params_.read_latency;
  read_.random_penalty = params_.random_read_penalty;
  write_.channel_bw = params_.write_channel_bw;
  write_.latency = params_.write_latency;
  write_.random_penalty = params_.random_write_penalty;
  read_.exposed_latency =
      static_cast<SimTime>(static_cast<double>(read_.latency) / params_.mlp);
  write_.exposed_latency =
      static_cast<SimTime>(static_cast<double>(write_.latency) / params_.mlp);
  if (std::has_single_bit(params_.media_granularity)) {
    media_mask_ = params_.media_granularity - 1;
  }
}

SimTime MemoryDevice::ReserveChannel(Direction& dir, SimTime start, SimTime busy) {
  // Earliest-free channel; ties broken by lowest index for determinism.
  // Packing (free_time << 5 | index) turns the argmin-with-tie-break into a
  // branchless min reduction; lossless for <= 32 channels (ctor-asserted)
  // and free times below 2^58 ns (~9 simulated years).
  auto& free = dir.channel_free;
  const size_t n = free.size();
  // Two accumulators halve the dependent-min chain; min is associative and
  // commutative over distinct keys, so the result is unchanged.
  uint64_t best0 = static_cast<uint64_t>(free[0]) << 5;
  uint64_t best1 = ~0ull;
  size_t i = 1;
  for (; i + 1 < n; i += 2) {
    best0 = std::min(best0, (static_cast<uint64_t>(free[i]) << 5) | i);
    best1 = std::min(best1, (static_cast<uint64_t>(free[i + 1]) << 5) | (i + 1));
  }
  if (i < n) {
    best0 = std::min(best0, (static_cast<uint64_t>(free[i]) << 5) | i);
  }
  const uint64_t best = std::min(best0, best1);
  const SimTime begin = std::max(start, static_cast<SimTime>(best >> 5));
  free[best & 31] = begin + busy;
  // Maintain the ChannelPressure bounds: the popped argmin is the exact min
  // at this instant and a valid lower bound afterwards (free times only
  // grow); the max is exact incrementally.
  dir.earliest_free_lb = static_cast<SimTime>(best >> 5);
  dir.latest_free = std::max(dir.latest_free, begin + busy);
  return begin;
}

template <bool kAttributed>
SimTime MemoryDevice::AccessImpl(SimTime start, uint64_t addr, uint32_t size,
                                 AccessKind kind, uint32_t stream_id,
                                 AccessBreakdown* split) {
  assert(size > 0);
  Direction& dir = kind == AccessKind::kLoad ? read_ : write_;

  // Sequential-stream detection: the access continues a stream if it starts
  // exactly where the stream's previous access ended (prefetchers tolerate
  // small strides; exact continuation is what our generators emit).
  const size_t slot = stream_id % kMaxStreams;
  const bool sequential = stream_last_end_[slot] == addr;
  stream_last_end_[slot] = addr + size;

  const uint64_t media_bytes = media_mask_ != 0
                                   ? (static_cast<uint64_t>(size) + media_mask_) & ~media_mask_
                                   : RoundUp(size, params_.media_granularity);
  if (media_bytes != dir.memo_media_bytes) {
    dir.memo_media_bytes = media_bytes;
    dir.memo_busy = static_cast<SimTime>(static_cast<double>(media_bytes) / dir.channel_bw);
  }
  SimTime busy = dir.memo_busy;
  if (!sequential) {
    busy += dir.random_penalty;
  }

  // Latency exposure: a streaming access hides latency behind prefetch; a
  // random access exposes latency/mlp because the thread keeps several
  // misses in flight.
  SimTime exposed = 0;
  if (!sequential) {
    exposed = dir.exposed_latency;
  }

  if (degraded_) [[unlikely]] {
    const double m = DegradeMultiplier(start);
    if (m != 1.0) {
      busy = static_cast<SimTime>(static_cast<double>(busy) * m);
      exposed = static_cast<SimTime>(static_cast<double>(exposed) * m);
      stats_.degraded_accesses++;
    }
  }

  const SimTime begin = ReserveChannel(dir, start, busy);
  const uint64_t queue_delay = static_cast<uint64_t>(begin - start);
  stats_.queue_delay_total_ns += queue_delay;
  stats_.queue_delay_max_ns = std::max(stats_.queue_delay_max_ns, queue_delay);

  if (kind == AccessKind::kLoad) {
    stats_.loads++;
    stats_.bytes_requested_read += size;
    stats_.media_bytes_read += media_bytes;
  } else {
    stats_.stores++;
    stats_.bytes_requested_written += size;
    stats_.media_bytes_written += media_bytes;
  }
  if (sequential) {
    stats_.sequential_hits++;
  }

  if constexpr (kAttributed) {
    split->queue = begin - start;
    split->media = busy + exposed;
  }

  return begin + busy + exposed;
}

SimTime MemoryDevice::Access(SimTime start, uint64_t addr, uint32_t size, AccessKind kind,
                             uint32_t stream_id) {
  return AccessImpl<false>(start, addr, size, kind, stream_id, nullptr);
}

SimTime MemoryDevice::AccessAttributed(SimTime start, uint64_t addr, uint32_t size,
                                       AccessKind kind, uint32_t stream_id,
                                       AccessBreakdown* split) {
  return AccessImpl<true>(start, addr, size, kind, stream_id, split);
}

SimTime MemoryDevice::BulkTransfer(SimTime start, uint64_t bytes, AccessKind kind) {
  Direction& dir = kind == AccessKind::kLoad ? read_ : write_;
  SimTime busy = static_cast<SimTime>(static_cast<double>(bytes) / dir.channel_bw);
  if (degraded_) [[unlikely]] {
    busy = static_cast<SimTime>(static_cast<double>(busy) * DegradeMultiplier(start));
  }
  const SimTime begin = ReserveChannel(dir, start, busy);
  if (kind == AccessKind::kLoad) {
    stats_.bytes_requested_read += bytes;
    stats_.media_bytes_read += bytes;
  } else {
    stats_.bytes_requested_written += bytes;
    stats_.media_bytes_written += bytes;
  }
  if (tracer_ != nullptr) [[unlikely]] {
    tracer_->Duration(trace_track_,
                      kind == AccessKind::kLoad ? "bulk_read" : "bulk_write",
                      "device", begin, begin + busy,
                      {{"bytes", static_cast<double>(bytes)}});
  }
  return begin + busy;
}

double MemoryDevice::DegradeMultiplier(SimTime at) const {
  if (at < degrade_.start || at >= degrade_.end) {
    return 1.0;
  }
  double m = degrade_.multiplier;
  if (degrade_.wear_factor > 0.0 && params_.capacity > 0) {
    // Wear acceleration: the device slows further as media writes accumulate
    // (Optane's degradation under sustained write traffic, paper Fig. 16).
    m *= 1.0 + degrade_.wear_factor * static_cast<double>(stats_.media_bytes_written) /
                   static_cast<double>(params_.capacity);
  }
  return m;
}

void MemoryDevice::BatchRun::Open(SimTime start) {
  open_ = true;
  // Fast-path eligibility bound: the furthest access-start time provably
  // outside the degrade window. Before the window the edge is its start;
  // past it (or undegraded) there is no edge. An access inside the window
  // computes fast_until_ = start, so it (and everything after, until the
  // window passes) takes the exact scalar path.
  if (!dev_.degraded_) {
    fast_until_ = std::numeric_limits<SimTime>::max();
  } else if (start >= dev_.degrade_.end) {
    fast_until_ = std::numeric_limits<SimTime>::max();
  } else if (start < dev_.degrade_.start) {
    fast_until_ = dev_.degrade_.start;
  } else {
    fast_until_ = start;
  }
  last_end_ = dev_.stream_last_end_[slot_];
  InitDir(read_run_, dev_.read_);
  InitDir(write_run_, dev_.write_);
}

void MemoryDevice::BatchRun::InitDir(DirRun& d, Direction& dir) {
  d.dir = &dir;
  d.channels = static_cast<uint32_t>(dir.channel_free.size());
  for (uint32_t i = 0; i < d.channels; ++i) {
    d.ring[i] = (static_cast<uint64_t>(dir.channel_free[i]) << 5) | i;
  }
  // Ascending packed keys: the head is exactly the scalar argmin (earliest
  // free time, ties to the lowest channel index).
  std::sort(d.ring, d.ring + d.channels);
  d.head = 0;
  d.max_free = static_cast<SimTime>(d.ring[d.channels - 1] >> 5);
  d.earliest_lb = dir.earliest_free_lb;
  // The run's memo is keyed on raw size; the device's on media bytes. The
  // mapping is many-to-one, so start unkeyed and inherit the busy pair for
  // the flush-back (identical when no access recomputes it).
  d.memo_size = ~0ull;
  d.memo_media_bytes = dir.memo_media_bytes;
  d.memo_busy = dir.memo_busy;
  d.accesses = 0;
  d.bytes_requested = 0;
  d.media_bytes = 0;
  d.sequential_hits = 0;
}

void MemoryDevice::BatchRun::FlushDir(DirRun& d) {
  for (uint32_t i = 0; i < d.channels; ++i) {
    const uint64_t key = d.ring[(d.head + i) & 31];
    d.dir->channel_free[key & 31] = static_cast<SimTime>(key >> 5);
  }
  d.dir->memo_media_bytes = d.memo_media_bytes;
  d.dir->memo_busy = d.memo_busy;
  d.dir->earliest_free_lb = d.earliest_lb;
  d.dir->latest_free = std::max(d.dir->latest_free, d.max_free);
}

void MemoryDevice::BatchRun::Close() {
  if (!open_) {
    return;
  }
  open_ = false;
  dev_.stream_last_end_[slot_] = last_end_;
  FlushDir(read_run_);
  FlushDir(write_run_);
  DeviceStats& s = dev_.stats_;
  s.loads += read_run_.accesses;
  s.bytes_requested_read += read_run_.bytes_requested;
  s.media_bytes_read += read_run_.media_bytes;
  s.stores += write_run_.accesses;
  s.bytes_requested_written += write_run_.bytes_requested;
  s.media_bytes_written += write_run_.media_bytes;
  s.sequential_hits += read_run_.sequential_hits + write_run_.sequential_hits;
  // Fast-path accesses have begin == start by the regime guard, so the
  // queue-delay total adds zero, the max is unchanged, and no access was
  // degraded — those stats need no flush.
}

SimTime MemoryDevice::BatchRun::ScalarAccess(SimTime start, uint64_t addr, uint32_t size,
                                             AccessKind kind) {
  Close();
  return dev_.Access(start, addr, size, kind, stream_id_);
}

void MemoryDevice::MergeDirection(Direction& dir, bool read_dir,
                                  const std::vector<const MemoryDevice*>& views,
                                  SimTime horizon) {
  // Quick out when no view touched this direction (bytes_requested covers
  // Access and BulkTransfer alike — view stats are epoch deltas).
  bool touched = false;
  for (const MemoryDevice* v : views) {
    touched |= (read_dir ? v->stats_.bytes_requested_read
                         : v->stats_.bytes_requested_written) != 0;
  }
  if (!touched) {
    return;
  }

  // Channel free times merge as a multiset: only the multiset is observable
  // (the argmin pops the minimum value; tie-broken indices only select which
  // slot is rewritten, a permutation). Reservations outliving the horizon
  // appear verbatim in every view — under the epoch gate begin == start <
  // horizon for every epoch access, so an inherited > horizon value is never
  // the popped argmin and never changes — so take the base's copy once, then
  // add each view's own new > horizon reservations (multiset difference
  // against the base). Every remaining slot drained by the horizon pins to
  // the horizon itself: every post-epoch access starts at or after it, so
  // the drained values' exact history is unobservable.
  std::vector<SimTime> base_over;
  for (const SimTime free : dir.channel_free) {
    if (free > horizon) {
      base_over.push_back(free);
    }
  }
  std::sort(base_over.begin(), base_over.end());
  std::vector<SimTime> merged = base_over;
  std::vector<SimTime> view_over;
  std::vector<SimTime> fresh;
  for (const MemoryDevice* v : views) {
    const Direction& vd = read_dir ? v->read_ : v->write_;
    view_over.clear();
    for (const SimTime free : vd.channel_free) {
      if (free > horizon) {
        view_over.push_back(free);
      }
    }
    std::sort(view_over.begin(), view_over.end());
    fresh.clear();
    std::set_difference(view_over.begin(), view_over.end(), base_over.begin(),
                        base_over.end(), std::back_inserter(fresh));
    merged.insert(merged.end(), fresh.begin(), fresh.end());
  }
  assert(merged.size() <= dir.channel_free.size() &&
         "epoch gate must bound in-flight reservations to the channel count");
  size_t i = 0;
  for (; i < merged.size(); ++i) {
    dir.channel_free[i] = merged[i];
  }
  for (; i < dir.channel_free.size(); ++i) {
    dir.channel_free[i] = horizon;
  }

  // Pressure bounds: the exact min is a valid earliest-free lower bound (and
  // no post-epoch query can observe the difference from the serial bound —
  // queries at >= horizon see the same drained/backed-up partition); the max
  // over all views' reservations is the exact running max.
  dir.earliest_free_lb = *std::min_element(dir.channel_free.begin(), dir.channel_free.end());
  for (const MemoryDevice* v : views) {
    const Direction& vd = read_dir ? v->read_ : v->write_;
    dir.latest_free = std::max(dir.latest_free, vd.latest_free);
  }

  // The busy memo caches a pure function of (media bytes, channel bw); any
  // view's pair is valid. Take the last touching view's, matching its most
  // recent compute.
  for (const MemoryDevice* v : views) {
    const Direction& vd = read_dir ? v->read_ : v->write_;
    if ((read_dir ? v->stats_.bytes_requested_read : v->stats_.bytes_requested_written) !=
        0) {
      dir.memo_media_bytes = vd.memo_media_bytes;
      dir.memo_busy = vd.memo_busy;
    }
  }
}

void MemoryDevice::MergeShardViews(const std::vector<const MemoryDevice*>& views,
                                   SimTime horizon) {
  MergeDirection(read_, /*read_dir=*/true, views, horizon);
  MergeDirection(write_, /*read_dir=*/false, views, horizon);

  // Stream-detector slots: views touch disjoint slots (the gate requires
  // distinct stream ids below kStreamSlots), so copy every slot a view
  // moved, comparing against the pre-merge base snapshot.
  const std::vector<uint64_t> base_streams = stream_last_end_;
  for (const MemoryDevice* v : views) {
    for (size_t i = 0; i < base_streams.size(); ++i) {
      if (v->stream_last_end_[i] != base_streams[i]) {
        stream_last_end_[i] = v->stream_last_end_[i];
      }
    }
  }

  // Stats are epoch deltas (views reset at epoch start): sums, except the
  // max-of-maxes for the queue-delay high-water mark.
  for (const MemoryDevice* v : views) {
    const DeviceStats& s = v->stats_;
    stats_.loads += s.loads;
    stats_.stores += s.stores;
    stats_.bytes_requested_read += s.bytes_requested_read;
    stats_.bytes_requested_written += s.bytes_requested_written;
    stats_.media_bytes_read += s.media_bytes_read;
    stats_.media_bytes_written += s.media_bytes_written;
    stats_.sequential_hits += s.sequential_hits;
    stats_.queue_delay_total_ns += s.queue_delay_total_ns;
    stats_.queue_delay_max_ns = std::max(stats_.queue_delay_max_ns, s.queue_delay_max_ns);
    stats_.degraded_accesses += s.degraded_accesses;
  }
}

double MemoryDevice::ChannelPressure(SimTime at, AccessKind kind) const {
  const Direction& dir = kind == AccessKind::kLoad ? read_ : write_;
  // O(1) common cases from the incrementally-maintained bounds. latest_free
  // is the exact max free time, so at >= latest_free means every channel has
  // drained. earliest_free_lb never exceeds the true min, so at below it
  // means every channel is still busy. Both answers equal what the scan
  // would return; only the transition band (some channels drained) scans.
  if (at >= dir.latest_free) {
    return 0.0;
  }
  if (at < dir.earliest_free_lb) {
    return 1.0;
  }
  int backed_up = 0;
  for (const SimTime free : dir.channel_free) {
    if (free > at) {
      backed_up++;
    }
  }
  return static_cast<double>(backed_up) / static_cast<double>(dir.channel_free.size());
}

}  // namespace hemem
