#include "mem/dma.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"

namespace hemem {

namespace {

// Earliest-free slot reservation shared by the engine and the CPU copier.
SimTime ReserveSlot(std::vector<SimTime>& free_at, SimTime start, SimTime busy) {
  size_t best = 0;
  for (size_t i = 1; i < free_at.size(); ++i) {
    if (free_at[i] < free_at[best]) {
      best = i;
    }
  }
  const SimTime begin = std::max(start, free_at[best]);
  free_at[best] = begin + busy;
  return begin;
}

}  // namespace

DmaEngine::DmaEngine(DmaParams params) : params_(params) {
  channel_free_.assign(static_cast<size_t>(params_.channels), 0);
}

DmaBatchResult DmaEngine::TryCopyBatch(SimTime start, std::span<const CopyRequest> batch,
                                       int channels_to_use,
                                       std::vector<SimTime>* per_request_done) {
  SimTime t = start;
  SimTime backoff = params_.retry_backoff;
  for (int attempt = 1;; ++attempt) {
    const FaultRule* fault = nullptr;
    bool timed_out = false;
    if (injector_ != nullptr) [[unlikely]] {
      fault = injector_->Fire(FaultKind::kDmaFail, t);
      if (fault == nullptr) {
        fault = injector_->Fire(FaultKind::kDmaTimeout, t);
        timed_out = fault != nullptr;
      }
    }
    if (fault == nullptr) [[likely]] {
      return {true, DoCopyBatch(t, batch, channels_to_use, per_request_done), attempt};
    }
    // Failed submission: the ioctl and descriptor setup were still paid; a
    // timeout additionally stalls for a multiple of the batch's nominal
    // engine time before the error surfaces.
    stats_.failed_attempts++;
    t += params_.submit_overhead;
    if (timed_out) {
      stats_.timeouts++;
      t += static_cast<SimTime>(fault->magnitude *
                                static_cast<double>(NominalBatchTime(batch, channels_to_use)));
    }
    if (tracer_ != nullptr) {
      tracer_->Instant(trace_track_, timed_out ? "dma_timeout" : "dma_fail", "migration", t,
                       {{"attempt", static_cast<double>(attempt)}});
    }
    if (attempt >= params_.max_attempts) {
      stats_.exhausted_batches++;
      if (per_request_done != nullptr) {
        per_request_done->clear();
      }
      return {false, t, attempt};
    }
    stats_.retries++;
    t += backoff;
    backoff *= 2;
  }
}

SimTime DmaEngine::CopyBatch(SimTime start, std::span<const CopyRequest> batch,
                             int channels_to_use, std::vector<SimTime>* per_request_done) {
  const DmaBatchResult result = TryCopyBatch(start, batch, channels_to_use, per_request_done);
  assert(result.ok && "CopyBatch requires a fault-free engine; use TryCopyBatch");
  return result.done;
}

SimTime DmaEngine::NominalBatchTime(std::span<const CopyRequest> batch,
                                    int channels_to_use) const {
  uint64_t bytes = 0;
  for (const CopyRequest& req : batch) {
    bytes += req.bytes;
  }
  return params_.submit_overhead +
         static_cast<SimTime>(static_cast<double>(bytes) /
                              (params_.channel_bw * static_cast<double>(channels_to_use)));
}

SimTime DmaEngine::DoCopyBatch(SimTime start, std::span<const CopyRequest> batch,
                               int channels_to_use, std::vector<SimTime>* per_request_done) {
  assert(static_cast<int>(batch.size()) <= params_.max_batch);
  assert(channels_to_use >= 1 && channels_to_use <= params_.channels);
  if (per_request_done != nullptr) {
    per_request_done->clear();
  }

  const SimTime issue = start + params_.submit_overhead;
  const uint64_t bytes_before = stats_.bytes_copied;
  SimTime done = issue;
  // Requests round-robin over the selected engine channels; each request is
  // limited by the slowest of: its engine channel, source read bandwidth,
  // destination write bandwidth.
  std::vector<SimTime> lane_free(static_cast<size_t>(channels_to_use), issue);
  int lane = 0;
  for (const CopyRequest& req : batch) {
    assert(req.src != nullptr && req.dst != nullptr);
    const SimTime engine_busy =
        static_cast<SimTime>(static_cast<double>(req.bytes) / params_.channel_bw);
    // Engine channel availability gates the start...
    const SimTime engine_begin = ReserveSlot(channel_free_, std::max(issue, lane_free[lane]),
                                             engine_busy);
    // ...then the copy streams through both devices.
    const SimTime src_done = req.src->BulkTransfer(engine_begin, req.bytes, AccessKind::kLoad);
    const SimTime dst_done = req.dst->BulkTransfer(engine_begin, req.bytes, AccessKind::kStore);
    const SimTime req_done = std::max({engine_begin + engine_busy, src_done, dst_done});
    lane_free[lane] = req_done;
    done = std::max(done, req_done);
    lane = (lane + 1) % channels_to_use;
    if (per_request_done != nullptr) {
      per_request_done->push_back(req_done);
    }

    stats_.copies++;
    stats_.bytes_copied += req.bytes;
  }
  stats_.batches++;
  if (tracer_ != nullptr) [[unlikely]] {
    tracer_->Duration(trace_track_, "dma_batch", "migration", start, done,
                      {{"copies", static_cast<double>(batch.size())},
                       {"bytes", static_cast<double>(stats_.bytes_copied - bytes_before)}});
  }
  return done;
}

SimTime DmaEngine::Copy(SimTime start, MemoryDevice& src, MemoryDevice& dst, uint64_t bytes,
                        int channels_to_use) {
  const CopyRequest req{&src, &dst, bytes};
  return CopyBatch(start, std::span<const CopyRequest>(&req, 1), channels_to_use);
}

CpuCopier::CpuCopier(int threads, double per_thread_bw)
    : threads_(threads), per_thread_bw_(per_thread_bw) {
  worker_free_.assign(static_cast<size_t>(threads), 0);
}

SimTime CpuCopier::Copy(SimTime start, MemoryDevice& src, MemoryDevice& dst, uint64_t bytes) {
  // Split the copy over the workers; each chunk is gated by the worker's own
  // throughput plus the shared device channels.
  const uint64_t chunk = CeilDiv(bytes, static_cast<uint64_t>(threads_));
  SimTime done = start;
  uint64_t remaining = bytes;
  for (int i = 0; i < threads_ && remaining > 0; ++i) {
    const uint64_t n = std::min<uint64_t>(chunk, remaining);
    remaining -= n;
    const SimTime busy = static_cast<SimTime>(static_cast<double>(n) / per_thread_bw_);
    const SimTime begin = ReserveSlot(worker_free_, start, busy);
    const SimTime src_done = src.BulkTransfer(begin, n, AccessKind::kLoad);
    const SimTime dst_done = dst.BulkTransfer(begin, n, AccessKind::kStore);
    done = std::max({done, begin + busy, src_done, dst_done});
  }
  return done;
}

}  // namespace hemem
