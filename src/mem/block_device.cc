#include "mem/block_device.h"

#include <algorithm>

namespace hemem {

BlockDevice::BlockDevice(BlockDeviceParams params) : params_(params) {
  slot_free_.assign(static_cast<size_t>(params_.queue_depth), 0);
}

SimTime BlockDevice::Submit(SimTime start, uint64_t bytes, double bw) {
  const uint64_t io_bytes = RoundUp(std::max<uint64_t>(bytes, 1), params_.sector_bytes);
  const SimTime busy =
      params_.access_latency + static_cast<SimTime>(static_cast<double>(io_bytes) / bw);
  size_t best = 0;
  for (size_t i = 1; i < slot_free_.size(); ++i) {
    if (slot_free_[i] < slot_free_[best]) {
      best = i;
    }
  }
  const SimTime begin = std::max(start, slot_free_[best]);
  slot_free_[best] = begin + busy;
  return begin + busy;
}

SimTime BlockDevice::Read(SimTime start, uint64_t bytes) {
  stats_.reads++;
  stats_.bytes_read += bytes;
  return Submit(start, bytes, params_.read_bw);
}

SimTime BlockDevice::Write(SimTime start, uint64_t bytes) {
  stats_.writes++;
  stats_.bytes_written += bytes;
  return Submit(start, bytes, params_.write_bw);
}

SwapSpace::SwapSpace(uint64_t capacity_bytes, uint64_t slot_bytes)
    : total_slots_(capacity_bytes / slot_bytes), slot_bytes_(slot_bytes) {}

uint32_t SwapSpace::Alloc() {
  if (!free_list_.empty()) {
    const uint32_t slot = free_list_.back();
    free_list_.pop_back();
    used_++;
    return slot;
  }
  if (next_fresh_ < total_slots_) {
    used_++;
    return static_cast<uint32_t>(next_fresh_++);
  }
  return UINT32_MAX;
}

void SwapSpace::Free(uint32_t slot) {
  used_--;
  free_list_.push_back(slot);
}

}  // namespace hemem
