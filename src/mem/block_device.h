// Block-device timing model for the swap tier.
//
// The paper's Section 3.4 notes that swapping to a block device can provide
// an additional, slowest memory tier below NVM ("both fast and slow memory
// are backed by files and the file system can be configured ... to swap
// files in memory to disk"). This models an NVMe-class SSD: fixed
// per-request access latency, sequential bandwidth, queue depth realized as
// parallel slots, and 4 KiB sector granularity.

#ifndef HEMEM_MEM_BLOCK_DEVICE_H_
#define HEMEM_MEM_BLOCK_DEVICE_H_

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace hemem {

struct BlockDeviceParams {
  uint64_t capacity = 0;
  SimTime access_latency = 10 * kMicrosecond;  // submission + flash access
  double read_bw = GiBps(3.0);
  double write_bw = GiBps(2.0);
  int queue_depth = 8;  // concurrent in-flight requests
  uint64_t sector_bytes = KiB(4);

  static BlockDeviceParams NvmeSsd(uint64_t capacity) {
    BlockDeviceParams p;
    p.capacity = capacity;
    return p;
  }
};

struct BlockDeviceStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

class BlockDevice {
 public:
  explicit BlockDevice(BlockDeviceParams params);

  // Times one request of `bytes` (rounded up to sectors) starting no earlier
  // than `start`; returns completion.
  SimTime Read(SimTime start, uint64_t bytes);
  SimTime Write(SimTime start, uint64_t bytes);

  const BlockDeviceParams& params() const { return params_; }
  const BlockDeviceStats& stats() const { return stats_; }
  uint64_t capacity() const { return params_.capacity; }

 private:
  SimTime Submit(SimTime start, uint64_t bytes, double bw);

  BlockDeviceParams params_;
  std::vector<SimTime> slot_free_;
  BlockDeviceStats stats_;
};

// Swap-slot allocator over the device's capacity.
class SwapSpace {
 public:
  SwapSpace(uint64_t capacity_bytes, uint64_t slot_bytes);

  // Returns a slot index, or UINT32_MAX when the swap space is full.
  uint32_t Alloc();
  void Free(uint32_t slot);

  uint64_t used_slots() const { return used_; }
  uint64_t total_slots() const { return total_slots_; }
  uint64_t slot_bytes() const { return slot_bytes_; }

 private:
  uint64_t total_slots_;
  uint64_t slot_bytes_;
  uint64_t used_ = 0;
  uint64_t next_fresh_ = 0;
  std::vector<uint32_t> free_list_;
};

}  // namespace hemem

#endif  // HEMEM_MEM_BLOCK_DEVICE_H_
