// Channelized memory-device timing model (DRAM and Optane DC NVM).
//
// The model is parameterized directly from the paper's Table 1 and the
// device study in its Section 2.2:
//
//   * per-direction latency (DRAM 82 ns; Optane 175 ns load / 94 ns store),
//   * per-direction bandwidth realized as N channels x per-channel bandwidth,
//     so saturation emerges naturally (Optane writes saturate at ~4 threads),
//   * media access granularity (64 B DRAM, 256 B Optane) — accesses smaller
//     than the granularity still occupy a full media block, which both
//     throttles small random NVM accesses (Figure 2) and inflates wear,
//   * a random-access penalty modeling row misses / ineffective prefetch; a
//     per-stream sequential detector waives it for streaming access,
//   * memory-level parallelism (MLP): an application thread overlaps several
//     outstanding misses, so the latency exposed per dependent access is
//     latency/mlp rather than the full round trip.
//
// An access reserves the earliest-free channel at a time >= the caller's
// clock and returns the completion time; callers (tiering managers) advance
// the calling thread to that completion. Wear (media bytes written) is
// tracked for the paper's Figure 16.

#ifndef HEMEM_MEM_DEVICE_H_
#define HEMEM_MEM_DEVICE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/fault.h"

namespace hemem {

namespace obs {
class EventTracer;
}

enum class AccessKind : uint8_t { kLoad, kStore };

struct DeviceParams {
  std::string name;
  uint64_t capacity = 0;

  SimTime read_latency = 0;
  SimTime write_latency = 0;

  int read_channels = 1;
  int write_channels = 1;
  double read_channel_bw = 1.0;   // bytes per nanosecond
  double write_channel_bw = 1.0;  // bytes per nanosecond

  uint64_t media_granularity = 64;  // bytes occupied per access at minimum
  SimTime random_read_penalty = 0;  // extra channel occupancy per non-streaming access
  SimTime random_write_penalty = 0;
  double mlp = 8.0;  // outstanding misses a thread overlaps

  // DDR4 DRAM per the paper's testbed (6 channels/socket; modeled as 16
  // logical channels so bandwidth keeps scaling past 16 threads as in Fig. 1).
  static DeviceParams Dram(uint64_t capacity);
  // Intel Optane DC per Table 1 / the Section 2.2 study.
  static DeviceParams OptaneNvm(uint64_t capacity);
};

struct DeviceStats {
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t bytes_requested_read = 0;
  uint64_t bytes_requested_written = 0;
  // Media-granularity traffic: what the device actually moved. The write
  // figure is the wear metric.
  uint64_t media_bytes_read = 0;
  uint64_t media_bytes_written = 0;
  uint64_t sequential_hits = 0;
  // Channel-queue waiting observed by Access() calls (begin - start).
  uint64_t queue_delay_total_ns = 0;
  uint64_t queue_delay_max_ns = 0;
  // Accesses slowed by injected device degradation (fault plans only).
  uint64_t degraded_accesses = 0;
};

class MemoryDevice {
 public:
  explicit MemoryDevice(DeviceParams params);

  // Times one access of `size` bytes at device-relative address `addr`,
  // issued no earlier than `start` by stream `stream_id` (stream identity
  // feeds the sequential detector; use the logical thread index).
  // Returns the completion time visible to the issuing thread.
  SimTime Access(SimTime start, uint64_t addr, uint32_t size, AccessKind kind,
                 uint32_t stream_id);

  // Queue-vs-media decomposition of one access's device time:
  //   queue — channel-queue wait (begin - start),
  //   media — channel occupancy plus exposed latency (completion - begin).
  // queue + media == AccessAttributed() - start, exactly.
  struct AccessBreakdown {
    SimTime queue = 0;
    SimTime media = 0;
  };

  // Access() with the breakdown reported. Identical arithmetic — both are
  // thin wrappers over one shared template whose kAttributed=false
  // instantiation *is* the plain Access body, so the split costs the hot
  // path nothing (not even a dead branch; see the tracing note below).
  // Used by the observed access skeleton (Machine::EnableAccessObservation).
  SimTime AccessAttributed(SimTime start, uint64_t addr, uint32_t size,
                           AccessKind kind, uint32_t stream_id,
                           AccessBreakdown* split);

  // Times a bulk, streaming transfer (page migration / DMA traffic): occupies
  // channel bandwidth but exposes no per-access latency. Returns completion.
  SimTime BulkTransfer(SimTime start, uint64_t bytes, AccessKind kind);

  // Fraction of channels still busy at `at` for the given direction; a cheap
  // approximation from channel free times, used by policies that want to
  // probe for spare bandwidth. Warm for HeMem's policy thread, so the common
  // cases answer O(1) from incrementally-maintained per-direction bounds
  // (all channels drained / all channels backed up); only the narrow
  // transition band scans the channel array.
  double ChannelPressure(SimTime at, AccessKind kind) const;

  const DeviceParams& params() const { return params_; }
  const DeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DeviceStats{}; }
  uint64_t capacity() const { return params_.capacity; }

  // Observability: with a tracer attached, bulk transfers (migration and
  // zero-fill traffic) emit channel-busy intervals onto `track`. Per-access
  // tracing is deliberately absent — Access() is the simulator's hottest
  // function and must not grow even a dead branch when tracing is off.
  void SetTracer(obs::EventTracer* tracer, uint32_t track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

  // Fault injection: applies a latency/bandwidth multiplier to accesses and
  // bulk transfers inside the degrade window, optionally growing with wear
  // (media bytes written / capacity). Attached by the Machine only when the
  // plan degrades this device; undegraded devices take no extra branch
  // beyond one predictable flag test.
  void SetDegrade(const DeviceDegrade& degrade) {
    degrade_ = degrade;
    degraded_ = degrade.active;
  }

  // ---- Sharded-epoch support (DESIGN.md "Parallel engine & epoch barriers")

  // Streams with distinct ids below this bound use distinct detector slots;
  // the epoch gate requires it so per-shard views touch disjoint slots.
  static constexpr int kStreamSlots = 512;

  // Channels still reserved past `t` in the given direction. The gate's
  // continuity check: with B inherited-busy channels and K concurrent
  // streams, B + K <= channels guarantees begin == start for every access in
  // the epoch window (each stream holds at most one in-flight reservation at
  // any other stream's reservation instant).
  int BusyChannelsAfter(SimTime t, AccessKind kind) const {
    const Direction& dir = kind == AccessKind::kLoad ? read_ : write_;
    int busy = 0;
    for (const SimTime free : dir.channel_free) {
      busy += free > t ? 1 : 0;
    }
    return busy;
  }

  bool degrade_active() const { return degraded_; }
  const DeviceDegrade& degrade_window() const { return degrade_; }

  // Folds per-shard epoch views (copies of this device at epoch start, stats
  // reset) back into this device, in view order, with every epoch access
  // completed by `horizon`. Stats merge additively (max for the queue-delay
  // max); stream-detector slots are copied where a view moved them (views
  // touch disjoint slots); channel free times merge as a multiset — values
  // still reserved past the horizon are kept exactly, drained slots pin to
  // the horizon, which no post-epoch query can distinguish (every later
  // access starts at or after the horizon). MemoryDevice is copyable
  // precisely to make these views cheap; BatchRuns must be closed.
  void MergeShardViews(const std::vector<const MemoryDevice*>& views, SimTime horizon);

 private:
  struct Direction;  // defined below; BatchRun::DirRun points into it

 public:
  // ---- Batched sequential-run reservation ----------------------------------
  //
  // A BatchRun serves one engine run quantum's accesses by one stream against
  // this device. While every access falls in the *unloaded regime* — it
  // starts at or after every channel's free time, so begin == start and the
  // queue delay is exactly zero — the channel argmin degenerates: the popped
  // key is the head of a sorted circular ring of packed
  // (free_time << 5 | index) keys, and the replacement key (start + busy,
  // same index) strictly exceeds every live key, so a tail append keeps the
  // ring sorted. A whole run of accesses therefore reserves in O(1) each,
  // with arithmetic identical to N scalar ReserveChannel calls (same popped
  // key, same begin, same free-time writeback). Stats and the
  // sequential-stream detector state accumulate locally and flush in bulk on
  // Close(). Any access outside the regime — channel backlog, a degrade
  // window the access could reach, zero busy time — transparently flushes
  // and takes the scalar Access() path, so callers never branch on
  // eligibility and results are bit-identical by construction.
  //
  // A BatchRun must be closed before anything else touches the device
  // (another stream, a BulkTransfer, a stats reader); the tier layer closes
  // runs before every slow-path fallback and at quantum end, and the engine's
  // run horizon guarantees no other thread runs inside the quantum.
  class BatchRun {
   public:
    BatchRun(MemoryDevice& dev, uint32_t stream_id)
        : dev_(dev), slot_(stream_id % kMaxStreams), stream_id_(stream_id) {}
    ~BatchRun() { Close(); }
    BatchRun(const BatchRun&) = delete;
    BatchRun& operator=(const BatchRun&) = delete;

    // Exact equivalent of dev.Access(start, addr, size, kind, stream_id).
    // Forced inline: this is the body of the batched quantum loop, and the
    // ring/memo/stat fields only stay in registers when it inlines into it.
    [[gnu::always_inline]] inline SimTime Access(SimTime start, uint64_t addr, uint32_t size,
                                                 AccessKind kind) {
      if (!open_) [[unlikely]] {
        Open(start);
      }
      DirRun& d = kind == AccessKind::kLoad ? read_run_ : write_run_;
      const bool sequential = last_end_ == addr;
      // Memo keyed on the raw request size (accesses cluster on a few sizes),
      // so a hit skips the media-granularity round-up entirely, not just the
      // divide. memo_media_bytes rides along for the media-byte accounting.
      if (size != d.memo_size) [[unlikely]] {
        d.memo_size = size;
        d.memo_media_bytes =
            dev_.media_mask_ != 0
                ? (static_cast<uint64_t>(size) + dev_.media_mask_) & ~dev_.media_mask_
                : RoundUp(size, dev_.params_.media_granularity);
        d.memo_busy = static_cast<SimTime>(static_cast<double>(d.memo_media_bytes) /
                                           d.dir->channel_bw);
      }
      const uint64_t media_bytes = d.memo_media_bytes;
      SimTime busy = d.memo_busy;
      SimTime exposed = 0;
      if (!sequential) {
        busy += d.dir->random_penalty;
        exposed = d.dir->exposed_latency;
      }
      // Regime guard. start >= max_free keeps begin == start (zero queue
      // delay) and, with busy > 0, makes the appended key strictly larger
      // than every live key, preserving the sorted ring. start < fast_until_
      // keeps the access provably outside the degrade window.
      if (start >= fast_until_ || start < d.max_free || busy <= 0) [[unlikely]] {
        return ScalarAccess(start, addr, size, kind);
      }
      last_end_ = addr + size;
      const uint64_t popped = d.ring[d.head & 31];
      d.ring[(d.head + d.channels) & 31] =
          (static_cast<uint64_t>(start + busy) << 5) | (popped & 31);
      d.head++;
      d.earliest_lb = static_cast<SimTime>(popped >> 5);
      d.max_free = start + busy;
      d.accesses++;
      d.bytes_requested += size;
      d.media_bytes += media_bytes;
      d.sequential_hits += sequential ? 1 : 0;
      return start + busy + exposed;
    }

    // Flushes deferred state back to the device: ring keys -> channel free
    // times, stream detector slot, memoized busy divide, pressure bounds,
    // stat accumulators. Idempotent; reopens lazily on the next Access.
    void Close();

   private:
    struct DirRun {
      Direction* dir = nullptr;
      // Live window of `channels` sorted packed keys at [head, head+channels).
      uint64_t ring[32];
      uint32_t head = 0;
      uint32_t channels = 0;
      SimTime max_free = 0;
      SimTime earliest_lb = 0;
      // Raw-size memo key; ~0 forces a recompute on first use (the device's
      // own memo is keyed on media bytes, which cannot seed this one).
      uint64_t memo_size = ~0ull;
      uint64_t memo_media_bytes = 0;
      SimTime memo_busy = 0;
      uint64_t accesses = 0;
      uint64_t bytes_requested = 0;
      uint64_t media_bytes = 0;
      uint64_t sequential_hits = 0;
    };

    void Open(SimTime start);
    void InitDir(DirRun& d, Direction& dir);
    void FlushDir(DirRun& d);
    SimTime ScalarAccess(SimTime start, uint64_t addr, uint32_t size, AccessKind kind);

    MemoryDevice& dev_;
    const size_t slot_;
    const uint32_t stream_id_;
    bool open_ = false;
    // Exclusive bound on access starts eligible for the fast path: the next
    // degrade-window edge ahead of the run, or unbounded when the device is
    // not degraded. Crossing it falls back to scalar, which re-opens with a
    // recomputed bound.
    SimTime fast_until_ = 0;
    uint64_t last_end_ = 0;
    DirRun read_run_;
    DirRun write_run_;
  };

 private:
  static constexpr int kMaxStreams = kStreamSlots;

  struct Direction {
    std::vector<SimTime> channel_free;
    double channel_bw = 1.0;
    SimTime latency = 0;
    SimTime random_penalty = 0;
    // Precomputed static_cast<SimTime>(latency / mlp) — constant per direction.
    SimTime exposed_latency = 0;
    // Memoized bytes->busy division: accesses cluster on a few sizes, so the
    // double divide (whose exact rounding must be preserved) runs once per
    // distinct media size instead of once per access.
    uint64_t memo_media_bytes = ~0ull;
    SimTime memo_busy = 0;
    // Incrementally-maintained occupancy bounds for ChannelPressure.
    // earliest_free_lb is a lower bound on min(channel_free): the pre-update
    // argmin of the latest reservation — exact at that instant and never
    // ahead of the true min afterwards, since free times only grow.
    // latest_free is the exact running max of all reservations.
    SimTime earliest_free_lb = 0;
    SimTime latest_free = 0;
  };

  // Reserves the earliest-free channel; returns {begin, channel index}.
  SimTime ReserveChannel(Direction& dir, SimTime start, SimTime busy);
  // Shared Access body; kAttributed fills `split` (see AccessAttributed).
  template <bool kAttributed>
  SimTime AccessImpl(SimTime start, uint64_t addr, uint32_t size, AccessKind kind,
                     uint32_t stream_id, AccessBreakdown* split);
  // One direction of MergeShardViews.
  void MergeDirection(Direction& dir, bool read_dir,
                      const std::vector<const MemoryDevice*>& views, SimTime horizon);
  // Degrade multiplier in effect at `at` (1.0 outside the window).
  double DegradeMultiplier(SimTime at) const;

  DeviceParams params_;
  DeviceDegrade degrade_;
  bool degraded_ = false;
  // granularity - 1 when the media granularity is a power of two (the common
  // case: 64 B DRAM lines, 256 B XPLines); 0 selects the general RoundUp.
  uint64_t media_mask_ = 0;
  Direction read_;
  Direction write_;
  DeviceStats stats_;
  obs::EventTracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
  // Sequential-stream detector: last end-address per stream and direction.
  std::vector<uint64_t> stream_last_end_;
};

}  // namespace hemem

#endif  // HEMEM_MEM_DEVICE_H_
