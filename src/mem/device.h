// Channelized memory-device timing model (DRAM and Optane DC NVM).
//
// The model is parameterized directly from the paper's Table 1 and the
// device study in its Section 2.2:
//
//   * per-direction latency (DRAM 82 ns; Optane 175 ns load / 94 ns store),
//   * per-direction bandwidth realized as N channels x per-channel bandwidth,
//     so saturation emerges naturally (Optane writes saturate at ~4 threads),
//   * media access granularity (64 B DRAM, 256 B Optane) — accesses smaller
//     than the granularity still occupy a full media block, which both
//     throttles small random NVM accesses (Figure 2) and inflates wear,
//   * a random-access penalty modeling row misses / ineffective prefetch; a
//     per-stream sequential detector waives it for streaming access,
//   * memory-level parallelism (MLP): an application thread overlaps several
//     outstanding misses, so the latency exposed per dependent access is
//     latency/mlp rather than the full round trip.
//
// An access reserves the earliest-free channel at a time >= the caller's
// clock and returns the completion time; callers (tiering managers) advance
// the calling thread to that completion. Wear (media bytes written) is
// tracked for the paper's Figure 16.

#ifndef HEMEM_MEM_DEVICE_H_
#define HEMEM_MEM_DEVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/fault.h"

namespace hemem {

namespace obs {
class EventTracer;
}

enum class AccessKind : uint8_t { kLoad, kStore };

struct DeviceParams {
  std::string name;
  uint64_t capacity = 0;

  SimTime read_latency = 0;
  SimTime write_latency = 0;

  int read_channels = 1;
  int write_channels = 1;
  double read_channel_bw = 1.0;   // bytes per nanosecond
  double write_channel_bw = 1.0;  // bytes per nanosecond

  uint64_t media_granularity = 64;  // bytes occupied per access at minimum
  SimTime random_read_penalty = 0;  // extra channel occupancy per non-streaming access
  SimTime random_write_penalty = 0;
  double mlp = 8.0;  // outstanding misses a thread overlaps

  // DDR4 DRAM per the paper's testbed (6 channels/socket; modeled as 16
  // logical channels so bandwidth keeps scaling past 16 threads as in Fig. 1).
  static DeviceParams Dram(uint64_t capacity);
  // Intel Optane DC per Table 1 / the Section 2.2 study.
  static DeviceParams OptaneNvm(uint64_t capacity);
};

struct DeviceStats {
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t bytes_requested_read = 0;
  uint64_t bytes_requested_written = 0;
  // Media-granularity traffic: what the device actually moved. The write
  // figure is the wear metric.
  uint64_t media_bytes_read = 0;
  uint64_t media_bytes_written = 0;
  uint64_t sequential_hits = 0;
  // Channel-queue waiting observed by Access() calls (begin - start).
  uint64_t queue_delay_total_ns = 0;
  uint64_t queue_delay_max_ns = 0;
  // Accesses slowed by injected device degradation (fault plans only).
  uint64_t degraded_accesses = 0;
};

class MemoryDevice {
 public:
  explicit MemoryDevice(DeviceParams params);

  // Times one access of `size` bytes at device-relative address `addr`,
  // issued no earlier than `start` by stream `stream_id` (stream identity
  // feeds the sequential detector; use the logical thread index).
  // Returns the completion time visible to the issuing thread.
  SimTime Access(SimTime start, uint64_t addr, uint32_t size, AccessKind kind,
                 uint32_t stream_id);

  // Times a bulk, streaming transfer (page migration / DMA traffic): occupies
  // channel bandwidth but exposes no per-access latency. Returns completion.
  SimTime BulkTransfer(SimTime start, uint64_t bytes, AccessKind kind);

  // Fraction of channel-time busy in the most recent `window` ending at `at`
  // for the given direction; a cheap approximation from channel free times,
  // used by policies that want to probe for spare bandwidth.
  double ChannelPressure(SimTime at, AccessKind kind) const;

  const DeviceParams& params() const { return params_; }
  const DeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DeviceStats{}; }
  uint64_t capacity() const { return params_.capacity; }

  // Observability: with a tracer attached, bulk transfers (migration and
  // zero-fill traffic) emit channel-busy intervals onto `track`. Per-access
  // tracing is deliberately absent — Access() is the simulator's hottest
  // function and must not grow even a dead branch when tracing is off.
  void SetTracer(obs::EventTracer* tracer, uint32_t track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

  // Fault injection: applies a latency/bandwidth multiplier to accesses and
  // bulk transfers inside the degrade window, optionally growing with wear
  // (media bytes written / capacity). Attached by the Machine only when the
  // plan degrades this device; undegraded devices take no extra branch
  // beyond one predictable flag test.
  void SetDegrade(const DeviceDegrade& degrade) {
    degrade_ = degrade;
    degraded_ = degrade.active;
  }

 private:
  static constexpr int kMaxStreams = 512;

  struct Direction {
    std::vector<SimTime> channel_free;
    double channel_bw = 1.0;
    SimTime latency = 0;
    SimTime random_penalty = 0;
    // Precomputed static_cast<SimTime>(latency / mlp) — constant per direction.
    SimTime exposed_latency = 0;
    // Memoized bytes->busy division: accesses cluster on a few sizes, so the
    // double divide (whose exact rounding must be preserved) runs once per
    // distinct media size instead of once per access.
    uint64_t memo_media_bytes = ~0ull;
    SimTime memo_busy = 0;
  };

  // Reserves the earliest-free channel; returns {begin, channel index}.
  SimTime ReserveChannel(Direction& dir, SimTime start, SimTime busy);
  // Degrade multiplier in effect at `at` (1.0 outside the window).
  double DegradeMultiplier(SimTime at) const;

  DeviceParams params_;
  DeviceDegrade degrade_;
  bool degraded_ = false;
  // granularity - 1 when the media granularity is a power of two (the common
  // case: 64 B DRAM lines, 256 B XPLines); 0 selects the general RoundUp.
  uint64_t media_mask_ = 0;
  Direction read_;
  Direction write_;
  DeviceStats stats_;
  obs::EventTracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
  // Sequential-stream detector: last end-address per stream and direction.
  std::vector<uint64_t> stream_last_end_;
};

}  // namespace hemem

#endif  // HEMEM_MEM_DEVICE_H_
