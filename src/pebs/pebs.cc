#include "pebs/pebs.h"

#include <algorithm>

#include "obs/trace.h"

namespace hemem {

PebsBuffer::PebsBuffer(PebsParams params) : params_(params) {}

void PebsBuffer::BeginQuantum(uint32_t stream_id) {
  quantum_active_ = true;
  quantum_stream_ = stream_id;
  RefreshQuantumBudget(stream_id);
}

void PebsBuffer::RefreshQuantumBudget(uint32_t stream_id) {
  // Counters stay strictly below their periods (reset on overflow), so every
  // remaining headroom is >= 1 and the budget is >= 0.
  const uint64_t* counters = counter_[stream_id % kMaxContexts];
  uint64_t min_left = params_.period[0] - counters[0];
  for (int e = 1; e < kNumPebsEvents; ++e) {
    min_left = std::min(min_left, params_.period[e] - counters[e]);
  }
  quantum_budget_ = min_left - 1;
}

void PebsBuffer::CountAccess(SimTime now, uint64_t va, PebsEvent event,
                             uint32_t stream_id) {
  // Quantum fast branch: provably no counter can reach its period within the
  // budget, so the overflow machinery (and any injector draw) is skipped
  // with bit-identical effect.
  if (quantum_budget_ > 0 && stream_id == quantum_stream_) [[likely]] {
    quantum_budget_--;
    stats_.accesses_counted++;
    counter_[stream_id % kMaxContexts][static_cast<int>(event)]++;
    return;
  }
  stats_.accesses_counted++;
  const int idx = static_cast<int>(event);
  uint64_t& counter = counter_[stream_id % kMaxContexts][idx];
  if (++counter < params_.period[idx]) {
    if (quantum_active_ && stream_id == quantum_stream_) {
      // Exhausted budget but no overflow yet (another event had the critical
      // headroom): recompute so the fast branch resumes immediately.
      RefreshQuantumBudget(stream_id);
    }
    return;
  }
  counter = 0;
  if (quantum_active_ && stream_id == quantum_stream_) [[unlikely]] {
    // An overflow completed mid-quantum; the counters moved, so the
    // record-free budget starts over from fresh headroom.
    RefreshQuantumBudget(stream_id);
  }
  if (injector_ != nullptr) [[unlikely]] {
    if (burst_remaining_ == 0) {
      if (const FaultRule* burst = injector_->Fire(FaultKind::kPebsBurst, now)) {
        burst_remaining_ = burst->burst_len;
        if (tracer_ != nullptr) {
          tracer_->Instant(trace_track_, "pebs_injected_burst", "pebs", now,
                           {{"len", static_cast<double>(burst->burst_len)}});
        }
      }
    }
    bool drop = false;
    if (burst_remaining_ > 0) {
      burst_remaining_--;
      drop = true;
    } else if (injector_->Fire(FaultKind::kPebsDrop, now) != nullptr) {
      drop = true;
    }
    if (drop) {
      stats_.samples_dropped++;
      stats_.injected_drops++;
      return;
    }
  }
  if (ring_.size() >= params_.buffer_capacity) {
    // Hardware keeps writing past a full buffer only by overwriting the
    // interrupt threshold; in practice the record is lost.
    stats_.samples_dropped++;
    if (!overflow_open_) {
      overflow_open_ = true;
      if (tracer_ != nullptr) [[unlikely]] {
        tracer_->Instant(trace_track_, "pebs_buffer_full", "pebs", now,
                         {{"pending", static_cast<double>(ring_.size())}});
      }
    }
    return;
  }
  if (overflow_open_) [[unlikely]] {
    overflow_open_ = false;
    if (tracer_ != nullptr) {
      tracer_->Instant(trace_track_, "pebs_buffer_recovered", "pebs", now);
    }
  }
  ring_.push_back(PebsRecord{va, event, now});
  stats_.samples_written++;
}

size_t PebsBuffer::Drain(std::vector<PebsRecord>& out, size_t max) {
  size_t n = 0;
  while (n < max && !ring_.empty()) {
    out.push_back(ring_.front());
    ring_.pop_front();
    ++n;
  }
  stats_.samples_drained += n;
  return n;
}

}  // namespace hemem
