#include "pebs/pebs.h"

#include <algorithm>

#include "obs/trace.h"

namespace hemem {

PebsBuffer::PebsBuffer(PebsParams params)
    : params_(params), slots_(params.buffer_capacity) {}

void PebsBuffer::BeginQuantum(uint32_t stream_id) {
  quantum_active_ = true;
  quantum_stream_ = stream_id;
  RefreshQuantumBudget(stream_id);
}

void PebsBuffer::RefreshQuantumBudget(uint32_t stream_id) {
  // Counters stay strictly below their periods (reset on overflow), so every
  // remaining headroom is >= 1 and the budget is >= 0.
  const uint64_t* counters = counter_[stream_id % kMaxContexts];
  uint64_t min_left = params_.period[0] - counters[0];
  for (int e = 1; e < kNumPebsEvents; ++e) {
    min_left = std::min(min_left, params_.period[e] - counters[e]);
  }
  quantum_budget_ = min_left - 1;
}

void PebsBuffer::RefreshShardBudget(ShardState& shard) {
  uint64_t min_left = params_.period[0] - shard.counters[0];
  for (int e = 1; e < kNumPebsEvents; ++e) {
    min_left = std::min(min_left, params_.period[e] - shard.counters[e]);
  }
  shard.quantum_budget = min_left - 1;
}

void PebsBuffer::BindShardStream(ShardState& shard, uint32_t stream_id) {
  // Snapshot the stream's counter row into the shard. The epoch gate admits
  // at most one shard per context (stream ids distinct mod kMaxContexts), so
  // the row is private to this shard until the barrier writes it back.
  shard.stream = stream_id;
  const uint64_t* row = counter_[stream_id % kMaxContexts];
  std::copy(row, row + kNumPebsEvents, shard.counters);
}

void PebsBuffer::BeginQuantumShard(ShardState& shard, uint32_t stream_id) {
  if (shard.stream == ShardState::kNoStream) {
    BindShardStream(shard, stream_id);
  }
  shard.quantum_active = true;
  RefreshShardBudget(shard);
}

void PebsBuffer::CountAccess(SimTime now, uint64_t va, PebsEvent event,
                             uint32_t stream_id) {
  // Quantum fast branch: provably no counter can reach its period within the
  // budget, so the overflow machinery (and any injector draw) is skipped
  // with bit-identical effect.
  if (quantum_budget_ > 0 && stream_id == quantum_stream_) [[likely]] {
    quantum_budget_--;
    stats_.accesses_counted++;
    counter_[stream_id % kMaxContexts][static_cast<int>(event)]++;
    return;
  }
  stats_.accesses_counted++;
  const int idx = static_cast<int>(event);
  uint64_t& counter = counter_[stream_id % kMaxContexts][idx];
  if (++counter < params_.period[idx]) {
    if (quantum_active_ && stream_id == quantum_stream_) {
      // Exhausted budget but no overflow yet (another event had the critical
      // headroom): recompute so the fast branch resumes immediately.
      RefreshQuantumBudget(stream_id);
    }
    return;
  }
  counter = 0;
  if (quantum_active_ && stream_id == quantum_stream_) [[unlikely]] {
    // An overflow completed mid-quantum; the counters moved, so the
    // record-free budget starts over from fresh headroom.
    RefreshQuantumBudget(stream_id);
  }
  AppendRecord(now, va, event);
}

void PebsBuffer::CountAccessShard(ShardState& shard, SimTime op_start,
                                  SimTime now, uint64_t va, PebsEvent event,
                                  uint32_t stream_id) {
  if (shard.stream == ShardState::kNoStream) [[unlikely]] {
    BindShardStream(shard, stream_id);
  }
  if (shard.quantum_budget > 0) [[likely]] {
    shard.quantum_budget--;
    shard.accesses_counted++;
    shard.counters[static_cast<int>(event)]++;
    return;
  }
  shard.accesses_counted++;
  const int idx = static_cast<int>(event);
  uint64_t& counter = shard.counters[idx];
  if (++counter < params_.period[idx]) {
    if (shard.quantum_active) {
      RefreshShardBudget(shard);
    }
    return;
  }
  counter = 0;
  if (shard.quantum_active) [[unlikely]] {
    RefreshShardBudget(shard);
  }
  // The record tail is order-sensitive across shards (injector ordinals,
  // capacity) — defer it; the barrier replays in serial order.
  shard.deferred.push_back(ShardState::Deferred{op_start, va, event, now});
}

void PebsBuffer::AppendRecord(SimTime now, uint64_t va, PebsEvent event) {
  if (injector_ != nullptr) [[unlikely]] {
    if (burst_remaining_ == 0) {
      if (const FaultRule* burst = injector_->Fire(FaultKind::kPebsBurst, now)) {
        burst_remaining_ = burst->burst_len;
        if (tracer_ != nullptr) {
          tracer_->Instant(trace_track_, "pebs_injected_burst", "pebs", now,
                           {{"len", static_cast<double>(burst->burst_len)}});
        }
      }
    }
    bool drop = false;
    if (burst_remaining_ > 0) {
      burst_remaining_--;
      drop = true;
    } else if (injector_->Fire(FaultKind::kPebsDrop, now) != nullptr) {
      drop = true;
    }
    if (drop) {
      stats_.samples_dropped++;
      stats_.injected_drops++;
      return;
    }
  }
  if (count_ >= params_.buffer_capacity) {
    // Hardware keeps writing past a full buffer only by overwriting the
    // interrupt threshold; in practice the record is lost.
    stats_.samples_dropped++;
    if (!overflow_open_) {
      overflow_open_ = true;
      if (tracer_ != nullptr) [[unlikely]] {
        tracer_->Instant(trace_track_, "pebs_buffer_full", "pebs", now,
                         {{"pending", static_cast<double>(count_)}});
      }
    }
    return;
  }
  if (overflow_open_) [[unlikely]] {
    overflow_open_ = false;
    if (tracer_ != nullptr) {
      tracer_->Instant(trace_track_, "pebs_buffer_recovered", "pebs", now);
    }
  }
  size_t slot = head_ + count_;
  if (slot >= slots_.size()) {
    slot -= slots_.size();
  }
  slots_[slot] = PebsRecord{va, event, now};
  count_++;
  stats_.samples_written++;
}

void PebsBuffer::MergeShardSamples(ShardState* const* shards, size_t count) {
  // Counter rows and access counts are per stream, so write-back order does
  // not matter; do it first so the replayed tail runs against final rows.
  for (size_t s = 0; s < count; ++s) {
    ShardState& shard = *shards[s];
    if (shard.stream == ShardState::kNoStream) {
      continue;
    }
    uint64_t* row = counter_[shard.stream % kMaxContexts];
    std::copy(shard.counters, shard.counters + kNumPebsEvents, row);
    stats_.accesses_counted += shard.accesses_counted;
  }
  // K-way merge of the deferred overflows. Each shard's list is already
  // sorted by op start (thread clocks are monotone); strict < makes the
  // lowest shard index win ties, matching the engine's stream-order tiebreak.
  std::vector<size_t> pos(count, 0);
  for (;;) {
    size_t best = count;
    SimTime best_start = 0;
    for (size_t s = 0; s < count; ++s) {
      if (pos[s] >= shards[s]->deferred.size()) {
        continue;
      }
      const SimTime start = shards[s]->deferred[pos[s]].start;
      if (best == count || start < best_start) {
        best = s;
        best_start = start;
      }
    }
    if (best == count) {
      break;
    }
    const ShardState::Deferred& d = shards[best]->deferred[pos[best]++];
    AppendRecord(d.time, d.va, d.event);
  }
}

size_t PebsBuffer::Drain(std::vector<PebsRecord>& out, size_t max) {
  size_t n = 0;
  while (n < max && count_ > 0) {
    out.push_back(slots_[head_]);
    head_++;
    if (head_ == slots_.size()) {
      head_ = 0;
    }
    count_--;
    ++n;
  }
  stats_.samples_drained += n;
  return n;
}

}  // namespace hemem
