#include "pebs/pebs.h"

#include "obs/trace.h"

namespace hemem {

PebsBuffer::PebsBuffer(PebsParams params) : params_(params) {}

void PebsBuffer::CountAccess(SimTime now, uint64_t va, PebsEvent event,
                             uint32_t stream_id) {
  stats_.accesses_counted++;
  const int idx = static_cast<int>(event);
  uint64_t& counter = counter_[stream_id % kMaxContexts][idx];
  if (++counter < params_.period[idx]) {
    return;
  }
  counter = 0;
  if (injector_ != nullptr) [[unlikely]] {
    if (burst_remaining_ == 0) {
      if (const FaultRule* burst = injector_->Fire(FaultKind::kPebsBurst, now)) {
        burst_remaining_ = burst->burst_len;
        if (tracer_ != nullptr) {
          tracer_->Instant(trace_track_, "pebs_injected_burst", "pebs", now,
                           {{"len", static_cast<double>(burst->burst_len)}});
        }
      }
    }
    bool drop = false;
    if (burst_remaining_ > 0) {
      burst_remaining_--;
      drop = true;
    } else if (injector_->Fire(FaultKind::kPebsDrop, now) != nullptr) {
      drop = true;
    }
    if (drop) {
      stats_.samples_dropped++;
      stats_.injected_drops++;
      return;
    }
  }
  if (ring_.size() >= params_.buffer_capacity) {
    // Hardware keeps writing past a full buffer only by overwriting the
    // interrupt threshold; in practice the record is lost.
    stats_.samples_dropped++;
    if (!overflow_open_) {
      overflow_open_ = true;
      if (tracer_ != nullptr) [[unlikely]] {
        tracer_->Instant(trace_track_, "pebs_buffer_full", "pebs", now,
                         {{"pending", static_cast<double>(ring_.size())}});
      }
    }
    return;
  }
  if (overflow_open_) [[unlikely]] {
    overflow_open_ = false;
    if (tracer_ != nullptr) {
      tracer_->Instant(trace_track_, "pebs_buffer_recovered", "pebs", now);
    }
  }
  ring_.push_back(PebsRecord{va, event, now});
  stats_.samples_written++;
}

size_t PebsBuffer::Drain(std::vector<PebsRecord>& out, size_t max) {
  size_t n = 0;
  while (n < max && !ring_.empty()) {
    out.push_back(ring_.front());
    ring_.pop_front();
    ++n;
  }
  stats_.samples_drained += n;
  return n;
}

}  // namespace hemem
