// Processor event-based sampling (PEBS) model.
//
// HeMem configures three hardware counters — loads served from NVM
// (MEM_LOAD_RETIRED.LOCAL_PMM), loads served from DRAM
// (MEM_LOAD_L3_MISS_RETIRED.LOCAL_DRAM), and all retired stores
// (MEM_INST_RETIRED.ALL_STORES) — each with a sample-after value ("period").
// When a counter overflows, the CPU appends a record carrying the access's
// virtual address to a preallocated buffer with no software involvement; a
// software thread drains the buffer asynchronously. If the buffer fills
// before it is drained, further records are dropped (the Figure 10
// sensitivity study hinges on this).
//
// The model counts every access the tiering manager reports and emits a
// record each time a counter crosses its period. Determinism: counters are
// exact, so sampling is stride-based rather than statistically perturbed —
// the same workload always yields the same sample stream.
//
// Sharded epochs (DESIGN.md "Sampling under epochs"): during an epoch each
// shard thread counts into a ShardState — a private copy of its stream's
// counter row plus a deferred-record list — via CountAccessShard. Counting
// is exact shard-locally because counter rows are per stream and the epoch
// gate guarantees one stream per shard (distinct mod kMaxContexts). The
// order-sensitive tail (injector draws, buffer-full drops, the ring append)
// is deferred: MergeShardSamples replays the deferred records at the epoch
// barrier in (op start time, shard order) order, which is exactly the order
// the serial scheduler would have executed the overflows in, so the
// post-merge ring, counters, and stats are bit-identical to a serial run.

#ifndef HEMEM_PEBS_PEBS_H_
#define HEMEM_PEBS_PEBS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.h"
#include "sim/fault.h"

namespace hemem {

namespace obs {
class EventTracer;
}

enum class PebsEvent : uint8_t { kNvmLoad = 0, kDramLoad = 1, kStore = 2 };
inline constexpr int kNumPebsEvents = 3;

struct PebsRecord {
  uint64_t va = 0;
  PebsEvent event = PebsEvent::kNvmLoad;
  SimTime time = 0;
};

struct PebsParams {
  // Sample-after value per event; the paper's default is 5,000 accesses.
  uint64_t period[kNumPebsEvents] = {5000, 5000, 5000};
  // Buffer capacity in records. Sized like the paper's preallocated buffer:
  // large enough for moderate periods, overrunnable at aggressive ones.
  size_t buffer_capacity = 1 << 14;

  void SetAllPeriods(uint64_t p) {
    for (auto& x : period) {
      x = p;
    }
  }
};

struct PebsStats {
  uint64_t accesses_counted = 0;
  uint64_t samples_written = 0;
  uint64_t samples_dropped = 0;
  uint64_t samples_drained = 0;
  // Of samples_dropped, how many were injected faults (drop rules and
  // overflow bursts) rather than organic buffer-full losses.
  uint64_t injected_drops = 0;

  double DropRate() const {
    const uint64_t produced = samples_written + samples_dropped;
    return produced == 0 ? 0.0 : static_cast<double>(samples_dropped) /
                                     static_cast<double>(produced);
  }
};

class PebsBuffer {
 public:
  // Hardware contexts (counter rows); stream ids alias modulo this. Public
  // so the epoch gate can check that shard streams map to distinct rows.
  static constexpr uint32_t kMaxContexts = 64;

  // Per-shard sampling state for epoch execution. One ShardState belongs to
  // exactly one epoch shard (= one foreground thread = one stream); the
  // coordinator owns them inside its ShardViews and resets them per epoch.
  struct ShardState {
    static constexpr uint32_t kNoStream = ~0u;

    // A counter overflow whose record emission is deferred to the barrier.
    // `start` is the access op's start time (the merge key); `time` is the
    // thread clock at the overflow, i.e. the timestamp the serial run would
    // have stamped into the PebsRecord.
    struct Deferred {
      SimTime start = 0;
      uint64_t va = 0;
      PebsEvent event = PebsEvent::kNvmLoad;
      SimTime time = 0;
    };

    uint32_t stream = kNoStream;  // bound on first use within the epoch
    uint64_t counters[kNumPebsEvents] = {};  // private copy of the stream row
    uint64_t accesses_counted = 0;
    uint64_t quantum_budget = 0;
    bool quantum_active = false;
    std::vector<Deferred> deferred;

    void Reset() {
      stream = kNoStream;
      accesses_counted = 0;
      quantum_budget = 0;
      quantum_active = false;
      deferred.clear();
    }
  };

  explicit PebsBuffer(PebsParams params = PebsParams{});

  // Called by the tiering manager on every access it wants monitored.
  // Constant time; appends a record when the event's counter overflows.
  // Counters are per hardware context (`stream_id`, i.e. the issuing
  // logical thread), as real PMUs are per-core — a single global counter
  // would alias the sampling stride with the thread interleaving pattern.
  void CountAccess(SimTime now, uint64_t va, PebsEvent event, uint32_t stream_id = 0);

  // Epoch-shard variant of CountAccess: counts into `shard`'s private state
  // and defers record emission (see MergeShardSamples). `op_start` is the
  // enclosing access op's start time (SimThread::access_op_start()); `now`
  // is the thread clock at the charge point, as in CountAccess. The first
  // call binds `shard` to `stream_id` and snapshots its counter row.
  void CountAccessShard(ShardState& shard, SimTime op_start, SimTime now,
                        uint64_t va, PebsEvent event, uint32_t stream_id);

  // ---- Per-quantum precomputed sampling (batched access execution) ---------
  //
  // BeginQuantum computes, for `stream_id`'s hardware context, how many
  // further counted accesses are guaranteed not to overflow any event
  // counter: min over events of (period - counter) - 1 — strictly fewer
  // accesses than the smallest remaining headroom cannot reach any period
  // regardless of how they distribute over events. Within that budget
  // CountAccess degenerates to two counter bumps — no period compare, no
  // injector draw, no ring probe — which is exact because no record (and
  // therefore no fault opportunity) can occur before an overflow. When an
  // overflow does complete while a quantum is active, the budget is
  // recomputed from the fresh counters.
  void BeginQuantum(uint32_t stream_id);
  void EndQuantum() {
    quantum_budget_ = 0;
    quantum_active_ = false;
  }

  // Shard-local quantum bracket, same budget math against the shard's
  // private counters. Static EndQuantumShard: no shared state is involved.
  void BeginQuantumShard(ShardState& shard, uint32_t stream_id);
  static void EndQuantumShard(ShardState& shard) {
    shard.quantum_budget = 0;
    shard.quantum_active = false;
  }

  // Epoch-barrier merge. `shards` must be in the coordinator's canonical
  // view order (ascending stream id — the same tiebreak the engine's heap
  // rebuild uses). Writes shard counter rows back, accumulates access
  // counts, then replays every deferred overflow through the serial record
  // tail (injector draws, capacity check, ring append) in ascending
  // (op start, shard order) — the serial execution order of the overflows —
  // so ring contents, fault-draw ordinals, and stats match a serial run
  // bit for bit. Serial only; called at the barrier with workers parked.
  void MergeShardSamples(ShardState* const* shards, size_t count);

  // Drains up to `max` records into `out` (appends). Returns count drained.
  size_t Drain(std::vector<PebsRecord>& out, size_t max);

  size_t pending() const { return count_; }
  const PebsStats& stats() const { return stats_; }
  const PebsParams& params() const { return params_; }

  // Observability: buffer-full / recovered transitions emit instant events
  // onto `track`. Only the (already cold) overflow-crossing paths check the
  // tracer; the per-access counting path is untouched.
  void SetTracer(obs::EventTracer* tracer, uint32_t track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

  // Fault injection (kPebsDrop per record, kPebsBurst opening a window that
  // swallows the next `len` records). Attached by the Machine only when the
  // plan carries PEBS rules; the per-access counting path is untouched and
  // the record-append path checks one pointer.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

 private:
  // Recomputes the quantum's record-free access budget from the stream's
  // current counters (each strictly below its period).
  void RefreshQuantumBudget(uint32_t stream_id);
  void RefreshShardBudget(ShardState& shard);
  void BindShardStream(ShardState& shard, uint32_t stream_id);

  // The order-sensitive record tail shared by CountAccess and the barrier
  // replay: injector draws, buffer-full accounting, the ring append.
  void AppendRecord(SimTime now, uint64_t va, PebsEvent event);

  PebsParams params_;
  // counter_[context][event]
  uint64_t counter_[kMaxContexts][kNumPebsEvents] = {};
  // Fixed-capacity ring: slots_ is sized once at construction; head_/count_
  // index into it. CountAccess's append is alloc-free.
  std::vector<PebsRecord> slots_;
  size_t head_ = 0;
  size_t count_ = 0;
  PebsStats stats_;
  // True while records are being dropped on the floor (buffer at capacity).
  bool overflow_open_ = false;
  FaultInjector* injector_ = nullptr;
  uint64_t burst_remaining_ = 0;  // records left to drop in the open burst
  // Quantum state: accesses left on the fast counting branch, and the stream
  // it was computed for (other streams take the normal path unaffected).
  uint64_t quantum_budget_ = 0;
  uint32_t quantum_stream_ = 0;
  bool quantum_active_ = false;
  obs::EventTracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
};

}  // namespace hemem

#endif  // HEMEM_PEBS_PEBS_H_
