// Aggregate handle for the second-generation observability layer.
//
// Machine::EnableAccessObservation() constructs one of these; a single
// Machine::observation() null-check is the only thing the tier layer pays
// when the feature is off (the access skeleton dispatches to its observed
// twin on that pointer, and RunAccessQuantum routes observed runs through
// the reference path so AccessFast never grows an instrumentation branch).
//
// Everything in here is purely observational: it reads clocks and page
// state, never advances or mutates them, so enabling it is bit-identical on
// the access goldens (AccessGolden.ObservationDoesNotPerturbExecution).

#ifndef HEMEM_OBS_ACCESS_OBS_H_
#define HEMEM_OBS_ACCESS_OBS_H_

#include "obs/audit.h"
#include "obs/heatmap.h"
#include "obs/latency.h"
#include "obs/metrics.h"

namespace hemem::obs {

struct ObservationOptions {
  HeatTimeline::Options heat;
  MigrationAudit::Options audit;
};

class AccessObservation {
 public:
  AccessObservation(MetricsRegistry& registry, const ObservationOptions& options)
      : latency_(registry), heat_(options.heat), audit_(options.audit) {
    audit_.RegisterMetrics(registry);
    registry.AddProvider(this, [this](MetricsEmitter& e) {
      e.Emit("heat.samples", heat_.samples());
      e.Emit("heat.cells", static_cast<uint64_t>(heat_.cells().size()));
    });
    registry_ = &registry;
  }

  ~AccessObservation() { registry_->RemoveOwner(this); }

  AccessObservation(const AccessObservation&) = delete;
  AccessObservation& operator=(const AccessObservation&) = delete;

  LatencyRecorder& latency() { return latency_; }
  HeatTimeline& heat() { return heat_; }
  MigrationAudit& audit() { return audit_; }
  const HeatTimeline& heat() const { return heat_; }
  const MigrationAudit& audit() const { return audit_; }

 private:
  MetricsRegistry* registry_ = nullptr;
  LatencyRecorder latency_;
  HeatTimeline heat_;
  MigrationAudit audit_;
};

}  // namespace hemem::obs

#endif  // HEMEM_OBS_ACCESS_OBS_H_
