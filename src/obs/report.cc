#include "obs/report.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <map>

namespace hemem::obs {
namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendValue(std::string& out, const MetricValue& v) {
  char buf[40];
  if (v.kind == MetricValue::Kind::kUint) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v.u);
  } else if (std::isfinite(v.d)) {
    std::snprintf(buf, sizeof(buf), "%.12g", v.d);
  } else {
    std::snprintf(buf, sizeof(buf), "null");
  }
  out += buf;
}

// Dotted names form a tree; a node that is both a leaf and a prefix of other
// names (possible after histogram expansion or odd provider naming) keeps
// its own value under the child key "value".
struct Node {
  std::map<std::string, Node> children;
  const MetricValue* value = nullptr;
};

void Insert(Node& root, const std::string& name, const MetricValue& value) {
  Node* node = &root;
  size_t start = 0;
  while (true) {
    const size_t dot = name.find('.', start);
    const std::string segment = name.substr(start, dot - start);
    node = &node->children[segment];
    if (dot == std::string::npos) {
      break;
    }
    start = dot + 1;
  }
  if (!node->children.empty()) {
    node->children["value"].value = &value;
  } else {
    node->value = &value;
  }
}

void Serialize(std::string& out, const Node& node, int depth) {
  if (node.value != nullptr && node.children.empty()) {
    AppendValue(out, *node.value);
    return;
  }
  const std::string pad(static_cast<size_t>(depth) * 2, ' ');
  out += "{\n";
  bool first = true;
  if (node.value != nullptr) {
    out += pad + "  \"value\": ";
    AppendValue(out, *node.value);
    first = false;
  }
  for (const auto& [key, child] : node.children) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += pad + "  \"";
    AppendEscaped(out, key);
    out += "\": ";
    Serialize(out, child, depth + 1);
  }
  out += "\n" + pad + "}";
}

Node BuildTree(const MetricsSnapshot& snapshot) {
  Node root;
  for (const MetricEntry& e : snapshot.entries()) {
    Insert(root, e.name, e.value);
  }
  return root;
}

}  // namespace

std::string SnapshotToJson(const MetricsSnapshot& snapshot) {
  const Node root = BuildTree(snapshot);
  std::string out;
  Serialize(out, root, 0);
  return out;
}

bool WriteRunReport(const std::string& path, const MetricsSnapshot& snapshot,
                    const MetricsSampler* sampler, const ReportMeta& meta) {
  std::string out = "{\n  \"meta\": {";
  bool first = true;
  for (const auto& [key, value] : meta) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(out, key);
    out += "\": \"";
    AppendEscaped(out, value);
    out += "\"";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"metrics\": ";
  {
    const Node root = BuildTree(snapshot);
    std::string metrics;
    Serialize(metrics, root, 1);
    out += metrics;
  }

  if (sampler != nullptr) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRId64, sampler->period());
    out += ",\n  \"series\": {\n    \"period_ns\": ";
    out += buf;
    out += ",\n    \"deltas\": {";
    bool first_series = true;
    for (const auto& [name, series] : sampler->series()) {
      out += first_series ? "\n" : ",\n";
      first_series = false;
      out += "      \"";
      AppendEscaped(out, name);
      out += "\": [";
      bool first_bucket = true;
      for (const double v : series.buckets()) {
        if (!first_bucket) {
          out += ",";
        }
        first_bucket = false;
        AppendValue(out, MetricValue::Of(v));
      }
      out += "]";
    }
    out += first_series ? "}\n  }" : "\n    }\n  }";
  }

  out += "\n}\n";

  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

void PrintSnapshot(std::FILE* out, const MetricsSnapshot& snapshot) {
  size_t width = 0;
  for (const MetricEntry& e : snapshot.entries()) {
    width = std::max(width, e.name.size());
  }
  for (const MetricEntry& e : snapshot.entries()) {
    std::string value;
    AppendValue(value, e.value);
    std::fprintf(out, "  %-*s %s\n", static_cast<int>(width), e.name.c_str(),
                 value.c_str());
  }
}

}  // namespace hemem::obs
