// Latency attribution: where did each access's virtual nanoseconds go?
//
// The tier layer's access skeleton (TieredMemoryManager::AccessPage) times
// every step of an access — translation, missing-page fault, WP stall, the
// device charge split into channel queueing vs media time, and the residual
// hook/bookkeeping segments — and records the decomposition here, into
// per-(manager, tier) HDR histograms plus exact integer component totals.
//
// Two contracts, both enforced by tests:
//  * Inert when disabled: nothing in this file is reachable unless
//    Machine::EnableAccessObservation() ran, and enabling it must not move a
//    single simulated clock (AccessGolden.ObservationDoesNotPerturbExecution).
//  * Additive when enabled: the components of every access sum exactly to
//    its end-to-end latency — Record() asserts it per access, and the exact
//    ComponentTotals let tests assert it over whole runs without histogram
//    bucketing error.
//
// Metric names (MetricsRegistry): latency.<manager>.<tier>.<component> is a
// histogram (emitting .count/.mean/.min/.p50/.p99/.p999/.max), with
// component one of translation / fault / wp_stall / queue / media / other /
// total; latency.<manager>.<tier>.<component>.sum_ns is the exact total.

#ifndef HEMEM_OBS_LATENCY_H_
#define HEMEM_OBS_LATENCY_H_

#include <array>
#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"

namespace hemem::obs {

class LatencyRecorder {
 public:
  // Decomposition of one access, in virtual nanoseconds. `other` covers the
  // explicitly-timed residual segments (A/D-bit updates, tracking hooks,
  // post-charge hooks) — it is measured, not computed as a remainder, so the
  // additivity assertion below really does prove the skeleton timed every
  // step it executed.
  struct Sample {
    SimTime translation = 0;
    SimTime fault = 0;
    SimTime wp_stall = 0;
    SimTime queue = 0;
    SimTime media = 0;
    SimTime other = 0;

    SimTime Sum() const {
      return translation + fault + wp_stall + queue + media + other;
    }
  };

  // Exact (unbucketed) sums, for the additivity test and the .sum_ns metrics.
  struct ComponentTotals {
    uint64_t count = 0;
    uint64_t translation_ns = 0;
    uint64_t fault_ns = 0;
    uint64_t wp_stall_ns = 0;
    uint64_t queue_ns = 0;
    uint64_t media_ns = 0;
    uint64_t other_ns = 0;
    uint64_t end_to_end_ns = 0;
  };

  static constexpr int kNumTiers = 2;  // 0 = dram, 1 = nvm (vm layer's Tier)

  explicit LatencyRecorder(MetricsRegistry& registry);
  ~LatencyRecorder();

  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;

  // Registers one manager's histogram set (both tiers) under
  // latency.<name>.*; returns the slot Record() takes. Managers register
  // from their constructor, so slots are stable for the manager's lifetime.
  int RegisterManager(const std::string& name);

  // Records one access charged against `tier` (the tier the page resided on
  // when the device was charged). `end_to_end` is the access's full
  // entry-to-exit virtual time; the components must sum to it exactly.
  void Record(int slot, int tier, const Sample& s, SimTime end_to_end) {
    assert(s.Sum() == end_to_end &&
           "latency components must sum to end-to-end time");
    assert(slot >= 0 && static_cast<size_t>(slot) < slots_.size());
    TierSlot& ts = slots_[static_cast<size_t>(slot)]->tiers[tier & 1];
    ts.hist[kTranslation]->Record(static_cast<uint64_t>(s.translation));
    ts.hist[kFault]->Record(static_cast<uint64_t>(s.fault));
    ts.hist[kWpStall]->Record(static_cast<uint64_t>(s.wp_stall));
    ts.hist[kQueue]->Record(static_cast<uint64_t>(s.queue));
    ts.hist[kMedia]->Record(static_cast<uint64_t>(s.media));
    ts.hist[kOther]->Record(static_cast<uint64_t>(s.other));
    ts.hist[kTotal]->Record(static_cast<uint64_t>(end_to_end));
    ts.totals.count++;
    ts.totals.translation_ns += static_cast<uint64_t>(s.translation);
    ts.totals.fault_ns += static_cast<uint64_t>(s.fault);
    ts.totals.wp_stall_ns += static_cast<uint64_t>(s.wp_stall);
    ts.totals.queue_ns += static_cast<uint64_t>(s.queue);
    ts.totals.media_ns += static_cast<uint64_t>(s.media);
    ts.totals.other_ns += static_cast<uint64_t>(s.other);
    ts.totals.end_to_end_ns += static_cast<uint64_t>(end_to_end);
  }

  const ComponentTotals& totals(int slot, int tier) const {
    return slots_[static_cast<size_t>(slot)]->tiers[tier & 1].totals;
  }

 private:
  enum Component {
    kTranslation,
    kFault,
    kWpStall,
    kQueue,
    kMedia,
    kOther,
    kTotal,
    kNumComponents,
  };
  static const char* ComponentName(int c);

  struct TierSlot {
    std::array<HistogramMetric*, kNumComponents> hist = {};
    ComponentTotals totals;
  };
  struct ManagerSlot {
    std::string name;
    std::array<TierSlot, kNumTiers> tiers;
  };

  MetricsRegistry& registry_;
  // unique_ptr keeps TierSlot addresses stable across RegisterManager calls
  // (managers hold no pointers in, but the metrics provider does).
  std::vector<std::unique_ptr<ManagerSlot>> slots_;
};

}  // namespace hemem::obs

#endif  // HEMEM_OBS_LATENCY_H_
