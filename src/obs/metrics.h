// Metrics registry: the one queryable tree of run statistics.
//
// Every subsystem keeps its cheap plain-struct counters exactly as before
// (DeviceStats, DmaStats, PebsStats, ManagerStats, ...); the registry does
// not sit on any hot path. Instead components register once, at
// construction, either
//   * owned instruments (Counter / Gauge / HistogramMetric) allocated by the
//     registry and updated through a pointer, or
//   * a provider — a callback that walks an existing stats struct and emits
//     (name, value) pairs when a snapshot is taken.
// A snapshot walks all registrations and yields a flat, name-sorted list of
// leaf metrics; dotted names ("device.nvm.media_bytes_written") form the
// tree that the JSON exporter (obs/report.h) nests. Names are deduplicated
// in registration order: the second provider emitting "manager.HeMem.x"
// (two HeMem instances under one daemon) becomes "manager.HeMem#2.x".
//
// Registrations are keyed by an owner pointer so components with a shorter
// lifetime than the registry (managers constructed per experiment against a
// shared Machine) can unregister wholesale from their destructor.

#ifndef HEMEM_OBS_METRICS_H_
#define HEMEM_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace hemem::obs {

// A leaf value: integral counters stay exact (uint64_t), derived values
// (rates, fractions) are doubles. The JSON exporter prints each kind in its
// natural form.
struct MetricValue {
  enum class Kind : uint8_t { kUint, kDouble };
  Kind kind = Kind::kUint;
  uint64_t u = 0;
  double d = 0.0;

  static MetricValue Of(uint64_t v) { return {Kind::kUint, v, 0.0}; }
  static MetricValue Of(double v) { return {Kind::kDouble, 0, v}; }
  double AsDouble() const {
    return kind == Kind::kUint ? static_cast<double>(u) : d;
  }
};

struct MetricEntry {
  std::string name;
  MetricValue value;
};

// A snapshot is a flat, name-sorted view of every registered metric.
class MetricsSnapshot {
 public:
  const std::vector<MetricEntry>& entries() const { return entries_; }
  // Value of `name`, or nullptr when the snapshot has no such metric.
  const MetricValue* Find(const std::string& name) const;

 private:
  friend class MetricsRegistry;
  std::vector<MetricEntry> entries_;
};

// Monotone counter owned by the registry; components hold the pointer
// returned by AddCounter and increment through it.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Last-write-wins gauge.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

// Distribution metric; snapshots emit
// <name>.count/.mean/.min/.p50/.p99/.p999/.max.
class HistogramMetric {
 public:
  void Record(uint64_t v) { hist_.Record(v); }
  void Reset() { hist_.Reset(); }
  const Histogram& histogram() const { return hist_; }

 private:
  Histogram hist_;
};

// Callback sink handed to providers at snapshot time.
class MetricsEmitter {
 public:
  void Emit(std::string name, uint64_t value) {
    out_->push_back({std::move(name), MetricValue::Of(value)});
  }
  void Emit(std::string name, double value) {
    out_->push_back({std::move(name), MetricValue::Of(value)});
  }

 private:
  friend class MetricsRegistry;
  explicit MetricsEmitter(std::vector<MetricEntry>* out) : out_(out) {}
  std::vector<MetricEntry>* out_;
};

class MetricsRegistry {
 public:
  using Provider = std::function<void(MetricsEmitter&)>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Owned instruments. The returned pointer stays valid until RemoveOwner
  // (or registry destruction); `name` is the full dotted path.
  Counter* AddCounter(const void* owner, std::string name);
  Gauge* AddGauge(const void* owner, std::string name);
  HistogramMetric* AddHistogram(const void* owner, std::string name);

  // Registers a stats-struct walker. The callback runs at snapshot time, so
  // it may consult state (e.g. a virtual name()) that is not ready at
  // registration time.
  void AddProvider(const void* owner, Provider provider);

  // Drops every registration made with `owner`. Owned instrument pointers
  // for that owner become invalid.
  void RemoveOwner(const void* owner);

  // Walks every registration; entries are name-sorted and deduplicated
  // (duplicate names gain a "#2", "#3", ... suffix on the segment before the
  // final dot, in registration order).
  MetricsSnapshot Snapshot() const;

  // Zeroes every *owned* instrument. Providers mirror component-internal
  // structs and are intentionally untouched: their reset story belongs to
  // the component (e.g. MemoryDevice::ResetStats).
  void Reset();

  size_t registration_count() const { return entries_.size(); }

 private:
  struct Registration {
    const void* owner = nullptr;
    // Exactly one of these is set.
    std::string name;  // for owned instruments
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
    Provider provider;
  };

  std::vector<Registration> entries_;
};

}  // namespace hemem::obs

#endif  // HEMEM_OBS_METRICS_H_
