// Glue between the sim engine's lifecycle hook and the event tracer: names
// each engine thread's trace track after the thread (track id == stream id)
// and marks thread completion / end-of-run as instant events.

#ifndef HEMEM_OBS_ENGINE_TRACE_H_
#define HEMEM_OBS_ENGINE_TRACE_H_

#include "obs/trace.h"
#include "sim/engine.h"

namespace hemem::obs {

class TraceEngineObserver : public EngineObserver {
 public:
  explicit TraceEngineObserver(EventTracer& tracer);

  void OnThreadAdded(const SimThread& thread) override;
  void OnThreadFinished(const SimThread& thread, SimTime now) override;
  void OnRunFinished(SimTime end) override;

 private:
  EventTracer& tracer_;
  TrackId engine_track_;
};

}  // namespace hemem::obs

#endif  // HEMEM_OBS_ENGINE_TRACE_H_
