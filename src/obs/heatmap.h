// Address-space heat timelines.
//
// A chunked (address-chunk x time-window) matrix of observed accesses: each
// cell counts reads and writes and remembers the tier that served the last
// access, so a run's hotset drift (fig9) and the tiering manager's migration
// lag become visible as a 2-D heat map. Fed from the observed access path
// (Machine::EnableAccessObservation); never touched on the plain hot path.
//
// Outputs:
//  * WriteJson — compact JSON, sparse over touched cells:
//      {"chunk_bytes":..,"window_ns":..,"chunks":[
//        {"base":<va>,"windows":[{"w":<idx>,"reads":..,"writes":..,"tier":..},..]},..]}
//  * EmitCounters — Perfetto counter tracks ('C' phase), one track per
//    hottest chunk plus per-tier aggregate tracks, one sample per window.

#ifndef HEMEM_OBS_HEATMAP_H_
#define HEMEM_OBS_HEATMAP_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/units.h"
#include "obs/trace.h"

namespace hemem::obs {

class HeatTimeline {
 public:
  struct Options {
    uint64_t chunk_bytes = MiB(4);         // address-space bin width
    SimTime window_ns = 10 * kMillisecond;  // time bin width
  };

  struct Cell {
    uint64_t reads = 0;
    uint64_t writes = 0;
    int8_t last_tier = -1;  // tier of the most recent access in the window
  };

  // (chunk index, window index) -> cell; ordered so emission walks the
  // address space and time monotonically.
  using CellMap = std::map<std::pair<uint64_t, uint64_t>, Cell>;

  explicit HeatTimeline(const Options& options) : options_(options) {}

  void Record(uint64_t va, bool is_store, int tier, SimTime now) {
    const uint64_t chunk = va / options_.chunk_bytes;
    const uint64_t window =
        static_cast<uint64_t>(now) / static_cast<uint64_t>(options_.window_ns);
    // Accesses cluster heavily in (chunk, window); one cached cell pointer
    // turns the common case into two compares.
    if (cached_cell_ == nullptr || cached_key_.first != chunk ||
        cached_key_.second != window) {
      cached_key_ = {chunk, window};
      cached_cell_ = &cells_[cached_key_];
    }
    cached_cell_->reads += is_store ? 0 : 1;
    cached_cell_->writes += is_store ? 1 : 0;
    cached_cell_->last_tier = static_cast<int8_t>(tier);
    ++samples_;
  }

  const Options& options() const { return options_; }
  const CellMap& cells() const { return cells_; }
  uint64_t samples() const { return samples_; }

  bool WriteJson(const std::string& path) const;

  // Emits per-window counter samples onto the tracer: aggregate
  // "heat.dram"/"heat.nvm" access-rate tracks, plus one track per chunk for
  // the `max_chunk_tracks` chunks with the most total accesses (a cap keeps
  // a TiB-wide sweep from minting thousands of Perfetto tracks).
  void EmitCounters(EventTracer& tracer, int max_chunk_tracks = 24) const;

 private:
  Options options_;
  CellMap cells_;
  uint64_t samples_ = 0;
  std::pair<uint64_t, uint64_t> cached_key_ = {~0ull, ~0ull};
  Cell* cached_cell_ = nullptr;
};

}  // namespace hemem::obs

#endif  // HEMEM_OBS_HEATMAP_H_
