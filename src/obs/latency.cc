#include "obs/latency.h"

namespace hemem::obs {

const char* LatencyRecorder::ComponentName(int c) {
  switch (c) {
    case kTranslation: return "translation";
    case kFault: return "fault";
    case kWpStall: return "wp_stall";
    case kQueue: return "queue";
    case kMedia: return "media";
    case kOther: return "other";
    default: return "total";
  }
}

LatencyRecorder::LatencyRecorder(MetricsRegistry& registry) : registry_(registry) {}

LatencyRecorder::~LatencyRecorder() { registry_.RemoveOwner(this); }

int LatencyRecorder::RegisterManager(const std::string& name) {
  auto slot = std::make_unique<ManagerSlot>();
  slot->name = name;
  static const char* kTierNames[kNumTiers] = {"dram", "nvm"};
  for (int tier = 0; tier < kNumTiers; ++tier) {
    TierSlot& ts = slot->tiers[static_cast<size_t>(tier)];
    const std::string prefix =
        "latency." + name + "." + kTierNames[tier] + ".";
    for (int c = 0; c < kNumComponents; ++c) {
      ts.hist[static_cast<size_t>(c)] =
          registry_.AddHistogram(this, prefix + ComponentName(c));
    }
    // Exact component sums next to the bucketed percentiles; report_diff and
    // the additivity test read these.
    registry_.AddProvider(this, [&ts, prefix](MetricsEmitter& e) {
      e.Emit(prefix + "translation.sum_ns", ts.totals.translation_ns);
      e.Emit(prefix + "fault.sum_ns", ts.totals.fault_ns);
      e.Emit(prefix + "wp_stall.sum_ns", ts.totals.wp_stall_ns);
      e.Emit(prefix + "queue.sum_ns", ts.totals.queue_ns);
      e.Emit(prefix + "media.sum_ns", ts.totals.media_ns);
      e.Emit(prefix + "other.sum_ns", ts.totals.other_ns);
      e.Emit(prefix + "total.sum_ns", ts.totals.end_to_end_ns);
    });
  }
  slots_.push_back(std::move(slot));
  return static_cast<int>(slots_.size()) - 1;
}

}  // namespace hemem::obs
