// Migration-causality audit trail.
//
// Every policy decision pass gets a pass id; every migration the pass queues
// gets its own decision record, stamped through the manager's migration
// machinery (Hemem::Migration carries the record id) so completion, abort,
// and every subsequent access to the moved page land back on the record.
// Post-hoc each record classifies as:
//   good_promotion      promoted page was accessed >= threshold times before
//                       its next migration (the move paid for itself)
//   churn_promotion     promoted page saw fewer accesses — wasted bandwidth
//   good_demotion       demoted page stayed cold
//   premature_demotion  demoted page kept getting accessed (now from NVM)
//   ping_pong           the move was reversed within the ping-pong window
//   aborted             the migration rolled back (fault injection)
// This turns policy_shootout's scalar regret into per-decision attribution:
// BENCH_policy.json gains an "audit" block with these counts per policy.
//
// Tier convention matches the vm layer: 0 = DRAM, 1 = NVM; a migration with
// dst_tier == 0 is a promotion.

#ifndef HEMEM_OBS_AUDIT_H_
#define HEMEM_OBS_AUDIT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"

namespace hemem::obs {

class MigrationAudit {
 public:
  struct Options {
    // Post-move accesses that justify a promotion (or convict a demotion).
    uint64_t good_access_threshold = 4;
    // A reversal completing within this much virtual time of the original
    // move marks the original as ping-pong.
    SimTime ping_pong_window = 50 * kMillisecond;
    // WriteJson caps the per-decision listing (the summary always covers
    // every record).
    size_t max_json_decisions = 50'000;
  };

  enum class Outcome : uint8_t {
    kPending,  // storage state only; Classify() resolves it
    kAborted,
    kGoodPromotion,
    kChurnPromotion,
    kGoodDemotion,
    kPrematureDemotion,
    kPingPong,
    // Non-exclusive migration mode: a demotion served by flipping the
    // mapping back onto the page's clean NVM shadow — zero bytes moved, so
    // the decision cost nothing even if the page heats up again.
    kShadowDemotion,
  };

  struct Record {
    uint64_t id = 0;       // 1-based decision id
    uint32_t pass = 0;     // index into passes()
    uint64_t page_va = 0;  // page base address
    int8_t src_tier = 0;
    int8_t dst_tier = 0;
    SimTime queued_ns = 0;
    SimTime completed_ns = -1;  // -1 while in flight / after abort
    uint64_t accesses_after = 0;
    Outcome stored = Outcome::kPending;  // kAborted / kPingPong stick here
  };

  struct Pass {
    uint64_t id = 0;
    std::string policy;
    SimTime begin_ns = 0;
    uint32_t migrations = 0;
  };

  struct Summary {
    uint64_t passes = 0;
    uint64_t migrations = 0;
    uint64_t aborted = 0;
    uint64_t good_promotions = 0;
    uint64_t churn_promotions = 0;
    uint64_t good_demotions = 0;
    uint64_t premature_demotions = 0;
    uint64_t ping_pongs = 0;
    uint64_t shadow_demotions = 0;
  };

  explicit MigrationAudit(const Options& options) : options_(options) {}

  // One policy Decide() invocation; returns its pass id (1-based).
  uint64_t BeginDecisionPass(const std::string& policy, SimTime now);

  // A migration queued under `pass_id`; returns the decision-record id the
  // caller stamps onto its migration descriptor (0 is never returned).
  uint64_t OnMigrationQueued(uint64_t pass_id, uint64_t page_va, int src_tier,
                             int dst_tier, SimTime now);

  void OnMigrationComplete(uint64_t record_id, SimTime now);
  void OnMigrationAborted(uint64_t record_id, SimTime now);
  // A zero-copy shadow-flip demotion resolved the record the instant it was
  // queued. Maintains the same reversal bookkeeping as a completed copy
  // (the flip can expose an earlier promotion as ping-pong), then stores the
  // sticky kShadowDemotion outcome.
  void OnShadowFlip(uint64_t record_id, SimTime now);

  // Called from the observed access path for every access; attributes the
  // access to the page's most recent completed migration, if any. The miss
  // path (page never migrated) is one hash probe.
  void OnPageAccess(uint64_t page_va, SimTime now) {
    (void)now;
    const auto it = live_.find(page_va);
    if (it == live_.end()) {
      return;
    }
    records_[it->second].accesses_after++;
  }

  // Final class of a record (resolves kPending via the access threshold).
  Outcome Classify(const Record& r) const;
  static const char* OutcomeName(Outcome o);

  Summary Summarize() const;
  const std::vector<Record>& records() const { return records_; }
  const std::vector<Pass>& passes() const { return passes_; }
  const Options& options() const { return options_; }

  // Registers audit.* summary metrics on `registry` (owner = this).
  void RegisterMetrics(MetricsRegistry& registry);

  bool WriteJson(const std::string& path) const;

 private:
  Options options_;
  std::vector<Record> records_;
  std::vector<Pass> passes_;
  // page va -> index of its most recent *completed* migration record.
  std::unordered_map<uint64_t, uint32_t> live_;
};

}  // namespace hemem::obs

#endif  // HEMEM_OBS_AUDIT_H_
