#include "obs/metrics.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace hemem::obs {

const MetricValue* MetricsSnapshot::Find(const std::string& name) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const MetricEntry& e, const std::string& n) { return e.name < n; });
  return it != entries_.end() && it->name == name ? &it->value : nullptr;
}

Counter* MetricsRegistry::AddCounter(const void* owner, std::string name) {
  Registration reg;
  reg.owner = owner;
  reg.name = std::move(name);
  reg.counter = std::make_unique<Counter>();
  Counter* out = reg.counter.get();
  entries_.push_back(std::move(reg));
  return out;
}

Gauge* MetricsRegistry::AddGauge(const void* owner, std::string name) {
  Registration reg;
  reg.owner = owner;
  reg.name = std::move(name);
  reg.gauge = std::make_unique<Gauge>();
  Gauge* out = reg.gauge.get();
  entries_.push_back(std::move(reg));
  return out;
}

HistogramMetric* MetricsRegistry::AddHistogram(const void* owner, std::string name) {
  Registration reg;
  reg.owner = owner;
  reg.name = std::move(name);
  reg.histogram = std::make_unique<HistogramMetric>();
  HistogramMetric* out = reg.histogram.get();
  entries_.push_back(std::move(reg));
  return out;
}

void MetricsRegistry::AddProvider(const void* owner, Provider provider) {
  Registration reg;
  reg.owner = owner;
  reg.provider = std::move(provider);
  entries_.push_back(std::move(reg));
}

void MetricsRegistry::RemoveOwner(const void* owner) {
  std::erase_if(entries_, [owner](const Registration& r) { return r.owner == owner; });
}

namespace {

// Renames "prefix.leaf" to "prefix#<n>.leaf" (or "name" to "name#<n>" when
// there is no dot), so a duplicated provider keeps its leaves grouped.
std::string Disambiguate(const std::string& name, int n) {
  const size_t dot = name.rfind('.');
  const std::string suffix = "#" + std::to_string(n);
  if (dot == std::string::npos) {
    return name + suffix;
  }
  return name.substr(0, dot) + suffix + name.substr(dot);
}

}  // namespace

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::vector<MetricEntry> raw;
  MetricsEmitter emitter(&raw);
  for (const Registration& reg : entries_) {
    if (reg.counter != nullptr) {
      raw.push_back({reg.name, MetricValue::Of(reg.counter->value())});
    } else if (reg.gauge != nullptr) {
      raw.push_back({reg.name, MetricValue::Of(reg.gauge->value())});
    } else if (reg.histogram != nullptr) {
      const Histogram& h = reg.histogram->histogram();
      raw.push_back({reg.name + ".count", MetricValue::Of(h.count())});
      raw.push_back({reg.name + ".mean", MetricValue::Of(h.Mean())});
      raw.push_back({reg.name + ".min", MetricValue::Of(h.min())});
      raw.push_back({reg.name + ".p50", MetricValue::Of(h.Percentile(0.5))});
      raw.push_back({reg.name + ".p99", MetricValue::Of(h.Percentile(0.99))});
      raw.push_back({reg.name + ".p999", MetricValue::Of(h.Percentile(0.999))});
      raw.push_back({reg.name + ".max", MetricValue::Of(h.max())});
    } else if (reg.provider) {
      reg.provider(emitter);
    }
  }

  // Dedup in emission order: a repeated name (second HeMem instance under a
  // daemon) gets a stable ordinal suffix on its prefix segment.
  std::unordered_set<std::string> seen;
  std::unordered_map<std::string, int> dup_count;
  seen.reserve(raw.size());
  for (MetricEntry& e : raw) {
    if (seen.insert(e.name).second) {
      continue;
    }
    int n = ++dup_count[e.name] + 1;
    std::string renamed = Disambiguate(e.name, n);
    while (!seen.insert(renamed).second) {
      renamed = Disambiguate(e.name, ++n);
    }
    e.name = std::move(renamed);
  }

  MetricsSnapshot snapshot;
  snapshot.entries_ = std::move(raw);
  std::sort(snapshot.entries_.begin(), snapshot.entries_.end(),
            [](const MetricEntry& a, const MetricEntry& b) { return a.name < b.name; });
  return snapshot;
}

void MetricsRegistry::Reset() {
  for (Registration& reg : entries_) {
    if (reg.counter != nullptr) {
      reg.counter->Reset();
    } else if (reg.gauge != nullptr) {
      reg.gauge->Reset();
    } else if (reg.histogram != nullptr) {
      reg.histogram->Reset();
    }
  }
}

}  // namespace hemem::obs
