// Virtual-time event tracer emitting Chrome trace-event JSON.
//
// Components record duration ("X") and instant ("i") events against tracks:
// engine threads trace onto a track whose id is their stream id (named by
// TraceEngineObserver, see obs/engine_trace.h), and components (devices, the
// DMA engine, HeMem's helper logic) register named tracks of their own. The
// output of WriteJson loads directly into Perfetto / chrome://tracing;
// timestamps are the simulation's virtual nanoseconds, emitted in
// microseconds as the format requires.
//
// Cost contract: when the tracer is disabled (the default) the only cost at
// a call site is the inline enabled() branch the *caller* performs — every
// instrumentation point in the simulator checks enabled() (or holds a null
// tracer pointer) before building an event, so golden results and hot-path
// throughput are unchanged with observability off. Tracing is purely
// observational: it reads clocks, never advances them, so enabling it must
// not change simulated times either (asserted by tests/access_golden_test).

#ifndef HEMEM_OBS_TRACE_H_
#define HEMEM_OBS_TRACE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"

namespace hemem::obs {

using TrackId = uint32_t;

// Numeric event argument (shows in the Perfetto event pane).
struct TraceArg {
  const char* key;
  double value;
};

class EventTracer {
 public:
  struct Event {
    std::string name;
    const char* cat;  // callers pass string literals
    char phase;       // 'X' duration, 'i' instant, 'C' counter
    TrackId track;
    SimTime ts = 0;
    SimTime dur = 0;
    std::vector<std::pair<std::string, double>> args;
  };

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Returns the id of the component track named `name`, registering it on
  // first use. Component ids start at kComponentTrackBase so they never
  // collide with engine-thread tracks (track id == stream id).
  TrackId RegisterTrack(const std::string& name);

  // Names a thread track (track id == the thread's stream id).
  void NameThreadTrack(TrackId track, const std::string& name);

  // Complete duration event over [begin, end] of virtual time.
  void Duration(TrackId track, const char* name, const char* cat, SimTime begin,
                SimTime end, std::initializer_list<TraceArg> args = {});

  // Instant event at `t`.
  void Instant(TrackId track, const char* name, const char* cat, SimTime t,
               std::initializer_list<TraceArg> args = {});

  // Counter sample at `t` ('C' phase). Each arg key becomes one series on
  // the counter track in Perfetto; repeated calls with the same name build
  // the timeline (heat timelines use this for per-window access counts).
  void Counter(TrackId track, const char* name, const char* cat, SimTime t,
               std::initializer_list<TraceArg> args);

  // Display name for the whole trace's process row (pid 0). The "M"
  // process_name metadata record is emitted by WriteJson; when unset the
  // trace keeps Perfetto's bare "pid 0" label.
  void set_process_name(std::string name) { process_name_ = std::move(name); }
  const std::string& process_name() const { return process_name_; }

  size_t event_count() const { return events_.size(); }
  const std::vector<Event>& events() const { return events_; }

  // Serializes to Chrome trace-event JSON ({"traceEvents": [...]}), events
  // sorted by timestamp. Returns false when the file cannot be written.
  bool WriteJson(const std::string& path) const;

  void Clear() { events_.clear(); }

  static constexpr TrackId kComponentTrackBase = 1000;

 private:
  bool enabled_ = false;
  std::string process_name_;
  std::vector<Event> events_;
  // (track id, display name); thread tracks and component tracks share it.
  std::vector<std::pair<TrackId, std::string>> track_names_;
  TrackId next_component_track_ = kComponentTrackBase;
};

}  // namespace hemem::obs

#endif  // HEMEM_OBS_TRACE_H_
