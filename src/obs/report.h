// Machine-readable run reports: serializes a metrics snapshot (and,
// optionally, the sampler's time series) to JSON, and provides the one
// shared human-readable printer that replaces the per-bench hand-rolled
// stats dumps. Dotted metric names nest into objects, so
// "device.nvm.media_bytes_written" appears at
// metrics.device.nvm.media_bytes_written in the output.

#ifndef HEMEM_OBS_REPORT_H_
#define HEMEM_OBS_REPORT_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/sampler.h"

namespace hemem::obs {

// Free-form (key, value) strings recorded under "meta" in the report
// (workload name, system name, flag values, end time).
using ReportMeta = std::vector<std::pair<std::string, std::string>>;

// The snapshot as a nested JSON object (no surrounding report envelope).
std::string SnapshotToJson(const MetricsSnapshot& snapshot);

// Writes {"meta": {...}, "metrics": {...}, "series": {...}} to `path`.
// `sampler` may be null (the "series" section is then omitted); series
// values are the per-interval deltas the sampler recorded, with the
// sampling period alongside. Returns false if the file cannot be written.
bool WriteRunReport(const std::string& path, const MetricsSnapshot& snapshot,
                    const MetricsSampler* sampler = nullptr,
                    const ReportMeta& meta = {});

// One "name value" line per metric — the shared replacement for ad-hoc
// per-bench stats printing.
void PrintSnapshot(std::FILE* out, const MetricsSnapshot& snapshot);

}  // namespace hemem::obs

#endif  // HEMEM_OBS_REPORT_H_
