#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace hemem::obs {

TrackId EventTracer::RegisterTrack(const std::string& name) {
  for (const auto& [track, existing] : track_names_) {
    if (track >= kComponentTrackBase && existing == name) {
      return track;
    }
  }
  const TrackId track = next_component_track_++;
  track_names_.emplace_back(track, name);
  return track;
}

void EventTracer::NameThreadTrack(TrackId track, const std::string& name) {
  for (auto& [existing, existing_name] : track_names_) {
    if (existing == track) {
      existing_name = name;
      return;
    }
  }
  track_names_.emplace_back(track, name);
}

void EventTracer::Duration(TrackId track, const char* name, const char* cat,
                           SimTime begin, SimTime end,
                           std::initializer_list<TraceArg> args) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.phase = 'X';
  e.track = track;
  e.ts = begin;
  e.dur = end > begin ? end - begin : 0;
  e.args.reserve(args.size());
  for (const TraceArg& a : args) {
    e.args.emplace_back(a.key, a.value);
  }
  events_.push_back(std::move(e));
}

void EventTracer::Instant(TrackId track, const char* name, const char* cat,
                          SimTime t, std::initializer_list<TraceArg> args) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.phase = 'i';
  e.track = track;
  e.ts = t;
  e.args.reserve(args.size());
  for (const TraceArg& a : args) {
    e.args.emplace_back(a.key, a.value);
  }
  events_.push_back(std::move(e));
}

void EventTracer::Counter(TrackId track, const char* name, const char* cat,
                          SimTime t, std::initializer_list<TraceArg> args) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.phase = 'C';
  e.track = track;
  e.ts = t;
  e.args.reserve(args.size());
  for (const TraceArg& a : args) {
    e.args.emplace_back(a.key, a.value);
  }
  events_.push_back(std::move(e));
}

namespace {

// Trace-event names here are identifiers plus the occasional dot/dash, but
// escape defensively so the output always parses.
void WriteEscaped(FILE* f, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        std::fputs("\\\"", f);
        break;
      case '\\':
        std::fputs("\\\\", f);
        break;
      case '\n':
        std::fputs("\\n", f);
        break;
      case '\t':
        std::fputs("\\t", f);
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::fprintf(f, "\\u%04x", c);
        } else {
          std::fputc(c, f);
        }
    }
  }
}

// Virtual ns -> trace µs. Doubles keep sub-µs precision ("ts":12.345).
void WriteMicros(FILE* f, SimTime ns) {
  std::fprintf(f, "%" PRId64 ".%03d", ns / 1000,
               static_cast<int>(ns % 1000));
}

void WriteArgValue(FILE* f, double v) {
  // Counters and byte totals flow through double args; print integral
  // values without a mantissa so they stay exact and grep-able.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::fprintf(f, "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::fprintf(f, "%.6g", v);
  }
}

}  // namespace

bool EventTracer::WriteJson(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }

  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  bool first = true;

  // Process-name metadata, then track names, so viewers label everything
  // before any event: one simulated machine = one Perfetto process row.
  if (!process_name_.empty()) {
    std::fputs("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,"
               "\"args\":{\"name\":\"", f);
    WriteEscaped(f, process_name_);
    std::fputs("\"}}", f);
    first = false;
  }

  // Track-name metadata first, so viewers label tracks before any event.
  for (const auto& [track, name] : track_names_) {
    if (!first) {
      std::fputs(",\n", f);
    }
    first = false;
    std::fprintf(f,
                 "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":%u,"
                 "\"args\":{\"name\":\"",
                 track);
    WriteEscaped(f, name);
    std::fputs("\"}}", f);
    std::fprintf(f,
                 ",\n{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":0,"
                 "\"tid\":%u,\"args\":{\"sort_index\":%u}}",
                 track, track);
  }

  // Events sorted by begin time; ties keep emission order so nested/adjacent
  // phases stay deterministic.
  std::vector<uint32_t> order(events_.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return events_[a].ts < events_[b].ts;
  });

  for (const uint32_t idx : order) {
    const Event& e = events_[idx];
    if (!first) {
      std::fputs(",\n", f);
    }
    first = false;
    std::fputs("{\"ph\":\"", f);
    std::fputc(e.phase, f);
    std::fputs("\",\"name\":\"", f);
    WriteEscaped(f, e.name);
    std::fputs("\",\"cat\":\"", f);
    WriteEscaped(f, e.cat);
    std::fprintf(f, "\",\"pid\":0,\"tid\":%u,\"ts\":", e.track);
    WriteMicros(f, e.ts);
    if (e.phase == 'X') {
      std::fputs(",\"dur\":", f);
      WriteMicros(f, e.dur);
    } else if (e.phase == 'i') {
      std::fputs(",\"s\":\"t\"", f);
    }
    if (!e.args.empty()) {
      std::fputs(",\"args\":{", f);
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) {
          std::fputc(',', f);
        }
        first_arg = false;
        std::fputc('"', f);
        WriteEscaped(f, key);
        std::fputs("\":", f);
        WriteArgValue(f, value);
      }
      std::fputc('}', f);
    }
    std::fputc('}', f);
  }

  std::fputs("\n]}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace hemem::obs
