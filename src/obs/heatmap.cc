#include "obs/heatmap.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>
#include <vector>

namespace hemem::obs {

bool HeatTimeline::WriteJson(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f,
               "{\"chunk_bytes\": %" PRIu64 ", \"window_ns\": %" PRId64
               ", \"samples\": %" PRIu64 ",\n\"chunks\": [",
               options_.chunk_bytes, options_.window_ns, samples_);
  uint64_t current_chunk = ~0ull;
  bool first_chunk = true;
  bool first_window = true;
  for (const auto& [key, cell] : cells_) {
    const auto& [chunk, window] = key;
    if (chunk != current_chunk) {
      if (!first_chunk) {
        std::fputs("]}", f);
      }
      std::fprintf(f, "%s\n{\"base\": %" PRIu64 ", \"windows\": [",
                   first_chunk ? "" : ",", chunk * options_.chunk_bytes);
      current_chunk = chunk;
      first_chunk = false;
      first_window = true;
    }
    std::fprintf(f,
                 "%s{\"w\": %" PRIu64 ", \"reads\": %" PRIu64
                 ", \"writes\": %" PRIu64 ", \"tier\": %d}",
                 first_window ? "" : ", ", window, cell.reads, cell.writes,
                 static_cast<int>(cell.last_tier));
    first_window = false;
  }
  if (!first_chunk) {
    std::fputs("]}", f);
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

void HeatTimeline::EmitCounters(EventTracer& tracer, int max_chunk_tracks) const {
  if (!tracer.enabled() || cells_.empty()) {
    return;
  }

  // Rank chunks by total accesses to pick which get their own track.
  std::unordered_map<uint64_t, uint64_t> chunk_totals;
  for (const auto& [key, cell] : cells_) {
    chunk_totals[key.first] += cell.reads + cell.writes;
  }
  std::vector<std::pair<uint64_t, uint64_t>> ranked(chunk_totals.begin(),
                                                    chunk_totals.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (static_cast<int>(ranked.size()) > max_chunk_tracks) {
    ranked.resize(static_cast<size_t>(max_chunk_tracks));
  }
  std::unordered_map<uint64_t, TrackId> chunk_track;
  for (const auto& [chunk, total] : ranked) {
    char name[64];
    std::snprintf(name, sizeof(name), "heat/chunk@%" PRIu64 "MiB",
                  chunk * options_.chunk_bytes >> 20);
    chunk_track[chunk] = tracer.RegisterTrack(name);
  }
  const TrackId dram_track = tracer.RegisterTrack("heat/dram");
  const TrackId nvm_track = tracer.RegisterTrack("heat/nvm");

  // One counter sample per touched (chunk, window); per-tier aggregates
  // accumulate across chunks of the same window (the map iterates
  // chunk-major, so windows repeat — aggregate first, then emit).
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> tier_per_window;
  for (const auto& [key, cell] : cells_) {
    const auto& [chunk, window] = key;
    const SimTime ts = static_cast<SimTime>(window) * options_.window_ns;
    const auto it = chunk_track.find(chunk);
    if (it != chunk_track.end()) {
      tracer.Counter(it->second, "accesses", "heat", ts,
                     {{"reads", static_cast<double>(cell.reads)},
                      {"writes", static_cast<double>(cell.writes)}});
    }
    auto& [dram, nvm] = tier_per_window[window];
    (cell.last_tier == 0 ? dram : nvm) += cell.reads + cell.writes;
  }
  for (const auto& [window, counts] : tier_per_window) {
    const SimTime ts = static_cast<SimTime>(window) * options_.window_ns;
    tracer.Counter(dram_track, "accesses", "heat", ts,
                   {{"accesses", static_cast<double>(counts.first)}});
    tracer.Counter(nvm_track, "accesses", "heat", ts,
                   {{"accesses", static_cast<double>(counts.second)}});
  }
}

}  // namespace hemem::obs
