#include "obs/audit.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace hemem::obs {

uint64_t MigrationAudit::BeginDecisionPass(const std::string& policy, SimTime now) {
  Pass pass;
  pass.id = static_cast<uint64_t>(passes_.size()) + 1;
  pass.policy = policy;
  pass.begin_ns = now;
  passes_.push_back(std::move(pass));
  return passes_.back().id;
}

uint64_t MigrationAudit::OnMigrationQueued(uint64_t pass_id, uint64_t page_va,
                                           int src_tier, int dst_tier,
                                           SimTime now) {
  Record r;
  r.id = static_cast<uint64_t>(records_.size()) + 1;
  // pass_id 0 = a migration outside any Decide() pass (e.g. a fault-path
  // inline demotion); it audits like any other, under a synthetic pass 0.
  r.pass = pass_id > 0 ? static_cast<uint32_t>(pass_id - 1) : ~0u;
  r.page_va = page_va;
  r.src_tier = static_cast<int8_t>(src_tier);
  r.dst_tier = static_cast<int8_t>(dst_tier);
  r.queued_ns = now;
  records_.push_back(r);
  if (r.pass != ~0u) {
    passes_[r.pass].migrations++;
  }
  return records_.back().id;
}

void MigrationAudit::OnMigrationComplete(uint64_t record_id, SimTime now) {
  if (record_id == 0 || record_id > records_.size()) {
    return;
  }
  Record& r = records_[record_id - 1];
  r.completed_ns = now;

  // If this move reverses the page's previous move within the window, the
  // previous decision was a ping-pong (it got undone almost immediately).
  const auto it = live_.find(r.page_va);
  if (it != live_.end()) {
    Record& prev = records_[it->second];
    if (prev.stored == Outcome::kPending && r.dst_tier == prev.src_tier &&
        now - prev.completed_ns <= options_.ping_pong_window) {
      prev.stored = Outcome::kPingPong;
    }
  }
  live_[r.page_va] = static_cast<uint32_t>(record_id - 1);
}

void MigrationAudit::OnShadowFlip(uint64_t record_id, SimTime now) {
  if (record_id == 0 || record_id > records_.size()) {
    return;
  }
  Record& r = records_[record_id - 1];
  r.completed_ns = now;
  // Same reversal rule as a completed copy: a flip undoing the page's recent
  // promotion still convicts that promotion of ping-pong — the promotion's
  // copy was wasted even though the flip itself was free.
  const auto it = live_.find(r.page_va);
  if (it != live_.end()) {
    Record& prev = records_[it->second];
    if (prev.stored == Outcome::kPending && r.dst_tier == prev.src_tier &&
        now - prev.completed_ns <= options_.ping_pong_window) {
      prev.stored = Outcome::kPingPong;
    }
  }
  live_[r.page_va] = static_cast<uint32_t>(record_id - 1);
  r.stored = Outcome::kShadowDemotion;
}

void MigrationAudit::OnMigrationAborted(uint64_t record_id, SimTime now) {
  (void)now;
  if (record_id == 0 || record_id > records_.size()) {
    return;
  }
  records_[record_id - 1].stored = Outcome::kAborted;
}

MigrationAudit::Outcome MigrationAudit::Classify(const Record& r) const {
  if (r.stored != Outcome::kPending) {
    return r.stored;
  }
  const bool justified = r.accesses_after >= options_.good_access_threshold;
  if (r.dst_tier == 0) {  // promotion
    return justified ? Outcome::kGoodPromotion : Outcome::kChurnPromotion;
  }
  return justified ? Outcome::kPrematureDemotion : Outcome::kGoodDemotion;
}

const char* MigrationAudit::OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kAborted: return "aborted";
    case Outcome::kGoodPromotion: return "good_promotion";
    case Outcome::kChurnPromotion: return "churn_promotion";
    case Outcome::kGoodDemotion: return "good_demotion";
    case Outcome::kPrematureDemotion: return "premature_demotion";
    case Outcome::kPingPong: return "ping_pong";
    case Outcome::kShadowDemotion: return "shadow_demotion";
    default: return "pending";
  }
}

MigrationAudit::Summary MigrationAudit::Summarize() const {
  Summary s;
  s.passes = passes_.size();
  s.migrations = records_.size();
  for (const Record& r : records_) {
    switch (Classify(r)) {
      case Outcome::kAborted: s.aborted++; break;
      case Outcome::kGoodPromotion: s.good_promotions++; break;
      case Outcome::kChurnPromotion: s.churn_promotions++; break;
      case Outcome::kGoodDemotion: s.good_demotions++; break;
      case Outcome::kPrematureDemotion: s.premature_demotions++; break;
      case Outcome::kPingPong: s.ping_pongs++; break;
      case Outcome::kShadowDemotion: s.shadow_demotions++; break;
      default: break;
    }
  }
  return s;
}

void MigrationAudit::RegisterMetrics(MetricsRegistry& registry) {
  registry.AddProvider(this, [this](MetricsEmitter& e) {
    const Summary s = Summarize();
    e.Emit("audit.passes", s.passes);
    e.Emit("audit.migrations", s.migrations);
    e.Emit("audit.aborted", s.aborted);
    e.Emit("audit.good_promotions", s.good_promotions);
    e.Emit("audit.churn_promotions", s.churn_promotions);
    e.Emit("audit.good_demotions", s.good_demotions);
    e.Emit("audit.premature_demotions", s.premature_demotions);
    e.Emit("audit.ping_pongs", s.ping_pongs);
    e.Emit("audit.shadow_demotions", s.shadow_demotions);
  });
}

bool MigrationAudit::WriteJson(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const Summary s = Summarize();
  std::fprintf(f,
               "{\"good_access_threshold\": %" PRIu64
               ", \"ping_pong_window_ns\": %" PRId64 ",\n\"summary\": {"
               "\"passes\": %" PRIu64 ", \"migrations\": %" PRIu64
               ", \"aborted\": %" PRIu64 ", \"good_promotions\": %" PRIu64
               ", \"churn_promotions\": %" PRIu64 ", \"good_demotions\": %" PRIu64
               ", \"premature_demotions\": %" PRIu64 ", \"ping_pongs\": %" PRIu64
               ", \"shadow_demotions\": %" PRIu64
               "},\n\"truncated\": %s,\n\"decisions\": [",
               options_.good_access_threshold, options_.ping_pong_window,
               s.passes, s.migrations, s.aborted, s.good_promotions,
               s.churn_promotions, s.good_demotions, s.premature_demotions,
               s.ping_pongs, s.shadow_demotions,
               records_.size() > options_.max_json_decisions ? "true" : "false");
  const size_t limit =
      records_.size() > options_.max_json_decisions ? options_.max_json_decisions
                                                    : records_.size();
  for (size_t i = 0; i < limit; ++i) {
    const Record& r = records_[i];
    const char* policy =
        r.pass != ~0u ? passes_[r.pass].policy.c_str() : "(inline)";
    std::fprintf(f,
                 "%s\n{\"id\": %" PRIu64 ", \"pass\": %" PRId64
                 ", \"policy\": \"%s\", \"page\": %" PRIu64
                 ", \"src\": %d, \"dst\": %d, \"queued_ns\": %" PRId64
                 ", \"completed_ns\": %" PRId64 ", \"accesses_after\": %" PRIu64
                 ", \"outcome\": \"%s\"}",
                 i == 0 ? "" : ",", r.id,
                 r.pass != ~0u ? static_cast<int64_t>(r.pass) + 1 : 0, policy,
                 r.page_va, static_cast<int>(r.src_tier),
                 static_cast<int>(r.dst_tier), r.queued_ns, r.completed_ns,
                 r.accesses_after, OutcomeName(Classify(r)));
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace hemem::obs
