// Periodic metrics sampler: a passive engine actor that snapshots the
// registry every `period` of virtual time and records the per-interval
// *delta* of each numeric metric into a TimeSeries keyed by metric name.
// Plotting a counter's series gives the paper's "instantaneous" views
// (Fig. 9 instantaneous GUPS, Fig. 16 per-interval NVM writes) without any
// per-bench plumbing. Gauges are sampled the same way, so their series shows
// per-interval change; their absolute value lives in the final snapshot.
//
// Register with Engine::AddObserverThread — NOT AddThread — so the sampler
// does not consume a stream id (stream ids feed device sequential detection
// and PEBS context counters; shifting them would change golden results).
// The sampler reads state only and declares cpu_share 0, so enabling it
// leaves every simulated clock untouched.

#ifndef HEMEM_OBS_SAMPLER_H_
#define HEMEM_OBS_SAMPLER_H_

#include <map>
#include <string>
#include <unordered_map>

#include "common/time_series.h"
#include "obs/metrics.h"
#include "sim/engine.h"

namespace hemem::obs {

class MetricsSampler : public PeriodicThread {
 public:
  MetricsSampler(const MetricsRegistry& registry, SimTime period);

  SimTime Tick() override;

  // One TimeSeries per metric name, bucket width == sampling period. Deltas
  // for interval [k*period, (k+1)*period) land in bucket k.
  const std::map<std::string, TimeSeries>& series() const { return series_; }

  size_t samples_taken() const { return samples_taken_; }

 private:
  const MetricsRegistry& registry_;
  std::map<std::string, TimeSeries> series_;
  std::unordered_map<std::string, double> prev_;
  SimTime prev_time_ = 0;
  bool have_prev_ = false;
  size_t samples_taken_ = 0;
};

}  // namespace hemem::obs

#endif  // HEMEM_OBS_SAMPLER_H_
