#include "obs/sampler.h"

namespace hemem::obs {

MetricsSampler::MetricsSampler(const MetricsRegistry& registry, SimTime period)
    : PeriodicThread("metrics-sampler", period, /*cpu_share=*/0.0),
      registry_(registry) {}

SimTime MetricsSampler::Tick() {
  const MetricsSnapshot snapshot = registry_.Snapshot();
  ++samples_taken_;
  if (have_prev_) {
    for (const MetricEntry& e : snapshot.entries()) {
      const double value = e.value.AsDouble();
      const auto it = prev_.find(e.name);
      // Metrics that appear mid-run (a manager constructed after the first
      // sample) start contributing from their next interval.
      if (it != prev_.end()) {
        const double delta = value - it->second;
        series_.try_emplace(e.name, period()).first->second.Record(prev_time_, delta);
      }
    }
  }
  prev_.clear();
  for (const MetricEntry& e : snapshot.entries()) {
    prev_[e.name] = e.value.AsDouble();
  }
  have_prev_ = true;
  prev_time_ = now();
  return 0;  // pure observation: no simulated work
}

}  // namespace hemem::obs
