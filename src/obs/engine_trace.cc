#include "obs/engine_trace.h"

namespace hemem::obs {

TraceEngineObserver::TraceEngineObserver(EventTracer& tracer)
    : tracer_(tracer), engine_track_(tracer.RegisterTrack("engine")) {}

void TraceEngineObserver::OnThreadAdded(const SimThread& thread) {
  if (!tracer_.enabled() || thread.stream_id() == Engine::kObserverStreamId) {
    return;
  }
  tracer_.NameThreadTrack(thread.stream_id(), thread.name());
}

void TraceEngineObserver::OnThreadFinished(const SimThread& thread, SimTime now) {
  if (!tracer_.enabled() || thread.stream_id() == Engine::kObserverStreamId) {
    return;
  }
  tracer_.Instant(thread.stream_id(), "thread_finished", "engine", now);
}

void TraceEngineObserver::OnRunFinished(SimTime end) {
  if (!tracer_.enabled()) {
    return;
  }
  tracer_.Instant(engine_track_, "run_finished", "engine", end);
}

}  // namespace hemem::obs
