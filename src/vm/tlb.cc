#include "vm/tlb.h"

#include "obs/trace.h"

namespace hemem {

SimTime Tlb::Shootdown(Engine& engine, SimThread* initiator) {
  return ShootdownBatch(engine, initiator, 1);
}

SimTime Tlb::ShootdownBatch(Engine& engine, SimThread* initiator, uint64_t count) {
  if (count == 0) {
    return 0;
  }
  stats_.shootdowns += count;
  const int victims = engine.live_foreground() - (initiator != nullptr &&
                                                  initiator->foreground()
                                                      ? 1
                                                      : 0);
  if (victims > 0) {
    stats_.victim_interrupts += count * static_cast<uint64_t>(victims);
    engine.PenalizeForeground(static_cast<SimTime>(count) * params_.victim_cost, initiator);
  }
  if (tracer_ != nullptr) [[unlikely]] {
    const SimTime t = initiator != nullptr ? initiator->now() : engine.now();
    tracer_->Instant(trace_track_, "tlb_shootdown", "vm", t,
                     {{"count", static_cast<double>(count)},
                      {"victims", static_cast<double>(victims > 0 ? victims : 0)}});
  }
  const SimTime cost = static_cast<SimTime>(count) * params_.initiator_cost;
  if (initiator != nullptr) {
    initiator->Advance(cost);
  }
  return cost;
}

}  // namespace hemem
