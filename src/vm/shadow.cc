#include "vm/shadow.h"

#include <cassert>

namespace hemem {

ShadowMemory::ShadowMemory(uint64_t page_bytes)
    : page_bytes_(page_bytes), page_words_(page_bytes / sizeof(uint64_t)) {
  assert(page_words_ > 0);
}

uint64_t ShadowMemory::Load(PageTable& page_table, uint64_t va) {
  const PageTable::Resolution r = page_table.Resolve(va);
  if (r.entry == nullptr || !r.entry->present) {
    return 0;
  }
  const auto it = pages_.find(Key(r.entry->tier, r.entry->frame));
  if (it == pages_.end()) {
    return 0;
  }
  return it->second[(va & (page_bytes_ - 1)) / sizeof(uint64_t)];
}

void ShadowMemory::Store(PageTable& page_table, uint64_t va, uint64_t value) {
  const PageTable::Resolution r = page_table.Resolve(va);
  if (r.entry == nullptr || !r.entry->present) {
    return;
  }
  std::vector<uint64_t>& page = pages_[Key(r.entry->tier, r.entry->frame)];
  if (page.empty()) {
    page.assign(page_words_, 0);
  }
  page[(va & (page_bytes_ - 1)) / sizeof(uint64_t)] = value;
}

void ShadowMemory::MovePage(Tier src_tier, uint32_t src_frame, Tier dst_tier,
                            uint32_t dst_frame) {
  const uint64_t src = Key(src_tier, src_frame);
  const uint64_t dst = Key(dst_tier, dst_frame);
  const auto it = pages_.find(src);
  if (it == pages_.end()) {
    // Source page was never written: the destination reads as zeros too.
    pages_.erase(dst);
    return;
  }
  std::vector<uint64_t> data = std::move(it->second);
  pages_.erase(it);
  pages_[dst] = std::move(data);
}

void ShadowMemory::CopyPage(Tier src_tier, uint32_t src_frame, Tier dst_tier,
                            uint32_t dst_frame) {
  const uint64_t src = Key(src_tier, src_frame);
  const uint64_t dst = Key(dst_tier, dst_frame);
  const auto it = pages_.find(src);
  if (it == pages_.end()) {
    pages_.erase(dst);
    return;
  }
  std::vector<uint64_t> data = it->second;  // insertion below may rehash
  pages_[dst] = std::move(data);
}

bool ShadowMemory::PagesEqual(Tier a_tier, uint32_t a_frame, Tier b_tier,
                              uint32_t b_frame) const {
  const auto a = pages_.find(Key(a_tier, a_frame));
  const auto b = pages_.find(Key(b_tier, b_frame));
  const bool a_absent = a == pages_.end();
  const bool b_absent = b == pages_.end();
  if (a_absent || b_absent) {
    return a_absent == b_absent;
  }
  return a->second == b->second;
}

void ShadowMemory::DropPage(Tier tier, uint32_t frame) {
  pages_.erase(Key(tier, frame));
}

}  // namespace hemem
