#include "vm/page_table.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <memory>

namespace hemem {

Region* PageTable::MapRegion(uint64_t base, uint64_t bytes, uint64_t page_bytes, bool managed,
                             std::string label) {
  assert(bytes > 0 && page_bytes > 0);
  assert(std::has_single_bit(page_bytes));  // PageIndexOf shifts, not divides
  assert(base % page_bytes == 0);
  auto region = std::make_unique<Region>();
  region->base = base;
  region->bytes = RoundUp(bytes, page_bytes);
  region->page_bytes = page_bytes;
  region->page_shift = static_cast<uint32_t>(std::countr_zero(page_bytes));
  region->managed = managed;
  region->label = std::move(label);
  region->pages.resize(region->bytes / page_bytes);

  Region* raw = region.get();
  const auto pos = std::lower_bound(
      regions_.begin(), regions_.end(), base,
      [](const std::unique_ptr<Region>& r, uint64_t b) { return r->base < b; });
  // Overlap would be a caller bug: ReserveVa hands out disjoint ranges.
  assert(pos == regions_.end() || (*pos)->base >= base + region->bytes);
  assert(pos == regions_.begin() || (*(pos - 1))->end() <= base);
  total_mapped_ += region->bytes;
  missing_pages_ += raw->pages.size();  // pages start not-present
  regions_.insert(pos, std::move(region));
  last_hit_.store(raw, std::memory_order_relaxed);
  return raw;
}

bool PageTable::UnmapRegion(uint64_t base) {
  const auto pos = std::lower_bound(
      regions_.begin(), regions_.end(), base,
      [](const std::unique_ptr<Region>& r, uint64_t b) { return r->base < b; });
  if (pos == regions_.end() || (*pos)->base != base) {
    return false;
  }
  if (last_hit_.load(std::memory_order_relaxed) == pos->get()) {
    last_hit_.store(nullptr, std::memory_order_relaxed);
  }
  total_mapped_ -= (*pos)->bytes;
  for (const PageEntry& entry : (*pos)->pages) {
    if (!entry.present) {
      missing_pages_--;
    }
  }
  regions_.erase(pos);
  ++unmap_epoch_;
  return true;
}

Region* PageTable::FindSlow(uint64_t va) {
  // upper_bound-1: the last region whose base is <= va.
  auto pos = std::upper_bound(
      regions_.begin(), regions_.end(), va,
      [](uint64_t v, const std::unique_ptr<Region>& r) { return v < r->base; });
  if (pos == regions_.begin()) {
    return nullptr;
  }
  --pos;
  if (va >= (*pos)->end()) {
    return nullptr;
  }
  Region* hit = pos->get();
  last_hit_.store(hit, std::memory_order_relaxed);
  return hit;
}

PageEntry* PageTable::Lookup(uint64_t va) {
  Region* region = Find(va);
  if (region == nullptr) {
    return nullptr;
  }
  return &region->pages[region->PageIndexOf(va)];
}

void PageTable::ForEachRegion(const std::function<void(Region&)>& fn) {
  for (auto& region : regions_) {
    fn(*region);
  }
}

uint64_t PageTable::ReserveVa(uint64_t bytes, uint64_t align) {
  const uint64_t base = RoundUp(next_va_, align);
  next_va_ = base + RoundUp(bytes, align) + align;  // guard gap between regions
  return base;
}

std::vector<uint64_t> RadixCostModel::EntriesPerLevel(uint64_t bytes, uint64_t page_bytes) {
  // x86-64 radix: 512 entries per node. Leaf level covers `page_bytes` per
  // entry; each level above covers 512x more. 4 KiB pages walk 4 levels,
  // 2 MiB pages 3, 1 GiB pages 2.
  std::vector<uint64_t> levels;
  uint64_t coverage = page_bytes;
  constexpr uint64_t kTopCoverage = 1ull << 48;  // one root node covers 256 TiB
  while (coverage < kTopCoverage) {
    levels.push_back(CeilDiv(bytes, coverage));
    coverage *= 512;
  }
  if (levels.empty()) {
    levels.push_back(1);
  }
  return levels;
}

SimTime RadixCostModel::ScanTime(uint64_t bytes, uint64_t page_bytes) const {
  const std::vector<uint64_t> levels = EntriesPerLevel(bytes, page_bytes);
  double total = 0.0;
  for (size_t level = 0; level < levels.size(); ++level) {
    const uint64_t entries = levels[level];
    // Streamed examination of the entries themselves...
    total += static_cast<double>(entries) * pte_scan_cost;
    // ...plus a pointer chase into each 512-entry node of the level below the
    // current cursor (one fetch per node).
    const uint64_t nodes = CeilDiv(entries, 512);
    total += static_cast<double>(nodes * static_cast<uint64_t>(node_fetch_latency)) / 8.0;
  }
  return static_cast<SimTime>(total);
}

SimTime RadixCostModel::ClearCost(uint64_t pages_cleared, int other_cores,
                                  uint64_t pages_per_shootdown) const {
  if (pages_cleared == 0) {
    return 0;
  }
  const uint64_t shootdowns = CeilDiv(pages_cleared, pages_per_shootdown);
  const SimTime per = shootdown_base + shootdown_per_core * other_cores;
  return static_cast<SimTime>(shootdowns) * per;
}

}  // namespace hemem
