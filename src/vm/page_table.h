// Virtual-memory translation substrate.
//
// Two cooperating pieces:
//
//  * PageTable — the functional mapping tiering managers use: regions of
//    virtual address space with one PageEntry per tracking-granularity page
//    (present bit, owning device, frame, accessed/dirty bits, write-protect
//    state with a "migration completes at" timestamp). Lookup is a
//    last-region cache plus binary search, O(1) for the common case of a few
//    large heap regions.
//
//  * RadixCostModel — an x86-64 4-level radix page-table *timing* model used
//    to charge honest costs for page-table scans (Figure 3, the PT-scan
//    HeMem variants, and Nimble). It computes exact entry counts per level
//    for a mapping of a given size and page size, and converts them into
//    scan time: sequential PTE reads at memory bandwidth plus a per-node
//    pointer-chase latency, plus TLB-shootdown cost when accessed/dirty bits
//    are cleared.

#ifndef HEMEM_VM_PAGE_TABLE_H_
#define HEMEM_VM_PAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"

namespace hemem {

inline constexpr uint32_t kInvalidFrame = ~0u;

// Which physical device a page lives on. Values index Machine::device().
enum class Tier : uint8_t { kDram = 0, kNvm = 1 };
inline constexpr int kNumTiers = 2;
inline const char* TierName(Tier t) { return t == Tier::kDram ? "dram" : "nvm"; }

struct PageEntry {
  uint32_t frame = kInvalidFrame;
  Tier tier = Tier::kDram;
  bool present = false;
  // Swapped out to the block device; `frame` then holds the swap slot.
  bool swapped = false;
  bool write_protected = false;
  bool accessed = false;  // hardware A bit (set on any access)
  bool dirty = false;     // hardware D bit (set on stores)
  // While a migration is in flight, stores must wait until this time.
  SimTime wp_until = 0;
  // Non-exclusive (Nomad) tiering: NVM frame still holding a valid copy of a
  // promoted DRAM page. kInvalidFrame when the page has no shadow. The copy
  // is stale once `dirty` is set; managers drop it before acting on it.
  uint32_t shadow_frame = kInvalidFrame;

  bool has_shadow() const { return shadow_frame != kInvalidFrame; }
};

// Sets a PageEntry A/D flag with a relaxed atomic store — the same machine
// code as a plain store, but race-free when sharded epoch workers
// (src/tier/parallel.h) touch one page concurrently. Setting a flag that is
// already (or concurrently being) set is idempotent, and every reader (the
// PT-scan variants) runs outside epochs, ordered by the barrier join.
inline void MarkPageFlag(bool& flag) { __atomic_store_n(&flag, true, __ATOMIC_RELAXED); }

// A mapped virtual region with uniform page (tracking) granularity.
struct Region {
  uint64_t base = 0;
  uint64_t bytes = 0;
  uint64_t page_bytes = 0;
  uint32_t page_shift = 0;  // log2(page_bytes); page sizes are powers of two
  // True when the region is under tiered management (vs. left to the kernel).
  bool managed = true;
  // Opaque per-region slot for the owning tiering manager's metadata (HeMem
  // hangs its HememPage vector here). The PageTable never touches it; the
  // manager that sets it is responsible for releasing it before unmap.
  void* manager_data = nullptr;
  std::string label;
  std::vector<PageEntry> pages;

  uint64_t end() const { return base + bytes; }
  uint64_t num_pages() const { return pages.size(); }
  uint64_t PageIndexOf(uint64_t va) const { return (va - base) >> page_shift; }
};

class PageTable {
 public:
  PageTable() = default;

  // Creates a region covering [base, base + bytes). Pages start not-present.
  Region* MapRegion(uint64_t base, uint64_t bytes, uint64_t page_bytes, bool managed,
                    std::string label);
  // Removes the region starting at `base`; returns false if absent.
  bool UnmapRegion(uint64_t base);

  // Region containing va, or nullptr. Cached for repeat lookups; the cache
  // check stays inline so the common case costs one compare. The cached
  // pointer is relaxed-atomic because sharded epoch workers may race on it
  // (Map/Unmap stay single-threaded): any raced value is either null or a
  // live region the bounds check vets, so the answer is unaffected.
  Region* Find(uint64_t va) {
    // Unsigned wraparound folds the two range checks into one compare.
    Region* hit = last_hit_.load(std::memory_order_relaxed);
    if (hit != nullptr && va - hit->base < hit->bytes) {
      return hit;
    }
    return FindSlow(va);
  }

  // One-step translation for the access hot path: region, page entry, and
  // page index together. `region` is nullptr for unmapped addresses.
  struct Resolution {
    Region* region = nullptr;
    PageEntry* entry = nullptr;
    uint64_t index = 0;
  };
  Resolution Resolve(uint64_t va) {
    Region* region = Find(va);
    if (region == nullptr) {
      return {};
    }
    const uint64_t index = region->PageIndexOf(va);
    return {region, &region->pages[index], index};
  }

  // Entry for va (region must exist). Never returns nullptr for mapped vas.
  PageEntry* Lookup(uint64_t va);

  // Not-present page entries across all regions, maintained incrementally:
  // MapRegion adds the new region's page count (pages start not-present),
  // UnmapRegion subtracts the region's remaining not-present entries, and
  // every present-bit flip routes through SetPresent/ClearPresent. The epoch
  // gate's fully-mapped precondition is `missing_pages() == 0` — O(1) per
  // scheduling round instead of a full region scan. All flips happen on the
  // serial loop (fault paths and migrations never run inside epochs), so the
  // counter needs no synchronization.
  uint64_t missing_pages() const { return missing_pages_; }

  // Present-bit transitions. Idempotent: a flip to the value already held
  // leaves the counter alone.
  void SetPresent(PageEntry& entry) {
    if (!entry.present) {
      entry.present = true;
      missing_pages_--;
    }
  }
  void ClearPresent(PageEntry& entry) {
    if (entry.present) {
      entry.present = false;
      missing_pages_++;
    }
  }

  // Bumped on every UnmapRegion. Region pointers are stable across MapRegion
  // (only unmap invalidates them), so callers holding cached translations —
  // the per-thread translation caches in SimThread — revalidate by comparing
  // this epoch instead of registering for callbacks.
  uint64_t unmap_epoch() const { return unmap_epoch_; }

  // Iterates over all regions (managed and not).
  void ForEachRegion(const std::function<void(Region&)>& fn);

  uint64_t total_mapped_bytes() const { return total_mapped_; }

  // Returns a fresh virtual base address for a new allocation of `bytes`,
  // keeping regions disjoint and page-aligned.
  uint64_t ReserveVa(uint64_t bytes, uint64_t align);

 private:
  Region* FindSlow(uint64_t va);

  std::vector<std::unique_ptr<Region>> regions_;  // sorted by base
  std::atomic<Region*> last_hit_{nullptr};
  uint64_t next_va_ = 1ull << 40;  // arbitrary userspace heap base
  uint64_t total_mapped_ = 0;
  uint64_t unmap_epoch_ = 0;
  uint64_t missing_pages_ = 0;
};

// Timing model for walking/scanning a 4-level radix page table.
struct RadixCostModel {
  // Cost knobs (defaults approximate a Cascade Lake-class server).
  SimTime node_fetch_latency = 82;   // first touch of a 4 KiB table node
  double pte_scan_cost = 1.2;        // ns per PTE examined (streamed)
  // Initiator-side cost of one batched shootdown: IPIs broadcast in
  // parallel, so the per-core share is the ack-wait, not a serial handler.
  SimTime shootdown_base = 2 * kMicrosecond;
  SimTime shootdown_per_core = 50;  // ns of ack-wait per remote core

  // Entries that exist at each level (index 0 = leaf PTEs) for `bytes` of
  // mapping with `page_bytes` pages. Level count shrinks for huge/giga pages
  // exactly as on x86-64 (2 MiB pages have 3 levels, 1 GiB pages 2).
  static std::vector<uint64_t> EntriesPerLevel(uint64_t bytes, uint64_t page_bytes);

  // Time to scan every PTE (checking accessed/dirty bits) of such a mapping.
  SimTime ScanTime(uint64_t bytes, uint64_t page_bytes) const;

  // Additional cost of clearing A/D bits: one flush + shootdown to
  // `other_cores` cores per `pages_per_shootdown` cleared pages (batched).
  SimTime ClearCost(uint64_t pages_cleared, int other_cores,
                    uint64_t pages_per_shootdown = 512) const;
};

}  // namespace hemem

#endif  // HEMEM_VM_PAGE_TABLE_H_
