// Shadow contents for data-integrity verification.
//
// The simulator's working sets are synthetic — accesses are timed but no
// payload bytes exist — so a lost or misdirected migration copy is invisible
// to the timing model. ShadowMemory closes that hole for tests: it stores
// 64-bit words keyed by *physical* placement (tier, frame, offset), and the
// migration code moves a page's shadow contents only at its commit point.
// A workload that writes through the shadow and reads its values back after
// the run therefore catches lost copies, aborted-migration rollback bugs,
// and frame double-use: any of those leaves a word resolving to the wrong
// (tier, frame) and the readback mismatches.
//
// Purely bookkeeping — no virtual time is charged and no simulation state is
// read beyond the page table, so enabling it cannot perturb execution.
//
// Known limitation: the swap tier is not shadowed; a page's contents are
// dropped at swap-out, so verification is only meaningful with swap off.

#ifndef HEMEM_VM_SHADOW_H_
#define HEMEM_VM_SHADOW_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "vm/page_table.h"

namespace hemem {

class ShadowMemory {
 public:
  explicit ShadowMemory(uint64_t page_bytes);

  // Word at `va` per the current translation; 0 for unmapped, non-present,
  // or never-written locations (pages are zero-filled at first touch).
  uint64_t Load(PageTable& page_table, uint64_t va);
  // Stores through the current translation. No-op when the page is not
  // present (callers access through the manager first, which faults it in).
  void Store(PageTable& page_table, uint64_t va, uint64_t value);

  // Migration commit: the destination frame takes over the source frame's
  // contents (the source's backing is released).
  void MovePage(Tier src_tier, uint32_t src_frame, Tier dst_tier, uint32_t dst_frame);
  // Non-exclusive commit: the destination frame receives a copy of the
  // source frame's contents and the source stays valid (Nomad keeps the NVM
  // copy live as a shadow after promotion).
  void CopyPage(Tier src_tier, uint32_t src_frame, Tier dst_tier, uint32_t dst_frame);
  // True when both frames currently resolve to identical contents (both
  // absent counts as equal: never-written pages read as zeros). Test oracle
  // for the clean-shadow invariant.
  bool PagesEqual(Tier a_tier, uint32_t a_frame, Tier b_tier, uint32_t b_frame) const;
  // Frees a frame's contents — on migration abort (the copy is discarded)
  // and on zero-fill of a freshly allocated frame (stale contents from a
  // prior owner must not leak through frame reuse).
  void DropPage(Tier tier, uint32_t frame);

  uint64_t pages_backed() const { return pages_.size(); }

 private:
  static uint64_t Key(Tier tier, uint32_t frame) {
    return (static_cast<uint64_t>(tier) << 32) | frame;
  }

  uint64_t page_bytes_;
  uint64_t page_words_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> pages_;
};

}  // namespace hemem

#endif  // HEMEM_VM_SHADOW_H_
