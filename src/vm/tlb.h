// TLB shootdown accounting.
//
// Remapping or write-protecting a page, and clearing accessed/dirty bits,
// requires invalidating stale TLB entries on every core that may cache the
// translation. The initiating thread pays an IPI-send cost and every other
// running application thread pays an interrupt-handling cost. This is the
// overhead that makes page-table-based access tracking expensive at scale
// (Sections 2.3 and 5.1 of the paper) and that HeMem's batched, sampled
// design avoids.

#ifndef HEMEM_VM_TLB_H_
#define HEMEM_VM_TLB_H_

#include <cstdint>

#include "common/units.h"
#include "sim/engine.h"

namespace hemem {

namespace obs {
class EventTracer;
}

struct TlbParams {
  SimTime initiator_cost = 2 * kMicrosecond;  // send IPIs + wait for acks
  SimTime victim_cost = 1 * kMicrosecond;     // interrupt + invalidation on each core
};

struct TlbStats {
  uint64_t shootdowns = 0;
  uint64_t victim_interrupts = 0;
};

class Tlb {
 public:
  explicit Tlb(TlbParams params = TlbParams{}) : params_(params) {}

  // Performs one shootdown initiated by `initiator` (may be nullptr for
  // hardware-initiated flows): charges the initiator and penalizes every
  // live foreground thread in `engine`. Returns the initiator-side cost.
  SimTime Shootdown(Engine& engine, SimThread* initiator);

  // Batched form: `count` shootdowns coalesced into one pass (HeMem batches
  // per migration round). Victims still pay once per shootdown.
  SimTime ShootdownBatch(Engine& engine, SimThread* initiator, uint64_t count);

  const TlbStats& stats() const { return stats_; }
  const TlbParams& params() const { return params_; }

  // Observability: shootdowns emit instant events onto `track`.
  void SetTracer(obs::EventTracer* tracer, uint32_t track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

 private:
  TlbParams params_;
  TlbStats stats_;
  obs::EventTracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
};

}  // namespace hemem

#endif  // HEMEM_VM_TLB_H_
