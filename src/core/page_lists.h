// HeMem per-page metadata and the hot/cold FIFO queues.
//
// HeMem tracks every managed page's sampled read and write counts and keeps
// pages on one of four intrusive FIFO lists: {hot, cold} x {DRAM, NVM}
// (free space is tracked by the frame allocators). Intrusive links give O(1)
// membership moves on every sample, which matters because the PEBS thread
// touches a page's list position on each processed record.
//
// Cooling is the paper's lazy clock: a global epoch counter increments when
// any page accumulates the cooling threshold of sampled accesses; a page's
// counts are halved once per epoch it missed, the next time it is touched.

#ifndef HEMEM_CORE_PAGE_LISTS_H_
#define HEMEM_CORE_PAGE_LISTS_H_

#include <cstdint>

#include "vm/page_table.h"

namespace hemem {

enum class PageListId : uint8_t { kNone, kHot, kCold };

struct HememPage {
  Region* region = nullptr;
  uint32_t index = 0;

  uint32_t reads = 0;   // sampled loads since last cooling
  uint32_t writes = 0;  // sampled stores since last cooling
  uint64_t cool_snapshot = 0;
  uint64_t sample_stamp = ~0ull;  // epoch in which this page was last sampled
  bool write_heavy = false;
  // A formerly write-heavy page keeps one round on the hot list after
  // cooling drops it below the write threshold (paper Section 3.3).
  bool second_chance = false;

  PageListId list = PageListId::kNone;
  Tier list_tier = Tier::kDram;  // which tier's list the links belong to
  HememPage* prev = nullptr;
  HememPage* next = nullptr;

  // Nomad mode: index into Hemem::txns_ while a transactional copy is in
  // flight (-1 otherwise), and into Hemem::shadowed_ while the page holds a
  // live NVM shadow (swap-erase registries; both -1 in exclusive mode).
  int32_t txn_slot = -1;
  int32_t shadow_slot = -1;

  PageEntry& entry() const { return region->pages[index]; }
  Tier tier() const { return entry().tier; }
  uint64_t va() const { return region->base + static_cast<uint64_t>(index) * region->page_bytes; }
};

// Intrusive doubly-linked FIFO. Not owning; pages live in per-region arrays.
class PageList {
 public:
  PageList() = default;

  PageList(const PageList&) = delete;
  PageList& operator=(const PageList&) = delete;

  void PushBack(HememPage* page);
  void PushFront(HememPage* page);
  void Remove(HememPage* page);
  HememPage* PopFront();
  HememPage* PopBack();

  HememPage* front() const { return head_; }
  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  HememPage* head_ = nullptr;
  HememPage* tail_ = nullptr;
  uint64_t size_ = 0;
};

}  // namespace hemem

#endif  // HEMEM_CORE_PAGE_LISTS_H_
