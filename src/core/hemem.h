// HeMem: the paper's user-level tiered memory manager.
//
// Architecture (paper Figure 4c): applications' allocation calls are
// intercepted (Mmap below); small allocations are forwarded to the kernel
// and implicitly stay in DRAM, while large ranges are managed by HeMem
// through userfaultfd-style faults. Three asynchronous helper threads do all
// management work off the application's critical path:
//
//   * the PEBS thread drains the CPU's sample buffer and classifies pages
//     into per-tier hot/cold FIFO lists, cooling counts with a lazy clock;
//   * the policy thread (10 ms period) keeps a free-DRAM watermark and
//     migrates NVM-hot pages to DRAM (write-heavy pages first) in DMA
//     batches, write-protecting pages only for the duration of the copy;
//   * the fault path maps zero-filled pages, preferring DRAM.
//
// The scan mode selects the paper's ablations: kPebs is HeMem proper;
// kPtSync/kPtAsync replace sampling with page-table accessed/dirty-bit
// scanning (synchronously on the policy thread, or on a separate scan
// thread) — the configurations Figures 8, 9, 15 and 16 compare against;
// kNone disables tracking entirely (the "Opt" manual-placement bound).

#ifndef HEMEM_CORE_HEMEM_H_
#define HEMEM_CORE_HEMEM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/page_lists.h"
#include "mem/block_device.h"
#include "mem/dma.h"
#include "pebs/pebs.h"
#include "policy/policy.h"
#include "tier/machine.h"
#include "tier/manager.h"

namespace hemem {

class PebsThread;
class PtScanThread;
class HememPolicyThread;

struct HememParams {
  enum class ScanMode { kNone, kPebs, kPtSync, kPtAsync };

  // Migration mechanism (--migration). kExclusive is the paper's HeMem: a
  // migration owns the page, stores stall behind the in-flight copy
  // (wp_until), and the source frame is freed at commit. kNomad is
  // non-exclusive transactional migration (Nomad, see DESIGN.md "Migration
  // state machine"): copies run concurrently with access, a store during a
  // copy aborts the transaction instead of stalling, and a promoted page
  // keeps its NVM frame as a clean shadow so demoting an unwritten page is
  // a metadata flip with no data movement.
  enum class MigrationMode { kExclusive, kNomad };

  ScanMode scan_mode = ScanMode::kPebs;
  MigrationMode migration = MigrationMode::kExclusive;
  bool enable_policy = true;  // watermark enforcement + migration

  // Migration policy (--policy): classification + migration decisions are
  // delegated to policy::MakePolicy(policy, policy_spec) with a
  // PolicyConfig derived from the thresholds below. "default" reproduces
  // the paper bit-exactly; see src/policy/.
  std::string policy = "default";
  std::string policy_spec;

  // Classification thresholds (paper Section 3.1, defaults from Section 5.1).
  uint32_t hot_read_threshold = 8;
  uint32_t hot_write_threshold = 4;
  uint32_t cooling_threshold = 18;

  SimTime policy_period = 10 * kMillisecond;
  SimTime pebs_drain_period = 1 * kMillisecond;
  SimTime per_sample_cost = 150;  // ns of PEBS-thread work per record
  SimTime pt_scan_period = 10 * kMillisecond;

  // Paper-scale values; divided by the machine's label_scale at construction.
  uint64_t dram_free_watermark = GiB(1);
  uint64_t managed_threshold = GiB(1);

  double migration_rate = GiBps(10.0);  // cap on migration traffic

  // Swap tier (paper Section 3.4): when the machine has a block device and
  // this is set, the policy thread swaps the coldest NVM pages out once free
  // NVM falls below the watermark, and swapped pages fault back in on touch.
  bool enable_swap = false;
  uint64_t nvm_free_watermark = GiB(4);  // paper-scale; divided by label_scale
  bool use_dma = true;
  int dma_channels = 2;
  int dma_batch = 4;
  int copy_threads = 4;  // CPU-copy fallback when use_dma is false
};

struct HememStats {
  uint64_t samples_processed = 0;
  uint64_t cooling_epochs = 0;
  uint64_t pt_scans = 0;
  uint64_t policy_passes = 0;
  uint64_t promotion_stalls = 0;  // hot set exceeded DRAM; migration paused
  uint64_t pages_swapped_out = 0;
  uint64_t pages_swapped_in = 0;
  // Fault recovery (only nonzero under an armed fault plan).
  uint64_t migration_aborts = 0;      // batches rolled back before commit
  uint64_t deferred_allocs = 0;       // policy allocations deferred by faults
  uint64_t dma_fallback_batches = 0;  // batches completed by CPU copy
  // Non-exclusive (Nomad) migration mode only.
  uint64_t txn_starts = 0;            // transactional copies started
  uint64_t txn_commits = 0;           // committed at a later policy pass
  uint64_t txn_aborts = 0;            // aborted by a conflicting store
  uint64_t shadow_demotions = 0;      // zero-copy demotions (metadata flip)
  uint64_t shadow_invalidations = 0;  // shadows dropped (page went dirty)
  uint64_t shadow_reclaims = 0;       // shadows dropped for NVM pressure
};

class Hemem : public TieredMemoryManager {
 public:
  using ScanMode = HememParams::ScanMode;

  explicit Hemem(Machine& machine, HememParams params = HememParams{});
  ~Hemem() override;

  const char* name() const override;

  uint64_t Mmap(uint64_t bytes, AllocOptions opts = {}) override;
  void Start() override;

  const HememParams& params() const { return params_; }

  // Global coordination (paper Section 3.4): a HememDaemon may cap this
  // instance's DRAM usage. 0 means uncapped. The policy thread demotes down
  // to the quota and stops promoting above it.
  void set_dram_quota(uint64_t bytes) { dram_quota_bytes_ = bytes; }
  uint64_t dram_quota() const { return dram_quota_bytes_; }
  // DRAM bytes currently owned by this instance's pages.
  uint64_t dram_usage() const { return dram_pages_owned_ * machine_.page_bytes(); }
  const HememStats& hstats() const { return hstats_; }
  uint64_t cooling_clock() const { return cool_.clock; }
  // The active migration policy (for tests and the shoot-out bench).
  const policy::MigrationPolicy& policy() const { return *policy_; }
  uint64_t hot_pages(Tier tier) const { return hot_[static_cast<int>(tier)].size(); }
  uint64_t cold_pages(Tier tier) const { return cold_[static_cast<int>(tier)].size(); }
  uint64_t hot_bytes(Tier tier) const { return hot_pages(tier) * machine_.page_bytes(); }

  // Introspection for tests and diagnostics: the tracked counters of the
  // page containing `va` (reads, writes, write_heavy, hot-list membership).
  struct PageProbe {
    uint32_t reads = 0;
    uint32_t writes = 0;
    bool write_heavy = false;
    bool on_hot_list = false;
    Tier tier = Tier::kDram;
    PageListId list = PageListId::kNone;
    // Nomad-mode state.
    uint32_t shadow_frame = kInvalidFrame;
    bool dirty = false;
    bool pending_txn = false;
  };
  std::optional<PageProbe> ProbePage(uint64_t va);

  // Nomad-mode introspection (tests, frame-conservation invariants).
  uint64_t shadow_pages() const { return shadowed_.size(); }
  uint64_t pending_txns() const { return txns_.size(); }
  // Destination frames held by in-flight transactions on `tier`.
  uint64_t pending_txn_frames(Tier tier) const;
  // Test oracle for the nomad metadata invariants: registry/transaction
  // linkage is bijective, shadows hang only off present DRAM pages, no frame
  // is simultaneously a primary mapping, a shadow, or a transaction
  // destination, and every clean shadow is byte-identical to its DRAM page
  // (checked when the machine's ShadowMemory is enabled). A dirty shadow is
  // legal — it is stale by definition and the next sweep drops it. Returns
  // true when everything holds; otherwise fills *why with the violation.
  bool CheckNomadInvariants(std::string* why) const;

  // Dynamic epoch eligibility: HeMem's access path is epoch-pure exactly
  // when every WP window has expired and no transactional copy is in
  // flight. PEBS counting does not serialize — inside epochs it lands in
  // shard-local views merged deterministically at the barrier (DESIGN.md
  // "Sampling under epochs"); the gate pairs this with the
  // distinct-counter-row stream check via epoch_sampling(). Pending clean
  // shadows do not block — flipping them moves no data and only runs on the
  // policy thread, which the engine's epoch bound already fences out.
  bool EpochEligible(SimTime frontier) override;

 protected:
  // Skeleton hooks: the shared AccessPage handles WP stalls (with the
  // userfaultfd round-trip cost), A/D bits, and the device charge; HeMem
  // adds fault handling (userfaultfd/swap-in for managed regions, kernel
  // fault for small allocations) and post-charge PEBS counting.
  void OnMissingPage(SimThread& thread, Region& region, uint64_t index) override;
  void OnAccessCharged(SimThread& thread, uint64_t va, PageEntry& entry,
                       AccessKind kind) override;
  void OnUnmapRegion(Region& region) override;
  // Nomad: a store raced an in-flight transactional copy — abort it.
  void OnWpConflict(SimThread& thread, Region& region, uint64_t index,
                    PageEntry& entry) override;
  // Batched quanta: precompute the PEBS no-overflow budget for the quantum's
  // stream so per-access counting degenerates to a counter bump.
  void OnQuantumBegin(SimThread& thread) override;
  void OnQuantumEnd(SimThread& thread) override;

 private:
  friend class PebsThread;
  friend class PtScanThread;
  friend class HememPolicyThread;

  // PolicyEnv adapter the policy pass hands to MigrationPolicy::Decide
  // (defined in hemem.cc; owns the pending DMA batch).
  class PolicyEnvAdapter;

  struct Migration {
    HememPage* page = nullptr;
    Tier dst = Tier::kDram;
    uint32_t frame = kInvalidFrame;
    // Audit decision-record id (obs::MigrationAudit::OnMigrationQueued);
    // 0 when access observation is off. MigrateBatch reports completion or
    // abort back against it.
    uint64_t audit_id = 0;
  };

  // Region-attached metadata (lives in Region::manager_data via the base
  // class): the page tracking array plus the placement flags that used to
  // live in three side hash maps. Access is one indexed load, no hashing.
  struct HememRegionMeta : RegionMetaBase {
    std::vector<HememPage> pages;
    bool pinned = false;
    std::optional<Tier> preferred;  // fault-time placement hint
    uint64_t create_epoch = 0;      // cooling epoch when the region mapped
  };

  HememRegionMeta* MetaOfRegion(const Region& region) const {
    return RegionMetaAs<HememRegionMeta>(region);
  }
  HememPage* MetaOf(Region* region, uint64_t index);

  // Sample-path classification (called by the PEBS thread per record); `t`
  // is the sample's observation time (record timestamp / scan-pass start).
  void OnSample(uint64_t va, bool is_store, SimTime t);
  // Epoch accounting for one sample; may advance the global cooling clock.
  void NoteSampleForCooling(HememPage* page, SimTime t);
  // Lazily applies missed cooling epochs to the page.
  void CoolPage(HememPage* page);
  // Unlinks the page from whichever list currently holds it.
  void DetachFromList(HememPage* page);
  // Moves the page onto the list the policy's verdict demands.
  void Classify(HememPage* page);
  // Feature snapshot for the policy layer: one pass over the page's
  // metadata, no allocation (sampling-path safe).
  policy::PolicyFeatures FeaturesFor(const HememPage& page) const;

  // Page-table-scan tracking pass; returns simulated duration.
  SimTime PtScanPass(SimTime start);
  // Migration policy pass; returns simulated duration.
  SimTime PolicyPass(SimTime start);
  // PEBS buffer drain; returns simulated duration.
  SimTime DrainPebs(SimTime start);

  void HandleMissingFault(SimThread& thread, Region& region, uint64_t index);
  // Major fault: brings a swapped-out page back from the block device.
  void HandleSwapInFault(SimThread& thread, Region& region, uint64_t index);
  // Swaps cold NVM pages out until free NVM reaches the watermark or the
  // budget is spent; returns the new time cursor.
  SimTime SwapOutColdPages(SimTime t, uint64_t* budget);
  // Policy-path frame allocation with transient-failure injection: a fired
  // kAllocFail makes the pool look momentarily empty, which every policy
  // phase already treats as "defer this migration to a later pass". Demand
  // faults never go through here — a page the app is touching must map.
  std::optional<uint32_t> TryAllocFrame(Tier tier, SimTime now);
  // Copies every page in `batch` to its destination; updates mappings,
  // lists, stats; one TLB shootdown per batch. Returns the new time cursor.
  // Exclusive mode commits in place (stores stall via wp_until); nomad mode
  // starts transactions instead (BeginTxnBatch) and returns after the
  // submission cost only.
  SimTime MigrateBatch(SimTime t, std::vector<Migration>& batch);
  // The shared copy engine: DMA with CPU-copier fallback (or CPU copiers
  // outright when use_dma is off). Fills per-page completion times and
  // returns the batch completion time.
  SimTime RunCopyEngine(SimTime t, const std::vector<Migration>& batch,
                        std::vector<SimTime>* per_request);

  // ---- Nomad (non-exclusive transactional migration) ----------------------

  struct PendingTxn {
    HememPage* page = nullptr;
    Tier dst = Tier::kDram;
    uint32_t frame = kInvalidFrame;  // destination frame, held until resolve
    SimTime done = 0;                // copy completion time
    bool aborted = false;            // a store conflicted mid-copy
    uint64_t audit_id = 0;
  };

  bool nomad() const { return params_.migration == HememParams::MigrationMode::kNomad; }
  // Starts one transactional copy per migration: destination frames stay
  // reserved, pages leave the FIFO lists, and wp_until is set to a sentinel
  // so any store conflicts (OnWpConflict) until the transaction resolves.
  SimTime BeginTxnBatch(SimTime t, std::vector<Migration>& batch);
  // Resolves transactions whose copy has completed by `t`: commits remap the
  // page (promotions retain the source frame as a clean shadow), aborts free
  // the destination. One batched shootdown when anything committed.
  SimTime FinalizeTxns(SimTime t);
  // Drops shadows whose page has been written since promotion (the dirty bit
  // says the NVM copy is stale). Runs at every policy-pass start, so within
  // a pass "has shadow" implies "shadow is clean".
  void SweepShadows();
  // Unlinks and frees `page`'s shadow frame. `why` picks the stat bucket.
  enum class ShadowDrop { kInvalidated, kReclaimed, kUnmapped };
  void DropShadow(HememPage* page, ShadowDrop why);
  // Swap-erases txns_[slot], fixing the moved entry's back-link.
  void RemoveTxnSlot(int32_t slot);
  // Zero-copy demotion: if `page` holds a clean shadow, flip the mapping to
  // it and free the DRAM frame. Returns false (no-op) otherwise.
  bool TryFlipDemote(HememPage* page, SimTime t);

  HememParams params_;
  uint64_t watermark_bytes_;
  uint64_t nvm_watermark_bytes_;
  uint64_t managed_threshold_bytes_;
  std::optional<SwapSpace> swap_space_;

  PageList hot_[kNumTiers];
  PageList cold_[kNumTiers];
  policy::CoolingClock cool_;      // the paper's lazy cooling clock
  uint64_t dram_quota_bytes_ = 0;  // 0 = uncapped
  uint64_t dram_pages_owned_ = 0;  // this instance's DRAM-resident pages

  std::unique_ptr<policy::MigrationPolicy> policy_;

  CpuCopier copier_;
  std::unique_ptr<PebsThread> pebs_thread_;
  std::unique_ptr<PtScanThread> pt_scan_thread_;
  std::unique_ptr<HememPolicyThread> policy_thread_;

  // Cumulative small-allocation growth per label: once a label's total
  // crosses the managed threshold, later allocations with it are managed
  // (the paper's "regions growing via small allocations" rule).
  std::unordered_map<std::string, uint64_t> label_growth_;

  std::vector<PebsRecord> drain_buf_;
  HememStats hstats_;

  // Nomad state: in-flight transactions, the registry of DRAM pages holding
  // a live NVM shadow (swap-erase indexed by HememPage::shadow_slot), and
  // the latest exclusive-mode WP-window expiry (EpochEligible quiescence).
  std::vector<PendingTxn> txns_;
  std::vector<HememPage*> shadowed_;
  SimTime wp_clear_time_ = 0;
  // Pending flip + commit remaps accumulated within the current policy
  // pass; one batched TLB shootdown covers them.
  uint64_t pass_remaps_ = 0;

  // Trace tracks (registered at construction; events gated on the tracer's
  // enabled flag). Policy: migrations, swap-out, policy passes. Sampling:
  // PEBS drains, PT scans, cooling epochs.
  uint32_t trace_policy_track_ = 0;
  uint32_t trace_sampling_track_ = 0;
};

}  // namespace hemem

#endif  // HEMEM_CORE_HEMEM_H_
