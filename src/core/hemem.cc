#include "core/hemem.h"

#include <algorithm>
#include <cassert>

#include "core/scanner.h"

namespace hemem {

namespace {

// List-maintenance cost of one policy wakeup, independent of migrations.
constexpr SimTime kPolicyBaseCost = 2 * kMicrosecond;
// Cost of examining one page during a page-table scan pass, beyond the raw
// PTE traffic (list moves, counter updates).
constexpr SimTime kPtPerPageCost = 5;

}  // namespace

Hemem::Hemem(Machine& machine, HememParams params)
    : TieredMemoryManager(machine),
      params_(params),
      watermark_bytes_(static_cast<uint64_t>(static_cast<double>(params.dram_free_watermark) /
                                             machine.config().label_scale)),
      managed_threshold_bytes_(static_cast<uint64_t>(
          static_cast<double>(params.managed_threshold) / machine.config().label_scale)),
      copier_(params.copy_threads) {
  // On small scaled machines the watermark must stay a meaningful number of
  // pages yet a bounded fraction of DRAM.
  watermark_bytes_ = std::min(watermark_bytes_, machine.config().dram_bytes / 4);
  watermark_bytes_ = std::max(watermark_bytes_, 2 * machine.page_bytes());
  // Management cadence scales with the platform (see DESIGN.md): capacities
  // shrink by label_scale, so thread periods shrink alike to preserve the
  // management-to-workload duty cycle. Migration budgets derive from the
  // scaled period, so the paper's 10 GB/s cap is preserved as a *rate*.
  const double scale = machine.config().label_scale;
  auto scaled = [scale](SimTime t, SimTime floor) {
    return std::max<SimTime>(static_cast<SimTime>(static_cast<double>(t) / scale), floor);
  };
  params_.policy_period = scaled(params_.policy_period, 20 * kMicrosecond);
  params_.pt_scan_period = scaled(params_.pt_scan_period, 20 * kMicrosecond);
  params_.pebs_drain_period = scaled(params_.pebs_drain_period, 10 * kMicrosecond);
  nvm_watermark_bytes_ = static_cast<uint64_t>(
      static_cast<double>(params.nvm_free_watermark) / machine.config().label_scale);
  nvm_watermark_bytes_ = std::min(nvm_watermark_bytes_, machine.config().nvm_bytes / 4);
  nvm_watermark_bytes_ = std::max(nvm_watermark_bytes_, 2 * machine.page_bytes());
  if (params_.enable_swap && machine.swap() != nullptr) {
    swap_space_.emplace(machine.swap()->capacity(), machine.page_bytes());
  }
  // Skeleton configuration: a store stalling on an in-flight migration pays a
  // userfaultfd round trip before waiting out the copy, and PEBS counting
  // runs after the device charge (with the post-access timestamp).
  wp_stall_cost_ = fault_costs_.userfaultfd_roundtrip;
  post_charge_hook_ = params_.scan_mode == ScanMode::kPebs;
  // Skeleton + hooks only; the PEBS quantum budget (OnQuantumBegin) keeps
  // batched counting exact.
  batch_quantum_safe_ = true;
  drain_buf_.reserve(4096);

  trace_policy_track_ = machine.tracer().RegisterTrack("hemem.policy");
  trace_sampling_track_ = machine.tracer().RegisterTrack("hemem.sampling");
  machine.metrics().AddProvider(this, [this](obs::MetricsEmitter& e) {
    e.Emit("hemem.samples_processed", hstats_.samples_processed);
    e.Emit("hemem.cooling_epochs", hstats_.cooling_epochs);
    e.Emit("hemem.pt_scans", hstats_.pt_scans);
    e.Emit("hemem.policy_passes", hstats_.policy_passes);
    e.Emit("hemem.promotion_stalls", hstats_.promotion_stalls);
    e.Emit("hemem.pages_swapped_out", hstats_.pages_swapped_out);
    e.Emit("hemem.pages_swapped_in", hstats_.pages_swapped_in);
    e.Emit("hemem.migration_aborts", hstats_.migration_aborts);
    e.Emit("hemem.deferred_allocs", hstats_.deferred_allocs);
    e.Emit("hemem.dma_fallback_batches", hstats_.dma_fallback_batches);
    e.Emit("hemem.cool_clock", cool_clock_);
    e.Emit("hemem.dram_usage_bytes", dram_usage());
    e.Emit("hemem.dram_quota_bytes", dram_quota_bytes_);
    e.Emit("hemem.hot_pages.dram", hot_pages(Tier::kDram));
    e.Emit("hemem.hot_pages.nvm", hot_pages(Tier::kNvm));
    e.Emit("hemem.cold_pages.dram", cold_pages(Tier::kDram));
    e.Emit("hemem.cold_pages.nvm", cold_pages(Tier::kNvm));
  });
}

Hemem::~Hemem() = default;

const char* Hemem::name() const {
  switch (params_.scan_mode) {
    case ScanMode::kPebs:
      return "HeMem";
    case ScanMode::kPtSync:
      return "HeMem-PT-Sync";
    case ScanMode::kPtAsync:
      return "HeMem-PT-Async";
    case ScanMode::kNone:
      return "HeMem-NoScan";
  }
  return "HeMem";
}

void Hemem::Start() {
  Engine& engine = machine_.engine();
  switch (params_.scan_mode) {
    case ScanMode::kPebs:
      pebs_thread_ = std::make_unique<PebsThread>(*this);
      engine.AddThread(pebs_thread_.get());
      break;
    case ScanMode::kPtAsync:
      pt_scan_thread_ = std::make_unique<PtScanThread>(*this);
      engine.AddThread(pt_scan_thread_.get());
      break;
    case ScanMode::kPtSync:
    case ScanMode::kNone:
      break;
  }
  if (params_.enable_policy) {
    policy_thread_ = std::make_unique<HememPolicyThread>(
        *this, /*scan_inline=*/params_.scan_mode == ScanMode::kPtSync);
    engine.AddThread(policy_thread_.get());
  }
}

uint64_t Hemem::Mmap(uint64_t bytes, AllocOptions opts) {
  PageTable& pt = machine_.page_table();
  const uint64_t page = machine_.page_bytes();
  const uint64_t base = pt.ReserveVa(bytes, page);

  // Small allocations are forwarded to the kernel; they stay in DRAM and are
  // not tracked. A label whose cumulative small allocations cross the
  // managed threshold flips to managed (the growth rule).
  uint64_t& grown = label_growth_[opts.label];
  const bool managed =
      opts.pin_tier.has_value() || bytes >= managed_threshold_bytes_ ||
      grown + bytes >= managed_threshold_bytes_;
  grown += bytes;

  Region* region = pt.MapRegion(base, bytes, page, managed, opts.label);
  if (!managed) {
    stats_.small_allocs++;
    return base;
  }
  stats_.managed_allocs++;

  auto meta = std::make_unique<HememRegionMeta>();
  meta->pages.resize(region->num_pages());
  for (uint64_t i = 0; i < region->num_pages(); ++i) {
    meta->pages[i].region = region;
    meta->pages[i].index = static_cast<uint32_t>(i);
  }
  meta->pinned = opts.pin_tier.has_value();
  meta->preferred = opts.prefer_tier;
  AttachRegionMeta(*region, std::move(meta));

  if (opts.pin_tier.has_value()) {
    // Pinned regions (the Opt bound, FlexKVS's priority instance) are mapped
    // eagerly on the requested tier and excluded from lists and policy.
    for (PageEntry& entry : region->pages) {
      Tier tier = *opts.pin_tier;
      std::optional<uint32_t> frame = machine_.frames(tier).Alloc();
      if (!frame.has_value()) {
        tier = tier == Tier::kDram ? Tier::kNvm : Tier::kDram;
        frame = machine_.frames(tier).Alloc();
      }
      assert(frame.has_value() && "machine out of physical memory");
      entry.frame = *frame;
      entry.tier = tier;
      entry.present = true;
      if (tier == Tier::kDram) {
        dram_pages_owned_++;
      }
    }
  }
  return base;
}

void Hemem::OnUnmapRegion(Region& region) {
  // Unlink every tracked page from the hot/cold lists before the base class
  // destroys the metadata — a HememPage must never dangle on a list. The
  // base Munmap then detaches the region slot and releases the frames.
  HememRegionMeta* meta = MetaOfRegion(region);
  if (meta != nullptr) {
    for (HememPage& page : meta->pages) {
      DetachFromList(&page);
    }
  }
  for (const PageEntry& entry : region.pages) {
    if (entry.present && entry.tier == Tier::kDram) {
      dram_pages_owned_--;
    }
  }
}

std::optional<Hemem::PageProbe> Hemem::ProbePage(uint64_t va) {
  Region* region = machine_.page_table().Find(va);
  if (region == nullptr) {
    return std::nullopt;
  }
  HememPage* page = MetaOf(region, region->PageIndexOf(va));
  if (page == nullptr) {
    return std::nullopt;
  }
  return PageProbe{page->reads,  page->writes, page->write_heavy,
                   page->list == PageListId::kHot, page->tier(), page->list};
}

HememPage* Hemem::MetaOf(Region* region, uint64_t index) {
  HememRegionMeta* meta = MetaOfRegion(*region);
  if (meta == nullptr) {
    return nullptr;
  }
  return &meta->pages[index];
}

void Hemem::HandleMissingFault(SimThread& thread, Region& region, uint64_t index) {
  PageEntry& entry = region.pages[index];
  // userfaultfd round trip to the fault thread, then a zero-filled page.
  // DRAM is preferred so ephemeral data lands (and dies) in fast memory,
  // unless the region carries an explicit placement hint.
  Tier tier = Tier::kDram;
  HememRegionMeta* meta = MetaOfRegion(region);
  if (meta != nullptr && meta->preferred.has_value()) {
    tier = *meta->preferred;
  } else if (dram_quota_bytes_ > 0 && dram_usage() >= dram_quota_bytes_) {
    tier = Tier::kNvm;  // over quota: fresh pages go to NVM
  }
  std::optional<uint32_t> frame = machine_.frames(tier).Alloc();
  if (!frame.has_value()) {
    tier = tier == Tier::kDram ? Tier::kNvm : Tier::kDram;
    frame = machine_.frames(tier).Alloc();
  }
  assert(frame.has_value() && "machine out of physical memory");
  entry.frame = *frame;
  entry.tier = tier;
  entry.present = true;
  if (tier == Tier::kDram) {
    dram_pages_owned_++;
  }
  if (ShadowMemory* shadow = machine_.shadow()) {
    // Zero-fill: a reused frame must not leak a prior owner's contents.
    shadow->DropPage(tier, *frame);
  }
  thread.Advance(fault_costs_.userfaultfd_roundtrip);
  thread.AdvanceTo(machine_.device(tier).BulkTransfer(thread.now(), region.page_bytes,
                                                      AccessKind::kStore));
  stats_.missing_faults++;

  if (meta != nullptr && !meta->pinned) {
    // Fresh pages start cold; FIFO order gives ephemeral data its DRAM grace
    // period before it becomes a demotion candidate.
    HememPage* page = &meta->pages[index];
    page->cool_snapshot = cool_clock_;
    Classify(page);
  }
}

void Hemem::HandleSwapInFault(SimThread& thread, Region& region, uint64_t index) {
  PageEntry& entry = region.pages[index];
  BlockDevice* disk = machine_.swap();
  assert(disk != nullptr && swap_space_.has_value());
  // Major fault: userfaultfd round trip, then the page streams back from the
  // block device into a fresh frame (DRAM preferred — it is being touched —
  // unless a daemon quota says otherwise).
  Tier tier = Tier::kDram;
  if (dram_quota_bytes_ > 0 && dram_usage() >= dram_quota_bytes_) {
    tier = Tier::kNvm;
  }
  std::optional<uint32_t> frame = machine_.frames(tier).Alloc();
  if (!frame.has_value()) {
    tier = Tier::kNvm;
    frame = machine_.frames(tier).Alloc();
  }
  assert(frame.has_value() && "machine out of physical memory");
  thread.Advance(fault_costs_.userfaultfd_roundtrip);
  const SimTime read_done = disk->Read(thread.now(), region.page_bytes);
  const SimTime fill_done =
      machine_.device(tier).BulkTransfer(thread.now(), region.page_bytes,
                                         AccessKind::kStore);
  thread.AdvanceTo(std::max(read_done, fill_done));
  swap_space_->Free(entry.frame);
  if (ShadowMemory* shadow = machine_.shadow()) {
    // Swap contents are not shadowed (see vm/shadow.h); the page reads as
    // zeros after swap-in, and a reused frame must not leak stale contents.
    shadow->DropPage(tier, *frame);
  }
  entry.frame = *frame;
  entry.tier = tier;
  entry.swapped = false;
  entry.present = true;
  if (tier == Tier::kDram) {
    dram_pages_owned_++;
  }
  hstats_.pages_swapped_in++;

  HememRegionMeta* meta = MetaOfRegion(region);
  if (meta != nullptr && !meta->pinned) {
    HememPage* page = &meta->pages[index];
    page->cool_snapshot = cool_clock_;
    Classify(page);
  }
}

SimTime Hemem::SwapOutColdPages(SimTime t, uint64_t* budget) {
  BlockDevice* disk = machine_.swap();
  const SimTime swap_start = t;
  const uint64_t swapped_before = hstats_.pages_swapped_out;
  const uint64_t page_bytes = machine_.page_bytes();
  FrameAllocator& nvm_frames = machine_.frames(Tier::kNvm);
  const int nvm = static_cast<int>(Tier::kNvm);
  while (nvm_frames.free_bytes() < nvm_watermark_bytes_ && *budget >= page_bytes) {
    HememPage* victim = cold_[nvm].PopFront();
    if (victim == nullptr) {
      break;  // nothing cold enough to evict
    }
    victim->list = PageListId::kNone;
    const uint32_t slot = swap_space_->Alloc();
    if (slot == UINT32_MAX) {
      Classify(victim);
      break;  // swap space full
    }
    PageEntry& entry = victim->entry();
    // Stream the page out: NVM read feeding a disk write.
    const SimTime nvm_done =
        machine_.nvm().BulkTransfer(t, page_bytes, AccessKind::kLoad);
    t = disk->Write(nvm_done, page_bytes);
    if (ShadowMemory* shadow = machine_.shadow()) {
      shadow->DropPage(Tier::kNvm, entry.frame);
    }
    nvm_frames.Free(entry.frame);
    entry.frame = slot;
    entry.present = false;
    entry.swapped = true;
    *budget -= page_bytes;
    hstats_.pages_swapped_out++;
  }
  if (hstats_.pages_swapped_out != swapped_before && machine_.tracer().enabled()) {
    machine_.tracer().Duration(
        trace_policy_track_, "swap_out", "hemem", swap_start, t,
        {{"pages", static_cast<double>(hstats_.pages_swapped_out - swapped_before)}});
  }
  return t;
}

void Hemem::OnMissingPage(SimThread& thread, Region& region, uint64_t index) {
  PageEntry& entry = region.pages[index];
  if (entry.swapped) {
    // Major fault: the page lives on the swap device.
    HandleSwapInFault(thread, region, index);
  }
  if (!entry.present) {
    if (region.managed) {
      HandleMissingFault(thread, region, index);
    } else {
      // Kernel-managed small allocation: anonymous fault, DRAM first.
      if (KernelFirstTouch(thread, region, entry) == Tier::kDram) {
        dram_pages_owned_++;
      }
    }
  }
}

void Hemem::OnAccessCharged(SimThread& thread, uint64_t va, PageEntry& entry,
                            AccessKind kind) {
  // Runs only in kPebs mode (post_charge_hook_): counts the access in the
  // CPU's sample buffer with the post-access timestamp.
  const PebsEvent event = kind == AccessKind::kStore
                              ? PebsEvent::kStore
                              : (entry.tier == Tier::kNvm ? PebsEvent::kNvmLoad
                                                          : PebsEvent::kDramLoad);
  machine_.pebs().CountAccess(thread.now(), va, event, thread.stream_id());
}

void Hemem::OnQuantumBegin(SimThread& thread) {
  if (post_charge_hook_) {
    machine_.pebs().BeginQuantum(thread.stream_id());
  }
}

void Hemem::OnQuantumEnd(SimThread&) {
  if (post_charge_hook_) {
    machine_.pebs().EndQuantum();
  }
}

void Hemem::NoteSampleForCooling(HememPage* page, SimTime t) {
  // Cooling epoch trigger. The paper advances the clock "once any page
  // accumulates [the cooling threshold] of sampled accesses"; for uniform
  // hot sets that makes a typical page accrue ~the threshold per epoch. We
  // generalize the trigger to aggregate samples per *distinct* page sampled
  // this epoch, which reduces to the paper's rule when pages are equally hot
  // but stays stable under heavy per-page skew (one mega-hot page must not
  // halve everyone hundreds of times per second; see DESIGN.md).
  if (page->sample_stamp != cool_clock_) {
    page->sample_stamp = cool_clock_;
    distinct_sampled_++;
  }
  samples_since_cool_++;
  if (samples_since_cool_ >=
      static_cast<uint64_t>(params_.cooling_threshold) *
          std::max<uint64_t>(1, distinct_sampled_)) {
    cool_clock_++;
    hstats_.cooling_epochs++;
    samples_since_cool_ = 0;
    distinct_sampled_ = 0;
    if (machine_.tracer().enabled()) {
      machine_.tracer().Instant(trace_sampling_track_, "cooling_epoch", "hemem",
                                t, {{"cool_clock", static_cast<double>(cool_clock_)}});
    }
    CoolPage(page);
  }
}

void Hemem::CoolPage(HememPage* page) {
  const uint64_t missed = cool_clock_ - page->cool_snapshot;
  if (missed == 0) {
    return;
  }
  const int shifts = static_cast<int>(std::min<uint64_t>(missed, 31));
  page->reads >>= shifts;
  page->writes >>= shifts;
  page->cool_snapshot = cool_clock_;
  if (page->write_heavy && page->writes < params_.hot_write_threshold) {
    // No longer write-heavy: the paper moves it to the ordinary hot list
    // (one second chance to stay in DRAM) instead of dropping it to cold.
    page->write_heavy = false;
    page->second_chance = true;
  }
}

void Hemem::DetachFromList(HememPage* page) {
  switch (page->list) {
    case PageListId::kHot:
      hot_[static_cast<int>(page->list_tier)].Remove(page);
      break;
    case PageListId::kCold:
      cold_[static_cast<int>(page->list_tier)].Remove(page);
      break;
    case PageListId::kNone:
      break;
  }
  page->list = PageListId::kNone;
}

void Hemem::Classify(HememPage* page) {
  DetachFromList(page);
  const Tier tier = page->tier();
  page->list_tier = tier;
  const bool hot = PageIsHot(*page);
  if (!hot && page->second_chance) {
    // Spent: the page rides the hot list once more, then must requalify.
    page->second_chance = false;
    page->list = PageListId::kHot;
    hot_[static_cast<int>(tier)].PushBack(page);
    return;
  }
  if (hot) {
    page->list = PageListId::kHot;
    if (page->write_heavy) {
      // Write-heavy pages jump the queue: NVM write bandwidth is the scarce
      // resource, so they must reach DRAM before read-heavy pages.
      hot_[static_cast<int>(tier)].PushFront(page);
    } else {
      hot_[static_cast<int>(tier)].PushBack(page);
    }
  } else {
    page->list = PageListId::kCold;
    cold_[static_cast<int>(tier)].PushBack(page);
  }
}

void Hemem::OnSample(uint64_t va, bool is_store, SimTime t) {
  Region* region = machine_.page_table().Find(va);
  if (region == nullptr || !region->managed) {
    return;  // sample outside HeMem-managed memory
  }
  HememRegionMeta* meta = MetaOfRegion(*region);
  if (meta == nullptr || meta->pinned) {
    return;  // foreign or pinned regions are not policy-managed
  }
  HememPage* page = &meta->pages[region->PageIndexOf(va)];
  if (!page->entry().present) {
    return;
  }

  CoolPage(page);
  if (is_store) {
    page->writes++;
    if (page->writes >= params_.hot_write_threshold) {
      page->write_heavy = true;
    }
  } else {
    page->reads++;
  }
  NoteSampleForCooling(page, t);
  Classify(page);
  hstats_.samples_processed++;
}

SimTime Hemem::DrainPebs(SimTime start) {
  PebsBuffer& pebs = machine_.pebs();
  SimTime work = 0;
  uint64_t drained = 0;
  while (pebs.pending() > 0) {
    drain_buf_.clear();
    const size_t n = pebs.Drain(drain_buf_, 4096);
    drained += n;
    for (const PebsRecord& record : drain_buf_) {
      OnSample(record.va, record.event == PebsEvent::kStore, record.time);
    }
    work += static_cast<SimTime>(n) * params_.per_sample_cost;
  }
  if (drained > 0 && machine_.tracer().enabled()) {
    machine_.tracer().Duration(trace_sampling_track_, "pebs_drain", "hemem",
                               start, start + work,
                               {{"records", static_cast<double>(drained)}});
  }
  return work;
}

SimTime Hemem::PtScanPass(SimTime start) {
  hstats_.pt_scans++;
  const uint64_t page_bytes = machine_.page_bytes();
  uint64_t scanned_bytes = 0;
  uint64_t cleared = 0;
  SimTime work = 0;

  // Regions are walked in address order (the page table keeps them sorted),
  // matching how a real scanner walks the radix tree — and keeping the scan
  // deterministic, unlike iteration over a pointer-keyed hash map.
  machine_.page_table().ForEachRegion([&](Region& region) {
    HememRegionMeta* meta = MetaOfRegion(region);
    if (meta == nullptr || meta->pinned) {
      return;
    }
    scanned_bytes += region.bytes;
    for (HememPage& page : meta->pages) {
      PageEntry& entry = page.entry();
      if (!entry.present) {
        continue;
      }
      work += kPtPerPageCost;
      if (!entry.accessed) {
        continue;
      }
      cleared++;
      CoolPage(&page);
      // A scan only sees binary bits: one observation per pass, regardless
      // of how many times the page was touched — the fidelity loss that
      // makes PT variants overestimate the hot set under background traffic.
      if (entry.dirty) {
        page.writes++;
        if (page.writes >= params_.hot_write_threshold) {
          page.write_heavy = true;
        }
      } else {
        page.reads++;
      }
      NoteSampleForCooling(&page, start);
      Classify(&page);
      entry.accessed = false;
      entry.dirty = false;
    }
  });

  // Raw PTE traffic of walking the tables at tracking granularity...
  work += machine_.config().radix.ScanTime(scanned_bytes, page_bytes);
  // ...plus clearing A/D bits, which costs TLB shootdowns felt by the app.
  work += machine_.config().radix.ClearCost(cleared, machine_.engine().cores() - 1);
  machine_.tlb().ShootdownBatch(machine_.engine(), nullptr, CeilDiv(cleared, 512));
  if (machine_.tracer().enabled()) {
    machine_.tracer().Duration(trace_sampling_track_, "pt_scan", "hemem", start,
                               start + work,
                               {{"scanned_bytes", static_cast<double>(scanned_bytes)},
                                {"pages_cleared", static_cast<double>(cleared)}});
  }
  return work;
}

SimTime Hemem::MigrateBatch(SimTime t, std::vector<Migration>& batch) {
  if (batch.empty()) {
    return t;
  }
  const uint64_t page_bytes = machine_.page_bytes();
  SimTime done = t;
  std::vector<SimTime> per_request;
  if (params_.use_dma) {
    std::vector<CopyRequest> reqs;
    reqs.reserve(batch.size());
    for (const Migration& m : batch) {
      reqs.push_back(CopyRequest{&machine_.device(m.page->tier()), &machine_.device(m.dst),
                                 page_bytes});
    }
    const DmaBatchResult result =
        machine_.dma().TryCopyBatch(t, reqs, params_.dma_channels, &per_request);
    if (result.ok) {
      done = result.done;
    } else {
      // Retries exhausted: fall back to the synchronous CPU copiers from the
      // moment the engine gave up, as HeMem's migration threads do when the
      // I/OAT ioctl interface errors out. The batch still completes — only
      // slower — so the policy's bookkeeping below is unchanged.
      hstats_.dma_fallback_batches++;
      machine_.dma().NoteFallback(batch.size());
      done = result.done;
      per_request.clear();
      for (const Migration& m : batch) {
        per_request.push_back(copier_.Copy(result.done, machine_.device(m.page->tier()),
                                           machine_.device(m.dst), page_bytes));
        done = std::max(done, per_request.back());
      }
      if (machine_.tracer().enabled()) {
        machine_.tracer().Duration(trace_policy_track_, "dma_fallback_copy", "hemem",
                                   result.done, done,
                                   {{"pages", static_cast<double>(batch.size())}});
      }
    }
  } else {
    for (const Migration& m : batch) {
      per_request.push_back(copier_.Copy(t, machine_.device(m.page->tier()),
                                         machine_.device(m.dst), page_bytes));
      done = std::max(done, per_request.back());
    }
  }

  // Commit point. An abort fired here models Nomad-style migration failure
  // (contending writer, racing unmap): the copied data is discarded and the
  // transaction rolls back — every page stays resident and mapped in its
  // source tier, the claimed destination frames return to their pool, and no
  // promotion/demotion stats or list accounting change. Stores that raced
  // the attempt still waited on wp_until, exactly as for a committed copy;
  // no remap happened, so there is nothing to shoot down.
  FaultInjector& faults = machine_.faults();
  if (faults.armed(FaultKind::kMigrationAbort) &&
      faults.Fire(FaultKind::kMigrationAbort, done) != nullptr) [[unlikely]] {
    ShadowMemory* shadow = machine_.shadow();
    for (size_t i = 0; i < batch.size(); ++i) {
      const Migration& m = batch[i];
      machine_.frames(m.dst).Free(m.frame);
      if (shadow != nullptr) {
        shadow->DropPage(m.dst, m.frame);
      }
      m.page->entry().wp_until = per_request[i];
      Classify(m.page);  // back onto its source tier's list
    }
    hstats_.migration_aborts++;
    if (machine_.tracer().enabled()) {
      machine_.tracer().Instant(trace_policy_track_, "migrate_abort", "hemem", done,
                                {{"pages", static_cast<double>(batch.size())}});
    }
    batch.clear();
    return done;
  }

  ShadowMemory* shadow = machine_.shadow();
  for (size_t i = 0; i < batch.size(); ++i) {
    const Migration& m = batch[i];
    PageEntry& entry = m.page->entry();
    const Tier src = entry.tier;
    // Stores block only while this page's own copy is in flight.
    entry.wp_until = per_request[i];
    if (shadow != nullptr) {
      shadow->MovePage(src, entry.frame, m.dst, m.frame);
    }
    machine_.frames(src).Free(entry.frame);
    entry.tier = m.dst;
    entry.frame = m.frame;
    if (m.dst == Tier::kDram) {
      stats_.pages_promoted++;
      dram_pages_owned_++;
    } else {
      stats_.pages_demoted++;
      if (src == Tier::kDram) {
        dram_pages_owned_--;
      }
    }
    stats_.bytes_migrated += page_bytes;
    // Re-enqueue on the destination tier's list matching its temperature.
    Classify(m.page);
  }
  // Remaps are batched under one shootdown.
  machine_.tlb().ShootdownBatch(machine_.engine(), nullptr, 1);
  done += machine_.tlb().params().initiator_cost;
  if (machine_.tracer().enabled()) {
    machine_.tracer().Duration(
        trace_policy_track_,
        batch[0].dst == Tier::kDram ? "migrate_promote" : "migrate_demote",
        "hemem", t, done, {{"pages", static_cast<double>(batch.size())}});
  }
  batch.clear();
  return done;
}

std::optional<uint32_t> Hemem::TryAllocFrame(Tier tier, SimTime now) {
  FaultInjector& faults = machine_.faults();
  if (faults.armed(FaultKind::kAllocFail) &&
      faults.Fire(FaultKind::kAllocFail, now, TierName(tier)) != nullptr) [[unlikely]] {
    hstats_.deferred_allocs++;
    return std::nullopt;
  }
  return machine_.frames(tier).Alloc();
}

SimTime Hemem::PolicyPass(SimTime start) {
  hstats_.policy_passes++;
  const uint64_t promoted_before = stats_.pages_promoted;
  const uint64_t demoted_before = stats_.pages_demoted;
  const uint64_t page_bytes = machine_.page_bytes();
  const int dram = static_cast<int>(Tier::kDram);
  const int nvm = static_cast<int>(Tier::kNvm);
  SimTime t = start + kPolicyBaseCost;
  // Rate cap per pass; never below one DMA batch or short scaled periods
  // could not migrate at all.
  uint64_t budget = std::max<uint64_t>(
      static_cast<uint64_t>(params_.migration_rate *
                            static_cast<double>(params_.policy_period)),
      static_cast<uint64_t>(params_.dma_batch) * page_bytes);

  std::vector<Migration> batch;

  // Phase -1: with a swap tier enabled, free NVM first — the demotion phases
  // below need NVM frames to demote into.
  if (swap_space_.has_value()) {
    t = SwapOutColdPages(t, &budget);
  }

  // Phase 0: an externally assigned DRAM quota (HememDaemon) caps this
  // instance; demote cold pages down to it.
  if (dram_quota_bytes_ > 0) {
    while (dram_usage() > dram_quota_bytes_ && budget >= page_bytes) {
      HememPage* victim = cold_[dram].PopFront();
      if (victim == nullptr) {
        victim = hot_[dram].PopBack();
      }
      if (victim == nullptr) {
        break;
      }
      victim->list = PageListId::kNone;
      const std::optional<uint32_t> frame = TryAllocFrame(Tier::kNvm, t);
      if (!frame.has_value()) {
        Classify(victim);
        break;
      }
      batch.push_back(Migration{victim, Tier::kNvm, *frame});
      budget -= page_bytes;
      if (static_cast<int>(batch.size()) >= params_.dma_batch) {
        t = MigrateBatch(t, batch);
      }
    }
    t = MigrateBatch(t, batch);
  }

  // Phase 1: keep the DRAM free watermark so allocations land in DRAM.
  // Demote cold pages first; if none are cold, demote "random" data (we take
  // the oldest hot page — deterministic and FIFO-fair).
  FrameAllocator& dram_frames = machine_.frames(Tier::kDram);
  FrameAllocator& nvm_frames = machine_.frames(Tier::kNvm);
  while (dram_frames.free_bytes() +
                 static_cast<uint64_t>(batch.size()) * page_bytes <
             watermark_bytes_ &&
         budget >= page_bytes) {
    HememPage* victim = cold_[dram].PopFront();
    if (victim == nullptr) {
      victim = hot_[dram].PopBack();
    }
    if (victim == nullptr) {
      break;
    }
    victim->list = PageListId::kNone;
    const std::optional<uint32_t> frame = TryAllocFrame(Tier::kNvm, t);
    if (!frame.has_value()) {
      Classify(victim);  // put it back; NVM is full (or the alloc deferred)
      break;
    }
    batch.push_back(Migration{victim, Tier::kNvm, *frame});
    budget -= page_bytes;
    if (static_cast<int>(batch.size()) >= params_.dma_batch) {
      t = MigrateBatch(t, batch);
    }
  }
  t = MigrateBatch(t, batch);

  // Phase 2: promote the NVM hot list (write-heavy pages sit at its front).
  bool stalled = false;
  while (!stalled && budget >= page_bytes && !hot_[nvm].empty()) {
    while (static_cast<int>(batch.size()) < params_.dma_batch && budget >= page_bytes) {
      HememPage* hot_page = hot_[nvm].PopFront();
      if (hot_page == nullptr) {
        break;
      }
      hot_page->list = PageListId::kNone;
      // Above the quota no promotion happens (the daemon gave the DRAM to
      // someone else); otherwise a DRAM frame comes from free memory above
      // the watermark, else by demoting a cold DRAM page. No cold DRAM page
      // and no free memory means the hot set exceeds DRAM: stop migrating.
      if (dram_quota_bytes_ > 0 && dram_usage() >= dram_quota_bytes_) {
        Classify(hot_page);
        stalled = true;
        break;
      }
      std::optional<uint32_t> frame;
      if (dram_frames.free_bytes() > watermark_bytes_) {
        frame = TryAllocFrame(Tier::kDram, t);
      }
      if (!frame.has_value()) {
        HememPage* victim = cold_[dram].PopFront();
        if (victim == nullptr) {
          Classify(hot_page);  // back onto the NVM hot list
          stalled = true;
          hstats_.promotion_stalls++;
          break;
        }
        victim->list = PageListId::kNone;
        const std::optional<uint32_t> nvm_frame = TryAllocFrame(Tier::kNvm, t);
        if (!nvm_frame.has_value()) {
          Classify(hot_page);
          Classify(victim);
          stalled = true;
          break;
        }
        std::vector<Migration> demote_batch;
        demote_batch.push_back(Migration{victim, Tier::kNvm, *nvm_frame});
        budget = budget >= page_bytes ? budget - page_bytes : 0;
        t = MigrateBatch(t, demote_batch);
        frame = TryAllocFrame(Tier::kDram, t);
        if (!frame.has_value()) {
          Classify(hot_page);
          stalled = true;
          break;
        }
      }
      batch.push_back(Migration{hot_page, Tier::kDram, *frame});
      budget -= page_bytes;
    }
    t = MigrateBatch(t, batch);
  }
  if (machine_.tracer().enabled()) {
    machine_.tracer().Duration(
        trace_policy_track_, "policy_pass", "hemem", start, t,
        {{"promoted", static_cast<double>(stats_.pages_promoted - promoted_before)},
         {"demoted", static_cast<double>(stats_.pages_demoted - demoted_before)}});
  }
  return t - start;
}

}  // namespace hemem
