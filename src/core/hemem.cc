#include "core/hemem.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "core/scanner.h"

namespace hemem {

namespace {

// List-maintenance cost of one policy wakeup, independent of migrations.
constexpr SimTime kPolicyBaseCost = 2 * kMicrosecond;
// Cost of examining one page during a page-table scan pass, beyond the raw
// PTE traffic (list moves, counter updates).
constexpr SimTime kPtPerPageCost = 5;

// Policy-thread cost of handing one migration batch to the asynchronous copy
// engine (descriptor setup; the copy itself runs in the background).
constexpr SimTime kTxnSubmitCost = 1 * kMicrosecond;

}  // namespace

Hemem::Hemem(Machine& machine, HememParams params)
    : TieredMemoryManager(machine),
      params_(params),
      watermark_bytes_(static_cast<uint64_t>(static_cast<double>(params.dram_free_watermark) /
                                             machine.config().label_scale)),
      managed_threshold_bytes_(static_cast<uint64_t>(
          static_cast<double>(params.managed_threshold) / machine.config().label_scale)),
      copier_(params.copy_threads) {
  // On small scaled machines the watermark must stay a meaningful number of
  // pages yet a bounded fraction of DRAM.
  watermark_bytes_ = std::min(watermark_bytes_, machine.config().dram_bytes / 4);
  watermark_bytes_ = std::max(watermark_bytes_, 2 * machine.page_bytes());
  // Management cadence scales with the platform (see DESIGN.md): capacities
  // shrink by label_scale, so thread periods shrink alike to preserve the
  // management-to-workload duty cycle. Migration budgets derive from the
  // scaled period, so the paper's 10 GB/s cap is preserved as a *rate*.
  const double scale = machine.config().label_scale;
  auto scaled = [scale](SimTime t, SimTime floor) {
    return std::max<SimTime>(static_cast<SimTime>(static_cast<double>(t) / scale), floor);
  };
  params_.policy_period = scaled(params_.policy_period, 20 * kMicrosecond);
  params_.pt_scan_period = scaled(params_.pt_scan_period, 20 * kMicrosecond);
  params_.pebs_drain_period = scaled(params_.pebs_drain_period, 10 * kMicrosecond);
  nvm_watermark_bytes_ = static_cast<uint64_t>(
      static_cast<double>(params.nvm_free_watermark) / machine.config().label_scale);
  nvm_watermark_bytes_ = std::min(nvm_watermark_bytes_, machine.config().nvm_bytes / 4);
  nvm_watermark_bytes_ = std::max(nvm_watermark_bytes_, 2 * machine.page_bytes());
  if (params_.enable_swap && machine.swap() != nullptr) {
    swap_space_.emplace(machine.swap()->capacity(), machine.page_bytes());
  }
  // The migration policy, configured from this instance's thresholds (so
  // threshold sweeps — fig11/fig12 — configure whichever policy is active).
  cool_.threshold = params_.cooling_threshold;
  policy::PolicyConfig policy_config;
  policy_config.hot_read_threshold = params_.hot_read_threshold;
  policy_config.hot_write_threshold = params_.hot_write_threshold;
  policy_config.cooling_threshold = params_.cooling_threshold;
  std::string policy_error;
  policy_ = policy::MakePolicy({params_.policy, params_.policy_spec}, policy_config,
                               &policy_error);
  if (policy_ == nullptr) {
    // CLI layers validate --policy before construction; reaching here means
    // a programmatic caller passed a bad name, which is unrecoverable.
    std::fprintf(stderr, "hemem: %s\n", policy_error.c_str());
    std::abort();
  }
  // Skeleton configuration: a store stalling on an in-flight migration pays a
  // userfaultfd round trip before waiting out the copy, and PEBS counting
  // runs after the device charge (with the post-access timestamp).
  wp_stall_cost_ = fault_costs_.userfaultfd_roundtrip;
  post_charge_hook_ = params_.scan_mode == ScanMode::kPebs;
  // PEBS counting is epoch-compatible: inside an epoch OnAccessCharged
  // routes into the worker's shard-local PebsBuffer::ShardState, and the
  // barrier merge restores the serial sample stream exactly. The gate must
  // then keep shard streams on distinct counter rows.
  epoch_sampling_ = post_charge_hook_;
  // Nomad mode: stores never wait out a copy — they abort the transaction
  // (OnWpConflict) after the same fault round-trip.
  wp_txn_abort_ = nomad();
  // Skeleton + hooks only; the PEBS quantum budget (OnQuantumBegin) keeps
  // batched counting exact.
  batch_quantum_safe_ = true;
  // Epoch eligibility is dynamic (EpochEligible): accesses can reach both
  // devices, and epochs are granted whenever the access path is momentarily
  // pure — PT/no-scan tracking, no WP window, no in-flight transaction.
  parallel_tier_mask_ = (1u << static_cast<int>(Tier::kDram)) |
                        (1u << static_cast<int>(Tier::kNvm));
  drain_buf_.reserve(4096);

  trace_policy_track_ = machine.tracer().RegisterTrack("hemem.policy");
  trace_sampling_track_ = machine.tracer().RegisterTrack("hemem.sampling");
  machine.metrics().AddProvider(this, [this](obs::MetricsEmitter& e) {
    e.Emit("hemem.samples_processed", hstats_.samples_processed);
    e.Emit("hemem.cooling_epochs", hstats_.cooling_epochs);
    e.Emit("hemem.pt_scans", hstats_.pt_scans);
    e.Emit("hemem.policy_passes", hstats_.policy_passes);
    e.Emit("hemem.promotion_stalls", hstats_.promotion_stalls);
    e.Emit("hemem.pages_swapped_out", hstats_.pages_swapped_out);
    e.Emit("hemem.pages_swapped_in", hstats_.pages_swapped_in);
    e.Emit("hemem.migration_aborts", hstats_.migration_aborts);
    e.Emit("hemem.deferred_allocs", hstats_.deferred_allocs);
    e.Emit("hemem.dma_fallback_batches", hstats_.dma_fallback_batches);
    e.Emit("hemem.cool_clock", cool_.clock);
    policy_->EmitMetrics(e);
    e.Emit("hemem.dram_usage_bytes", dram_usage());
    e.Emit("hemem.dram_quota_bytes", dram_quota_bytes_);
    e.Emit("hemem.hot_pages.dram", hot_pages(Tier::kDram));
    e.Emit("hemem.hot_pages.nvm", hot_pages(Tier::kNvm));
    e.Emit("hemem.cold_pages.dram", cold_pages(Tier::kDram));
    e.Emit("hemem.cold_pages.nvm", cold_pages(Tier::kNvm));
    if (nomad()) {
      // Emitted only in nomad mode so exclusive-mode reports (and their
      // committed CI baselines) keep their exact key set.
      e.Emit("hemem.migration.txn_starts", hstats_.txn_starts);
      e.Emit("hemem.migration.txn_commits", hstats_.txn_commits);
      e.Emit("hemem.migration.txn_aborts", hstats_.txn_aborts);
      e.Emit("hemem.migration.shadow_demotions", hstats_.shadow_demotions);
      e.Emit("hemem.migration.shadow_invalidations", hstats_.shadow_invalidations);
      e.Emit("hemem.migration.shadow_reclaims", hstats_.shadow_reclaims);
      e.Emit("hemem.migration.shadow_pages", shadow_pages());
      e.Emit("hemem.migration.pending_txns", pending_txns());
    }
  });
}

Hemem::~Hemem() = default;

const char* Hemem::name() const {
  switch (params_.scan_mode) {
    case ScanMode::kPebs:
      return "HeMem";
    case ScanMode::kPtSync:
      return "HeMem-PT-Sync";
    case ScanMode::kPtAsync:
      return "HeMem-PT-Async";
    case ScanMode::kNone:
      return "HeMem-NoScan";
  }
  return "HeMem";
}

void Hemem::Start() {
  Engine& engine = machine_.engine();
  switch (params_.scan_mode) {
    case ScanMode::kPebs:
      pebs_thread_ = std::make_unique<PebsThread>(*this);
      engine.AddThread(pebs_thread_.get());
      break;
    case ScanMode::kPtAsync:
      pt_scan_thread_ = std::make_unique<PtScanThread>(*this);
      engine.AddThread(pt_scan_thread_.get());
      break;
    case ScanMode::kPtSync:
    case ScanMode::kNone:
      break;
  }
  if (params_.enable_policy) {
    policy_thread_ = std::make_unique<HememPolicyThread>(
        *this, /*scan_inline=*/params_.scan_mode == ScanMode::kPtSync);
    engine.AddThread(policy_thread_.get());
  }
}

uint64_t Hemem::Mmap(uint64_t bytes, AllocOptions opts) {
  PageTable& pt = machine_.page_table();
  const uint64_t page = machine_.page_bytes();
  const uint64_t base = pt.ReserveVa(bytes, page);

  // Small allocations are forwarded to the kernel; they stay in DRAM and are
  // not tracked. A label whose cumulative small allocations cross the
  // managed threshold flips to managed (the growth rule).
  uint64_t& grown = label_growth_[opts.label];
  const bool managed =
      opts.pin_tier.has_value() || bytes >= managed_threshold_bytes_ ||
      grown + bytes >= managed_threshold_bytes_;
  grown += bytes;

  Region* region = pt.MapRegion(base, bytes, page, managed, opts.label);
  if (!managed) {
    stats_.small_allocs++;
    return base;
  }
  stats_.managed_allocs++;

  auto meta = std::make_unique<HememRegionMeta>();
  meta->pages.resize(region->num_pages());
  for (uint64_t i = 0; i < region->num_pages(); ++i) {
    meta->pages[i].region = region;
    meta->pages[i].index = static_cast<uint32_t>(i);
  }
  meta->pinned = opts.pin_tier.has_value();
  meta->preferred = opts.prefer_tier;
  meta->create_epoch = cool_.clock;
  AttachRegionMeta(*region, std::move(meta));

  if (opts.pin_tier.has_value()) {
    // Pinned regions (the Opt bound, FlexKVS's priority instance) are mapped
    // eagerly on the requested tier and excluded from lists and policy.
    for (PageEntry& entry : region->pages) {
      Tier tier = *opts.pin_tier;
      std::optional<uint32_t> frame = machine_.frames(tier).Alloc();
      if (!frame.has_value()) {
        tier = tier == Tier::kDram ? Tier::kNvm : Tier::kDram;
        frame = machine_.frames(tier).Alloc();
      }
      assert(frame.has_value() && "machine out of physical memory");
      entry.frame = *frame;
      entry.tier = tier;
      machine_.page_table().SetPresent(entry);
      if (tier == Tier::kDram) {
        dram_pages_owned_++;
      }
    }
  }
  return base;
}

void Hemem::OnUnmapRegion(Region& region) {
  // Unlink every tracked page from the hot/cold lists before the base class
  // destroys the metadata — a HememPage must never dangle on a list. The
  // base Munmap then detaches the region slot and releases the frames.
  // Nomad state referring into the region goes with it: in-flight
  // transactions are cancelled (destination frames return to their pools)
  // and live shadows are released — ReleaseRegionFrames only knows about
  // the mapped frame.
  HememRegionMeta* meta = MetaOfRegion(region);
  if (meta != nullptr) {
    for (HememPage& page : meta->pages) {
      DetachFromList(&page);
      if (page.txn_slot >= 0) {
        PendingTxn txn = txns_[page.txn_slot];
        machine_.frames(txn.dst).Free(txn.frame);
        if (ShadowMemory* shadow = machine_.shadow()) {
          shadow->DropPage(txn.dst, txn.frame);
        }
        if (txn.audit_id != 0) {
          machine_.observation()->audit().OnMigrationAborted(txn.audit_id, 0);
        }
        RemoveTxnSlot(page.txn_slot);
      }
      if (page.shadow_slot >= 0) {
        DropShadow(&page, ShadowDrop::kUnmapped);
      }
    }
  }
  for (const PageEntry& entry : region.pages) {
    if (entry.present && entry.tier == Tier::kDram) {
      dram_pages_owned_--;
    }
  }
}

std::optional<Hemem::PageProbe> Hemem::ProbePage(uint64_t va) {
  Region* region = machine_.page_table().Find(va);
  if (region == nullptr) {
    return std::nullopt;
  }
  HememPage* page = MetaOf(region, region->PageIndexOf(va));
  if (page == nullptr) {
    return std::nullopt;
  }
  return PageProbe{page->reads,
                   page->writes,
                   page->write_heavy,
                   page->list == PageListId::kHot,
                   page->tier(),
                   page->list,
                   page->entry().shadow_frame,
                   page->entry().dirty,
                   page->txn_slot >= 0};
}

HememPage* Hemem::MetaOf(Region* region, uint64_t index) {
  HememRegionMeta* meta = MetaOfRegion(*region);
  if (meta == nullptr) {
    return nullptr;
  }
  return &meta->pages[index];
}

void Hemem::HandleMissingFault(SimThread& thread, Region& region, uint64_t index) {
  PageEntry& entry = region.pages[index];
  // userfaultfd round trip to the fault thread, then a zero-filled page.
  // DRAM is preferred so ephemeral data lands (and dies) in fast memory,
  // unless the region carries an explicit placement hint.
  Tier tier = Tier::kDram;
  HememRegionMeta* meta = MetaOfRegion(region);
  if (meta != nullptr && meta->preferred.has_value()) {
    tier = *meta->preferred;
  } else if (dram_quota_bytes_ > 0 && dram_usage() >= dram_quota_bytes_) {
    tier = Tier::kNvm;  // over quota: fresh pages go to NVM
  }
  std::optional<uint32_t> frame = machine_.frames(tier).Alloc();
  if (!frame.has_value()) {
    tier = tier == Tier::kDram ? Tier::kNvm : Tier::kDram;
    frame = machine_.frames(tier).Alloc();
  }
  if (!frame.has_value() && !shadowed_.empty()) {
    // Nomad: both pools exhausted, but shadow copies hold reclaimable NVM
    // frames — and a demand fault must map.
    DropShadow(shadowed_.back(), ShadowDrop::kReclaimed);
    tier = Tier::kNvm;
    frame = machine_.frames(tier).Alloc();
  }
  assert(frame.has_value() && "machine out of physical memory");
  entry.frame = *frame;
  entry.tier = tier;
  machine_.page_table().SetPresent(entry);
  if (tier == Tier::kDram) {
    dram_pages_owned_++;
  }
  if (ShadowMemory* shadow = machine_.shadow()) {
    // Zero-fill: a reused frame must not leak a prior owner's contents.
    shadow->DropPage(tier, *frame);
  }
  thread.Advance(fault_costs_.userfaultfd_roundtrip);
  thread.AdvanceTo(machine_.device(tier).BulkTransfer(thread.now(), region.page_bytes,
                                                      AccessKind::kStore));
  stats_.missing_faults++;

  if (meta != nullptr && !meta->pinned) {
    // Fresh pages start cold; FIFO order gives ephemeral data its DRAM grace
    // period before it becomes a demotion candidate.
    HememPage* page = &meta->pages[index];
    page->cool_snapshot = cool_.clock;
    Classify(page);
  }
}

void Hemem::HandleSwapInFault(SimThread& thread, Region& region, uint64_t index) {
  PageEntry& entry = region.pages[index];
  BlockDevice* disk = machine_.swap();
  assert(disk != nullptr && swap_space_.has_value());
  // Major fault: userfaultfd round trip, then the page streams back from the
  // block device into a fresh frame (DRAM preferred — it is being touched —
  // unless a daemon quota says otherwise).
  Tier tier = Tier::kDram;
  if (dram_quota_bytes_ > 0 && dram_usage() >= dram_quota_bytes_) {
    tier = Tier::kNvm;
  }
  std::optional<uint32_t> frame = machine_.frames(tier).Alloc();
  if (!frame.has_value()) {
    tier = Tier::kNvm;
    frame = machine_.frames(tier).Alloc();
  }
  if (!frame.has_value() && !shadowed_.empty()) {
    // Nomad: reclaim a shadow frame — a major fault must map (see
    // HandleMissingFault).
    DropShadow(shadowed_.back(), ShadowDrop::kReclaimed);
    frame = machine_.frames(tier).Alloc();
  }
  assert(frame.has_value() && "machine out of physical memory");
  thread.Advance(fault_costs_.userfaultfd_roundtrip);
  const SimTime read_done = disk->Read(thread.now(), region.page_bytes);
  const SimTime fill_done =
      machine_.device(tier).BulkTransfer(thread.now(), region.page_bytes,
                                         AccessKind::kStore);
  thread.AdvanceTo(std::max(read_done, fill_done));
  swap_space_->Free(entry.frame);
  if (ShadowMemory* shadow = machine_.shadow()) {
    // Swap contents are not shadowed (see vm/shadow.h); the page reads as
    // zeros after swap-in, and a reused frame must not leak stale contents.
    shadow->DropPage(tier, *frame);
  }
  entry.frame = *frame;
  entry.tier = tier;
  entry.swapped = false;
  machine_.page_table().SetPresent(entry);
  if (tier == Tier::kDram) {
    dram_pages_owned_++;
  }
  hstats_.pages_swapped_in++;

  HememRegionMeta* meta = MetaOfRegion(region);
  if (meta != nullptr && !meta->pinned) {
    HememPage* page = &meta->pages[index];
    page->cool_snapshot = cool_.clock;
    Classify(page);
  }
}

SimTime Hemem::SwapOutColdPages(SimTime t, uint64_t* budget) {
  BlockDevice* disk = machine_.swap();
  const SimTime swap_start = t;
  const uint64_t swapped_before = hstats_.pages_swapped_out;
  const uint64_t page_bytes = machine_.page_bytes();
  FrameAllocator& nvm_frames = machine_.frames(Tier::kNvm);
  const int nvm = static_cast<int>(Tier::kNvm);
  while (nvm_frames.free_bytes() < nvm_watermark_bytes_ && *budget >= page_bytes) {
    HememPage* victim = cold_[nvm].PopFront();
    if (victim == nullptr) {
      break;  // nothing cold enough to evict
    }
    victim->list = PageListId::kNone;
    const uint32_t slot = swap_space_->Alloc();
    if (slot == UINT32_MAX) {
      Classify(victim);
      break;  // swap space full
    }
    PageEntry& entry = victim->entry();
    // Stream the page out: NVM read feeding a disk write.
    const SimTime nvm_done =
        machine_.nvm().BulkTransfer(t, page_bytes, AccessKind::kLoad);
    t = disk->Write(nvm_done, page_bytes);
    if (ShadowMemory* shadow = machine_.shadow()) {
      shadow->DropPage(Tier::kNvm, entry.frame);
    }
    nvm_frames.Free(entry.frame);
    entry.frame = slot;
    machine_.page_table().ClearPresent(entry);
    entry.swapped = true;
    *budget -= page_bytes;
    hstats_.pages_swapped_out++;
  }
  if (hstats_.pages_swapped_out != swapped_before && machine_.tracer().enabled()) {
    machine_.tracer().Duration(
        trace_policy_track_, "swap_out", "hemem", swap_start, t,
        {{"pages", static_cast<double>(hstats_.pages_swapped_out - swapped_before)}});
  }
  return t;
}

void Hemem::OnMissingPage(SimThread& thread, Region& region, uint64_t index) {
  PageEntry& entry = region.pages[index];
  if (entry.swapped) {
    // Major fault: the page lives on the swap device.
    HandleSwapInFault(thread, region, index);
  }
  if (!entry.present) {
    if (region.managed) {
      HandleMissingFault(thread, region, index);
    } else {
      // Kernel-managed small allocation: anonymous fault, DRAM first.
      if (KernelFirstTouch(thread, region, entry) == Tier::kDram) {
        dram_pages_owned_++;
      }
    }
  }
}

void Hemem::OnAccessCharged(SimThread& thread, uint64_t va, PageEntry& entry,
                            AccessKind kind) {
  // Runs only in kPebs mode (post_charge_hook_): counts the access in the
  // CPU's sample buffer with the post-access timestamp. Inside an epoch the
  // count lands in the worker's shard-local view instead (keyed by the op's
  // start time for the barrier merge); outside epochs pebs_shard() is null
  // and this is the serial path unchanged.
  const PebsEvent event = kind == AccessKind::kStore
                              ? PebsEvent::kStore
                              : (entry.tier == Tier::kNvm ? PebsEvent::kNvmLoad
                                                          : PebsEvent::kDramLoad);
  if (PebsBuffer::ShardState* shard = machine_.pebs_shard()) [[unlikely]] {
    machine_.pebs().CountAccessShard(*shard, thread.access_op_start(),
                                     thread.now(), va, event, thread.stream_id());
    return;
  }
  machine_.pebs().CountAccess(thread.now(), va, event, thread.stream_id());
}

void Hemem::OnQuantumBegin(SimThread& thread) {
  if (post_charge_hook_) {
    if (PebsBuffer::ShardState* shard = machine_.pebs_shard()) [[unlikely]] {
      machine_.pebs().BeginQuantumShard(*shard, thread.stream_id());
      return;
    }
    machine_.pebs().BeginQuantum(thread.stream_id());
  }
}

void Hemem::OnQuantumEnd(SimThread&) {
  if (post_charge_hook_) {
    if (PebsBuffer::ShardState* shard = machine_.pebs_shard()) [[unlikely]] {
      PebsBuffer::EndQuantumShard(*shard);
      return;
    }
    machine_.pebs().EndQuantum();
  }
}

void Hemem::NoteSampleForCooling(HememPage* page, SimTime t) {
  // Cooling epoch trigger — the arithmetic lives in policy::CoolingClock
  // (the paper's rule generalized to aggregate samples per *distinct* page
  // sampled this epoch; see DESIGN.md). Epoch bookkeeping that belongs to
  // the manager — stats, tracing, decaying the triggering page — stays
  // here.
  if (cool_.NoteSample(&page->sample_stamp)) {
    hstats_.cooling_epochs++;
    if (machine_.tracer().enabled()) {
      machine_.tracer().Instant(trace_sampling_track_, "cooling_epoch", "hemem",
                                t, {{"cool_clock", static_cast<double>(cool_.clock)}});
    }
    CoolPage(page);
  }
}

void Hemem::CoolPage(HememPage* page) {
  const uint64_t missed = cool_.clock - page->cool_snapshot;
  if (missed == 0) {
    return;
  }
  policy::DecayCounters(&page->reads, &page->writes, missed);
  page->cool_snapshot = cool_.clock;
  if (page->write_heavy && page->writes < params_.hot_write_threshold) {
    // No longer write-heavy: the paper moves it to the ordinary hot list
    // (one second chance to stay in DRAM) instead of dropping it to cold.
    page->write_heavy = false;
    page->second_chance = true;
  }
}

void Hemem::DetachFromList(HememPage* page) {
  switch (page->list) {
    case PageListId::kHot:
      hot_[static_cast<int>(page->list_tier)].Remove(page);
      break;
    case PageListId::kCold:
      cold_[static_cast<int>(page->list_tier)].Remove(page);
      break;
    case PageListId::kNone:
      break;
  }
  page->list = PageListId::kNone;
}

policy::PolicyFeatures Hemem::FeaturesFor(const HememPage& page) const {
  policy::PolicyFeatures f;
  f.reads = page.reads;
  f.writes = page.writes;
  f.write_heavy = page.write_heavy;
  f.second_chance = page.second_chance;
  f.accesses_since_cool = static_cast<uint64_t>(page.reads) + page.writes;
  f.recency_bucket = policy::RecencyBucket(cool_.clock, page.sample_stamp);
  f.rw_ratio_q8 = policy::RwRatioQ8(page.reads, page.writes);
  f.region_pages = page.region->num_pages();
  const HememRegionMeta* meta = MetaOfRegion(*page.region);
  f.region_age_epochs = meta != nullptr ? cool_.clock - meta->create_epoch : 0;
  f.tier = static_cast<int>(page.tier());
  f.shadow_clean = page.shadow_slot >= 0 && !page.entry().dirty;
  return f;
}

void Hemem::Classify(HememPage* page) {
  DetachFromList(page);
  if (page->txn_slot >= 0) [[unlikely]] {
    // An in-flight transaction owns this page: it stays off the lists so the
    // policy cannot queue a second migration before the first resolves
    // (FinalizeTxns re-classifies it).
    return;
  }
  const Tier tier = page->tier();
  page->list_tier = tier;
  const policy::PolicyVerdict verdict = policy_->Classify(FeaturesFor(*page));
  if (!verdict.hot && page->second_chance) {
    // Spent: the page rides the hot list once more, then must requalify.
    page->second_chance = false;
    page->list = PageListId::kHot;
    hot_[static_cast<int>(tier)].PushBack(page);
    return;
  }
  if (verdict.hot) {
    page->list = PageListId::kHot;
    if (verdict.front) {
      // The paper default fronts write-heavy pages: NVM write bandwidth is
      // the scarce resource, so they must reach DRAM before read-heavy ones.
      hot_[static_cast<int>(tier)].PushFront(page);
    } else {
      hot_[static_cast<int>(tier)].PushBack(page);
    }
  } else {
    page->list = PageListId::kCold;
    cold_[static_cast<int>(tier)].PushBack(page);
  }
}

void Hemem::OnSample(uint64_t va, bool is_store, SimTime t) {
  Region* region = machine_.page_table().Find(va);
  if (region == nullptr || !region->managed) {
    return;  // sample outside HeMem-managed memory
  }
  HememRegionMeta* meta = MetaOfRegion(*region);
  if (meta == nullptr || meta->pinned) {
    return;  // foreign or pinned regions are not policy-managed
  }
  HememPage* page = &meta->pages[region->PageIndexOf(va)];
  if (!page->entry().present) {
    return;
  }

  CoolPage(page);
  if (is_store) {
    page->writes++;
    if (page->writes >= params_.hot_write_threshold) {
      page->write_heavy = true;
    }
  } else {
    page->reads++;
  }
  NoteSampleForCooling(page, t);
  if (policy_->wants_observations()) {
    // Learning hook, post-decay/post-increment so the policy sees the same
    // counters Classify will. Gated: the default policy pays nothing.
    policy_->ObserveSample(FeaturesFor(*page), is_store, t);
  }
  Classify(page);
  hstats_.samples_processed++;
}

SimTime Hemem::DrainPebs(SimTime start) {
  PebsBuffer& pebs = machine_.pebs();
  SimTime work = 0;
  uint64_t drained = 0;
  while (pebs.pending() > 0) {
    drain_buf_.clear();
    const size_t n = pebs.Drain(drain_buf_, 4096);
    drained += n;
    for (const PebsRecord& record : drain_buf_) {
      OnSample(record.va, record.event == PebsEvent::kStore, record.time);
    }
    work += static_cast<SimTime>(n) * params_.per_sample_cost;
  }
  if (drained > 0 && machine_.tracer().enabled()) {
    machine_.tracer().Duration(trace_sampling_track_, "pebs_drain", "hemem",
                               start, start + work,
                               {{"records", static_cast<double>(drained)}});
  }
  return work;
}

SimTime Hemem::PtScanPass(SimTime start) {
  hstats_.pt_scans++;
  const uint64_t page_bytes = machine_.page_bytes();
  uint64_t scanned_bytes = 0;
  uint64_t cleared = 0;
  SimTime work = 0;

  // Regions are walked in address order (the page table keeps them sorted),
  // matching how a real scanner walks the radix tree — and keeping the scan
  // deterministic, unlike iteration over a pointer-keyed hash map.
  machine_.page_table().ForEachRegion([&](Region& region) {
    HememRegionMeta* meta = MetaOfRegion(region);
    if (meta == nullptr || meta->pinned) {
      return;
    }
    scanned_bytes += region.bytes;
    for (HememPage& page : meta->pages) {
      PageEntry& entry = page.entry();
      if (!entry.present) {
        continue;
      }
      work += kPtPerPageCost;
      if (!entry.accessed) {
        continue;
      }
      cleared++;
      CoolPage(&page);
      // A scan only sees binary bits: one observation per pass, regardless
      // of how many times the page was touched — the fidelity loss that
      // makes PT variants overestimate the hot set under background traffic.
      if (entry.dirty) {
        if (page.shadow_slot >= 0) {
          // The store that set the dirty bit made the NVM shadow stale; drop
          // it here, before the scan clears the bit and the evidence is gone.
          DropShadow(&page, ShadowDrop::kInvalidated);
        }
        page.writes++;
        if (page.writes >= params_.hot_write_threshold) {
          page.write_heavy = true;
        }
      } else {
        page.reads++;
      }
      NoteSampleForCooling(&page, start);
      if (policy_->wants_observations()) {
        policy_->ObserveScan(FeaturesFor(page), entry.dirty, start);
      }
      Classify(&page);
      entry.accessed = false;
      entry.dirty = false;
    }
  });

  // Raw PTE traffic of walking the tables at tracking granularity...
  work += machine_.config().radix.ScanTime(scanned_bytes, page_bytes);
  // ...plus clearing A/D bits, which costs TLB shootdowns felt by the app.
  work += machine_.config().radix.ClearCost(cleared, machine_.engine().cores() - 1);
  machine_.tlb().ShootdownBatch(machine_.engine(), nullptr, CeilDiv(cleared, 512));
  if (machine_.tracer().enabled()) {
    machine_.tracer().Duration(trace_sampling_track_, "pt_scan", "hemem", start,
                               start + work,
                               {{"scanned_bytes", static_cast<double>(scanned_bytes)},
                                {"pages_cleared", static_cast<double>(cleared)}});
  }
  return work;
}

SimTime Hemem::RunCopyEngine(SimTime t, const std::vector<Migration>& batch,
                             std::vector<SimTime>* per_request) {
  const uint64_t page_bytes = machine_.page_bytes();
  SimTime done = t;
  if (params_.use_dma) {
    std::vector<CopyRequest> reqs;
    reqs.reserve(batch.size());
    for (const Migration& m : batch) {
      reqs.push_back(CopyRequest{&machine_.device(m.page->tier()), &machine_.device(m.dst),
                                 page_bytes});
    }
    const DmaBatchResult result =
        machine_.dma().TryCopyBatch(t, reqs, params_.dma_channels, per_request);
    if (result.ok) {
      done = result.done;
    } else {
      // Retries exhausted: fall back to the synchronous CPU copiers from the
      // moment the engine gave up, as HeMem's migration threads do when the
      // I/OAT ioctl interface errors out. The batch still completes — only
      // slower — so the callers' bookkeeping is unchanged.
      hstats_.dma_fallback_batches++;
      machine_.dma().NoteFallback(batch.size());
      done = result.done;
      per_request->clear();
      for (const Migration& m : batch) {
        per_request->push_back(copier_.Copy(result.done, machine_.device(m.page->tier()),
                                            machine_.device(m.dst), page_bytes));
        done = std::max(done, per_request->back());
      }
      if (machine_.tracer().enabled()) {
        machine_.tracer().Duration(trace_policy_track_, "dma_fallback_copy", "hemem",
                                   result.done, done,
                                   {{"pages", static_cast<double>(batch.size())}});
      }
    }
  } else {
    for (const Migration& m : batch) {
      per_request->push_back(copier_.Copy(t, machine_.device(m.page->tier()),
                                          machine_.device(m.dst), page_bytes));
      done = std::max(done, per_request->back());
    }
  }
  return done;
}

SimTime Hemem::MigrateBatch(SimTime t, std::vector<Migration>& batch) {
  if (batch.empty()) {
    return t;
  }
  if (nomad()) {
    return BeginTxnBatch(t, batch);
  }
  const uint64_t page_bytes = machine_.page_bytes();
  std::vector<SimTime> per_request;
  SimTime done = RunCopyEngine(t, batch, &per_request);

  // Commit point. An abort fired here models Nomad-style migration failure
  // (contending writer, racing unmap): the copied data is discarded and the
  // transaction rolls back — every page stays resident and mapped in its
  // source tier, the claimed destination frames return to their pool, and no
  // promotion/demotion stats or list accounting change. Stores that raced
  // the attempt still waited on wp_until, exactly as for a committed copy;
  // no remap happened, so there is nothing to shoot down.
  FaultInjector& faults = machine_.faults();
  if (faults.armed(FaultKind::kMigrationAbort) &&
      faults.Fire(FaultKind::kMigrationAbort, done) != nullptr) [[unlikely]] {
    ShadowMemory* shadow = machine_.shadow();
    for (size_t i = 0; i < batch.size(); ++i) {
      const Migration& m = batch[i];
      machine_.frames(m.dst).Free(m.frame);
      if (shadow != nullptr) {
        shadow->DropPage(m.dst, m.frame);
      }
      m.page->entry().wp_until = per_request[i];
      wp_clear_time_ = std::max(wp_clear_time_, per_request[i]);
      Classify(m.page);  // back onto its source tier's list
      if (m.audit_id != 0) {
        machine_.observation()->audit().OnMigrationAborted(m.audit_id, done);
      }
    }
    hstats_.migration_aborts++;
    if (machine_.tracer().enabled()) {
      machine_.tracer().Instant(trace_policy_track_, "migrate_abort", "hemem", done,
                                {{"pages", static_cast<double>(batch.size())}});
    }
    batch.clear();
    return done;
  }

  ShadowMemory* shadow = machine_.shadow();
  for (size_t i = 0; i < batch.size(); ++i) {
    const Migration& m = batch[i];
    PageEntry& entry = m.page->entry();
    const Tier src = entry.tier;
    // Stores block only while this page's own copy is in flight.
    entry.wp_until = per_request[i];
    wp_clear_time_ = std::max(wp_clear_time_, per_request[i]);
    if (shadow != nullptr) {
      shadow->MovePage(src, entry.frame, m.dst, m.frame);
    }
    machine_.frames(src).Free(entry.frame);
    entry.tier = m.dst;
    entry.frame = m.frame;
    if (m.dst == Tier::kDram) {
      stats_.pages_promoted++;
      dram_pages_owned_++;
    } else {
      stats_.pages_demoted++;
      if (src == Tier::kDram) {
        dram_pages_owned_--;
      }
    }
    stats_.bytes_migrated += page_bytes;
    // Re-enqueue on the destination tier's list matching its temperature.
    Classify(m.page);
    if (m.audit_id != 0) {
      machine_.observation()->audit().OnMigrationComplete(m.audit_id, per_request[i]);
    }
  }
  // Remaps are batched under one shootdown.
  machine_.tlb().ShootdownBatch(machine_.engine(), nullptr, 1);
  done += machine_.tlb().params().initiator_cost;
  if (machine_.tracer().enabled()) {
    machine_.tracer().Duration(
        trace_policy_track_,
        batch[0].dst == Tier::kDram ? "migrate_promote" : "migrate_demote",
        "hemem", t, done, {{"pages", static_cast<double>(batch.size())}});
  }
  batch.clear();
  return done;
}

// ---- Nomad (non-exclusive transactional migration) --------------------------

SimTime Hemem::BeginTxnBatch(SimTime t, std::vector<Migration>& batch) {
  // Injected abort (migrate.abort plans): under nomad the failure fires at
  // submission — the copy engine refuses the batch before any transaction
  // starts. Rollback is total and instantaneous: every page stays resident
  // and mapped in its source tier (which was authoritative throughout, so no
  // data was ever at risk), the claimed destination frames return to their
  // pools, and the cursor advances by the submission cost alone — which
  // keeps the fault tests' virtual-time arithmetic exactly computable.
  FaultInjector& faults = machine_.faults();
  if (faults.armed(FaultKind::kMigrationAbort) &&
      faults.Fire(FaultKind::kMigrationAbort, t) != nullptr) [[unlikely]] {
    ShadowMemory* shadow = machine_.shadow();
    for (const Migration& m : batch) {
      machine_.frames(m.dst).Free(m.frame);
      if (shadow != nullptr) {
        shadow->DropPage(m.dst, m.frame);
      }
      Classify(m.page);  // back onto its source tier's list
      if (m.audit_id != 0) {
        machine_.observation()->audit().OnMigrationAborted(m.audit_id, t);
      }
    }
    hstats_.migration_aborts++;
    if (machine_.tracer().enabled()) {
      machine_.tracer().Instant(trace_policy_track_, "migrate_abort", "hemem", t,
                                {{"pages", static_cast<double>(batch.size())}});
    }
    batch.clear();
    return t + kTxnSubmitCost;
  }

  // The copies run asynchronously against the device model; the policy
  // thread only pays the descriptor-submission cost. Each page's source
  // mapping stays authoritative while its copy is in flight: loads proceed
  // untouched, and wp_until (set to the copy's completion time) routes any
  // store that races the copy to the conflict path (OnWpConflict), which
  // aborts that page's transaction instead of stalling the writer. A store
  // after the copy completes but before the commit proceeds normally — it
  // lands on the still-mapped source, and the commit folds it in (the
  // engine's commit-time delta re-sync; see FinalizeTxns).
  std::vector<SimTime> per_request;
  RunCopyEngine(t, batch, &per_request);
  for (size_t i = 0; i < batch.size(); ++i) {
    const Migration& m = batch[i];
    assert(m.page->txn_slot < 0 && "page already has a transaction in flight");
    m.page->entry().wp_until = per_request[i];
    m.page->txn_slot = static_cast<int32_t>(txns_.size());
    txns_.push_back(PendingTxn{m.page, m.dst, m.frame, per_request[i], false, m.audit_id});
    hstats_.txn_starts++;
  }
  if (machine_.tracer().enabled()) {
    machine_.tracer().Duration(
        trace_policy_track_,
        batch[0].dst == Tier::kDram ? "txn_promote" : "txn_demote", "hemem", t,
        t + kTxnSubmitCost, {{"pages", static_cast<double>(batch.size())}});
  }
  batch.clear();
  return t + kTxnSubmitCost;
}

void Hemem::RemoveTxnSlot(int32_t slot) {
  txns_[slot].page->txn_slot = -1;
  if (slot != static_cast<int32_t>(txns_.size()) - 1) {
    txns_[slot] = txns_.back();
    txns_[slot].page->txn_slot = slot;
  }
  txns_.pop_back();
}

SimTime Hemem::FinalizeTxns(SimTime t) {
  if (txns_.empty()) {
    return t;
  }
  const uint64_t page_bytes = machine_.page_bytes();
  ShadowMemory* shadow = machine_.shadow();
  for (int32_t slot = 0; slot < static_cast<int32_t>(txns_.size());) {
    if (!txns_[slot].aborted && txns_[slot].done > t) {
      ++slot;  // copy still in flight; resolve at a later pass
      continue;
    }
    const PendingTxn txn = txns_[slot];
    RemoveTxnSlot(slot);  // swap-erase: re-examine `slot` next iteration
    HememPage* page = txn.page;
    PageEntry& entry = page->entry();
    if (txn.aborted) {
      // A store raced the copy: the destination data is stale, the source
      // mapping (never remapped) simply keeps serving. Only now is the
      // destination frame safe to reuse — the copy engine may have written
      // it until txn.done.
      machine_.frames(txn.dst).Free(txn.frame);
      if (shadow != nullptr) {
        shadow->DropPage(txn.dst, txn.frame);
      }
      if (txn.audit_id != 0) {
        machine_.observation()->audit().OnMigrationAborted(txn.audit_id, t);
      }
    } else {
      const Tier src = entry.tier;
      if (txn.dst == Tier::kDram) {
        // Promotion commit: the NVM source frame is retained as a clean
        // shadow instead of being freed — a later unwritten demotion flips
        // back onto it with no data movement (TryFlipDemote).
        if (shadow != nullptr) {
          shadow->CopyPage(src, entry.frame, Tier::kDram, txn.frame);
        }
        assert(page->shadow_slot < 0);
        entry.shadow_frame = entry.frame;
        // The copy is exact as of this commit: a store that raced the copy
        // aborted the transaction, and a store after the copy completed
        // landed on the source, which the commit-time re-sync just captured.
        // From here the dirty bit means "shadow is stale".
        entry.dirty = false;
        page->shadow_slot = static_cast<int32_t>(shadowed_.size());
        shadowed_.push_back(page);
        stats_.pages_promoted++;
        dram_pages_owned_++;
      } else {
        // Demotion commit: the DRAM source frame frees one pass after the
        // policy decided — the price of never blocking the application.
        if (page->shadow_slot >= 0) {
          // The full copy just superseded the page's old shadow (a policy
          // that skips TryFlipDemote can queue such a demotion).
          DropShadow(page, ShadowDrop::kInvalidated);
        }
        if (shadow != nullptr) {
          shadow->MovePage(src, entry.frame, txn.dst, txn.frame);
        }
        machine_.frames(src).Free(entry.frame);
        stats_.pages_demoted++;
        if (src == Tier::kDram) {
          dram_pages_owned_--;
        }
      }
      entry.tier = txn.dst;
      entry.frame = txn.frame;
      stats_.bytes_migrated += page_bytes;
      hstats_.txn_commits++;
      pass_remaps_++;
      if (txn.audit_id != 0) {
        machine_.observation()->audit().OnMigrationComplete(txn.audit_id, txn.done);
      }
    }
    entry.wp_until = 0;
    Classify(page);
  }
  return t;
}

void Hemem::SweepShadows() {
  for (int32_t i = 0; i < static_cast<int32_t>(shadowed_.size());) {
    if (shadowed_[i]->entry().dirty) {
      DropShadow(shadowed_[i], ShadowDrop::kInvalidated);  // swap-erase: retry i
    } else {
      ++i;
    }
  }
}

void Hemem::DropShadow(HememPage* page, ShadowDrop why) {
  PageEntry& entry = page->entry();
  assert(page->shadow_slot >= 0 && entry.has_shadow());
  if (ShadowMemory* shadow = machine_.shadow()) {
    shadow->DropPage(Tier::kNvm, entry.shadow_frame);
  }
  machine_.frames(Tier::kNvm).Free(entry.shadow_frame);
  entry.shadow_frame = kInvalidFrame;
  const int32_t slot = page->shadow_slot;
  page->shadow_slot = -1;
  if (slot != static_cast<int32_t>(shadowed_.size()) - 1) {
    shadowed_[slot] = shadowed_.back();
    shadowed_[slot]->shadow_slot = slot;
  }
  shadowed_.pop_back();
  switch (why) {
    case ShadowDrop::kInvalidated:
      hstats_.shadow_invalidations++;
      break;
    case ShadowDrop::kReclaimed:
      hstats_.shadow_reclaims++;
      break;
    case ShadowDrop::kUnmapped:
      break;
  }
}

bool Hemem::TryFlipDemote(HememPage* page, SimTime t) {
  (void)t;
  PageEntry& entry = page->entry();
  if (page->shadow_slot < 0 || entry.dirty || entry.tier != Tier::kDram) {
    return false;
  }
  // The NVM shadow is byte-identical to the DRAM page (clean since its
  // promotion commit), so demotion is a mapping flip: the shadow frame
  // becomes the mapping, the DRAM frame frees immediately, no data moves.
  const uint32_t dram_frame = entry.frame;
  const uint32_t nvm_frame = entry.shadow_frame;
  // Unlink the registry entry without freeing the shadow frame.
  const int32_t slot = page->shadow_slot;
  page->shadow_slot = -1;
  if (slot != static_cast<int32_t>(shadowed_.size()) - 1) {
    shadowed_[slot] = shadowed_.back();
    shadowed_[slot]->shadow_slot = slot;
  }
  shadowed_.pop_back();
  entry.shadow_frame = kInvalidFrame;
  if (ShadowMemory* shadow = machine_.shadow()) {
    shadow->DropPage(Tier::kDram, dram_frame);  // the NVM copy is authoritative now
  }
  machine_.frames(Tier::kDram).Free(dram_frame);
  entry.tier = Tier::kNvm;
  entry.frame = nvm_frame;
  stats_.pages_demoted++;
  dram_pages_owned_--;
  hstats_.shadow_demotions++;
  pass_remaps_++;
  Classify(page);
  return true;
}

void Hemem::OnWpConflict(SimThread& thread, Region& region, uint64_t index,
                         PageEntry& entry) {
  (void)thread;
  HememPage* page = MetaOf(&region, index);
  assert(page != nullptr && page->txn_slot >= 0 &&
         "WP conflict on a page with no transaction in flight");
  // Mark the transaction aborted; FinalizeTxns returns the destination frame
  // at the next pass (the copy engine may still be writing it). The source
  // mapping was authoritative all along, so the store proceeds immediately.
  txns_[page->txn_slot].aborted = true;
  hstats_.txn_aborts++;
  entry.wp_until = 0;
}

bool Hemem::EpochEligible(SimTime frontier) {
  // Purity is momentary: no transactional copy in flight (a store would
  // mutate txns_) and every exclusive-mode WP window expired (a store would
  // mutate wp stats and block). PEBS counting (post_charge_hook_) no longer
  // serializes: inside epochs it lands in shard-local state merged
  // deterministically at the barrier — the gate adds the distinct-counter-row
  // stream check (epoch_sampling_). Clean shadows and swept state don't
  // matter — they only change on the policy thread, which the engine's epoch
  // bound already fences out, and the A/D bits an epoch access sets are
  // explicitly allowed.
  for (const PendingTxn& txn : txns_) {
    // A live copy still in flight at the frontier could be aborted by an
    // in-epoch store (mutating txns_ — serializing). Once the copy has
    // completed, stores to the page run the fast path again; the commit
    // itself happens on the policy thread, which the epoch bound fences out.
    if (!txn.aborted && txn.done > frontier) {
      return false;
    }
  }
  return frontier >= wp_clear_time_;
}

uint64_t Hemem::pending_txn_frames(Tier tier) const {
  uint64_t n = 0;
  for (const PendingTxn& txn : txns_) {
    if (txn.dst == tier) {
      n++;
    }
  }
  return n;
}

bool Hemem::CheckNomadInvariants(std::string* why) const {
  const auto fail = [why](const std::string& message) {
    if (why != nullptr) {
      *why = message;
    }
    return false;
  };
  // Every frame a page maps is "writable" (the primary mapping); shadow and
  // transaction-destination frames are not mapped by anyone. One ownership
  // table over all three roles proves no frame plays two of them — the
  // simulator's form of "no page has two writable mappings".
  std::unordered_map<uint64_t, const char*> owners;
  const auto key = [](Tier tier, uint32_t frame) {
    return (static_cast<uint64_t>(tier) << 32) | frame;
  };
  const auto claim = [&owners, &key, &fail](Tier tier, uint32_t frame,
                                            const char* role) {
    const auto [it, inserted] = owners.emplace(key(tier, frame), role);
    if (!inserted) {
      return fail(std::string("frame ") + std::to_string(frame) + " on " +
                  TierName(tier) + " is both " + it->second + " and " + role);
    }
    return true;
  };
  bool ok = true;
  machine_.page_table().ForEachRegion([&](Region& region) {
    for (const PageEntry& entry : region.pages) {
      if (ok && entry.present) {
        ok = claim(entry.tier, entry.frame, "a primary mapping");
      }
    }
  });
  if (!ok) {
    return false;
  }
  for (size_t i = 0; i < shadowed_.size(); ++i) {
    const HememPage* page = shadowed_[i];
    const PageEntry& entry = page->entry();
    if (page->shadow_slot != static_cast<int32_t>(i)) {
      return fail("shadow registry slot " + std::to_string(i) +
                  " points at a page recording slot " +
                  std::to_string(page->shadow_slot));
    }
    if (!entry.present || !entry.has_shadow() || entry.tier != Tier::kDram) {
      return fail("shadowed page at slot " + std::to_string(i) +
                  " is not a present DRAM page with a shadow frame");
    }
    if (!claim(Tier::kNvm, entry.shadow_frame, "a shadow")) {
      return false;
    }
    // The load-bearing invariant: a shadow the sweep would flip onto must
    // hold exactly the primary's bytes. Dirty shadows are exempt — stale by
    // definition, unreachable by TryFlipDemote, dropped at the next sweep.
    const ShadowMemory* shadow = machine_.shadow();
    if (!entry.dirty && shadow != nullptr &&
        !shadow->PagesEqual(Tier::kDram, entry.frame, Tier::kNvm,
                            entry.shadow_frame)) {
      return fail("clean shadow frame " + std::to_string(entry.shadow_frame) +
                  " differs from its DRAM primary " +
                  std::to_string(entry.frame));
    }
  }
  for (size_t i = 0; i < txns_.size(); ++i) {
    if (txns_[i].page->txn_slot != static_cast<int32_t>(i)) {
      return fail("transaction slot " + std::to_string(i) +
                  " points at a page recording slot " +
                  std::to_string(txns_[i].page->txn_slot));
    }
    if (!claim(txns_[i].dst, txns_[i].frame, "a transaction destination")) {
      return false;
    }
  }
  if (why != nullptr) {
    why->clear();
  }
  return true;
}

std::optional<uint32_t> Hemem::TryAllocFrame(Tier tier, SimTime now) {
  FaultInjector& faults = machine_.faults();
  if (faults.armed(FaultKind::kAllocFail) &&
      faults.Fire(FaultKind::kAllocFail, now, TierName(tier)) != nullptr) [[unlikely]] {
    hstats_.deferred_allocs++;
    return std::nullopt;
  }
  std::optional<uint32_t> frame = machine_.frames(tier).Alloc();
  if (!frame.has_value() && tier == Tier::kNvm && !shadowed_.empty()) {
    // NVM pressure: shadow frames are a cache of reclaimable capacity.
    // Dropping one (the cheapest registry entry) frees exactly one frame.
    DropShadow(shadowed_.back(), ShadowDrop::kReclaimed);
    frame = machine_.frames(tier).Alloc();
  }
  return frame;
}

// The executor MigrationPolicy::Decide drives: pops detach pages from the
// owner's lists, queued migrations accumulate into the owner's DMA batches,
// and flushes call straight into MigrateBatch (which re-classifies moved
// pages — a page demoted early in a pass can be promoted later in the same
// pass, exactly as the pre-extraction code allowed).
class Hemem::PolicyEnvAdapter : public policy::PolicyEnv {
 public:
  explicit PolicyEnvAdapter(Hemem& owner) : owner_(owner) {
    batch_.reserve(static_cast<size_t>(owner.params_.dma_batch));
  }

  void* PopColdFront(int tier) override { return Detach(owner_.cold_[tier].PopFront()); }
  void* PopHotFront(int tier) override { return Detach(owner_.hot_[tier].PopFront()); }
  void* PopHotBack(int tier) override { return Detach(owner_.hot_[tier].PopBack()); }
  bool HotEmpty(int tier) const override { return owner_.hot_[tier].empty(); }
  void Requeue(void* page) override { owner_.Classify(static_cast<HememPage*>(page)); }
  policy::PolicyFeatures FeaturesOf(void* page) const override {
    return owner_.FeaturesFor(*static_cast<HememPage*>(page));
  }

  uint64_t PageBytes() const override { return owner_.machine_.page_bytes(); }
  uint64_t FreeBytes(int tier) const override {
    return owner_.machine_.frames(static_cast<Tier>(tier)).free_bytes();
  }
  uint64_t WatermarkBytes() const override { return owner_.watermark_bytes_; }
  uint64_t DramUsage() const override { return owner_.dram_usage(); }
  uint64_t DramQuota() const override { return owner_.dram_quota_bytes_; }
  int DmaBatch() const override { return owner_.params_.dma_batch; }

  bool TryAllocFrame(int tier, SimTime now, uint32_t* frame) override {
    const std::optional<uint32_t> got =
        owner_.TryAllocFrame(static_cast<Tier>(tier), now);
    if (!got.has_value()) {
      return false;
    }
    *frame = *got;
    return true;
  }

  void QueueMigration(void* page, int dst_tier, uint32_t frame) override {
    batch_.push_back(Stamp(static_cast<HememPage*>(page),
                           static_cast<Tier>(dst_tier), frame, pass_time_));
  }
  size_t QueuedMigrations() const override { return batch_.size(); }
  SimTime FlushMigrations(SimTime t) override { return owner_.MigrateBatch(t, batch_); }
  SimTime MigrateOne(void* page, int dst_tier, uint32_t frame, SimTime t) override {
    // One-element batch, independent of the pending queue (the paper's
    // inline victim demotion mid-promotion).
    std::vector<Migration> one;
    one.push_back(
        Stamp(static_cast<HememPage*>(page), static_cast<Tier>(dst_tier), frame, t));
    return owner_.MigrateBatch(t, one);
  }
  void NotePromotionStall() override { owner_.hstats_.promotion_stalls++; }

  bool TryFlipDemote(void* page, SimTime now) override {
    HememPage* p = static_cast<HememPage*>(page);
    if (!owner_.TryFlipDemote(p, now)) {
      return false;
    }
    if (audit_ != nullptr) {
      // A flip is decided and done in one step: queue the decision record
      // and resolve it as a shadow demotion immediately.
      const uint64_t id =
          audit_->OnMigrationQueued(pass_id_, p->va(), static_cast<int>(Tier::kDram),
                                    static_cast<int>(Tier::kNvm), now);
      audit_->OnShadowFlip(id, now);
    }
    return true;
  }

  // Audit context for this pass (PolicyPass sets it when access observation
  // is on; see obs/audit.h). Migrations queued through this adapter carry
  // the decision-record ids MigrateBatch reports completion/abort against.
  void SetAudit(obs::MigrationAudit* audit, uint64_t pass_id, SimTime pass_time) {
    audit_ = audit;
    pass_id_ = pass_id;
    pass_time_ = pass_time;
  }

 private:
  static HememPage* Detach(HememPage* page) {
    if (page != nullptr) {
      page->list = PageListId::kNone;
    }
    return page;
  }

  Migration Stamp(HememPage* page, Tier dst, uint32_t frame, SimTime now) {
    Migration m{page, dst, frame};
    if (audit_ != nullptr) {
      m.audit_id = audit_->OnMigrationQueued(pass_id_, page->va(),
                                             static_cast<int>(page->tier()),
                                             static_cast<int>(dst), now);
    }
    return m;
  }

  Hemem& owner_;
  std::vector<Migration> batch_;
  obs::MigrationAudit* audit_ = nullptr;
  uint64_t pass_id_ = 0;
  SimTime pass_time_ = 0;
};

SimTime Hemem::PolicyPass(SimTime start) {
  hstats_.policy_passes++;
  const uint64_t promoted_before = stats_.pages_promoted;
  const uint64_t demoted_before = stats_.pages_demoted;
  const uint64_t page_bytes = machine_.page_bytes();
  SimTime t = start + kPolicyBaseCost;
  // Rate cap per pass; never below one DMA batch or short scaled periods
  // could not migrate at all.
  uint64_t budget = std::max<uint64_t>(
      static_cast<uint64_t>(params_.migration_rate *
                            static_cast<double>(params_.policy_period)),
      static_cast<uint64_t>(params_.dma_batch) * page_bytes);

  if (nomad()) {
    // Resolve the previous pass's transactions first (commits attach
    // shadows, aborts free destination frames), then drop shadows that a
    // store invalidated since — the rest of the pass runs under the
    // invariant "shadowed implies clean".
    t = FinalizeTxns(t);
    SweepShadows();
    // Copies still in flight count against this pass's budget: the policy
    // thread no longer sits out the copy time (exclusive mode's implicit
    // throttle), so without this charge a short pass period would multiply
    // the configured migration rate.
    const uint64_t in_flight = static_cast<uint64_t>(txns_.size()) * page_bytes;
    budget = budget > in_flight ? budget - in_flight : 0;
  }

  // Phase -1: with a swap tier enabled, free NVM first — the demotion phases
  // need NVM frames to demote into. Mechanism (device streaming, swap-slot
  // bookkeeping), so it stays manager-side; the policy decides the rest.
  if (swap_space_.has_value()) {
    t = SwapOutColdPages(t, &budget);
  }

  PolicyEnvAdapter env(*this);
  policy::PolicyInput input{t, budget, &env};
  if (obs::AccessObservation* ob = machine_.observation()) {
    input.decision_id = ob->audit().BeginDecisionPass(policy_->name(), t);
    env.SetAudit(&ob->audit(), input.decision_id, t);
  }
  const policy::MigrationPlan plan = policy_->Decide(input);
  t = plan.end;

  if (pass_remaps_ > 0) {
    // Nomad remaps (transaction commits + shadow flips) accumulate across
    // the whole pass and share one batched shootdown.
    machine_.tlb().ShootdownBatch(machine_.engine(), nullptr, 1);
    t += machine_.tlb().params().initiator_cost;
    pass_remaps_ = 0;
  }

  if (machine_.tracer().enabled()) {
    machine_.tracer().Duration(
        trace_policy_track_, "policy_pass", "hemem", start, t,
        {{"promoted", static_cast<double>(stats_.pages_promoted - promoted_before)},
         {"demoted", static_cast<double>(stats_.pages_demoted - demoted_before)}});
  }
  return t - start;
}

}  // namespace hemem
