#include "core/page_lists.h"

#include <cassert>

namespace hemem {

void PageList::PushBack(HememPage* page) {
  assert(page->prev == nullptr && page->next == nullptr);
  page->prev = tail_;
  if (tail_ != nullptr) {
    tail_->next = page;
  } else {
    head_ = page;
  }
  tail_ = page;
  size_++;
}

void PageList::PushFront(HememPage* page) {
  assert(page->prev == nullptr && page->next == nullptr);
  page->next = head_;
  if (head_ != nullptr) {
    head_->prev = page;
  } else {
    tail_ = page;
  }
  head_ = page;
  size_++;
}

void PageList::Remove(HememPage* page) {
  if (page->prev != nullptr) {
    page->prev->next = page->next;
  } else {
    assert(head_ == page);
    head_ = page->next;
  }
  if (page->next != nullptr) {
    page->next->prev = page->prev;
  } else {
    assert(tail_ == page);
    tail_ = page->prev;
  }
  page->prev = nullptr;
  page->next = nullptr;
  assert(size_ > 0);
  size_--;
}

HememPage* PageList::PopFront() {
  if (head_ == nullptr) {
    return nullptr;
  }
  HememPage* page = head_;
  Remove(page);
  return page;
}

HememPage* PageList::PopBack() {
  if (tail_ == nullptr) {
    return nullptr;
  }
  HememPage* page = tail_;
  Remove(page);
  return page;
}

}  // namespace hemem
