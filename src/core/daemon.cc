#include "core/daemon.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace hemem {

class HememDaemon::DaemonThread : public PeriodicThread {
 public:
  DaemonThread(HememDaemon& owner, SimTime period)
      : PeriodicThread("hemem-daemon", period, /*cpu_share=*/0.1), owner_(owner) {}

  SimTime Tick() override {
    const SimTime work = owner_.Rebalance();
    obs::EventTracer& tracer = owner_.machine_.tracer();
    if (tracer.enabled()) {
      tracer.Duration(owner_.trace_track_, "rebalance", "daemon", now(),
                      now() + work,
                      {{"instances", static_cast<double>(owner_.instances_.size())}});
    }
    return work;
  }

 private:
  HememDaemon& owner_;
};

HememDaemon::HememDaemon(Machine& machine, DaemonParams params)
    : machine_(machine), params_(params) {
  std::string error;
  policy_ = policy::MakePolicy({params_.policy, params_.policy_spec},
                               policy::PolicyConfig{}, &error);
  if (policy_ == nullptr) {
    std::fprintf(stderr, "hemem-daemon: %s\n", error.c_str());
    std::abort();
  }
  trace_track_ = machine.tracer().RegisterTrack("daemon");
  machine.metrics().AddProvider(this, [this](obs::MetricsEmitter& e) {
    e.Emit("daemon.rebalances", stats_.rebalances);
    e.Emit("daemon.instances", static_cast<uint64_t>(instances_.size()));
  });
}

HememDaemon::~HememDaemon() { machine_.metrics().RemoveOwner(this); }

void HememDaemon::Attach(Hemem* instance) { instances_.push_back(instance); }

void HememDaemon::Start() {
  const SimTime period = std::max<SimTime>(
      static_cast<SimTime>(static_cast<double>(params_.rebalance_period) /
                           machine_.config().label_scale),
      100 * kMicrosecond);
  thread_ = std::make_unique<DaemonThread>(*this, period);
  machine_.engine().AddThread(thread_.get());
}

SimTime HememDaemon::Rebalance() {
  if (instances_.empty()) {
    return kMicrosecond;
  }
  stats_.rebalances++;

  // Demand signal: each instance's tracked hot bytes (both tiers — NVM-hot
  // pages represent unmet demand), floored so nobody starves.
  const uint64_t dram = machine_.config().dram_bytes;
  const uint64_t page = machine_.page_bytes();
  const uint64_t floor_bytes = RoundUp(
      static_cast<uint64_t>(params_.min_share * static_cast<double>(dram)), page);

  std::vector<double> demand(instances_.size());
  for (size_t i = 0; i < instances_.size(); ++i) {
    demand[i] = static_cast<double>(instances_[i]->hot_bytes(Tier::kDram) +
                                    instances_[i]->hot_bytes(Tier::kNvm) + page);
  }

  std::vector<uint64_t> quotas(instances_.size());
  policy_->Apportion(policy::ApportionInput{dram, floor_bytes, page}, demand, &quotas);
  for (size_t i = 0; i < instances_.size(); ++i) {
    instances_[i]->set_dram_quota(quotas[i]);
  }
  // Bookkeeping cost: reading counters and poking quotas.
  return static_cast<SimTime>(instances_.size()) * kMicrosecond;
}

uint64_t HememDaemon::quota_of(size_t instance) const {
  return instances_[instance]->dram_quota();
}

}  // namespace hemem
