// HememDaemon: global tiered-memory coordination across processes.
//
// The paper's Section 3.4 sketches this exactly: "a userspace HeMem daemon
// can coordinate per-process HeMem instances. Processes would request memory
// from the HeMem daemon, which manages the global pool, attaches to each
// processes' userfaultfd and PEBS buffers, and migrates memory on behalf of
// these processes." Here each process is a Hemem instance sharing one
// Machine; the daemon periodically re-divides the DRAM pool between them in
// proportion to their measured hot-set sizes (with a configurable floor per
// instance), and the instances' policy threads enforce the quotas.

#ifndef HEMEM_CORE_DAEMON_H_
#define HEMEM_CORE_DAEMON_H_

#include <memory>
#include <vector>

#include "core/hemem.h"

namespace hemem {

struct DaemonParams {
  SimTime rebalance_period = 100 * kMillisecond;  // paper-scale; scaled by label_scale
  // Every instance keeps at least this share of DRAM regardless of demand.
  double min_share = 0.10;
  // Apportionment policy: the daemon builds the demand vector (hot bytes per
  // instance) and delegates the DRAM split to MigrationPolicy::Apportion.
  std::string policy = "default";
  std::string policy_spec;
};

struct DaemonStats {
  uint64_t rebalances = 0;
};

class HememDaemon {
 public:
  HememDaemon(Machine& machine, DaemonParams params = DaemonParams{});
  // Unregisters the daemon's metrics provider from the machine.
  ~HememDaemon();

  // Registers a per-process instance (non-owning; caller keeps it alive).
  void Attach(Hemem* instance);

  // Starts the rebalancing thread. Call after attaching the instances.
  void Start();

  // One rebalancing decision (exposed for tests); returns its work time.
  SimTime Rebalance();

  const DaemonStats& stats() const { return stats_; }
  uint64_t quota_of(size_t instance) const;

 private:
  class DaemonThread;

  Machine& machine_;
  DaemonParams params_;
  std::unique_ptr<policy::MigrationPolicy> policy_;
  std::vector<Hemem*> instances_;
  std::unique_ptr<DaemonThread> thread_;
  DaemonStats stats_;
  uint32_t trace_track_ = 0;
};

}  // namespace hemem

#endif  // HEMEM_CORE_DAEMON_H_
