// HeMem's asynchronous helper threads.
//
// Thin PeriodicThread shells: the actual logic lives in Hemem (DrainPebs,
// PtScanPass, PolicyPass) so the ablation variants can recombine it — the
// synchronous page-table configuration (Figure 8's "PT Scan + M. Sync")
// runs the scan inside the policy thread's tick, reproducing Nimble-style
// staleness, while the asynchronous one scans on its own thread.
//
// CPU shares reflect the real implementation: the PEBS reader spins on the
// sample buffer (a full core), and the policy thread wakes every 10 ms.

#ifndef HEMEM_CORE_SCANNER_H_
#define HEMEM_CORE_SCANNER_H_

#include "core/hemem.h"
#include "sim/engine.h"

namespace hemem {

class PebsThread : public PeriodicThread {
 public:
  explicit PebsThread(Hemem& owner);
  SimTime Tick() override;

 private:
  Hemem& owner_;
};

class PtScanThread : public PeriodicThread {
 public:
  explicit PtScanThread(Hemem& owner);
  SimTime Tick() override;

 private:
  Hemem& owner_;
};

class HememPolicyThread : public PeriodicThread {
 public:
  // `scan_inline` runs the page-table scan synchronously before migrating
  // (the kPtSync ablation).
  HememPolicyThread(Hemem& owner, bool scan_inline);
  SimTime Tick() override;

 private:
  Hemem& owner_;
  bool scan_inline_;
};

}  // namespace hemem

#endif  // HEMEM_CORE_SCANNER_H_
