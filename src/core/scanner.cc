#include "core/scanner.h"

namespace hemem {

PebsThread::PebsThread(Hemem& owner)
    : PeriodicThread("hemem-pebs", owner.params().pebs_drain_period, /*cpu_share=*/1.0),
      owner_(owner) {}

SimTime PebsThread::Tick() { return owner_.DrainPebs(now()); }

PtScanThread::PtScanThread(Hemem& owner)
    : PeriodicThread("hemem-ptscan", owner.params().pt_scan_period, /*cpu_share=*/1.0),
      owner_(owner) {}

SimTime PtScanThread::Tick() { return owner_.PtScanPass(now()); }

HememPolicyThread::HememPolicyThread(Hemem& owner, bool scan_inline)
    : PeriodicThread("hemem-policy", owner.params().policy_period, /*cpu_share=*/0.5),
      owner_(owner),
      scan_inline_(scan_inline) {}

SimTime HememPolicyThread::Tick() {
  // The policy (and its device traffic) is timed from the wakeup even in the
  // synchronous-scan configuration: migration *decisions* still see only the
  // post-scan state, but device reservations must not be issued at a cursor
  // far ahead of the application frontier (the channel model would block the
  // gap). The thread's total busy time still serializes scan + policy.
  SimTime work = 0;
  if (scan_inline_) {
    work += owner_.PtScanPass(now());
  }
  const SimTime policy_work = owner_.PolicyPass(now());
  return work + policy_work;
}

}  // namespace hemem
