// Access-path equivalence goldens.
//
// Runs one fixed-seed GUPS-style workload (single thread, hot/cold mix,
// loads and stores, faults, migrations) against every tiering manager and
// asserts that the final virtual time and the full ManagerStats match values
// recorded before the shared access-path skeleton was introduced. Any
// semantic drift on the hot path — a reordered fault step, a lost WP stall,
// a changed device charge — shows up here as a changed fingerprint.
//
// Regenerating goldens (only when an *intentional* behavior change lands):
//   HEMEM_PRINT_GOLDEN=1 ./access_golden_test --gtest_filter='*Fingerprint*'
// and paste the printed table over kGolden below.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/hemem.h"
#include "obs/access_obs.h"
#include "obs/sampler.h"
#include "test_util.h"
#include "tier/memory_mode.h"
#include "tier/nimble.h"
#include "tier/plain.h"
#include "tier/quantum_thread.h"
#include "tier/thermostat.h"
#include "tier/xmem.h"

namespace hemem {
namespace {

struct Fingerprint {
  const char* system;
  SimTime end_ns;
  uint64_t missing_faults;
  uint64_t wp_faults;
  SimTime wp_wait_ns;
  uint64_t pages_promoted;
  uint64_t pages_demoted;
  uint64_t bytes_migrated;
  uint64_t small_allocs;
  uint64_t managed_allocs;
};

std::unique_ptr<TieredMemoryManager> MakeSystem(const std::string& kind, Machine& machine) {
  if (kind == "DRAM") {
    return std::make_unique<PlainMemory>(machine, Tier::kDram, /*overcommit=*/true);
  }
  if (kind == "MM") {
    return std::make_unique<MemoryMode>(machine);
  }
  if (kind == "Nimble") {
    return std::make_unique<Nimble>(machine);
  }
  if (kind == "X-Mem") {
    return std::make_unique<XMem>(machine);
  }
  if (kind == "Thermostat") {
    return std::make_unique<Thermostat>(machine);
  }
  HememParams params;
  if (kind == "HeMem-PT-Sync") {
    params.scan_mode = HememParams::ScanMode::kPtSync;
  }
  return std::make_unique<Hemem>(machine, params);
}

// Fixed-seed workload: 300k single-thread ops over 128 MiB, 90% of them into
// a 16 MiB hot prefix, every third op a store, 15 ns compute between ops.
// `batched` drives the same generator through RunAccessQuantum (the engine's
// batched slice execution) instead of one ScriptThread op per slice; both
// must land on identical fingerprints.
Fingerprint RunCase(const std::string& system, bool tracing = false,
                    const std::string& fault_spec = "", bool batched = false,
                    bool observe = false, int host_workers = 1) {
  constexpr uint64_t kWorkingSet = MiB(128);
  constexpr uint64_t kHotSet = MiB(16);
  constexpr uint64_t kOps = 300'000;

  MachineConfig config = TinyMachineConfig();
  if (!fault_spec.empty()) {
    std::string error;
    EXPECT_TRUE(FaultPlan::Parse(fault_spec, &config.fault_plan, &error)) << error;
  }
  Machine machine(config);
  std::optional<obs::MetricsSampler> sampler;
  if (tracing) {
    machine.EnableTracing();
    sampler.emplace(machine.metrics(), kMillisecond);
    machine.engine().AddObserverThread(&*sampler);
  }
  if (observe) {
    machine.EnableAccessObservation();
  }
  if (host_workers > 1) {
    machine.EnableHostWorkers(host_workers);
  }
  std::unique_ptr<TieredMemoryManager> manager = MakeSystem(system, machine);
  manager->Start();
  const uint64_t va = manager->Mmap(kWorkingSet, {.label = "golden"});

  Rng access_rng(0xbeefull);
  uint64_t op = 0;
  SimTime end = 0;
  if (batched) {
    auto gen = [&](TieredMemoryManager::AccessOp& next) {
      if (op == kOps) {
        return false;
      }
      const bool hot = access_rng.NextBool(0.9);
      const uint64_t span = hot ? kHotSet : kWorkingSet;
      next.va = va + access_rng.NextBounded(span / 64) * 64;
      next.size = 64;
      next.kind = op % 3 == 0 ? AccessKind::kStore : AccessKind::kLoad;
      ++op;
      return true;
    };
    QuantumAccessThread thread(*manager, gen, 15);
    machine.engine().AddThread(&thread);
    end = machine.engine().Run();
  } else {
    ScriptThread thread([&](ScriptThread& self) mutable {
      const bool hot = access_rng.NextBool(0.9);
      const uint64_t span = hot ? kHotSet : kWorkingSet;
      const uint64_t offset = access_rng.NextBounded(span / 64) * 64;
      const AccessKind kind = op % 3 == 0 ? AccessKind::kStore : AccessKind::kLoad;
      manager->Access(self, va + offset, 64, kind);
      self.Advance(15);
      return ++op < kOps;
    });
    machine.engine().AddThread(&thread);
    end = machine.engine().Run();
  }

  const ManagerStats& s = manager->stats();
  return Fingerprint{"", end,        s.missing_faults, s.wp_faults,
                     s.wp_wait_ns,   s.pages_promoted, s.pages_demoted,
                     s.bytes_migrated, s.small_allocs, s.managed_allocs};
}

// Recorded at the pre-refactor seed (PR 1), RelWithDebInfo, GCC container.
// The simulator is deterministic, so these are exact.
constexpr Fingerprint kGolden[] = {
    {"DRAM", 14999950, 0, 0, 0, 0, 0, 0, 0, 1},
    {"MM", 36022983, 0, 0, 0, 0, 0, 0, 0, 1},
    {"Nimble", 168879376, 128, 75, 4297433, 858, 858, 1799356416, 0, 1},
    {"X-Mem", 49699834, 0, 0, 0, 0, 0, 0, 0, 1},
    {"Thermostat", 61440037, 128, 36, 2728058, 39, 151, 199229440, 0, 1},
    {"HeMem", 62100003, 128, 28, 11348247, 15, 81, 100663296, 0, 1},
    {"HeMem-PT-Sync", 67156299, 128, 45, 23382973, 49, 115, 171966464, 0, 1},
};

TEST(AccessGolden, FingerprintMatchesPreRefactorRecording) {
  const bool print = std::getenv("HEMEM_PRINT_GOLDEN") != nullptr;
  for (const Fingerprint& golden : kGolden) {
    const Fingerprint actual = RunCase(golden.system);
    if (print) {
      std::printf("    {\"%s\", %lld, %llu, %llu, %lld, %llu, %llu, %llu, %llu, %llu},\n",
                  golden.system, static_cast<long long>(actual.end_ns),
                  static_cast<unsigned long long>(actual.missing_faults),
                  static_cast<unsigned long long>(actual.wp_faults),
                  static_cast<long long>(actual.wp_wait_ns),
                  static_cast<unsigned long long>(actual.pages_promoted),
                  static_cast<unsigned long long>(actual.pages_demoted),
                  static_cast<unsigned long long>(actual.bytes_migrated),
                  static_cast<unsigned long long>(actual.small_allocs),
                  static_cast<unsigned long long>(actual.managed_allocs));
      continue;
    }
    SCOPED_TRACE(golden.system);
    EXPECT_EQ(actual.end_ns, golden.end_ns);
    EXPECT_EQ(actual.missing_faults, golden.missing_faults);
    EXPECT_EQ(actual.wp_faults, golden.wp_faults);
    EXPECT_EQ(actual.wp_wait_ns, golden.wp_wait_ns);
    EXPECT_EQ(actual.pages_promoted, golden.pages_promoted);
    EXPECT_EQ(actual.pages_demoted, golden.pages_demoted);
    EXPECT_EQ(actual.bytes_migrated, golden.bytes_migrated);
    EXPECT_EQ(actual.small_allocs, golden.small_allocs);
    EXPECT_EQ(actual.managed_allocs, golden.managed_allocs);
  }
}

// The observability layer is passive: enabling the tracer and the metrics
// sampler must not move a single simulated clock or counter. Same goldens,
// tracing on.
TEST(AccessGolden, TracingDoesNotPerturbExecution) {
  for (const Fingerprint& golden : kGolden) {
    const Fingerprint actual = RunCase(golden.system, /*tracing=*/true);
    SCOPED_TRACE(golden.system);
    EXPECT_EQ(actual.end_ns, golden.end_ns);
    EXPECT_EQ(actual.missing_faults, golden.missing_faults);
    EXPECT_EQ(actual.wp_faults, golden.wp_faults);
    EXPECT_EQ(actual.wp_wait_ns, golden.wp_wait_ns);
    EXPECT_EQ(actual.pages_promoted, golden.pages_promoted);
    EXPECT_EQ(actual.pages_demoted, golden.pages_demoted);
    EXPECT_EQ(actual.bytes_migrated, golden.bytes_migrated);
    EXPECT_EQ(actual.small_allocs, golden.small_allocs);
    EXPECT_EQ(actual.managed_allocs, golden.managed_allocs);
  }
}

// A fault plan with no rules must be provably inert: the injector exists on
// the Machine, but nothing is armed, so no consumer's hot path changes and
// every fingerprint stays bit-identical. This is the regression gate for the
// "zero-cost when unused" property of the fault layer.
TEST(AccessGolden, EmptyFaultPlanIsInert) {
  for (const Fingerprint& golden : kGolden) {
    // "seed=99" parses to a plan with a seed but zero rules — still empty.
    const Fingerprint actual = RunCase(golden.system, /*tracing=*/false, "seed=99;");
    SCOPED_TRACE(golden.system);
    EXPECT_EQ(actual.end_ns, golden.end_ns);
    EXPECT_EQ(actual.missing_faults, golden.missing_faults);
    EXPECT_EQ(actual.wp_faults, golden.wp_faults);
    EXPECT_EQ(actual.wp_wait_ns, golden.wp_wait_ns);
    EXPECT_EQ(actual.pages_promoted, golden.pages_promoted);
    EXPECT_EQ(actual.pages_demoted, golden.pages_demoted);
    EXPECT_EQ(actual.bytes_migrated, golden.bytes_migrated);
    EXPECT_EQ(actual.small_allocs, golden.small_allocs);
    EXPECT_EQ(actual.managed_allocs, golden.managed_allocs);
  }
}

// Batched slice execution must be a pure optimization: the same generator
// driven through RunAccessQuantum (tracing on, so the full observability
// stack is live too) lands on the exact stored fingerprints.
TEST(AccessGolden, BatchedExecutionMatchesGoldens) {
  for (const Fingerprint& golden : kGolden) {
    const Fingerprint actual =
        RunCase(golden.system, /*tracing=*/true, /*fault_spec=*/"", /*batched=*/true);
    SCOPED_TRACE(golden.system);
    EXPECT_EQ(actual.end_ns, golden.end_ns);
    EXPECT_EQ(actual.missing_faults, golden.missing_faults);
    EXPECT_EQ(actual.wp_faults, golden.wp_faults);
    EXPECT_EQ(actual.wp_wait_ns, golden.wp_wait_ns);
    EXPECT_EQ(actual.pages_promoted, golden.pages_promoted);
    EXPECT_EQ(actual.pages_demoted, golden.pages_demoted);
    EXPECT_EQ(actual.bytes_migrated, golden.bytes_migrated);
    EXPECT_EQ(actual.small_allocs, golden.small_allocs);
    EXPECT_EQ(actual.managed_allocs, golden.managed_allocs);
  }
}

// Same property under a live (non-empty) fault plan: degrade windows on both
// devices intersect the run — forcing the batched device fast path on and
// off mid-run — and PEBS drops consume injector draws on overflow. Batched
// and unbatched execution must stay bit-identical to each other.
TEST(AccessGolden, BatchedExecutionUnderFaultPlanMatchesUnbatched) {
  const std::string spec =
      "seed=7;dram.degrade:mult=2,start=1ms,end=3ms;"
      "nvm.degrade:mult=3,start=2ms,end=9ms;pebs.drop:p=0.2";
  for (const Fingerprint& golden : kGolden) {
    const Fingerprint unbatched =
        RunCase(golden.system, /*tracing=*/true, spec, /*batched=*/false);
    const Fingerprint batched =
        RunCase(golden.system, /*tracing=*/true, spec, /*batched=*/true);
    SCOPED_TRACE(golden.system);
    EXPECT_EQ(batched.end_ns, unbatched.end_ns);
    EXPECT_EQ(batched.missing_faults, unbatched.missing_faults);
    EXPECT_EQ(batched.wp_faults, unbatched.wp_faults);
    EXPECT_EQ(batched.wp_wait_ns, unbatched.wp_wait_ns);
    EXPECT_EQ(batched.pages_promoted, unbatched.pages_promoted);
    EXPECT_EQ(batched.pages_demoted, unbatched.pages_demoted);
    EXPECT_EQ(batched.bytes_migrated, unbatched.bytes_migrated);
    EXPECT_EQ(batched.small_allocs, unbatched.small_allocs);
    EXPECT_EQ(batched.managed_allocs, unbatched.managed_allocs);
  }
}

// Full access observation (latency attribution + heat timeline + migration
// audit) reads clocks and state but never advances anything: with it enabled
// every fingerprint must stay bit-identical. This is the enabled-direction
// twin of the hot path's "one null compare when off" guarantee.
TEST(AccessGolden, ObservationDoesNotPerturbExecution) {
  for (const Fingerprint& golden : kGolden) {
    const Fingerprint actual = RunCase(golden.system, /*tracing=*/true,
                                       /*fault_spec=*/"", /*batched=*/false,
                                       /*observe=*/true);
    SCOPED_TRACE(golden.system);
    EXPECT_EQ(actual.end_ns, golden.end_ns);
    EXPECT_EQ(actual.missing_faults, golden.missing_faults);
    EXPECT_EQ(actual.wp_faults, golden.wp_faults);
    EXPECT_EQ(actual.wp_wait_ns, golden.wp_wait_ns);
    EXPECT_EQ(actual.pages_promoted, golden.pages_promoted);
    EXPECT_EQ(actual.pages_demoted, golden.pages_demoted);
    EXPECT_EQ(actual.bytes_migrated, golden.bytes_migrated);
    EXPECT_EQ(actual.small_allocs, golden.small_allocs);
    EXPECT_EQ(actual.managed_allocs, golden.managed_allocs);
  }
}

// Observation under host workers: observed runs reject parallel epochs (the
// coordinator returns horizon 0, as it does for the shadow engine), so the
// sharded engine degrades to the sequential path and fingerprints still
// match. Batched quanta likewise fall back to the reference path.
TEST(AccessGolden, ObservationUnderHostWorkersMatchesGoldens) {
  for (const Fingerprint& golden : kGolden) {
    const Fingerprint actual = RunCase(golden.system, /*tracing=*/false,
                                       /*fault_spec=*/"", /*batched=*/true,
                                       /*observe=*/true, /*host_workers=*/2);
    SCOPED_TRACE(golden.system);
    EXPECT_EQ(actual.end_ns, golden.end_ns);
    EXPECT_EQ(actual.missing_faults, golden.missing_faults);
    EXPECT_EQ(actual.wp_faults, golden.wp_faults);
    EXPECT_EQ(actual.wp_wait_ns, golden.wp_wait_ns);
    EXPECT_EQ(actual.pages_promoted, golden.pages_promoted);
    EXPECT_EQ(actual.pages_demoted, golden.pages_demoted);
    EXPECT_EQ(actual.bytes_migrated, golden.bytes_migrated);
    EXPECT_EQ(actual.small_allocs, golden.small_allocs);
    EXPECT_EQ(actual.managed_allocs, golden.managed_allocs);
  }
}

// The latency decomposition is exactly additive: over a HeMem run with
// faults, WP stalls, and migrations, the per-component exact sums must add
// up to the end-to-end total — no nanosecond unattributed. (Record() also
// asserts this per access in debug builds; the exact ComponentTotals make
// the property checkable in release builds, free of histogram bucketing.)
TEST(AccessGolden, LatencyComponentsSumExactlyToEndToEnd) {
  constexpr uint64_t kWorkingSet = MiB(128);
  constexpr uint64_t kHotSet = MiB(16);
  constexpr uint64_t kOps = 150'000;

  Machine machine(TinyMachineConfig());
  machine.EnableAccessObservation();
  Hemem manager(machine, {});
  manager.Start();
  const uint64_t va = manager.Mmap(kWorkingSet, {.label = "latency"});

  Rng access_rng(0xbeefull);
  uint64_t op = 0;
  ScriptThread thread([&](ScriptThread& self) mutable {
    const bool hot = access_rng.NextBool(0.9);
    const uint64_t span = hot ? kHotSet : kWorkingSet;
    const uint64_t offset = access_rng.NextBounded(span / 64) * 64;
    const AccessKind kind = op % 3 == 0 ? AccessKind::kStore : AccessKind::kLoad;
    manager.Access(self, va + offset, 64, kind);
    self.Advance(15);
    return ++op < kOps;
  });
  machine.engine().AddThread(&thread);
  machine.engine().Run();

  const obs::LatencyRecorder& recorder = machine.observation()->latency();
  uint64_t count = 0;
  uint64_t fault_ns = 0;
  uint64_t wp_ns = 0;
  for (int tier = 0; tier < obs::LatencyRecorder::kNumTiers; ++tier) {
    const obs::LatencyRecorder::ComponentTotals& t = recorder.totals(0, tier);
    SCOPED_TRACE(tier);
    EXPECT_EQ(t.end_to_end_ns, t.translation_ns + t.fault_ns + t.wp_stall_ns +
                                   t.queue_ns + t.media_ns + t.other_ns);
    count += t.count;
    fault_ns += t.fault_ns;
    wp_ns += t.wp_stall_ns;
  }
  // Every access was recorded, and the interesting components really fired
  // (this workload faults in 128 MiB and migrates under write protection).
  EXPECT_EQ(count, kOps);
  EXPECT_GT(fault_ns, 0u);
  EXPECT_GT(wp_ns, 0u);
  EXPECT_GT(machine.observation()->heat().samples(), 0u);
}

}  // namespace
}  // namespace hemem
