// Differential suite for non-exclusive (Nomad) transactional migration.
//
// Exclusive migration is the golden-pinned default; nomad changes *when*
// copies happen (concurrently with access, committed a pass later) and
// *whether* demotion moves bytes (clean shadows flip), but must never change
// what the application reads. This suite proves it the only way that
// matters: a verified GUPS workload (every store mirrored into ShadowMemory,
// every written word re-read through the page table afterwards) runs in both
// migration modes over a matrix of configurations × fault plans ×
// --host-workers, and each run must end with
//
//   * zero verification mismatches (no lost, duplicated, or misdirected
//     copy — the data oracle),
//   * conserved frame pools (every allocated frame is a primary mapping, a
//     live shadow, or an in-flight transaction destination — nothing leaks,
//     nothing is double-owned),
//   * the nomad metadata invariants (Hemem::CheckNomadInvariants: bijective
//     registry/transaction linkage, clean shadows byte-identical to their
//     DRAM primaries, no frame in two roles),
//   * and bit-identical workload output across host-worker counts within a
//     mode (the sharded engine must not perturb either protocol).
//
// Configurations without a hot-set rotation drive identical access streams
// in both modes (the generator is RNG-only), so their verified footprints
// must also match across modes exactly. Rotating configurations shift at
// fixed *virtual times*, and the two modes run at different speeds, so their
// streams legitimately diverge — each still verifies against its own oracle.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/gups.h"
#include "core/hemem.h"
#include "sim/fault.h"
#include "test_util.h"

namespace hemem {
namespace {

struct SuiteConfig {
  const char* name;
  HememParams::ScanMode scan;
  int threads;
  uint64_t working_set;
  uint64_t hot_set;
  double write_only_hot_fraction;
  bool rotate;  // periodic hot-set shift (exercises shadow flips/aborts)
};

// Seven configurations spanning the axes the golden suites pin: both scan
// modes, thread counts, DRAM pressure, write skew, and hot-set churn.
constexpr SuiteConfig kConfigs[] = {
    {"pebs", HememParams::ScanMode::kPebs, 2, MiB(96), MiB(16), 0.0, false},
    {"pebs_writeheavy", HememParams::ScanMode::kPebs, 2, MiB(96), MiB(16), 0.5,
     false},
    {"pebs_rotate", HememParams::ScanMode::kPebs, 2, MiB(96), MiB(16), 0.25,
     true},
    {"pebs_threads4", HememParams::ScanMode::kPebs, 4, MiB(96), MiB(16), 0.0,
     false},
    {"pebs_pressure", HememParams::ScanMode::kPebs, 2, MiB(128), MiB(40), 0.25,
     false},
    {"ptsync", HememParams::ScanMode::kPtSync, 2, MiB(96), MiB(16), 0.0,
     false},
    {"ptsync_rotate", HememParams::ScanMode::kPtSync, 2, MiB(96), MiB(16),
     0.25, true},
};

// Live plans: none, a mixed storm, and an abort-heavy plan aimed squarely at
// the transactional commit/rollback paths.
constexpr const char* kFaultPlans[] = {
    "",
    "seed=7;dma.fail:p=0.2;migrate.abort:p=0.1;pebs.drop:p=0.2;"
    "alloc.fail:p=0.2",
    "seed=13;migrate.abort:p=0.3",
};

struct RunOut {
  uint64_t total_updates = 0;
  uint64_t mismatches = 0;
  uint64_t verified_words = 0;
  uint64_t pages_promoted = 0;
  uint64_t faults_injected = 0;
};

RunOut RunOnce(const SuiteConfig& suite, const std::string& fault_spec,
               int workers, bool nomad) {
  MachineConfig machine_config = TinyMachineConfig();
  if (!fault_spec.empty()) {
    std::string error;
    EXPECT_TRUE(FaultPlan::Parse(fault_spec, &machine_config.fault_plan, &error))
        << error;
  }
  Machine machine(machine_config);
  machine.EnableHostWorkers(workers);
  HememParams params;
  params.scan_mode = suite.scan;
  if (nomad) {
    params.migration = HememParams::MigrationMode::kNomad;
  }
  Hemem hemem(machine, params);
  hemem.Start();

  GupsConfig config;
  config.threads = suite.threads;
  config.working_set = suite.working_set;
  config.hot_set = suite.hot_set;
  config.hot_fraction = 0.9;
  config.write_only_hot_fraction = suite.write_only_hot_fraction;
  config.updates_per_thread = 80'000;
  config.warmup_updates_per_thread = 20'000;
  config.verify = true;
  if (suite.rotate) {
    config.shift_at = 2 * kMillisecond;
    config.shift_period = 2 * kMillisecond;
    config.shift_bytes = MiB(8);
  }
  GupsBenchmark gups(hemem, config);
  gups.Prepare();

  RunOut out;
  out.total_updates = gups.Run().total_updates;
  out.mismatches = gups.VerifyData();
  out.verified_words = gups.verified_words();
  out.pages_promoted = hemem.stats().pages_promoted;
  out.faults_injected = machine.faults().total_injected();

  // Data oracle: every written word reads back its expected running sum.
  EXPECT_EQ(out.mismatches, 0u);
  EXPECT_GT(out.verified_words, 0u);

  // Frame conservation: each allocated frame is a primary mapping, a live
  // shadow, or an in-flight transaction destination — exactly one of them.
  uint64_t present[kNumTiers] = {0, 0};
  machine.page_table().ForEachRegion([&](Region& region) {
    for (const PageEntry& entry : region.pages) {
      if (entry.present) {
        present[static_cast<int>(entry.tier)]++;
      }
    }
  });
  EXPECT_EQ(machine.frames(Tier::kDram).used_frames(),
            present[static_cast<int>(Tier::kDram)] +
                hemem.pending_txn_frames(Tier::kDram));
  EXPECT_EQ(machine.frames(Tier::kNvm).used_frames(),
            present[static_cast<int>(Tier::kNvm)] + hemem.shadow_pages() +
                hemem.pending_txn_frames(Tier::kNvm));

  std::string why;
  EXPECT_TRUE(hemem.CheckNomadInvariants(&why)) << why;

  if (nomad) {
    // Nomad actually ran as nomad: every migration is transactional, and
    // every promotion leaves a shadow (live now, or since invalidated,
    // flipped, or reclaimed).
    const HememStats& hs = hemem.hstats();
    if (out.pages_promoted > 0) {
      EXPECT_GT(hs.txn_commits, 0u);
      EXPECT_GT(hemem.shadow_pages() + hs.shadow_invalidations +
                    hs.shadow_demotions + hs.shadow_reclaims,
                0u);
    }
    // The exclusive-mode stall is retired wholesale: a conflicting store
    // aborts the transaction instead of waiting out the copy.
    EXPECT_EQ(hemem.stats().wp_wait_ns, 0u);
  } else {
    // Exclusive mode must not grow nomad state behind the goldens' back.
    EXPECT_EQ(hemem.shadow_pages(), 0u);
    EXPECT_EQ(hemem.pending_txns(), 0u);
    EXPECT_EQ(hemem.hstats().txn_starts, 0u);
  }
  return out;
}

class NomadEquivalence : public ::testing::TestWithParam<SuiteConfig> {};

TEST_P(NomadEquivalence, DataIntactAcrossModesFaultsAndWorkers) {
  const SuiteConfig& suite = GetParam();
  for (const char* fault_spec : kFaultPlans) {
    SCOPED_TRACE(fault_spec[0] == '\0' ? "no faults" : fault_spec);
    std::vector<RunOut> exclusive_runs;
    std::vector<RunOut> nomad_runs;
    for (const int workers : {1, 2}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      exclusive_runs.push_back(RunOnce(suite, fault_spec, workers, false));
      nomad_runs.push_back(RunOnce(suite, fault_spec, workers, true));
      if (fault_spec[0] != '\0') {
        EXPECT_GT(exclusive_runs.back().faults_injected, 0u);
        EXPECT_GT(nomad_runs.back().faults_injected, 0u);
      }
    }
    // The sharded engine is an execution detail: within a mode, worker
    // count must not change what the workload did.
    for (const auto* runs : {&exclusive_runs, &nomad_runs}) {
      EXPECT_EQ((*runs)[0].total_updates, (*runs)[1].total_updates);
      EXPECT_EQ((*runs)[0].verified_words, (*runs)[1].verified_words);
      EXPECT_EQ((*runs)[0].pages_promoted, (*runs)[1].pages_promoted);
    }
    // Without a rotation the access stream is RNG-only — timing-independent
    // — so the two modes wrote the exact same footprint. (Rotations fire at
    // fixed virtual times and the modes run at different speeds, so their
    // streams legitimately diverge there.)
    if (!suite.rotate) {
      EXPECT_EQ(exclusive_runs[0].total_updates, nomad_runs[0].total_updates);
      EXPECT_EQ(exclusive_runs[0].verified_words,
                nomad_runs[0].verified_words);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, NomadEquivalence,
                         ::testing::ValuesIn(kConfigs),
                         [](const ::testing::TestParamInfo<SuiteConfig>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace hemem
