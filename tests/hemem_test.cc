// Unit tests for the HeMem manager: allocation interception, fault policy,
// PEBS-driven classification, cooling, write-heavy prioritization, the
// policy thread's watermark and migration behaviour, and the PT-scan
// ablation variants.

#include <gtest/gtest.h>

#include "core/daemon.h"
#include "core/hemem.h"
#include "tier/trace.h"
#include "test_util.h"

namespace hemem {
namespace {

HememParams FastParams() {
  HememParams params;
  params.policy_period = kMillisecond;
  params.pebs_drain_period = 100 * kMicrosecond;
  return params;
}

// Drives `updates` single-object RMW updates against `va` page-0 offsets.
void Hammer(Machine& machine, Hemem& manager, uint64_t va, int updates,
            AccessKind kind = AccessKind::kLoad, SimTime gap = 0) {
  ScriptThread t([&, n = 0](ScriptThread& self) mutable {
    manager.Access(self, va, 8, kind);
    if (gap > 0) {
      self.Advance(gap);
    }
    return ++n < updates;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
}

TEST(HememAlloc, SmallAllocationsForwardedToKernel) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  // Managed threshold = 1 GiB / 3072 = 349,525 bytes.
  const uint64_t va = manager.Mmap(KiB(64), {.label = "tiny"});
  Region* region = machine.page_table().Find(va);
  ASSERT_NE(region, nullptr);
  EXPECT_FALSE(region->managed);
  EXPECT_EQ(manager.stats().small_allocs, 1u);
}

TEST(HememAlloc, LargeAllocationsManaged) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  const uint64_t va = manager.Mmap(MiB(8), {.label = "big"});
  EXPECT_TRUE(machine.page_table().Find(va)->managed);
  EXPECT_EQ(manager.stats().managed_allocs, 1u);
}

TEST(HememAlloc, GrowthRulePromotesLabelToManaged) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  // Threshold is ~341 KiB; allocate 6 x 64 KiB under one label.
  uint64_t last = 0;
  for (int i = 0; i < 6; ++i) {
    last = manager.Mmap(KiB(64), {.label = "grower"});
  }
  EXPECT_TRUE(machine.page_table().Find(last)->managed);
  EXPECT_GT(manager.stats().small_allocs, 0u);
  EXPECT_GT(manager.stats().managed_allocs, 0u);
}

TEST(HememAlloc, PinnedRegionsMappedEagerly) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  const uint64_t va = manager.Mmap(MiB(4), {.label = "pin", .pin_tier = Tier::kNvm});
  PageEntry* entry = machine.page_table().Lookup(va);
  EXPECT_TRUE(entry->present);
  EXPECT_EQ(entry->tier, Tier::kNvm);
}

TEST(HememFault, FirstTouchPrefersDram) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  const uint64_t va = manager.Mmap(MiB(4));
  Hammer(machine, manager, va, 1);
  EXPECT_EQ(machine.page_table().Lookup(va)->tier, Tier::kDram);
  EXPECT_EQ(manager.stats().missing_faults, 1u);
}

TEST(HememFault, FallsBackToNvmWhenDramExhausted) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());  // policy NOT started: no watermark
  const uint64_t va = manager.Mmap(MiB(128));
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    manager.Access(self, va + static_cast<uint64_t>(n) * MiB(1), 8, AccessKind::kStore);
    return ++n < 128;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_EQ(machine.page_table().Lookup(va)->tier, Tier::kDram);
  EXPECT_EQ(machine.page_table().Lookup(va + MiB(127))->tier, Tier::kNvm);
}

TEST(HememFault, FaultCostChargedToThread) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  const uint64_t va = manager.Mmap(MiB(4));
  ScriptThread t([&](ScriptThread& self) {
    manager.Access(self, va, 8, AccessKind::kLoad);
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_GT(t.now(), 8 * kMicrosecond);  // userfaultfd round trip + zero fill
}

TEST(HememClassify, PageBecomesHotAfterReadThreshold) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(4));
  // Default PEBS period is 5000: 8 samples need 40k loads.
  Hammer(machine, manager, va, 50'000, AccessKind::kLoad, 100);
  EXPECT_GE(manager.hot_pages(Tier::kDram), 1u);
}

TEST(HememClassify, WriteThresholdIsLower) {
  Machine machine(TinyMachineConfig());
  HememParams params = FastParams();
  Hemem manager(machine, params);
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(4));
  // 4 store samples suffice (vs 8 loads): 20k stores + margin.
  Hammer(machine, manager, va, 25'000, AccessKind::kStore, 100);
  EXPECT_GE(manager.hot_pages(Tier::kDram), 1u);
}

TEST(HememClassify, ColdPagesStayCold) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(16));
  // Touch each page once: far below any hot threshold.
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    manager.Access(self, va + static_cast<uint64_t>(n) * MiB(1), 8, AccessKind::kLoad);
    self.Advance(10 * kMicrosecond);
    return ++n < 16;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_EQ(manager.hot_pages(Tier::kDram), 0u);
  EXPECT_EQ(manager.cold_pages(Tier::kDram), 16u);
}

TEST(HememCooling, ClockAdvancesUnderSustainedLoad) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(4));
  // Cooling threshold 18 sampled accesses on one page: 18*5000 accesses.
  Hammer(machine, manager, va, 120'000, AccessKind::kLoad, 50);
  EXPECT_GE(manager.cooling_clock(), 1u);
}

TEST(HememPolicy, WatermarkKeepsDramFree) {
  Machine machine(TinyMachineConfig());
  HememParams params = FastParams();
  Hemem manager(machine, params);
  manager.Start();
  // Fault in more than DRAM capacity; the policy thread must keep a reserve
  // free by demoting cold pages.
  const uint64_t va = manager.Mmap(MiB(128));
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    manager.Access(self, va + static_cast<uint64_t>(n % 128) * MiB(1), 8,
                   AccessKind::kStore);
    self.Advance(100 * kMicrosecond);
    return ++n < 512;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  // Watermark clamps to 2 pages (2 MiB) on this machine; the policy keeps
  // at least part of it free by demoting.
  EXPECT_GE(machine.frames(Tier::kDram).free_bytes(), MiB(1));
  EXPECT_GT(manager.stats().pages_demoted, 0u);
}

// Fills a 200 MiB region, then hammers a page that ended up NVM-resident.
// Returns that page's va (picked dynamically: the watermark keeps demoting,
// so which pages land in NVM depends on policy timing).
uint64_t FillThenHammerNvmPage(Machine& machine, Hemem& manager) {
  const uint64_t va = manager.Mmap(MiB(200));
  uint64_t hot_va = 0;
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    if (n < 200) {
      manager.Access(self, va + static_cast<uint64_t>(n) * MiB(1), 8, AccessKind::kStore);
    } else {
      if (hot_va == 0) {
        for (uint64_t i = 0; i < 200; ++i) {
          if (machine.page_table().Lookup(va + i * MiB(1))->tier == Tier::kNvm) {
            hot_va = va + i * MiB(1);
            break;
          }
        }
      }
      manager.Access(self, hot_va, 8, AccessKind::kLoad);
      self.Advance(2 * kMicrosecond);
    }
    return ++n < 300'000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  return hot_va;
}

TEST(HememPolicy, HotNvmPagePromoted) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  manager.Start();
  const uint64_t hot_va = FillThenHammerNvmPage(machine, manager);
  EXPECT_EQ(machine.page_table().Lookup(hot_va)->tier, Tier::kDram);
  EXPECT_GT(manager.stats().pages_promoted, 0u);
}

TEST(HememPolicy, MigrationUsesDma) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  manager.Start();
  FillThenHammerNvmPage(machine, manager);
  EXPECT_GT(machine.dma().stats().copies, 0u);
}

TEST(HememPolicy, PromotionStallsWhenHotSetExceedsDram) {
  MachineConfig config = TinyMachineConfig();
  config.dram_bytes = MiB(8);  // tiny DRAM: 8 frames
  Machine machine(config);
  HememParams params = FastParams();
  Hemem manager(machine, params);
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(16));
  // Hammer every page uniformly and heavily: everything goes hot; the hot
  // set exceeds DRAM, so HeMem must stop migrating rather than thrash.
  Rng rng(1);
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    manager.Access(self, va + rng.NextBounded(16) * MiB(1), 8, AccessKind::kStore);
    return ++n < 400'000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_GT(manager.hstats().promotion_stalls, 0u);
}

TEST(HememMigration, StoreWaitsForInFlightCopy) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  const uint64_t va = manager.Mmap(MiB(4));
  // Manually stage a migration-in-flight state via the page entry.
  ScriptThread toucher([&](ScriptThread& self) {
    manager.Access(self, va, 8, AccessKind::kStore);  // fault it in at t~0
    return false;
  });
  machine.engine().AddThread(&toucher);
  machine.engine().Run();
  PageEntry* entry = machine.page_table().Lookup(va);
  entry->wp_until = toucher.now() + kSecond;

  Engine* engine = &machine.engine();
  ScriptThread writer([&](ScriptThread& self) {
    self.AdvanceTo(toucher.now());
    manager.Access(self, va, 8, AccessKind::kStore);
    return false;
  });
  engine->AddThread(&writer);
  engine->Run();
  EXPECT_GE(writer.now(), entry->wp_until);
  EXPECT_EQ(manager.stats().wp_faults, 1u);
  EXPECT_GT(manager.stats().wp_wait_ns, 0);
}

TEST(HememMigration, ReadsProceedDuringCopy) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  const uint64_t va = manager.Mmap(MiB(4));
  ScriptThread toucher([&](ScriptThread& self) {
    manager.Access(self, va, 8, AccessKind::kLoad);
    return false;
  });
  machine.engine().AddThread(&toucher);
  machine.engine().Run();
  PageEntry* entry = machine.page_table().Lookup(va);
  entry->wp_until = toucher.now() + kSecond;

  ScriptThread reader([&](ScriptThread& self) {
    self.AdvanceTo(toucher.now());
    manager.Access(self, va, 8, AccessKind::kLoad);
    return false;
  });
  machine.engine().AddThread(&reader);
  machine.engine().Run();
  EXPECT_LT(reader.now(), entry->wp_until);  // did not wait
}

TEST(HememScanModes, NamesIdentifyVariant) {
  Machine m1(TinyMachineConfig());
  HememParams pebs = FastParams();
  EXPECT_STREQ(Hemem(m1, pebs).name(), "HeMem");
  Machine m2(TinyMachineConfig());
  HememParams sync = FastParams();
  sync.scan_mode = HememParams::ScanMode::kPtSync;
  EXPECT_STREQ(Hemem(m2, sync).name(), "HeMem-PT-Sync");
  Machine m3(TinyMachineConfig());
  HememParams async = FastParams();
  async.scan_mode = HememParams::ScanMode::kPtAsync;
  EXPECT_STREQ(Hemem(m3, async).name(), "HeMem-PT-Async");
}

TEST(HememScanModes, PtAsyncClassifiesViaAccessedBits) {
  Machine machine(TinyMachineConfig());
  HememParams params = FastParams();
  params.scan_mode = HememParams::ScanMode::kPtAsync;
  params.pt_scan_period = 100 * kMicrosecond;
  Hemem manager(machine, params);
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(4));
  // A page touched every scan interval accrues one observation per scan;
  // hot after hot_write_threshold (4) dirty scans.
  Hammer(machine, manager, va, 200, AccessKind::kStore, 50 * kMicrosecond);
  EXPECT_GE(manager.hstats().pt_scans, 4u);
  EXPECT_GE(manager.hot_pages(Tier::kDram), 1u);
}

TEST(HememScanModes, PtScanChargesShootdowns) {
  Machine machine(TinyMachineConfig());
  HememParams params = FastParams();
  params.scan_mode = HememParams::ScanMode::kPtAsync;
  params.pt_scan_period = 100 * kMicrosecond;
  Hemem manager(machine, params);
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(4));
  Hammer(machine, manager, va, 200, AccessKind::kStore, 50 * kMicrosecond);
  EXPECT_GT(machine.tlb().stats().shootdowns, 0u);
}

TEST(HememScanModes, NoScanTracksNothing) {
  Machine machine(TinyMachineConfig());
  HememParams params = FastParams();
  params.scan_mode = HememParams::ScanMode::kNone;
  Hemem manager(machine, params);
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(4));
  Hammer(machine, manager, va, 100'000, AccessKind::kStore, 10);
  EXPECT_EQ(manager.hstats().samples_processed, 0u);
  EXPECT_EQ(manager.hot_pages(Tier::kDram), 0u);
}

TEST(HememMunmap, CleansUpListsAndFrames) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(16));
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    manager.Access(self, va + static_cast<uint64_t>(n % 16) * MiB(1), 8, AccessKind::kStore);
    return ++n < 64;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  const uint64_t used_before = machine.frames(Tier::kDram).used_frames();
  EXPECT_GT(used_before, 0u);
  manager.Munmap(va);
  EXPECT_LT(machine.frames(Tier::kDram).used_frames(), used_before);
  EXPECT_EQ(manager.hot_pages(Tier::kDram) + manager.cold_pages(Tier::kDram) +
                manager.hot_pages(Tier::kNvm) + manager.cold_pages(Tier::kNvm),
            machine.frames(Tier::kDram).used_frames() +
                machine.frames(Tier::kNvm).used_frames());
}

TEST(HememPebsPath, CountsFeedMachinePebs) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  const uint64_t va = manager.Mmap(MiB(4));
  Hammer(machine, manager, va, 10'000, AccessKind::kLoad);
  EXPECT_GE(machine.pebs().stats().accesses_counted, 10'000u);
}

TEST(HememPebsPath, UnmanagedRegionsSampledButIgnored) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  manager.Start();
  const uint64_t va = manager.Mmap(KiB(64), {.label = "small"});  // kernel-managed
  Hammer(machine, manager, va, 60'000, AccessKind::kStore, 20);
  // Samples were produced but no page was classified.
  EXPECT_GT(machine.pebs().stats().samples_written, 0u);
  EXPECT_EQ(manager.hot_pages(Tier::kDram), 0u);
}


TEST(HememAlloc, PreferTierHintHonoredAtFault) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  const uint64_t va = manager.Mmap(MiB(4), {.label = "hint", .prefer_tier = Tier::kNvm});
  Hammer(machine, manager, va, 1);
  EXPECT_EQ(machine.page_table().Lookup(va)->tier, Tier::kNvm);
  // Unlike pinning, the page is tracked: it lands on a list.
  const auto probe = manager.ProbePage(va);
  ASSERT_TRUE(probe.has_value());
}

TEST(HememProbe, ReportsCountersAndListState) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(4));
  Hammer(machine, manager, va, 30'000, AccessKind::kStore, 100);
  const auto probe = manager.ProbePage(va);
  ASSERT_TRUE(probe.has_value());
  EXPECT_GT(probe->writes, 0u);
  EXPECT_TRUE(probe->write_heavy);
  EXPECT_TRUE(probe->on_hot_list);
  EXPECT_FALSE(manager.ProbePage(0xdeadbeef).has_value());
}

TEST(HememMigration, WriteHeavyPagesLeadTheHotList) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  manager.Start();
  const uint64_t read_va = manager.Mmap(MiB(1));
  const uint64_t write_va = manager.Mmap(MiB(1));
  ScriptThread t([&, n = 0](ScriptThread& self) mutable {
    // Interleave plenty of loads on one page and stores on the other.
    manager.Access(self, read_va, 8, AccessKind::kLoad);
    manager.Access(self, write_va, 8, AccessKind::kStore);
    self.Advance(100);
    return ++n < 40'000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  const auto rd = manager.ProbePage(read_va);
  const auto wr = manager.ProbePage(write_va);
  ASSERT_TRUE(rd && wr);
  EXPECT_TRUE(wr->write_heavy);
  EXPECT_FALSE(rd->write_heavy);
  EXPECT_TRUE(rd->on_hot_list);
  EXPECT_TRUE(wr->on_hot_list);
}


// --- Swap tier (paper Section 3.4 extension) -------------------------------

MachineConfig SwapMachineConfig() {
  MachineConfig config = TinyMachineConfig();
  config.swap_bytes = MiB(512);
  return config;
}

HememParams SwapParams() {
  HememParams params = FastParams();
  params.enable_swap = true;
  // Paper-scale 64 GiB reserve -> ~21 MiB on the tiny machine: pressure
  // appears once the working set nears total capacity.
  params.nvm_free_watermark = GiB(64);
  return params;
}

TEST(HememSwap, DisabledWithoutBlockDevice) {
  Machine machine(TinyMachineConfig());  // no swap device
  Hemem manager(machine, SwapParams());
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(16));
  Hammer(machine, manager, va, 100, AccessKind::kStore, kMicrosecond);
  EXPECT_EQ(manager.hstats().pages_swapped_out, 0u);
}

TEST(HememSwap, ColdNvmPagesSwapOutUnderPressure) {
  Machine machine(SwapMachineConfig());
  Hemem manager(machine, SwapParams());
  manager.Start();
  // Fill DRAM (64 MiB) and nearly all of NVM (256 MiB): free NVM drops under
  // the watermark and cold pages must go to disk.
  const uint64_t va = manager.Mmap(MiB(310));
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    manager.Access(self, va + static_cast<uint64_t>(n % 310) * MiB(1), 8,
                   AccessKind::kStore);
    self.Advance(50 * kMicrosecond);
    return ++n < 2000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_GT(manager.hstats().pages_swapped_out, 0u);
  EXPECT_GT(machine.swap()->stats().writes, 0u);
  EXPECT_GE(machine.frames(Tier::kNvm).free_bytes(), machine.page_bytes());
}

TEST(HememSwap, SwappedPageFaultsBackIn) {
  Machine machine(SwapMachineConfig());
  Hemem manager(machine, SwapParams());
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(310));
  // Touch everything once, let the policy swap some pages out...
  ScriptThread filler([&, n = 0u](ScriptThread& self) mutable {
    manager.Access(self, va + static_cast<uint64_t>(n) * MiB(1), 8, AccessKind::kStore);
    self.Advance(50 * kMicrosecond);
    return ++n < 310;
  });
  machine.engine().AddThread(&filler);
  machine.engine().Run();
  ASSERT_GT(manager.hstats().pages_swapped_out, 0u);

  // ...find one and touch it again: it must come back, charged a major fault.
  uint64_t swapped_va = 0;
  for (uint64_t i = 0; i < 310; ++i) {
    PageEntry* entry = machine.page_table().Lookup(va + i * MiB(1));
    if (entry->swapped) {
      swapped_va = va + i * MiB(1);
      break;
    }
  }
  ASSERT_NE(swapped_va, 0u);
  ScriptThread toucher([&](ScriptThread& self) {
    self.AdvanceTo(filler.now());
    const SimTime t0 = self.now();
    manager.Access(self, swapped_va, 8, AccessKind::kLoad);
    EXPECT_GT(self.now() - t0, 100 * kMicrosecond);  // disk latency dominates
    return false;
  });
  machine.engine().AddThread(&toucher);
  machine.engine().Run();
  PageEntry* entry = machine.page_table().Lookup(swapped_va);
  EXPECT_TRUE(entry->present);
  EXPECT_FALSE(entry->swapped);
  EXPECT_GT(manager.hstats().pages_swapped_in, 0u);
  EXPECT_GT(machine.swap()->stats().reads, 0u);
}

TEST(HememSwap, WorkingSetBeyondTotalMemoryRuns) {
  // Without swap this working set cannot be mapped at all (64 + 256 MiB of
  // physical memory vs 350 MiB touched).
  Machine machine(SwapMachineConfig());
  Hemem manager(machine, SwapParams());
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(350));
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    manager.Access(self, va + static_cast<uint64_t>(n % 350) * MiB(1), 8,
                   AccessKind::kStore);
    self.Advance(20 * kMicrosecond);
    return ++n < 3000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  // Steady churn: pages cycle to disk and back as the sweep revisits them.
  EXPECT_GE(manager.hstats().pages_swapped_out, manager.hstats().pages_swapped_in);
  EXPECT_GT(manager.hstats().pages_swapped_out, 50u);
  EXPECT_EQ(manager.stats().missing_faults, 350u);
}


// --- DRAM quotas and the global daemon (paper Section 3.4) -----------------

TEST(HememQuota, EnforcedByPolicyThread) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(32));
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    if (n == 32) {
      // Everything faulted into DRAM; now the daemon shrinks the quota and
      // the policy thread must demote down to it.
      manager.set_dram_quota(MiB(8));
    }
    manager.Access(self, va + static_cast<uint64_t>(n % 32) * MiB(1), 8, AccessKind::kStore);
    self.Advance(50 * kMicrosecond);
    return ++n < 2000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_LE(manager.dram_usage(), MiB(9));  // quota plus one in-flight page
  EXPECT_GT(manager.stats().pages_demoted, 0u);
}

TEST(HememQuota, FaultsGoToNvmWhenOverQuota) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  manager.set_dram_quota(MiB(2));
  const uint64_t va = manager.Mmap(MiB(8));
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    manager.Access(self, va + static_cast<uint64_t>(n) * MiB(1), 8, AccessKind::kStore);
    return ++n < 8;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_EQ(machine.page_table().Lookup(va)->tier, Tier::kDram);
  EXPECT_EQ(machine.page_table().Lookup(va + MiB(7))->tier, Tier::kNvm);
  EXPECT_LE(manager.dram_usage(), MiB(2));
}

TEST(HememQuota, UsageTracksPlacement) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  const uint64_t va = manager.Mmap(MiB(4), {.pin_tier = Tier::kDram});
  EXPECT_EQ(manager.dram_usage(), MiB(4));
  manager.Munmap(va);
  EXPECT_EQ(manager.dram_usage(), 0u);
}

TEST(HememDaemonTest, SplitsDramByDemand) {
  Machine machine(TinyMachineConfig());
  Hemem busy(machine, FastParams());
  Hemem idle(machine, FastParams());
  busy.Start();
  idle.Start();
  HememDaemon daemon(machine);
  daemon.Attach(&busy);
  daemon.Attach(&idle);
  daemon.Start();

  // The busy instance hammers a 16 MiB hot set; the idle one barely moves.
  const uint64_t busy_va = busy.Mmap(MiB(16));
  const uint64_t idle_va = idle.Mmap(MiB(16));
  Rng rng(3);
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    busy.Access(self, busy_va + rng.NextBounded(16) * MiB(1), 8, AccessKind::kStore);
    if (n % 64 == 0) {
      idle.Access(self, idle_va + rng.NextBounded(16) * MiB(1), 8, AccessKind::kLoad);
    }
    return ++n < 300'000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_GT(daemon.stats().rebalances, 0u);
  EXPECT_GT(daemon.quota_of(0), daemon.quota_of(1));
  // Floor: even the idle instance keeps at least 10% of DRAM.
  EXPECT_GE(daemon.quota_of(1), MiB(6));
}

TEST(HememDaemonTest, RebalanceWithoutInstancesIsSafe) {
  Machine machine(TinyMachineConfig());
  HememDaemon daemon(machine);
  EXPECT_GT(daemon.Rebalance(), 0);
}


TEST(HememSwap, SwapCoexistsWithQuota) {
  Machine machine(SwapMachineConfig());
  HememParams params = SwapParams();
  Hemem manager(machine, params);
  manager.Start();
  manager.set_dram_quota(MiB(16));
  const uint64_t va = manager.Mmap(MiB(300));
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    manager.Access(self, va + static_cast<uint64_t>(n % 300) * MiB(1), 8,
                   AccessKind::kStore);
    self.Advance(30 * kMicrosecond);
    return ++n < 3000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_LE(manager.dram_usage(), MiB(17));
  EXPECT_GT(manager.hstats().pages_swapped_out, 0u);
}

TEST(HememTrace, RecorderWrapsHemem) {
  // The trace decorator composes with the full manager (faults, migrations).
  Machine machine(TinyMachineConfig());
  Hemem inner(machine, FastParams());
  TraceRecorder recorder(inner);
  recorder.Start();
  const uint64_t va = recorder.Mmap(MiB(8));
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    recorder.Access(self, va + static_cast<uint64_t>(n % 8) * MiB(1), 8,
                    AccessKind::kStore);
    return ++n < 1000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_EQ(recorder.trace().accesses.size(), 1000u);
  EXPECT_EQ(inner.stats().missing_faults, 8u);
}

TEST(HememCooling, AggregateTriggerScalesWithPopulation) {
  // With many equally-warm pages, epochs must be spaced so a typical page
  // accrues ~the cooling threshold per epoch (not be crushed by one page).
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, FastParams());
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(32));
  Rng rng(4);
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    manager.Access(self, va + rng.NextBounded(32) * MiB(1), 8, AccessKind::kStore);
    return ++n < 1'500'000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  const uint64_t samples = manager.hstats().samples_processed;
  const uint64_t epochs = manager.cooling_clock();
  ASSERT_GT(epochs, 0u);
  // Mean samples per epoch >= threshold x (population ~32 pages) / slack.
  EXPECT_GT(samples / epochs, 18u * 8u);
}

class HememThresholdTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HememThresholdTest, HigherThresholdsClassifySlower) {
  const uint32_t threshold = GetParam();
  Machine machine(TinyMachineConfig());
  HememParams params = FastParams();
  params.hot_read_threshold = threshold;
  params.hot_write_threshold = threshold / 2 + 1;
  Hemem manager(machine, params);
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(4));
  // Enough loads for exactly 6 samples on the page.
  Hammer(machine, manager, va, 30'000, AccessKind::kLoad, 100);
  // Under sustained sampling, counts oscillate up to the cooling threshold
  // (18) before halving: thresholds below it classify, thresholds above it
  // are unreachable (the paper's Figure 11 right-hand cliff).
  const bool hot = manager.hot_pages(Tier::kDram) > 0;
  if (threshold <= 8) {
    EXPECT_TRUE(hot);
  } else if (threshold > 18) {
    EXPECT_FALSE(hot);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, HememThresholdTest,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

}  // namespace
}  // namespace hemem
