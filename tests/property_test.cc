// Property-based tests: randomized operation sequences checked against
// reference models (parameterized over seeds so each instantiation explores
// a different trajectory).

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "apps/flexkvs.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "core/page_lists.h"
#include "test_util.h"
#include "tier/machine.h"
#include "tier/plain.h"

namespace hemem {
namespace {

// --- Histogram vs exact percentiles ----------------------------------------

class HistogramProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramProperty, PercentilesWithinRelativeError) {
  Rng rng(GetParam());
  Histogram histogram;
  std::vector<uint64_t> values;
  const int n = 2000 + static_cast<int>(rng.NextBounded(3000));
  for (int i = 0; i < n; ++i) {
    // Mixed magnitudes: exercise several bucket groups.
    const uint64_t v = rng.NextBounded(1ull << (4 + rng.NextBounded(30)));
    values.push_back(v);
    histogram.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const uint64_t exact =
        values[static_cast<size_t>(q * static_cast<double>(values.size() - 1))];
    const double got = static_cast<double>(histogram.Percentile(q));
    // Log-linear buckets guarantee ~2% relative precision (plus one bucket).
    EXPECT_LE(std::abs(got - static_cast<double>(exact)),
              static_cast<double>(exact) * 0.04 + 2.0)
        << "q=" << q;
  }
  EXPECT_EQ(histogram.count(), static_cast<uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramProperty, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- PageList vs std::deque reference --------------------------------------

class PageListProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageListProperty, MatchesReferenceDeque) {
  Rng rng(GetParam());
  constexpr int kPages = 64;
  std::vector<HememPage> pages(kPages);
  PageList list;
  std::deque<HememPage*> reference;

  auto in_list = [&](HememPage* p) {
    return std::find(reference.begin(), reference.end(), p) != reference.end();
  };

  for (int op = 0; op < 2000; ++op) {
    HememPage* page = &pages[rng.NextBounded(kPages)];
    switch (rng.NextBounded(4)) {
      case 0:
        if (!in_list(page)) {
          list.PushBack(page);
          reference.push_back(page);
        }
        break;
      case 1:
        if (!in_list(page)) {
          list.PushFront(page);
          reference.push_front(page);
        }
        break;
      case 2:
        if (in_list(page)) {
          list.Remove(page);
          reference.erase(std::find(reference.begin(), reference.end(), page));
        }
        break;
      case 3: {
        HememPage* popped = list.PopFront();
        HememPage* expected = reference.empty() ? nullptr : reference.front();
        if (!reference.empty()) {
          reference.pop_front();
        }
        ASSERT_EQ(popped, expected);
        break;
      }
    }
    ASSERT_EQ(list.size(), reference.size());
    ASSERT_EQ(list.front(), reference.empty() ? nullptr : reference.front());
  }
  // Drain and verify order.
  while (!reference.empty()) {
    ASSERT_EQ(list.PopFront(), reference.front());
    reference.pop_front();
  }
  ASSERT_EQ(list.PopFront(), nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageListProperty, ::testing::Values(10u, 11u, 12u, 13u));

// --- FrameAllocator invariants ----------------------------------------------

class FrameAllocatorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FrameAllocatorProperty, NeverDoubleAllocates) {
  Rng rng(GetParam());
  const bool shuffled = rng.NextBool(0.5);
  FrameAllocator alloc(MiB(64), MiB(1), shuffled ? rng.Next() | 1 : 0, false,
                       1 + rng.NextBounded(8));
  std::set<uint32_t> held;
  for (int op = 0; op < 5000; ++op) {
    if (rng.NextBool(0.6)) {
      const auto frame = alloc.Alloc();
      if (frame.has_value()) {
        ASSERT_TRUE(held.insert(*frame).second) << "frame handed out twice";
        ASSERT_LT(*frame, 64u);
      } else {
        ASSERT_EQ(held.size(), 64u);  // only fails when truly full
      }
    } else if (!held.empty()) {
      auto it = held.begin();
      std::advance(it, static_cast<long>(rng.NextBounded(held.size())));
      alloc.Free(*it);
      held.erase(it);
    }
    ASSERT_EQ(alloc.used_frames(), held.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameAllocatorProperty,
                         ::testing::Values(20u, 21u, 22u, 23u));

// --- Engine determinism over random thread mixes ----------------------------

class EngineDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineDeterminism, IdenticalRunsProduceIdenticalClocks) {
  auto run = [&](std::vector<SimTime>* out) {
    Rng rng(GetParam());
    Machine machine(TinyMachineConfig());
    PlainMemory manager(machine, Tier::kNvm, true);
    const uint64_t va = manager.Mmap(MiB(8));
    std::vector<std::unique_ptr<ScriptThread>> threads;
    const int n = 2 + static_cast<int>(rng.NextBounded(6));
    for (int i = 0; i < n; ++i) {
      auto seed = rng.Next();
      threads.push_back(std::make_unique<ScriptThread>(
          [&manager, va, seed, count = 0](ScriptThread& self) mutable {
            Rng local(seed);
            manager.Access(self, va + local.NextBounded(MiB(8) / 8) * 8, 8,
                           local.NextBool(0.5) ? AccessKind::kLoad : AccessKind::kStore);
            return ++count < 500;
          }));
      machine.engine().AddThread(threads.back().get());
    }
    machine.engine().Run();
    for (const auto& t : threads) {
      out->push_back(t->now());
    }
  };
  std::vector<SimTime> first;
  std::vector<SimTime> second;
  run(&first);
  run(&second);
  ASSERT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDeterminism, ::testing::Values(30u, 31u, 32u));

// --- FlexKVS vs std::map reference model ------------------------------------

class KvsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvsProperty, RandomOpsMatchReferenceVersions) {
  Rng rng(GetParam());
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  KvsConfig config;
  config.num_keys = 200;
  config.value_bytes = 256;
  config.server_threads = 1;
  config.requests_per_thread = 0;
  config.segment_bytes = KiB(32);  // small segments: cleaner exercised
  config.log_overprovision = 1.4;
  FlexKvs kvs(manager, config);
  kvs.Prepare();

  std::map<uint64_t, uint64_t> reference;  // key -> version
  ScriptThread t([&](ScriptThread& self) {
    for (int op = 0; op < 6000; ++op) {
      const uint64_t key = rng.NextBounded(200);
      if (rng.NextBool(0.5)) {
        if (kvs.Set(self, 0, key)) {
          reference[key]++;
        }
      } else {
        uint64_t version = 0;
        const bool found = kvs.Get(self, key, &version);
        const auto it = reference.find(key);
        EXPECT_EQ(found, it != reference.end()) << "key " << key;
        if (found && it != reference.end()) {
          EXPECT_EQ(version, it->second) << "key " << key;
        }
      }
    }
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvsProperty, ::testing::Values(40u, 41u, 42u, 43u));

}  // namespace
}  // namespace hemem
