// Property-based tests: randomized operation sequences checked against
// reference models (parameterized over seeds so each instantiation explores
// a different trajectory).

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "apps/flexkvs.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "core/hemem.h"
#include "core/page_lists.h"
#include "sim/fault.h"
#include "test_util.h"
#include "tier/machine.h"
#include "tier/memory_mode.h"
#include "tier/nimble.h"
#include "tier/plain.h"
#include "tier/thermostat.h"
#include "tier/xmem.h"

namespace hemem {
namespace {

// --- Histogram vs exact percentiles ----------------------------------------

class HistogramProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramProperty, PercentilesWithinRelativeError) {
  Rng rng(GetParam());
  Histogram histogram;
  std::vector<uint64_t> values;
  const int n = 2000 + static_cast<int>(rng.NextBounded(3000));
  for (int i = 0; i < n; ++i) {
    // Mixed magnitudes: exercise several bucket groups.
    const uint64_t v = rng.NextBounded(1ull << (4 + rng.NextBounded(30)));
    values.push_back(v);
    histogram.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const uint64_t exact =
        values[static_cast<size_t>(q * static_cast<double>(values.size() - 1))];
    const double got = static_cast<double>(histogram.Percentile(q));
    // Log-linear buckets guarantee ~2% relative precision (plus one bucket).
    EXPECT_LE(std::abs(got - static_cast<double>(exact)),
              static_cast<double>(exact) * 0.04 + 2.0)
        << "q=" << q;
  }
  EXPECT_EQ(histogram.count(), static_cast<uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramProperty, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- PageList vs std::deque reference --------------------------------------

class PageListProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageListProperty, MatchesReferenceDeque) {
  Rng rng(GetParam());
  constexpr int kPages = 64;
  std::vector<HememPage> pages(kPages);
  PageList list;
  std::deque<HememPage*> reference;

  auto in_list = [&](HememPage* p) {
    return std::find(reference.begin(), reference.end(), p) != reference.end();
  };

  for (int op = 0; op < 2000; ++op) {
    HememPage* page = &pages[rng.NextBounded(kPages)];
    switch (rng.NextBounded(4)) {
      case 0:
        if (!in_list(page)) {
          list.PushBack(page);
          reference.push_back(page);
        }
        break;
      case 1:
        if (!in_list(page)) {
          list.PushFront(page);
          reference.push_front(page);
        }
        break;
      case 2:
        if (in_list(page)) {
          list.Remove(page);
          reference.erase(std::find(reference.begin(), reference.end(), page));
        }
        break;
      case 3: {
        HememPage* popped = list.PopFront();
        HememPage* expected = reference.empty() ? nullptr : reference.front();
        if (!reference.empty()) {
          reference.pop_front();
        }
        ASSERT_EQ(popped, expected);
        break;
      }
    }
    ASSERT_EQ(list.size(), reference.size());
    ASSERT_EQ(list.front(), reference.empty() ? nullptr : reference.front());
  }
  // Drain and verify order.
  while (!reference.empty()) {
    ASSERT_EQ(list.PopFront(), reference.front());
    reference.pop_front();
  }
  ASSERT_EQ(list.PopFront(), nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageListProperty, ::testing::Values(10u, 11u, 12u, 13u));

// --- FrameAllocator invariants ----------------------------------------------

class FrameAllocatorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FrameAllocatorProperty, NeverDoubleAllocates) {
  Rng rng(GetParam());
  const bool shuffled = rng.NextBool(0.5);
  FrameAllocator alloc(MiB(64), MiB(1), shuffled ? rng.Next() | 1 : 0, false,
                       1 + rng.NextBounded(8));
  std::set<uint32_t> held;
  for (int op = 0; op < 5000; ++op) {
    if (rng.NextBool(0.6)) {
      const auto frame = alloc.Alloc();
      if (frame.has_value()) {
        ASSERT_TRUE(held.insert(*frame).second) << "frame handed out twice";
        ASSERT_LT(*frame, 64u);
      } else {
        ASSERT_EQ(held.size(), 64u);  // only fails when truly full
      }
    } else if (!held.empty()) {
      auto it = held.begin();
      std::advance(it, static_cast<long>(rng.NextBounded(held.size())));
      alloc.Free(*it);
      held.erase(it);
    }
    ASSERT_EQ(alloc.used_frames(), held.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameAllocatorProperty,
                         ::testing::Values(20u, 21u, 22u, 23u));

// --- Engine determinism over random thread mixes ----------------------------

class EngineDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineDeterminism, IdenticalRunsProduceIdenticalClocks) {
  auto run = [&](std::vector<SimTime>* out) {
    Rng rng(GetParam());
    Machine machine(TinyMachineConfig());
    PlainMemory manager(machine, Tier::kNvm, true);
    const uint64_t va = manager.Mmap(MiB(8));
    std::vector<std::unique_ptr<ScriptThread>> threads;
    const int n = 2 + static_cast<int>(rng.NextBounded(6));
    for (int i = 0; i < n; ++i) {
      auto seed = rng.Next();
      threads.push_back(std::make_unique<ScriptThread>(
          [&manager, va, seed, count = 0](ScriptThread& self) mutable {
            Rng local(seed);
            manager.Access(self, va + local.NextBounded(MiB(8) / 8) * 8, 8,
                           local.NextBool(0.5) ? AccessKind::kLoad : AccessKind::kStore);
            return ++count < 500;
          }));
      machine.engine().AddThread(threads.back().get());
    }
    machine.engine().Run();
    for (const auto& t : threads) {
      out->push_back(t->now());
    }
  };
  std::vector<SimTime> first;
  std::vector<SimTime> second;
  run(&first);
  run(&second);
  ASSERT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDeterminism, ::testing::Values(30u, 31u, 32u));

// --- FlexKVS vs std::map reference model ------------------------------------

class KvsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvsProperty, RandomOpsMatchReferenceVersions) {
  Rng rng(GetParam());
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  KvsConfig config;
  config.num_keys = 200;
  config.value_bytes = 256;
  config.server_threads = 1;
  config.requests_per_thread = 0;
  config.segment_bytes = KiB(32);  // small segments: cleaner exercised
  config.log_overprovision = 1.4;
  FlexKvs kvs(manager, config);
  kvs.Prepare();

  std::map<uint64_t, uint64_t> reference;  // key -> version
  ScriptThread t([&](ScriptThread& self) {
    for (int op = 0; op < 6000; ++op) {
      const uint64_t key = rng.NextBounded(200);
      if (rng.NextBool(0.5)) {
        if (kvs.Set(self, 0, key)) {
          reference[key]++;
        }
      } else {
        uint64_t version = 0;
        const bool found = kvs.Get(self, key, &version);
        const auto it = reference.find(key);
        EXPECT_EQ(found, it != reference.end()) << "key " << key;
        if (found && it != reference.end()) {
          EXPECT_EQ(version, it->second) << "key " << key;
        }
      }
    }
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvsProperty, ::testing::Values(40u, 41u, 42u, 43u));

// --- Fault-schedule sweep: invariants under randomized fault plans -----------
//
// Every tiering system runs a fixed hot/cold workload under a seed-derived
// random fault plan (mixing DMA failures/timeouts, device degradation, PEBS
// losses, migration aborts, and allocation failures). Whatever the plan, the
// run must complete and leave the machine self-consistent: each page resident
// in exactly one tier with a uniquely-owned frame, translations resolving to
// their entries, frame pools conserved, and HeMem's list accounting intact.

constexpr const char* kFaultMatrixSystems[] = {
    "DRAM", "MM", "Nimble", "X-Mem", "Thermostat", "HeMem", "HeMem-PT-Sync",
    "HeMem-Nomad", "HeMem-PT-Sync-Nomad",
};

std::unique_ptr<TieredMemoryManager> MakeFaultMatrixSystem(const std::string& kind,
                                                           Machine& machine) {
  if (kind == "DRAM") {
    return std::make_unique<PlainMemory>(machine, Tier::kDram, /*overcommit=*/true);
  }
  if (kind == "MM") {
    return std::make_unique<MemoryMode>(machine);
  }
  if (kind == "Nimble") {
    return std::make_unique<Nimble>(machine);
  }
  if (kind == "X-Mem") {
    return std::make_unique<XMem>(machine);
  }
  if (kind == "Thermostat") {
    return std::make_unique<Thermostat>(machine);
  }
  HememParams params;
  if (kind == "HeMem-PT-Sync" || kind == "HeMem-PT-Sync-Nomad") {
    params.scan_mode = HememParams::ScanMode::kPtSync;
  }
  if (kind == "HeMem-Nomad" || kind == "HeMem-PT-Sync-Nomad") {
    params.migration = HememParams::MigrationMode::kNomad;
  }
  return std::make_unique<Hemem>(machine, params);
}

// Seed-derived plan: each kind joins with some probability, rates kept in a
// range where the workload still makes forward progress. Degrade multipliers
// stay mild (a saturated device is legal but makes the sweep crawl).
std::string RandomFaultSpec(uint64_t seed) {
  Rng rng(Mix64(seed ^ 0xfa1177ull));
  std::string spec = "seed=" + std::to_string(1 + rng.NextBounded(1 << 20));
  // Probability literal "0.NN" with NN uniform in [lo, hi] percent.
  const auto pct = [&rng](uint64_t lo, uint64_t hi) {
    const uint64_t v = rng.NextInRange(lo, hi);
    return std::string("0.") + (v < 10 ? "0" : "") + std::to_string(v);
  };
  if (rng.NextBool(0.6)) {
    spec += ";dma.fail:p=" + pct(10, 50);
  }
  if (rng.NextBool(0.3)) {
    spec += ";dma.timeout:p=" + pct(5, 20);
  }
  if (rng.NextBool(0.5)) {
    spec += ";migrate.abort:p=" + pct(5, 30);
  }
  if (rng.NextBool(0.5)) {
    spec += ";alloc.fail:p=" + pct(10, 50);
    if (rng.NextBool(0.5)) {
      spec += rng.NextBool(0.5) ? ",tier=dram" : ",tier=nvm";
    }
  }
  if (rng.NextBool(0.5)) {
    spec += ";pebs.drop:p=" + pct(5, 30);
  }
  if (rng.NextBool(0.3)) {
    spec += ";pebs.burst:p=0.01,len=" + std::to_string(8 + rng.NextBounded(64));
  }
  if (rng.NextBool(0.4)) {
    spec += ";nvm.degrade:mult=1." + std::to_string(1 + rng.NextBounded(4));
    if (rng.NextBool(0.5)) {
      spec += ",start=1ms,end=" + std::to_string(2 + rng.NextBounded(20)) + "ms";
    }
  }
  if (rng.NextBool(0.3)) {
    spec += ";dram.degrade:mult=1." + std::to_string(1 + rng.NextBounded(3));
  }
  if (spec.find(';') == std::string::npos) {
    spec += ";dma.fail:p=0.25";  // never sweep an empty plan
  }
  return spec;
}

class FaultMatrix
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(FaultMatrix, InvariantsHoldUnderRandomFaultSchedule) {
  const std::string system = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  const std::string spec = RandomFaultSpec(seed);
  SCOPED_TRACE(system + " under \"" + spec + "\"");

  MachineConfig config = TinyMachineConfig();
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(spec, &config.fault_plan, &error)) << error;
  Machine machine(config);
  std::unique_ptr<TieredMemoryManager> manager = MakeFaultMatrixSystem(system, machine);
  manager->Start();

  constexpr uint64_t kWorkingSet = MiB(32);
  constexpr uint64_t kHotSet = MiB(4);
  constexpr uint64_t kOps = 60'000;
  const uint64_t va = manager->Mmap(kWorkingSet, {.label = "fault-matrix"});

  Rng access_rng(Mix64(seed) ^ 0xacce55ull);
  uint64_t op = 0;
  ScriptThread thread([&](ScriptThread& self) mutable {
    const uint64_t span = access_rng.NextBool(0.9) ? kHotSet : kWorkingSet;
    const uint64_t offset = access_rng.NextBounded(span / 64) * 64;
    const AccessKind kind = op % 3 == 0 ? AccessKind::kStore : AccessKind::kLoad;
    manager->Access(self, va + offset, 64, kind);
    self.Advance(15);
    return ++op < kOps;
  });
  machine.engine().AddThread(&thread);
  const SimTime end = machine.engine().Run();

  // The workload ran to completion in finite virtual time — no deadlock.
  ASSERT_EQ(op, kOps);
  ASSERT_GT(end, 0);

  // Residency: each present page holds a valid, uniquely-owned (tier, frame)
  // and is never simultaneously swapped; its translation resolves to itself.
  std::set<uint64_t> frames_seen;
  uint64_t present_pages[kNumTiers] = {0, 0};
  machine.page_table().ForEachRegion([&](Region& region) {
    for (uint64_t i = 0; i < region.num_pages(); ++i) {
      PageEntry& entry = region.pages[i];
      EXPECT_FALSE(entry.present && entry.swapped);
      if (!entry.present) {
        continue;
      }
      EXPECT_NE(entry.frame, kInvalidFrame);
      const uint64_t key =
          (static_cast<uint64_t>(entry.tier) << 32) | entry.frame;
      EXPECT_TRUE(frames_seen.insert(key).second)
          << "frame " << entry.frame << " owned by two pages";
      present_pages[static_cast<int>(entry.tier)]++;
      const uint64_t page_va = region.base + i * region.page_bytes;
      const PageTable::Resolution res = machine.page_table().Resolve(page_va);
      ASSERT_EQ(res.entry, &entry);
      ASSERT_EQ(res.region, &region);
    }
  });

  // Frame-pool conservation for the systems that allocate from the machine's
  // shared pools (DRAM and MM run private allocators). Under nomad
  // migration, live shadows and in-flight transaction destinations own
  // frames beyond the primary mappings — counted, never double-counted.
  if (system != "DRAM" && system != "MM") {
    uint64_t dram_extra = 0;
    uint64_t nvm_extra = 0;
    if (auto* hemem = dynamic_cast<Hemem*>(manager.get())) {
      dram_extra = hemem->pending_txn_frames(Tier::kDram);
      nvm_extra = hemem->shadow_pages() + hemem->pending_txn_frames(Tier::kNvm);
    }
    EXPECT_EQ(machine.frames(Tier::kDram).used_frames(),
              present_pages[static_cast<int>(Tier::kDram)] + dram_extra);
    EXPECT_EQ(machine.frames(Tier::kNvm).used_frames(),
              present_pages[static_cast<int>(Tier::kNvm)] + nvm_extra);
  }

  // HeMem list accounting: every managed present page sits on exactly one
  // hot/cold list (pages owned by an in-flight transaction sit on none),
  // the counts agree, and DRAM ownership matches frames held. The nomad
  // metadata invariants — bijective shadow/transaction linkage, clean
  // shadows byte-identical to their primaries, no frame in two roles —
  // must hold whatever the fault plan did.
  if (auto* hemem = dynamic_cast<Hemem*>(manager.get())) {
    std::string why;
    EXPECT_TRUE(hemem->CheckNomadInvariants(&why)) << why;
    uint64_t listed = 0;
    for (uint64_t page_off = 0; page_off < kWorkingSet;
         page_off += machine.page_bytes()) {
      const auto probe = hemem->ProbePage(va + page_off);
      ASSERT_TRUE(probe.has_value());
      if (probe->list != PageListId::kNone) {
        listed++;
      }
    }
    EXPECT_EQ(listed, hemem->hot_pages(Tier::kDram) + hemem->hot_pages(Tier::kNvm) +
                          hemem->cold_pages(Tier::kDram) + hemem->cold_pages(Tier::kNvm));
    EXPECT_EQ(hemem->dram_usage(),
              present_pages[static_cast<int>(Tier::kDram)] * machine.page_bytes());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigsBySeeds, FaultMatrix,
    ::testing::Combine(::testing::ValuesIn(kFaultMatrixSystems),
                       ::testing::Values(101u, 102u, 103u, 104u, 105u, 106u, 107u, 108u)),
    [](const ::testing::TestParamInfo<FaultMatrix::ParamType>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace hemem
