// End-to-end integration tests: the paper's qualitative claims, at miniature
// scale. Each test runs a real workload against full tiering systems and
// asserts the *ordering* results the evaluation section reports.

#include <gtest/gtest.h>

#include "apps/bc.h"
#include "apps/flexkvs.h"
#include "apps/graph.h"
#include "apps/gups.h"
#include "core/hemem.h"
#include "sim/fault.h"
#include "test_util.h"
#include "tier/memory_mode.h"
#include "tier/nimble.h"
#include "tier/plain.h"
#include "tier/xmem.h"

namespace hemem {
namespace {

// A machine sized so that a hot set fits DRAM but the working set does not:
// 64 MiB DRAM / 256 MiB NVM, 1 MiB pages.
MachineConfig ItestMachine() { return TinyMachineConfig(); }

GupsConfig HotGups(int threads = 4) {
  GupsConfig config;
  config.threads = threads;
  config.working_set = MiB(192);  // 3x DRAM
  config.hot_set = MiB(24);       // fits DRAM comfortably
  config.hot_fraction = 0.9;
  config.updates_per_thread = 200'000;
  // Long warmup: classification and migration converge before measurement.
  config.warmup_updates_per_thread = 200'000;
  return config;
}

double RunGups(TieredMemoryManager& manager, const GupsConfig& config) {
  manager.Start();
  GupsBenchmark gups(manager, config);
  gups.Prepare();
  return gups.Run().gups;
}

TEST(Integration, HememBeatsStaticNvmOnHotSet) {
  Machine m1(ItestMachine());
  Hemem hemem(m1);
  const double with_hemem = RunGups(hemem, HotGups());

  Machine m2(ItestMachine());
  PlainMemory nvm(m2, Tier::kNvm, true);
  const double with_nvm = RunGups(nvm, HotGups());

  EXPECT_GT(with_hemem, with_nvm * 1.3);
}

TEST(Integration, DramUpperBoundsEveryone) {
  Machine m1(ItestMachine());
  PlainMemory dram(m1, Tier::kDram, true);
  const double with_dram = RunGups(dram, HotGups());

  Machine m2(ItestMachine());
  Hemem hemem(m2);
  const double with_hemem = RunGups(hemem, HotGups());

  EXPECT_GE(with_dram * 1.05, with_hemem);
}

TEST(Integration, HememMigratesHotSetIntoDram) {
  Machine machine(ItestMachine());
  Hemem hemem(machine);
  RunGups(hemem, HotGups());
  // After the run most promotions happened and the DRAM hot list holds a
  // hot set's worth of pages.
  EXPECT_GT(hemem.stats().pages_promoted, 0u);
  EXPECT_GT(hemem.hot_bytes(Tier::kDram), MiB(12));
}

TEST(Integration, HememSmallWorkingSetMatchesDram) {
  GupsConfig small = HotGups();
  small.working_set = MiB(32);  // fits DRAM entirely
  small.hot_set = 0;

  Machine m1(ItestMachine());
  PlainMemory dram(m1, Tier::kDram, true);
  const double with_dram = RunGups(dram, small);

  Machine m2(ItestMachine());
  Hemem hemem(m2);
  const double with_hemem = RunGups(hemem, small);

  EXPECT_GT(with_hemem, with_dram * 0.85);
}

TEST(Integration, MemoryModeDegradesNearDramCapacity) {
  GupsConfig fits = HotGups();
  fits.working_set = MiB(16);
  fits.hot_set = 0;
  fits.warmup_updates_per_thread = 600'000;  // the DRAM cache must warm up
  GupsConfig tight = HotGups();
  tight.working_set = MiB(60);  // approaches 64 MiB DRAM
  tight.hot_set = 0;
  tight.warmup_updates_per_thread = 600'000;

  Machine m1(ItestMachine());
  MemoryMode mm_fits(m1);
  const double gups_fits = RunGups(mm_fits, fits);

  Machine m2(ItestMachine());
  MemoryMode mm_tight(m2);
  const double gups_tight = RunGups(mm_tight, tight);

  EXPECT_GT(gups_fits, gups_tight * 1.1);
}

TEST(Integration, HememBeatsMemoryModeNearCapacity) {
  GupsConfig tight = HotGups();
  tight.working_set = MiB(56);
  tight.hot_set = 0;
  tight.updates_per_thread = 100'000;

  Machine m1(ItestMachine());
  Hemem hemem(m1);
  const double with_hemem = RunGups(hemem, tight);

  Machine m2(ItestMachine());
  MemoryMode mm(m2);
  const double with_mm = RunGups(mm, tight);

  EXPECT_GT(with_hemem, with_mm);
}

TEST(Integration, WriteHeavyDataPrioritizedForDram) {
  // Asymmetric GUPS (Table 2): half the hot set is write-only. HeMem should
  // exceed a configuration blind to the skew (Nimble).
  // Table 2 geometry: the hot set (96 MiB) exceeds DRAM (64 MiB); half of it
  // is write-only and fits. HeMem must park the write-only half in DRAM.
  // 16 threads so NVM write bandwidth actually saturates (the paper's
  // bottleneck); with few threads the skew is invisible.
  GupsConfig config = HotGups(/*threads=*/16);
  config.hot_set = MiB(96);
  config.write_only_hot_fraction = 0.5;
  config.updates_per_thread = 250'000;
  config.warmup_updates_per_thread = 250'000;

  Machine m1(ItestMachine());
  Hemem hemem(m1);
  const double with_hemem = RunGups(hemem, config);

  Machine m2(ItestMachine());
  Nimble nimble(m2);
  const double with_nimble = RunGups(nimble, config);

  EXPECT_GT(with_hemem, with_nimble);
}

TEST(Integration, HememWearsNvmLessThanMemoryMode) {
  // The paper's Figure 16 scenario: betweenness centrality on a graph that
  // exceeds DRAM. BC's writes concentrate on a write-hot subset HeMem can
  // promote, while memory mode keeps writing back dirty victim lines.
  KroneckerConfig kconfig;
  kconfig.scale = 12;
  const CsrGraph graph = GenerateKronecker(kconfig);

  auto run = [&](TieredMemoryManager& manager, Machine& machine) {
    manager.Start();
    SimGraph sim_graph(manager, graph);
    BcConfig bconfig;
    bconfig.iterations = 4;
    BcBenchmark bc(sim_graph, bconfig);
    bc.Prepare();
    bc.Run();
    return machine.nvm().stats().media_bytes_written;
  };

  MachineConfig config = ItestMachine();
  config.dram_bytes = MiB(2);
  config.page_bytes = KiB(256);
  Machine m1(config);
  Hemem hemem(m1);
  const uint64_t hemem_wear = run(hemem, m1);

  Machine m2(config);
  MemoryMode mm(m2);
  const uint64_t mm_wear = run(mm, m2);

  EXPECT_LT(hemem_wear, mm_wear);
}

TEST(Integration, PebsBeatsPtSyncOnFidelity) {
  GupsConfig config = HotGups();
  config.updates_per_thread = 120'000;

  Machine m1(ItestMachine());
  Hemem pebs(m1);
  const double with_pebs = RunGups(pebs, config);

  Machine m2(ItestMachine());
  HememParams pt = HememParams{};
  pt.scan_mode = HememParams::ScanMode::kPtSync;
  Hemem ptsync(m2, pt);
  const double with_pt = RunGups(ptsync, config);

  EXPECT_GT(with_pebs, with_pt * 0.8);  // PEBS at least on par, usually ahead
}

TEST(Integration, KvsHememBeatsNvmWhenOversubscribed) {
  auto run = [](TieredMemoryManager& manager) {
    manager.Start();
    KvsConfig config;
    config.num_keys = 30'000;  // ~33 MiB values + index; DRAM is 64 MiB
    config.value_bytes = 1024;
    config.server_threads = 2;
    config.requests_per_thread = 15'000;
    config.warmup_requests_per_thread = 5'000;
    FlexKvs kvs(manager, config);
    kvs.Prepare();
    return kvs.Run().mops;
  };
  MachineConfig small = ItestMachine();
  small.dram_bytes = MiB(16);  // force the dataset to oversubscribe DRAM
  Machine m1(small);
  Hemem hemem(m1);
  const double with_hemem = run(hemem);

  Machine m2(small);
  PlainMemory nvm(m2, Tier::kNvm, true);
  const double with_nvm = run(nvm);

  EXPECT_GT(with_hemem, with_nvm);
}

TEST(Integration, KvsPriorityInstanceSeesLowerLatency) {
  // Two FlexKVS instances share one HeMem: the priority one pins to DRAM.
  MachineConfig config = ItestMachine();
  Machine machine(config);
  Hemem hemem(machine);
  hemem.Start();

  KvsConfig regular;
  regular.num_keys = 40'000;
  regular.value_bytes = 1024;
  regular.server_threads = 2;
  regular.requests_per_thread = 8'000;
  regular.hot_key_fraction = 0;  // uniform: thrashes tiering
  regular.label = "regular";
  regular.seed = 21;

  KvsConfig priority = regular;
  priority.num_keys = 4'000;
  priority.requests_per_thread = 8'000;
  priority.pin_tier = Tier::kDram;
  priority.label = "priority";
  priority.seed = 22;

  FlexKvs regular_kvs(hemem, regular);
  FlexKvs priority_kvs(hemem, priority);
  regular_kvs.Prepare();
  priority_kvs.Prepare();
  machine.engine().Run();

  KvsResult r = regular_kvs.Run();   // engine already drained; just collect
  KvsResult p = priority_kvs.Run();
  ASSERT_GT(p.latency.count(), 0u);
  ASSERT_GT(r.latency.count(), 0u);
  EXPECT_LE(p.latency.Percentile(0.5), r.latency.Percentile(0.5));
}

TEST(Integration, BcHememBeatsNvmOnLargeGraph) {
  KroneckerConfig kconfig;
  kconfig.scale = 12;  // CSR + state ~ a few hundred KiB per array
  const CsrGraph graph = GenerateKronecker(kconfig);

  auto run = [&](TieredMemoryManager& manager) {
    manager.Start();
    SimGraph sim_graph(manager, graph);
    BcConfig bconfig;
    bconfig.iterations = 3;
    BcBenchmark bc(sim_graph, bconfig);
    bc.Prepare();
    return bc.Run().total_time;
  };

  MachineConfig config = ItestMachine();
  config.dram_bytes = MiB(2);  // graph exceeds DRAM
  config.page_bytes = KiB(256);
  Machine m1(config);
  Hemem hemem(m1);
  const SimTime with_hemem = run(hemem);

  Machine m2(config);
  PlainMemory nvm(m2, Tier::kNvm, true);
  const SimTime with_nvm = run(nvm);

  EXPECT_LT(with_hemem, with_nvm);
}

// ---------------------------------------------------------------------------
// Data integrity under migration, with and without injected faults.
//
// GUPS verify mode mirrors every store into the machine's shadow memory with
// an odd, address-derived delta; VerifyData() re-reads each touched word
// through the page table at the end. A migration that loses, duplicates, or
// mistranslates a page cannot keep the sums consistent, so mismatches == 0 is
// an end-to-end proof that tiering preserved application data. The FaultSoak
// suite (ctest label `soak`, longer timeout) repeats the check under
// sustained multi-kind fault injection.

MachineConfig FaultyItestMachine(const std::string& spec) {
  MachineConfig config = ItestMachine();
  std::string error;
  EXPECT_TRUE(FaultPlan::Parse(spec, &config.fault_plan, &error)) << error;
  return config;
}

GupsConfig VerifiedGups() {
  GupsConfig config = HotGups(/*threads=*/2);
  config.working_set = MiB(96);  // oversubscribes 64 MiB DRAM
  config.hot_set = MiB(16);
  config.verify = true;
  config.updates_per_thread = 150'000;
  config.warmup_updates_per_thread = 50'000;
  return config;
}

TEST(Integration, GupsVerifyModeProvesMigrationsPreserveData) {
  Machine machine(ItestMachine());
  Hemem hemem(machine);
  hemem.Start();
  GupsBenchmark gups(hemem, VerifiedGups());
  gups.Prepare();
  const GupsResult result = gups.Run();
  EXPECT_GT(result.total_updates, 0u);
  // The run must actually migrate, or the verification proves nothing.
  EXPECT_GT(hemem.stats().pages_promoted, 0u);
  EXPECT_EQ(gups.VerifyData(), 0u);
  EXPECT_GT(gups.verified_words(), 0u);
}

TEST(FaultSoak, DmaFaultStormRecoversWithDataIntact) {
  // Heavy DMA failure plus timeouts: batches retry, exhaust, and fall back
  // to CPU copies. The hot set must still reach DRAM and every word must
  // hold its expected sum.
  Machine machine(FaultyItestMachine(
      "seed=11;dma.fail:p=0.3;dma.timeout:p=0.1"));
  Hemem hemem(machine);
  hemem.Start();
  GupsBenchmark gups(hemem, VerifiedGups());
  gups.Prepare();
  const GupsResult result = gups.Run();
  EXPECT_GT(result.total_updates, 0u);

  const DmaStats& dma = machine.dma().stats();
  EXPECT_GT(dma.failed_attempts, 0u);
  EXPECT_GT(dma.retries, 0u);           // recovery actually exercised
  EXPECT_GT(hemem.stats().pages_promoted, 0u);
  EXPECT_EQ(gups.VerifyData(), 0u);
  EXPECT_GT(gups.verified_words(), 0u);
}

TEST(FaultSoak, NomadAbortStormKeepsNvmCopyAuthoritative) {
  // Heavy transactional aborts under nomad migration: every aborted copy
  // must leave the (never-remapped) source authoritative, committed
  // promotions must retain byte-identical clean shadows, and the checksum
  // oracle must hold across the whole run.
  Machine machine(FaultyItestMachine(
      "seed=17;migrate.abort:p=0.25;dma.fail:p=0.2;pebs.drop:p=0.2"));
  HememParams params;
  params.migration = HememParams::MigrationMode::kNomad;
  Hemem hemem(machine, params);
  hemem.Start();
  GupsConfig config = VerifiedGups();
  config.updates_per_thread = 400'000;
  GupsBenchmark gups(hemem, config);
  gups.Prepare();
  const GupsResult result = gups.Run();
  EXPECT_GT(result.total_updates, 0u);

  // The storm fired, migration still made progress, and every migration ran
  // transactionally (stores abort copies instead of waiting them out).
  EXPECT_GT(machine.faults().injected(FaultKind::kMigrationAbort), 0u);
  EXPECT_GT(hemem.stats().pages_promoted, 0u);
  EXPECT_GT(hemem.hstats().txn_commits, 0u);
  EXPECT_EQ(hemem.stats().wp_wait_ns, 0u);

  // Data survived and frames are conserved — counting live shadows and
  // in-flight transaction destinations alongside the primary mappings.
  EXPECT_EQ(gups.VerifyData(), 0u);
  EXPECT_GT(gups.verified_words(), 0u);
  uint64_t present[2] = {0, 0};
  machine.page_table().ForEachRegion([&](Region& region) {
    for (const PageEntry& page : region.pages) {
      if (page.present) present[static_cast<int>(page.tier)]++;
    }
  });
  EXPECT_EQ(machine.frames(Tier::kDram).used_frames(),
            present[static_cast<int>(Tier::kDram)] +
                hemem.pending_txn_frames(Tier::kDram));
  EXPECT_EQ(machine.frames(Tier::kNvm).used_frames(),
            present[static_cast<int>(Tier::kNvm)] + hemem.shadow_pages() +
                hemem.pending_txn_frames(Tier::kNvm));
  std::string why;
  EXPECT_TRUE(hemem.CheckNomadInvariants(&why)) << why;
}

TEST(FaultSoak, MultiKindFaultStormHoldsInvariants) {
  // Every fault kind at once, over a longer run. Degrade multipliers stay
  // mild (< 1.5): a 2x NVM slowdown pushes the device past saturation during
  // the serial prefill and the warmup window never ends.
  Machine machine(FaultyItestMachine(
      "seed=23;dma.fail:p=0.2;dma.timeout:p=0.05;migrate.abort:p=0.15;"
      "alloc.fail:p=0.2;pebs.drop:p=0.2;pebs.burst:len=16,max=8;"
      "nvm.degrade:mult=1.3,wear=2;dram.degrade:mult=1.1"));
  Hemem hemem(machine);
  hemem.Start();
  GupsConfig config = VerifiedGups();
  config.updates_per_thread = 400'000;
  GupsBenchmark gups(hemem, config);
  gups.Prepare();
  const GupsResult result = gups.Run();
  EXPECT_GT(result.total_updates, 0u);

  // The storm fired and the recovery paths ran.
  EXPECT_GT(machine.faults().total_injected(), 0u);
  EXPECT_GT(machine.faults().injected(FaultKind::kDmaFail), 0u);
  const HememStats& hs = hemem.hstats();
  EXPECT_GT(hs.migration_aborts + hs.deferred_allocs, 0u);

  // Data survived and frames are conserved: every allocated frame is owned
  // by exactly the pages the table says are present.
  EXPECT_EQ(gups.VerifyData(), 0u);
  EXPECT_GT(gups.verified_words(), 0u);
  uint64_t present[2] = {0, 0};
  machine.page_table().ForEachRegion([&](Region& region) {
    for (const PageEntry& page : region.pages) {
      if (page.present) present[static_cast<int>(page.tier)]++;
    }
  });
  EXPECT_EQ(machine.frames(Tier::kDram).used_frames(),
            present[static_cast<int>(Tier::kDram)]);
  EXPECT_EQ(machine.frames(Tier::kNvm).used_frames(),
            present[static_cast<int>(Tier::kNvm)]);
}

}  // namespace
}  // namespace hemem
