// Fault-injection layer tests: FaultPlan parsing, injector determinism, and
// every consumer recovery path (DMA retry/backoff, CPU-copy fallback,
// migration-abort rollback, deferred policy allocation, PEBS losses, device
// degradation). The golden inertness gate for the *empty* plan lives in
// access_golden_test.cc; these tests pin down behavior when rules fire.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hemem.h"
#include "mem/device.h"
#include "mem/dma.h"
#include "pebs/pebs.h"
#include "sim/fault.h"
#include "test_util.h"
#include "vm/shadow.h"

namespace hemem {
namespace {

FaultPlan MustParse(const std::string& spec) {
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << spec << ": " << error;
  return plan;
}

// --- FaultPlan parsing -------------------------------------------------------

TEST(FaultPlan, ParsesFullSpec) {
  const FaultPlan plan = MustParse(
      "seed=42;dma.fail:p=0.1,start=1ms,end=50ms,max=100;"
      "nvm.degrade:mult=4,wear=0.5;pebs.drop:p=0.05;"
      "pebs.burst:p=0.001,len=256;migrate.abort:p=0.02;"
      "alloc.fail:p=0.1,tier=nvm;dma.timeout:p=0.2");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.rules.size(), 7u);

  EXPECT_EQ(plan.rules[0].kind, FaultKind::kDmaFail);
  EXPECT_DOUBLE_EQ(plan.rules[0].probability, 0.1);
  EXPECT_EQ(plan.rules[0].start, 1 * kMillisecond);
  EXPECT_EQ(plan.rules[0].end, 50 * kMillisecond);
  EXPECT_EQ(plan.rules[0].max_count, 100u);

  EXPECT_EQ(plan.rules[1].kind, FaultKind::kDeviceDegrade);
  EXPECT_EQ(plan.rules[1].target, "nvm");
  EXPECT_DOUBLE_EQ(plan.rules[1].magnitude, 4.0);
  EXPECT_DOUBLE_EQ(plan.rules[1].wear, 0.5);

  EXPECT_EQ(plan.rules[2].kind, FaultKind::kPebsDrop);
  EXPECT_EQ(plan.rules[3].kind, FaultKind::kPebsBurst);
  EXPECT_EQ(plan.rules[3].burst_len, 256u);
  EXPECT_EQ(plan.rules[4].kind, FaultKind::kMigrationAbort);

  EXPECT_EQ(plan.rules[5].kind, FaultKind::kAllocFail);
  EXPECT_EQ(plan.rules[5].target, "nvm");

  // dma.timeout defaults its stall magnitude to 4x the nominal batch time.
  EXPECT_EQ(plan.rules[6].kind, FaultKind::kDmaTimeout);
  EXPECT_DOUBLE_EQ(plan.rules[6].magnitude, 4.0);
}

TEST(FaultPlan, ParsesTimeSuffixesAndTolerance) {
  const FaultPlan plan = MustParse(" seed=3 ; ; dma.fail : start = 250ns , end = 1.5ms ;");
  EXPECT_EQ(plan.seed, 3u);
  ASSERT_EQ(plan.rules.size(), 1u);
  EXPECT_EQ(plan.rules[0].start, 250);
  EXPECT_EQ(plan.rules[0].end, static_cast<SimTime>(1.5 * kMillisecond));
  EXPECT_EQ(MustParse("dma.fail:end=2s").rules[0].end, 2 * kSecond);
  EXPECT_EQ(MustParse("dma.fail:end=3us").rules[0].end, 3 * kMicrosecond);
  EXPECT_TRUE(MustParse("").empty());
  EXPECT_TRUE(MustParse("seed=9").empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const char* bad[] = {
      "bogus.kind",                  // unknown rule name
      "dma.fail:p=0",                // probability out of (0, 1]
      "dma.fail:p=1.5",              // probability out of (0, 1]
      "dma.fail:p=nope",             // not a number
      "dma.fail:frequency=1",        // unknown key
      "dma.fail:p",                  // missing '='
      "dma.fail:start=5x",           // bad time suffix
      "dma.fail:start=2ms,end=1ms",  // empty window
      "dma.fail:max=0",              // zero cap
      "dma.fail:wear=1",             // wear is degrade-only
      "dma.fail:len=8",              // len is burst-only
      "dma.fail:tier=dram",          // tier is alloc-only
      "alloc.fail:tier=ssd",         // unknown tier
      "nvm.degrade:mult=0",          // zero multiplier
      "pebs.burst:len=0",            // zero burst
      "seed=abc",                    // bad seed
  };
  for (const char* spec : bad) {
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::Parse(spec, &plan, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

// --- Injector determinism ----------------------------------------------------

std::vector<bool> FireSchedule(uint64_t seed, int n) {
  FaultPlan plan = MustParse("dma.fail:p=0.5");
  plan.seed = seed;
  FaultInjector injector(plan);
  std::vector<bool> fired;
  for (int i = 0; i < n; ++i) {
    fired.push_back(injector.ShouldFail(FaultKind::kDmaFail, i * 100));
  }
  return fired;
}

TEST(FaultInjector, SameSeedSameSchedule) {
  EXPECT_EQ(FireSchedule(7, 1000), FireSchedule(7, 1000));
}

TEST(FaultInjector, DifferentSeedDifferentSchedule) {
  EXPECT_NE(FireSchedule(7, 1000), FireSchedule(8, 1000));
}

TEST(FaultInjector, ScheduleIndependentOfOtherKinds) {
  // Interleaving opportunities of another kind must not reshuffle this
  // kind's draws: each kind consumes its own ordinal stream.
  FaultPlan plan = MustParse("seed=7;dma.fail:p=0.5;pebs.drop:p=0.5");
  FaultInjector plain(MustParse("seed=7;dma.fail:p=0.5"));
  FaultInjector interleaved(plan);
  for (int i = 0; i < 1000; ++i) {
    interleaved.Fire(FaultKind::kPebsDrop, i);
    EXPECT_EQ(plain.ShouldFail(FaultKind::kDmaFail, i),
              interleaved.ShouldFail(FaultKind::kDmaFail, i))
        << "ordinal " << i;
  }
}

TEST(FaultInjector, EmpiricalRateTracksProbability) {
  FaultInjector injector(MustParse("seed=123;dma.fail:p=0.25"));
  int fired = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    fired += injector.ShouldFail(FaultKind::kDmaFail, 0) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(fired) / kDraws, 0.25, 0.02);
  EXPECT_EQ(injector.opportunities(FaultKind::kDmaFail), static_cast<uint64_t>(kDraws));
  EXPECT_EQ(injector.injected(FaultKind::kDmaFail), static_cast<uint64_t>(fired));
}

TEST(FaultInjector, WindowMaxCountAndTargetFilters) {
  FaultInjector windowed(MustParse("dma.fail:start=1ms,end=2ms"));
  EXPECT_FALSE(windowed.ShouldFail(FaultKind::kDmaFail, kMillisecond / 2));
  EXPECT_TRUE(windowed.ShouldFail(FaultKind::kDmaFail, kMillisecond + 1));
  EXPECT_FALSE(windowed.ShouldFail(FaultKind::kDmaFail, 2 * kMillisecond));

  FaultInjector capped(MustParse("dma.fail:max=3"));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(capped.ShouldFail(FaultKind::kDmaFail, 0)) << i;
  }
  EXPECT_FALSE(capped.ShouldFail(FaultKind::kDmaFail, 0));
  EXPECT_EQ(capped.injected(FaultKind::kDmaFail), 3u);

  FaultInjector targeted(MustParse("alloc.fail:tier=nvm"));
  EXPECT_FALSE(targeted.ShouldFail(FaultKind::kAllocFail, 0, "dram"));
  EXPECT_TRUE(targeted.ShouldFail(FaultKind::kAllocFail, 0, "nvm"));
}

TEST(FaultInjector, DefaultConstructedIsInert) {
  FaultInjector injector;
  EXPECT_FALSE(injector.any_armed());
  EXPECT_FALSE(injector.ShouldFail(FaultKind::kDmaFail, 0));
  EXPECT_EQ(injector.total_injected(), 0u);
}

TEST(FaultInjector, ArmsOnlyPlannedKinds) {
  FaultInjector injector(MustParse("dma.fail;migrate.abort:p=0.5"));
  EXPECT_TRUE(injector.armed(FaultKind::kDmaFail));
  EXPECT_TRUE(injector.armed(FaultKind::kMigrationAbort));
  EXPECT_FALSE(injector.armed(FaultKind::kDmaTimeout));
  EXPECT_FALSE(injector.armed(FaultKind::kPebsDrop));
  EXPECT_FALSE(injector.armed(FaultKind::kAllocFail));
}

// --- DMA retry, backoff, and exhaustion --------------------------------------

struct DmaRig {
  MemoryDevice dram{DeviceParams::Dram(MiB(64))};
  MemoryDevice nvm{DeviceParams::OptaneNvm(MiB(256))};
  DmaEngine engine;
  FaultInjector injector;

  explicit DmaRig(const std::string& spec) : injector(MustParse(spec)) {
    engine.SetFaultInjector(&injector);
  }

  std::vector<CopyRequest> Batch(int n) {
    std::vector<CopyRequest> batch;
    for (int i = 0; i < n; ++i) {
      batch.push_back(CopyRequest{&nvm, &dram, MiB(1)});
    }
    return batch;
  }
};

TEST(DmaRetry, RetriesThenSucceeds) {
  // First two attempts fail (max=2), the third goes through.
  DmaRig rig("dma.fail:max=2");
  std::vector<SimTime> per_request;
  const auto batch = rig.Batch(4);
  const DmaBatchResult result = rig.engine.TryCopyBatch(0, batch, 2, &per_request);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(per_request.size(), 4u);
  EXPECT_EQ(rig.engine.stats().failed_attempts, 2u);
  EXPECT_EQ(rig.engine.stats().retries, 2u);
  EXPECT_EQ(rig.engine.stats().exhausted_batches, 0u);
  EXPECT_EQ(rig.engine.stats().copies, 4u);
  EXPECT_EQ(rig.engine.stats().bytes_copied, 4 * MiB(1));

  // The retried batch lands exactly (2 failed submits + both backoffs) after
  // where a clean engine would put it.
  DmaRig clean("pebs.drop");  // armed kind the DMA engine never consults
  const DmaBatchResult baseline = clean.engine.TryCopyBatch(0, clean.Batch(4), 2);
  EXPECT_TRUE(baseline.ok);
  const DmaParams& p = rig.engine.params();
  EXPECT_EQ(result.done, baseline.done + 2 * p.submit_overhead + 20 * kMicrosecond +
                             40 * kMicrosecond);
}

TEST(DmaRetry, ExhaustionLeavesNoPartialCopy) {
  DmaRig rig("dma.fail");  // p defaults to 1: every attempt fails
  std::vector<SimTime> per_request;
  const auto batch = rig.Batch(4);
  const DmaBatchResult result = rig.engine.TryCopyBatch(1000, batch, 2, &per_request);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_TRUE(per_request.empty());
  EXPECT_EQ(rig.engine.stats().failed_attempts, 3u);
  EXPECT_EQ(rig.engine.stats().retries, 2u);
  EXPECT_EQ(rig.engine.stats().exhausted_batches, 1u);
  EXPECT_EQ(rig.engine.stats().copies, 0u);
  EXPECT_EQ(rig.engine.stats().bytes_copied, 0u);
  // No device bandwidth was occupied either: nothing moved.
  EXPECT_EQ(rig.dram.stats().media_bytes_written, 0u);
  // Give-up time is exact: 3 failed submits plus the 20us and 40us backoffs.
  const DmaParams& p = rig.engine.params();
  EXPECT_EQ(result.done, 1000 + 3 * p.submit_overhead + 60 * kMicrosecond);
}

TEST(DmaRetry, TimeoutStallsBeforeFailing) {
  DmaRig fail("dma.fail");
  DmaRig timeout("dma.timeout");
  const DmaBatchResult fail_result = fail.engine.TryCopyBatch(0, fail.Batch(4), 2);
  const DmaBatchResult timeout_result =
      timeout.engine.TryCopyBatch(0, timeout.Batch(4), 2);
  EXPECT_FALSE(timeout_result.ok);
  EXPECT_EQ(timeout.engine.stats().timeouts, 3u);
  // A timed-out attempt holds the caller for the stall (4x nominal batch
  // time by default) before erroring, so exhaustion lands strictly later
  // than with instant failures.
  EXPECT_GT(timeout_result.done, fail_result.done);
}

// --- PEBS sample loss --------------------------------------------------------

TEST(PebsFaults, DropRuleLosesRecords) {
  PebsParams params;
  params.SetAllPeriods(1);  // every access overflows into a record
  PebsBuffer pebs(params);
  FaultInjector injector(MustParse("pebs.drop"));
  pebs.SetFaultInjector(&injector);
  for (int i = 0; i < 10; ++i) {
    pebs.CountAccess(i * 10, 0x1000 + i, PebsEvent::kStore);
  }
  EXPECT_EQ(pebs.stats().samples_written, 0u);
  EXPECT_EQ(pebs.stats().samples_dropped, 10u);
  EXPECT_EQ(pebs.stats().injected_drops, 10u);
  EXPECT_EQ(pebs.pending(), 0u);
}

TEST(PebsFaults, BurstSwallowsConsecutiveRecords) {
  PebsParams params;
  params.SetAllPeriods(1);
  PebsBuffer pebs(params);
  FaultInjector injector(MustParse("pebs.burst:len=4,max=1"));
  pebs.SetFaultInjector(&injector);
  for (int i = 0; i < 10; ++i) {
    pebs.CountAccess(i * 10, 0x1000 + i, PebsEvent::kStore);
  }
  // One burst of 4 at the first record; the remaining 6 get through.
  EXPECT_EQ(pebs.stats().samples_dropped, 4u);
  EXPECT_EQ(pebs.stats().injected_drops, 4u);
  EXPECT_EQ(pebs.stats().samples_written, 6u);
}

// --- Device degradation ------------------------------------------------------

TEST(DeviceDegradeFault, MultiplierSlowsAccessesInsideWindow) {
  MemoryDevice clean(DeviceParams::OptaneNvm(MiB(64)));
  MemoryDevice degraded(DeviceParams::OptaneNvm(MiB(64)));
  DeviceDegrade degrade;
  degrade.active = true;
  degrade.multiplier = 3.0;
  degrade.end = kMillisecond;
  degraded.SetDegrade(degrade);

  const SimTime clean_done = clean.Access(0, 0, 64, AccessKind::kLoad, 0);
  const SimTime slow_done = degraded.Access(0, 0, 64, AccessKind::kLoad, 0);
  EXPECT_GT(slow_done, clean_done);
  EXPECT_EQ(degraded.stats().degraded_accesses, 1u);

  // Outside the window the device is healthy again: same arithmetic, same
  // completion offset as the clean device.
  const SimTime clean_late = clean.Access(2 * kMillisecond, 0, 64, AccessKind::kLoad, 1);
  const SimTime slow_late = degraded.Access(2 * kMillisecond, 0, 64, AccessKind::kLoad, 1);
  EXPECT_EQ(slow_late, clean_late);
  EXPECT_EQ(degraded.stats().degraded_accesses, 1u);
}

TEST(DeviceDegradeFault, WearAcceleratesDegradation) {
  MemoryDevice steady(DeviceParams::OptaneNvm(MiB(64)));
  MemoryDevice wearing(DeviceParams::OptaneNvm(MiB(64)));
  DeviceDegrade degrade;
  degrade.active = true;
  degrade.multiplier = 2.0;
  steady.SetDegrade(degrade);
  degrade.wear_factor = 10.0;
  wearing.SetDegrade(degrade);

  // Burn half the capacity in writes: the wearing device's multiplier grows
  // to 2 * (1 + 10 * 0.5) = 12x while the steady one stays at 2x.
  steady.BulkTransfer(0, MiB(32), AccessKind::kStore);
  wearing.BulkTransfer(0, MiB(32), AccessKind::kStore);
  const SimTime t = kSecond;  // past the first transfer on both devices
  const SimTime steady_done = steady.BulkTransfer(t, MiB(1), AccessKind::kStore);
  const SimTime worn_done = wearing.BulkTransfer(t, MiB(1), AccessKind::kStore);
  EXPECT_GT(worn_done, steady_done);
}

// --- HeMem recovery paths ----------------------------------------------------

// The golden workload (300k fixed-seed ops, 90% into a hot prefix) under a
// fault plan; returns the manager for stat inspection. Mirrors
// access_golden_test.cc's RunCase so fault-free behavior is pinned there.
struct HememRun {
  std::unique_ptr<Machine> machine;
  std::unique_ptr<Hemem> hemem;
  SimTime end = 0;
};

HememRun RunHememUnderFaults(const std::string& fault_spec, uint64_t ops = 300'000,
                             HememParams params = HememParams{}) {
  constexpr uint64_t kWorkingSet = MiB(128);
  constexpr uint64_t kHotSet = MiB(16);

  HememRun run;
  MachineConfig config = TinyMachineConfig();
  config.fault_plan = MustParse(fault_spec);
  run.machine = std::make_unique<Machine>(config);
  run.hemem = std::make_unique<Hemem>(*run.machine, params);
  run.hemem->Start();
  const uint64_t va = run.hemem->Mmap(kWorkingSet, {.label = "faulted"});

  Rng access_rng(0xbeefull);
  uint64_t op = 0;
  ScriptThread thread([&](ScriptThread& self) mutable {
    const bool hot = access_rng.NextBool(0.9);
    const uint64_t span = hot ? kHotSet : kWorkingSet;
    const uint64_t offset = access_rng.NextBounded(span / 64) * 64;
    const AccessKind kind = op % 3 == 0 ? AccessKind::kStore : AccessKind::kLoad;
    run.hemem->Access(self, va + offset, 64, kind);
    self.Advance(15);
    return ++op < ops;
  });
  run.machine->engine().AddThread(&thread);
  run.end = run.machine->engine().Run();
  return run;
}

// All 128 working-set pages stay resident in exactly one tier with exactly
// one frame each, and the DRAM ownership counter agrees with the allocator.
void ExpectFrameConservation(HememRun& run) {
  const uint64_t dram_used = run.machine->frames(Tier::kDram).used_frames();
  const uint64_t nvm_used = run.machine->frames(Tier::kNvm).used_frames();
  EXPECT_EQ(dram_used + nvm_used, 128u);
  EXPECT_EQ(run.hemem->dram_usage(), dram_used * run.machine->page_bytes());
}

TEST(HememFaultRecovery, MigrationAbortRollsBackCleanly) {
  HememRun run = RunHememUnderFaults("migrate.abort");
  // Every batch aborts before commit: nothing may migrate, yet the run must
  // complete (no deadlock) with all pages still resident in their source
  // tier and every frame accounted for.
  EXPECT_GT(run.hemem->hstats().migration_aborts, 0u);
  EXPECT_EQ(run.hemem->stats().pages_promoted, 0u);
  EXPECT_EQ(run.hemem->stats().pages_demoted, 0u);
  EXPECT_EQ(run.hemem->stats().bytes_migrated, 0u);
  ExpectFrameConservation(run);
}

TEST(HememFaultRecovery, NomadMigrationAbortKeepsSourceAuthoritative) {
  HememParams nomad;
  nomad.migration = HememParams::MigrationMode::kNomad;
  HememRun run = RunHememUnderFaults("migrate.abort", 300'000, nomad);
  // Under nomad the injected abort fires at submission: the copy engine
  // refuses the batch before any transaction starts, so the source mapping
  // — authoritative throughout — simply keeps serving.
  EXPECT_GT(run.hemem->hstats().migration_aborts, 0u);
  EXPECT_EQ(run.hemem->hstats().txn_starts, 0u);
  EXPECT_EQ(run.hemem->stats().pages_promoted, 0u);
  EXPECT_EQ(run.hemem->stats().pages_demoted, 0u);
  EXPECT_EQ(run.hemem->stats().bytes_migrated, 0u);
  EXPECT_EQ(run.hemem->shadow_pages(), 0u);
  EXPECT_EQ(run.hemem->pending_txns(), 0u);
  // Exactly zero writer-visible cost: no transaction means no WP window, so
  // no store ever faulted or waited — unlike exclusive mode, where stores
  // that race an (ultimately aborted) copy still wait out wp_until.
  EXPECT_EQ(run.hemem->stats().wp_faults, 0u);
  EXPECT_EQ(run.hemem->stats().wp_wait_ns, 0u);
  ExpectFrameConservation(run);

  // Exact virtual-time check: with every batch refused at submission the
  // abort cost lands on the policy thread alone, so the application
  // timeline is bit-identical to a run where migration never happens at
  // all (alloc.fail defers every attempt before a batch even forms).
  HememRun no_migrations = RunHememUnderFaults("alloc.fail", 300'000, nomad);
  EXPECT_EQ(run.end, no_migrations.end);
}

TEST(HememFaultRecovery, NomadPartialAbortStillMigratesAndConserves) {
  HememParams params;
  params.migration = HememParams::MigrationMode::kNomad;
  HememRun run = RunHememUnderFaults("seed=13;migrate.abort:p=0.3", 300'000, params);
  // Some batches abort, the rest commit transactionally.
  EXPECT_GT(run.hemem->hstats().migration_aborts, 0u);
  EXPECT_GT(run.hemem->hstats().txn_commits, 0u);
  EXPECT_GT(run.hemem->stats().pages_promoted, 0u);
  // Every frame is a primary mapping, a live shadow, or an in-flight
  // transaction destination; the nomad metadata invariants hold.
  const uint64_t dram_used = run.machine->frames(Tier::kDram).used_frames();
  const uint64_t nvm_used = run.machine->frames(Tier::kNvm).used_frames();
  EXPECT_EQ(dram_used + nvm_used,
            128u + run.hemem->shadow_pages() +
                run.hemem->pending_txn_frames(Tier::kDram) +
                run.hemem->pending_txn_frames(Tier::kNvm));
  EXPECT_EQ(run.hemem->dram_usage(),
            (dram_used - run.hemem->pending_txn_frames(Tier::kDram)) *
                run.machine->page_bytes());
  std::string why;
  EXPECT_TRUE(run.hemem->CheckNomadInvariants(&why)) << why;
}

TEST(HememFaultRecovery, AllocFailureDefersMigration) {
  HememRun run = RunHememUnderFaults("alloc.fail");
  // Every policy-path allocation fails transiently: migrations are deferred
  // rather than crashing, demand faults still map (they bypass the policy
  // allocator), and the run completes.
  EXPECT_GT(run.hemem->hstats().deferred_allocs, 0u);
  EXPECT_EQ(run.hemem->stats().pages_promoted, 0u);
  EXPECT_EQ(run.hemem->stats().missing_faults, 128u);
  ExpectFrameConservation(run);
}

TEST(HememFaultRecovery, DmaExhaustionFallsBackToCpuCopy) {
  HememRun run = RunHememUnderFaults("dma.fail");
  // Every DMA submission fails: batches exhaust their retries and complete
  // through the CPU copier instead, so migration still makes progress.
  const DmaStats& dma = run.machine->dma().stats();
  EXPECT_GT(dma.exhausted_batches, 0u);
  EXPECT_GT(dma.fallback_copies, 0u);
  EXPECT_EQ(dma.copies, 0u);  // nothing moved via the engine itself
  EXPECT_GT(run.hemem->hstats().dma_fallback_batches, 0u);
  EXPECT_GT(run.hemem->stats().pages_promoted, 0u);
  EXPECT_GT(run.hemem->stats().bytes_migrated, 0u);
  ExpectFrameConservation(run);
}

TEST(HememFaultRecovery, PartialDmaFailureStillMigrates) {
  HememRun run = RunHememUnderFaults("seed=5;dma.fail:p=0.5");
  const DmaStats& dma = run.machine->dma().stats();
  EXPECT_GT(dma.retries, 0u);
  EXPECT_GT(run.hemem->stats().pages_promoted, 0u);
  ExpectFrameConservation(run);
}

// --- Shadow memory bookkeeping ----------------------------------------------

TEST(ShadowMemory, FollowsPageAcrossMoveAndDrop) {
  PageTable pt;
  Region* region = pt.MapRegion(1ull << 40, MiB(4), MiB(1), true, "shadow-test");
  ASSERT_NE(region, nullptr);
  PageEntry& entry = region->pages[0];
  entry.present = true;
  entry.tier = Tier::kNvm;
  entry.frame = 7;

  ShadowMemory shadow(MiB(1));
  const uint64_t va = region->base + 64;
  EXPECT_EQ(shadow.Load(pt, va), 0u);  // zero-filled until written
  shadow.Store(pt, va, 0xabcdull);
  EXPECT_EQ(shadow.Load(pt, va), 0xabcdull);

  // Migration commit: contents travel with the (tier, frame) identity.
  shadow.MovePage(Tier::kNvm, 7, Tier::kDram, 3);
  entry.tier = Tier::kDram;
  entry.frame = 3;
  EXPECT_EQ(shadow.Load(pt, va), 0xabcdull);

  // A new owner of the old NVM frame must not see stale contents.
  PageEntry& other = region->pages[1];
  other.present = true;
  other.tier = Tier::kNvm;
  other.frame = 7;
  EXPECT_EQ(shadow.Load(pt, region->base + MiB(1) + 64), 0u);

  // Abort/zero-fill hygiene: dropping releases the backing.
  shadow.DropPage(Tier::kDram, 3);
  EXPECT_EQ(shadow.Load(pt, va), 0u);
  EXPECT_EQ(shadow.pages_backed(), 0u);
}

}  // namespace
}  // namespace hemem
