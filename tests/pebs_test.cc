// Unit tests for the PEBS sampling model: periods, per-event counters,
// buffer overflow drops, drain semantics.

#include <gtest/gtest.h>

#include "pebs/pebs.h"

namespace hemem {
namespace {

PebsParams SmallParams(uint64_t period, size_t capacity) {
  PebsParams params;
  params.SetAllPeriods(period);
  params.buffer_capacity = capacity;
  return params;
}

TEST(Pebs, SamplesEveryPeriodthAccess) {
  PebsBuffer pebs(SmallParams(10, 1024));
  for (int i = 0; i < 100; ++i) {
    pebs.CountAccess(i, 0x1000 + i, PebsEvent::kStore);
  }
  EXPECT_EQ(pebs.stats().samples_written, 10u);
  EXPECT_EQ(pebs.stats().accesses_counted, 100u);
}

TEST(Pebs, CountersArePerEvent) {
  PebsBuffer pebs(SmallParams(10, 1024));
  // 9 stores + 9 NVM loads: neither counter reaches its period.
  for (int i = 0; i < 9; ++i) {
    pebs.CountAccess(i, 0, PebsEvent::kStore);
    pebs.CountAccess(i, 0, PebsEvent::kNvmLoad);
  }
  EXPECT_EQ(pebs.stats().samples_written, 0u);
  pebs.CountAccess(9, 0, PebsEvent::kStore);
  EXPECT_EQ(pebs.stats().samples_written, 1u);
}

TEST(Pebs, RecordCarriesAddressEventTime) {
  PebsBuffer pebs(SmallParams(3, 16));
  pebs.CountAccess(100, 0xa, PebsEvent::kDramLoad);
  pebs.CountAccess(200, 0xb, PebsEvent::kDramLoad);
  pebs.CountAccess(300, 0xc, PebsEvent::kDramLoad);
  std::vector<PebsRecord> out;
  ASSERT_EQ(pebs.Drain(out, 10), 1u);
  EXPECT_EQ(out[0].va, 0xcu);  // the overflowing access is sampled
  EXPECT_EQ(out[0].event, PebsEvent::kDramLoad);
  EXPECT_EQ(out[0].time, 300);
}

TEST(Pebs, DropsWhenBufferFull) {
  PebsBuffer pebs(SmallParams(1, 4));  // sample every access, tiny buffer
  for (int i = 0; i < 10; ++i) {
    pebs.CountAccess(i, i, PebsEvent::kStore);
  }
  EXPECT_EQ(pebs.stats().samples_written, 4u);
  EXPECT_EQ(pebs.stats().samples_dropped, 6u);
  EXPECT_NEAR(pebs.stats().DropRate(), 0.6, 1e-9);
}

TEST(Pebs, DrainFreesSpace) {
  PebsBuffer pebs(SmallParams(1, 4));
  for (int i = 0; i < 4; ++i) {
    pebs.CountAccess(i, i, PebsEvent::kStore);
  }
  std::vector<PebsRecord> out;
  EXPECT_EQ(pebs.Drain(out, 2), 2u);
  EXPECT_EQ(pebs.pending(), 2u);
  pebs.CountAccess(10, 10, PebsEvent::kStore);
  EXPECT_EQ(pebs.stats().samples_dropped, 0u);
}

TEST(Pebs, DrainRespectsMax) {
  PebsBuffer pebs(SmallParams(1, 64));
  for (int i = 0; i < 20; ++i) {
    pebs.CountAccess(i, i, PebsEvent::kStore);
  }
  std::vector<PebsRecord> out;
  EXPECT_EQ(pebs.Drain(out, 5), 5u);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(pebs.Drain(out, 100), 15u);
  EXPECT_EQ(out.size(), 20u);
}

TEST(Pebs, DrainIsFifo) {
  PebsBuffer pebs(SmallParams(1, 64));
  for (int i = 0; i < 5; ++i) {
    pebs.CountAccess(i, 0x100 + i, PebsEvent::kNvmLoad);
  }
  std::vector<PebsRecord> out;
  pebs.Drain(out, 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)].va, 0x100u + static_cast<unsigned>(i));
  }
}

TEST(Pebs, DropRateZeroWhenEmpty) {
  PebsBuffer pebs;
  EXPECT_DOUBLE_EQ(pebs.stats().DropRate(), 0.0);
}


TEST(Pebs, CountersArePerContext) {
  PebsBuffer pebs(SmallParams(10, 1024));
  // 16 contexts each contribute 5 accesses: no single context reaches the
  // period of 10, so nothing is sampled (a global counter would fire 8x).
  for (int round = 0; round < 5; ++round) {
    for (uint32_t ctx = 0; ctx < 16; ++ctx) {
      pebs.CountAccess(0, ctx, PebsEvent::kStore, ctx);
    }
  }
  EXPECT_EQ(pebs.stats().samples_written, 0u);
  // Five more rounds push every context over its own period.
  for (int round = 0; round < 5; ++round) {
    for (uint32_t ctx = 0; ctx < 16; ++ctx) {
      pebs.CountAccess(0, ctx, PebsEvent::kStore, ctx);
    }
  }
  EXPECT_EQ(pebs.stats().samples_written, 16u);
}

TEST(Pebs, ContextSamplingIsFairAcrossThreads) {
  PebsBuffer pebs(SmallParams(100, 1 << 16));
  // Interleave 16 contexts round-robin; each should be sampled equally.
  for (int i = 0; i < 16000; ++i) {
    const uint32_t ctx = static_cast<uint32_t>(i % 16);
    pebs.CountAccess(0, ctx, PebsEvent::kNvmLoad, ctx);
  }
  std::vector<PebsRecord> out;
  pebs.Drain(out, 1 << 16);
  std::vector<int> per_ctx(16, 0);
  for (const PebsRecord& r : out) {
    per_ctx[r.va]++;  // va was set to the context id above
  }
  for (const int n : per_ctx) {
    EXPECT_EQ(n, 10);  // 1000 accesses per context / period 100
  }
}

// ---- Sharded-epoch counting (pebs.h "Sharded epochs") ----------------------

// A schedule entry: one counted access with its serial execution time. The
// schedule is built round-major (all streams at round r before round r+1),
// which is the serial order — ties on `t` across streams resolve in stream
// order, exactly the engine's heap tiebreak.
struct ShardAccess {
  SimTime t = 0;
  uint64_t va = 0;
  PebsEvent ev = PebsEvent::kNvmLoad;
  uint32_t stream = 0;
};

std::vector<ShardAccess> MakeSchedule(int n_streams, int rounds) {
  std::vector<ShardAccess> sched;
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int r = 0; r < rounds; ++r) {
    for (int s = 0; s < n_streams; ++s) {
      x ^= x >> 12;
      x ^= x << 25;
      x ^= x >> 27;
      ShardAccess a;
      a.t = static_cast<SimTime>(r) * 10;  // deliberate cross-stream ties
      a.va = 0x10000u * static_cast<uint64_t>(s + 1) + (x % 256) * 64;
      a.ev = static_cast<PebsEvent>(x % 3);
      a.stream = static_cast<uint32_t>(s);
      sched.push_back(a);
    }
  }
  return sched;
}

void ExpectSameBufferState(PebsBuffer& serial, PebsBuffer& sharded) {
  EXPECT_EQ(sharded.stats().accesses_counted, serial.stats().accesses_counted);
  EXPECT_EQ(sharded.stats().samples_written, serial.stats().samples_written);
  EXPECT_EQ(sharded.stats().samples_dropped, serial.stats().samples_dropped);
  ASSERT_EQ(sharded.pending(), serial.pending());
  std::vector<PebsRecord> a;
  std::vector<PebsRecord> b;
  serial.Drain(a, serial.pending());
  sharded.Drain(b, sharded.pending());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(b[i].va, a[i].va);
    EXPECT_EQ(static_cast<int>(b[i].event), static_cast<int>(a[i].event));
    EXPECT_EQ(b[i].time, a[i].time);
  }
}

// Per-shard counting + barrier merge must reproduce the serial ring byte for
// byte: same records, same order, same timestamps, same drop accounting —
// for 2, 4, and 8 shards. The capacity is small enough that the ring fills,
// so the merge's replay order decides *which* overflows survive; the sharded
// side additionally brackets accesses in quantum windows (the batched fast
// path), which must be semantics-free.
TEST(PebsShard, MergeReproducesSerialRingAcrossShardCounts) {
  for (const int n_shards : {2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(n_shards));
    const std::vector<ShardAccess> sched = MakeSchedule(n_shards, 600);

    PebsBuffer serial(SmallParams(7, 32));
    for (const ShardAccess& a : sched) {
      serial.CountAccess(a.t, a.va, a.ev, a.stream);
    }

    PebsBuffer sharded(SmallParams(7, 32));
    std::vector<PebsBuffer::ShardState> states(static_cast<size_t>(n_shards));
    std::vector<int> since_quantum(static_cast<size_t>(n_shards), 0);
    for (const ShardAccess& a : sched) {
      PebsBuffer::ShardState& shard = states[a.stream];
      // Re-open a quantum window every 17 accesses, mimicking the engine's
      // periodic quantum brackets inside an epoch slice.
      if (since_quantum[a.stream]++ % 17 == 0) {
        sharded.BeginQuantumShard(shard, a.stream);
      }
      sharded.CountAccessShard(shard, a.t, a.t, a.va, a.ev, a.stream);
    }
    std::vector<PebsBuffer::ShardState*> ptrs;
    for (PebsBuffer::ShardState& s : states) {
      PebsBuffer::EndQuantumShard(s);
      ptrs.push_back(&s);
    }
    sharded.MergeShardSamples(ptrs.data(), ptrs.size());

    ExpectSameBufferState(serial, sharded);
  }
}

// Two consecutive epochs with a partial drain in between: the second epoch
// re-binds fresh ShardStates (counter rows round-trip through the write-back)
// and its replay lands in a ring whose head has wrapped. A shard that stays
// idle in an epoch (never bound) must contribute nothing.
TEST(PebsShard, MergeAcrossEpochsWithDrainsAndIdleShards) {
  constexpr int kShards = 4;
  const std::vector<ShardAccess> sched = MakeSchedule(kShards, 400);
  const size_t half = sched.size() / 2;

  PebsBuffer serial(SmallParams(5, 16));
  PebsBuffer sharded(SmallParams(5, 16));
  std::vector<PebsRecord> sink;

  size_t begin = 0;
  for (const size_t end : {half, sched.size()}) {
    for (size_t i = begin; i < end; ++i) {
      const ShardAccess& a = sched[i];
      serial.CountAccess(a.t, a.va, a.ev, a.stream);
    }
    std::vector<PebsBuffer::ShardState> states(kShards + 1);  // last stays idle
    for (size_t i = begin; i < end; ++i) {
      const ShardAccess& a = sched[i];
      sharded.CountAccessShard(states[a.stream], a.t, a.t, a.va, a.ev, a.stream);
    }
    std::vector<PebsBuffer::ShardState*> ptrs;
    for (PebsBuffer::ShardState& s : states) {
      ptrs.push_back(&s);
    }
    sharded.MergeShardSamples(ptrs.data(), ptrs.size());
    ASSERT_EQ(sharded.pending(), serial.pending());
    if (end == half) {
      // Drain most of both rings so the second epoch wraps head_.
      const size_t take = serial.pending() - 2;
      serial.Drain(sink, take);
      sharded.Drain(sink, take);
    }
    begin = end;
  }
  ExpectSameBufferState(serial, sharded);
}

class PebsPeriodTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PebsPeriodTest, SampleCountMatchesPeriod) {
  const uint64_t period = GetParam();
  PebsBuffer pebs(SmallParams(period, 1 << 20));
  constexpr uint64_t kAccesses = 100000;
  for (uint64_t i = 0; i < kAccesses; ++i) {
    pebs.CountAccess(static_cast<SimTime>(i), i, PebsEvent::kStore);
  }
  EXPECT_EQ(pebs.stats().samples_written, kAccesses / period);
}

INSTANTIATE_TEST_SUITE_P(Periods, PebsPeriodTest,
                         ::testing::Values(1u, 10u, 100u, 1000u, 5000u, 50000u));

}  // namespace
}  // namespace hemem
