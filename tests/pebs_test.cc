// Unit tests for the PEBS sampling model: periods, per-event counters,
// buffer overflow drops, drain semantics.

#include <gtest/gtest.h>

#include "pebs/pebs.h"

namespace hemem {
namespace {

PebsParams SmallParams(uint64_t period, size_t capacity) {
  PebsParams params;
  params.SetAllPeriods(period);
  params.buffer_capacity = capacity;
  return params;
}

TEST(Pebs, SamplesEveryPeriodthAccess) {
  PebsBuffer pebs(SmallParams(10, 1024));
  for (int i = 0; i < 100; ++i) {
    pebs.CountAccess(i, 0x1000 + i, PebsEvent::kStore);
  }
  EXPECT_EQ(pebs.stats().samples_written, 10u);
  EXPECT_EQ(pebs.stats().accesses_counted, 100u);
}

TEST(Pebs, CountersArePerEvent) {
  PebsBuffer pebs(SmallParams(10, 1024));
  // 9 stores + 9 NVM loads: neither counter reaches its period.
  for (int i = 0; i < 9; ++i) {
    pebs.CountAccess(i, 0, PebsEvent::kStore);
    pebs.CountAccess(i, 0, PebsEvent::kNvmLoad);
  }
  EXPECT_EQ(pebs.stats().samples_written, 0u);
  pebs.CountAccess(9, 0, PebsEvent::kStore);
  EXPECT_EQ(pebs.stats().samples_written, 1u);
}

TEST(Pebs, RecordCarriesAddressEventTime) {
  PebsBuffer pebs(SmallParams(3, 16));
  pebs.CountAccess(100, 0xa, PebsEvent::kDramLoad);
  pebs.CountAccess(200, 0xb, PebsEvent::kDramLoad);
  pebs.CountAccess(300, 0xc, PebsEvent::kDramLoad);
  std::vector<PebsRecord> out;
  ASSERT_EQ(pebs.Drain(out, 10), 1u);
  EXPECT_EQ(out[0].va, 0xcu);  // the overflowing access is sampled
  EXPECT_EQ(out[0].event, PebsEvent::kDramLoad);
  EXPECT_EQ(out[0].time, 300);
}

TEST(Pebs, DropsWhenBufferFull) {
  PebsBuffer pebs(SmallParams(1, 4));  // sample every access, tiny buffer
  for (int i = 0; i < 10; ++i) {
    pebs.CountAccess(i, i, PebsEvent::kStore);
  }
  EXPECT_EQ(pebs.stats().samples_written, 4u);
  EXPECT_EQ(pebs.stats().samples_dropped, 6u);
  EXPECT_NEAR(pebs.stats().DropRate(), 0.6, 1e-9);
}

TEST(Pebs, DrainFreesSpace) {
  PebsBuffer pebs(SmallParams(1, 4));
  for (int i = 0; i < 4; ++i) {
    pebs.CountAccess(i, i, PebsEvent::kStore);
  }
  std::vector<PebsRecord> out;
  EXPECT_EQ(pebs.Drain(out, 2), 2u);
  EXPECT_EQ(pebs.pending(), 2u);
  pebs.CountAccess(10, 10, PebsEvent::kStore);
  EXPECT_EQ(pebs.stats().samples_dropped, 0u);
}

TEST(Pebs, DrainRespectsMax) {
  PebsBuffer pebs(SmallParams(1, 64));
  for (int i = 0; i < 20; ++i) {
    pebs.CountAccess(i, i, PebsEvent::kStore);
  }
  std::vector<PebsRecord> out;
  EXPECT_EQ(pebs.Drain(out, 5), 5u);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(pebs.Drain(out, 100), 15u);
  EXPECT_EQ(out.size(), 20u);
}

TEST(Pebs, DrainIsFifo) {
  PebsBuffer pebs(SmallParams(1, 64));
  for (int i = 0; i < 5; ++i) {
    pebs.CountAccess(i, 0x100 + i, PebsEvent::kNvmLoad);
  }
  std::vector<PebsRecord> out;
  pebs.Drain(out, 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)].va, 0x100u + static_cast<unsigned>(i));
  }
}

TEST(Pebs, DropRateZeroWhenEmpty) {
  PebsBuffer pebs;
  EXPECT_DOUBLE_EQ(pebs.stats().DropRate(), 0.0);
}


TEST(Pebs, CountersArePerContext) {
  PebsBuffer pebs(SmallParams(10, 1024));
  // 16 contexts each contribute 5 accesses: no single context reaches the
  // period of 10, so nothing is sampled (a global counter would fire 8x).
  for (int round = 0; round < 5; ++round) {
    for (uint32_t ctx = 0; ctx < 16; ++ctx) {
      pebs.CountAccess(0, ctx, PebsEvent::kStore, ctx);
    }
  }
  EXPECT_EQ(pebs.stats().samples_written, 0u);
  // Five more rounds push every context over its own period.
  for (int round = 0; round < 5; ++round) {
    for (uint32_t ctx = 0; ctx < 16; ++ctx) {
      pebs.CountAccess(0, ctx, PebsEvent::kStore, ctx);
    }
  }
  EXPECT_EQ(pebs.stats().samples_written, 16u);
}

TEST(Pebs, ContextSamplingIsFairAcrossThreads) {
  PebsBuffer pebs(SmallParams(100, 1 << 16));
  // Interleave 16 contexts round-robin; each should be sampled equally.
  for (int i = 0; i < 16000; ++i) {
    const uint32_t ctx = static_cast<uint32_t>(i % 16);
    pebs.CountAccess(0, ctx, PebsEvent::kNvmLoad, ctx);
  }
  std::vector<PebsRecord> out;
  pebs.Drain(out, 1 << 16);
  std::vector<int> per_ctx(16, 0);
  for (const PebsRecord& r : out) {
    per_ctx[r.va]++;  // va was set to the context id above
  }
  for (const int n : per_ctx) {
    EXPECT_EQ(n, 10);  // 1000 accesses per context / period 100
  }
}

class PebsPeriodTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PebsPeriodTest, SampleCountMatchesPeriod) {
  const uint64_t period = GetParam();
  PebsBuffer pebs(SmallParams(period, 1 << 20));
  constexpr uint64_t kAccesses = 100000;
  for (uint64_t i = 0; i < kAccesses; ++i) {
    pebs.CountAccess(static_cast<SimTime>(i), i, PebsEvent::kStore);
  }
  EXPECT_EQ(pebs.stats().samples_written, kAccesses / period);
}

INSTANTIATE_TEST_SUITE_P(Periods, PebsPeriodTest,
                         ::testing::Values(1u, 10u, 100u, 1000u, 5000u, 50000u));

}  // namespace
}  // namespace hemem
