// Batched-execution equivalence suite.
//
// The engine's batched slice execution (Engine run quanta +
// TieredMemoryManager::RunAccessQuantum + MemoryDevice::BatchRun + the PEBS
// quantum budget) claims to be a pure optimization: bit-identical results no
// matter whether batching is on or off, and no matter the quantum size K.
// This suite proves it over the full golden configuration space — every
// system, tracing on and off, empty and non-empty fault plans — by running
// one fixed workload unbatched (batching forced off: the historical
// one-op-per-slice shape) and comparing against batching forced on with
// K in {1, 7, 64, 1024}. The comparison covers the workload fingerprint
// (final virtual time + ManagerStats) AND the entire metrics snapshot, which
// folds in device stats (loads/stores/media bytes/queue delays/sequential
// hits), PEBS stats, fault-injector opportunity counts, DMA stats, and TLB
// stats — so a single deferred or double-counted increment anywhere fails
// the suite.

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/hemem.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "test_util.h"
#include "tier/memory_mode.h"
#include "tier/nimble.h"
#include "tier/plain.h"
#include "tier/quantum_thread.h"
#include "tier/thermostat.h"
#include "tier/xmem.h"

namespace hemem {
namespace {

const char* const kSystems[] = {"DRAM",       "MM",    "Nimble",       "X-Mem",
                                "Thermostat", "HeMem", "HeMem-PT-Sync"};

// A live plan whose windows intersect the run: degrade windows on both
// devices flip the device fast path off and back on mid-run, PEBS drops
// consume injector draws at overflow points, and migration aborts exercise
// rollback under batched foreground execution.
const char kFaultSpec[] =
    "seed=7;dram.degrade:mult=2,start=1ms,end=3ms;"
    "nvm.degrade:mult=3,start=2ms,end=9ms;pebs.drop:p=0.2;migrate.abort:p=0.05";

std::unique_ptr<TieredMemoryManager> MakeSystem(const std::string& kind, Machine& machine) {
  if (kind == "DRAM") {
    return std::make_unique<PlainMemory>(machine, Tier::kDram, /*overcommit=*/true);
  }
  if (kind == "MM") {
    return std::make_unique<MemoryMode>(machine);
  }
  if (kind == "Nimble") {
    return std::make_unique<Nimble>(machine);
  }
  if (kind == "X-Mem") {
    return std::make_unique<XMem>(machine);
  }
  if (kind == "Thermostat") {
    return std::make_unique<Thermostat>(machine);
  }
  HememParams params;
  if (kind == "HeMem-PT-Sync") {
    params.scan_mode = HememParams::ScanMode::kPtSync;
  }
  return std::make_unique<Hemem>(machine, params);
}

struct RunResult {
  SimTime end_ns = 0;
  ManagerStats stats;
  std::vector<obs::MetricEntry> metrics;
};

// Same generator shape as the AccessGolden workload, smaller op count so the
// 7 systems x 4 configs x 5 modes product stays inside the slow-test budget.
RunResult RunCase(const std::string& system, bool tracing, const std::string& fault_spec,
                  bool batched, uint32_t quantum_ops) {
  constexpr uint64_t kWorkingSet = MiB(128);
  constexpr uint64_t kHotSet = MiB(16);
  constexpr uint64_t kOps = 120'000;

  MachineConfig config = TinyMachineConfig();
  if (!fault_spec.empty()) {
    std::string error;
    EXPECT_TRUE(FaultPlan::Parse(fault_spec, &config.fault_plan, &error)) << error;
  }
  Machine machine(config);
  machine.engine().set_batching(batched);
  machine.engine().set_quantum_ops(quantum_ops);
  std::optional<obs::MetricsSampler> sampler;
  if (tracing) {
    machine.EnableTracing();
    sampler.emplace(machine.metrics(), kMillisecond);
    machine.engine().AddObserverThread(&*sampler);
  }
  std::unique_ptr<TieredMemoryManager> manager = MakeSystem(system, machine);
  manager->Start();
  const uint64_t va = manager->Mmap(kWorkingSet, {.label = "equiv"});

  Rng access_rng(0xbeefull);
  uint64_t op = 0;
  auto gen = [&](TieredMemoryManager::AccessOp& next) {
    if (op == kOps) {
      return false;
    }
    const bool hot = access_rng.NextBool(0.9);
    const uint64_t span = hot ? kHotSet : kWorkingSet;
    next.va = va + access_rng.NextBounded(span / 64) * 64;
    next.size = 64;
    next.kind = op % 3 == 0 ? AccessKind::kStore : AccessKind::kLoad;
    ++op;
    return true;
  };
  QuantumAccessThread thread(*manager, gen, 15);
  machine.engine().AddThread(&thread);

  RunResult result;
  result.end_ns = machine.engine().Run();
  result.stats = manager->stats();
  result.metrics = machine.metrics().Snapshot().entries();
  return result;
}

void ExpectIdentical(const RunResult& expect, const RunResult& actual) {
  EXPECT_EQ(actual.end_ns, expect.end_ns);
  const ManagerStats& a = actual.stats;
  const ManagerStats& e = expect.stats;
  EXPECT_EQ(a.missing_faults, e.missing_faults);
  EXPECT_EQ(a.wp_faults, e.wp_faults);
  EXPECT_EQ(a.wp_wait_ns, e.wp_wait_ns);
  EXPECT_EQ(a.pages_promoted, e.pages_promoted);
  EXPECT_EQ(a.pages_demoted, e.pages_demoted);
  EXPECT_EQ(a.bytes_migrated, e.bytes_migrated);

  // Full metrics tree: identical names in identical order with bitwise-equal
  // values. Doubles compare exactly — both runs perform the same arithmetic
  // on the same operands, or they fail here.
  ASSERT_EQ(actual.metrics.size(), expect.metrics.size());
  for (size_t i = 0; i < expect.metrics.size(); ++i) {
    const obs::MetricEntry& ae = actual.metrics[i];
    const obs::MetricEntry& ee = expect.metrics[i];
    SCOPED_TRACE(ee.name);
    EXPECT_EQ(ae.name, ee.name);
    EXPECT_EQ(static_cast<int>(ae.value.kind), static_cast<int>(ee.value.kind));
    EXPECT_EQ(ae.value.u, ee.value.u);
    EXPECT_EQ(ae.value.d, ee.value.d);
  }
}

struct PlanConfig {
  const char* label;
  bool tracing;
  const char* fault_spec;
};

constexpr PlanConfig kConfigs[] = {
    {"plain", false, ""},
    {"tracing", true, ""},
    {"faults", false, kFaultSpec},
    {"tracing+faults", true, kFaultSpec},
};

class BatchEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchEquivalence, BatchedMatchesUnbatchedAcrossConfigsAndQuanta) {
  const std::string system = GetParam();
  for (const PlanConfig& config : kConfigs) {
    SCOPED_TRACE(config.label);
    const RunResult reference =
        RunCase(system, config.tracing, config.fault_spec, /*batched=*/false,
                /*quantum_ops=*/1024);
    for (const uint32_t k : {1u, 7u, 64u, 1024u}) {
      SCOPED_TRACE("K=" + std::to_string(k));
      const RunResult batched =
          RunCase(system, config.tracing, config.fault_spec, /*batched=*/true, k);
      ExpectIdentical(reference, batched);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, BatchEquivalence, ::testing::ValuesIn(kSystems),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace hemem
