// Sharded-engine equivalence suite.
//
// The parallel engine (DESIGN.md "Parallel engine & epoch barriers") claims
// sharded epoch execution is a pure optimization: bit-identical results at
// any --host-workers count, for every system, with tracing on or off and
// fault plans live or empty. This suite proves it by running a fixed
// multi-thread workload serially (workers=1, the reference engine) and
// comparing against workers in {2, 4} on the workload fingerprint (final
// virtual time + per-thread clocks + ManagerStats) AND the entire metrics
// snapshot, which folds in device stats (loads/stores/media bytes/queue
// delays/sequential hits), PEBS stats, fault-injector opportunity counts,
// DMA stats, and TLB stats. Parallel-only metrics (engine.epoch.*,
// engine.worker.*) are stripped before comparing — they exist only when
// sharding is enabled and describe host execution, not simulated behavior.
//
// The suite also checks the engagement story both ways: managers that opt
// into sharded epochs (DRAM, X-Mem) or earn them conditionally between
// policy passes (HeMem in every scan/migration mode — PEBS sampling counts
// into shard-local state and replays deferred records at the barrier, see
// DESIGN.md "Sampling under epochs") must actually execute epochs, and
// managers that cannot (Thermostat's shared per-page counters, MM's probe
// state, Nimble) must report zero — a silent serial fallback would make the
// equality trivial, and a silently sharded unsafe system would be a
// correctness hole.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/gups.h"
#include "common/rng.h"
#include "core/hemem.h"
#include "mem/device.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "test_util.h"
#include "tier/memory_mode.h"
#include "tier/nimble.h"
#include "tier/plain.h"
#include "tier/quantum_thread.h"
#include "tier/thermostat.h"
#include "tier/xmem.h"

namespace hemem {
namespace {

const char* const kSystems[] = {"DRAM",  "MM",         "Nimble",
                                "X-Mem", "Thermostat", "HeMem",
                                "HeMem-Nomad",   "HeMem-PT-Sync",
                                "HeMem-PT-Sync-Nomad"};

// Systems whose managers opt into sharded epochs: eager mapping, no
// migrations, no background actors (tier/plain.cc, tier/xmem.cc).
bool ParallelSafe(const std::string& system) {
  return system == "DRAM" || system == "X-Mem";
}

// Systems that are *conditionally* eligible: the manager grants epochs
// between policy passes whenever no WP window and no migration transaction
// is outstanding (Hemem::EpochEligible). PT-scan HeMem qualifies because
// hotness flows through A/D bits (an allowed in-epoch write); PEBS HeMem
// qualifies because sampling runs shard-locally and the barrier replays
// deferred records in serial order (pebs.h "Sharded epochs"). Nomad mode
// stays eligible because pages with only a clean shadow carry no WP —
// outstanding transactions, not shadows, are what pause sharding.
bool ConditionallyEligible(const std::string& system) {
  return system == "HeMem" || system == "HeMem-Nomad" ||
         system == "HeMem-PT-Sync" || system == "HeMem-PT-Sync-Nomad";
}

// Same live plan as the batch-equivalence suite: degrade windows on both
// devices (which the epoch gate must refuse to cross), PEBS drops, and
// migration aborts.
const char kFaultSpec[] =
    "seed=7;dram.degrade:mult=2,start=1ms,end=3ms;"
    "nvm.degrade:mult=3,start=2ms,end=9ms;pebs.drop:p=0.2;migrate.abort:p=0.05";

std::unique_ptr<TieredMemoryManager> MakeSystem(const std::string& kind, Machine& machine) {
  if (kind == "DRAM") {
    return std::make_unique<PlainMemory>(machine, Tier::kDram, /*overcommit=*/true);
  }
  if (kind == "MM") {
    return std::make_unique<MemoryMode>(machine);
  }
  if (kind == "Nimble") {
    return std::make_unique<Nimble>(machine);
  }
  if (kind == "X-Mem") {
    return std::make_unique<XMem>(machine);
  }
  if (kind == "Thermostat") {
    return std::make_unique<Thermostat>(machine);
  }
  HememParams params;
  if (kind == "HeMem-PT-Sync" || kind == "HeMem-PT-Sync-Nomad") {
    params.scan_mode = HememParams::ScanMode::kPtSync;
  }
  if (kind == "HeMem-Nomad" || kind == "HeMem-PT-Sync-Nomad") {
    params.migration = HememParams::MigrationMode::kNomad;
  }
  return std::make_unique<Hemem>(machine, params);
}

constexpr uint64_t kWorkingSet = MiB(128);
constexpr uint64_t kHotSet = MiB(16);
constexpr uint64_t kTotalOps = 120'000;

// Self-contained per-thread generator: private Rng and op counter, so the
// thread qualifies as parallel-pure (no shared mutable state on the access
// path). Thread t draws from its own stream; the 90/10 hot/cold shape
// matches the golden workloads.
struct ThreadGen {
  uint64_t va = 0;
  uint64_t ops = 0;
  Rng rng{0};
  uint64_t op = 0;
  bool operator()(TieredMemoryManager::AccessOp& next) {
    if (op == ops) {
      return false;
    }
    const bool hot = rng.NextBool(0.9);
    const uint64_t span = hot ? kHotSet : kWorkingSet;
    next.va = va + rng.NextBounded(span / 64) * 64;
    next.size = 64;
    next.kind = op % 3 == 0 ? AccessKind::kStore : AccessKind::kLoad;
    ++op;
    return true;
  }
};

struct RunResult {
  SimTime end_ns = 0;
  std::vector<SimTime> thread_end_ns;
  ManagerStats stats;
  std::vector<obs::MetricEntry> metrics;
  Engine::EpochStats epochs;
};

bool HostExecutionMetric(const std::string& name) {
  return name.rfind("engine.epoch.", 0) == 0 || name.rfind("engine.worker.", 0) == 0;
}

RunResult RunCase(const std::string& system, bool tracing, const std::string& fault_spec,
                  int workers, int n_threads, uint32_t quantum_ops = 1024) {
  MachineConfig config = TinyMachineConfig();
  if (!fault_spec.empty()) {
    std::string error;
    EXPECT_TRUE(FaultPlan::Parse(fault_spec, &config.fault_plan, &error)) << error;
  }
  Machine machine(config);
  machine.EnableHostWorkers(workers);
  machine.engine().set_quantum_ops(quantum_ops);
  std::optional<obs::MetricsSampler> sampler;
  if (tracing) {
    machine.EnableTracing();
    sampler.emplace(machine.metrics(), kMillisecond);
    machine.engine().AddObserverThread(&*sampler);
  }
  std::unique_ptr<TieredMemoryManager> manager = MakeSystem(system, machine);
  manager->Start();
  const uint64_t va = manager->Mmap(kWorkingSet, {.label = "equiv"});

  std::vector<std::unique_ptr<QuantumAccessThread<ThreadGen>>> threads;
  for (int t = 0; t < n_threads; ++t) {
    ThreadGen gen{va, kTotalOps / static_cast<uint64_t>(n_threads),
                  Rng(0xbeefull + 0x9e3779b9ull * static_cast<uint64_t>(t)), 0};
    threads.push_back(std::make_unique<QuantumAccessThread<ThreadGen>>(
        *manager, gen, 15, /*charge_compute=*/false, "t#" + std::to_string(t)));
    threads.back()->set_parallel_pure(true);
    machine.engine().AddThread(threads.back().get());
  }

  RunResult result;
  result.end_ns = machine.engine().Run();
  for (const auto& thread : threads) {
    result.thread_end_ns.push_back(thread->now());
  }
  result.stats = manager->stats();
  const obs::MetricsSnapshot snapshot = machine.metrics().Snapshot();
  for (const obs::MetricEntry& entry : snapshot.entries()) {
    if (!HostExecutionMetric(entry.name)) {
      result.metrics.push_back(entry);
    }
  }
  result.epochs = machine.engine().epoch_stats();
  return result;
}

void ExpectIdentical(const RunResult& expect, const RunResult& actual) {
  EXPECT_EQ(actual.end_ns, expect.end_ns);
  EXPECT_EQ(actual.thread_end_ns, expect.thread_end_ns);
  const ManagerStats& a = actual.stats;
  const ManagerStats& e = expect.stats;
  EXPECT_EQ(a.missing_faults, e.missing_faults);
  EXPECT_EQ(a.wp_faults, e.wp_faults);
  EXPECT_EQ(a.wp_wait_ns, e.wp_wait_ns);
  EXPECT_EQ(a.pages_promoted, e.pages_promoted);
  EXPECT_EQ(a.pages_demoted, e.pages_demoted);
  EXPECT_EQ(a.bytes_migrated, e.bytes_migrated);

  // Full (host-execution-stripped) metrics tree: identical names in
  // identical order with bitwise-equal values.
  ASSERT_EQ(actual.metrics.size(), expect.metrics.size());
  for (size_t i = 0; i < expect.metrics.size(); ++i) {
    const obs::MetricEntry& ae = actual.metrics[i];
    const obs::MetricEntry& ee = expect.metrics[i];
    SCOPED_TRACE(ee.name);
    EXPECT_EQ(ae.name, ee.name);
    EXPECT_EQ(static_cast<int>(ae.value.kind), static_cast<int>(ee.value.kind));
    EXPECT_EQ(ae.value.u, ee.value.u);
    EXPECT_EQ(ae.value.d, ee.value.d);
  }
}

struct PlanConfig {
  const char* label;
  bool tracing;
  const char* fault_spec;
};

constexpr PlanConfig kConfigs[] = {
    {"plain", false, ""},
    {"tracing", true, ""},
    {"faults", false, kFaultSpec},
    {"tracing+faults", true, kFaultSpec},
};

class ParallelEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelEquivalence, ShardedMatchesSerialAcrossConfigsAndWorkers) {
  const std::string system = GetParam();
  constexpr int kThreads = 4;
  for (const PlanConfig& config : kConfigs) {
    SCOPED_TRACE(config.label);
    const RunResult reference =
        RunCase(system, config.tracing, config.fault_spec, /*workers=*/1, kThreads);
    EXPECT_EQ(reference.epochs.epochs, 0u);  // workers=1 is the serial engine
    for (const int workers : {2, 4}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      const RunResult sharded =
          RunCase(system, config.tracing, config.fault_spec, workers, kThreads);
      ExpectIdentical(reference, sharded);
      if (ParallelSafe(system) || ConditionallyEligible(system)) {
        // The fault configs carry degrade windows that suppress epochs for
        // stretches of the run; the plain/tracing configs must shard.
        if (config.fault_spec[0] == '\0') {
          EXPECT_GT(sharded.epochs.epochs, 0u);
        }
      } else {
        // Systems whose access path mutates shared state (MM's probe line,
        // Thermostat's per-page counters, Nimble) must report zero — a
        // silently sharded unsafe system would be a correctness hole.
        EXPECT_EQ(sharded.epochs.epochs, 0u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, ParallelEquivalence, ::testing::ValuesIn(kSystems),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// Worker counts that do not divide the thread count: the round-robin shard
// assignment must stay deterministic when shards are uneven, including more
// workers than threads (excess workers no-op).
TEST(ParallelSharding, RebalancesUnevenThreadCounts) {
  for (const int n_threads : {3, 5}) {
    SCOPED_TRACE("threads=" + std::to_string(n_threads));
    const RunResult reference = RunCase("DRAM", false, "", /*workers=*/1, n_threads);
    for (const int workers : {2, 4, 8}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      const RunResult sharded = RunCase("DRAM", false, "", workers, n_threads);
      ExpectIdentical(reference, sharded);
      EXPECT_GT(sharded.epochs.epochs, 0u);
    }
  }
}

// quantum_ops=1 forces one access per RunSlice — the worst case for the
// worker loop, which must keep re-dispatching each owned thread until the
// shared horizon. A quantum cap can therefore never starve or extend an
// epoch barrier: the run completes, results match serial, and the epoch
// structure (count and coverage) is exactly what larger quanta produce.
TEST(ParallelSharding, QuantumCapCannotStarveTheBarrier) {
  const RunResult reference = RunCase("DRAM", false, "", /*workers=*/1, 4);
  const RunResult wide = RunCase("DRAM", false, "", /*workers=*/2, 4,
                                 /*quantum_ops=*/1024);
  const RunResult narrow = RunCase("DRAM", false, "", /*workers=*/2, 4,
                                   /*quantum_ops=*/1);
  ExpectIdentical(reference, wide);
  ExpectIdentical(reference, narrow);
  EXPECT_GT(narrow.epochs.epochs, 0u);
  EXPECT_EQ(narrow.epochs.epochs, wide.epochs.epochs);
  EXPECT_EQ(narrow.epochs.virtual_ns, wide.epochs.virtual_ns);
}

// Many identical threads make virtual-clock ties pervasive: two GUPS workers
// routinely issue accesses stamped the same nanosecond, and which one reaches
// the device first decides who eats the channel queue delay. The engine
// resolves such ties by the strict (clock, stream id) total order — a pure
// function of thread states — so the epoch barrier's heap rebuild lands on
// exactly the serial schedule. A history-dependent tiebreak (FIFO by push
// order) passes the 4-thread suite above but diverges here within a few
// epochs, showing up as a queue_delay_total_ns delta that then snowballs
// through migration decisions. This pins that bug class with the smallest
// workload that reproduced it: 16 GUPS threads on the tiny machine, HeMem in
// both sampling modes.
struct GupsFingerprint {
  DeviceStats dram;
  DeviceStats nvm;
  ManagerStats stats;
  uint64_t epochs = 0;
};

GupsFingerprint RunGupsCase(HememParams::ScanMode scan_mode, int workers) {
  constexpr int kGupsThreads = 16;
  MachineConfig mc = TinyMachineConfig();
  Machine machine(mc);
  machine.EnableHostWorkers(workers);
  HememParams params;
  params.scan_mode = scan_mode;
  Hemem manager(machine, params);
  manager.Start();

  GupsConfig config;
  config.threads = kGupsThreads;
  config.working_set = mc.dram_bytes + mc.nvm_bytes / 2;
  config.hot_set = mc.dram_bytes / 4;
  config.hot_fraction = 0.9;
  config.updates_per_thread = kTotalOps / kGupsThreads;
  GupsBenchmark gups(manager, config);
  gups.Prepare();
  gups.Run();

  GupsFingerprint fp;
  fp.dram = machine.dram().stats();
  fp.nvm = machine.nvm().stats();
  fp.stats = manager.stats();
  fp.epochs = machine.engine().epoch_stats().epochs;
  return fp;
}

void ExpectSameDevice(const DeviceStats& e, const DeviceStats& a) {
  EXPECT_EQ(a.loads, e.loads);
  EXPECT_EQ(a.stores, e.stores);
  EXPECT_EQ(a.bytes_requested_read, e.bytes_requested_read);
  EXPECT_EQ(a.bytes_requested_written, e.bytes_requested_written);
  EXPECT_EQ(a.media_bytes_read, e.media_bytes_read);
  EXPECT_EQ(a.media_bytes_written, e.media_bytes_written);
  EXPECT_EQ(a.sequential_hits, e.sequential_hits);
  // The tie-order canary: queue delay is the only device stat that depends on
  // *interleaving* rather than on per-thread op streams alone.
  EXPECT_EQ(a.queue_delay_total_ns, e.queue_delay_total_ns);
  EXPECT_EQ(a.queue_delay_max_ns, e.queue_delay_max_ns);
}

TEST(ParallelSharding, GupsClockTiesResolveIdenticallyAcrossWorkers) {
  const struct {
    const char* label;
    HememParams::ScanMode scan_mode;
  } kModes[] = {
      {"pebs", HememParams::ScanMode::kPebs},
      {"pt-sync", HememParams::ScanMode::kPtSync},
  };
  for (const auto& mode : kModes) {
    SCOPED_TRACE(mode.label);
    const GupsFingerprint reference = RunGupsCase(mode.scan_mode, /*workers=*/1);
    EXPECT_EQ(reference.epochs, 0u);
    for (const int workers : {2, 4}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      const GupsFingerprint sharded = RunGupsCase(mode.scan_mode, workers);
      {
        SCOPED_TRACE("dram");
        ExpectSameDevice(reference.dram, sharded.dram);
      }
      {
        SCOPED_TRACE("nvm");
        ExpectSameDevice(reference.nvm, sharded.nvm);
      }
      EXPECT_EQ(sharded.stats.missing_faults, reference.stats.missing_faults);
      EXPECT_EQ(sharded.stats.wp_faults, reference.stats.wp_faults);
      EXPECT_EQ(sharded.stats.wp_wait_ns, reference.stats.wp_wait_ns);
      EXPECT_EQ(sharded.stats.pages_promoted, reference.stats.pages_promoted);
      EXPECT_EQ(sharded.stats.pages_demoted, reference.stats.pages_demoted);
      EXPECT_EQ(sharded.stats.bytes_migrated, reference.stats.bytes_migrated);
      EXPECT_GT(sharded.epochs, 0u);
    }
  }
}

}  // namespace
}  // namespace hemem
