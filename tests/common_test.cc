// Unit tests for the common substrate: RNG, distributions, histograms,
// units, time series.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/time_series.h"
#include "common/units.h"

namespace hemem {
namespace {

TEST(Units, SizeHelpers) {
  EXPECT_EQ(KiB(1), 1024u);
  EXPECT_EQ(MiB(2), 2u << 20);
  EXPECT_EQ(GiB(3), 3ull << 30);
  EXPECT_EQ(TiB(1), 1ull << 40);
}

TEST(Units, CeilDivAndRound) {
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(RoundUp(10, 4), 12u);
  EXPECT_EQ(RoundUp(12, 4), 12u);
  EXPECT_EQ(RoundDown(10, 4), 8u);
}

TEST(Units, BandwidthConversion) {
  // 1 GiB/s ~= 1.074 bytes per ns.
  EXPECT_NEAR(GiBps(1.0), 1.0737, 1e-3);
  EXPECT_NEAR(TransferNs(1024, GiBps(1.0)), 953.7, 1.0);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(99);
  constexpr uint64_t kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.NextBounded(kBuckets)]++;
  }
  const double expect = static_cast<double>(kSamples) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expect, expect * 0.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, InRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextInRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Mix64, AvalanchesAndIsStable) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
  // Flipping one input bit flips roughly half the output bits.
  const uint64_t delta = Mix64(100) ^ Mix64(101);
  const int popcount = __builtin_popcountll(delta);
  EXPECT_GT(popcount, 16);
  EXPECT_LT(popcount, 48);
}

TEST(RandomPermutation, IsAPermutation) {
  Rng rng(17);
  const auto perm = RandomPermutation(1000, rng);
  std::set<uint64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 999u);
}

TEST(RandomPermutation, ActuallyShuffles) {
  Rng rng(17);
  const auto perm = RandomPermutation(1000, rng);
  int fixed_points = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    fixed_points += perm[i] == i ? 1 : 0;
  }
  EXPECT_LT(fixed_points, 20);  // E[fixed points] = 1
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, InRangeAndSkewed) {
  const double theta = GetParam();
  ZipfGenerator zipf(10000, theta);
  Rng rng(23);
  constexpr int kSamples = 100000;
  int rank0 = 0;
  int top100 = 0;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 10000u);
    rank0 += v == 0 ? 1 : 0;
    top100 += v < 100 ? 1 : 0;
  }
  // Rank 0's mass is 1/(H_n) * 1; for theta >= 0.5 the head is clearly
  // heavier than uniform (uniform would give rank0 ~= 10, top100 ~= 1%).
  EXPECT_GT(rank0, kSamples / 10000);
  EXPECT_GT(top100, kSamples / 100);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfTest, ::testing::Values(0.5, 0.9, 0.99, 1.2));

TEST(Zipf, HigherThetaIsMoreSkewed) {
  Rng rng1(31);
  Rng rng2(31);
  ZipfGenerator mild(10000, 0.5);
  ZipfGenerator heavy(10000, 1.1);
  int mild_head = 0;
  int heavy_head = 0;
  for (int i = 0; i < 50000; ++i) {
    mild_head += mild.Next(rng1) < 10 ? 1 : 0;
    heavy_head += heavy.Next(rng2) < 10 ? 1 : 0;
  }
  EXPECT_GT(heavy_head, mild_head);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Percentile(0.0), 42u);
  EXPECT_EQ(h.Percentile(1.0), 42u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < 64; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(0.5), 31u);
  EXPECT_EQ(h.Percentile(1.0), 63u);
}

TEST(Histogram, PercentilesOrdered) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    h.Record(rng.NextBounded(1000000));
  }
  uint64_t prev = 0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const uint64_t v = h.Percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, UniformPercentilesApproximate) {
  Histogram h;
  Rng rng(2);
  for (int i = 0; i < 200000; ++i) {
    h.Record(rng.NextBounded(100000));
  }
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 50000, 2500);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.9)), 90000, 3000);
}

TEST(Histogram, RelativePrecisionBounded) {
  Histogram h;
  for (uint64_t v : {100ull, 10'000ull, 1'000'000ull, 100'000'000ull}) {
    h.Reset();
    h.Record(v);
    const double got = static_cast<double>(h.Percentile(0.5));
    EXPECT_NEAR(got, static_cast<double>(v), static_cast<double>(v) * 0.02);
  }
}

TEST(Histogram, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_GE(a.max(), 1000u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(TimeSeries, BucketsByTime) {
  TimeSeries ts(kSecond);
  ts.Record(0);
  ts.Record(kSecond - 1);
  ts.Record(kSecond);
  ts.Record(3 * kSecond + 5);
  ASSERT_EQ(ts.buckets().size(), 4u);
  EXPECT_DOUBLE_EQ(ts.buckets()[0], 2.0);
  EXPECT_DOUBLE_EQ(ts.buckets()[1], 1.0);
  EXPECT_DOUBLE_EQ(ts.buckets()[2], 0.0);
  EXPECT_DOUBLE_EQ(ts.buckets()[3], 1.0);
}

TEST(TimeSeries, RatePerSecond) {
  TimeSeries ts(500 * kMillisecond);
  ts.Record(0, 10.0);
  const auto rates = ts.RatePerSecond(500 * kMillisecond);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 20.0);  // 10 per half second
}

TEST(TimeSeries, RatePerSecondClampsFinalBucket) {
  TimeSeries ts(kSecond);
  ts.Record(0, 5.0);
  ts.Record(kSecond + 500 * kMillisecond, 10.0);
  EXPECT_EQ(ts.last_time(), kSecond + 500 * kMillisecond);

  // Interior bucket uses the full width; the final bucket is divided by the
  // observed half-second, not the nominal full second.
  const auto by_last_record = ts.RatePerSecond();
  ASSERT_EQ(by_last_record.size(), 2u);
  EXPECT_DOUBLE_EQ(by_last_record[0], 5.0);
  EXPECT_DOUBLE_EQ(by_last_record[1], 20.0);

  // An explicit run end overrides the last-record clamp.
  const auto by_end = ts.RatePerSecond(2 * kSecond);
  EXPECT_DOUBLE_EQ(by_end[1], 10.0);

  // Degenerate end at the bucket start does not divide by zero.
  const auto degenerate = ts.RatePerSecond(kSecond);
  EXPECT_GT(degenerate[1], 0.0);
}

TEST(TimeSeries, IgnoresNegativeTime) {
  TimeSeries ts(kSecond);
  ts.Record(-5);
  EXPECT_TRUE(ts.buckets().empty());
}

}  // namespace
}  // namespace hemem
