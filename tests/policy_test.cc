// Policy-layer tests: the --policy plumbing, the scheme-spec grammar,
// perceptron replay determinism, and the refactor's equivalence oracle —
// Hemem under an explicit --policy=default must land on the exact
// AccessGolden fingerprints recorded before the MigrationPolicy extraction.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/hemem.h"
#include "policy/features.h"
#include "policy/paper_default.h"
#include "policy/perceptron.h"
#include "policy/policy.h"
#include "policy/scheme.h"
#include "test_util.h"

namespace hemem {
namespace {

using policy::MakePolicy;
using policy::ParsePolicyFlag;
using policy::ParseSchemeSpec;
using policy::PolicyChoice;
using policy::PolicyConfig;
using policy::PolicyFeatures;
using policy::SchemeRule;

// ---------------------------------------------------------------------------
// Flag parsing + registry.

TEST(PolicyTest, ParsePolicyFlagSplitsAtFirstColon) {
  PolicyChoice c = ParsePolicyFlag("default");
  EXPECT_EQ(c.name, "default");
  EXPECT_TRUE(c.spec.empty());

  c = ParsePolicyFlag("scheme:hot:tier=1,min_acc=2");
  EXPECT_EQ(c.name, "scheme");
  EXPECT_EQ(c.spec, "hot:tier=1,min_acc=2");

  c = ParsePolicyFlag("");
  EXPECT_EQ(c.name, "default");
}

TEST(PolicyTest, MakePolicyBuildsEveryRegisteredName) {
  for (const std::string& name : policy::RegisteredPolicyNames()) {
    std::string error;
    auto p = MakePolicy({name, ""}, PolicyConfig{}, &error);
    ASSERT_NE(p, nullptr) << name << ": " << error;
    EXPECT_STREQ(p->name(), name.c_str());
  }
}

TEST(PolicyTest, UnknownPolicyFailsListingRegisteredNames) {
  std::string error;
  auto p = MakePolicy({"nonesuch", ""}, PolicyConfig{}, &error);
  EXPECT_EQ(p, nullptr);
  EXPECT_NE(error.find("nonesuch"), std::string::npos) << error;
  for (const std::string& name : policy::RegisteredPolicyNames()) {
    EXPECT_NE(error.find(name), std::string::npos)
        << "error should list registered policy '" << name << "': " << error;
  }
}

TEST(PolicyTest, MalformedSchemeSpecFailsMakePolicy) {
  std::string error;
  auto p = MakePolicy({"scheme", "hot:min_acc=notanumber"}, PolicyConfig{}, &error);
  EXPECT_EQ(p, nullptr);
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Scheme-spec grammar.

TEST(PolicyTest, SchemeSpecAccepts) {
  const char* good[] = {
      "",                                  // empty rule list
      "hot",                               // unconditional
      "cold",
      "hot:tier=1",
      "hot:tier=1,min_acc=2;cold:max_acc=0,min_age=2",
      "hot:min_writes=4,max_writes=100,min_pages=1,max_pages=4096;",
      "hot:min_age=0,max_age=7",
  };
  for (const char* spec : good) {
    std::vector<SchemeRule> rules;
    std::string error;
    EXPECT_TRUE(ParseSchemeSpec(spec, &rules, &error)) << spec << ": " << error;
  }
}

TEST(PolicyTest, SchemeSpecRejects) {
  const char* bad[] = {
      "warm:tier=1",        // unknown action
      "hot:heat=9",         // unknown key
      "hot:min_acc",        // missing value
      "hot:min_acc=",       // empty value
      "hot:min_acc=12x",    // trailing junk
      "hot:min_acc=-1",     // not a uint
      "hot:tier=2",         // tier out of range
      ":min_acc=1",         // missing action
  };
  for (const char* spec : bad) {
    std::vector<SchemeRule> rules;
    std::string error;
    EXPECT_FALSE(ParseSchemeSpec(spec, &rules, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST(PolicyTest, SchemeFirstMatchWinsWithDefaultFallback) {
  std::vector<SchemeRule> rules;
  std::string error;
  ASSERT_TRUE(ParseSchemeSpec("hot:tier=1,min_acc=2;cold:min_age=3", &rules, &error))
      << error;
  policy::SchemePolicy scheme(PolicyConfig{}, rules);

  // NVM page with two surviving accesses: first rule fires hot, even though
  // the paper thresholds (8 reads / 4 writes) would say cold.
  PolicyFeatures f;
  f.tier = policy::kTierNvm;
  f.reads = 2;
  f.accesses_since_cool = 2;
  EXPECT_TRUE(scheme.Classify(f).hot);

  // Same counters in DRAM: rule 1's tier filter misses; rule 2 needs age>=3;
  // fallback (paper thresholds) says cold.
  f.tier = policy::kTierDram;
  EXPECT_FALSE(scheme.Classify(f).hot);

  // Stale page: heavy counters but not sampled for >= 4 epochs — the cold
  // rule overrides the paper thresholds that would call it hot.
  f.reads = 100;
  f.accesses_since_cool = 100;
  f.recency_bucket = 3;
  EXPECT_FALSE(scheme.Classify(f).hot);

  // Unmatched pages keep the paper verdict, including the write-heavy
  // front-of-queue bit.
  PolicyFeatures wh;
  wh.writes = 5;
  wh.write_heavy = true;
  wh.accesses_since_cool = 5;
  wh.recency_bucket = 0;
  const policy::PolicyVerdict v = scheme.Classify(wh);
  EXPECT_TRUE(v.hot);
  EXPECT_TRUE(v.front);
}

TEST(PolicyTest, SchemeRuleBoundsAreInclusive) {
  std::vector<SchemeRule> rules;
  std::string error;
  ASSERT_TRUE(ParseSchemeSpec("hot:min_acc=3,max_acc=5", &rules, &error)) << error;
  policy::SchemePolicy scheme(PolicyConfig{}, rules);
  PolicyFeatures f;
  for (uint64_t acc = 0; acc <= 8; ++acc) {
    f.accesses_since_cool = acc;
    EXPECT_EQ(scheme.Classify(f).hot, acc >= 3 && acc <= 5) << acc;
  }
}

// ---------------------------------------------------------------------------
// Feature extraction helpers.

TEST(PolicyTest, RecencyBucketIsLogScaled) {
  const uint64_t clock = 100;
  EXPECT_EQ(policy::RecencyBucket(clock, 100), 0u);  // seen this epoch
  EXPECT_EQ(policy::RecencyBucket(clock, 99), 1u);
  EXPECT_EQ(policy::RecencyBucket(clock, 98), 2u);
  EXPECT_EQ(policy::RecencyBucket(clock, 96), 3u);
  EXPECT_EQ(policy::RecencyBucket(clock, 0), policy::kMaxRecencyBucket);
}

TEST(PolicyTest, DecayCounterClampsShift) {
  uint32_t count = 0xffffffffu;
  policy::DecayCounter(&count, policy::kFullDecayEpochs);
  EXPECT_EQ(count, 1u);  // 31-shift clamp leaves the top bit
  count = 1000;
  policy::DecayCounter(&count, policy::kFullDecayEpochs);
  EXPECT_EQ(count, 0u);  // any realistic count zeroes out
  count = 8;
  policy::DecayCounter(&count, 1);
  EXPECT_EQ(count, 4u);
}

// ---------------------------------------------------------------------------
// Perceptron determinism.

// Feeds one deterministic synthetic sample stream; returns the checksum.
uint64_t TrainSynthetic(policy::PerceptronPolicy& p) {
  Rng rng(0x5eedull);
  for (int i = 0; i < 5000; ++i) {
    PolicyFeatures f;
    f.reads = static_cast<uint32_t>(rng.NextBounded(16));
    f.writes = static_cast<uint32_t>(rng.NextBounded(8));
    f.write_heavy = f.writes > f.reads;
    f.accesses_since_cool = f.reads + f.writes;
    f.recency_bucket = static_cast<uint32_t>(rng.NextBounded(8));
    f.rw_ratio_q8 = policy::RwRatioQ8(f.reads, f.writes);
    f.region_pages = 1u << rng.NextBounded(12);
    f.tier = rng.NextBool(0.5) ? policy::kTierNvm : policy::kTierDram;
    p.ObserveSample(f, f.write_heavy, i * 1000);
  }
  return p.WeightChecksum();
}

TEST(PolicyTest, PerceptronReplaysBitIdentically) {
  policy::PerceptronPolicy a(PolicyConfig{});
  policy::PerceptronPolicy b(PolicyConfig{});
  EXPECT_EQ(a.WeightChecksum(), b.WeightChecksum());  // identical init
  const uint64_t ca = TrainSynthetic(a);
  const uint64_t cb = TrainSynthetic(b);
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(a.updates(), b.updates());
  EXPECT_GT(a.updates(), 0u) << "stream should cause at least one update";

  // Classification agrees everywhere after identical training.
  Rng rng(0x7777ull);
  for (int i = 0; i < 200; ++i) {
    PolicyFeatures f;
    f.reads = static_cast<uint32_t>(rng.NextBounded(20));
    f.writes = static_cast<uint32_t>(rng.NextBounded(10));
    f.accesses_since_cool = f.reads + f.writes;
    f.recency_bucket = static_cast<uint32_t>(rng.NextBounded(8));
    f.tier = policy::kTierNvm;
    EXPECT_EQ(a.Classify(f).hot, b.Classify(f).hot);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the same fixed-seed workload as tests/access_golden_test.cc,
// run through Hemem with an explicit PolicyChoice.

struct Fingerprint {
  SimTime end_ns;
  uint64_t wp_faults;
  SimTime wp_wait_ns;
  uint64_t pages_promoted;
  uint64_t pages_demoted;
  uint64_t bytes_migrated;
};

Fingerprint RunHemem(const PolicyChoice& choice,
                     HememParams::ScanMode scan = HememParams::ScanMode::kPebs) {
  constexpr uint64_t kWorkingSet = MiB(128);
  constexpr uint64_t kHotSet = MiB(16);
  constexpr uint64_t kOps = 300'000;

  Machine machine(TinyMachineConfig());
  HememParams params;
  params.scan_mode = scan;
  params.policy = choice.name;
  params.policy_spec = choice.spec;
  Hemem manager(machine, params);
  manager.Start();
  const uint64_t va = manager.Mmap(kWorkingSet, {.label = "golden"});

  Rng access_rng(0xbeefull);
  uint64_t op = 0;
  ScriptThread thread([&](ScriptThread& self) mutable {
    const bool hot = access_rng.NextBool(0.9);
    const uint64_t span = hot ? kHotSet : kWorkingSet;
    const uint64_t offset = access_rng.NextBounded(span / 64) * 64;
    const AccessKind kind = op % 3 == 0 ? AccessKind::kStore : AccessKind::kLoad;
    manager.Access(self, va + offset, 64, kind);
    self.Advance(15);
    return ++op < kOps;
  });
  machine.engine().AddThread(&thread);
  const SimTime end = machine.engine().Run();

  const ManagerStats& s = manager.stats();
  return Fingerprint{end,
                     s.wp_faults,
                     s.wp_wait_ns,
                     s.pages_promoted,
                     s.pages_demoted,
                     s.bytes_migrated};
}

// The refactor's equivalence oracle: --policy=default must reproduce the
// pre-extraction AccessGolden fingerprints exactly, for both the PEBS and
// the synchronous page-table-scan configurations.
TEST(AccessGolden, DefaultPolicyIsExact) {
  const Fingerprint pebs = RunHemem({"default", ""});
  EXPECT_EQ(pebs.end_ns, 62100003);  // tests/access_golden_test.cc kGolden
  EXPECT_EQ(pebs.wp_faults, 28u);
  EXPECT_EQ(pebs.wp_wait_ns, 11348247);
  EXPECT_EQ(pebs.pages_promoted, 15u);
  EXPECT_EQ(pebs.pages_demoted, 81u);
  EXPECT_EQ(pebs.bytes_migrated, 100663296u);

  const Fingerprint pt = RunHemem({"default", ""}, HememParams::ScanMode::kPtSync);
  EXPECT_EQ(pt.end_ns, 67156299);
  EXPECT_EQ(pt.wp_faults, 45u);
  EXPECT_EQ(pt.wp_wait_ns, 23382973);
  EXPECT_EQ(pt.pages_promoted, 49u);
  EXPECT_EQ(pt.pages_demoted, 115u);
  EXPECT_EQ(pt.bytes_migrated, 171966464u);
}

// A learned policy in the loop must replay bit-identically run-to-run: the
// whole stack (sampling order, training order, migration interleave) is
// deterministic. Also checks the run actually diverged from the default —
// i.e. the policy is live, not silently ignored.
TEST(PolicyTest, PerceptronEndToEndIsDeterministic) {
  const Fingerprint a = RunHemem({"perceptron", ""});
  const Fingerprint b = RunHemem({"perceptron", ""});
  EXPECT_EQ(a.end_ns, b.end_ns);
  EXPECT_EQ(a.wp_faults, b.wp_faults);
  EXPECT_EQ(a.wp_wait_ns, b.wp_wait_ns);
  EXPECT_EQ(a.pages_promoted, b.pages_promoted);
  EXPECT_EQ(a.pages_demoted, b.pages_demoted);
  EXPECT_EQ(a.bytes_migrated, b.bytes_migrated);
}

// An always-cold scheme disables promotion entirely; an aggressive hot
// scheme must promote at least as much as the default. Both pin down that
// scheme rules actually steer the migration phases.
TEST(PolicyTest, SchemeRulesSteerMigration) {
  const Fingerprint def = RunHemem({"default", ""});
  const Fingerprint frozen = RunHemem({"scheme", "cold"});
  EXPECT_EQ(frozen.pages_promoted, 0u);
  const Fingerprint eager = RunHemem({"scheme", "hot:tier=1,min_acc=1"});
  EXPECT_GE(eager.pages_promoted, def.pages_promoted);
}

}  // namespace
}  // namespace hemem
