// Regression tests for region teardown while tracking state is live.
//
// Munmap must release region-attached metadata exactly once and leave no
// dangling HememPage* on the hot/cold FIFO lists: the policy and PEBS
// threads keep running after the unmap and would chase freed pointers
// otherwise. The ASan CI job turns any such dangle into a hard failure.

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/hemem.h"
#include "test_util.h"

namespace hemem {
namespace {

uint64_t TotalListedPages(const Hemem& hemem) {
  return hemem.hot_pages(Tier::kDram) + hemem.hot_pages(Tier::kNvm) +
         hemem.cold_pages(Tier::kDram) + hemem.cold_pages(Tier::kNvm);
}

// Hammer a small region until PEBS classification puts pages on the hot
// lists, then unmap it mid-run and keep the simulation going on a second
// region so the background threads get every chance to touch stale state.
TEST(MunmapSafety, UnmapWithPagesOnHotListDetachesThem) {
  Machine machine(TinyMachineConfig());
  Hemem hemem(machine);
  hemem.Start();

  const uint64_t doomed = hemem.Mmap(MiB(8), {.label = "doomed"});
  const uint64_t survivor = hemem.Mmap(MiB(8), {.label = "survivor"});

  Rng rng(0xdeadull);
  uint64_t op = 0;
  constexpr uint64_t kHeatOps = 200'000;
  constexpr uint64_t kAfterOps = 100'000;
  bool unmapped = false;
  ScriptThread thread([&](ScriptThread& self) {
    if (op < kHeatOps) {
      // Phase 1: heat both regions so pages reach the hot lists.
      const uint64_t base = (op & 1) == 0 ? doomed : survivor;
      const uint64_t offset = rng.NextBounded(MiB(8) / 64) * 64;
      hemem.Access(self, base + offset, 64, AccessKind::kStore);
    } else {
      if (!unmapped) {
        EXPECT_GT(TotalListedPages(hemem), 0u);
        hemem.Munmap(doomed);
        unmapped = true;
        // Every tracked page of the doomed region must be off the lists; the
        // survivor still has at most 8 tracked pages.
        EXPECT_LE(TotalListedPages(hemem), MiB(8) / machine.page_bytes());
        EXPECT_FALSE(hemem.ProbePage(doomed).has_value());
      }
      // Phase 2: keep the policy/PEBS threads busy after the unmap.
      const uint64_t offset = rng.NextBounded(MiB(8) / 64) * 64;
      hemem.Access(self, survivor + offset, 64, AccessKind::kLoad);
    }
    self.Advance(20);
    return ++op < kHeatOps + kAfterOps;
  });
  machine.engine().AddThread(&thread);
  machine.engine().Run();

  EXPECT_TRUE(unmapped);
  EXPECT_TRUE(hemem.ProbePage(survivor).has_value());
  hemem.Munmap(survivor);
  EXPECT_EQ(TotalListedPages(hemem), 0u);
}

// Unmapping and immediately remapping must not resurrect stale metadata:
// the fresh region starts with zeroed counters even if the allocator hands
// back the same virtual range or Region storage.
TEST(MunmapSafety, RemapAfterUnmapStartsCold) {
  Machine machine(TinyMachineConfig());
  Hemem hemem(machine);
  hemem.Start();

  const uint64_t va = hemem.Mmap(MiB(4), {.label = "a"});
  uint64_t op = 0;
  ScriptThread thread([&](ScriptThread& self) {
    hemem.Access(self, va + (op % 64) * KiB(64), 64, AccessKind::kStore);
    self.Advance(20);
    return ++op < 50'000;
  });
  machine.engine().AddThread(&thread);
  machine.engine().Run();

  hemem.Munmap(va);
  const uint64_t va2 = hemem.Mmap(MiB(4), {.label = "b"});
  const auto probe = hemem.ProbePage(va2);
  if (probe.has_value()) {
    EXPECT_EQ(probe->reads, 0u);
    EXPECT_EQ(probe->writes, 0u);
    EXPECT_FALSE(probe->on_hot_list);
  }
  hemem.Munmap(va2);
}

// Double-unmap of distinct regions releases each exactly once (no crash, no
// double free of frames): exercised indirectly by unmapping many regions in
// LIFO and FIFO order under ASan.
TEST(MunmapSafety, ManyRegionsReleaseCleanly) {
  Machine machine(TinyMachineConfig());
  Hemem hemem(machine);
  hemem.Start();

  std::vector<uint64_t> regions;
  for (int i = 0; i < 8; ++i) {
    regions.push_back(hemem.Mmap(MiB(2), {.label = "r"}));
  }
  uint64_t op = 0;
  ScriptThread thread([&](ScriptThread& self) {
    hemem.Access(self, regions[op % regions.size()] + (op % 32) * KiB(64), 64,
                 AccessKind::kStore);
    self.Advance(20);
    return ++op < 50'000;
  });
  machine.engine().AddThread(&thread);
  machine.engine().Run();

  // FIFO half, then LIFO half.
  hemem.Munmap(regions[0]);
  hemem.Munmap(regions[1]);
  hemem.Munmap(regions[2]);
  hemem.Munmap(regions[3]);
  hemem.Munmap(regions[7]);
  hemem.Munmap(regions[6]);
  hemem.Munmap(regions[5]);
  hemem.Munmap(regions[4]);
  EXPECT_EQ(TotalListedPages(hemem), 0u);
}

}  // namespace
}  // namespace hemem
