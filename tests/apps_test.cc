// Unit tests for the application substrates: GUPS, FlexKVS, Silo/TPC-C,
// and the GAP graph + betweenness-centrality kernels.

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include <gtest/gtest.h>

#include "apps/bc.h"
#include "apps/flexkvs.h"
#include "apps/graph.h"
#include "apps/pagerank.h"
#include "apps/gups.h"
#include "apps/silo.h"
#include "test_util.h"
#include "core/hemem.h"
#include "tier/plain.h"
#include "tier/trace.h"

namespace hemem {
namespace {

TEST(Gups, RunsToCompletionAndCounts) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  GupsConfig config;
  config.threads = 4;
  config.working_set = MiB(16);
  config.updates_per_thread = 1000;
  GupsBenchmark gups(manager, config);
  gups.Prepare();
  const GupsResult result = gups.Run();
  EXPECT_EQ(result.total_updates, 4000u);
  EXPECT_GT(result.gups, 0.0);
  EXPECT_GT(result.elapsed, 0);
}

TEST(Gups, DramFasterThanNvm) {
  auto run = [](Tier tier) {
    Machine machine(TinyMachineConfig());
    PlainMemory manager(machine, tier, true);
    GupsConfig config;
    config.threads = 4;
    config.working_set = MiB(32);
    config.updates_per_thread = 5000;
    GupsBenchmark gups(manager, config);
    gups.Prepare();
    return gups.Run().gups;
  };
  EXPECT_GT(run(Tier::kDram), run(Tier::kNvm) * 2.0);
}

TEST(Gups, WarmupExcludedFromMeasurement) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  GupsConfig config;
  config.threads = 2;
  config.working_set = MiB(8);
  config.updates_per_thread = 1000;
  config.warmup_updates_per_thread = 1000;
  GupsBenchmark gups(manager, config);
  gups.Prepare();
  const GupsResult result = gups.Run();
  EXPECT_EQ(result.total_updates, 2000u);  // warmup not counted
}

TEST(Gups, DeterministicAcrossRuns) {
  auto run = []() {
    Machine machine(TinyMachineConfig());
    PlainMemory manager(machine, Tier::kDram, true);
    GupsConfig config;
    config.threads = 4;
    config.working_set = MiB(16);
    config.updates_per_thread = 2000;
    GupsBenchmark gups(manager, config);
    gups.Prepare();
    return gups.Run().gups;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Gups, DeadlineParksWorkers) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  GupsConfig config;
  config.threads = 2;
  config.working_set = MiB(8);
  config.updates_per_thread = 100'000'000;  // would run forever
  GupsBenchmark gups(manager, config);
  gups.Prepare();
  const GupsResult result = gups.Run(10 * kMillisecond);
  EXPECT_GT(result.total_updates, 0u);
  EXPECT_LT(result.total_updates, 100'000'000u);
}

TEST(Gups, SeriesRecordsActivity) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  GupsConfig config;
  config.threads = 2;
  config.working_set = MiB(8);
  config.updates_per_thread = 5000;
  config.series_bucket = kMillisecond;
  GupsBenchmark gups(manager, config);
  gups.Prepare();
  const GupsResult result = gups.Run();
  const double total = std::accumulate(gups.series().buckets().begin(),
                                       gups.series().buckets().end(), 0.0);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(result.total_updates));
}

TEST(Gups, HotSetConcentratesTraffic) {
  // Capture the generated access stream and verify the configured skew:
  // 90% of updates land within hot chunks covering 1/16th of the space.
  Machine machine(TinyMachineConfig());
  PlainMemory inner(machine, Tier::kDram, true);
  TraceRecorder recorder(inner);
  GupsConfig config;
  config.threads = 1;
  config.working_set = MiB(32);
  config.hot_set = MiB(2);
  config.hot_fraction = 0.9;
  config.updates_per_thread = 20'000;
  config.prefill = false;
  GupsBenchmark gups(recorder, config);
  gups.Prepare();
  gups.Run();

  const Trace& trace = recorder.trace();
  ASSERT_EQ(trace.allocs.size(), 1u);
  // Bucket accesses by 256 KiB chunk (the auto-selected sub-page chunk size)
  // and measure the share taken by the top 8 chunks (= 2 MiB hot set).
  std::map<uint64_t, uint64_t> per_chunk;
  for (const TraceAccess& access : trace.accesses) {
    per_chunk[(access.va - trace.allocs[0].va) / KiB(256)]++;
  }
  std::vector<uint64_t> counts;
  for (const auto& [chunk, count] : per_chunk) {
    counts.push_back(count);
  }
  std::sort(counts.rbegin(), counts.rend());
  uint64_t top = 0;
  uint64_t total = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i < 8) {
      top += counts[i];
    }
    total += counts[i];
  }
  const double share = static_cast<double>(top) / static_cast<double>(total);
  EXPECT_GT(share, 0.85);  // ~0.9 + the uniform tail also hitting hot chunks
  EXPECT_LT(share, 0.97);
}

TEST(FlexKvs, SetThenGetRoundTrips) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  KvsConfig config;
  config.num_keys = 500;
  config.value_bytes = 512;
  config.server_threads = 1;
  config.requests_per_thread = 0;
  FlexKvs kvs(manager, config);
  kvs.Prepare();

  ScriptThread t([&](ScriptThread& self) {
    kvs.LoadAll(self);
    uint64_t version = 0;
    EXPECT_TRUE(kvs.Get(self, 42, &version));
    EXPECT_EQ(version, 1u);
    EXPECT_TRUE(kvs.Set(self, 0, 42));
    EXPECT_TRUE(kvs.Get(self, 42, &version));
    EXPECT_EQ(version, 2u);
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_EQ(kvs.kvs_stats().gets, 2u);
  EXPECT_EQ(kvs.kvs_stats().sets, 501u);  // 500 loads + 1 update
}

TEST(FlexKvs, WorkloadRunsAndMeasures) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  KvsConfig config;
  config.num_keys = 2000;
  config.value_bytes = 256;
  config.server_threads = 2;
  config.requests_per_thread = 2000;
  FlexKvs kvs(manager, config);
  kvs.Prepare();
  const KvsResult result = kvs.Run();
  EXPECT_EQ(result.total_requests, 4000u);
  EXPECT_GT(result.mops, 0.0);
  EXPECT_GT(result.latency.count(), 0u);
  // Latency includes the 10 us network RTT.
  EXPECT_GE(result.latency.Percentile(0.5), 10u);
}

TEST(FlexKvs, CleanerRelocatesWithoutCorruption) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  KvsConfig config;
  config.num_keys = 400;
  config.value_bytes = 1024;
  config.server_threads = 1;
  config.requests_per_thread = 0;
  config.segment_bytes = KiB(64);
  config.log_overprovision = 1.3;  // tight log forces cleaning
  FlexKvs kvs(manager, config);
  kvs.Prepare();

  ScriptThread t([&](ScriptThread& self) {
    kvs.LoadAll(self);
    Rng rng(5);
    // Churn: repeated overwrites generate garbage; the cleaner must run.
    for (int i = 0; i < 4000; ++i) {
      EXPECT_TRUE(kvs.Set(self, 0, rng.NextBounded(400)));
    }
    // Every key still resolves to its latest version (Get() asserts the log
    // ground truth internally).
    for (uint64_t key = 0; key < 400; ++key) {
      EXPECT_TRUE(kvs.Get(self, key, nullptr));
    }
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_GT(kvs.kvs_stats().segments_cleaned, 0u);
  EXPECT_GT(kvs.kvs_stats().items_relocated, 0u);
}

TEST(FlexKvs, MissOnAbsentKeyBeforeLoad) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  KvsConfig config;
  config.num_keys = 100;
  config.value_bytes = 128;
  config.server_threads = 1;
  config.requests_per_thread = 0;
  FlexKvs kvs(manager, config);
  kvs.Prepare();
  ScriptThread t([&](ScriptThread& self) {
    EXPECT_FALSE(kvs.Get(self, 7, nullptr));
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_EQ(kvs.kvs_stats().get_misses, 1u);
}

TEST(FlexKvs, OpenLoopLoadStretchesTime) {
  auto run = [](double load) {
    Machine machine(TinyMachineConfig());
    PlainMemory manager(machine, Tier::kDram, true);
    KvsConfig config;
    config.num_keys = 1000;
    config.value_bytes = 256;
    config.server_threads = 1;
    config.requests_per_thread = 1000;
    config.load = load;
    FlexKvs kvs(manager, config);
    kvs.Prepare();
    return kvs.Run().elapsed;
  };
  EXPECT_GT(run(0.3), run(1.0) * 2);
}

TEST(Silo, LoadPopulatesTables) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SiloConfig config;
  config.warehouses = 2;
  SiloDb db(manager, config);
  ScriptThread t([&](ScriptThread& self) {
    db.Load(self);
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_GE(db.stock_quantity(0, 0), 50);
  EXPECT_LE(db.stock_quantity(1, config.items - 1), 100);
}

TEST(Silo, PaymentKeepsYtdConsistent) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SiloConfig config;
  config.warehouses = 2;
  SiloDb db(manager, config);
  ScriptThread t([&](ScriptThread& self) {
    db.Load(self);
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
      db.Payment(self, rng, i % 2);
    }
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  // Sum of district YTDs equals the warehouse YTD (TPC-C consistency #2).
  for (int w = 0; w < 2; ++w) {
    EXPECT_NEAR(db.warehouse_ytd(w), db.district_ytd_sum(w), 1e-6);
  }
}

TEST(Silo, NewOrderMaintainsStockBounds) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SiloConfig config;
  config.warehouses = 1;
  SiloDb db(manager, config);
  ScriptThread t([&](ScriptThread& self) {
    db.Load(self);
    Rng rng(2);
    for (int i = 0; i < 500; ++i) {
      db.NewOrder(self, rng, 0);
    }
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  // 500 New-Orders on top of the initial (prefilled) order books.
  const uint64_t initial = static_cast<uint64_t>(config.districts_per_warehouse) *
                           static_cast<uint64_t>(config.order_capacity_per_district) / 2;
  EXPECT_EQ(db.orders_created(), 500u + initial);
  for (int item = 0; item < config.items; ++item) {
    EXPECT_GE(db.stock_quantity(0, item), 0);
    EXPECT_LE(db.stock_quantity(0, item), 200);
  }
}

TEST(Silo, DeliveryNeverExceedsCreated) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SiloConfig config;
  config.warehouses = 1;
  SiloDb db(manager, config);
  ScriptThread t([&](ScriptThread& self) {
    db.Load(self);
    Rng rng(3);
    for (int i = 0; i < 300; ++i) {
      if (i % 3 == 0) {
        db.NewOrder(self, rng, 0);
      } else {
        db.Delivery(self, rng, 0);
      }
    }
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_LE(db.orders_delivered(), db.orders_created());
}

TEST(Silo, AllFiveTransactionsExecute) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SiloConfig config;
  config.warehouses = 2;
  SiloDb db(manager, config);
  ScriptThread t([&](ScriptThread& self) {
    db.Load(self);
    Rng rng(4);
    for (int i = 0; i < 20; ++i) {
      db.NewOrder(self, rng, 0);
    }
    EXPECT_TRUE(db.Payment(self, rng, 0));
    EXPECT_TRUE(db.OrderStatus(self, rng, 0));
    EXPECT_TRUE(db.Delivery(self, rng, 0));
    EXPECT_TRUE(db.StockLevel(self, rng, 0));
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
}

TEST(Tpcc, BenchmarkRuns) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SiloConfig sconfig;
  sconfig.warehouses = 4;
  SiloDb db(manager, sconfig);
  TpccConfig tconfig;
  tconfig.threads = 4;
  tconfig.transactions_per_thread = 500;
  TpccBenchmark tpcc(db, tconfig);
  tpcc.Prepare();
  const TpccResult result = tpcc.Run();
  EXPECT_EQ(result.total_transactions, 2000u);
  EXPECT_GT(result.txn_per_sec, 0.0);
}


TEST(Gups, SplitLayoutPlacesHintsAndRuns) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, HememParams{});
  GupsConfig config;
  config.threads = 2;
  config.working_set = MiB(32);
  config.hot_set = MiB(8);
  config.split_hot_region = true;
  config.hot_region_hint = Tier::kDram;
  config.cold_region_hint = Tier::kNvm;
  config.updates_per_thread = 20'000;
  GupsBenchmark gups(manager, config);
  gups.Prepare();
  const GupsResult result = gups.Run();
  EXPECT_EQ(result.total_updates, 40'000u);
  // The hinted placement put the hot region in DRAM and the cold one in NVM.
  EXPECT_GT(machine.dram().stats().loads + machine.dram().stats().stores,
            (machine.nvm().stats().loads + machine.nvm().stats().stores) * 2);
}

TEST(Gups, PrefillTouchesEveryPageBeforeMeasurement) {
  Machine machine(TinyMachineConfig());
  Hemem manager(machine, HememParams{});
  GupsConfig config;
  config.threads = 2;
  config.working_set = MiB(16);
  config.updates_per_thread = 100;
  config.prefill = true;
  GupsBenchmark gups(manager, config);
  gups.Prepare();
  gups.Run();
  // All 16 pages (1 MiB each) were faulted in even though only a few random
  // updates ran.
  EXPECT_EQ(manager.stats().missing_faults, 16u);
}

TEST(Gups, MeasureAfterGatesCounting) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  GupsConfig config;
  config.threads = 1;
  config.working_set = MiB(8);
  config.updates_per_thread = ~0ull >> 2;
  config.measure_after = 5 * kMillisecond;
  GupsBenchmark gups(manager, config);
  gups.Prepare();
  const GupsResult result = gups.Run(10 * kMillisecond);
  EXPECT_GT(result.total_updates, 0u);
  // Updates before 5 ms were not counted: at ~85 ns/update one thread does
  // ~118k updates in the 5 ms window; far fewer than a 10 ms run would give.
  EXPECT_LT(result.total_updates, 90'000u);
  EXPECT_GE(result.elapsed, 4 * kMillisecond);
  EXPECT_LE(result.elapsed, 6 * kMillisecond);
}

TEST(Silo, BulkLoadChargesTables) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SiloConfig config;
  config.warehouses = 2;
  SiloDb db(manager, config);
  ScriptThread t([&](ScriptThread& self) {
    db.Load(self);
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  // The prefill streamed every table through the device.
  const uint64_t stock_bytes =
      2ull * config.items * SiloSchema::kStockRow;
  EXPECT_GE(machine.dram().stats().bytes_requested_written, stock_bytes);
  EXPECT_GT(t.now(), 0);
}

TEST(FlexKvs, BulkLoadMatchesItemLayout) {
  auto build = [](bool bulk) {
    auto machine = std::make_unique<Machine>(TinyMachineConfig());
    auto manager = std::make_unique<PlainMemory>(*machine, Tier::kDram, true);
    KvsConfig config;
    config.num_keys = 300;
    config.value_bytes = 256;
    config.server_threads = 1;
    config.requests_per_thread = 0;
    config.bulk_load = bulk;
    auto kvs = std::make_unique<FlexKvs>(*manager, config);
    kvs->Prepare();
    struct Out {
      std::unique_ptr<Machine> m;
      std::unique_ptr<PlainMemory> mgr;
      std::unique_ptr<FlexKvs> kvs;
    };
    return Out{std::move(machine), std::move(manager), std::move(kvs)};
  };
  auto fast = build(true);
  auto slow = build(false);
  ScriptThread t1([&](ScriptThread& self) {
    fast.kvs->LoadAll(self);
    return false;
  });
  ScriptThread t2([&](ScriptThread& self) {
    slow.kvs->LoadAll(self);
    return false;
  });
  fast.m->engine().AddThread(&t1);
  fast.m->engine().Run();
  slow.m->engine().AddThread(&t2);
  slow.m->engine().Run();
  // Same final state: every key present at version 1 in both stores.
  ScriptThread v1([&](ScriptThread& self) {
    for (uint64_t k = 0; k < 300; ++k) {
      uint64_t version = 0;
      EXPECT_TRUE(fast.kvs->Get(self, k, &version));
      EXPECT_EQ(version, 1u);
    }
    return false;
  });
  fast.m->engine().AddThread(&v1);
  fast.m->engine().Run();
  // Bulk load charges far fewer (larger) accesses but similar total bytes.
  EXPECT_LT(fast.m->dram().stats().stores, slow.m->dram().stats().stores);
}


TEST(FlexKvs, DeleteRemovesKey) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  KvsConfig config;
  config.num_keys = 100;
  config.value_bytes = 128;
  config.server_threads = 1;
  config.requests_per_thread = 0;
  FlexKvs kvs(manager, config);
  kvs.Prepare();
  ScriptThread t([&](ScriptThread& self) {
    kvs.LoadAll(self);
    EXPECT_TRUE(kvs.Del(self, 5));
    EXPECT_FALSE(kvs.Get(self, 5, nullptr));
    EXPECT_FALSE(kvs.Del(self, 5));  // already gone
    EXPECT_TRUE(kvs.Set(self, 0, 5));
    uint64_t version = 0;
    EXPECT_TRUE(kvs.Get(self, 5, &version));
    EXPECT_EQ(version, 1u);  // fresh insert after delete
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_EQ(kvs.kvs_stats().dels, 2u);
}

TEST(FlexKvs, ZipfWorkloadSkewsTowardLowKeys) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  KvsConfig config;
  config.num_keys = 10'000;
  config.value_bytes = 128;
  config.server_threads = 2;
  config.requests_per_thread = 5'000;
  config.zipf_theta = 0.99;
  FlexKvs kvs(manager, config);
  kvs.Prepare();
  const KvsResult result = kvs.Run();
  EXPECT_EQ(result.total_requests, 10'000u);
  EXPECT_GT(result.mops, 0.0);
}

TEST(FlexKvs, DeleteChurnSurvivesCleaning) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  KvsConfig config;
  config.num_keys = 300;
  config.value_bytes = 512;
  config.server_threads = 1;
  config.requests_per_thread = 0;
  config.segment_bytes = KiB(32);
  config.log_overprovision = 1.5;
  FlexKvs kvs(manager, config);
  kvs.Prepare();
  ScriptThread t([&](ScriptThread& self) {
    kvs.LoadAll(self);
    Rng rng(13);
    std::vector<bool> alive(300, true);
    for (int i = 0; i < 5000; ++i) {
      const uint64_t key = rng.NextBounded(300);
      if (rng.NextBool(0.3)) {
        EXPECT_EQ(kvs.Del(self, key), alive[key]) << "key " << key;
        alive[key] = false;
      } else {
        EXPECT_TRUE(kvs.Set(self, 0, key));
        alive[key] = true;
      }
    }
    for (uint64_t key = 0; key < 300; ++key) {
      EXPECT_EQ(kvs.Get(self, key, nullptr), static_cast<bool>(alive[key])) << key;
    }
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_GT(kvs.kvs_stats().segments_cleaned, 0u);
}


TEST(PageRank, WorksUnderFullHemem) {
  KroneckerConfig kconfig;
  kconfig.scale = 13;
  const CsrGraph graph = GenerateKronecker(kconfig);
  MachineConfig mconfig = TinyMachineConfig();
  mconfig.dram_bytes = KiB(512);  // graph + state exceed DRAM
  mconfig.page_bytes = KiB(64);
  Machine machine(mconfig);
  Hemem manager(machine, HememParams{});
  manager.Start();
  SimGraph sim_graph(manager, graph);
  PageRankConfig pconfig;
  pconfig.iterations = 4;
  PageRankBenchmark pr(sim_graph, pconfig);
  pr.Prepare();
  const PageRankResult result = pr.Run();
  // Exact scores even with migrations happening underneath.
  const auto expected = PageRankBenchmark::Reference(graph, pconfig);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.scores[v], expected[v], 1e-12);
  }
  EXPECT_GT(machine.nvm().stats().loads + machine.nvm().stats().stores, 0u);
}

TEST(Kronecker, GeneratesValidCsr) {
  KroneckerConfig config;
  config.scale = 10;
  config.average_degree = 8;
  const CsrGraph graph = GenerateKronecker(config);
  EXPECT_EQ(graph.num_vertices, 1024u);
  EXPECT_GT(graph.num_edges, 7000u);
  EXPECT_EQ(graph.offsets.size(), 1025u);
  EXPECT_EQ(graph.offsets[0], 0u);
  EXPECT_EQ(graph.offsets[1024], graph.num_edges);
  for (uint64_t v = 0; v < 1024; ++v) {
    EXPECT_LE(graph.offsets[v], graph.offsets[v + 1]);
  }
  for (const uint32_t n : graph.neighbors) {
    EXPECT_LT(n, 1024u);
  }
}

TEST(Kronecker, PowerLawSkew) {
  KroneckerConfig config;
  config.scale = 12;
  const CsrGraph graph = GenerateKronecker(config);
  // Top 1% of vertices by degree should hold a disproportionate share of
  // edges (power-law locality the paper relies on).
  std::vector<uint64_t> degrees(graph.num_vertices);
  for (uint64_t v = 0; v < graph.num_vertices; ++v) {
    degrees[v] = graph.Degree(v);
  }
  std::sort(degrees.rbegin(), degrees.rend());
  const uint64_t top = graph.num_vertices / 100;
  const uint64_t top_edges = std::accumulate(degrees.begin(), degrees.begin() + top, 0ull);
  EXPECT_GT(static_cast<double>(top_edges) / static_cast<double>(graph.num_edges), 0.10);
}

TEST(Kronecker, DeterministicForSeed) {
  KroneckerConfig config;
  config.scale = 8;
  const CsrGraph a = GenerateKronecker(config);
  const CsrGraph b = GenerateKronecker(config);
  EXPECT_EQ(a.neighbors, b.neighbors);
}

TEST(Bc, MatchesReferenceImplementation) {
  KroneckerConfig kconfig;
  kconfig.scale = 8;
  const CsrGraph graph = GenerateKronecker(kconfig);

  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SimGraph sim_graph(manager, graph);
  BcConfig bconfig;
  bconfig.iterations = 3;
  BcBenchmark bc(sim_graph, bconfig);
  bc.Prepare();
  const BcResult result = bc.Run();

  const std::vector<double> expected = BcBenchmark::Reference(graph, bc.sources());
  ASSERT_EQ(result.centrality.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.centrality[v], expected[v], 1e-9) << "vertex " << v;
  }
}

TEST(Bc, RecordsPerIterationMetrics) {
  KroneckerConfig kconfig;
  kconfig.scale = 8;
  const CsrGraph graph = GenerateKronecker(kconfig);
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kNvm, true);
  SimGraph sim_graph(manager, graph);
  BcConfig bconfig;
  bconfig.iterations = 4;
  BcBenchmark bc(sim_graph, bconfig);
  bc.Prepare();
  const BcResult result = bc.Run();
  ASSERT_EQ(result.iteration_time.size(), 4u);
  for (const SimTime t : result.iteration_time) {
    EXPECT_GT(t, 0);
  }
  EXPECT_EQ(result.total_time,
            std::accumulate(result.iteration_time.begin(), result.iteration_time.end(),
                            SimTime{0}));
}

TEST(Bc, NvmSlowerThanDram) {
  KroneckerConfig kconfig;
  kconfig.scale = 10;
  const CsrGraph graph = GenerateKronecker(kconfig);
  auto run = [&](Tier tier) {
    Machine machine(TinyMachineConfig());
    PlainMemory manager(machine, tier, true);
    SimGraph sim_graph(manager, graph);
    BcConfig bconfig;
    bconfig.iterations = 2;
    BcBenchmark bc(sim_graph, bconfig);
    bc.Prepare();
    return bc.Run().total_time;
  };
  EXPECT_GT(run(Tier::kNvm), run(Tier::kDram) * 2);
}


TEST(PageRank, MatchesReferenceImplementation) {
  KroneckerConfig kconfig;
  kconfig.scale = 9;
  const CsrGraph graph = GenerateKronecker(kconfig);
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SimGraph sim_graph(manager, graph);
  PageRankConfig pconfig;
  pconfig.iterations = 5;
  PageRankBenchmark pr(sim_graph, pconfig);
  pr.Prepare();
  const PageRankResult result = pr.Run();
  const auto expected = PageRankBenchmark::Reference(graph, pconfig);
  ASSERT_EQ(result.scores.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.scores[v], expected[v], 1e-12) << "vertex " << v;
  }
  ASSERT_EQ(result.iteration_time.size(), 5u);
}

TEST(PageRank, ScoresFormDistribution) {
  KroneckerConfig kconfig;
  kconfig.scale = 10;
  const CsrGraph graph = GenerateKronecker(kconfig);
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SimGraph sim_graph(manager, graph);
  PageRankConfig pconfig;
  pconfig.iterations = 8;
  PageRankBenchmark pr(sim_graph, pconfig);
  pr.Prepare();
  const PageRankResult result = pr.Run();
  double sum = 0.0;
  for (const double s : result.scores) {
    EXPECT_GE(s, 0.0);
    sum += s;
  }
  // Dangling vertices leak mass, so the sum is <= 1 but substantial.
  EXPECT_LE(sum, 1.0 + 1e-9);
  EXPECT_GT(sum, 0.3);
}

TEST(PageRank, HighDegreeVerticesRankHigher) {
  KroneckerConfig kconfig;
  kconfig.scale = 10;
  const CsrGraph graph = GenerateKronecker(kconfig);
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SimGraph sim_graph(manager, graph);
  PageRankBenchmark pr(sim_graph, PageRankConfig{});
  pr.Prepare();
  const PageRankResult result = pr.Run();
  // Average rank of the 16 highest in-degree vertices far exceeds the mean.
  std::vector<uint64_t> indegree(graph.num_vertices, 0);
  for (const uint32_t w : graph.neighbors) {
    indegree[w]++;
  }
  std::vector<uint32_t> order(graph.num_vertices);
  for (uint32_t v = 0; v < graph.num_vertices; ++v) {
    order[v] = v;
  }
  std::sort(order.begin(), order.end(),
            [&](uint32_t a, uint32_t b) { return indegree[a] > indegree[b]; });
  double top = 0.0;
  for (int i = 0; i < 16; ++i) {
    top += result.scores[order[static_cast<size_t>(i)]];
  }
  const double mean = 16.0 / static_cast<double>(graph.num_vertices);
  EXPECT_GT(top, mean * 10);
}


TEST(Silo, OrderStatusReadsLatestOrder) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SiloConfig config;
  config.warehouses = 1;
  SiloDb db(manager, config);
  ScriptThread t([&](ScriptThread& self) {
    db.Load(self);
    Rng rng(6);
    EXPECT_TRUE(db.OrderStatus(self, rng, 0));  // prefilled books: has orders
    db.NewOrder(self, rng, 0);
    EXPECT_TRUE(db.OrderStatus(self, rng, 0));
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
}

TEST(Silo, InitialOrderBooksArePrefilled) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SiloConfig config;
  config.warehouses = 2;
  SiloDb db(manager, config);
  ScriptThread t([&](ScriptThread& self) {
    db.Load(self);
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  const uint64_t expected = 2ull * config.districts_per_warehouse *
                            config.order_capacity_per_district / 2;
  EXPECT_EQ(db.orders_created(), expected);
  EXPECT_EQ(db.orders_delivered(), 0u);
}

TEST(Silo, DeliveryDrainsPrefilledBooks) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SiloConfig config;
  config.warehouses = 1;
  SiloDb db(manager, config);
  ScriptThread t([&](ScriptThread& self) {
    db.Load(self);
    Rng rng(8);
    for (int i = 0; i < 40; ++i) {
      db.Delivery(self, rng, 0);
    }
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  // Each Delivery handles one order per district (10 districts).
  EXPECT_EQ(db.orders_delivered(), 400u);
}

TEST(PageRank, ChargedTrafficMatchesGraphShape) {
  KroneckerConfig kconfig;
  kconfig.scale = 9;
  const CsrGraph graph = GenerateKronecker(kconfig);
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  SimGraph sim_graph(manager, graph);
  PageRankConfig pconfig;
  pconfig.iterations = 2;
  PageRankBenchmark pr(sim_graph, pconfig);
  pr.Prepare();
  pr.Run();
  // Per iteration: one next[] write per edge plus per-vertex reads; total
  // stores must be at least edges x iterations.
  EXPECT_GE(machine.dram().stats().stores,
            graph.num_edges * static_cast<uint64_t>(pconfig.iterations));
}

TEST(Gups, AsymmetricModeIssuesPureLoadsAndStores) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  GupsConfig config;
  config.threads = 2;
  config.working_set = MiB(16);
  config.hot_set = MiB(8);
  config.write_only_hot_fraction = 0.5;
  config.updates_per_thread = 20'000;
  GupsBenchmark gups(manager, config);
  gups.Prepare();
  const GupsResult result = gups.Run();
  EXPECT_EQ(result.total_updates, 40'000u);
  const auto& stats = machine.dram().stats();
  // Single accesses per op (no RMW): loads + stores ~= updates (+ prefill).
  EXPECT_LT(stats.loads + stats.stores, 41'000u);
  EXPECT_GT(stats.stores, 5'000u);   // write-only half of the hot set
  EXPECT_GT(stats.loads, 15'000u);   // everything else reads
}

}  // namespace
}  // namespace hemem
