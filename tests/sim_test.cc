// Unit tests for the virtual-time engine: scheduling order, penalties,
// contention, periodic actors, deadlines.

#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.h"

namespace hemem {
namespace {

// A thread that performs `steps` slices, each advancing by `step_ns`, and
// records its execution order into a shared log.
class StepThread : public SimThread {
 public:
  StepThread(std::string name, int steps, SimTime step_ns, std::vector<std::string>* log)
      : SimThread(std::move(name)), steps_(steps), step_ns_(step_ns), log_(log) {}

  bool RunSlice() override {
    if (log_ != nullptr) {
      log_->push_back(name());
    }
    Advance(step_ns_);
    return --steps_ > 0;
  }

 private:
  int steps_;
  SimTime step_ns_;
  std::vector<std::string>* log_;
};

TEST(Engine, RunsToCompletion) {
  Engine engine(4);
  StepThread t("a", 5, 100, nullptr);
  engine.AddThread(&t);
  const SimTime end = engine.Run();
  EXPECT_EQ(end, 500);
  EXPECT_EQ(t.now(), 500);
}

TEST(Engine, MinTimeFirstOrdering) {
  Engine engine(4);
  std::vector<std::string> log;
  StepThread fast("fast", 4, 10, &log);
  StepThread slow("slow", 2, 100, &log);
  engine.AddThread(&fast);
  engine.AddThread(&slow);
  engine.Run();
  // fast runs 4 slices (t=0,10,20,30) before slow's second slice at t=100.
  // Both start at 0; insertion order breaks the tie.
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log[0], "fast");
  EXPECT_EQ(log[1], "slow");
  EXPECT_EQ(log[2], "fast");
  EXPECT_EQ(log[3], "fast");
  EXPECT_EQ(log[4], "fast");
  EXPECT_EQ(log[5], "slow");
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run = []() {
    Engine engine(4);
    std::vector<std::string> log;
    StepThread a("a", 50, 7, &log);
    StepThread b("b", 50, 11, &log);
    StepThread c("c", 50, 13, &log);
    engine.AddThread(&a);
    engine.AddThread(&b);
    engine.AddThread(&c);
    engine.Run();
    return log;
  };
  EXPECT_EQ(run(), run());
}

TEST(Engine, StopsAtDeadline) {
  Engine engine(4);
  StepThread t("t", 1'000'000, 1000, nullptr);
  engine.AddThread(&t);
  const SimTime end = engine.Run(50'000);
  EXPECT_LE(end, 51'000);
  EXPECT_EQ(engine.live_foreground(), 0);
}

TEST(Engine, BackgroundThreadDoesNotKeepRunAlive) {
  class Forever : public SimThread {
   public:
    Forever() : SimThread("bg", /*foreground=*/false) {}
    bool RunSlice() override {
      Advance(10);
      return true;
    }
  };
  Engine engine(4);
  Forever bg;
  StepThread fg("fg", 3, 100, nullptr);
  engine.AddThread(&bg);
  engine.AddThread(&fg);
  const SimTime end = engine.Run();
  EXPECT_EQ(end, 300);
}

TEST(Engine, PenaltyDelaysThread) {
  Engine engine(4);
  StepThread t("t", 2, 100, nullptr);
  engine.AddThread(&t);
  t.AddPenalty(5000);
  engine.Run();
  // The penalty lands before the first slice: 5000 + 2*100.
  EXPECT_EQ(t.now(), 5200);
}

TEST(Engine, PenalizeForegroundSkipsInitiatorAndBackground) {
  Engine engine(4);
  StepThread a("a", 1, 10, nullptr);
  StepThread b("b", 1, 10, nullptr);
  class Bg : public SimThread {
   public:
    Bg() : SimThread("bg", false) {}
    bool RunSlice() override { return false; }
  };
  Bg bg;
  engine.AddThread(&a);
  engine.AddThread(&b);
  engine.AddThread(&bg);
  engine.PenalizeForeground(1000, &a);
  engine.Run();
  EXPECT_EQ(a.now(), 10);
  EXPECT_EQ(b.now(), 1010);
  EXPECT_EQ(bg.now(), 0);
}

TEST(Engine, ContentionBelowCoresIsUnity) {
  Engine engine(8);
  StepThread a("a", 1, 10, nullptr);
  StepThread b("b", 1, 10, nullptr);
  engine.AddThread(&a);
  engine.AddThread(&b);
  EXPECT_DOUBLE_EQ(engine.ContentionFactor(), 1.0);
}

TEST(Engine, ContentionAboveCoresStretchesCompute) {
  Engine engine(2);
  std::vector<std::unique_ptr<StepThread>> threads;
  for (int i = 0; i < 4; ++i) {
    threads.push_back(std::make_unique<StepThread>("t" + std::to_string(i), 1, 1, nullptr));
    engine.AddThread(threads.back().get());
  }
  EXPECT_DOUBLE_EQ(engine.ContentionFactor(), 2.0);
  // ChargeCompute is stretched by the factor.
  threads[0]->ChargeCompute(100);
  EXPECT_EQ(threads[0]->now(), 200);
}

TEST(Engine, ContentionDropsWhenThreadsFinish) {
  Engine engine(2);
  StepThread a("a", 1, 10, nullptr);
  StepThread b("b", 1, 10, nullptr);
  StepThread c("c", 10, 10, nullptr);
  StepThread d("d", 10, 10, nullptr);
  engine.AddThread(&a);
  engine.AddThread(&b);
  engine.AddThread(&c);
  engine.AddThread(&d);
  EXPECT_DOUBLE_EQ(engine.ContentionFactor(), 2.0);
  engine.Run();
  EXPECT_DOUBLE_EQ(engine.ContentionFactor(), 1.0);
}

TEST(Engine, CpuShareSettable) {
  Engine engine(1);
  StepThread a("a", 1, 10, nullptr);
  StepThread b("b", 1, 10, nullptr);
  engine.AddThread(&a);
  engine.AddThread(&b);
  a.set_cpu_share(0.5);
  EXPECT_DOUBLE_EQ(engine.ContentionFactor(), 1.5);
}

TEST(Engine, StreamIdsAreSequential) {
  Engine engine(4);
  StepThread a("a", 1, 1, nullptr);
  StepThread b("b", 1, 1, nullptr);
  engine.AddThread(&a);
  engine.AddThread(&b);
  EXPECT_EQ(a.stream_id(), 0u);
  EXPECT_EQ(b.stream_id(), 1u);
}

class CountingPeriodic : public PeriodicThread {
 public:
  CountingPeriodic(SimTime period, SimTime work)
      : PeriodicThread("periodic", period), work_(work) {}

  SimTime Tick() override {
    ticks_++;
    tick_times_.push_back(now());
    return work_;
  }

  int ticks() const { return ticks_; }
  const std::vector<SimTime>& tick_times() const { return tick_times_; }

 private:
  SimTime work_;
  int ticks_ = 0;
  std::vector<SimTime> tick_times_;
};

TEST(PeriodicThread, TicksAtPeriod) {
  Engine engine(4);
  CountingPeriodic periodic(100, 5);
  StepThread fg("fg", 10, 100, nullptr);
  engine.AddThread(&periodic);
  engine.AddThread(&fg);
  engine.Run();
  // fg runs until t=1000; the periodic actor ticks at 0,100,...
  EXPECT_GE(periodic.ticks(), 9);
  for (size_t i = 1; i < periodic.tick_times().size(); ++i) {
    EXPECT_EQ(periodic.tick_times()[i] - periodic.tick_times()[i - 1], 100);
  }
}

TEST(PeriodicThread, LongWorkDelaysNextTick) {
  Engine engine(4);
  CountingPeriodic periodic(100, 250);  // work longer than the period
  StepThread fg("fg", 10, 100, nullptr);
  engine.AddThread(&periodic);
  engine.AddThread(&fg);
  engine.Run();
  for (size_t i = 1; i < periodic.tick_times().size(); ++i) {
    EXPECT_GE(periodic.tick_times()[i] - periodic.tick_times()[i - 1], 250);
  }
}

TEST(PeriodicThread, DutyCycleReflectsLoad) {
  Engine engine(4);
  CountingPeriodic busy(100, 100);
  CountingPeriodic idle(100, 0);
  StepThread fg("fg", 100, 100, nullptr);
  engine.AddThread(&busy);
  engine.AddThread(&idle);
  engine.AddThread(&fg);
  engine.Run();
  EXPECT_GT(busy.duty_cycle(), 0.9);
  EXPECT_LT(idle.duty_cycle(), 0.1);
}


TEST(Engine, EmptyRunReturnsZero) {
  Engine engine(4);
  EXPECT_EQ(engine.Run(), 0);
  EXPECT_EQ(engine.now(), 0);
}

TEST(Engine, DeadlineBeforeFirstSliceParksEveryone) {
  Engine engine(4);
  StepThread t("t", 10, 1000, nullptr);
  engine.AddThread(&t);
  t.AddPenalty(5000);  // first runnable moment is past the deadline
  EXPECT_LE(engine.Run(1000), 1000);
  EXPECT_EQ(engine.live_foreground(), 0);
}

TEST(PeriodicThread, PeriodAdjustable) {
  Engine engine(4);
  CountingPeriodic periodic(1000, 0);
  StepThread fg("fg", 10, 1000, nullptr);
  engine.AddThread(&periodic);
  engine.AddThread(&fg);
  periodic.set_period(100);
  engine.Run();
  EXPECT_GT(periodic.ticks(), 50);  // ~100 ticks at the shortened period
}

TEST(SimThread, AdvanceToOnlyMovesForward) {
  StepThread t("t", 1, 1, nullptr);
  t.AdvanceTo(100);
  EXPECT_EQ(t.now(), 100);
  t.AdvanceTo(50);
  EXPECT_EQ(t.now(), 100);
}

}  // namespace
}  // namespace hemem
