// Unit tests for the tier layer: Machine, FrameAllocator, PlainMemory,
// X-Mem, memory mode, and Nimble.

#include <set>

#include <gtest/gtest.h>

#include "test_util.h"
#include "tier/machine.h"
#include "tier/memory_mode.h"
#include "tier/nimble.h"
#include "tier/plain.h"
#include "tier/thermostat.h"
#include "tier/trace.h"
#include "tier/xmem.h"

namespace hemem {
namespace {

TEST(MachineConfig, ScaledPreservesRatio) {
  const MachineConfig config = MachineConfig::Scaled(64.0);
  EXPECT_EQ(config.dram_bytes, GiB(3));
  EXPECT_EQ(config.nvm_bytes, GiB(12));
  EXPECT_DOUBLE_EQ(static_cast<double>(config.nvm_bytes) /
                       static_cast<double>(config.dram_bytes),
                   4.0);
  EXPECT_DOUBLE_EQ(config.label_scale, 64.0);
}

TEST(FrameAllocator, SequentialAllocation) {
  FrameAllocator alloc(MiB(8), MiB(2), 0, false);
  EXPECT_EQ(alloc.total_frames(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    const auto f = alloc.Alloc();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(*f, i);
  }
  EXPECT_FALSE(alloc.Alloc().has_value());
}

TEST(FrameAllocator, FreeAndReuse) {
  FrameAllocator alloc(MiB(4), MiB(2), 0, false);
  const auto a = alloc.Alloc();
  const auto b = alloc.Alloc();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(alloc.free_bytes(), 0u);
  alloc.Free(*a);
  EXPECT_EQ(alloc.free_bytes(), MiB(2));
  const auto c = alloc.Alloc();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, *a);  // LIFO reuse
}

TEST(FrameAllocator, ShuffledCoversAllFramesOnce) {
  FrameAllocator alloc(MiB(32), MiB(2), /*shuffle_seed=*/77, false);
  std::set<uint32_t> seen;
  bool in_order = true;
  uint32_t prev = 0;
  for (int i = 0; i < 16; ++i) {
    const auto f = alloc.Alloc();
    ASSERT_TRUE(f.has_value());
    EXPECT_LT(*f, 16u);
    if (i > 0 && *f != prev + 1) {
      in_order = false;
    }
    prev = *f;
    seen.insert(*f);
  }
  EXPECT_EQ(seen.size(), 16u);
  EXPECT_FALSE(in_order);
}

TEST(FrameAllocator, OvercommitNeverFails) {
  FrameAllocator alloc(MiB(4), MiB(2), 0, /*allow_overcommit=*/true);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(alloc.Alloc().has_value());
  }
}

TEST(PlainMemory, EagerMappingNoFaults) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, false);
  const uint64_t va = manager.Mmap(MiB(8));
  PageEntry* entry = machine.page_table().Lookup(va);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->present);
  EXPECT_EQ(entry->tier, Tier::kDram);
  EXPECT_EQ(manager.stats().missing_faults, 0u);
}

TEST(PlainMemory, AccessChargesDevice) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kNvm, false);
  const uint64_t va = manager.Mmap(MiB(4));
  ScriptThread t([&](ScriptThread& self) {
    manager.Access(self, va, 64, AccessKind::kLoad);
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_GT(t.now(), 0);
  EXPECT_EQ(machine.nvm().stats().loads, 1u);
  EXPECT_EQ(machine.dram().stats().loads, 0u);
}

TEST(PlainMemory, MunmapFreesFrames) {
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, false);
  const uint64_t va = manager.Mmap(MiB(8));
  manager.Munmap(va);
  // Whole DRAM allocatable again via a fresh region.
  const uint64_t va2 = manager.Mmap(MiB(64));
  EXPECT_NE(va2, 0u);
}

TEST(XMem, LargeAllocationsGoToNvm) {
  Machine machine(TinyMachineConfig());
  XMem manager(machine);  // threshold = 1 GiB / 3072 scale = 349,525 bytes
  const uint64_t large = manager.Mmap(MiB(8), {.label = "large"});
  EXPECT_EQ(machine.page_table().Lookup(large)->tier, Tier::kNvm);
}

TEST(XMem, SmallAllocationsStayInDram) {
  Machine machine(TinyMachineConfig());
  XMem manager(machine);
  const uint64_t small = manager.Mmap(KiB(64), {.label = "small"});
  EXPECT_EQ(machine.page_table().Lookup(small)->tier, Tier::kDram);
}

TEST(XMem, PinOverridesPlacement) {
  Machine machine(TinyMachineConfig());
  XMem manager(machine);
  const uint64_t va = manager.Mmap(MiB(8), {.label = "pin", .pin_tier = Tier::kDram});
  EXPECT_EQ(machine.page_table().Lookup(va)->tier, Tier::kDram);
}

TEST(XMem, NoMigrationEver) {
  Machine machine(TinyMachineConfig());
  XMem manager(machine);
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(8));
  ScriptThread t([&, n = 0](ScriptThread& self) mutable {
    manager.Access(self, va + static_cast<uint64_t>(n % 8) * 64, 8, AccessKind::kStore);
    return ++n < 10000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_EQ(manager.stats().pages_promoted, 0u);
  EXPECT_EQ(machine.page_table().Lookup(va)->tier, Tier::kNvm);
}

TEST(MemoryMode, ColdMissesThenHits) {
  Machine machine(TinyMachineConfig());
  MemoryMode manager(machine);
  const uint64_t va = manager.Mmap(MiB(1));
  ScriptThread t([&, n = 0](ScriptThread& self) mutable {
    manager.Access(self, va + static_cast<uint64_t>(n % 64) * 64, 64, AccessKind::kLoad);
    return ++n < 640;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  const MemoryModeStats& stats = manager.mm_stats();
  // First pass over 64 lines misses; the following passes hit.
  EXPECT_GE(stats.misses, 64u);
  EXPECT_GT(stats.hits, 500u);
}

TEST(MemoryMode, DirtyEvictionsWriteNvm) {
  MachineConfig config = TinyMachineConfig();
  config.dram_bytes = MiB(1);  // tiny cache to force conflicts
  config.page_bytes = KiB(64);
  Machine machine(config);
  MemoryMode manager(machine);
  // Working set far larger than the cache, all stores.
  const uint64_t va = manager.Mmap(MiB(32));
  Rng rng(5);
  ScriptThread t([&, n = 0](ScriptThread& self) mutable {
    manager.Access(self, va + rng.NextBounded(MiB(32) / 64) * 64, 64, AccessKind::kStore);
    return ++n < 20000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_GT(manager.mm_stats().writebacks, 1000u);
  EXPECT_GT(machine.nvm().stats().media_bytes_written, 0u);
}

TEST(MemoryMode, HitRateDegradesWithOccupancy) {
  // Working set at 25% of DRAM vs 90% of DRAM: conflict misses grow.
  auto run = [](uint64_t ws) {
    MachineConfig config = TinyMachineConfig();
    config.page_bytes = KiB(64);
    Machine machine(config);
    MemoryMode manager(machine);
    const uint64_t va = manager.Mmap(ws);
    Rng rng(9);
    ScriptThread t([&, n = 0](ScriptThread& self) mutable {
      manager.Access(self, va + rng.NextBounded(ws / 64) * 64, 64, AccessKind::kLoad);
      return ++n < 200000;
    });
    machine.engine().AddThread(&t);
    machine.engine().Run();
    return manager.mm_stats().HitRate();
  };
  const double small = run(MiB(16));
  const double large = run(MiB(58));
  EXPECT_GT(small, large + 0.02);
}

TEST(Nimble, FaultPrefersDram) {
  Machine machine(TinyMachineConfig());
  Nimble manager(machine);
  const uint64_t va = manager.Mmap(MiB(4));
  ScriptThread t([&](ScriptThread& self) {
    manager.Access(self, va, 8, AccessKind::kLoad);
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_EQ(machine.page_table().Lookup(va)->tier, Tier::kDram);
  EXPECT_EQ(manager.stats().missing_faults, 1u);
}

TEST(Nimble, OverflowsToNvmWhenDramFull) {
  Machine machine(TinyMachineConfig());
  Nimble manager(machine);
  // Touch more than DRAM capacity (64 MiB) worth of pages.
  const uint64_t va = manager.Mmap(MiB(128));
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    manager.Access(self, va + static_cast<uint64_t>(n) * MiB(1), 8, AccessKind::kStore);
    return ++n < 128;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_EQ(machine.page_table().Lookup(va)->tier, Tier::kDram);
  EXPECT_EQ(machine.page_table().Lookup(va + MiB(127))->tier, Tier::kNvm);
}

TEST(Nimble, PromotesAccessedNvmPages) {
  Machine machine(TinyMachineConfig());
  NimbleParams params;
  params.scan_period = 10 * kMillisecond;
  Nimble manager(machine, params);
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(128));
  // Fault everything in (first 64 pages to DRAM, rest to NVM), then hammer
  // one NVM-resident page long enough for scan+migrate to kick in.
  const uint64_t hot_va = va + MiB(100);
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    if (n < 128) {
      manager.Access(self, va + static_cast<uint64_t>(n) * MiB(1), 8, AccessKind::kStore);
    } else {
      manager.Access(self, hot_va, 8, AccessKind::kLoad);
      self.Advance(10 * kMicrosecond);  // stretch the run past several scans
    }
    return ++n < 20000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_EQ(machine.page_table().Lookup(hot_va)->tier, Tier::kDram);
  EXPECT_GT(manager.stats().pages_promoted, 0u);
}

TEST(Nimble, ScanClearsAccessedBits) {
  Machine machine(TinyMachineConfig());
  NimbleParams params;
  params.scan_period = kMillisecond;
  Nimble manager(machine, params);
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(2));
  ScriptThread t([&, n = 0](ScriptThread& self) mutable {
    if (n == 0) {
      manager.Access(self, va, 8, AccessKind::kStore);
    } else {
      self.Advance(kMillisecond);  // idle long enough for a scan
    }
    return ++n < 10;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_FALSE(machine.page_table().Lookup(va)->accessed);
}

TEST(Nimble, ShootdownsPenalizeApplication)
{
  MachineConfig config = TinyMachineConfig();
  Machine machine(config);
  NimbleParams params;
  params.scan_period = kMillisecond;
  Nimble manager(machine, params);
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(32));
  Rng rng(3);
  SimTime idle_end = 0;
  ScriptThread t([&, n = 0](ScriptThread& self) mutable {
    manager.Access(self, va + rng.NextBounded(MiB(32) / 8) * 8, 8, AccessKind::kStore);
    idle_end = self.now();
    return ++n < 50000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_GT(machine.tlb().stats().victim_interrupts, 0u);
}



// --- Thermostat baseline -----------------------------------------------------

TEST(Thermostat, FaultsInLikeKernel) {
  Machine machine(TinyMachineConfig());
  Thermostat manager(machine);
  const uint64_t va = manager.Mmap(MiB(4));
  ScriptThread t([&](ScriptThread& self) {
    manager.Access(self, va, 8, AccessKind::kLoad);
    return false;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_EQ(machine.page_table().Lookup(va)->tier, Tier::kDram);
  EXPECT_EQ(manager.stats().missing_faults, 1u);
}

TEST(Thermostat, SamplesAndCountsPoisonFaults) {
  Machine machine(TinyMachineConfig());
  ThermostatParams params;
  params.sample_fraction = 1.0;  // sample everything: deterministic coverage
  Thermostat manager(machine, params);
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(8));
  ScriptThread t([&, n = 0](ScriptThread& self) mutable {
    manager.Access(self, va + static_cast<uint64_t>(n % 8) * MiB(1), 8, AccessKind::kLoad);
    self.Advance(10 * kMicrosecond);
    return ++n < 2000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  EXPECT_GT(manager.tstats().intervals, 1u);
  EXPECT_GT(manager.tstats().pages_sampled, 0u);
  EXPECT_GT(manager.tstats().poison_faults, 0u);
}

TEST(Thermostat, PromotesSampledHotNvmPage) {
  Machine machine(TinyMachineConfig());
  ThermostatParams params;
  params.sample_fraction = 1.0;
  params.cold_access_threshold = 4;
  Thermostat manager(machine, params);
  manager.Start();
  const uint64_t va = manager.Mmap(MiB(128));
  const uint64_t hot_va = va + MiB(100);  // faults into NVM (DRAM is 64 MiB)
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    if (n < 128) {
      manager.Access(self, va + static_cast<uint64_t>(n) * MiB(1), 8, AccessKind::kStore);
    } else {
      manager.Access(self, hot_va, 8, AccessKind::kLoad);
      self.Advance(5 * kMicrosecond);
    }
    return ++n < 60000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();
  // Hot page sampled at least once across intervals and promoted when a
  // free DRAM frame existed... DRAM is full here, so what matters is that
  // cold DRAM pages were demoted, opening room eventually.
  EXPECT_GT(manager.stats().pages_demoted, 0u);
  EXPECT_EQ(machine.page_table().Lookup(hot_va)->tier, Tier::kDram);
}

// --- Trace capture and replay ----------------------------------------------

TEST(Trace, RecorderCapturesAllocationsAndAccesses) {
  Machine machine(TinyMachineConfig());
  PlainMemory inner(machine, Tier::kDram, true);
  TraceRecorder recorder(inner);
  const uint64_t va = recorder.Mmap(MiB(2), {.label = "traced"});
  ScriptThread t([&, n = 0](ScriptThread& self) mutable {
    recorder.Access(self, va + static_cast<uint64_t>(n) * 64, 64, AccessKind::kLoad);
    recorder.Access(self, va, 8, AccessKind::kStore);
    return ++n < 10;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();

  const Trace& trace = recorder.trace();
  ASSERT_EQ(trace.allocs.size(), 1u);
  EXPECT_EQ(trace.allocs[0].va, va);
  EXPECT_EQ(trace.allocs[0].bytes, MiB(2));
  EXPECT_EQ(trace.allocs[0].label, "traced");
  ASSERT_EQ(trace.accesses.size(), 20u);
  EXPECT_EQ(trace.accesses[0].kind, AccessKind::kLoad);
  EXPECT_EQ(trace.accesses[1].kind, AccessKind::kStore);
  EXPECT_EQ(trace.accesses[1].va, va);
}

TEST(Trace, RecorderIsTransparent) {
  // Timing through the recorder matches timing without it.
  auto run = [](bool traced) {
    Machine machine(TinyMachineConfig());
    PlainMemory inner(machine, Tier::kNvm, true);
    TraceRecorder recorder(inner);
    TieredMemoryManager& manager = traced ? static_cast<TieredMemoryManager&>(recorder)
                                          : inner;
    const uint64_t va = manager.Mmap(MiB(2));
    ScriptThread t([&, n = 0](ScriptThread& self) mutable {
      manager.Access(self, va + static_cast<uint64_t>(n % 100) * 128, 64,
                     AccessKind::kLoad);
      return ++n < 500;
    });
    machine.engine().AddThread(&t);
    return machine.engine().Run();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Trace, ReplayReproducesTiming) {
  // Record a workload on one machine, replay it on an identical one: the
  // replayed run takes the same simulated time.
  Trace trace;
  SimTime recorded_elapsed = 0;
  {
    Machine machine(TinyMachineConfig());
    PlainMemory inner(machine, Tier::kNvm, true);
    TraceRecorder recorder(inner);
    const uint64_t va = recorder.Mmap(MiB(4));
    Rng rng(9);
    ScriptThread t([&, n = 0](ScriptThread& self) mutable {
      recorder.Access(self, va + rng.NextBounded(MiB(4) / 64) * 64, 64,
                      n % 3 == 0 ? AccessKind::kStore : AccessKind::kLoad);
      return ++n < 2000;
    });
    machine.engine().AddThread(&t);
    recorded_elapsed = machine.engine().Run();
    trace = recorder.TakeTrace();
  }
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kNvm, true);
  TraceReplayer replayer(manager, trace);
  const TraceReplayer::Result result = replayer.Run();
  EXPECT_EQ(result.accesses, 2000u);
  EXPECT_NEAR(static_cast<double>(result.elapsed), static_cast<double>(recorded_elapsed),
              static_cast<double>(recorded_elapsed) * 0.02);
}

TEST(Trace, ReplayAgainstDifferentSystem) {
  // The whole point: capture once, ask "what if" under another manager.
  Trace trace;
  {
    Machine machine(TinyMachineConfig());
    PlainMemory inner(machine, Tier::kNvm, true);
    TraceRecorder recorder(inner);
    const uint64_t va = recorder.Mmap(MiB(4));
    ScriptThread t([&, n = 0](ScriptThread& self) mutable {
      recorder.Access(self, va + static_cast<uint64_t>(n % 64) * 64, 64, AccessKind::kLoad);
      return ++n < 5000;
    });
    machine.engine().AddThread(&t);
    machine.engine().Run();
    trace = recorder.TakeTrace();
  }
  Machine machine(TinyMachineConfig());
  PlainMemory dram(machine, Tier::kDram, true);
  TraceReplayer replayer(dram, trace);
  const TraceReplayer::Result result = replayer.Run();
  EXPECT_EQ(result.accesses, 5000u);
  EXPECT_GT(machine.dram().stats().loads, 4999u);
}

TEST(Trace, PreserveGapsStretchesReplay) {
  Trace trace;
  trace.allocs.push_back(TraceAlloc{0x1000, MiB(1), "gap"});
  for (int i = 0; i < 10; ++i) {
    trace.accesses.push_back(TraceAccess{static_cast<SimTime>(i) * kMillisecond,
                                         0x1000 + static_cast<uint64_t>(i) * 64, 64, 0,
                                         AccessKind::kLoad});
  }
  Machine machine(TinyMachineConfig());
  PlainMemory manager(machine, Tier::kDram, true);
  TraceReplayer replayer(manager, trace, /*preserve_gaps=*/true);
  const TraceReplayer::Result result = replayer.Run();
  EXPECT_GE(result.elapsed, 9 * kMillisecond);
}

TEST(Trace, BinaryRoundTrip) {
  Trace trace;
  trace.allocs.push_back(TraceAlloc{0xabc000, MiB(3), "region-a"});
  trace.allocs.push_back(TraceAlloc{0xdef000, KiB(64), ""});
  for (int i = 0; i < 100; ++i) {
    trace.accesses.push_back(TraceAccess{i * 10, 0xabc000u + static_cast<uint64_t>(i),
                                         static_cast<uint32_t>(8 + i), static_cast<uint16_t>(i % 4),
                                         i % 2 == 0 ? AccessKind::kLoad : AccessKind::kStore});
  }
  const std::string path = "/tmp/hemem_trace_test.bin";
  ASSERT_TRUE(trace.SaveTo(path));
  Trace loaded;
  ASSERT_TRUE(Trace::LoadFrom(path, &loaded));
  ASSERT_EQ(loaded.allocs.size(), trace.allocs.size());
  EXPECT_EQ(loaded.allocs[0].label, "region-a");
  EXPECT_EQ(loaded.allocs[1].bytes, KiB(64));
  ASSERT_EQ(loaded.accesses.size(), trace.accesses.size());
  for (size_t i = 0; i < trace.accesses.size(); ++i) {
    EXPECT_EQ(loaded.accesses[i].va, trace.accesses[i].va);
    EXPECT_EQ(loaded.accesses[i].size, trace.accesses[i].size);
    EXPECT_EQ(loaded.accesses[i].kind, trace.accesses[i].kind);
  }
  EXPECT_FALSE(Trace::LoadFrom("/tmp/does-not-exist.bin", &loaded));
}

}  // namespace
}  // namespace hemem
