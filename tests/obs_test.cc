// Unit tests for the observability layer (src/obs): metrics registry,
// event tracer (including JSON well-formedness of its output), periodic
// sampler bucket alignment, and the run-report exporter.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "sim/script_thread.h"

namespace hemem {
namespace {

using obs::EventTracer;
using obs::MetricsRegistry;
using obs::MetricsSampler;
using obs::MetricsSnapshot;

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser: accepts exactly the RFC 8259
// grammar, no extensions. The emitted report/trace files must parse — this
// is the test's stand-in for loading them into Perfetto / python json.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    if (!DigitRun()) {
      return false;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!DigitRun()) {
        return false;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!DigitRun()) {
        return false;
      }
    }
    return pos_ > start;
  }

  bool DigitRun() {
    const size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const size_t len = std::strlen(lit);
    if (s_.compare(pos_, len, lit) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string TempPath(const char* leaf) {
  return testing::TempDir() + "/" + leaf;
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsRegistry, OwnedInstrumentsSnapshotAndReset) {
  MetricsRegistry registry;
  int owner = 0;
  obs::Counter* c = registry.AddCounter(&owner, "x.count");
  obs::Gauge* g = registry.AddGauge(&owner, "x.level");
  obs::HistogramMetric* h = registry.AddHistogram(&owner, "x.latency");

  c->Add(3);
  c->Add();
  g->Set(2.5);
  h->Record(10);
  h->Record(20);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.Find("x.count"), nullptr);
  EXPECT_EQ(snap.Find("x.count")->u, 4u);
  EXPECT_DOUBLE_EQ(snap.Find("x.level")->AsDouble(), 2.5);
  ASSERT_NE(snap.Find("x.latency.count"), nullptr);
  EXPECT_EQ(snap.Find("x.latency.count")->u, 2u);
  EXPECT_NE(snap.Find("x.latency.p50"), nullptr);
  EXPECT_NE(snap.Find("x.latency.p99"), nullptr);
  EXPECT_NE(snap.Find("x.latency.max"), nullptr);
  EXPECT_NE(snap.Find("x.latency.mean"), nullptr);

  // Snapshot is name-sorted.
  const auto& entries = snap.entries();
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].name, entries[i].name);
  }

  registry.Reset();
  const MetricsSnapshot zeroed = registry.Snapshot();
  EXPECT_EQ(zeroed.Find("x.count")->u, 0u);
  EXPECT_DOUBLE_EQ(zeroed.Find("x.level")->AsDouble(), 0.0);
  EXPECT_EQ(zeroed.Find("x.latency.count")->u, 0u);
}

TEST(MetricsRegistry, ProvidersEmitAndDuplicateNamesDisambiguate) {
  MetricsRegistry registry;
  int a = 0, b = 0;
  registry.AddProvider(&a, [](obs::MetricsEmitter& e) {
    e.Emit("manager.HeMem.faults", static_cast<uint64_t>(7));
    e.Emit("manager.HeMem.rate", 0.5);
  });
  registry.AddProvider(&b, [](obs::MetricsEmitter& e) {
    e.Emit("manager.HeMem.faults", static_cast<uint64_t>(9));
  });

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.Find("manager.HeMem.faults"), nullptr);
  EXPECT_EQ(snap.Find("manager.HeMem.faults")->u, 7u);
  EXPECT_DOUBLE_EQ(snap.Find("manager.HeMem.rate")->AsDouble(), 0.5);
  // Second emitter of the same name lands under a "#2" prefix segment.
  ASSERT_NE(snap.Find("manager.HeMem#2.faults"), nullptr);
  EXPECT_EQ(snap.Find("manager.HeMem#2.faults")->u, 9u);
}

TEST(MetricsRegistry, RemoveOwnerDropsAllRegistrations) {
  MetricsRegistry registry;
  int a = 0, b = 0;
  registry.AddCounter(&a, "a.count");
  registry.AddProvider(&a, [](obs::MetricsEmitter& e) { e.Emit("a.extra", 1.0); });
  registry.AddCounter(&b, "b.count");
  EXPECT_EQ(registry.registration_count(), 3u);

  registry.RemoveOwner(&a);
  EXPECT_EQ(registry.registration_count(), 1u);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Find("a.count"), nullptr);
  EXPECT_EQ(snap.Find("a.extra"), nullptr);
  EXPECT_NE(snap.Find("b.count"), nullptr);
}

// ---------------------------------------------------------------------------
// Event tracer

TEST(EventTracer, RecordsEventsAndSortsJsonByTimestamp) {
  EventTracer tracer;
  tracer.set_enabled(true);
  const obs::TrackId track = tracer.RegisterTrack("component");
  EXPECT_GE(track, EventTracer::kComponentTrackBase);
  EXPECT_EQ(tracer.RegisterTrack("component"), track);  // dedup by name

  // Emit out of timestamp order; WriteJson must sort.
  tracer.Duration(track, "late", "test", 2000, 2500, {{"bytes", 4096.0}});
  tracer.Instant(track, "early", "test", 1000);
  ASSERT_EQ(tracer.event_count(), 2u);

  const std::string path = TempPath("trace_sorted.json");
  ASSERT_TRUE(tracer.WriteJson(path));
  const std::string text = ReadFile(path);

  JsonChecker checker(text);
  EXPECT_TRUE(checker.Valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  const size_t early = text.find("\"early\"");
  const size_t late = text.find("\"late\"");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(early, late);
  // Integral args print as integers, not as "4096.000000".
  EXPECT_NE(text.find("\"bytes\":4096"), std::string::npos);
  EXPECT_EQ(text.find("4096.0"), std::string::npos);
}

TEST(EventTracer, EscapesNamesInJson) {
  EventTracer tracer;
  tracer.set_enabled(true);
  const obs::TrackId track = tracer.RegisterTrack("quote\"back\\slash");
  tracer.Instant(track, "ev\"ent", "test", 10);

  const std::string path = TempPath("trace_escaped.json");
  ASSERT_TRUE(tracer.WriteJson(path));
  const std::string text = ReadFile(path);
  JsonChecker checker(text);
  EXPECT_TRUE(checker.Valid()) << text;
  EXPECT_NE(text.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(EventTracer, ClearDropsEvents) {
  EventTracer tracer;
  tracer.set_enabled(true);
  tracer.Instant(tracer.RegisterTrack("t"), "e", "test", 1);
  EXPECT_EQ(tracer.event_count(), 1u);
  tracer.Clear();
  EXPECT_EQ(tracer.event_count(), 0u);
}

// ---------------------------------------------------------------------------
// Sampler

TEST(MetricsSampler, BucketsAlignToSamplingIntervals) {
  MetricsRegistry registry;
  int owner = 0;
  obs::Counter* counter = registry.AddCounter(&owner, "work.ops");

  Engine engine;
  MetricsSampler sampler(registry, kMillisecond);
  engine.AddObserverThread(&sampler);

  // Increment strictly inside each interval: +5 at 0.5 ms, +7 at 1.5 ms,
  // +9 at 2.5 ms. Half-period slices put every increment mid-interval, so
  // the engine's run-ahead (a slice straddling a tick time commits before
  // the tick pops) cannot move an increment across a sampling boundary; the
  // trailing idle step keeps the worker live past the 3 ms tick.
  int step = 0;
  ScriptThread worker([&](ScriptThread& self) {
    self.Advance(kMillisecond / 2);
    if (step % 2 == 0 && step < 6) {
      counter->Add(5 + static_cast<uint64_t>(step));
    }
    return ++step < 7;
  });
  engine.AddThread(&worker);
  engine.Run();

  ASSERT_TRUE(sampler.series().count("work.ops"));
  const TimeSeries& series = sampler.series().at("work.ops");
  EXPECT_EQ(series.bucket_width(), kMillisecond);
  // Delta for interval k lands in bucket k.
  ASSERT_GE(series.buckets().size(), 3u);
  EXPECT_DOUBLE_EQ(series.buckets()[0], 5.0);
  EXPECT_DOUBLE_EQ(series.buckets()[1], 7.0);
  EXPECT_DOUBLE_EQ(series.buckets()[2], 9.0);
  EXPECT_GE(sampler.samples_taken(), 3u);
}

// ---------------------------------------------------------------------------
// Run report

TEST(RunReport, WritesWellFormedNestedJson) {
  MetricsRegistry registry;
  int owner = 0;
  registry.AddCounter(&owner, "device.dram.loads")->Add(11);
  registry.AddGauge(&owner, "pebs.drop_rate")->Set(0.25);

  Engine engine;
  MetricsSampler sampler(registry, kMillisecond);
  engine.AddObserverThread(&sampler);
  ScriptThread worker([&](ScriptThread& self) {
    self.Advance(3 * kMillisecond + kMillisecond / 2);
    return false;
  });
  engine.AddThread(&worker);
  engine.Run();

  const std::string path = TempPath("run_report.json");
  ASSERT_TRUE(obs::WriteRunReport(path, registry.Snapshot(), &sampler,
                                  {{"workload", "unit"}, {"system", "none"}}));
  const std::string text = ReadFile(path);
  JsonChecker checker(text);
  EXPECT_TRUE(checker.Valid()) << text;

  // Dotted names nest; meta and series sections are present.
  EXPECT_NE(text.find("\"meta\""), std::string::npos);
  EXPECT_NE(text.find("\"workload\": \"unit\""), std::string::npos);
  EXPECT_NE(text.find("\"dram\""), std::string::npos);
  EXPECT_NE(text.find("\"loads\": 11"), std::string::npos);
  EXPECT_NE(text.find("\"series\""), std::string::npos);
  EXPECT_NE(text.find("\"period_ns\""), std::string::npos);
}

TEST(RunReport, SnapshotToJsonHandlesLeafPrefixConflict) {
  MetricsRegistry registry;
  int owner = 0;
  registry.AddCounter(&owner, "pebs.samples")->Add(5);
  registry.AddCounter(&owner, "pebs.samples.dropped")->Add(2);

  const std::string text = obs::SnapshotToJson(registry.Snapshot());
  JsonChecker checker(text);
  EXPECT_TRUE(checker.Valid()) << text;
  // The leaf that is also a prefix keeps its value under "value".
  EXPECT_NE(text.find("\"value\": 5"), std::string::npos);
  EXPECT_NE(text.find("\"dropped\": 2"), std::string::npos);
}

}  // namespace
}  // namespace hemem
