// Unit tests for the observability layer (src/obs): metrics registry,
// event tracer (including JSON well-formedness of its output), periodic
// sampler bucket alignment, and the run-report exporter.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/audit.h"
#include "obs/heatmap.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "sim/script_thread.h"

namespace hemem {
namespace {

using obs::EventTracer;
using obs::MetricsRegistry;
using obs::MetricsSampler;
using obs::MetricsSnapshot;

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser: accepts exactly the RFC 8259
// grammar, no extensions. The emitted report/trace files must parse — this
// is the test's stand-in for loading them into Perfetto / python json.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    if (!DigitRun()) {
      return false;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!DigitRun()) {
        return false;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!DigitRun()) {
        return false;
      }
    }
    return pos_ > start;
  }

  bool DigitRun() {
    const size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const size_t len = std::strlen(lit);
    if (s_.compare(pos_, len, lit) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string TempPath(const char* leaf) {
  return testing::TempDir() + "/" + leaf;
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsRegistry, OwnedInstrumentsSnapshotAndReset) {
  MetricsRegistry registry;
  int owner = 0;
  obs::Counter* c = registry.AddCounter(&owner, "x.count");
  obs::Gauge* g = registry.AddGauge(&owner, "x.level");
  obs::HistogramMetric* h = registry.AddHistogram(&owner, "x.latency");

  c->Add(3);
  c->Add();
  g->Set(2.5);
  h->Record(10);
  h->Record(20);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.Find("x.count"), nullptr);
  EXPECT_EQ(snap.Find("x.count")->u, 4u);
  EXPECT_DOUBLE_EQ(snap.Find("x.level")->AsDouble(), 2.5);
  ASSERT_NE(snap.Find("x.latency.count"), nullptr);
  EXPECT_EQ(snap.Find("x.latency.count")->u, 2u);
  EXPECT_NE(snap.Find("x.latency.p50"), nullptr);
  EXPECT_NE(snap.Find("x.latency.p99"), nullptr);
  EXPECT_NE(snap.Find("x.latency.max"), nullptr);
  EXPECT_NE(snap.Find("x.latency.mean"), nullptr);

  // Snapshot is name-sorted.
  const auto& entries = snap.entries();
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].name, entries[i].name);
  }

  registry.Reset();
  const MetricsSnapshot zeroed = registry.Snapshot();
  EXPECT_EQ(zeroed.Find("x.count")->u, 0u);
  EXPECT_DOUBLE_EQ(zeroed.Find("x.level")->AsDouble(), 0.0);
  EXPECT_EQ(zeroed.Find("x.latency.count")->u, 0u);
}

TEST(MetricsRegistry, ProvidersEmitAndDuplicateNamesDisambiguate) {
  MetricsRegistry registry;
  int a = 0, b = 0;
  registry.AddProvider(&a, [](obs::MetricsEmitter& e) {
    e.Emit("manager.HeMem.faults", static_cast<uint64_t>(7));
    e.Emit("manager.HeMem.rate", 0.5);
  });
  registry.AddProvider(&b, [](obs::MetricsEmitter& e) {
    e.Emit("manager.HeMem.faults", static_cast<uint64_t>(9));
  });

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.Find("manager.HeMem.faults"), nullptr);
  EXPECT_EQ(snap.Find("manager.HeMem.faults")->u, 7u);
  EXPECT_DOUBLE_EQ(snap.Find("manager.HeMem.rate")->AsDouble(), 0.5);
  // Second emitter of the same name lands under a "#2" prefix segment.
  ASSERT_NE(snap.Find("manager.HeMem#2.faults"), nullptr);
  EXPECT_EQ(snap.Find("manager.HeMem#2.faults")->u, 9u);
}

TEST(MetricsRegistry, RemoveOwnerDropsAllRegistrations) {
  MetricsRegistry registry;
  int a = 0, b = 0;
  registry.AddCounter(&a, "a.count");
  registry.AddProvider(&a, [](obs::MetricsEmitter& e) { e.Emit("a.extra", 1.0); });
  registry.AddCounter(&b, "b.count");
  EXPECT_EQ(registry.registration_count(), 3u);

  registry.RemoveOwner(&a);
  EXPECT_EQ(registry.registration_count(), 1u);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Find("a.count"), nullptr);
  EXPECT_EQ(snap.Find("a.extra"), nullptr);
  EXPECT_NE(snap.Find("b.count"), nullptr);
}

// ---------------------------------------------------------------------------
// Event tracer

TEST(EventTracer, RecordsEventsAndSortsJsonByTimestamp) {
  EventTracer tracer;
  tracer.set_enabled(true);
  const obs::TrackId track = tracer.RegisterTrack("component");
  EXPECT_GE(track, EventTracer::kComponentTrackBase);
  EXPECT_EQ(tracer.RegisterTrack("component"), track);  // dedup by name

  // Emit out of timestamp order; WriteJson must sort.
  tracer.Duration(track, "late", "test", 2000, 2500, {{"bytes", 4096.0}});
  tracer.Instant(track, "early", "test", 1000);
  ASSERT_EQ(tracer.event_count(), 2u);

  const std::string path = TempPath("trace_sorted.json");
  ASSERT_TRUE(tracer.WriteJson(path));
  const std::string text = ReadFile(path);

  JsonChecker checker(text);
  EXPECT_TRUE(checker.Valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  const size_t early = text.find("\"early\"");
  const size_t late = text.find("\"late\"");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(early, late);
  // Integral args print as integers, not as "4096.000000".
  EXPECT_NE(text.find("\"bytes\":4096"), std::string::npos);
  EXPECT_EQ(text.find("4096.0"), std::string::npos);
}

TEST(EventTracer, EscapesNamesInJson) {
  EventTracer tracer;
  tracer.set_enabled(true);
  const obs::TrackId track = tracer.RegisterTrack("quote\"back\\slash");
  tracer.Instant(track, "ev\"ent", "test", 10);

  const std::string path = TempPath("trace_escaped.json");
  ASSERT_TRUE(tracer.WriteJson(path));
  const std::string text = ReadFile(path);
  JsonChecker checker(text);
  EXPECT_TRUE(checker.Valid()) << text;
  EXPECT_NE(text.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(EventTracer, ClearDropsEvents) {
  EventTracer tracer;
  tracer.set_enabled(true);
  tracer.Instant(tracer.RegisterTrack("t"), "e", "test", 1);
  EXPECT_EQ(tracer.event_count(), 1u);
  tracer.Clear();
  EXPECT_EQ(tracer.event_count(), 0u);
}

// ---------------------------------------------------------------------------
// Sampler

TEST(MetricsSampler, BucketsAlignToSamplingIntervals) {
  MetricsRegistry registry;
  int owner = 0;
  obs::Counter* counter = registry.AddCounter(&owner, "work.ops");

  Engine engine;
  MetricsSampler sampler(registry, kMillisecond);
  engine.AddObserverThread(&sampler);

  // Increment strictly inside each interval: +5 at 0.75 ms, +7 at 1.75 ms,
  // +9 at 2.75 ms. An increment is committed by the slice that *starts* at
  // the previous 0.25/0.75/... boundary, and the engine dispatches a slice
  // before any tick it straddles — also before a tick it ties, since
  // observer threads lose clock ties in the (clock, stream id) dispatch
  // order. The idle 0.75 ms lead-in therefore keeps the first increment out
  // of the sampler's t=0 baseline tick, and the off-grid slice boundaries
  // (0.75, 1.25, ...) keep every later increment inside its own interval.
  // The trailing idle step keeps the worker live past the 3 ms tick.
  int step = 0;
  ScriptThread worker([&](ScriptThread& self) {
    self.Advance(step == 0 ? 3 * kMillisecond / 4 : kMillisecond / 2);
    if (step % 2 == 1 && step < 6) {
      counter->Add(5 + static_cast<uint64_t>(step) - 1);
    }
    return ++step < 7;
  });
  engine.AddThread(&worker);
  engine.Run();

  ASSERT_TRUE(sampler.series().count("work.ops"));
  const TimeSeries& series = sampler.series().at("work.ops");
  EXPECT_EQ(series.bucket_width(), kMillisecond);
  // Delta for interval k lands in bucket k.
  ASSERT_GE(series.buckets().size(), 3u);
  EXPECT_DOUBLE_EQ(series.buckets()[0], 5.0);
  EXPECT_DOUBLE_EQ(series.buckets()[1], 7.0);
  EXPECT_DOUBLE_EQ(series.buckets()[2], 9.0);
  EXPECT_GE(sampler.samples_taken(), 3u);
}

// ---------------------------------------------------------------------------
// Run report

TEST(RunReport, WritesWellFormedNestedJson) {
  MetricsRegistry registry;
  int owner = 0;
  registry.AddCounter(&owner, "device.dram.loads")->Add(11);
  registry.AddGauge(&owner, "pebs.drop_rate")->Set(0.25);

  Engine engine;
  MetricsSampler sampler(registry, kMillisecond);
  engine.AddObserverThread(&sampler);
  ScriptThread worker([&](ScriptThread& self) {
    self.Advance(3 * kMillisecond + kMillisecond / 2);
    return false;
  });
  engine.AddThread(&worker);
  engine.Run();

  const std::string path = TempPath("run_report.json");
  ASSERT_TRUE(obs::WriteRunReport(path, registry.Snapshot(), &sampler,
                                  {{"workload", "unit"}, {"system", "none"}}));
  const std::string text = ReadFile(path);
  JsonChecker checker(text);
  EXPECT_TRUE(checker.Valid()) << text;

  // Dotted names nest; meta and series sections are present.
  EXPECT_NE(text.find("\"meta\""), std::string::npos);
  EXPECT_NE(text.find("\"workload\": \"unit\""), std::string::npos);
  EXPECT_NE(text.find("\"dram\""), std::string::npos);
  EXPECT_NE(text.find("\"loads\": 11"), std::string::npos);
  EXPECT_NE(text.find("\"series\""), std::string::npos);
  EXPECT_NE(text.find("\"period_ns\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram percentile edge cases (and their snapshot emission)

TEST(HistogramEdgeCases, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(0.999), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramEdgeCases, SingleSampleDominatesEveryPercentile) {
  Histogram h;
  h.Record(42);  // < 64, so the log-linear bucketing is exact here
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_EQ(h.Percentile(0.0), 42u);
  EXPECT_EQ(h.Percentile(0.5), 42u);
  EXPECT_EQ(h.Percentile(0.99), 42u);
  EXPECT_EQ(h.Percentile(0.999), 42u);
  EXPECT_EQ(h.Percentile(1.0), 42u);
}

TEST(HistogramEdgeCases, AllSamplesInOneBucketCollapsePercentiles) {
  Histogram h;
  for (int i = 0; i < 10'000; ++i) {
    h.Record(1'000'000);
  }
  // Every percentile reads the same (single) bucket; min/max stay exact even
  // though the bucket midpoint may round.
  EXPECT_EQ(h.Percentile(0.5), h.Percentile(0.99));
  EXPECT_EQ(h.Percentile(0.99), h.Percentile(0.999));
  EXPECT_EQ(h.min(), 1'000'000u);
  EXPECT_EQ(h.max(), 1'000'000u);
  // ~1% relative bucketing precision.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 1e6, 1e4);
}

TEST(HistogramEdgeCases, SnapshotEmitsMinAndP999) {
  MetricsRegistry registry;
  int owner = 0;
  obs::HistogramMetric* h = registry.AddHistogram(&owner, "x.lat");
  // Empty histogram still emits the full leaf set, all zero.
  MetricsSnapshot empty = registry.Snapshot();
  ASSERT_NE(empty.Find("x.lat.min"), nullptr);
  ASSERT_NE(empty.Find("x.lat.p999"), nullptr);
  EXPECT_EQ(empty.Find("x.lat.min")->u, 0u);
  EXPECT_EQ(empty.Find("x.lat.p999")->u, 0u);

  // 995 samples of 10 and five of 50: p50/p99 stay at the body, p999
  // resolves the 0.5% tail that p99 cannot see.
  for (int i = 0; i < 995; ++i) {
    h->Record(10);
  }
  for (int i = 0; i < 5; ++i) {
    h->Record(50);
  }
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Find("x.lat.min")->u, 10u);
  EXPECT_EQ(snap.Find("x.lat.p50")->u, 10u);
  EXPECT_EQ(snap.Find("x.lat.p99")->u, 10u);
  EXPECT_EQ(snap.Find("x.lat.p999")->u, 50u);
  EXPECT_EQ(snap.Find("x.lat.max")->u, 50u);
}

// ---------------------------------------------------------------------------
// Strict JSON parser (common/json.h)

TEST(JsonParser, ParsesNestedDocument) {
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::Parse(
      R"({"a": {"b": [1, 2.5, -3e2]}, "s": "x\n", "t": true, "n": null})", &v,
      &err))
      << err;
  ASSERT_TRUE(v.is_object());
  const json::Value* a = v.Get("a");
  ASSERT_NE(a, nullptr);
  const json::Value* b = a->Get("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_DOUBLE_EQ(b->items[1].number, 2.5);
  EXPECT_DOUBLE_EQ(b->items[2].number, -300.0);
  EXPECT_EQ(v.Get("s")->text, "x\n");
  EXPECT_TRUE(v.Get("t")->boolean);
}

TEST(JsonParser, RejectsNonRfc8259Extensions) {
  json::Value v;
  for (const char* bad : {
           "{\"a\": 1,}",        // trailing comma
           "{'a': 1}",           // single quotes
           "{\"a\": NaN}",       // NaN
           "{\"a\": 01}",        // leading zero
           "[1 2]",              // missing comma
           "{\"a\": 1} extra",   // trailing garbage
           "\"unterminated",     // unterminated string
           "{\"a\"}",            // missing value
           "",                   // empty input
       }) {
    std::string err;
    EXPECT_FALSE(json::Parse(bad, &v, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(JsonParser, FlattenNumbersProducesDottedPaths) {
  json::Value v;
  ASSERT_TRUE(json::Parse(
      R"({"metrics": {"gups": 1.5, "runs": [{"n": 2}, {"n": 3}]}, "id": "x"})",
      &v));
  const std::map<std::string, double> flat = json::FlattenNumbers(v);
  ASSERT_EQ(flat.size(), 3u);  // strings skipped
  EXPECT_DOUBLE_EQ(flat.at("metrics.gups"), 1.5);
  EXPECT_DOUBLE_EQ(flat.at("metrics.runs.0.n"), 2.0);
  EXPECT_DOUBLE_EQ(flat.at("metrics.runs.1.n"), 3.0);
}

// ---------------------------------------------------------------------------
// Latency attribution recorder

TEST(LatencyRecorder, RecordsComponentsAndExactTotals) {
  MetricsRegistry registry;
  obs::LatencyRecorder recorder(registry);
  const int slot = recorder.RegisterManager("HeMem");

  obs::LatencyRecorder::Sample s;
  s.translation = 5;
  s.fault = 100;
  s.queue = 7;
  s.media = 30;
  s.other = 8;
  recorder.Record(slot, /*tier=*/0, s, s.Sum());
  s = {};
  s.media = 40;
  s.wp_stall = 1000;
  recorder.Record(slot, /*tier=*/1, s, s.Sum());

  const obs::LatencyRecorder::ComponentTotals& dram = recorder.totals(slot, 0);
  EXPECT_EQ(dram.count, 1u);
  EXPECT_EQ(dram.fault_ns, 100u);
  EXPECT_EQ(dram.end_to_end_ns,
            dram.translation_ns + dram.fault_ns + dram.wp_stall_ns +
                dram.queue_ns + dram.media_ns + dram.other_ns);
  const obs::LatencyRecorder::ComponentTotals& nvm = recorder.totals(slot, 1);
  EXPECT_EQ(nvm.wp_stall_ns, 1000u);
  EXPECT_EQ(nvm.end_to_end_ns, 1040u);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.Find("latency.HeMem.dram.fault.count"), nullptr);
  EXPECT_EQ(snap.Find("latency.HeMem.dram.fault.count")->u, 1u);
  EXPECT_EQ(snap.Find("latency.HeMem.dram.fault.sum_ns")->u, 100u);
  EXPECT_EQ(snap.Find("latency.HeMem.nvm.wp_stall.min")->u, 1000u);
  // Values ≥ 64 land in log-linear buckets (~1% relative error).
  EXPECT_NEAR(static_cast<double>(snap.Find("latency.HeMem.nvm.wp_stall.p999")->u),
              1000.0, 10.0);
  EXPECT_EQ(snap.Find("latency.HeMem.nvm.total.sum_ns")->u, 1040u);
  EXPECT_EQ(snap.Find("latency.HeMem.dram.total.sum_ns")->u, 150u);
}

#ifndef NDEBUG
TEST(LatencyRecorderDeathTest, NonAdditiveSampleAsserts) {
  MetricsRegistry registry;
  obs::LatencyRecorder recorder(registry);
  const int slot = recorder.RegisterManager("HeMem");
  obs::LatencyRecorder::Sample s;
  s.media = 10;
  EXPECT_DEATH(recorder.Record(slot, 0, s, /*end_to_end=*/11),
               "sum to end-to-end");
}
#endif

// ---------------------------------------------------------------------------
// Heat timeline

TEST(HeatTimeline, BinsAccessesByChunkAndWindow) {
  obs::HeatTimeline::Options opt;
  opt.chunk_bytes = 1024;
  opt.window_ns = 100;
  obs::HeatTimeline heat(opt);

  heat.Record(0, /*is_store=*/false, /*tier=*/0, /*now=*/10);
  heat.Record(100, /*is_store=*/true, /*tier=*/0, /*now=*/20);   // same cell
  heat.Record(100, /*is_store=*/false, /*tier=*/1, /*now=*/150);  // next window
  heat.Record(5000, /*is_store=*/false, /*tier=*/1, /*now=*/10);  // chunk 4

  EXPECT_EQ(heat.samples(), 4u);
  ASSERT_EQ(heat.cells().size(), 3u);
  const auto& c00 = heat.cells().at({0, 0});
  EXPECT_EQ(c00.reads, 1u);
  EXPECT_EQ(c00.writes, 1u);
  EXPECT_EQ(c00.last_tier, 0);
  const auto& c01 = heat.cells().at({0, 1});
  EXPECT_EQ(c01.reads, 1u);
  EXPECT_EQ(c01.last_tier, 1);
  EXPECT_EQ(heat.cells().at({4, 0}).reads, 1u);
}

TEST(HeatTimeline, WriteJsonIsValidAndSparse) {
  obs::HeatTimeline::Options opt;
  opt.chunk_bytes = 4096;
  opt.window_ns = 1000;
  obs::HeatTimeline heat(opt);
  heat.Record(0, false, 0, 10);
  heat.Record(4096 * 7, true, 1, 2500);

  const std::string path = TempPath("heat.json");
  ASSERT_TRUE(heat.WriteJson(path));
  const std::string text = ReadFile(path);
  JsonChecker checker(text);
  EXPECT_TRUE(checker.Valid()) << text;

  // Cross-check with the real parser too: chunk bases and window indices.
  json::Value v;
  ASSERT_TRUE(json::Parse(text, &v));
  EXPECT_DOUBLE_EQ(v.Get("chunk_bytes")->number, 4096.0);
  ASSERT_TRUE(v.Get("chunks")->is_array());
  ASSERT_EQ(v.Get("chunks")->items.size(), 2u);  // sparse: only touched chunks
  const json::Value& second = v.Get("chunks")->items[1];
  EXPECT_DOUBLE_EQ(second.Get("base")->number, 4096.0 * 7);
  EXPECT_DOUBLE_EQ(second.Get("windows")->items[0].Get("w")->number, 2.0);
  EXPECT_DOUBLE_EQ(second.Get("windows")->items[0].Get("writes")->number, 1.0);
}

TEST(HeatTimeline, EmitCountersWritesPerTierAndPerChunkTracks) {
  obs::HeatTimeline::Options opt;
  opt.chunk_bytes = 4096;
  opt.window_ns = 1000;
  obs::HeatTimeline heat(opt);
  for (int i = 0; i < 10; ++i) {
    heat.Record(0, false, 0, 100 * i);
  }
  heat.Record(4096, true, 1, 500);

  EventTracer tracer;
  tracer.set_enabled(true);
  heat.EmitCounters(tracer, /*max_chunk_tracks=*/1);
  EXPECT_GT(tracer.event_count(), 0u);

  const std::string path = TempPath("heat_counters.json");
  ASSERT_TRUE(tracer.WriteJson(path));
  const std::string text = ReadFile(path);
  JsonChecker checker(text);
  EXPECT_TRUE(checker.Valid()) << text;
  EXPECT_NE(text.find("heat/dram"), std::string::npos);
  EXPECT_NE(text.find("heat/nvm"), std::string::npos);
  // Only the hottest chunk gets a dedicated track under the cap of 1.
  EXPECT_NE(text.find("heat/chunk@0MiB"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Migration-causality audit

TEST(MigrationAudit, ClassifiesPromotionsAndDemotions) {
  obs::MigrationAudit::Options opt;
  opt.good_access_threshold = 4;
  opt.ping_pong_window = 1000;
  obs::MigrationAudit audit(opt);

  const uint64_t pass = audit.BeginDecisionPass("default", 0);
  EXPECT_EQ(pass, 1u);

  // Promotion that pays for itself: 5 accesses after completion.
  const uint64_t good = audit.OnMigrationQueued(pass, 0x1000, 1, 0, 10);
  audit.OnMigrationComplete(good, 20);
  for (int i = 0; i < 5; ++i) {
    audit.OnPageAccess(0x1000, 30 + i);
  }
  // Promotion nobody touches again: churn.
  const uint64_t churn = audit.OnMigrationQueued(pass, 0x2000, 1, 0, 10);
  audit.OnMigrationComplete(churn, 25);
  // Demotion that stays cold: good.
  const uint64_t cold = audit.OnMigrationQueued(pass, 0x3000, 0, 1, 10);
  audit.OnMigrationComplete(cold, 30);
  // Demotion that keeps being accessed: premature.
  const uint64_t premature = audit.OnMigrationQueued(pass, 0x4000, 0, 1, 10);
  audit.OnMigrationComplete(premature, 30);
  for (int i = 0; i < 6; ++i) {
    audit.OnPageAccess(0x4000, 40 + i);
  }
  // Aborted migration.
  const uint64_t aborted = audit.OnMigrationQueued(pass, 0x5000, 1, 0, 10);
  audit.OnMigrationAborted(aborted, 15);

  const obs::MigrationAudit::Summary sum = audit.Summarize();
  EXPECT_EQ(sum.passes, 1u);
  EXPECT_EQ(sum.migrations, 5u);
  EXPECT_EQ(sum.good_promotions, 1u);
  EXPECT_EQ(sum.churn_promotions, 1u);
  EXPECT_EQ(sum.good_demotions, 1u);
  EXPECT_EQ(sum.premature_demotions, 1u);
  EXPECT_EQ(sum.aborted, 1u);
  EXPECT_EQ(sum.ping_pongs, 0u);
}

TEST(MigrationAudit, ReversalWithinWindowMarksPingPong) {
  obs::MigrationAudit::Options opt;
  opt.good_access_threshold = 1;
  opt.ping_pong_window = 1000;
  obs::MigrationAudit audit(opt);

  const uint64_t p1 = audit.BeginDecisionPass("default", 0);
  const uint64_t promote = audit.OnMigrationQueued(p1, 0x1000, 1, 0, 0);
  audit.OnMigrationComplete(promote, 100);
  audit.OnPageAccess(0x1000, 150);

  // Reversed within the window: the original promotion becomes ping-pong.
  const uint64_t p2 = audit.BeginDecisionPass("default", 500);
  const uint64_t demote = audit.OnMigrationQueued(p2, 0x1000, 0, 1, 500);
  audit.OnMigrationComplete(demote, 600);

  // A second reversal far outside the window: no ping-pong for the demotion.
  const uint64_t p3 = audit.BeginDecisionPass("default", 50'000);
  const uint64_t late = audit.OnMigrationQueued(p3, 0x1000, 1, 0, 50'000);
  audit.OnMigrationComplete(late, 50'100);

  const obs::MigrationAudit::Summary sum = audit.Summarize();
  EXPECT_EQ(sum.ping_pongs, 1u);
  EXPECT_EQ(sum.passes, 3u);
  EXPECT_EQ(sum.migrations, 3u);
}

TEST(MigrationAudit, WriteJsonIsValidAndMetricsRegister) {
  obs::MigrationAudit::Options opt;
  obs::MigrationAudit audit(opt);
  MetricsRegistry registry;
  audit.RegisterMetrics(registry);

  const uint64_t pass = audit.BeginDecisionPass("scheme", 0);
  const uint64_t id = audit.OnMigrationQueued(pass, 0x1000, 1, 0, 10);
  audit.OnMigrationComplete(id, 20);
  for (int i = 0; i < 8; ++i) {
    audit.OnPageAccess(0x1000, 30 + i);
  }

  const std::string path = TempPath("audit.json");
  ASSERT_TRUE(audit.WriteJson(path));
  const std::string text = ReadFile(path);
  JsonChecker checker(text);
  EXPECT_TRUE(checker.Valid()) << text;

  json::Value v;
  ASSERT_TRUE(json::Parse(text, &v));
  ASSERT_TRUE(v.Get("decisions")->is_array());
  ASSERT_EQ(v.Get("decisions")->items.size(), 1u);
  EXPECT_EQ(v.Get("decisions")->items[0].Get("outcome")->text,
            "good_promotion");

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.Find("audit.migrations"), nullptr);
  EXPECT_EQ(snap.Find("audit.migrations")->u, 1u);
  EXPECT_EQ(snap.Find("audit.good_promotions")->u, 1u);
  EXPECT_EQ(snap.Find("audit.ping_pongs")->u, 0u);
}

TEST(RunReport, SnapshotToJsonHandlesLeafPrefixConflict) {
  MetricsRegistry registry;
  int owner = 0;
  registry.AddCounter(&owner, "pebs.samples")->Add(5);
  registry.AddCounter(&owner, "pebs.samples.dropped")->Add(2);

  const std::string text = obs::SnapshotToJson(registry.Snapshot());
  JsonChecker checker(text);
  EXPECT_TRUE(checker.Valid()) << text;
  // The leaf that is also a prefix keeps its value under "value".
  EXPECT_NE(text.find("\"value\": 5"), std::string::npos);
  EXPECT_NE(text.find("\"dropped\": 2"), std::string::npos);
}

}  // namespace
}  // namespace hemem
