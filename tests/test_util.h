// Shared helpers for the HeMem test suites.

#ifndef HEMEM_TESTS_TEST_UTIL_H_
#define HEMEM_TESTS_TEST_UTIL_H_

#include "sim/script_thread.h"
#include "tier/machine.h"

namespace hemem {

// A tiny machine for unit tests: 64 MiB DRAM + 256 MiB NVM, 1 MiB pages
// (64 DRAM frames / 256 NVM frames), paper ratios preserved.
inline MachineConfig TinyMachineConfig() {
  MachineConfig config;
  config.dram_bytes = MiB(64);
  config.nvm_bytes = MiB(256);
  config.page_bytes = MiB(1);
  config.label_scale = 3072.0;  // 192 GiB / 64 MiB
  // Space is scaled down 3072x but access rates are not; denser sampling
  // keeps per-page classification dynamics on the same timescale.
  config.pebs.SetAllPeriods(500);
  return config;
}

}  // namespace hemem

#endif  // HEMEM_TESTS_TEST_UTIL_H_
