// Unit tests for the memory-device timing model and the DMA engine.
//
// These tests double as the calibration harness for the Table 1 / Figure 1 /
// Figure 2 device characteristics: they assert the *relationships* the paper
// reports (asymmetry, saturation points, media-granularity penalties), not
// exact nanosecond values.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/device.h"
#include "mem/block_device.h"
#include "mem/dma.h"

namespace hemem {
namespace {

// Drives `threads` logical streams of back-to-back accesses for `per_thread`
// accesses each and returns aggregate GB/s.
double MeasureThroughput(MemoryDevice& dev, int threads, uint32_t size, AccessKind kind,
                         bool sequential, int per_thread = 2000) {
  std::vector<SimTime> clock(threads, 0);
  std::vector<uint64_t> addr(threads);
  Rng rng(42);
  for (int t = 0; t < threads; ++t) {
    addr[t] = static_cast<uint64_t>(t) * GiB(1);
  }
  SimTime end = 0;
  for (int i = 0; i < per_thread; ++i) {
    for (int t = 0; t < threads; ++t) {
      const uint64_t a = sequential
                             ? addr[t]
                             : (rng.NextBounded(dev.capacity() / 64) * 64);
      clock[t] = dev.Access(clock[t], a, size, kind, static_cast<uint32_t>(t));
      addr[t] += size;
      end = std::max(end, clock[t]);
    }
  }
  const double bytes = static_cast<double>(per_thread) * threads * size;
  return bytes / static_cast<double>(end) * 1e9 / (1024.0 * 1024.0 * 1024.0);
}

TEST(DeviceParams, TableOneDefaults) {
  const DeviceParams dram = DeviceParams::Dram(GiB(192));
  const DeviceParams nvm = DeviceParams::OptaneNvm(GiB(768));
  EXPECT_EQ(dram.read_latency, 82);
  EXPECT_EQ(nvm.read_latency, 175);
  EXPECT_EQ(nvm.write_latency, 94);
  EXPECT_EQ(dram.media_granularity, 64u);
  EXPECT_EQ(nvm.media_granularity, 256u);
  EXPECT_EQ(nvm.capacity, GiB(768));
}

TEST(Device, SequentialReadApproachesRatedBandwidth) {
  MemoryDevice dram(DeviceParams::Dram(GiB(192)));
  const double gbps = MeasureThroughput(dram, 16, 4096, AccessKind::kLoad, true);
  EXPECT_GT(gbps, 80.0);
  EXPECT_LT(gbps, 120.0);
}

TEST(Device, NvmWriteBandwidthCapped) {
  MemoryDevice nvm(DeviceParams::OptaneNvm(GiB(768)));
  const double gbps = MeasureThroughput(nvm, 16, 4096, AccessKind::kStore, true);
  EXPECT_GT(gbps, 8.0);
  EXPECT_LT(gbps, 13.0);  // ~11.2 GB/s per Table 1
}

TEST(Device, NvmWriteSaturatesAtFourThreads) {
  MemoryDevice nvm(DeviceParams::OptaneNvm(GiB(768)));
  const double at4 = MeasureThroughput(nvm, 4, 4096, AccessKind::kStore, true);
  MemoryDevice nvm2(DeviceParams::OptaneNvm(GiB(768)));
  const double at16 = MeasureThroughput(nvm2, 16, 4096, AccessKind::kStore, true);
  EXPECT_NEAR(at16 / at4, 1.0, 0.15);  // no further scaling past 4 threads
}

TEST(Device, DramWriteScalesPastFourThreads) {
  MemoryDevice a(DeviceParams::Dram(GiB(192)));
  const double at4 = MeasureThroughput(a, 4, 4096, AccessKind::kStore, true);
  MemoryDevice b(DeviceParams::Dram(GiB(192)));
  const double at16 = MeasureThroughput(b, 16, 4096, AccessKind::kStore, true);
  EXPECT_GT(at16 / at4, 2.0);
}

TEST(Device, SequentialBeatsRandom) {
  for (const auto kind : {AccessKind::kLoad, AccessKind::kStore}) {
    MemoryDevice a(DeviceParams::Dram(GiB(192)));
    const double seq = MeasureThroughput(a, 8, 256, kind, true);
    MemoryDevice b(DeviceParams::Dram(GiB(192)));
    const double rnd = MeasureThroughput(b, 8, 256, kind, false);
    EXPECT_GT(seq, rnd * 1.3);
  }
}

TEST(Device, SmallRandomNvmReadsPayMediaGranularity) {
  // 64 B random reads occupy a full 256 B media block: useful throughput is
  // at most 1/4 of what 256 B reads achieve.
  MemoryDevice a(DeviceParams::OptaneNvm(GiB(768)));
  const double small = MeasureThroughput(a, 8, 64, AccessKind::kLoad, false);
  MemoryDevice b(DeviceParams::OptaneNvm(GiB(768)));
  const double block = MeasureThroughput(b, 8, 256, AccessKind::kLoad, false);
  EXPECT_LT(small, block / 2.5);
}

TEST(Device, DramRandomReadBeatsNvmRandomRead) {
  MemoryDevice dram(DeviceParams::Dram(GiB(192)));
  MemoryDevice nvm(DeviceParams::OptaneNvm(GiB(768)));
  const double d = MeasureThroughput(dram, 16, 256, AccessKind::kLoad, false);
  const double n = MeasureThroughput(nvm, 16, 256, AccessKind::kLoad, false);
  EXPECT_GT(d / n, 1.8);  // paper: 2.7x at scale
  EXPECT_LT(d / n, 5.0);
}

TEST(Device, LatencyVisibleOnIsolatedRandomAccess) {
  MemoryDevice dram(DeviceParams::Dram(GiB(192)));
  const SimTime done = dram.Access(0, GiB(1), 64, AccessKind::kLoad, 0);
  // One access: channel busy + exposed latency fraction; must be at least
  // a few ns and far below the raw latency (MLP overlaps misses).
  EXPECT_GT(done, 5);
  EXPECT_LT(done, 200);
}

TEST(Device, WearTracksMediaBytes) {
  MemoryDevice nvm(DeviceParams::OptaneNvm(GiB(768)));
  nvm.Access(0, 0, 64, AccessKind::kStore, 0);
  EXPECT_EQ(nvm.stats().stores, 1u);
  EXPECT_EQ(nvm.stats().bytes_requested_written, 64u);
  EXPECT_EQ(nvm.stats().media_bytes_written, 256u);  // granularity inflation
}

TEST(Device, SequentialDetectorCountsStreams) {
  MemoryDevice dram(DeviceParams::Dram(GiB(192)));
  SimTime t = 0;
  for (int i = 0; i < 10; ++i) {
    t = dram.Access(t, 4096 + static_cast<uint64_t>(i) * 256, 256, AccessKind::kLoad, 3);
  }
  EXPECT_EQ(dram.stats().sequential_hits, 9u);  // all but the first
}

TEST(Device, StreamsAreIndependent) {
  MemoryDevice dram(DeviceParams::Dram(GiB(192)));
  dram.Access(0, 0, 256, AccessKind::kLoad, 1);
  dram.Access(0, MiB(1), 256, AccessKind::kLoad, 2);
  dram.Access(0, 256, 256, AccessKind::kLoad, 1);  // continues stream 1
  EXPECT_EQ(dram.stats().sequential_hits, 1u);
}

TEST(Device, BulkTransferConsumesBandwidth) {
  MemoryDevice dram(DeviceParams::Dram(GiB(192)));
  const SimTime done = dram.BulkTransfer(0, MiB(2), AccessKind::kLoad);
  // 2 MiB at one channel's ~6.7 GB/s is ~300 us.
  EXPECT_GT(done, 200 * kMicrosecond);
  EXPECT_LT(done, 500 * kMicrosecond);
}

TEST(Device, ChannelPressureReflectsBacklog) {
  MemoryDevice nvm(DeviceParams::OptaneNvm(GiB(768)));
  EXPECT_DOUBLE_EQ(nvm.ChannelPressure(0, AccessKind::kStore), 0.0);
  for (int i = 0; i < 64; ++i) {
    nvm.BulkTransfer(0, MiB(1), AccessKind::kStore);
  }
  EXPECT_GT(nvm.ChannelPressure(0, AccessKind::kStore), 0.9);
}

TEST(Device, ResetStatsClears) {
  MemoryDevice dram(DeviceParams::Dram(GiB(1)));
  dram.Access(0, 0, 64, AccessKind::kLoad, 0);
  dram.ResetStats();
  EXPECT_EQ(dram.stats().loads, 0u);
}

TEST(Dma, SingleCopyTime) {
  DmaEngine dma;
  MemoryDevice dram(DeviceParams::Dram(GiB(192)));
  MemoryDevice nvm(DeviceParams::OptaneNvm(GiB(768)));
  const SimTime done = dma.Copy(0, nvm, dram, MiB(2), 2);
  // Bounded below by NVM read of 2 MiB on one channel (~500 us) and above by
  // a loose multiple.
  EXPECT_GT(done, 300 * kMicrosecond);
  EXPECT_LT(done, 3 * kMillisecond);
  EXPECT_EQ(dma.stats().copies, 1u);
  EXPECT_EQ(dma.stats().bytes_copied, MiB(2));
}

TEST(Dma, BatchAmortizesSubmitOverhead) {
  MemoryDevice dram1(DeviceParams::Dram(GiB(192)));
  MemoryDevice nvm1(DeviceParams::OptaneNvm(GiB(768)));
  DmaEngine one;
  SimTime t_single = 0;
  for (int i = 0; i < 4; ++i) {
    t_single = one.Copy(t_single, nvm1, dram1, MiB(2), 2);
  }

  MemoryDevice dram2(DeviceParams::Dram(GiB(192)));
  MemoryDevice nvm2(DeviceParams::OptaneNvm(GiB(768)));
  DmaEngine batched;
  std::vector<CopyRequest> reqs(4, CopyRequest{&nvm2, &dram2, MiB(2)});
  const SimTime t_batch = batched.CopyBatch(0, reqs, 2);
  EXPECT_LT(t_batch, t_single);
}

TEST(Dma, MoreChannelsGoFaster) {
  MemoryDevice dram1(DeviceParams::Dram(GiB(192)));
  MemoryDevice nvm1(DeviceParams::OptaneNvm(GiB(768)));
  DmaEngine a;
  std::vector<CopyRequest> reqs1(8, CopyRequest{&nvm1, &dram1, MiB(2)});
  const SimTime narrow = a.CopyBatch(0, reqs1, 1);

  MemoryDevice dram2(DeviceParams::Dram(GiB(192)));
  MemoryDevice nvm2(DeviceParams::OptaneNvm(GiB(768)));
  DmaEngine b;
  std::vector<CopyRequest> reqs2(8, CopyRequest{&nvm2, &dram2, MiB(2)});
  const SimTime wide = b.CopyBatch(0, reqs2, 4);
  EXPECT_LT(wide, narrow);
}

TEST(Dma, ChargesBothDevices) {
  MemoryDevice dram(DeviceParams::Dram(GiB(192)));
  MemoryDevice nvm(DeviceParams::OptaneNvm(GiB(768)));
  DmaEngine dma;
  dma.Copy(0, nvm, dram, MiB(2), 2);
  EXPECT_EQ(nvm.stats().media_bytes_read, MiB(2));
  EXPECT_EQ(dram.stats().media_bytes_written, MiB(2));
}

TEST(CpuCopier, SplitsAcrossWorkers) {
  MemoryDevice dram1(DeviceParams::Dram(GiB(192)));
  MemoryDevice nvm1(DeviceParams::OptaneNvm(GiB(768)));
  CpuCopier one(1);
  const SimTime t1 = one.Copy(0, nvm1, dram1, MiB(8));

  MemoryDevice dram2(DeviceParams::Dram(GiB(192)));
  MemoryDevice nvm2(DeviceParams::OptaneNvm(GiB(768)));
  CpuCopier four(4);
  const SimTime t4 = four.Copy(0, nvm2, dram2, MiB(8));
  EXPECT_LT(t4, t1);
}

TEST(CpuCopier, SlowerThanDma) {
  MemoryDevice dram1(DeviceParams::Dram(GiB(192)));
  MemoryDevice nvm1(DeviceParams::OptaneNvm(GiB(768)));
  CpuCopier copier(4);
  SimTime t_cpu = 0;
  for (int i = 0; i < 16; ++i) {
    t_cpu = copier.Copy(t_cpu, nvm1, dram1, MiB(2));
  }

  MemoryDevice dram2(DeviceParams::Dram(GiB(192)));
  MemoryDevice nvm2(DeviceParams::OptaneNvm(GiB(768)));
  DmaEngine dma;
  SimTime t_dma = 0;
  for (int i = 0; i < 4; ++i) {
    std::vector<CopyRequest> reqs(4, CopyRequest{&nvm2, &dram2, MiB(2)});
    t_dma = dma.CopyBatch(t_dma, reqs, 2);
  }
  EXPECT_LT(t_dma, t_cpu * 2);  // DMA at least competitive
}


TEST(Device, QueueDelayTracked) {
  MemoryDevice nvm(DeviceParams::OptaneNvm(GiB(768)));
  // Saturate the 4 write channels from one instant: later accesses queue.
  for (int i = 0; i < 64; ++i) {
    nvm.Access(0, static_cast<uint64_t>(i) * MiB(1), 4096, AccessKind::kStore, 0);
  }
  EXPECT_GT(nvm.stats().queue_delay_total_ns, 0u);
  EXPECT_GT(nvm.stats().queue_delay_max_ns, 0u);
}

TEST(Device, NoQueueDelayWhenIdle) {
  MemoryDevice dram(DeviceParams::Dram(GiB(192)));
  dram.Access(1000, 0, 64, AccessKind::kLoad, 0);
  EXPECT_EQ(dram.stats().queue_delay_total_ns, 0u);
}

TEST(Dma, PerRequestCompletionsReported) {
  MemoryDevice dram(DeviceParams::Dram(GiB(192)));
  MemoryDevice nvm(DeviceParams::OptaneNvm(GiB(768)));
  DmaEngine dma;
  std::vector<CopyRequest> reqs(4, CopyRequest{&nvm, &dram, MiB(2)});
  std::vector<SimTime> done;
  const SimTime batch_done = dma.CopyBatch(0, reqs, 2, &done);
  ASSERT_EQ(done.size(), 4u);
  SimTime max_done = 0;
  for (const SimTime t : done) {
    EXPECT_GT(t, 0);
    EXPECT_LE(t, batch_done);
    max_done = std::max(max_done, t);
  }
  EXPECT_EQ(max_done, batch_done);
  // With 2 lanes, the first request completes before the whole batch.
  EXPECT_LT(done[0], batch_done);
}


TEST(BlockDevice, LatencyAndBandwidth) {
  BlockDevice ssd(BlockDeviceParams::NvmeSsd(GiB(1)));
  // A 4 KiB read: ~10 us access latency + ~1.3 us transfer.
  const SimTime small = ssd.Read(0, KiB(4));
  EXPECT_GT(small, 10 * kMicrosecond);
  EXPECT_LT(small, 20 * kMicrosecond);
  // A 2 MiB read: transfer dominated (~650 us at 3 GB/s).
  BlockDevice ssd2(BlockDeviceParams::NvmeSsd(GiB(1)));
  const SimTime big = ssd2.Read(0, MiB(2));
  EXPECT_GT(big, 500 * kMicrosecond);
  EXPECT_LT(big, 1200 * kMicrosecond);
}

TEST(BlockDevice, WritesSlowerThanReads) {
  BlockDevice a(BlockDeviceParams::NvmeSsd(GiB(1)));
  BlockDevice b(BlockDeviceParams::NvmeSsd(GiB(1)));
  EXPECT_GT(b.Write(0, MiB(4)), a.Read(0, MiB(4)));
}

TEST(BlockDevice, QueueDepthAllowsParallelism) {
  BlockDevice ssd(BlockDeviceParams::NvmeSsd(GiB(1)));
  // 8 concurrent requests fit the queue; the 9th queues behind the first.
  SimTime first = 0;
  for (int i = 0; i < 8; ++i) {
    first = std::max(first, ssd.Read(0, KiB(4)));
  }
  const SimTime ninth = ssd.Read(0, KiB(4));
  EXPECT_GT(ninth, first);
}

TEST(BlockDevice, RoundsToSectors) {
  BlockDevice a(BlockDeviceParams::NvmeSsd(GiB(1)));
  BlockDevice b(BlockDeviceParams::NvmeSsd(GiB(1)));
  EXPECT_EQ(a.Read(0, 1), b.Read(0, KiB(4)));  // both one sector
}

TEST(SwapSpace, AllocFreeReuse) {
  SwapSpace space(MiB(4), MiB(1));
  EXPECT_EQ(space.total_slots(), 4u);
  const uint32_t a = space.Alloc();
  const uint32_t b = space.Alloc();
  EXPECT_NE(a, b);
  space.Free(a);
  EXPECT_EQ(space.Alloc(), a);
  space.Alloc();
  space.Alloc();
  EXPECT_EQ(space.Alloc(), UINT32_MAX);  // full
}

}  // namespace
}  // namespace hemem
