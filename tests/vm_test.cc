// Unit tests for the virtual-memory substrate: page table regions, lookup,
// the radix scan-cost model, and TLB shootdown accounting.

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "vm/page_table.h"
#include "vm/tlb.h"

namespace hemem {
namespace {

TEST(PageTable, MapAndFind) {
  PageTable pt;
  const uint64_t base = pt.ReserveVa(MiB(10), MiB(2));
  Region* region = pt.MapRegion(base, MiB(10), MiB(2), true, "r");
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->num_pages(), 5u);
  EXPECT_EQ(pt.Find(base), region);
  EXPECT_EQ(pt.Find(base + MiB(10) - 1), region);
  EXPECT_EQ(pt.Find(base + MiB(10)), nullptr);
  EXPECT_EQ(pt.Find(base - 1), nullptr);
}

TEST(PageTable, RoundsRegionUpToPageSize) {
  PageTable pt;
  const uint64_t base = pt.ReserveVa(MiB(3), MiB(2));
  Region* region = pt.MapRegion(base, MiB(3), MiB(2), true, "r");
  EXPECT_EQ(region->bytes, MiB(4));
  EXPECT_EQ(region->num_pages(), 2u);
}

TEST(PageTable, PageIndexOf) {
  PageTable pt;
  const uint64_t base = pt.ReserveVa(MiB(8), MiB(2));
  Region* region = pt.MapRegion(base, MiB(8), MiB(2), true, "r");
  EXPECT_EQ(region->PageIndexOf(base), 0u);
  EXPECT_EQ(region->PageIndexOf(base + MiB(2)), 1u);
  EXPECT_EQ(region->PageIndexOf(base + MiB(8) - 1), 3u);
}

TEST(PageTable, LookupReturnsEntry) {
  PageTable pt;
  const uint64_t base = pt.ReserveVa(MiB(4), MiB(2));
  Region* region = pt.MapRegion(base, MiB(4), MiB(2), true, "r");
  PageEntry* entry = pt.Lookup(base + MiB(2) + 5);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry, &region->pages[1]);
  EXPECT_EQ(pt.Lookup(base - 100), nullptr);
}

TEST(PageTable, MultipleRegionsDisjoint) {
  PageTable pt;
  std::vector<uint64_t> bases;
  std::vector<Region*> regions;
  for (int i = 0; i < 10; ++i) {
    const uint64_t base = pt.ReserveVa(MiB(2) * (i + 1), MiB(2));
    bases.push_back(base);
    regions.push_back(pt.MapRegion(base, MiB(2) * (i + 1), MiB(2), true, "r"));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(pt.Find(bases[i]), regions[i]);
  }
}

TEST(PageTable, UnmapRemoves) {
  PageTable pt;
  const uint64_t base = pt.ReserveVa(MiB(4), MiB(2));
  pt.MapRegion(base, MiB(4), MiB(2), true, "r");
  EXPECT_EQ(pt.total_mapped_bytes(), MiB(4));
  EXPECT_TRUE(pt.UnmapRegion(base));
  EXPECT_EQ(pt.Find(base), nullptr);
  EXPECT_EQ(pt.total_mapped_bytes(), 0u);
  EXPECT_FALSE(pt.UnmapRegion(base));
}

TEST(PageTable, ForEachRegionVisitsAll) {
  PageTable pt;
  for (int i = 0; i < 5; ++i) {
    const uint64_t base = pt.ReserveVa(MiB(2), MiB(2));
    pt.MapRegion(base, MiB(2), MiB(2), i % 2 == 0, "r" + std::to_string(i));
  }
  int count = 0;
  pt.ForEachRegion([&](Region&) { count++; });
  EXPECT_EQ(count, 5);
}

TEST(PageTable, ReserveVaAligned) {
  PageTable pt;
  const uint64_t a = pt.ReserveVa(MiB(3), MiB(2));
  const uint64_t b = pt.ReserveVa(MiB(1), MiB(2));
  EXPECT_EQ(a % MiB(2), 0u);
  EXPECT_EQ(b % MiB(2), 0u);
  EXPECT_GE(b, a + MiB(4));  // rounded size plus guard gap
}

TEST(RadixCostModel, EntriesPerLevelBasePages) {
  // 1 GiB of 4 KiB pages: 256K PTEs, 512 L2 entries, 1 L3, 1 L4.
  const auto levels = RadixCostModel::EntriesPerLevel(GiB(1), KiB(4));
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_EQ(levels[0], 262144u);
  EXPECT_EQ(levels[1], 512u);
  EXPECT_EQ(levels[2], 1u);
  EXPECT_EQ(levels[3], 1u);
}

TEST(RadixCostModel, HugePagesHaveFewerLevels) {
  const auto huge = RadixCostModel::EntriesPerLevel(GiB(1), MiB(2));
  ASSERT_EQ(huge.size(), 3u);
  EXPECT_EQ(huge[0], 512u);
  const auto giga = RadixCostModel::EntriesPerLevel(GiB(4), GiB(1));
  ASSERT_EQ(giga.size(), 2u);
  EXPECT_EQ(giga[0], 4u);
}

TEST(RadixCostModel, ScanTimeGrowsLinearly) {
  RadixCostModel model;
  const SimTime t1 = model.ScanTime(GiB(64), KiB(4));
  const SimTime t2 = model.ScanTime(GiB(128), KiB(4));
  EXPECT_NEAR(static_cast<double>(t2) / static_cast<double>(t1), 2.0, 0.1);
}

TEST(RadixCostModel, SmallerPagesScanSlower) {
  RadixCostModel model;
  const SimTime base = model.ScanTime(TiB(1), KiB(4));
  const SimTime huge = model.ScanTime(TiB(1), MiB(2));
  const SimTime giga = model.ScanTime(TiB(1), GiB(1));
  EXPECT_GT(base, huge * 100);
  EXPECT_GT(huge, giga * 100);
}

TEST(RadixCostModel, TerabyteBasePageScanTakesNearSeconds) {
  // The paper's Figure 3: scanning terabytes of 4 KiB mappings takes on the
  // order of seconds.
  RadixCostModel model;
  const SimTime t = model.ScanTime(TiB(4), KiB(4));
  EXPECT_GT(t, 500 * kMillisecond);
  EXPECT_LT(t, 60 * kSecond);
}

TEST(RadixCostModel, ClearCostScalesWithPagesAndCores) {
  RadixCostModel model;
  EXPECT_EQ(model.ClearCost(0, 23), 0);
  const SimTime few = model.ClearCost(512, 23);
  const SimTime many = model.ClearCost(512 * 64, 23);
  EXPECT_NEAR(static_cast<double>(many) / static_cast<double>(few), 64.0, 1.0);
  EXPECT_GT(model.ClearCost(512, 47), model.ClearCost(512, 11));
}

TEST(Tlb, ShootdownChargesInitiatorAndVictims) {
  Engine engine(4);
  class Dummy : public SimThread {
   public:
    explicit Dummy(const char* n) : SimThread(n) {}
    bool RunSlice() override { return false; }
  };
  Dummy initiator("init");
  Dummy victim("victim");
  engine.AddThread(&initiator);
  engine.AddThread(&victim);

  Tlb tlb;
  const SimTime cost = tlb.Shootdown(engine, &initiator);
  EXPECT_EQ(cost, tlb.params().initiator_cost);
  EXPECT_EQ(initiator.now(), tlb.params().initiator_cost);
  EXPECT_EQ(tlb.stats().shootdowns, 1u);
  EXPECT_EQ(tlb.stats().victim_interrupts, 1u);
  engine.Run();
  EXPECT_EQ(victim.now(), tlb.params().victim_cost);
}

TEST(Tlb, BatchCountsEach) {
  Engine engine(4);
  Tlb tlb;
  tlb.ShootdownBatch(engine, nullptr, 10);
  EXPECT_EQ(tlb.stats().shootdowns, 10u);
}

TEST(Tlb, NullInitiatorChargesNobodyDirectly) {
  Engine engine(4);
  Tlb tlb;
  const SimTime cost = tlb.Shootdown(engine, nullptr);
  EXPECT_EQ(cost, tlb.params().initiator_cost);  // reported, not applied
}


TEST(PageTable, FindAfterUnmapDoesNotUseStaleCache) {
  PageTable pt;
  const uint64_t base = pt.ReserveVa(MiB(2), MiB(2));
  pt.MapRegion(base, MiB(2), MiB(2), true, "r");
  ASSERT_NE(pt.Find(base), nullptr);  // warms the cache
  ASSERT_TRUE(pt.UnmapRegion(base));
  EXPECT_EQ(pt.Find(base), nullptr);
}

TEST(PageTable, InterleavedMapUnmapKeepsAccounting) {
  PageTable pt;
  std::vector<uint64_t> bases;
  for (int round = 0; round < 20; ++round) {
    const uint64_t base = pt.ReserveVa(MiB(4), MiB(2));
    pt.MapRegion(base, MiB(4), MiB(2), true, "r");
    bases.push_back(base);
    if (round % 3 == 2) {
      pt.UnmapRegion(bases[static_cast<size_t>(round / 2)]);
    }
  }
  uint64_t live = 0;
  pt.ForEachRegion([&](Region& r) { live += r.bytes; });
  EXPECT_EQ(live, pt.total_mapped_bytes());
}

TEST(RadixCostModel, EntriesForTinyMappings) {
  const auto levels = RadixCostModel::EntriesPerLevel(KiB(4), KiB(4));
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_EQ(levels[0], 1u);
  EXPECT_EQ(levels[1], 1u);
}

TEST(PageEntryDefaults, StartNotPresent) {
  PageEntry entry;
  EXPECT_FALSE(entry.present);
  EXPECT_FALSE(entry.write_protected);
  EXPECT_FALSE(entry.accessed);
  EXPECT_FALSE(entry.dirty);
  EXPECT_EQ(entry.frame, kInvalidFrame);
}

}  // namespace
}  // namespace hemem
