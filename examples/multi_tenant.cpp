// Multi-tenant tiered memory: two HeMem "processes" share one socket, and
// the HeMem daemon (paper Section 3.4) divides DRAM between them according
// to their measured hot-set demand.
//
//   $ ./multi_tenant

#include <cstdio>

#include "core/daemon.h"
#include "core/hemem.h"
#include "sim/script_thread.h"

using namespace hemem;

int main() {
  MachineConfig config;
  config.dram_bytes = MiB(64);
  config.nvm_bytes = MiB(256);
  config.page_bytes = MiB(1);
  config.label_scale = 3072.0;
  config.pebs.SetAllPeriods(500);
  Machine machine(config);

  Hemem analytics(machine);   // hot-set-heavy tenant
  Hemem batch_job(machine);   // cold scanning tenant
  analytics.Start();
  batch_job.Start();

  HememDaemon daemon(machine);
  daemon.Attach(&analytics);
  daemon.Attach(&batch_job);
  daemon.Start();

  const uint64_t hot_heap = analytics.Mmap(MiB(96), {.label = "analytics"});
  const uint64_t cold_heap = batch_job.Mmap(MiB(96), {.label = "batch"});

  Rng rng(5);
  uint64_t analytics_ops = 0;
  uint64_t batch_ops = 0;
  ScriptThread tenant_a([&](ScriptThread& self) {
    // 95% of accesses to a 24 MiB hot region.
    const uint64_t addr = rng.NextBool(0.95)
                              ? hot_heap + rng.NextBounded(MiB(24) / 8) * 8
                              : hot_heap + rng.NextBounded(MiB(96) / 8) * 8;
    analytics.Update(self, addr, 8);
    analytics_ops++;
    return self.now() < 400 * kMillisecond;
  });
  ScriptThread tenant_b([&, cursor = uint64_t{0}](ScriptThread& self) mutable {
    // Sequential scan: no locality worth DRAM.
    batch_job.Access(self, cold_heap + cursor % MiB(96), 4096, AccessKind::kLoad);
    cursor += 4096;
    batch_ops++;
    return self.now() < 400 * kMillisecond;
  });
  machine.engine().AddThread(&tenant_a);
  machine.engine().AddThread(&tenant_b);
  machine.engine().Run();

  std::printf("daemon rebalances       : %lu\n", daemon.stats().rebalances);
  std::printf("analytics: %8lu ops, DRAM quota %3lu MiB, usage %3lu MiB\n",
              analytics_ops, analytics.dram_quota() >> 20, analytics.dram_usage() >> 20);
  std::printf("batch job: %8lu ops, DRAM quota %3lu MiB, usage %3lu MiB\n",
              batch_ops, batch_job.dram_quota() >> 20, batch_job.dram_usage() >> 20);
  std::printf("\nthe analytics tenant's hot set earned it the larger DRAM share\n");
  return 0;
}
