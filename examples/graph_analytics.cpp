// Graph analytics on tiered memory: generates a Kronecker power-law graph
// larger than DRAM, runs betweenness centrality under HeMem, and shows how
// per-iteration runtime improves as the hot parts of the graph migrate.
//
//   $ ./graph_analytics

#include <cstdio>

#include "apps/bc.h"
#include "apps/graph.h"
#include "core/hemem.h"

using namespace hemem;

int main() {
  KroneckerConfig kconfig;
  kconfig.scale = 16;  // 64k vertices, ~1M edges
  kconfig.average_degree = 16;
  const CsrGraph graph = GenerateKronecker(kconfig);
  std::printf("Kronecker graph: %lu vertices, %lu edges (power-law)\n",
              graph.num_vertices, graph.num_edges);

  MachineConfig config;
  config.dram_bytes = MiB(5);  // graph + BC state slightly exceed DRAM
  config.nvm_bytes = MiB(32);
  config.page_bytes = KiB(64);
  config.label_scale = 4096.0;
  config.pebs.SetAllPeriods(100);
  Machine machine(config);

  Hemem hemem(machine);
  hemem.Start();

  SimGraph sim_graph(hemem, graph);
  BcConfig bconfig;
  bconfig.iterations = 6;
  BcBenchmark bc(sim_graph, bconfig);
  bc.Prepare();
  const BcResult result = bc.Run();

  std::printf("\n%-10s %-14s %-18s\n", "iteration", "runtime_ms", "nvm_writes_MiB");
  for (size_t i = 0; i < result.iteration_time.size(); ++i) {
    std::printf("%-10zu %-14.2f %-18.2f\n", i + 1,
                static_cast<double>(result.iteration_time[i]) / 1e6,
                static_cast<double>(result.iteration_nvm_writes[i]) / 1048576.0);
  }
  std::printf("\npages promoted: %lu, demoted: %lu\n", hemem.stats().pages_promoted,
              hemem.stats().pages_demoted);

  // The scores are real: compare against the reference implementation.
  const auto expected = BcBenchmark::Reference(graph, bc.sources());
  double max_err = 0.0;
  for (size_t v = 0; v < expected.size(); ++v) {
    max_err = std::max(max_err, std::abs(result.centrality[v] - expected[v]));
  }
  std::printf("max |centrality - reference| = %g (exact algorithm over simulated memory)\n",
              max_err);
  return 0;
}
