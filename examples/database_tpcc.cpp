// In-memory database on tiered memory: Silo running TPC-C with more
// warehouses than DRAM can hold, under HeMem and under hardware memory mode.
//
//   $ ./database_tpcc

#include <cstdio>

#include "apps/silo.h"
#include "core/hemem.h"
#include "tier/memory_mode.h"

using namespace hemem;

namespace {

MachineConfig DbMachine() {
  MachineConfig config;
  config.dram_bytes = MiB(96);
  config.nvm_bytes = MiB(384);
  config.page_bytes = KiB(64);
  config.label_scale = 2048.0;
  config.pebs.SetAllPeriods(150);
  return config;
}

SiloConfig DbConfig() {
  SiloConfig config;
  config.warehouses = 64;
  config.items = 1024;
  config.customers_per_district = 64;
  return config;
}

double Run(TieredMemoryManager& manager) {
  manager.Start();
  SiloDb db(manager, DbConfig());
  TpccConfig tconfig;
  tconfig.threads = 8;
  tconfig.transactions_per_thread = 6'000;
  tconfig.warmup_transactions_per_thread = 2'000;
  TpccBenchmark tpcc(db, tconfig);
  tpcc.Prepare();
  const TpccResult result = tpcc.Run();

  // TPC-C consistency condition 2: warehouse YTD == sum of district YTDs.
  for (int w = 0; w < DbConfig().warehouses; ++w) {
    const double diff = db.warehouse_ytd(w) - db.district_ytd_sum(w);
    if (diff > 1e-6 || diff < -1e-6) {
      std::printf("CONSISTENCY VIOLATION in warehouse %d\n", w);
      return 0.0;
    }
  }
  return result.txn_per_sec;
}

}  // namespace

int main() {
  std::printf("Silo/TPC-C: 64 warehouses, working set > DRAM\n\n");
  {
    Machine machine(DbMachine());
    Hemem hemem(machine);
    std::printf("HeMem : %10.0f txn/s\n", Run(hemem));
  }
  {
    Machine machine(DbMachine());
    MemoryMode mm(machine);
    const double txn_per_sec = Run(mm);  // before reading mm_stats
    std::printf("MM    : %10.0f txn/s (DRAM cache hit rate %.1f%%)\n", txn_per_sec,
                mm.mm_stats().HitRate() * 100.0);
  }
  std::printf("\n(all transactions passed TPC-C consistency checks)\n");
  return 0;
}
