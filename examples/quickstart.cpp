// Quickstart: build a tiered-memory machine, run HeMem on a simple
// hot/cold workload, and inspect what the manager did.
//
//   $ ./quickstart
//
// Walks through the core API: MachineConfig -> Machine -> Hemem ->
// Mmap/Access from a logical thread -> stats.

#include <cstdio>

#include "core/hemem.h"
#include "sim/engine.h"

using namespace hemem;

namespace {

// A minimal application thread: 90% of its updates go to the first eighth
// of its buffer (the hot set), the rest are uniform.
class HotColdWorker : public SimThread {
 public:
  HotColdWorker(Hemem& manager, uint64_t va, uint64_t bytes, uint64_t updates)
      : SimThread("worker"),
        manager_(manager),
        rng_(1),
        va_(va),
        bytes_(bytes),
        remaining_(updates) {}

  bool RunSlice() override {
    const uint64_t hot_bytes = bytes_ / 8;
    const uint64_t addr = rng_.NextBool(0.9)
                              ? va_ + rng_.NextBounded(hot_bytes / 8) * 8
                              : va_ + rng_.NextBounded(bytes_ / 8) * 8;
    manager_.Update(*this, addr, 8);  // read-modify-write of one object
    return --remaining_ > 0;
  }

 private:
  Hemem& manager_;
  Rng rng_;
  uint64_t va_;
  uint64_t bytes_;
  uint64_t remaining_;
};

}  // namespace

int main() {
  // 1. A machine: 64 MiB DRAM + 256 MiB NVM (a 1/3072-scale Optane socket).
  MachineConfig config;
  config.dram_bytes = MiB(64);
  config.nvm_bytes = MiB(256);
  config.page_bytes = MiB(1);
  config.label_scale = 3072.0;
  config.pebs.SetAllPeriods(500);
  Machine machine(config);

  // 2. The HeMem manager with paper-default parameters, helper threads on.
  Hemem hemem(machine);
  hemem.Start();

  // 3. An application: allocate a buffer 3x the size of DRAM and hammer it.
  const uint64_t bytes = MiB(192);
  const uint64_t va = hemem.Mmap(bytes, {.label = "quickstart-heap"});

  HotColdWorker worker(hemem, va, bytes, 3'000'000);
  machine.engine().AddThread(&worker);
  const SimTime end = machine.engine().Run();

  // 4. What happened?
  std::printf("simulated time          : %.1f ms\n", static_cast<double>(end) / 1e6);
  std::printf("page faults handled     : %lu\n", hemem.stats().missing_faults);
  std::printf("pages promoted to DRAM  : %lu\n", hemem.stats().pages_promoted);
  std::printf("pages demoted to NVM    : %lu\n", hemem.stats().pages_demoted);
  std::printf("hot pages now in DRAM   : %lu\n", hemem.hot_pages(Tier::kDram));
  std::printf("PEBS samples processed  : %lu\n", hemem.hstats().samples_processed);
  std::printf("DRAM loads / NVM loads  : %lu / %lu\n", machine.dram().stats().loads,
              machine.nvm().stats().loads);
  std::printf("NVM media bytes written : %.1f MiB (wear)\n",
              static_cast<double>(machine.nvm().stats().media_bytes_written) / 1048576.0);

  const double nvm_fraction =
      static_cast<double>(machine.nvm().stats().loads) /
      static_cast<double>(machine.nvm().stats().loads + machine.dram().stats().loads);
  std::printf("fraction of loads from NVM: %.1f%% (hot set kept in DRAM)\n",
              nvm_fraction * 100.0);
  return 0;
}
